// Command eshcorpus builds the simulated test-bed (§5.2–5.3) and either
// describes it, writes every compiled procedure out as assembler text
// (a database the esh command can re-index per run), or indexes it once
// and saves a strand index snapshot that esh -load and eshd serve
// without re-running the pipeline.
//
// Usage:
//
//	eshcorpus -describe
//	eshcorpus -out corpusdir [-scale full] [-patched]
//	eshcorpus -save corpus.eshidx [-scale full] [-patched] [-pathlen 0] [-sigmoid-k 0]
//	eshcorpus -save corpus.eshidx -save-shards 2   # + corpus.eshidx.manifest{,.0,.1}
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/wal"
)

func main() {
	describe := flag.Bool("describe", false, "print the corpus inventory and exit")
	out := flag.String("out", "", "directory to write per-package .s files into")
	save := flag.String("save", "", "index the corpus and write a strand index snapshot to this path")
	scale := flag.String("scale", "full", "small (3 toolchains), medium (5), full (7)")
	patched := flag.Bool("patched", true, "include patched variants of the vulnerable procedures")
	synth := flag.Int("synth", 40, "number of generated decoy packages")
	pathLen := flag.Int("pathlen", 0, "with -save: decompose small procedures over control-flow paths of this many blocks (0 = off)")
	sigmoidK := flag.Float64("sigmoid-k", 0, "with -save: Esh sigmoid steepness baked into the snapshot (0 = paper's k=10)")
	prefilter := flag.String("prefilter", "lsh", "with -save: prefilter mode baked into the snapshot (off or lsh; serve-time flags can override)")
	lshBands := flag.Int("lsh-bands", 0, "with -save: LSH bands of the sketch prefilter (0 = default)")
	lshRows := flag.Int("lsh-rows", 0, "with -save: LSH rows per band (0 = default)")
	lshMinCont := flag.Float64("lsh-min-containment", 0, "with -save: heuristic prefilter tier threshold baked into the snapshot (0 = sound tier only)")
	kernel := flag.String("kernel", "", "with -save: evaluation kernel baked into the snapshot: batch or scalar (empty = batch; serve-time flags can override)")
	gammaBatch := flag.Int("gamma-batch", 0, "with -save: γ-batch width baked into the snapshot (0 = default 8; serve-time flags can override)")
	retrieval := flag.String("retrieval", "scan", "with -save: stage-3 candidate retrieval baked into the snapshot: scan or probe (serve-time flags can override)")
	saveShards := flag.Int("save-shards", 0, "with -save: also split the index into this many shard snapshots plus a manifest at <save>.manifest (serve each shard with eshd, coordinate with eshgw)")
	walPath := flag.String("wal", "", "with -save: fold this write-ahead log (from eshd -wal) into the snapshot before saving")
	flag.Parse()

	prefMode, err := core.NormalizePrefilter(*prefilter)
	if err != nil {
		fail("%v", err)
	}
	kernMode, err := core.NormalizeKernel(*kernel)
	if err != nil {
		fail("%v", err)
	}
	gammaW, err := core.NormalizeGammaBatch(*gammaBatch)
	if err != nil {
		fail("%v", err)
	}
	retrMode, err := core.NormalizeRetrieval(*retrieval)
	if err != nil {
		fail("%v", err)
	}

	// Scales match the experiments package: small = one toolchain per
	// vendor, medium = five, full = all seven.
	var tcs []compile.Toolchain
	pick := func(names ...string) []compile.Toolchain {
		var out []compile.Toolchain
		for _, n := range names {
			tc, ok := compile.ByName(n)
			if !ok {
				fail("unknown toolchain %q", n)
			}
			out = append(out, tc)
		}
		return out
	}
	switch *scale {
	case "small":
		tcs = pick("gcc-4.9", "clang-3.5", "icc-15.0.1")
	case "medium":
		tcs = pick("gcc-4.6", "gcc-4.9", "clang-3.4", "clang-3.5", "icc-15.0.1")
	case "full":
		tcs = compile.Toolchains()
	default:
		fail("unknown scale %q", *scale)
	}

	if *describe {
		fmt.Println("Vulnerable procedures (Table 1):")
		for _, v := range corpus.Vulns() {
			fmt.Printf("  #%d %-18s CVE-%-10s %s :: %s\n", v.ID, v.Alias, v.CVE, v.Package, v.FuncName)
		}
		fmt.Println("Decoy packages:")
		for _, d := range corpus.Decoys() {
			fmt.Printf("  %s\n", d.Name)
		}
		fmt.Printf("Toolchains (%d):", len(tcs))
		for _, tc := range tcs {
			fmt.Printf(" %s", tc.Name())
		}
		fmt.Println()
		return
	}
	if *out == "" && *save == "" {
		fail("pass -describe, -out dir, or -save snapshot.eshidx")
	}

	procs, err := corpus.Build(corpus.BuildConfig{
		Toolchains:     tcs,
		IncludePatched: *patched,
		SynthVariants:  *synth,
	})
	if err != nil {
		fail("build: %v", err)
	}

	if *save != "" {
		start := time.Now()
		opts := core.Options{
			PathLen:           *pathLen,
			SigmoidK:          *sigmoidK,
			Prefilter:         prefMode,
			LSHBands:          *lshBands,
			LSHRows:           *lshRows,
			LSHMinContainment: *lshMinCont,
			Retrieval:         retrMode,
		}
		opts.VCP.Kernel = kernMode
		opts.VCP.GammaBatch = gammaW
		db := core.NewDB(opts)
		for _, p := range procs {
			if err := db.AddTarget(p); err != nil {
				fail("index %s: %v", p.Name, err)
			}
		}
		// Fold a daemon's WAL into the snapshot: replay every record, so
		// the saved index carries the live writes (the export is the
		// remapped live view) and records its high-water mark — a daemon
		// restarted on this snapshot with the same WAL skips them.
		if *walPath != "" {
			_, recs, err := wal.Open(*walPath, wal.Options{Sync: wal.SyncNone})
			if err != nil {
				fail("wal: %v", err)
			}
			for _, r := range recs {
				switch r.Op {
				case wal.OpAdd:
					p, err := asm.ParseProc(r.Body)
					if err != nil {
						fail("wal seq %d: parse %s: %v", r.Seq, r.Name, err)
					}
					if err := db.ReplayAdd(p, r.Seq); err != nil {
						fail("wal seq %d: add %s: %v", r.Seq, r.Name, err)
					}
				case wal.OpDelete:
					if err := db.ReplayRemove(r.Name, r.Seq); err != nil {
						fail("wal seq %d: delete %s: %v", r.Seq, r.Name, err)
					}
				}
			}
			fmt.Printf("folded %d WAL records (high-water mark %d) from %s\n",
				len(recs), db.WALSeq(), *walPath)
		}
		// Build the retrieval table before saving so the snapshot carries
		// it (format v4) and serve-time probe mode skips the rebuild.
		rstats := db.RetrievalIndex().Stats()
		if err := index.SaveFile(*save, db); err != nil {
			fail("%v", err)
		}
		fmt.Printf("indexed %d procedures (%d unique strands) in %s; snapshot saved to %s\n",
			db.NumTargets(), db.NumUniqueStrands(), time.Since(start).Round(time.Millisecond), *save)
		fmt.Printf("retrieval table: %d buckets over %d bands (%d rows), postings max %d mean %.2f skew %.2f, %d small-strand entries, checksum %016x\n",
			rstats.Buckets, rstats.Bands, rstats.Rows, rstats.MaxPosting, rstats.MeanPosting, rstats.Skew, rstats.Small, rstats.Checksum)
		if *saveShards > 0 {
			manifest := *save + ".manifest"
			man, err := shard.SaveShards(manifest, db.Export(), *saveShards)
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("split into %d shards (generation %s); manifest saved to %s\n",
				len(man.Shards), man.Generation, manifest)
			for id, se := range man.Shards {
				fmt.Printf("  shard %d: %4d targets, %6d unique strands  %s\n",
					id, len(se.Targets), len(se.Strands), se.File)
			}
		}
	} else if *saveShards > 0 {
		fail("-save-shards requires -save")
	}
	if *out == "" {
		return
	}
	files := map[string]*strings.Builder{}
	for _, p := range procs {
		key := sanitize(p.Source.Package + "_" + p.Source.Toolchain)
		if p.Source.Patched {
			key += "_patched"
		}
		b, ok := files[key]
		if !ok {
			b = &strings.Builder{}
			files[key] = b
		}
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail("mkdir: %v", err)
	}
	for name, b := range files {
		path := filepath.Join(*out, name+".s")
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			fail("write %s: %v", path, err)
		}
	}
	fmt.Printf("wrote %d procedures into %d files under %s\n", len(procs), len(files), *out)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "eshcorpus: "+format+"\n", args...)
	os.Exit(1)
}
