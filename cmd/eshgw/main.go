// Command eshgw is the cluster coordinator: it loads a shard manifest
// written by eshcorpus -save-shards, fans each query out to one replica
// of every eshd shard, and merges the partial scores into results
// bit-identical to a single eshd serving the whole corpus.
//
// Usage:
//
//	eshgw -manifest corpus.eshidx.manifest \
//	      -shards "http://h0:8710,http://h0b:8710;http://h1:8710" \
//	      [-addr :8720] [-timeout 60s] [-hedge-after 300ms]
//	      [-retries 2] [-retry-backoff 100ms] [-probe-interval 2s]
//	      [-scrape-interval 15s] [-slow-query-threshold 1s]
//	      [-allow-degraded] [-log-format text|json]
//	      [-pprof-addr 127.0.0.1:6061]
//
// -shards lists replica base URLs per shard: ';' separates shards (in
// shard-ID order, one group per manifest shard), ',' separates replicas
// of one shard. Extra replicas enable hedging (a duplicate request
// races the straggler after -hedge-after) and retries.
//
// At startup the gateway checks every replica's /v1/stats against the
// manifest — fleet generation, shard coordinates, snapshot checksum,
// sigmoid k — and refuses to start on a mismatch (merged scores would
// be silently wrong) unless -allow-degraded is set. Kernel and
// prefilter mode differences are score-neutral and only logged.
//
// Endpoints:
//
//	POST /v1/query      same schema as eshd; responses add "partial" and
//	                    "missing_shards" when a shard was unreachable.
//	                    ?trace=1 returns the fan-out tree with each
//	                    shard's server-side trace grafted in.
//	GET  /v1/stats      fleet health, hedge/retry counters, latency
//	GET  /v1/fleet      JSON fleet view: readiness, per-shard p99, scrapes
//	GET  /debug/queries flight recorder: recent fan-outs with shard legs
//	GET  /debug/slow    slow-query log: full fan-out span trees
//	GET  /metrics       federated exposition: gateway series plus each
//	                    shard's scraped series re-labeled shard="<id>"
//	GET  /healthz       liveness
//	GET  /readyz        readiness: every shard has a ready replica
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/shard"
)

func main() {
	manifestPath := flag.String("manifest", "", "shard manifest to coordinate (required; written by eshcorpus -save-shards)")
	shardsFlag := flag.String("shards", "", "replica base URLs per shard: ';' between shards, ',' between replicas (required)")
	addr := flag.String("addr", ":8720", "listen address")
	timeout := flag.Duration("timeout", 60*time.Second, "per-query fan-out timeout")
	hedgeAfter := flag.Duration("hedge-after", 300*time.Millisecond, "per-shard latency budget before hedging onto another replica")
	retries := flag.Int("retries", 2, "extra attempts per shard after failures")
	backoff := flag.Duration("retry-backoff", 100*time.Millisecond, "base wait before a retry (scales linearly)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "/readyz polling period")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent fan-outs (0 = 16)")
	allowDegraded := flag.Bool("allow-degraded", false, "start even when fleet verification fails or replicas are unreachable")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	scrapeInterval := flag.Duration("scrape-interval", 15*time.Second, "metrics-federation scrape period for shard /metrics pages")
	slowThreshold := flag.Duration("slow-query-threshold", time.Second, "fan-outs at or above this duration keep their span tree in /debug/slow (negative = disabled)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fail("unknown -log-format %q (text, json)", *logFormat)
	}
	logger := slog.New(handler)
	if *manifestPath == "" {
		fail("pass -manifest corpus.eshidx.manifest (create one with: eshcorpus -save corpus.eshidx -save-shards N)")
	}
	if *shardsFlag == "" {
		fail("pass -shards \"http://h0:8710;http://h1:8710\" (';' between shards, ',' between replicas)")
	}

	man, err := shard.LoadManifest(*manifestPath)
	if err != nil {
		fail("%v", err)
	}
	var replicas [][]string
	for _, group := range strings.Split(*shardsFlag, ";") {
		var reps []string
		for _, u := range strings.Split(group, ",") {
			if u = strings.TrimSpace(u); u != "" {
				reps = append(reps, u)
			}
		}
		replicas = append(replicas, reps)
	}

	gw, err := gateway.New(gateway.Config{
		Manifest:           man,
		Shards:             replicas,
		QueryTimeout:       *timeout,
		HedgeAfter:         *hedgeAfter,
		MaxRetries:         *retries,
		RetryBackoff:       *backoff,
		ProbeInterval:      *probeInterval,
		MaxInFlight:        *maxInflight,
		Logger:             logger,
		ScrapeInterval:     *scrapeInterval,
		SlowQueryThreshold: *slowThreshold,
	})
	if err != nil {
		fail("%v", err)
	}

	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	// Verify the fleet before serving: a replica with the wrong
	// snapshot would merge into silently wrong scores.
	vctx, vcancel := context.WithTimeout(context.Background(), 10*time.Second)
	warnings, errs := gw.CheckFleet(vctx)
	vcancel()
	for _, wmsg := range warnings {
		logger.Warn("fleet", "msg", wmsg)
	}
	for _, e := range errs {
		logger.Error("fleet verification failed", "err", e.Error())
	}
	if len(errs) > 0 && !*allowDegraded {
		fail("%d fleet verification error(s); fix the fleet or pass -allow-degraded", len(errs))
	}
	logger.Info("fleet verified",
		"manifest", *manifestPath,
		"generation", man.Generation,
		"shards", len(man.Shards),
		"targets", man.NumTargets,
		"errors", len(errs),
	)

	gw.StartProber()
	defer gw.StopProber()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr)

	select {
	case err := <-errCh:
		fail("serve: %v", err)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown incomplete", "err", err)
		os.Exit(1)
	}
	logger.Info("drained, exiting")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "eshgw: "+format+"\n", args...)
	os.Exit(1)
}
