package main_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/corpus"
)

// TestClusterE2E is the process-level cluster smoke test: eshcorpus
// shards a small compiled corpus two ways, two real eshd processes
// serve the shards, an eshgw process coordinates them, and the
// gateway's ranked rows — names and raw scores, compared on the JSON
// bytes — must be identical to a single eshd serving the union
// snapshot. Then one shard is killed and the gateway must keep
// answering 200 with the partial flag and the dead shard listed.
//
// The corpus is indexed with -retrieval=probe, so the whole fleet —
// union node and both shards — serves with probe-mode stage 3 and the
// manifest records the mode; at the snapshot's sound settings the
// byte-identity assertion below is also the probe-vs-scan guarantee,
// because the single node's rows were already proven identical to
// scan mode by TestRetrievalDifferential.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries, indexes a corpus, and runs a process-level cluster")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"eshcorpus", "eshd", "eshgw"} {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	snap := filepath.Join(dir, "corpus.eshidx")
	if out, err := exec.Command(bins["eshcorpus"], "-save", snap, "-save-shards", "2",
		"-scale", "small", "-synth", "0", "-retrieval", "probe").CombinedOutput(); err != nil {
		t.Fatalf("eshcorpus -save -save-shards: %v\n%s", err, out)
	}
	manifest := snap + ".manifest"
	for _, p := range []string{manifest, manifest + ".0", manifest + ".1"} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("missing cluster artifact: %v", err)
		}
	}

	ports := freePorts(t, 4)
	singleAddr := fmt.Sprintf("127.0.0.1:%d", ports[0])
	shardAddr := []string{
		fmt.Sprintf("127.0.0.1:%d", ports[1]),
		fmt.Sprintf("127.0.0.1:%d", ports[2]),
	}
	gwAddr := fmt.Sprintf("127.0.0.1:%d", ports[3])

	start := func(name string, args ...string) *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bins[name], args...)
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
		return cmd
	}
	start("eshd", "-index", snap, "-addr", singleAddr)
	shardProcs := []*exec.Cmd{
		start("eshd", "-index", manifest+".0", "-addr", shardAddr[0]),
		start("eshd", "-index", manifest+".1", "-addr", shardAddr[1]),
	}
	for _, addr := range append([]string{singleAddr}, shardAddr...) {
		waitReady(t, "http://"+addr+"/readyz", 30*time.Second)
	}

	start("eshgw", "-manifest", manifest,
		"-shards", "http://"+shardAddr[0]+";http://"+shardAddr[1],
		"-addr", gwAddr, "-retries", "1", "-retry-backoff", "50ms")
	waitReady(t, "http://"+gwAddr+"/readyz", 30*time.Second)

	qtc, ok := compile.ByName("clang-3.5")
	if !ok {
		t.Fatal("query toolchain missing")
	}
	q, err := corpus.CompileVuln(corpus.Vulns()[0], qtc, false)
	if err != nil {
		t.Fatal(err)
	}
	reqBody, _ := json.Marshal(map[string]any{"asm": q.String(), "top": 50})

	post := func(addr string) (int, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Post("http://"+addr+"/v1/query", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Fatalf("query %s: %v", addr, err)
		}
		defer resp.Body.Close()
		var fields map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&fields); err != nil {
			t.Fatalf("decode from %s: %v", addr, err)
		}
		return resp.StatusCode, fields
	}

	// Differential: the gateway's rows must be byte-identical JSON to
	// the single node's — same ranking, same raw scores to the last
	// digit (Go encodes float64 shortest-exact, so byte equality is bit
	// equality).
	codeSingle, single := post(singleAddr)
	codeGW, gw := post(gwAddr)
	if codeSingle != http.StatusOK || codeGW != http.StatusOK {
		t.Fatalf("query status: single=%d gateway=%d", codeSingle, codeGW)
	}
	if string(single["results"]) != string(gw["results"]) {
		t.Fatalf("gateway results diverge from single node:\n--- single ---\n%s\n--- gateway ---\n%s",
			single["results"], gw["results"])
	}
	if _, ok := gw["partial"]; ok {
		t.Fatalf("complete fleet flagged partial: %s", gw["partial"])
	}

	// Kill shard 1: the gateway must degrade, not fail.
	shardProcs[1].Process.Signal(syscall.SIGKILL)
	shardProcs[1].Wait()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, fields := post(gwAddr)
		if code != http.StatusOK {
			t.Fatalf("shard-down query = %d, want 200", code)
		}
		var partial bool
		var missing []int
		json.Unmarshal(fields["partial"], &partial)
		json.Unmarshal(fields["missing_shards"], &missing)
		if partial {
			if len(missing) != 1 || missing[0] != 1 {
				t.Fatalf("missing_shards = %v, want [1]", missing)
			}
			if string(fields["results"]) == string(single["results"]) {
				t.Fatal("degraded response still lists the dead shard's targets")
			}
			break
		}
		// The kill can race an in-flight connection's keep-alive; retry
		// until the gateway observes the death.
		if time.Now().After(deadline) {
			t.Fatal("gateway never flagged the dead shard")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = l.Addr().(*net.TCPAddr).Port
		defer l.Close()
	}
	return ports
}

func waitReady(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", url)
}
