// Command esh is the search tool of the reproduction: given a query
// procedure and a target database of procedures in assembler-text form,
// it prints the targets ranked by the statistical similarity (GES) of the
// paper, alongside the S-VCP and S-LOG sub-method scores.
//
// Usage:
//
//	esh -query q.s [-load corpus.eshidx] [dir-or-file.s ...] [-top 20] [-method esh]
//
// Files hold procedures in the Intel-like assembler syntax of
// internal/asm (see Proc.String); a file may contain many procedures.
// With -demo, esh builds a small demonstration database from the bundled
// corpus instead of reading files. With -load, the target database is
// restored from a strand index snapshot written by eshcorpus -save, so
// the corpus is not re-indexed on every invocation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

func main() {
	queryPath := flag.String("query", "", "file containing the query procedure (first proc is used)")
	top := flag.Int("top", 20, "number of ranked targets to print")
	method := flag.String("method", "esh", "ranking method: esh, slog, svcp")
	demo := flag.Bool("demo", false, "use the bundled demo corpus as the target database")
	loadPath := flag.String("load", "", "restore the target database from a strand index snapshot (eshcorpus -save)")
	workers := flag.Int("workers", 0, "query parallelism (0 = GOMAXPROCS)")
	pathLen := flag.Int("pathlen", 0, "decompose small procedures over control-flow paths of this many blocks (0 = off)")
	sigmoidK := flag.Float64("sigmoid-k", 0, "Esh sigmoid steepness (0 = paper's k=10)")
	timings := flag.Bool("timings", false, "print a per-stage timing and work breakdown to stderr")
	repeat := flag.Int("repeat", 1, "run the query this many times and print a p50/p95/p99 latency summary with -timings (results print once)")
	prefilter := flag.String("prefilter", "lsh", "candidate prefilter for the VCP pair loop: off or lsh")
	lshBands := flag.Int("lsh-bands", 0, "LSH bands of the sketch prefilter (0 = default)")
	lshRows := flag.Int("lsh-rows", 0, "LSH rows per band of the sketch prefilter (0 = default)")
	lshMinCont := flag.Float64("lsh-min-containment", 0, "enable the heuristic prefilter tier at this estimated-containment threshold (0 = sound tier only; rankings can change when set)")
	kernel := flag.String("kernel", "", "evaluation kernel for the verifier γ loop: batch or scalar (empty = batch; rankings are identical)")
	gammaBatch := flag.Int("gamma-batch", 0, "γ-batch width of the batched kernel: correspondences evaluated per kernel dispatch (0 = default 8; rankings are identical at any width)")
	retrieval := flag.String("retrieval", "scan", "stage-3 candidate retrieval: scan or probe (rankings are identical at sound settings)")
	flag.Parse()

	prefMode, err := core.NormalizePrefilter(*prefilter)
	if err != nil {
		fail("%v", err)
	}
	kernMode, err := core.NormalizeKernel(*kernel)
	if err != nil {
		fail("%v", err)
	}
	gammaW, err := core.NormalizeGammaBatch(*gammaBatch)
	if err != nil {
		fail("%v", err)
	}
	retrMode, err := core.NormalizeRetrieval(*retrieval)
	if err != nil {
		fail("%v", err)
	}

	var m stats.Method
	switch *method {
	case "esh":
		m = stats.Esh
	case "slog":
		m = stats.SLOG
	case "svcp":
		m = stats.SVCP
	default:
		fail("unknown method %q (esh, slog, svcp)", *method)
	}

	var db *core.DB
	if *loadPath != "" {
		loaded, err := index.LoadFile(*loadPath)
		if err != nil {
			fail("%v", err)
		}
		loaded.SetWorkers(*workers)
		if si := loaded.Shard(); si.Sharded() {
			fmt.Fprintf(os.Stderr, "esh: warning: %s is shard %d of %d (generation %s); scores use shard-local statistics — query the fleet through eshgw for corpus-exact scores\n",
				*loadPath, si.ID, si.Count, si.Generation)
		}
		if *pathLen != 0 || *sigmoidK != 0 {
			fmt.Fprintln(os.Stderr, "esh: -pathlen and -sigmoid-k are fixed at index time; the snapshot's values apply under -load")
		}
		if err := loaded.ConfigurePrefilter(prefMode, *lshBands, *lshRows, *lshMinCont); err != nil {
			fail("%v", err)
		}
		if err := loaded.ConfigureKernel(kernMode); err != nil {
			fail("%v", err)
		}
		if err := loaded.ConfigureGammaBatch(gammaW); err != nil {
			fail("%v", err)
		}
		if err := loaded.ConfigureRetrieval(retrMode); err != nil {
			fail("%v", err)
		}
		db = loaded
	} else {
		opts := core.Options{
			Workers:           *workers,
			PathLen:           *pathLen,
			SigmoidK:          *sigmoidK,
			Prefilter:         prefMode,
			LSHBands:          *lshBands,
			LSHRows:           *lshRows,
			LSHMinContainment: *lshMinCont,
			Retrieval:         retrMode,
		}
		opts.VCP.Kernel = kernMode
		opts.VCP.GammaBatch = gammaW
		db = core.NewDB(opts)
	}
	var query *asm.Proc

	if *demo {
		procs, err := corpus.Build(corpus.BuildConfig{
			Toolchains:     compile.Toolchains()[:4],
			IncludePatched: true,
		})
		if err != nil {
			fail("build demo corpus: %v", err)
		}
		for _, p := range procs {
			if err := db.AddTarget(p); err != nil {
				fail("index %s: %v", p.Name, err)
			}
		}
		if *queryPath == "" {
			icc, _ := compile.ByName("icc-15.0.1")
			q, err := corpus.CompileVuln(corpus.Vulns()[0], icc, false)
			if err != nil {
				fail("compile demo query: %v", err)
			}
			query = q
		}
	}

	for _, path := range flag.Args() {
		if err := loadInto(db, path); err != nil {
			fail("%v", err)
		}
	}

	if *queryPath != "" {
		data, err := os.ReadFile(*queryPath)
		if err != nil {
			fail("read query: %v", err)
		}
		procs, err := asm.Parse(string(data))
		if err != nil {
			fail("parse query: %v", err)
		}
		if len(procs) == 0 {
			fail("query file %s contains no procedures", *queryPath)
		}
		query = procs[0]
	}
	if query == nil {
		fail("no query: pass -query file.s (or -demo)")
	}
	if db.NumTargets() == 0 {
		fail("no targets: pass database files as arguments (or -demo / -load)")
	}

	if *repeat < 1 {
		*repeat = 1
	}
	ctx, root := telemetry.StartSpan(context.Background(), "query")
	rep, err := db.QueryCtx(ctx, query)
	root.End()
	if err != nil {
		fail("query: %v", err)
	}
	// Extra runs feed the latency percentile summary; the first run's
	// report and trace are the ones printed (repeats hit the VCP cache,
	// so they measure steady-state serve latency, not cold indexing).
	lat := telemetry.NewQuantiles(0.5, 0.95, 0.99)
	lat.Observe(root.Duration().Seconds())
	for i := 1; i < *repeat; i++ {
		rctx, rspan := telemetry.StartSpan(context.Background(), "query")
		if _, err := db.QueryCtx(rctx, query); err != nil {
			fail("query (repeat %d): %v", i, err)
		}
		lat.Observe(rspan.End().Seconds())
	}
	fmt.Printf("query %s: %d blocks, %d strands; database: %d procedures, %d unique strands\n",
		rep.QueryName, rep.NumBlocks, rep.NumStrands, db.NumTargets(), db.NumUniqueStrands())
	fmt.Printf("%-4s %-52s %12s\n", "rank", "procedure", m.String())
	for i, ts := range rep.Rank(m) {
		if i >= *top {
			break
		}
		fmt.Printf("%-4d %-52s %12.3f\n", i+1, ts.Target.Name, ts.Score(m))
	}
	if *timings {
		fmt.Fprintln(os.Stderr, "timings:")
		root.Snapshot().WriteTree(os.Stderr)
		if *repeat > 1 {
			fmt.Fprintf(os.Stderr, "latency over %d runs: p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
				*repeat,
				lat.Quantile(0.5)*1000, lat.Quantile(0.95)*1000,
				lat.Quantile(0.99)*1000, lat.Max()*1000)
		}
	}
}

// loadInto parses one .s file or all .s files under a directory.
func loadInto(db *core.DB, path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	var files []string
	if info.IsDir() {
		err := filepath.WalkDir(path, func(p string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(p, ".s") {
				files = append(files, p)
			}
			return err
		})
		if err != nil {
			return err
		}
	} else {
		files = []string{path}
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		procs, err := asm.Parse(string(data))
		if err != nil {
			return fmt.Errorf("parse %s: %w", f, err)
		}
		for _, p := range procs {
			if err := db.AddTarget(p); err != nil {
				return fmt.Errorf("index %s: procedure %s: %w", f, p.Name, err)
			}
		}
	}
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "esh: "+format+"\n", args...)
	os.Exit(1)
}
