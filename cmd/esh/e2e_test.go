package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/compile"
	"repro/internal/corpus"
)

// End-to-end golden test of the CLI pipeline: eshcorpus -save builds a
// snapshot, esh -load queries it, and the ranked output must match the
// committed golden byte for byte. The corpus, toolchains, and engine
// are all deterministic, so any diff is a behavior change — bump the
// golden deliberately (UPDATE_GOLDEN=1 go test ./cmd/esh) when one is
// intended. The same query is then repeated with -prefilter=off, which
// must print the identical ranking: the CLI-level form of the
// prefilter's soundness guarantee.
func TestCLIGoldenQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and indexes a corpus")
	}
	dir := t.TempDir()
	eshBin := filepath.Join(dir, "esh")
	corpusBin := filepath.Join(dir, "eshcorpus")
	build := func(bin, pkg string) {
		t.Helper()
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	build(eshBin, "repro/cmd/esh")
	build(corpusBin, "repro/cmd/eshcorpus")

	snap := filepath.Join(dir, "corpus.eshidx")
	if out, err := exec.Command(corpusBin, "-save", snap, "-scale", "small", "-synth", "0").CombinedOutput(); err != nil {
		t.Fatalf("eshcorpus -save: %v\n%s", err, out)
	}

	// The query is Heartbleed compiled by an in-corpus toolchain, written
	// out the same way eshcorpus -out would.
	qtc, ok := compile.ByName("clang-3.5")
	if !ok {
		t.Fatal("query toolchain missing")
	}
	q, err := corpus.CompileVuln(corpus.Vulns()[0], qtc, false)
	if err != nil {
		t.Fatal(err)
	}
	queryPath := filepath.Join(dir, "query.s")
	if err := os.WriteFile(queryPath, []byte(q.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(eshBin, args...)
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("esh %v: %v", args, err)
		}
		return string(out)
	}
	got := run("-load", snap, "-query", queryPath, "-top", "10")

	goldenPath := filepath.Join("testdata", "query_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("CLI output diverges from golden %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}

	off := run("-load", snap, "-query", queryPath, "-top", "10", "-prefilter", "off")
	if off != got {
		t.Errorf("-prefilter=off output differs from the default lsh run:\n--- off ---\n%s--- lsh ---\n%s", off, got)
	}

	// The same query through the scalar reference kernel: the batched
	// SoA kernel's fingerprints are byte-identical by contract, so the
	// printed ranking must be too.
	scalar := run("-load", snap, "-query", queryPath, "-top", "10", "-kernel", "scalar")
	if scalar != got {
		t.Errorf("-kernel=scalar output differs from the default batch run:\n--- scalar ---\n%s--- batch ---\n%s", scalar, got)
	}
}
