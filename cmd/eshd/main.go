// Command eshd is the query-serving daemon: it loads a strand index
// snapshot produced by eshcorpus -save (or esh -save-like tooling) and
// answers similarity queries over HTTP, so a corpus is indexed once and
// served many times.
//
// Usage:
//
//	eshd -index corpus.eshidx [-addr :8710] [-timeout 60s]
//	     [-max-inflight 16] [-workers 0] [-drain 30s]
//
// Endpoints:
//
//	POST /v1/query    {"asm": "...", "method": "esh|slog|svcp", "top": 20}
//	GET  /v1/targets  indexed procedures with provenance
//	GET  /v1/stats    index size, cache occupancy, query counters, latency
//	GET  /healthz     liveness
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight queries (up to -drain) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/index"
	"repro/internal/server"
)

func main() {
	indexPath := flag.String("index", "", "strand index snapshot to serve (required)")
	addr := flag.String("addr", ":8710", "listen address")
	timeout := flag.Duration("timeout", 60*time.Second, "per-query timeout")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent queries (0 = 2×GOMAXPROCS)")
	workers := flag.Int("workers", 0, "per-query strand parallelism (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain window")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *indexPath == "" {
		fail("pass -index snapshot.eshidx (create one with: eshcorpus -save snapshot.eshidx)")
	}

	start := time.Now()
	db, err := index.LoadFile(*indexPath)
	if err != nil {
		fail("%v", err)
	}
	db.SetWorkers(*workers)
	st := db.Stats()
	logger.Info("index loaded",
		"path", *indexPath,
		"targets", st.Targets,
		"unique_strands", st.UniqueStrands,
		"total_strands", st.TotalStrands,
		"load_ms", time.Since(start).Milliseconds(),
	)

	srv := server.New(db, server.Config{
		QueryTimeout: *timeout,
		MaxInFlight:  *maxInflight,
		Logger:       logger,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr)

	select {
	case err := <-errCh:
		fail("serve: %v", err)
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight queries finish.
	logger.Info("shutting down", "drain", (*drain).String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown incomplete", "err", err)
		os.Exit(1)
	}
	logger.Info("drained, exiting")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "eshd: "+format+"\n", args...)
	os.Exit(1)
}
