// Command eshd is the query-serving daemon: it loads a strand index
// snapshot produced by eshcorpus -save (or esh -save-like tooling) and
// answers similarity queries over HTTP, so a corpus is indexed once and
// served many times.
//
// Usage:
//
//	eshd -index corpus.eshidx [-addr :8710] [-timeout 60s]
//	     [-max-inflight 16] [-workers 0] [-drain 30s]
//	     [-log-format text|json] [-pprof-addr 127.0.0.1:6060]
//	     [-slow-query-threshold 1s] [-recorder-size 512]
//	     [-wal corpus.wal] [-fsync always|none]
//	     [-compact-interval 0] [-compact-pending 0]
//
// Endpoints:
//
//	POST /v1/query          {"asm": "...", "method": "esh|slog|svcp", "top": 20}
//	                        append ?trace=1 for a per-stage timing breakdown
//	POST /v1/query/partial  shard-local partial scores, for an eshgw coordinator
//	GET  /v1/targets        indexed procedures with provenance
//	POST /v1/targets        index new procedures live (requires -wal)
//	DELETE /v1/targets/{name}  tombstone a target (requires -wal)
//	POST /v1/compact        fold WAL + tombstones into a new snapshot generation
//	GET  /v1/stats          index size, snapshot identity, query counters, latency
//	GET  /debug/queries     flight recorder: recent queries with stage timings
//	GET  /debug/slow        slow-query log: full span trees, no ?trace=1 needed
//	GET  /metrics           Prometheus text-format exposition
//	GET  /healthz           liveness
//	GET  /readyz            readiness (503 while draining)
//
// With -wal, the daemon accepts live corpus writes: each accepted write
// is appended to the write-ahead log before it is applied (with -fsync
// always, the default, it is fsynced too — an acknowledged write
// survives power loss), and on startup any WAL records newer than the
// snapshot's high-water mark are replayed. Compaction (manual via POST
// /v1/compact, or automatic via -compact-interval / -compact-pending)
// folds the accumulated writes into a new snapshot generation at
// -index, atomically rewrites the WAL down to its tail, and keeps
// serving queries throughout.
//
// With -pprof-addr, net/http/pprof profiling endpoints are served on a
// separate (normally loopback-only) listener, so profiles are never
// exposed on the query port.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight queries (up to -drain) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

func main() {
	indexPath := flag.String("index", "", "strand index snapshot to serve (required)")
	addr := flag.String("addr", ":8710", "listen address")
	timeout := flag.Duration("timeout", 60*time.Second, "per-query timeout")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent queries (0 = 2×GOMAXPROCS)")
	workers := flag.Int("workers", 0, "per-query pair-loop parallelism (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain window")
	notice := flag.Duration("ready-notice", 0, "hold /readyz at 503 this long before closing the listener, so pollers route away first")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	slowThreshold := flag.Duration("slow-query-threshold", time.Second, "queries at or above this duration keep their span tree in /debug/slow (negative = disabled)")
	recorderSize := flag.Int("recorder-size", 0, "flight-recorder ring size (0 = default 512)")
	prefilter := flag.String("prefilter", "", "candidate prefilter for the VCP pair loop: off or lsh (empty = snapshot's setting)")
	lshBands := flag.Int("lsh-bands", 0, "LSH bands of the sketch prefilter (0 = snapshot's geometry)")
	lshRows := flag.Int("lsh-rows", 0, "LSH rows per band of the sketch prefilter (0 = snapshot's geometry)")
	lshMinCont := flag.Float64("lsh-min-containment", -1, "heuristic prefilter tier threshold (0 = sound tier only, -1 = snapshot's setting; rankings can change when > 0)")
	kernel := flag.String("kernel", "", "evaluation kernel for the verifier γ loop: batch or scalar (empty = snapshot's setting; rankings are identical)")
	gammaBatch := flag.Int("gamma-batch", 0, "γ-batch width of the batched kernel: correspondences per kernel dispatch (0 = snapshot's setting; rankings are identical at any width)")
	retrieval := flag.String("retrieval", "", "stage-3 candidate retrieval: scan or probe (empty = snapshot's setting; rankings are identical at sound settings)")
	walPath := flag.String("wal", "", "write-ahead log path; enables the live write endpoints (empty = read-only serving)")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always (acknowledged writes survive power loss) or none (survive process crash only)")
	compactInterval := flag.Duration("compact-interval", 0, "with -wal: compact this often when writes are pending (0 = no timer)")
	compactPending := flag.Int("compact-pending", 0, "with -wal: compact as soon as this many writes are pending (0 = no threshold)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fail("unknown -log-format %q (text, json)", *logFormat)
	}
	logger := slog.New(handler)
	if *indexPath == "" {
		fail("pass -index snapshot.eshidx (create one with: eshcorpus -save snapshot.eshidx)")
	}

	lctx, loadSpan := telemetry.StartSpan(context.Background(), "startup")
	db, info, err := index.LoadFileInfoCtx(lctx, *indexPath)
	loadSpan.End()
	if err != nil {
		fail("%v", err)
	}
	db.SetWorkers(*workers)
	mode := *prefilter
	if mode == "" {
		mode = db.Options().Prefilter // keep the snapshot's setting
	}
	if err := db.ConfigurePrefilter(mode, *lshBands, *lshRows, *lshMinCont); err != nil {
		fail("%v", err)
	}
	kernMode := *kernel
	if kernMode == "" {
		kernMode = db.Options().VCP.Kernel // keep the snapshot's setting
	}
	if err := db.ConfigureKernel(kernMode); err != nil {
		fail("%v", err)
	}
	gammaW := *gammaBatch
	if gammaW == 0 {
		gammaW = db.Options().VCP.GammaBatch // keep the snapshot's setting
	}
	if err := db.ConfigureGammaBatch(gammaW); err != nil {
		fail("%v", err)
	}
	retrMode := *retrieval
	if retrMode == "" {
		retrMode = db.Options().Retrieval // keep the snapshot's setting
	}
	if err := db.ConfigureRetrieval(retrMode); err != nil {
		fail("%v", err)
	}

	// With -wal, recover the log, replay any records newer than the
	// snapshot's high-water mark, and journal all future writes.
	var wlog *walLog
	if *walPath != "" {
		switch wal.SyncPolicy(*fsync) {
		case wal.SyncAlways, wal.SyncNone:
		default:
			fail("unknown -fsync %q (always, none)", *fsync)
		}
		log, recs, err := wal.Open(*walPath, wal.Options{Sync: wal.SyncPolicy(*fsync)})
		if err != nil {
			fail("wal: %v", err)
		}
		replayed := 0
		for _, r := range recs {
			if r.Seq <= db.WALSeq() {
				continue // already folded into the snapshot
			}
			switch r.Op {
			case wal.OpAdd:
				p, err := asm.ParseProc(r.Body)
				if err != nil {
					fail("wal replay seq %d: parse %s: %v", r.Seq, r.Name, err)
				}
				if err := db.ReplayAdd(p, r.Seq); err != nil {
					fail("wal replay seq %d: add %s: %v", r.Seq, r.Name, err)
				}
			case wal.OpDelete:
				if err := db.ReplayRemove(r.Name, r.Seq); err != nil {
					fail("wal replay seq %d: delete %s: %v", r.Seq, r.Name, err)
				}
			}
			replayed++
		}
		wlog = &walLog{log: log}
		db.SetJournal(wlog)
		ws := wlog.Stats()
		logger.Info("wal recovered", "path", *walPath, "fsync", *fsync,
			"records", ws.Replayed, "replayed", replayed, "last_seq", ws.LastSeq,
			"truncated_tail", ws.TruncatedTail, "corrupt", ws.Corrupt)
	}

	st := db.Stats()
	attrs := []any{
		"path", *indexPath,
		"targets", st.Targets,
		"unique_strands", st.UniqueStrands,
		"total_strands", st.TotalStrands,
		"prefilter", st.Prefilter,
		"lsh_bands", st.LSHBands,
		"lsh_rows", st.LSHRows,
		"kernel", st.Kernel,
		"gamma_batch", st.GammaBatch,
		"retrieval", st.Retrieval,
		"snapshot_version", info.Version,
		"checksum", info.Checksum,
		"load_ms", loadSpan.Duration().Milliseconds(),
	}
	if si := db.Shard(); si.Sharded() {
		attrs = append(attrs, "shard", si.ID, "shard_count", si.Count, "generation", si.Generation)
	}
	// The index.load child span carries the decode/prepare split.
	if snap := loadSpan.Snapshot(); len(snap.Children) == 1 {
		for _, c := range snap.Children[0].Children {
			attrs = append(attrs, c.Name+"_ms", c.DurationMS)
		}
	}
	logger.Info("index loaded", attrs...)

	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	// The compact hook persists the folded corpus over -index (atomic
	// temp+rename), swaps it live, then rewrites the WAL down to its
	// tail. It closes over srv (assigned just below) so /v1/stats
	// reports the new snapshot identity; compaction can only be invoked
	// once the server is up.
	var srv *server.Server
	var compact func() (uint64, uint64, error)
	if wlog != nil {
		compact = func() (uint64, uint64, error) {
			var newInfo index.Info
			persisted := false
			gen, hwm, err := db.Compact(func(ex *core.Export) error {
				inf, perr := index.SaveExportFile(*indexPath, ex)
				if perr != nil {
					return perr
				}
				newInfo, persisted = inf, true
				return nil
			}, wlog.Rewrite)
			if persisted {
				srv.SetSnapshotInfo(newInfo)
				logger.Info("compacted", "generation", gen, "wal_hwm", hwm,
					"checksum", newInfo.Checksum, "err", err)
			}
			return gen, hwm, err
		}
	}

	cfg := server.Config{
		QueryTimeout:       *timeout,
		MaxInFlight:        *maxInflight,
		Logger:             logger,
		Snapshot:           info,
		SlowQueryThreshold: *slowThreshold,
		RecorderSize:       *recorderSize,
		EnableWrites:       wlog != nil,
		Compact:            compact,
	}
	if wlog != nil {
		cfg.WALStats = wlog.Stats
	}
	srv = server.New(db, cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background compactor: on a timer, by pending-write threshold, or
	// both. The threshold is polled every second so a write burst gets
	// folded promptly without a tight loop.
	if compact != nil && (*compactInterval > 0 || *compactPending > 0) {
		go func() {
			poll := *compactInterval
			if *compactPending > 0 && (poll <= 0 || poll > time.Second) {
				poll = time.Second
			}
			ticker := time.NewTicker(poll)
			defer ticker.Stop()
			last := time.Now()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				pending := db.PendingWrites()
				if pending == 0 {
					continue
				}
				due := *compactInterval > 0 && time.Since(last) >= *compactInterval
				if *compactPending > 0 && pending >= *compactPending {
					due = true
				}
				if !due {
					continue
				}
				if _, _, err := compact(); err != nil {
					logger.Error("compaction failed", "err", err)
				}
				last = time.Now()
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr)

	select {
	case err := <-errCh:
		fail("serve: %v", err)
	case <-ctx.Done():
	}

	// Drain: flip /readyz to 503 first so the gateway and load
	// balancers route around this replica, give their probes a moment
	// to notice, then stop accepting and let in-flight queries finish.
	srv.SetReady(false)
	logger.Info("shutting down", "drain", (*drain).String(), "ready_notice", (*notice).String())
	if *notice > 0 {
		time.Sleep(*notice)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown incomplete", "err", err)
		os.Exit(1)
	}
	if wlog != nil {
		if err := wlog.Close(); err != nil {
			logger.Error("wal close", "err", err)
		}
	}
	logger.Info("drained, exiting")
}

// walLog adapts *wal.Log to core.Journal and serializes it: the engine
// already serializes journal appends and the compaction rewrite behind
// its write lock, but /v1/stats reads Stats concurrently, so the
// adapter owns one mutex for all four.
type walLog struct {
	mu  sync.Mutex
	log *wal.Log
}

func (w *walLog) LogAdd(name, body string) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.log.Append(wal.OpAdd, name, body)
}

func (w *walLog) LogRemove(name string) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.log.Append(wal.OpDelete, name, "")
}

func (w *walLog) Rewrite(hwm uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.log.Rewrite(hwm)
}

func (w *walLog) Stats() wal.Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.log.Stats()
}

func (w *walLog) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.log.Close()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "eshd: "+format+"\n", args...)
	os.Exit(1)
}
