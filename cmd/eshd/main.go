// Command eshd is the query-serving daemon: it loads a strand index
// snapshot produced by eshcorpus -save (or esh -save-like tooling) and
// answers similarity queries over HTTP, so a corpus is indexed once and
// served many times.
//
// Usage:
//
//	eshd -index corpus.eshidx [-addr :8710] [-timeout 60s]
//	     [-max-inflight 16] [-workers 0] [-drain 30s]
//	     [-log-format text|json] [-pprof-addr 127.0.0.1:6060]
//	     [-slow-query-threshold 1s] [-recorder-size 512]
//
// Endpoints:
//
//	POST /v1/query          {"asm": "...", "method": "esh|slog|svcp", "top": 20}
//	                        append ?trace=1 for a per-stage timing breakdown
//	POST /v1/query/partial  shard-local partial scores, for an eshgw coordinator
//	GET  /v1/targets        indexed procedures with provenance
//	GET  /v1/stats          index size, snapshot identity, query counters, latency
//	GET  /debug/queries     flight recorder: recent queries with stage timings
//	GET  /debug/slow        slow-query log: full span trees, no ?trace=1 needed
//	GET  /metrics           Prometheus text-format exposition
//	GET  /healthz           liveness
//	GET  /readyz            readiness (503 while draining)
//
// With -pprof-addr, net/http/pprof profiling endpoints are served on a
// separate (normally loopback-only) listener, so profiles are never
// exposed on the query port.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight queries (up to -drain) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/index"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	indexPath := flag.String("index", "", "strand index snapshot to serve (required)")
	addr := flag.String("addr", ":8710", "listen address")
	timeout := flag.Duration("timeout", 60*time.Second, "per-query timeout")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent queries (0 = 2×GOMAXPROCS)")
	workers := flag.Int("workers", 0, "per-query pair-loop parallelism (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain window")
	notice := flag.Duration("ready-notice", 0, "hold /readyz at 503 this long before closing the listener, so pollers route away first")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	slowThreshold := flag.Duration("slow-query-threshold", time.Second, "queries at or above this duration keep their span tree in /debug/slow (negative = disabled)")
	recorderSize := flag.Int("recorder-size", 0, "flight-recorder ring size (0 = default 512)")
	prefilter := flag.String("prefilter", "", "candidate prefilter for the VCP pair loop: off or lsh (empty = snapshot's setting)")
	lshBands := flag.Int("lsh-bands", 0, "LSH bands of the sketch prefilter (0 = snapshot's geometry)")
	lshRows := flag.Int("lsh-rows", 0, "LSH rows per band of the sketch prefilter (0 = snapshot's geometry)")
	lshMinCont := flag.Float64("lsh-min-containment", -1, "heuristic prefilter tier threshold (0 = sound tier only, -1 = snapshot's setting; rankings can change when > 0)")
	kernel := flag.String("kernel", "", "evaluation kernel for the verifier γ loop: batch or scalar (empty = snapshot's setting; rankings are identical)")
	retrieval := flag.String("retrieval", "", "stage-3 candidate retrieval: scan or probe (empty = snapshot's setting; rankings are identical at sound settings)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fail("unknown -log-format %q (text, json)", *logFormat)
	}
	logger := slog.New(handler)
	if *indexPath == "" {
		fail("pass -index snapshot.eshidx (create one with: eshcorpus -save snapshot.eshidx)")
	}

	lctx, loadSpan := telemetry.StartSpan(context.Background(), "startup")
	db, info, err := index.LoadFileInfoCtx(lctx, *indexPath)
	loadSpan.End()
	if err != nil {
		fail("%v", err)
	}
	db.SetWorkers(*workers)
	mode := *prefilter
	if mode == "" {
		mode = db.Options().Prefilter // keep the snapshot's setting
	}
	if err := db.ConfigurePrefilter(mode, *lshBands, *lshRows, *lshMinCont); err != nil {
		fail("%v", err)
	}
	kernMode := *kernel
	if kernMode == "" {
		kernMode = db.Options().VCP.Kernel // keep the snapshot's setting
	}
	if err := db.ConfigureKernel(kernMode); err != nil {
		fail("%v", err)
	}
	retrMode := *retrieval
	if retrMode == "" {
		retrMode = db.Options().Retrieval // keep the snapshot's setting
	}
	if err := db.ConfigureRetrieval(retrMode); err != nil {
		fail("%v", err)
	}
	st := db.Stats()
	attrs := []any{
		"path", *indexPath,
		"targets", st.Targets,
		"unique_strands", st.UniqueStrands,
		"total_strands", st.TotalStrands,
		"prefilter", st.Prefilter,
		"lsh_bands", st.LSHBands,
		"lsh_rows", st.LSHRows,
		"kernel", st.Kernel,
		"retrieval", st.Retrieval,
		"snapshot_version", info.Version,
		"checksum", info.Checksum,
		"load_ms", loadSpan.Duration().Milliseconds(),
	}
	if si := db.Shard(); si.Sharded() {
		attrs = append(attrs, "shard", si.ID, "shard_count", si.Count, "generation", si.Generation)
	}
	// The index.load child span carries the decode/prepare split.
	if snap := loadSpan.Snapshot(); len(snap.Children) == 1 {
		for _, c := range snap.Children[0].Children {
			attrs = append(attrs, c.Name+"_ms", c.DurationMS)
		}
	}
	logger.Info("index loaded", attrs...)

	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	srv := server.New(db, server.Config{
		QueryTimeout:       *timeout,
		MaxInFlight:        *maxInflight,
		Logger:             logger,
		Snapshot:           info,
		SlowQueryThreshold: *slowThreshold,
		RecorderSize:       *recorderSize,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr)

	select {
	case err := <-errCh:
		fail("serve: %v", err)
	case <-ctx.Done():
	}

	// Drain: flip /readyz to 503 first so the gateway and load
	// balancers route around this replica, give their probes a moment
	// to notice, then stop accepting and let in-flight queries finish.
	srv.SetReady(false)
	logger.Info("shutting down", "drain", (*drain).String(), "ready_notice", (*notice).String())
	if *notice > 0 {
		time.Sleep(*notice)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown incomplete", "err", err)
		os.Exit(1)
	}
	logger.Info("drained, exiting")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "eshd: "+format+"\n", args...)
	os.Exit(1)
}
