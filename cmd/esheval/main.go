// Command esheval runs the paper-reproduction experiments and prints
// every table and figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "table1", "experiment: table1, table2, table3, fig5, fig6, census, crossopt, ablation, all")
	scale := flag.String("scale", "full", "corpus scale: small, medium, full")
	csv := flag.Bool("csv", false, "emit fig6 matrix as CSV")
	flag.Parse()

	cfg := experiments.Config{}
	switch *scale {
	case "small":
		cfg.Scale = experiments.Small
	case "medium":
		cfg.Scale = experiments.Medium
	case "full":
		cfg.Scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	run := func(name string) error {
		start := time.Now()
		var err error
		switch name {
		case "table1":
			var r *experiments.Table1Result
			if r, err = experiments.Table1(cfg); err == nil {
				fmt.Println(r)
			}
		case "table2":
			var r *experiments.Table2Result
			if r, err = experiments.Table2(cfg); err == nil {
				fmt.Println(r)
			}
		case "table3":
			var r *experiments.Table3Result
			if r, err = experiments.Table3(cfg); err == nil {
				fmt.Println(r)
			}
		case "fig5":
			var r *experiments.Fig5Result
			if r, err = experiments.Fig5(cfg); err == nil {
				fmt.Println(r)
			}
		case "fig6":
			var r *experiments.Fig6Result
			if r, err = experiments.Fig6(cfg); err == nil {
				if *csv {
					fmt.Println(r.CSV())
				} else {
					fmt.Println(r)
				}
			}
		case "census":
			var r *experiments.CensusResult
			if r, err = experiments.Census(cfg, 5); err == nil {
				fmt.Println(r)
			}
		case "ablation":
			var r *experiments.AblationResult
			if r, err = experiments.Ablation(cfg); err == nil {
				fmt.Println(r)
			}
		case "crossopt":
			var r *experiments.CrossOptResult
			if r, err = experiments.CrossOpt(cfg); err == nil {
				fmt.Println(r)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			return err
		}
		fmt.Printf("[%s done in %s at scale %s]\n\n", name, time.Since(start).Round(time.Millisecond), cfg.Scale)
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table2", "table3", "fig5", "fig6", "census", "crossopt", "ablation"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "esheval:", err)
			os.Exit(1)
		}
	}
}
