// Quickstart: decide whether two syntactically different assembly
// procedures are semantically similar.
//
// The two procedures below compute the same checksum with different
// instruction selections and register allocations (shl vs imul, lea vs
// add, different scratch registers). The Esh engine ranks their
// similarity far above an unrelated string-scanning procedure.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/vcp"
)

const querySrc = `proc checksum_a
	xor eax, eax
	mov rcx, rdi
	lea rdx, [rsi+rsi*2]
	shl rdx, 2
	add rdx, 0x20
	imul rcx, rdx
	mov rax, rcx
	shr rax, 7
	xor rax, rcx
	mov r8, rax
	and r8, 0xff
	add rax, r8
	ret
endp`

const similarSrc = `proc checksum_b
	mov r9, 0
	mov r10, rdi
	mov r11, rsi
	imul r11, 3
	imul r11, 4
	add r11, 0x20
	imul r10, r11
	mov rax, r10
	shr rax, 7
	xor rax, r10
	mov rbx, rax
	and rbx, 0xff
	add rax, rbx
	ret
endp`

const unrelatedSrc = `proc scan_bytes
	xor eax, eax
	mov rdx, rdi
top:
	movzx ecx, byte [rdx]
	test rcx, rcx
	je done
	add rdx, 1
	add rax, 1
	cmp rax, 0x1000
	jb top
done:
	ret
endp`

// contextSrcs pad the database: the statistical layer estimates the
// random-match hypothesis H0 from the corpus, so a meaningful ranking
// needs more than two targets.
var contextSrcs = []string{
	"proc ctx_min\n\tmov rax, rdi\n\tcmp rsi, rdi\n\tcmovl rax, rsi\n\tmov rcx, rax\n\tadd rcx, 1\n\timul rcx, rsi\n\tret\nendp",
	"proc ctx_clamp\n\tmov rax, rdi\n\tcmp rax, 0x100\n\tjl ok\n\tmov rax, 0x100\nok:\n\tsub rax, rsi\n\tsar rax, 2\n\tret\nendp",
	"proc ctx_mix\n\tmov rax, rdi\n\tshl rax, 5\n\txor rax, rdi\n\tadd rax, rsi\n\tnot rax\n\tret\nendp",
	"proc ctx_load\n\tmov rax, qword [rdi]\n\tadd rax, qword [rdi+0x8]\n\timul rax, rsi\n\tmov qword [rdi+0x10], rax\n\tret\nendp",
	"proc ctx_poly\n\tmov rax, rdi\n\timul rax, rdi\n\tlea rax, [rax+rdi*2]\n\tadd rax, 7\n\tret\nendp",
	"proc ctx_swap\n\tmov rax, rdi\n\tand rax, 0xffff\n\tshl rax, 0x10\n\tmov rcx, rdi\n\tshr rcx, 0x10\n\tor rax, rcx\n\tret\nendp",
}

func main() {
	// 1. Build a target database. MinVars=3 keeps even the small strands
	// of these tiny demo procedures (the paper's default is 5).
	db := core.NewDB(core.Options{VCP: vcp.Config{MinVars: 3}})
	for _, src := range append([]string{similarSrc, unrelatedSrc}, contextSrcs...) {
		p, err := asm.ParseProc(src)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.AddTarget(p); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Query.
	q, err := asm.ParseProc(querySrc)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The report is ranked by GES, the paper's statistical
	// similarity: sum over query strands of the log likelihood-ratio
	// between the best semantic match in the target and the corpus-wide
	// random-match hypothesis.
	fmt.Printf("query %s decomposed into %d strands\n\n", rep.QueryName, rep.NumStrands)
	fmt.Printf("%-16s %10s %10s %10s\n", "target", "GES", "S-LOG", "S-VCP")
	for _, ts := range rep.Results {
		fmt.Printf("%-16s %10.3f %10.3f %10.3f\n", ts.Target.Name, ts.GES, ts.SLOG, ts.SVCP)
	}
	if rep.Results[0].Target.Name != "checksum_b" {
		fmt.Println("\nunexpected ranking — see the scores above")
		return
	}
	fmt.Println("\nchecksum_b wins: the two procedures share almost every strand")
	fmt.Println("semantically, even though no instruction sequence matches.")
}
