// Patchdetect demonstrates the paper's patching aspect (§5.3): a
// similarity notion — rather than strict equivalence — still ranks a
// *patched* compilation of the same procedure far above unrelated code,
// because most strands survive the patch.
//
// It also shows the flip side used in practice: querying with the
// vulnerable sample scores the patched build slightly below the
// still-vulnerable builds, since the patch's bounds-check strands have no
// counterpart in the query.
//
// Run with: go run ./examples/patchdetect
package main

import (
	"fmt"
	"log"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	v := corpus.Vulns()[0] // Heartbleed
	gcc49, _ := compile.ByName("gcc-4.9")
	gcc48, _ := compile.ByName("gcc-4.8")
	icc, _ := compile.ByName("icc-15.0.1")

	db := core.NewDB(core.Options{})
	type entry struct {
		tc      compile.Toolchain
		patched bool
	}
	for _, e := range []entry{
		{gcc48, false}, {gcc48, true},
		{gcc49, true},
		{icc, false}, {icc, true},
	} {
		p, err := corpus.CompileVuln(v, e.tc, e.patched)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.AddTarget(p); err != nil {
			log.Fatal(err)
		}
	}
	// Unrelated decoys so the ranking means something.
	decoys, err := corpus.Build(corpus.BuildConfig{
		Toolchains: []compile.Toolchain{gcc48, icc},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range decoys {
		if p.Source.SourceSym == v.FuncName {
			continue
		}
		if err := db.AddTarget(p); err != nil {
			log.Fatal(err)
		}
	}

	query, err := corpus.CompileVuln(v, gcc49, false) // the vulnerable sample
	if err != nil {
		log.Fatal(err)
	}
	rep, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: vulnerable %s (%s); database: %d procedures\n\n",
		v.FuncName, gcc49.Name(), db.NumTargets())
	fmt.Printf("%-4s %-46s %9s\n", "rank", "procedure", "GES")
	shown := 0
	for i, ts := range rep.Results {
		isHB := ts.Target.Source.SourceSym == v.FuncName
		if !isHB && shown >= 3 && i > 8 {
			continue
		}
		tag := ""
		if isHB {
			if ts.Target.Source.Patched {
				tag = "  <- same code, PATCHED"
			} else {
				tag = "  <- still vulnerable"
			}
		}
		fmt.Printf("%-4d %-46s %9.2f%s\n", i+1, ts.Target.Name, ts.GES, tag)
		if !isHB {
			shown++
		}
		if i > 12 {
			break
		}
	}
	fmt.Println("\nAll five variants of the procedure rank at the top — the patch")
	fmt.Println("does not hide the procedure, which is exactly what a security team")
	fmt.Println("sweeping a fleet for a vulnerable library needs.")
}
