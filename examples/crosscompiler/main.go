// Crosscompiler shows the substrate of the reproduction: one MiniC
// source compiled by all seven simulated toolchains into visibly
// different assembly, and the pairwise GES matrix demonstrating that the
// Esh engine recognizes every pair as the same computation.
//
// Run with: go run ./examples/crosscompiler
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/minic"
)

const src = `
func scale_sum(buf, n, k) {
	var acc = 0;
	var i = 0;
	while (i < n) {
		var v = load32(buf + i * 4);
		acc = acc + v * k;
		i = i + 1;
	}
	store64(buf + n * 4, acc);
	return acc >> 3;
}`

func main() {
	prog := minic.MustParse(src)
	tcs := compile.Toolchains()

	// Show two of the compilations side by side.
	var procs []*asm.Proc
	for _, tc := range tcs {
		p, err := compile.Compile(prog, "scale_sum", tc, compile.O2())
		if err != nil {
			log.Fatal(err)
		}
		p.Name = "scale_sum@" + tc.Name()
		p.Source.SourceSym = "scale_sum"
		p.Source.Toolchain = tc.Name()
		procs = append(procs, p)
	}
	fmt.Println("=== gcc-4.9 ===")
	fmt.Println(procs[2])
	fmt.Println("=== icc-15.0.1 ===")
	fmt.Println(procs[6])

	// All-pairs GES.
	db := core.NewDB(core.Options{})
	for _, p := range procs {
		if err := db.AddTarget(p); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("pairwise GES (query row vs target column):")
	fmt.Printf("%-12s", "")
	for _, tc := range tcs {
		fmt.Printf(" %10s", tc.Name())
	}
	fmt.Println()
	for i, p := range procs {
		rep, err := db.Query(p)
		if err != nil {
			log.Fatal(err)
		}
		ges := map[string]float64{}
		for _, ts := range rep.Results {
			ges[ts.Target.Name] = ts.GES
		}
		fmt.Printf("%-12s", tcs[i].Name())
		for _, t := range procs {
			fmt.Printf(" %10.2f", ges[t.Name])
		}
		fmt.Println()
	}
	fmt.Println("\nScores are comparable within a row (each query's H0 differs).")
	fmt.Println("Every row peaks on compilations of the same source; the icc rows")
	fmt.Println("are the hardest direction, exactly as in the paper's cross-vendor")
	fmt.Println("experiments. Add unrelated procedures (see examples/vulnsearch)")
	fmt.Println("and the same-source group separates cleanly from the noise.")
}
