// Vulnsearch reproduces the paper's headline scenario (§1, Figure 5):
// given one binary sample of a vulnerable procedure, find every other
// vulnerable compilation of it — across compiler vendors, versions and
// source patches — inside a database of stripped procedures.
//
// The query is the Heartbleed stand-in compiled with clang-3.5; the
// database holds all its other compilations plus Coreutils-like decoys.
//
// Run with: go run ./examples/vulnsearch
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	// Build a moderate corpus: 4 toolchains, patched variants included.
	procs, err := corpus.Build(corpus.BuildConfig{
		Toolchains:     compile.Toolchains()[:4], // gcc 4.6/4.8/4.9 + clang 3.4
		IncludePatched: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := core.NewDB(core.Options{})
	for _, p := range procs {
		if err := db.AddTarget(p); err != nil {
			log.Fatal(err)
		}
	}

	// The query sample: Heartbleed compiled with a toolchain that is NOT
	// in the database (clang-3.5), as in the paper's experiment #1.
	hb := corpus.Vulns()[0]
	clang35, _ := compile.ByName("clang-3.5")
	query, err := corpus.CompileVuln(hb, clang35, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("searching %d stripped procedures for variants of %s (CVE-%s)...\n\n",
		db.NumTargets(), hb.Alias, hb.CVE)
	rep, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}

	top := rep.Results[0].GES
	fmt.Printf("%-3s %-50s %8s %6s\n", "", "procedure", "GES", "norm")
	for i, ts := range rep.Results[:16] {
		mark := "  "
		if ts.Target.Source.SourceSym == hb.FuncName {
			mark = "**" // ground truth: a Heartbleed variant
		}
		norm := ts.GES / top
		bar := strings.Repeat("#", int(norm*32+0.5))
		fmt.Printf("%s %-50s %8.2f %6.3f %s\n", mark, ts.Target.Name, ts.GES, norm, bar)
		_ = i
	}
	fmt.Println("\n** marks true Heartbleed variants (other compilers and the patched source).")
}
