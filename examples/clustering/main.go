// Clustering demonstrates the paper's future-work direction (§8): using
// the statistical similarity for clustering and classification instead
// of retrieval. Twelve binaries — four source procedures × three
// compilers — are grouped by agglomerative clustering over the pairwise
// GES matrix, and a "stripped, unknown" binary is labeled by
// k-nearest-neighbour vote.
//
// Run with: go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/minic"
)

var sources = []struct{ name, src string }{
	{"adler_like", `
func adler_like(buf, len) {
	var a = 1;
	var b = 0;
	var i = 0;
	while (i < len) {
		a = (a + load8(buf + i)) % 65521;
		b = (b + a) % 65521;
		i = i + 1;
	}
	return (b << 16) | a;
}`},
	{"count_set_bits", `
func count_set_bits(v) {
	var n = 0;
	while (v != 0) {
		v = v & (v - 1);
		n = n + 1;
	}
	return n;
}`},
	{"find_max_run", `
func find_max_run(buf, len) {
	var best = 0;
	var cur = 0;
	var prev = 0 - 1;
	var i = 0;
	while (i < len) {
		var c = load8(buf + i);
		if (c == prev) {
			cur = cur + 1;
		} else {
			cur = 1;
			prev = c;
		}
		if (cur > best) {
			best = cur;
		}
		i = i + 1;
	}
	return best;
}`},
	{"saturating_add", `
func saturating_add(a, b, cap) {
	var s = a + b;
	if (s <u a) {
		return cap;
	}
	if (s >u cap) {
		return cap;
	}
	return s;
}`},
}

func main() {
	tcNames := []string{"gcc-4.9", "clang-3.5", "icc-15.0.1"}
	var procs []*asm.Proc
	var truth []string
	for _, s := range sources {
		prog := minic.MustParse(s.src)
		for _, tcName := range tcNames {
			tc, _ := compile.ByName(tcName)
			p, err := compile.Compile(prog, s.name, tc, compile.O2())
			if err != nil {
				log.Fatal(err)
			}
			p.Name = s.name + "@" + tcName
			procs = append(procs, p)
			truth = append(truth, s.name)
		}
	}

	fmt.Printf("computing pairwise GES over %d procedures...\n\n", len(procs))
	m, err := cluster.PairwiseGES(procs, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	clusters := cluster.Agglomerate(m, 0.5)
	fmt.Printf("agglomerative clustering (threshold 0.5) found %d clusters:\n", len(clusters))
	for i, c := range clusters {
		fmt.Printf("  cluster %d:", i+1)
		for _, idx := range c {
			fmt.Printf(" %s", m.Labels[idx])
		}
		fmt.Println()
	}

	// Classification: pretend we do not know what the icc build of
	// find_max_run is and label it from its neighbours.
	unknown := -1
	labels := make([]string, len(procs))
	for i := range procs {
		if m.Labels[i] == "find_max_run@icc-15.0.1" {
			unknown = i
			continue
		}
		labels[i] = truth[i]
	}
	got, weight := cluster.Classify(m, labels, unknown, 3)
	fmt.Printf("\nkNN classification of the stripped unknown (%s):\n", m.Labels[unknown])
	fmt.Printf("  predicted source: %s (vote weight %.2f) — truth: %s\n",
		got, weight, truth[unknown])
}
