// Package wal implements the write-ahead log behind eshd's live write
// path. Every accepted corpus mutation (add or tombstone) is appended
// to the log before it is applied in memory, so a crash at any point
// loses nothing that was acknowledged: on restart the daemon replays
// the log on top of the last snapshot generation and arrives at the
// exact pre-crash corpus.
//
// The on-disk format is a sequence of framed records:
//
//	u32 length | payload | u32 crc32(payload)
//
// with the payload itself laid out as
//
//	u64 seq | u8 op | u32 len(name) | name | body
//
// All integers are little-endian. Sequence numbers are assigned by the
// log, start at 1, and increase by exactly 1 per record; replay
// enforces monotonicity so a partially rewritten log cannot silently
// splice two histories together. The CRC covers the payload only — the
// length prefix is validated structurally (a frame that runs past EOF
// is a torn tail, not corruption).
//
// Recovery is longest-valid-prefix: Open scans frames until the first
// torn or corrupt one, truncates the file back to the end of the last
// valid record, and returns the valid records. This is the standard
// contract for a single-writer log where the only mid-write crash
// artifact is a torn tail; anything *before* the tail that fails CRC
// means real corruption, which Open also reports via Stats so the
// operator can tell the two apart.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Op is the mutation kind a record carries.
type Op uint8

const (
	// OpAdd indexes a new target; Body is the canonical assembly text
	// of the procedure (asm.Proc.String()).
	OpAdd Op = 1
	// OpDelete tombstones every live target with the record's Name;
	// Body is empty.
	OpDelete Op = 2
)

// Record is one logged corpus mutation.
type Record struct {
	Seq  uint64
	Op   Op
	Name string
	Body string
}

const (
	frameOverhead = 8         // u32 len + u32 crc
	payloadHeader = 8 + 1 + 4 // seq + op + name length
	// MaxRecordBytes bounds a single payload. Disassembled procedures
	// are a few KB; 16 MiB is far above any legitimate record and lets
	// the decoder reject absurd length prefixes (a corrupt length
	// would otherwise force a huge allocation before the CRC check).
	MaxRecordBytes = 16 << 20
)

// ErrCorrupt is wrapped by decode errors that indicate real corruption
// (bad CRC, impossible lengths, unknown op) as opposed to a torn tail.
var ErrCorrupt = errors.New("wal: corrupt record")

// EncodeRecord appends the framed encoding of r to dst and returns the
// extended slice. It is exported (alongside DecodeRecord) so the fuzz
// harness can check round-trip identity without a file in the way.
func EncodeRecord(dst []byte, r Record) []byte {
	plen := payloadHeader + len(r.Name) + len(r.Body)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(plen))
	start := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = append(dst, byte(r.Op))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Name)))
	dst = append(dst, r.Name...)
	dst = append(dst, r.Body...)
	crc := crc32.ChecksumIEEE(dst[start:])
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return dst
}

// DecodeRecord decodes one framed record from the front of b. It
// returns the record and the number of bytes consumed. A frame that
// extends past len(b) returns (zero, 0, io.ErrUnexpectedEOF) — the
// torn-tail signal; len(b)==0 returns io.EOF; anything structurally
// impossible or failing CRC returns an error wrapping ErrCorrupt.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) == 0 {
		return Record{}, 0, io.EOF
	}
	if len(b) < 4 {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	plen := int(binary.LittleEndian.Uint32(b))
	if plen < payloadHeader || plen > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	if len(b) < 4+plen+4 {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	payload := b[4 : 4+plen]
	want := binary.LittleEndian.Uint32(b[4+plen:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	var r Record
	r.Seq = binary.LittleEndian.Uint64(payload)
	r.Op = Op(payload[8])
	if r.Op != OpAdd && r.Op != OpDelete {
		return Record{}, 0, fmt.Errorf("%w: unknown op %d", ErrCorrupt, r.Op)
	}
	nameLen := int(binary.LittleEndian.Uint32(payload[9:]))
	if nameLen < 0 || payloadHeader+nameLen > plen {
		return Record{}, 0, fmt.Errorf("%w: name length %d exceeds payload", ErrCorrupt, nameLen)
	}
	r.Name = string(payload[payloadHeader : payloadHeader+nameLen])
	r.Body = string(payload[payloadHeader+nameLen:])
	return r, 4 + plen + 4, nil
}

// DecodeAll decodes records from b until the first torn or corrupt
// frame, returning the valid prefix, the byte offset where it ends,
// and the error that stopped the scan (nil when b was fully consumed).
// Sequence numbers must increase by exactly 1 from the first record;
// a non-monotonic record terminates the prefix as corruption.
func DecodeAll(b []byte) (recs []Record, validLen int64, err error) {
	off := 0
	var lastSeq uint64
	for {
		r, n, derr := DecodeRecord(b[off:])
		if derr != nil {
			if errors.Is(derr, io.EOF) {
				return recs, int64(off), nil
			}
			return recs, int64(off), derr
		}
		if lastSeq != 0 && r.Seq != lastSeq+1 {
			return recs, int64(off), fmt.Errorf("%w: sequence %d after %d", ErrCorrupt, r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		recs = append(recs, r)
		off += n
	}
}

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every append — an acknowledged write
	// survives an OS crash or power loss.
	SyncAlways SyncPolicy = "always"
	// SyncNone never fsyncs — an acknowledged write survives a process
	// crash but may be lost on an OS crash. For bulk loads and tests.
	SyncNone SyncPolicy = "none"
)

// File is the slice of *os.File the log writes through. The test
// fault-injection hook substitutes a writer that fails, truncates, or
// garbles at chosen offsets.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures Open.
type Options struct {
	// Sync selects the fsync policy; empty means SyncAlways.
	Sync SyncPolicy
	// OpenFile, when non-nil, replaces os.OpenFile for the append
	// handle (recovery still reads the file directly). The test
	// harness injects failing writers here.
	OpenFile func(path string) (File, error)
}

// Stats is a point-in-time summary of the log, exposed on /v1/stats
// and as /metrics gauges.
type Stats struct {
	Path          string `json:"path"`
	Records       uint64 `json:"records"`        // appended this process lifetime
	Replayed      int    `json:"replayed"`       // valid records recovered at Open
	LastSeq       uint64 `json:"last_seq"`       // highest sequence in the log
	Bytes         int64  `json:"bytes"`          // current file size
	Syncs         uint64 `json:"syncs"`          // fsyncs issued
	TruncatedTail int64  `json:"truncated_tail"` // bytes dropped at Open (torn tail)
	Corrupt       bool   `json:"corrupt"`        // tail drop was corruption, not a clean cut
}

// Log is a single-writer append-only log. Append/Rewrite/Stats are NOT
// safe for concurrent use; the engine serializes all writers behind
// its own write lock, and the log inherits that regime.
type Log struct {
	path    string
	opts    Options
	f       File
	size    int64
	lastSeq uint64
	stats   Stats
}

// Open recovers the log at path (creating it if absent), truncates any
// torn or corrupt tail, and returns the valid records for replay. The
// returned log is positioned to append after the last valid record.
func Open(path string, opts Options) (*Log, []Record, error) {
	if opts.Sync == "" {
		opts.Sync = SyncAlways
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	recs, validLen, derr := DecodeAll(data)
	if validLen < int64(len(data)) {
		// Torn or corrupt tail: cut the file back to the valid prefix
		// before appending, or the garbage would corrupt the next
		// record's frame boundary.
		if err := os.Truncate(path, validLen); err != nil {
			return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
	}
	f, err := openAppend(path, opts)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{path: path, opts: opts, f: f, size: validLen}
	if n := len(recs); n > 0 {
		l.lastSeq = recs[n-1].Seq
	}
	l.stats = Stats{
		Path:          path,
		Replayed:      len(recs),
		LastSeq:       l.lastSeq,
		Bytes:         validLen,
		TruncatedTail: int64(len(data)) - validLen,
		Corrupt:       derr != nil && errors.Is(derr, ErrCorrupt),
	}
	return l, recs, nil
}

func openAppend(path string, opts Options) (File, error) {
	if opts.OpenFile != nil {
		return opts.OpenFile(path)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return f, nil
}

// Append assigns the next sequence number to (op, name, body), writes
// the framed record, and syncs per policy. It returns the assigned
// sequence; on error the record must be considered unwritten (a torn
// partial write will be cut at the next Open) and the caller must not
// acknowledge the mutation.
func (l *Log) Append(op Op, name, body string) (uint64, error) {
	seq := l.lastSeq + 1
	frame := EncodeRecord(nil, Record{Seq: seq, Op: op, Name: name, Body: body})
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if l.opts.Sync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
		l.stats.Syncs++
	}
	l.lastSeq = seq
	l.size += int64(len(frame))
	l.stats.Records++
	l.stats.LastSeq = seq
	l.stats.Bytes = l.size
	return seq, nil
}

// Sync forces the log to stable storage regardless of policy.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.stats.Syncs++
	return nil
}

// LastSeq returns the highest sequence number in the log.
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats { return l.stats }

// Rewrite atomically drops every record with Seq <= hwm — the records
// a freshly persisted snapshot generation already folds in. It writes
// the surviving suffix to a temp file, fsyncs, and renames over the
// log, so a crash at any point leaves either the old or the new log,
// both of which replay correctly against their snapshot: the old log's
// already-compacted prefix is skipped at replay by the snapshot's WAL
// high-water mark.
func (l *Log) Rewrite(hwm uint64) error {
	data, err := os.ReadFile(l.path)
	if err != nil {
		return fmt.Errorf("wal: rewrite read: %w", err)
	}
	recs, _, _ := DecodeAll(data)
	var buf []byte
	for _, r := range recs {
		if r.Seq > hwm {
			buf = EncodeRecord(buf, r)
		}
	}
	dir, base := filepath.Split(l.path)
	tmp, err := os.CreateTemp(dir, base+".rewrite-*")
	if err != nil {
		return fmt.Errorf("wal: rewrite temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(buf); err != nil {
		cleanup()
		return fmt.Errorf("wal: rewrite write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: rewrite sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("wal: rewrite close: %w", err)
	}
	if err := os.Rename(tmpName, l.path); err != nil {
		cleanup()
		return fmt.Errorf("wal: rewrite rename: %w", err)
	}
	// Reopen the append handle on the new inode; the old handle points
	// at the unlinked file.
	old := l.f
	f, err := openAppend(l.path, l.opts)
	if err != nil {
		return err
	}
	old.Close()
	l.f = f
	l.size = int64(len(buf))
	l.stats.Bytes = l.size
	return nil
}

// Close releases the append handle. The log must not be used after.
func (l *Log) Close() error { return l.f.Close() }
