package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "corpus.wal")
}

func mustOpen(t *testing.T, path string, opts Options) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, recs := mustOpen(t, path, Options{Sync: SyncNone})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := []Record{
		{Seq: 1, Op: OpAdd, Name: "alpha", Body: "proc alpha\n\tret\nendp\n"},
		{Seq: 2, Op: OpDelete, Name: "alpha"},
		{Seq: 3, Op: OpAdd, Name: "beta", Body: "proc beta\n\tret\nendp\n"},
	}
	for _, r := range want {
		seq, err := l.Append(r.Op, r.Name, r.Body)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != r.Seq {
			t.Fatalf("Append assigned seq %d, want %d", seq, r.Seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, got := mustOpen(t, path, Options{Sync: SyncNone})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if l2.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", l2.LastSeq())
	}
	// Appends continue the sequence after recovery.
	seq, err := l2.Append(OpDelete, "beta", "")
	if err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if seq != 4 {
		t.Fatalf("post-recovery seq = %d, want 4", seq)
	}
}

func TestRewriteDropsCompactedPrefix(t *testing.T) {
	path := tmpLog(t)
	l, _ := mustOpen(t, path, Options{Sync: SyncNone})
	for i := 1; i <= 5; i++ {
		if _, err := l.Append(OpAdd, fmt.Sprintf("t%d", i), "body"); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Rewrite(3); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	// The log keeps working on the new inode.
	if seq, err := l.Append(OpAdd, "t6", "body"); err != nil || seq != 6 {
		t.Fatalf("Append after Rewrite = (%d, %v), want (6, nil)", seq, err)
	}
	l.Close()
	_, recs := mustOpen(t, path, Options{Sync: SyncNone})
	if len(recs) != 3 {
		t.Fatalf("after Rewrite(3) replay has %d records, want 3", len(recs))
	}
	if recs[0].Seq != 4 || recs[2].Seq != 6 {
		t.Fatalf("surviving seqs %d..%d, want 4..6", recs[0].Seq, recs[2].Seq)
	}
}

// TestCrashRecoveryEveryPrefix is the fault-injection harness: a valid
// multi-record log is cut at EVERY byte offset (every record boundary
// and every mid-record position), and separately garbled at every
// offset, and replay must recover exactly the longest valid prefix in
// both cases — never an error, never a phantom record.
func TestCrashRecoveryEveryPrefix(t *testing.T) {
	recs := []Record{
		{Seq: 1, Op: OpAdd, Name: "a", Body: "proc a\n\tret\nendp\n"},
		{Seq: 2, Op: OpAdd, Name: "b", Body: "proc b\n\tmov r0, 7\n\tret\nendp\n"},
		{Seq: 3, Op: OpDelete, Name: "a"},
		{Seq: 4, Op: OpAdd, Name: "c", Body: "proc c\n\tret\nendp\n"},
	}
	var full []byte
	boundaries := []int{0} // byte offset after each complete record
	for _, r := range recs {
		full = EncodeRecord(full, r)
		boundaries = append(boundaries, len(full))
	}
	// How many complete records a prefix of length n contains.
	wantRecords := func(n int) int {
		k := 0
		for k+1 < len(boundaries) && boundaries[k+1] <= n {
			k++
		}
		return k
	}

	t.Run("truncate", func(t *testing.T) {
		for cut := 0; cut <= len(full); cut++ {
			path := filepath.Join(t.TempDir(), "cut.wal")
			if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			l, got, err := Open(path, Options{Sync: SyncNone})
			if err != nil {
				t.Fatalf("cut=%d: Open: %v", cut, err)
			}
			want := wantRecords(cut)
			if len(got) != want {
				t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), want)
			}
			for i := 0; i < want; i++ {
				if got[i] != recs[i] {
					t.Fatalf("cut=%d: record %d = %+v, want %+v", cut, i, got[i], recs[i])
				}
			}
			st := l.Stats()
			if st.Bytes != int64(boundaries[want]) {
				t.Fatalf("cut=%d: post-recovery size %d, want %d", cut, st.Bytes, boundaries[want])
			}
			// The truncated log must accept appends that a subsequent
			// replay returns — recovery composes with new writes.
			if _, err := l.Append(OpAdd, "z", "zz"); err != nil {
				t.Fatalf("cut=%d: append after recovery: %v", cut, err)
			}
			l.Close()
			_, again, err := Open(path, Options{Sync: SyncNone})
			if err != nil {
				t.Fatalf("cut=%d: reopen: %v", cut, err)
			}
			if len(again) != want+1 || again[want].Name != "z" {
				t.Fatalf("cut=%d: reopen recovered %d records", cut, len(again))
			}
		}
	})

	t.Run("garble", func(t *testing.T) {
		for pos := 0; pos < len(full); pos++ {
			corrupted := append([]byte(nil), full...)
			corrupted[pos] ^= 0xff
			path := filepath.Join(t.TempDir(), "garble.wal")
			if err := os.WriteFile(path, corrupted, 0o644); err != nil {
				t.Fatal(err)
			}
			l, got, err := Open(path, Options{Sync: SyncNone})
			if err != nil {
				t.Fatalf("pos=%d: Open: %v", pos, err)
			}
			l.Close()
			// A flipped byte invalidates the record containing it (or,
			// if it hits a length prefix, possibly re-frames the tail);
			// in every case the records strictly BEFORE the damaged one
			// must survive verbatim, and nothing fabricated may follow.
			intact := 0
			for intact+1 < len(boundaries) && boundaries[intact+1] <= pos {
				intact++
			}
			if len(got) < intact {
				t.Fatalf("pos=%d: recovered %d records, want at least the %d intact ones", pos, len(got), intact)
			}
			for i := 0; i < len(got); i++ {
				// Every recovered record must be one of the originals:
				// CRC makes fabrication astronomically unlikely, and a
				// recovered record implies everything before it decoded.
				if i >= len(recs) || got[i] != recs[i] {
					t.Fatalf("pos=%d: recovered record %d = %+v is not the original", pos, i, got[i])
				}
			}
		}
	})
}

// faultFile short-writes then fails after a byte budget — the
// failfs-style hook: the engine must not acknowledge a write whose
// append errored, and a short write's torn frame must be cut on reopen.
type faultFile struct {
	f       *os.File
	budget  int // bytes allowed before the fault
	tripped bool
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.tripped {
		return 0, errors.New("faultfs: failed disk")
	}
	if len(p) <= ff.budget {
		ff.budget -= len(p)
		return ff.f.Write(p)
	}
	n := ff.budget
	ff.budget = 0
	ff.tripped = true
	if n > 0 {
		if _, err := ff.f.Write(p[:n]); err != nil {
			return 0, err
		}
	}
	return n, errors.New("faultfs: failed disk")
}

func (ff *faultFile) Sync() error {
	if ff.tripped {
		return errors.New("faultfs: failed disk")
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// TestFaultInjectionAppend crashes the writer at every byte budget and
// checks the invariant the engine relies on: a successful Append is
// durable and replayed; a failed Append leaves at most a torn tail
// that recovery cuts, never a half-record that replays.
func TestFaultInjectionAppend(t *testing.T) {
	mutations := []Record{
		{Op: OpAdd, Name: "a", Body: "proc a\n\tret\nendp\n"},
		{Op: OpAdd, Name: "b", Body: "proc b\n\tadd r1, r2\n\tret\nendp\n"},
		{Op: OpDelete, Name: "a"},
	}
	var total int
	{
		var buf []byte
		seq := uint64(0)
		for _, m := range mutations {
			seq++
			buf = EncodeRecord(buf, Record{Seq: seq, Op: m.Op, Name: m.Name, Body: m.Body})
		}
		total = len(buf)
	}
	for budget := 0; budget <= total; budget++ {
		path := filepath.Join(t.TempDir(), "fault.wal")
		var ff *faultFile
		opts := Options{
			Sync: SyncNone,
			OpenFile: func(p string) (File, error) {
				f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return nil, err
				}
				ff = &faultFile{f: f, budget: budget}
				return ff, nil
			},
		}
		l, _, err := Open(path, opts)
		if err != nil {
			t.Fatalf("budget=%d: Open: %v", budget, err)
		}
		var acked []uint64
		for _, m := range mutations {
			seq, err := l.Append(m.Op, m.Name, m.Body)
			if err != nil {
				break // engine would refuse to acknowledge
			}
			acked = append(acked, seq)
		}
		l.Close()
		_, recovered, err := Open(path, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("budget=%d: recovery Open: %v", budget, err)
		}
		if len(recovered) < len(acked) {
			t.Fatalf("budget=%d: %d acked writes but only %d recovered — lost acknowledged data",
				budget, len(acked), len(recovered))
		}
		for i, seq := range acked {
			if recovered[i].Seq != seq {
				t.Fatalf("budget=%d: recovered[%d].Seq = %d, want %d", budget, i, recovered[i].Seq, seq)
			}
		}
		// Unacked records may appear at most as a complete final record
		// (the fault hit after the frame was fully buffered) — never as
		// garbage that decodes.
		if len(recovered) > len(acked)+1 {
			t.Fatalf("budget=%d: %d recovered vs %d acked", budget, len(recovered), len(acked))
		}
	}
}

func TestOpenRejectsNonMonotonicSeq(t *testing.T) {
	var buf []byte
	buf = EncodeRecord(buf, Record{Seq: 1, Op: OpAdd, Name: "a", Body: "x"})
	buf = EncodeRecord(buf, Record{Seq: 5, Op: OpAdd, Name: "b", Body: "y"}) // gap
	path := tmpLog(t)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(path, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("recovered %d records, want the length-1 monotonic prefix", len(recs))
	}
	if !l.Stats().Corrupt {
		t.Fatal("non-monotonic tail not flagged as corrupt")
	}
}

func TestCRCRejectsCorruption(t *testing.T) {
	frame := EncodeRecord(nil, Record{Seq: 1, Op: OpAdd, Name: "victim", Body: "payload"})
	for pos := 4; pos < len(frame)-4; pos++ { // every payload byte
		bad := append([]byte(nil), frame...)
		bad[pos] ^= 0x01
		if _, _, err := DecodeRecord(bad); err == nil {
			t.Fatalf("flipped payload byte %d decoded cleanly", pos)
		}
	}
}

func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord(nil, Record{Seq: 1, Op: OpAdd, Name: "seed", Body: "proc seed\nendp\n"}))
	two := EncodeRecord(nil, Record{Seq: 1, Op: OpAdd, Name: "a", Body: "b1"})
	two = EncodeRecord(two, Record{Seq: 2, Op: OpDelete, Name: "a"})
	f.Add(two)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. The decoder must never panic and the valid prefix must
		//    re-encode to exactly the bytes it was decoded from.
		recs, validLen, _ := DecodeAll(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of range [0, %d]", validLen, len(data))
		}
		var re []byte
		for _, r := range recs {
			re = EncodeRecord(re, r)
		}
		if !bytes.Equal(re, data[:validLen]) {
			t.Fatalf("re-encoded prefix differs from input prefix")
		}
		// 2. Round-trip identity: every decoded record survives
		//    encode→decode unchanged.
		for _, r := range recs {
			frame := EncodeRecord(nil, r)
			got, n, err := DecodeRecord(frame)
			if err != nil || n != len(frame) || got != r {
				t.Fatalf("round trip: %+v -> %+v (n=%d err=%v)", r, got, n, err)
			}
		}
		// 3. Open must agree with DecodeAll and never error on
		//    arbitrary bytes.
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, fromOpen, err := Open(path, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("Open on fuzzed bytes: %v", err)
		}
		defer l.Close()
		if len(fromOpen) != len(recs) {
			t.Fatalf("Open recovered %d records, DecodeAll %d", len(fromOpen), len(recs))
		}
	})
}
