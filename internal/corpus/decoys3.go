package corpus

// A third tranche of decoys: network and crypto-adjacent procedures in
// the style of the packages the paper's corpus draws from (OpenSSL,
// ntp, qemu), plus string-table utilities.

// Decoys3 returns the tranche; corpus.Decoys includes it.
func Decoys3() []Package {
	return []Package{
		{Name: "openssl-1.0.1f/rc4", Src: pkgRC4},
		{Name: "openssl-1.0.1f/bn", Src: pkgBigNum},
		{Name: "ntp-4.2.7/auth", Src: pkgNtpAuth},
		{Name: "qemu-2.3/cutils", Src: pkgQemuCutils},
		{Name: "bash-4.3/hashlib", Src: pkgBashHash},
		{Name: "wireshark-1.4.1/tvbuff", Src: pkgTvbuff},
	}
}

const pkgRC4 = `
func rc4_setup(state, key, keylen) {
	var i = 0;
	while (i < 256) {
		store8(state + i, i);
		i = i + 1;
	}
	var j = 0;
	i = 0;
	while (i < 256) {
		j = (j + load8(state + i) + load8(key + i % keylen)) & 0xFF;
		var t = load8(state + i);
		store8(state + i, load8(state + j));
		store8(state + j, t);
		i = i + 1;
	}
	return j;
}
func rc4_crypt(state, idxp, buf, len) {
	var i = load8(idxp);
	var j = load8(idxp + 1);
	var k = 0;
	while (k < len) {
		i = (i + 1) & 0xFF;
		j = (j + load8(state + i)) & 0xFF;
		var t = load8(state + i);
		store8(state + i, load8(state + j));
		store8(state + j, t);
		var ks = load8(state + ((load8(state + i) + load8(state + j)) & 0xFF));
		store8(buf + k, load8(buf + k) ^ ks);
		k = k + 1;
	}
	store8(idxp, i);
	store8(idxp + 1, j);
	return len;
}`

const pkgBigNum = `
func bn_add_words(r, a, b, n) {
	var carry = 0;
	var i = 0;
	while (i < n) {
		var av = load64(a + i * 8);
		var bv = load64(b + i * 8);
		var s = av + bv;
		var c1 = s <u av;
		s = s + carry;
		var c2 = s <u carry;
		store64(r + i * 8, s);
		carry = c1 | c2;
		i = i + 1;
	}
	return carry;
}
func bn_cmp_words(a, b, n) {
	var i = n - 1;
	while (i >= 0) {
		var av = load64(a + i * 8);
		var bv = load64(b + i * 8);
		if (av <u bv) {
			return 0 - 1;
		}
		if (av >u bv) {
			return 1;
		}
		i = i - 1;
	}
	return 0;
}
func bn_num_bits_word(w) {
	var bits = 0;
	while (w != 0) {
		w = w >>u 1;
		bits = bits + 1;
	}
	return bits;
}`

const pkgNtpAuth = `
func auth_md5ish(key, keylen, pkt, pktlen, digest) {
	var h0 = 0x67452301;
	var h1 = 0xEFCDAB89;
	var i = 0;
	while (i < keylen) {
		h0 = ((h0 << 5) + h0 + load8(key + i)) & 0xFFFFFFFF;
		i = i + 1;
	}
	i = 0;
	while (i < pktlen) {
		h1 = ((h1 << 5) + h1 + load8(pkt + i)) & 0xFFFFFFFF;
		h0 = (h0 ^ h1) & 0xFFFFFFFF;
		i = i + 1;
	}
	store32(digest, h0);
	store32(digest + 4, h1);
	return h0 ^ h1;
}
func auth_timecrypt(ts, key) {
	var mixed = ts ^ key;
	mixed = mixed * 0x5DEECE66D + 0xB;
	return mixed & 0xFFFFFFFFFFFF;
}`

const pkgQemuCutils = `
func qemu_strnlen(s, max_len) {
	var i = 0;
	while (i < max_len && load8(s + i) != 0) {
		i = i + 1;
	}
	return i;
}
func buffer_is_zero(buf, len) {
	var i = 0;
	while (i + 8 <= len) {
		if (load64(buf + i) != 0) {
			return 0;
		}
		i = i + 8;
	}
	while (i < len) {
		if (load8(buf + i) != 0) {
			return 0;
		}
		i = i + 1;
	}
	return 1;
}
func parse_size_suffix(s, len) {
	var val = 0;
	var i = 0;
	while (i < len) {
		var c = load8(s + i);
		if (c < 0x30 || c > 0x39) {
			break;
		}
		val = val * 10 + (c - 0x30);
		i = i + 1;
	}
	if (i < len) {
		var suf = load8(s + i);
		if (suf == 0x4B || suf == 0x6B) {
			val = val << 10;
		} else if (suf == 0x4D || suf == 0x6D) {
			val = val << 20;
		} else if (suf == 0x47 || suf == 0x67) {
			val = val << 30;
		}
	}
	return val;
}`

const pkgBashHash = `
func hash_string_bash(s, len) {
	var h = 0;
	var i = 0;
	while (i < len) {
		h = h << 4;
		h = h + load8(s + i);
		var g = h & 0xF0000000;
		if (g != 0) {
			h = h ^ (g >>u 24);
			h = h ^ g;
		}
		i = i + 1;
	}
	return h;
}
func hash_bucket_find(bucket, key_hash, max_chain) {
	var node = bucket;
	var depth = 0;
	while (node != 0 && depth < max_chain) {
		if (load64(node + 8) == key_hash) {
			return node;
		}
		node = load64(node);
		depth = depth + 1;
	}
	return 0;
}`

const pkgTvbuff = `
func tvb_get_guint32(tvb, offset, little_endian) {
	if (little_endian != 0) {
		return load32(tvb + offset);
	}
	var b0 = load8(tvb + offset);
	var b1 = load8(tvb + offset + 1);
	var b2 = load8(tvb + offset + 2);
	var b3 = load8(tvb + offset + 3);
	return (b0 << 24) | (b1 << 16) | (b2 << 8) | b3;
}
func tvb_strsize(tvb, offset, maxlen) {
	var i = offset;
	while (i - offset < maxlen) {
		if (load8(tvb + i) == 0) {
			return i - offset + 1;
		}
		i = i + 1;
	}
	return 0 - 1;
}
func tvb_find_crlf(tvb, offset, len) {
	var i = offset;
	while (i + 1 < offset + len) {
		if (load8(tvb + i) == 0x0D && load8(tvb + i + 1) == 0x0A) {
			return i;
		}
		i = i + 1;
	}
	return 0 - 1;
}`
