package corpus

// A second tranche of decoy packages: codecs, text processing and
// data-structure maintenance procedures in the style of busybox/zlib/
// glibc internals, further diversifying the strand population.

// Decoys2 returns the additional decoy packages. corpus.Decoys includes
// them; the split exists only to keep the source files reviewable.
func Decoys2() []Package {
	return []Package{
		{Name: "busybox-1.22/base64", Src: pkgBase64},
		{Name: "busybox-1.22/vi", Src: pkgViBuf},
		{Name: "zlib-1.2.8/inflate", Src: pkgInflate},
		{Name: "glibc-2.19/time", Src: pkgTimeConv},
		{Name: "glibc-2.19/qsort", Src: pkgQsort},
		{Name: "protobuf-c/varint", Src: pkgVarint},
		{Name: "pcre-8.35/study", Src: pkgPcreStudy},
	}
}

const pkgBase64 = `
func b64_encode_block(src, n, dst) {
	var written = 0;
	var i = 0;
	while (i + 3 <= n) {
		var w = (load8(src + i) << 16) | (load8(src + i + 1) << 8) | load8(src + i + 2);
		store8(dst + written, b64_char((w >>u 18) & 0x3F));
		store8(dst + written + 1, b64_char((w >>u 12) & 0x3F));
		store8(dst + written + 2, b64_char((w >>u 6) & 0x3F));
		store8(dst + written + 3, b64_char(w & 0x3F));
		written = written + 4;
		i = i + 3;
	}
	var rem = n - i;
	if (rem == 1) {
		var w1 = load8(src + i) << 16;
		store8(dst + written, b64_char((w1 >>u 18) & 0x3F));
		store8(dst + written + 1, b64_char((w1 >>u 12) & 0x3F));
		store8(dst + written + 2, 0x3D);
		store8(dst + written + 3, 0x3D);
		written = written + 4;
	} else if (rem == 2) {
		var w2 = (load8(src + i) << 16) | (load8(src + i + 1) << 8);
		store8(dst + written, b64_char((w2 >>u 18) & 0x3F));
		store8(dst + written + 1, b64_char((w2 >>u 12) & 0x3F));
		store8(dst + written + 2, b64_char((w2 >>u 6) & 0x3F));
		store8(dst + written + 3, 0x3D);
		written = written + 4;
	}
	return written;
}
func b64_char(v) {
	if (v < 26) {
		return 0x41 + v;
	}
	if (v < 52) {
		return 0x61 + v - 26;
	}
	if (v < 62) {
		return 0x30 + v - 52;
	}
	if (v == 62) {
		return 0x2B;
	}
	return 0x2F;
}`

const pkgViBuf = `
func text_hole_make(buf, gap_start, gap_len, end) {
	var i = end;
	while (i > gap_start) {
		i = i - 1;
		store8(buf + i + gap_len, load8(buf + i));
	}
	return end + gap_len;
}
func char_search_fwd(buf, from, end, ch) {
	var i = from;
	while (i < end) {
		if (load8(buf + i) == ch) {
			return i;
		}
		i = i + 1;
	}
	return 0 - 1;
}
func count_lines(buf, len) {
	var lines = 0;
	var i = 0;
	while (i < len) {
		if (load8(buf + i) == 0x0A) {
			lines = lines + 1;
		}
		i = i + 1;
	}
	return lines;
}`

const pkgInflate = `
func build_code_lengths(lens, n, counts) {
	var i = 0;
	while (i < 16) {
		store16(counts + i * 2, 0);
		i = i + 1;
	}
	i = 0;
	while (i < n) {
		var l = load8(lens + i) & 0xF;
		store16(counts + l * 2, load16(counts + l * 2) + 1);
		i = i + 1;
	}
	var left = 1;
	var len = 1;
	while (len < 16) {
		left = left << 1;
		left = left - load16(counts + len * 2);
		if (left < 0) {
			return 0 - 1;
		}
		len = len + 1;
	}
	return left;
}
func window_copy(win, wsize, wnext, dist, len, out) {
	var from = wnext - dist;
	if (from < 0) {
		from = from + wsize;
	}
	var i = 0;
	while (i < len) {
		store8(out + i, load8(win + ((from + i) % wsize)));
		i = i + 1;
	}
	return len;
}`

const pkgTimeConv = `
func days_in_month(month, leap) {
	if (month == 2) {
		return 28 + leap;
	}
	if (month == 4 || month == 6 || month == 9 || month == 11) {
		return 30;
	}
	return 31;
}
func is_leap_year(y) {
	if (y % 4 != 0) {
		return 0;
	}
	if (y % 100 != 0) {
		return 1;
	}
	if (y % 400 == 0) {
		return 1;
	}
	return 0;
}
func secs_to_ymd(secs, out) {
	var days = secs / 86400;
	var rem = secs % 86400;
	var year = 1970;
	while (1) {
		var ydays = 365 + is_leap_year(year);
		if (days < ydays) {
			break;
		}
		days = days - ydays;
		year = year + 1;
	}
	var month = 1;
	while (1) {
		var md = days_in_month(month, is_leap_year(year));
		if (days < md) {
			break;
		}
		days = days - md;
		month = month + 1;
	}
	store64(out, year);
	store64(out + 8, month);
	store64(out + 16, days + 1);
	store64(out + 24, rem / 3600);
	return year * 10000 + month * 100 + days + 1;
}`

const pkgQsort = `
func sift_down(arr, start, end) {
	var root = start;
	while (root * 2 + 1 <= end) {
		var child = root * 2 + 1;
		if (child + 1 <= end && load64(arr + child * 8) < load64(arr + (child + 1) * 8)) {
			child = child + 1;
		}
		if (load64(arr + root * 8) < load64(arr + child * 8)) {
			var t = load64(arr + root * 8);
			store64(arr + root * 8, load64(arr + child * 8));
			store64(arr + child * 8, t);
			root = child;
		} else {
			return root;
		}
	}
	return root;
}
func partition64(arr, lo, hi) {
	var pivot = load64(arr + hi * 8);
	var i = lo - 1;
	var j = lo;
	while (j < hi) {
		if (load64(arr + j * 8) <= pivot) {
			i = i + 1;
			var t = load64(arr + i * 8);
			store64(arr + i * 8, load64(arr + j * 8));
			store64(arr + j * 8, t);
		}
		j = j + 1;
	}
	var t2 = load64(arr + (i + 1) * 8);
	store64(arr + (i + 1) * 8, load64(arr + hi * 8));
	store64(arr + hi * 8, t2);
	return i + 1;
}`

const pkgVarint = `
func varint_encode(v, out) {
	var n = 0;
	while (v >=u 0x80) {
		store8(out + n, (v & 0x7F) | 0x80);
		v = v >>u 7;
		n = n + 1;
	}
	store8(out + n, v);
	return n + 1;
}
func varint_decode(buf, len, valp) {
	var v = 0;
	var shift = 0;
	var i = 0;
	while (i < len && i < 10) {
		var b = load8(buf + i);
		v = v | ((b & 0x7F) << shift);
		i = i + 1;
		if ((b & 0x80) == 0) {
			store64(valp, v);
			return i;
		}
		shift = shift + 7;
	}
	return 0 - 1;
}
func zigzag_encode(v) {
	return (v << 1) ^ (v >> 63);
}
func zigzag_decode(v) {
	return (v >>u 1) ^ (0 - (v & 1));
}`

const pkgPcreStudy = `
func set_start_bits(pattern, len, bitmap) {
	var i = 0;
	while (i < 32) {
		store8(bitmap + i, 0);
		i = i + 1;
	}
	i = 0;
	var anchored = 0;
	while (i < len) {
		var c = load8(pattern + i);
		if (c == 0x5E && i == 0) {
			anchored = 1;
		} else if (c == 0x5C && i + 1 < len) {
			i = i + 1;
		} else if (c != 0x2A && c != 0x3F) {
			var byteidx = c >>u 3;
			var bit = 1 << (c & 7);
			store8(bitmap + byteidx, load8(bitmap + byteidx) | bit);
		}
		i = i + 1;
	}
	return anchored;
}
func bracket_min_length(pattern, from, len) {
	var depth = 0;
	var minlen = 0;
	var i = from;
	while (i < len) {
		var c = load8(pattern + i);
		if (c == 0x28) {
			depth = depth + 1;
		} else if (c == 0x29) {
			depth = depth - 1;
			if (depth == 0) {
				return minlen;
			}
		} else if (depth > 0 && c != 0x2A && c != 0x3F && c != 0x7C) {
			minlen = minlen + 1;
		}
		i = i + 1;
	}
	return minlen;
}`
