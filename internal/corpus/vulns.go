package corpus

// The eight vulnerable procedures of the paper's Table 1, re-implemented
// as MiniC stand-ins. Each preserves the structural character of the real
// vulnerable code — the parsing, bounds handling (or lack of it), copy
// loops and constants that make the procedure recognizable — and comes
// with a patched variant reproducing the real fix, so the experiments can
// exercise the paper's "patched source" search aspect.
//
// Shared helpers (memcpy8, memset8, ...) are written in MiniC inside each
// package, the way static helpers are compiled into every real binary;
// write_bytes/log_event are external (I/O) and stay unresolved calls.

// helpersMem are byte-buffer helpers shared by several packages.
const helpersMem = `
func memcpy8(dst, src, n) {
	var i = 0;
	while (i < n) {
		store8(dst + i, load8(src + i));
		i = i + 1;
	}
	return dst;
}
func memset8(dst, v, n) {
	var i = 0;
	while (i < n) {
		store8(dst + i, v);
		i = i + 1;
	}
	return dst;
}
`

// Vuln describes one vulnerable procedure and its patch.
type Vuln struct {
	ID       int
	Alias    string
	CVE      string
	Package  string // vulnerable package/version
	FuncName string
	Src      string // vulnerable program (function + helpers)
	Patched  string // program with the real-world fix applied
}

// Vulns returns the paper's eight queries (Table 1), in table order.
func Vulns() []Vuln {
	return []Vuln{
		{
			ID: 1, Alias: "Heartbleed", CVE: "2014-0160",
			Package: "openssl-1.0.1f", FuncName: "tls1_process_heartbeat",
			Src:     heartbleedVuln,
			Patched: heartbleedPatched,
		},
		{
			ID: 2, Alias: "Shellshock", CVE: "2014-6271",
			Package: "bash-4.3", FuncName: "initialize_shell_function",
			Src:     shellshockVuln,
			Patched: shellshockPatched,
		},
		{
			ID: 3, Alias: "Venom", CVE: "2015-3456",
			Package: "qemu-2.3", FuncName: "fdctrl_handle_command",
			Src:     venomVuln,
			Patched: venomPatched,
		},
		{
			ID: 4, Alias: "Clobberin' Time", CVE: "2014-9295",
			Package: "ntp-4.2.7", FuncName: "ctl_putdata",
			Src:     clobberinVuln,
			Patched: clobberinPatched,
		},
		{
			ID: 5, Alias: "Shellshock #2", CVE: "2014-7169",
			Package: "bash-4.3p24", FuncName: "parse_function_import",
			Src:     shellshock2Vuln,
			Patched: shellshock2Patched,
		},
		{
			ID: 6, Alias: "ws-snmp", CVE: "2011-0444",
			Package: "wireshark-1.4.1", FuncName: "snmp_variable_decode",
			Src:     wsSnmpVuln,
			Patched: wsSnmpPatched,
		},
		{
			ID: 7, Alias: "wget", CVE: "2014-4877",
			Package: "wget-1.15", FuncName: "ftp_retrieve_symlink",
			Src:     wgetVuln,
			Patched: wgetPatched,
		},
		{
			ID: 8, Alias: "ffmpeg", CVE: "2015-6826",
			Package: "ffmpeg-2.4.6", FuncName: "rv34_decoder_realloc",
			Src:     ffmpegVuln,
			Patched: ffmpegPatched,
		},
	}
}

// --- #1 Heartbleed (OpenSSL tls1_process_heartbeat) ------------------------
//
// The real bug: the heartbeat response copies `payload` bytes from the
// request without checking the claimed payload length against the actual
// record length; the fix bounds-checks before building the response.

const heartbleedVuln = helpersMem + `
func tls1_process_heartbeat(p, rec_len, resp) {
	var hbtype = load8(p);
	var payload = (load8(p + 1) << 8) | load8(p + 2);
	var pl = p + 3;
	var padding = 16;
	if (hbtype == 1) {
		var bp = resp;
		store8(bp, 2);
		store8(bp + 1, (payload >>u 8) & 0xFF);
		store8(bp + 2, payload & 0xFF);
		memcpy8(bp + 3, pl, payload);
		memset8(bp + 3 + payload, 0, padding);
		write_bytes(bp, 3 + payload + padding);
		return 3 + payload + padding;
	}
	if (hbtype == 2) {
		log_event(2);
	}
	return 0;
}`

const heartbleedPatched = helpersMem + `
func tls1_process_heartbeat(p, rec_len, resp) {
	var hbtype = load8(p);
	var payload = (load8(p + 1) << 8) | load8(p + 2);
	var pl = p + 3;
	var padding = 16;
	if (rec_len <u 1 + 2 + 16) {
		return 0;
	}
	if (1 + 2 + payload + 16 >u rec_len) {
		return 0;
	}
	if (hbtype == 1) {
		var bp = resp;
		store8(bp, 2);
		store8(bp + 1, (payload >>u 8) & 0xFF);
		store8(bp + 2, payload & 0xFF);
		memcpy8(bp + 3, pl, payload);
		memset8(bp + 3 + payload, 0, padding);
		write_bytes(bp, 3 + payload + padding);
		return 3 + payload + padding;
	}
	if (hbtype == 2) {
		log_event(2);
	}
	return 0;
}`

// --- #2 Shellshock (bash function import) -----------------------------------
//
// The real bug: bash evaluates everything after the function definition
// found in an environment variable. The stand-in scans for the "() {"
// marker, finds the closing brace, and (bug) keeps consuming and
// "evaluating" trailing bytes; the fix stops at the function end.

const shellshockBody = helpersMem + `
func find_close_brace(s, len, from) {
	var depth = 0;
	var i = from;
	while (i < len) {
		var c = load8(s + i);
		if (c == 0x7B) {
			depth = depth + 1;
		}
		if (c == 0x7D) {
			depth = depth - 1;
			if (depth == 0) {
				return i;
			}
		}
		i = i + 1;
	}
	return 0 - 1;
}
`

const shellshockVuln = shellshockBody + `
func initialize_shell_function(env, len, out) {
	if (len < 4) {
		return 0;
	}
	if (load8(env) != 0x28 || load8(env + 1) != 0x29 ||
	    load8(env + 2) != 0x20 || load8(env + 3) != 0x7B) {
		return 0;
	}
	var end = find_close_brace(env, len, 3);
	if (end < 0) {
		return 0;
	}
	var body_len = end - 3 + 1;
	memcpy8(out, env + 3, body_len);
	var evaluated = evaluate_string(out, body_len);
	// BUG: trailing bytes after the function body are also evaluated.
	var i = end + 1;
	while (i < len) {
		var c = load8(env + i);
		store8(out + body_len + (i - end - 1), c);
		i = i + 1;
	}
	if (i > end + 1) {
		evaluated = evaluated + evaluate_string(out + body_len, i - end - 1);
	}
	return evaluated;
}`

const shellshockPatched = shellshockBody + `
func initialize_shell_function(env, len, out) {
	if (len < 4) {
		return 0;
	}
	if (load8(env) != 0x28 || load8(env + 1) != 0x29 ||
	    load8(env + 2) != 0x20 || load8(env + 3) != 0x7B) {
		return 0;
	}
	var end = find_close_brace(env, len, 3);
	if (end < 0) {
		return 0;
	}
	// Fix: reject definitions with trailing garbage instead of
	// evaluating it.
	if (end + 1 != len) {
		log_event(0x53);
		return 0 - 1;
	}
	var body_len = end - 3 + 1;
	memcpy8(out, env + 3, body_len);
	return evaluate_string(out, body_len);
}`

// --- #3 Venom (QEMU floppy controller) --------------------------------------
//
// The real bug: fdctrl_handle_* leave the FIFO index unbounded for some
// commands, so a guest can overflow fifo[]. The distinct command-code
// constants are what let even S-VCP find this procedure (paper §6.2).
// Layout of the emulated controller block: fifo at +0, index at +512,
// msr at +520, state at +528.

const venomCommon = `
func fifo_push(fdctrl, val) {
	var idx = load64(fdctrl + 512);
	store8(fdctrl + idx, val);
	store64(fdctrl + 512, idx + 1);
	return idx + 1;
}
`

const venomVuln = venomCommon + `
func fdctrl_handle_command(fdctrl, cmd, arg) {
	var pos = load64(fdctrl + 512);
	if (cmd == 0x8E) {
		// DRIVE SPECIFICATION: BUG — index keeps growing past the
		// 512-byte FIFO.
		fifo_push(fdctrl, arg & 0xFF);
		if ((arg & 0x80) != 0) {
			store64(fdctrl + 528, 1);
		}
		return load64(fdctrl + 512);
	}
	if (cmd == 0x0E) {
		// DUMPREG: emit 10 registers through the FIFO.
		var i = 0;
		while (i < 10) {
			fifo_push(fdctrl, load8(fdctrl + 540 + i));
			i = i + 1;
		}
		store64(fdctrl + 520, 0xD0);
		return 10;
	}
	if (cmd == 0x10) {
		// VERSION
		store64(fdctrl + 512, 0);
		fifo_push(fdctrl, 0x90);
		return 1;
	}
	if (cmd == 0x4A) {
		// READ ID
		store64(fdctrl + 520, 0xC0);
		store64(fdctrl + 512, pos & 0x1FF);
		return 0;
	}
	log_event(cmd);
	return 0 - 1;
}`

const venomPatched = venomCommon + `
func fdctrl_handle_command(fdctrl, cmd, arg) {
	var pos = load64(fdctrl + 512);
	if (cmd == 0x8E) {
		// Fix: wrap the FIFO index before every push.
		if (pos >= 512) {
			store64(fdctrl + 512, 0);
		}
		fifo_push(fdctrl, arg & 0xFF);
		if ((arg & 0x80) != 0) {
			store64(fdctrl + 528, 1);
		}
		return load64(fdctrl + 512);
	}
	if (cmd == 0x0E) {
		var i = 0;
		while (i < 10) {
			if (load64(fdctrl + 512) >= 512) {
				store64(fdctrl + 512, 0);
			}
			fifo_push(fdctrl, load8(fdctrl + 540 + i));
			i = i + 1;
		}
		store64(fdctrl + 520, 0xD0);
		return 10;
	}
	if (cmd == 0x10) {
		store64(fdctrl + 512, 0);
		fifo_push(fdctrl, 0x90);
		return 1;
	}
	if (cmd == 0x4A) {
		store64(fdctrl + 520, 0xC0);
		store64(fdctrl + 512, pos & 0x1FF);
		return 0;
	}
	log_event(cmd);
	return 0 - 1;
}`

// --- #4 Clobberin' Time (ntpd ctl_putdata) ----------------------------------
//
// The real bug: ctl_putdata appends attacker-controlled data into the
// response buffer without checking remaining space.

const clobberinCommon = helpersMem + `
func ctl_flushpkt(buf, used) {
	write_bytes(buf, used);
	return 0;
}
func ctl_datalen(data, maxlen) {
	var n = 0;
	while (n < maxlen && load8(data + n) != 0) {
		n = n + 1;
	}
	return n;
}
`

const clobberinVuln = clobberinCommon + `
func ctl_putdata(reply, used, cap, data, bin, dlen) {
	var pos = used;
	var overhead = 0;
	if (bin == 0) {
		dlen = ctl_datalen(data, dlen);
	}
	if (pos > 0) {
		// Item separator plus CRLF line wrapping every 72 columns.
		var col = pos % 72;
		if (col + dlen + 2 > 72) {
			store8(reply + pos, 0x0D);
			store8(reply + pos + 1, 0x0A);
			pos = pos + 2;
			overhead = overhead + 2;
		} else {
			store8(reply + pos, 0x2C);
			store8(reply + pos + 1, 0x20);
			pos = pos + 2;
			overhead = overhead + 2;
		}
	}
	// BUG: no room check against cap before the copy (CVE-2014-9295).
	memcpy8(reply + pos, data, dlen);
	pos = pos + dlen;
	var total = pos;
	if (total > 480) {
		ctl_flushpkt(reply, total);
		pos = 0;
	}
	if (bin != 0) {
		store8(reply + pos, 0);
		log_event(overhead);
	}
	return pos;
}`

const clobberinPatched = clobberinCommon + `
func ctl_putdata(reply, used, cap, data, bin, dlen) {
	var pos = used;
	var overhead = 0;
	if (bin == 0) {
		dlen = ctl_datalen(data, dlen);
	}
	if (pos > 0) {
		var col = pos % 72;
		if (col + dlen + 2 > 72) {
			store8(reply + pos, 0x0D);
			store8(reply + pos + 1, 0x0A);
			pos = pos + 2;
			overhead = overhead + 2;
		} else {
			store8(reply + pos, 0x2C);
			store8(reply + pos + 1, 0x20);
			pos = pos + 2;
			overhead = overhead + 2;
		}
	}
	// Fix: flush and bound the copy when the item does not fit.
	if (pos + dlen >u cap) {
		ctl_flushpkt(reply, pos);
		pos = 0;
		if (dlen >u cap) {
			log_event(0x45);
			return 0 - 1;
		}
	}
	memcpy8(reply + pos, data, dlen);
	pos = pos + dlen;
	var total = pos;
	if (total > 480) {
		ctl_flushpkt(reply, total);
		pos = 0;
	}
	if (bin != 0) {
		store8(reply + pos, 0);
		log_event(overhead);
	}
	return pos;
}`

// --- #5 Shellshock #2 (incomplete-fix variant, CVE-2014-7169) ---------------
//
// The follow-up bash bug: the parser state machine mishandles redirection
// tokens after the first fix. The stand-in tokenizes and (bug) lets a
// crafted token smuggle one more evaluation.

const shellshock2Body = helpersMem + `
func skip_spaces(s, len, from) {
	var i = from;
	while (i < len && load8(s + i) == 0x20) {
		i = i + 1;
	}
	return i;
}
`

const shellshock2Vuln = shellshock2Body + `
func parse_function_import(env, len, out) {
	var i = skip_spaces(env, len, 0);
	var tokens = 0;
	var pending_redir = 0;
	while (i < len) {
		var c = load8(env + i);
		if (c == 0x3C || c == 0x3E) {
			pending_redir = 1;
			i = i + 1;
			continue;
		}
		if (c == 0x20) {
			i = skip_spaces(env, len, i);
			continue;
		}
		var start = i;
		while (i < len && load8(env + i) != 0x20) {
			i = i + 1;
		}
		memcpy8(out + tokens * 32, env + start, i - start);
		tokens = tokens + 1;
		// BUG: a pending redirection consumes the next token as a
		// filename and evaluates it.
		if (pending_redir == 1) {
			evaluate_string(out + (tokens - 1) * 32, i - start);
			pending_redir = 0;
		}
	}
	return tokens;
}`

const shellshock2Patched = shellshock2Body + `
func parse_function_import(env, len, out) {
	var i = skip_spaces(env, len, 0);
	var tokens = 0;
	var pending_redir = 0;
	while (i < len) {
		var c = load8(env + i);
		if (c == 0x3C || c == 0x3E) {
			pending_redir = 1;
			i = i + 1;
			continue;
		}
		if (c == 0x20) {
			i = skip_spaces(env, len, i);
			continue;
		}
		var start = i;
		while (i < len && load8(env + i) != 0x20) {
			i = i + 1;
		}
		memcpy8(out + tokens * 32, env + start, i - start);
		tokens = tokens + 1;
		// Fix: redirection targets from imported environments are
		// recorded, never evaluated.
		if (pending_redir == 1) {
			log_event(0x52);
			pending_redir = 0;
		}
	}
	return tokens;
}`

// --- #6 ws-snmp (Wireshark SNMP dissector) ----------------------------------
//
// The real bug: the BER length decoder trusts a multi-byte length field
// and copies that many bytes of the community string into a fixed buffer.

const wsSnmpCommon = helpersMem + `
func ber_read_length(pkt, offp) {
	var off = load64(offp);
	var first = load8(pkt + off);
	off = off + 1;
	var length = 0;
	if ((first & 0x80) == 0) {
		length = first;
	} else {
		var nbytes = first & 0x7F;
		var k = 0;
		while (k < nbytes) {
			length = (length << 8) | load8(pkt + off);
			off = off + 1;
			k = k + 1;
		}
	}
	store64(offp, off);
	return length;
}
func ber_read_int(pkt, offp) {
	var off = load64(offp);
	var tag = load8(pkt + off);
	store64(offp, off + 1);
	if (tag != 2) {
		return 0 - 1;
	}
	var ilen = ber_read_length(pkt, offp);
	off = load64(offp);
	var val = 0;
	var k = 0;
	while (k < ilen && k < 8) {
		val = (val << 8) | load8(pkt + off + k);
		k = k + 1;
	}
	store64(offp, off + ilen);
	return val;
}
`

const wsSnmpVuln = wsSnmpCommon + `
func snmp_variable_decode(pkt, pkt_len, scratch, community) {
	store64(scratch, 0);
	var tag = load8(pkt);
	store64(scratch, 1);
	if (tag != 0x30) {
		return 0 - 1;
	}
	var total = ber_read_length(pkt, scratch);
	var version = ber_read_int(pkt, scratch);
	if (version < 0 || version > 3) {
		return 0 - 2;
	}
	var ctag = load8(pkt + load64(scratch));
	store64(scratch, load64(scratch) + 1);
	if (ctag != 4) {
		return 0 - 3;
	}
	var clen = ber_read_length(pkt, scratch);
	// BUG: clen is attacker-controlled and unchecked against the
	// 64-byte community buffer and the packet length (CVE-2011-0444).
	memcpy8(community, pkt + load64(scratch), clen);
	store8(community + clen, 0);
	store64(scratch, load64(scratch) + clen);
	var pdu_type = load8(pkt + load64(scratch)) & 0x1F;
	store64(scratch, load64(scratch) + 1);
	var err_status = 0;
	if (pdu_type == 0 || pdu_type == 1 || pdu_type == 3) {
		var req_id = ber_read_int(pkt, scratch);
		err_status = ber_read_int(pkt, scratch);
		var err_index = ber_read_int(pkt, scratch);
		log_event(req_id ^ err_index);
	} else {
		if (pdu_type == 4) {
			var enterprise = ber_read_int(pkt, scratch);
			log_event(enterprise);
		} else {
			return 0 - 4;
		}
	}
	var binds = 0;
	while (load64(scratch) <u pkt_len && binds < 16) {
		var btag = load8(pkt + load64(scratch));
		if (btag != 0x30) {
			break;
		}
		store64(scratch, load64(scratch) + 1);
		var blen = ber_read_length(pkt, scratch);
		store64(scratch, load64(scratch) + blen);
		binds = binds + 1;
	}
	return version * 0x10000 + err_status * 0x100 + binds;
}`

const wsSnmpPatched = wsSnmpCommon + `
func snmp_variable_decode(pkt, pkt_len, scratch, community) {
	store64(scratch, 0);
	var tag = load8(pkt);
	store64(scratch, 1);
	if (tag != 0x30) {
		return 0 - 1;
	}
	var total = ber_read_length(pkt, scratch);
	var version = ber_read_int(pkt, scratch);
	if (version < 0 || version > 3) {
		return 0 - 2;
	}
	var ctag = load8(pkt + load64(scratch));
	store64(scratch, load64(scratch) + 1);
	if (ctag != 4) {
		return 0 - 3;
	}
	var clen = ber_read_length(pkt, scratch);
	// Fix: clamp against both the packet and the destination buffer.
	if (load64(scratch) + clen >u pkt_len) {
		return 0 - 5;
	}
	if (clen >u 63) {
		clen = 63;
	}
	memcpy8(community, pkt + load64(scratch), clen);
	store8(community + clen, 0);
	store64(scratch, load64(scratch) + clen);
	var pdu_type = load8(pkt + load64(scratch)) & 0x1F;
	store64(scratch, load64(scratch) + 1);
	var err_status = 0;
	if (pdu_type == 0 || pdu_type == 1 || pdu_type == 3) {
		var req_id = ber_read_int(pkt, scratch);
		err_status = ber_read_int(pkt, scratch);
		var err_index = ber_read_int(pkt, scratch);
		log_event(req_id ^ err_index);
	} else {
		if (pdu_type == 4) {
			var enterprise = ber_read_int(pkt, scratch);
			log_event(enterprise);
		} else {
			return 0 - 4;
		}
	}
	var binds = 0;
	while (load64(scratch) <u pkt_len && binds < 16) {
		var btag = load8(pkt + load64(scratch));
		if (btag != 0x30) {
			break;
		}
		store64(scratch, load64(scratch) + 1);
		var blen = ber_read_length(pkt, scratch);
		store64(scratch, load64(scratch) + blen);
		binds = binds + 1;
	}
	return version * 0x10000 + err_status * 0x100 + binds;
}`

// --- #7 wget (CVE-2014-4877, FTP symlink handling) --------------------------
//
// The real bug: a malicious server's LIST output makes wget follow a
// symlink outside the destination tree; the fix rejects absolute and
// dot-dot link targets.

const wgetCommon = helpersMem + `
func str_len(s, max) {
	var n = 0;
	while (n < max && load8(s + n) != 0) {
		n = n + 1;
	}
	return n;
}
func url_unescape(s, len) {
	var out = 0;
	var i = 0;
	while (i < len) {
		var c = load8(s + i);
		if (c == 0x25 && i + 2 < len) {
			var hi = load8(s + i + 1);
			var lo = load8(s + i + 2);
			if (hi >= 0x30 && hi <= 0x39 && lo >= 0x30 && lo <= 0x39) {
				c = (hi - 0x30) * 16 + (lo - 0x30);
				i = i + 2;
			}
		}
		store8(s + out, c);
		out = out + 1;
		i = i + 1;
	}
	store8(s + out, 0);
	return out;
}
`

const wgetVuln = wgetCommon + `
func ftp_retrieve_symlink(linkname, target, destdir, buf) {
	var llen = str_len(linkname, 256);
	var tlen = str_len(target, 256);
	var dlen = str_len(destdir, 256);
	if (llen == 0 || dlen == 0) {
		log_event(0x30);
		return 0;
	}
	llen = url_unescape(linkname, llen);
	tlen = url_unescape(target, tlen);
	var pos = 0;
	memcpy8(buf, destdir, dlen);
	pos = dlen;
	if (load8(buf + pos - 1) != 0x2F) {
		store8(buf + pos, 0x2F);
		pos = pos + 1;
	}
	memcpy8(buf + pos, linkname, llen);
	pos = pos + llen;
	store8(buf + pos, 0);
	var existing = stat_path(buf, buf + 512);
	if (existing == 0) {
		var mode = load64(buf + 512 + 16);
		if ((mode & 0xA000) == 0xA000) {
			unlink_path(buf);
			log_event(0x55);
		}
	}
	// BUG: the server-supplied link target is used verbatim
	// (CVE-2014-4877): absolute and dot-dot targets escape destdir.
	var made = make_symlink(buf, target);
	if (made != 0) {
		log_event(0x4C);
		return 0 - 1;
	}
	write_bytes(buf, pos);
	return pos + tlen;
}`

const wgetPatched = wgetCommon + `
func ftp_retrieve_symlink(linkname, target, destdir, buf) {
	var llen = str_len(linkname, 256);
	var tlen = str_len(target, 256);
	var dlen = str_len(destdir, 256);
	if (llen == 0 || dlen == 0) {
		log_event(0x30);
		return 0;
	}
	llen = url_unescape(linkname, llen);
	tlen = url_unescape(target, tlen);
	// Fix: reject absolute targets and any ".." component.
	if (tlen > 0 && load8(target) == 0x2F) {
		log_event(0x41);
		return 0 - 2;
	}
	var i = 0;
	while (i + 1 < tlen) {
		if (load8(target + i) == 0x2E && load8(target + i + 1) == 0x2E) {
			log_event(0x44);
			return 0 - 3;
		}
		i = i + 1;
	}
	var pos = 0;
	memcpy8(buf, destdir, dlen);
	pos = dlen;
	if (load8(buf + pos - 1) != 0x2F) {
		store8(buf + pos, 0x2F);
		pos = pos + 1;
	}
	memcpy8(buf + pos, linkname, llen);
	pos = pos + llen;
	store8(buf + pos, 0);
	var existing = stat_path(buf, buf + 512);
	if (existing == 0) {
		var mode = load64(buf + 512 + 16);
		if ((mode & 0xA000) == 0xA000) {
			unlink_path(buf);
			log_event(0x55);
		}
	}
	var made = make_symlink(buf, target);
	if (made != 0) {
		log_event(0x4C);
		return 0 - 1;
	}
	write_bytes(buf, pos);
	return pos + tlen;
}`

// --- #8 ffmpeg (CVE-2015-6826, rv34 decoder realloc) ------------------------
//
// The real bug: on a frame-size change the decoder reallocates internal
// tables but keeps stale sizes when allocation partially fails, leading
// to out-of-bounds writes later. Context layout: width +0, height +8,
// mb_count +16, intra_types ptr +24, mb_type ptr +32, qscale ptr +40.

const ffmpegCommon = `
func clear_table(p, n) {
	var i = 0;
	while (i < n) {
		store64(p + i * 8, 0);
		i = i + 1;
	}
	return p;
}
func copy_table(dst, src, n) {
	var i = 0;
	while (i < n) {
		store64(dst + i * 8, load64(src + i * 8));
		i = i + 1;
	}
	return dst;
}
`

const ffmpegVuln = ffmpegCommon + `
func rv34_decoder_realloc(ctx, new_w, new_h) {
	var old_mb = load64(ctx + 16);
	var old_it = load64(ctx + 24);
	var mb_w = (new_w + 15) >> 4;
	var mb_h = (new_h + 15) >> 4;
	var mb_count = mb_w * mb_h;
	if (mb_count == old_mb && new_w == load64(ctx)) {
		return 0;
	}
	if (new_w <= 0 || new_h <= 0 || mb_count > 0x10000) {
		log_event(0x57);
		return 0 - 22;
	}
	store64(ctx, new_w);
	store64(ctx + 8, new_h);
	// BUG: mb_count is committed before the allocations are checked
	// (CVE-2015-6826): a failed alloc leaves tables sized for old_mb
	// but counted as mb_count.
	store64(ctx + 16, mb_count);
	var it = av_malloc(mb_count * 8);
	if (it == 0) {
		return 0 - 12;
	}
	clear_table(it, mb_count);
	if (old_it != 0) {
		var keep = old_mb;
		if (mb_count < keep) {
			keep = mb_count;
		}
		copy_table(it, old_it, keep);
	}
	store64(ctx + 24, it);
	var mt = av_malloc(mb_count * 8);
	if (mt == 0) {
		return 0 - 12;
	}
	store64(ctx + 32, clear_table(mt, mb_count));
	var qs = av_malloc(mb_count * 4);
	if (qs == 0) {
		return 0 - 12;
	}
	store64(ctx + 40, qs);
	var stride = (mb_w + 1) * 8;
	store64(ctx + 48, stride);
	store64(ctx + 56, mb_w);
	store64(ctx + 64, mb_h);
	return old_mb - mb_count;
}`

const ffmpegPatched = ffmpegCommon + `
func rv34_decoder_realloc(ctx, new_w, new_h) {
	var old_mb = load64(ctx + 16);
	var old_it = load64(ctx + 24);
	var mb_w = (new_w + 15) >> 4;
	var mb_h = (new_h + 15) >> 4;
	var mb_count = mb_w * mb_h;
	if (mb_count == old_mb && new_w == load64(ctx)) {
		return 0;
	}
	if (new_w <= 0 || new_h <= 0 || mb_count > 0x10000) {
		log_event(0x57);
		return 0 - 22;
	}
	// Fix: allocate everything first; only commit the new geometry when
	// every allocation succeeded.
	var it = av_malloc(mb_count * 8);
	var mt = av_malloc(mb_count * 8);
	var qs = av_malloc(mb_count * 4);
	if (it == 0 || mt == 0 || qs == 0) {
		log_event(0x4D);
		return 0 - 12;
	}
	clear_table(it, mb_count);
	if (old_it != 0) {
		var keep = old_mb;
		if (mb_count < keep) {
			keep = mb_count;
		}
		copy_table(it, old_it, keep);
	}
	store64(ctx, new_w);
	store64(ctx + 8, new_h);
	store64(ctx + 16, mb_count);
	store64(ctx + 24, it);
	store64(ctx + 32, clear_table(mt, mb_count));
	store64(ctx + 40, qs);
	var stride = (mb_w + 1) * 8;
	store64(ctx + 48, stride);
	store64(ctx + 56, mb_w);
	store64(ctx + 64, mb_h);
	return old_mb - mb_count;
}`
