package corpus

import (
	"repro/internal/asm"
	"repro/internal/minic"
)

// The corpus programs call a handful of external ("libc"/OS) functions.
// For differential testing, the externs must behave identically whether
// the program runs under the MiniC interpreter or the machine emulator,
// so they are defined once against a small memory-access interface and
// adapted to both runtimes. Unknown externs default to a deterministic
// pure hash of their arguments.

// memIO abstracts the two runtimes' memories.
type memIO interface {
	Load(addr uint64, w int) uint64
	Store(addr uint64, w int, v uint64)
}

type interpMem struct{ ip *minic.Interp }

func (m interpMem) Load(addr uint64, w int) uint64     { return m.ip.LoadMem(addr, w) }
func (m interpMem) Store(addr uint64, w int, v uint64) { m.ip.StoreMem(addr, w, v) }

type machineMem struct{ m *asm.Machine }

func (m machineMem) Load(addr uint64, w int) uint64     { return m.m.ReadMem(addr, asm.Width(w)) }
func (m machineMem) Store(addr uint64, w int, v uint64) { m.m.WriteMem(addr, asm.Width(w), v) }

// ExternEnv is a deterministic implementation of the corpus externs with
// its own allocator state. Use one fresh env per program run on each
// runtime so both runs see identical behaviour.
type ExternEnv struct {
	bump uint64 // bump allocator cursor
}

// NewExternEnv returns an env whose allocator starts at a fixed address
// far from the corpus test buffers and the stack.
func NewExternEnv() *ExternEnv { return &ExternEnv{bump: 0x10_0000} }

func mixExt(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// callExtern dispatches one extern call.
func (env *ExternEnv) callExtern(name string, args []int64, mem memIO) int64 {
	switch name {
	case "write_bytes", "sys_write":
		// Pretend the write succeeded in full. sys_write(fd, buf, n)
		// returns n; write_bytes(buf, n) returns n.
		return args[len(args)-1]
	case "log_event", "chr_flush":
		return 0
	case "evaluate_string":
		// A pure stand-in for "execute this text": a value derived from
		// its length.
		return args[1]*3 + 1
	case "make_symlink", "unlink_path", "do_link":
		return 0
	case "get_umask":
		return 0x12
	case "stat_path":
		// stat_path(path, statp): fill a plausible stat record.
		statp := uint64(args[1])
		mem.Store(statp+16, 8, 0x4000|0x1A4)
		mem.Store(statp+48, 8, 4096)
		return 0
	case "sys_read":
		// sys_read(fd, buf, n): deterministic bytes, at most 32.
		buf := uint64(args[1])
		n := args[2]
		if n > 32 {
			n = 32
		}
		for j := int64(0); j < n; j++ {
			mem.Store(buf+uint64(j), 1, uint64(0x30+(args[0]+j)%10))
		}
		return n
	case "av_malloc", "xrealloc":
		// Bump allocation; xrealloc "moves" to fresh storage (contents
		// start zeroed in both runtimes, so no copy is observable for
		// the corpus programs, which rewrite what they use).
		n := args[len(args)-1]
		if n < 0 || n > 1<<20 {
			return 0
		}
		p := env.bump
		env.bump += uint64(n+15) &^ 15
		return int64(p)
	}
	// Unknown extern: deterministic pure function of name and arguments.
	h := mixExt(hashName(name))
	for _, a := range args {
		h = mixExt(h ^ uint64(a))
	}
	return int64(h >> 2) // positive
}

// externArities scans a program for calls to functions it does not
// define, recording each name's arity (needed to read the right argument
// registers on the emulator side).
func externArities(prog *minic.Program) map[string]int {
	out := map[string]int{}
	var walkExpr func(e minic.Expr)
	var walkStmts func(ss []minic.Stmt)
	walkExpr = func(e minic.Expr) {
		switch t := e.(type) {
		case *minic.Binary:
			walkExpr(t.X)
			walkExpr(t.Y)
		case *minic.Unary:
			walkExpr(t.X)
		case *minic.Load:
			walkExpr(t.Addr)
		case *minic.Sext:
			walkExpr(t.X)
		case *minic.Call:
			if _, defined := prog.Lookup(t.Name); !defined {
				out[t.Name] = len(t.Args)
			}
			for _, a := range t.Args {
				walkExpr(a)
			}
		}
	}
	walkStmts = func(ss []minic.Stmt) {
		for _, s := range ss {
			switch t := s.(type) {
			case *minic.VarDecl:
				walkExpr(t.Init)
			case *minic.AssignStmt:
				walkExpr(t.Val)
			case *minic.StoreStmt:
				walkExpr(t.Addr)
				walkExpr(t.Val)
			case *minic.IfStmt:
				walkExpr(t.Cond)
				walkStmts(t.Then)
				walkStmts(t.Else)
			case *minic.WhileStmt:
				walkExpr(t.Cond)
				walkStmts(t.Body)
			case *minic.ReturnStmt:
				walkExpr(t.Val)
			case *minic.ExprStmt:
				walkExpr(t.X)
			}
		}
	}
	for _, f := range prog.Funcs {
		walkStmts(f.Body)
	}
	return out
}

// BindInterp registers the extern environment on a MiniC interpreter.
func (env *ExternEnv) BindInterp(ip *minic.Interp, prog *minic.Program) {
	for name := range externArities(prog) {
		name := name
		ip.Externs[name] = func(ip *minic.Interp, args []int64) int64 {
			return env.callExtern(name, args, interpMem{ip})
		}
	}
}

// BindMachine registers the extern environment on a machine emulator.
func (env *ExternEnv) BindMachine(m *asm.Machine, prog *minic.Program) {
	argRegs := [6]asm.Reg{asm.RDI, asm.RSI, asm.RDX, asm.RCX, asm.R8, asm.R9}
	for name, arity := range externArities(prog) {
		name, arity := name, arity
		m.AddExtern(name, func(m *asm.Machine) uint64 {
			args := make([]int64, arity)
			for i := 0; i < arity; i++ {
				args[i] = int64(m.Regs[argRegs[i]])
			}
			return uint64(env.callExtern(name, args, machineMem{m}))
		})
	}
}
