package corpus

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/minic"
)

func TestExternDeterministicAcrossRuntimes(t *testing.T) {
	// The same extern call must return the same value and have the same
	// memory effect under the interpreter and the emulator.
	prog := minic.MustParse(`
func f(buf) {
	var n = sys_read(3, buf, 16);
	var p = av_malloc(24);
	var q = av_malloc(8);
	var u = mystery_ext(n, p);
	return n + (q - p) + (u & 0xFF);
}`)
	ip := minic.NewInterp(prog)
	NewExternEnv().BindInterp(ip, prog)
	want, err := ip.Call("f", 0x4000)
	if err != nil {
		t.Fatal(err)
	}

	// A second interpreter run with a fresh env gives the same answer.
	ip2 := minic.NewInterp(prog)
	NewExternEnv().BindInterp(ip2, prog)
	got2, _ := ip2.Call("f", 0x4000)
	if got2 != want {
		t.Fatalf("externs not deterministic: %d vs %d", got2, want)
	}

	// Memory effects match byte for byte.
	for off := uint64(0); off < 16; off++ {
		if ip.LoadMem(0x4000+off, 1) != ip2.LoadMem(0x4000+off, 1) {
			t.Fatal("sys_read wrote different bytes")
		}
	}
}

func TestExternAllocatorProperties(t *testing.T) {
	env := NewExternEnv()
	p1 := env.callExtern("av_malloc", []int64{24}, nil)
	p2 := env.callExtern("av_malloc", []int64{1}, nil)
	p3 := env.callExtern("xrealloc", []int64{int64(p1), 64}, nil)
	if p1 == 0 || p2 == 0 || p3 == 0 {
		t.Fatal("allocation failed")
	}
	if p2-p1 < 24 {
		t.Errorf("allocations overlap: %d then %d", p1, p2)
	}
	if p1%16 != 0 || p2%16 != 0 {
		t.Errorf("allocations not 16-aligned: %d %d", p1, p2)
	}
	// Absurd sizes fail like a real allocator.
	if got := env.callExtern("av_malloc", []int64{1 << 40}, nil); got != 0 {
		t.Errorf("huge allocation succeeded: %d", got)
	}
	if got := env.callExtern("av_malloc", []int64{-5}, nil); got != 0 {
		t.Errorf("negative allocation succeeded: %d", got)
	}
}

func TestUnknownExternPureHash(t *testing.T) {
	env := NewExternEnv()
	a := env.callExtern("never_heard_of_it", []int64{1, 2, 3}, nil)
	b := env.callExtern("never_heard_of_it", []int64{1, 2, 3}, nil)
	c := env.callExtern("never_heard_of_it", []int64{1, 2, 4}, nil)
	d := env.callExtern("some_other_name", []int64{1, 2, 3}, nil)
	if a != b {
		t.Error("unknown extern not deterministic")
	}
	if a == c || a == d {
		t.Error("unknown extern ignores arguments or name")
	}
	if a < 0 {
		t.Error("unknown extern returned negative (breaks error-check branches)")
	}
}

func TestExternArities(t *testing.T) {
	prog := minic.MustParse(`
func local(x) { return x; }
func f(a) { return local(a) + ext_one(a) + ext_three(a, a, a); }`)
	got := externArities(prog)
	if len(got) != 2 || got["ext_one"] != 1 || got["ext_three"] != 3 {
		t.Errorf("externArities = %v", got)
	}
	if _, hasLocal := got["local"]; hasLocal {
		t.Error("defined function reported as extern")
	}
}

func TestStatPathFillsRecord(t *testing.T) {
	prog := minic.MustParse(`func f(p, statp) { return stat_path(p, statp); }`)
	ip := minic.NewInterp(prog)
	NewExternEnv().BindInterp(ip, prog)
	if _, err := ip.Call("f", 0x100, 0x4000); err != nil {
		t.Fatal(err)
	}
	if mode := ip.LoadMem(0x4000+16, 8); mode&0x4000 == 0 {
		t.Errorf("stat mode = %#x, expected a directory bit", mode)
	}
	if size := ip.LoadMem(0x4000+48, 8); size == 0 {
		t.Error("stat size not filled")
	}
}

func TestBindMachineReadsArgRegisters(t *testing.T) {
	prog := minic.MustParse(`func f(a, b) { return ext_pair(a, b); }`)
	tcProcs := mustCompileAllGcc(t, prog)
	m := asm.NewMachine()
	for _, p := range tcProcs {
		m.AddProc(p)
	}
	NewExternEnv().BindMachine(m, prog)
	m.Regs[asm.RDI] = 11
	m.Regs[asm.RSI] = 22
	got, err := m.Run("f")
	if err != nil {
		t.Fatal(err)
	}
	env := NewExternEnv()
	want := env.callExtern("ext_pair", []int64{11, 22}, nil)
	if int64(got) != want {
		t.Errorf("machine extern = %d, env = %d", int64(got), want)
	}
}

// mustCompileAllGcc compiles every function with gcc-4.9 for tests.
func mustCompileAllGcc(t *testing.T, prog *minic.Program) []*asm.Proc {
	t.Helper()
	tc, ok := compile.ByName("gcc-4.9")
	if !ok {
		t.Fatal("no gcc-4.9")
	}
	procs, err := compile.CompileAll(prog, tc, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	return procs
}
