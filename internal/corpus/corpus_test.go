package corpus

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/minic"
)

func TestAllSourcesParse(t *testing.T) {
	for _, v := range Vulns() {
		if _, err := minic.Parse(v.Src); err != nil {
			t.Errorf("%s: vulnerable source: %v", v.Alias, err)
		}
		if _, err := minic.Parse(v.Patched); err != nil {
			t.Errorf("%s: patched source: %v", v.Alias, err)
		}
		if v.Src == v.Patched {
			t.Errorf("%s: patch is a no-op", v.Alias)
		}
	}
	for _, d := range Decoys() {
		if _, err := minic.Parse(d.Src); err != nil {
			t.Errorf("decoy %s: %v", d.Name, err)
		}
	}
	for _, d := range GeneratedVariants(10) {
		if _, err := minic.Parse(d.Src); err != nil {
			t.Errorf("variant %s: %v", d.Name, err)
		}
	}
}

func TestEightVulns(t *testing.T) {
	vs := Vulns()
	if len(vs) != 8 {
		t.Fatalf("Vulns() = %d entries, want 8 (Table 1)", len(vs))
	}
	aliases := map[string]bool{}
	for i, v := range vs {
		if v.ID != i+1 {
			t.Errorf("vuln %d has ID %d", i, v.ID)
		}
		if v.CVE == "" || v.Alias == "" || v.FuncName == "" {
			t.Errorf("vuln %d incomplete: %+v", i, v)
		}
		aliases[v.Alias] = true
	}
	for _, want := range []string{"Heartbleed", "Shellshock", "Venom", "Clobberin' Time",
		"Shellshock #2", "ws-snmp", "wget", "ffmpeg"} {
		if !aliases[want] {
			t.Errorf("missing vuln alias %q", want)
		}
	}
}

// prefill writes the same deterministic byte pattern into a runtime
// memory region.
const (
	regionBase = 0x4000
	regionSize = 0x2000
)

func pattern(addr uint64) byte { return byte(addr*7 + 3) }

// TestVulnsDifferentialAllToolchains runs every vulnerable and patched
// procedure under the interpreter and under every toolchain's compiled
// code on the emulator, comparing return values and final memory.
func TestVulnsDifferentialAllToolchains(t *testing.T) {
	argSets := [][]int64{
		{regionBase, regionBase + 0x800, regionBase + 0x1000, regionBase + 0x1800, 64, 32},
		{regionBase + 0x100, 40, regionBase + 0x900, regionBase + 0x1100, 16, 8},
		{regionBase, 0, regionBase + 0x40, regionBase + 0x80, 1, 2},
	}
	for _, v := range Vulns() {
		for _, src := range []string{v.Src, v.Patched} {
			prog, err := minic.Parse(src)
			if err != nil {
				t.Fatalf("%s: %v", v.Alias, err)
			}
			fn, _ := prog.Lookup(v.FuncName)
			for _, tc := range compile.Toolchains() {
				procs, err := compile.CompileAll(prog, tc, compile.O2())
				if err != nil {
					t.Fatalf("%s/%s: compile: %v", v.Alias, tc.Name(), err)
				}
				for _, rawArgs := range argSets {
					args := rawArgs[:len(fn.Params)]

					// Interpreter run.
					ip := minic.NewInterp(prog)
					ip.SetMaxSteps(5_000_000)
					env1 := NewExternEnv()
					env1.BindInterp(ip, prog)
					for a := uint64(0); a < regionSize; a++ {
						ip.StoreMem(regionBase+a, 1, uint64(pattern(regionBase+a)))
					}
					want, werr := ip.Call(v.FuncName, args...)

					// Emulator run.
					m := asm.NewMachine()
					m.SetMaxSteps(20_000_000)
					for _, p := range procs {
						m.AddProc(p)
					}
					env2 := NewExternEnv()
					env2.BindMachine(m, prog)
					for a := uint64(0); a < regionSize; a++ {
						m.WriteMem(regionBase+a, asm.Width1, uint64(pattern(regionBase+a)))
					}
					argRegs := [6]asm.Reg{asm.RDI, asm.RSI, asm.RDX, asm.RCX, asm.R8, asm.R9}
					for i, a := range args {
						m.Regs[argRegs[i]] = uint64(a)
					}
					got, gerr := m.Run(v.FuncName)

					if (werr != nil) != (gerr != nil) {
						t.Fatalf("%s/%s args=%v: error mismatch interp=%v emu=%v",
							v.Alias, tc.Name(), args, werr, gerr)
					}
					if werr != nil {
						continue
					}
					if got != uint64(want) {
						t.Fatalf("%s/%s args=%v: emu=%#x interp=%#x",
							v.Alias, tc.Name(), args, got, uint64(want))
					}
					// Compare the shared buffer region.
					for a := uint64(0); a < regionSize; a += 7 {
						wb := byte(ip.LoadMem(regionBase+a, 1))
						gb := byte(m.ReadMem(regionBase+a, asm.Width1))
						if wb != gb {
							t.Fatalf("%s/%s args=%v: memory differs at %#x: emu=%#x interp=%#x",
								v.Alias, tc.Name(), args, regionBase+a, gb, wb)
						}
					}
				}
			}
		}
	}
}

// TestHeartbleedPatchChangesSemantics crafts the canonical over-long
// heartbeat and checks the vulnerable procedure leaks while the patched
// one refuses.
func TestHeartbleedPatchChangesSemantics(t *testing.T) {
	v := Vulns()[0]
	run := func(src string) int64 {
		prog := minic.MustParse(src)
		ip := minic.NewInterp(prog)
		NewExternEnv().BindInterp(ip, prog)
		// Record: type=1 (heartbeat request), claimed payload=0x4000,
		// actual record only 32 bytes long.
		p := uint64(0x4000)
		ip.StoreMem(p, 1, 1)
		ip.StoreMem(p+1, 1, 0x40)
		ip.StoreMem(p+2, 1, 0x00)
		got, err := ip.Call(v.FuncName, int64(p), 32, 0x6000)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if leak := run(v.Src); leak <= 0 {
		t.Errorf("vulnerable heartbeat returned %d, expected a leak", leak)
	}
	if resp := run(v.Patched); resp != 0 {
		t.Errorf("patched heartbeat returned %d, want 0 (silently drop)", resp)
	}
}

func TestVenomPatchBoundsFifo(t *testing.T) {
	v := Vulns()[2]
	run := func(src string) int64 {
		prog := minic.MustParse(src)
		ip := minic.NewInterp(prog)
		NewExternEnv().BindInterp(ip, prog)
		fdctrl := uint64(0x4000)
		ip.StoreMem(fdctrl+512, 8, 600) // index already past the FIFO
		got, err := ip.Call(v.FuncName, int64(fdctrl), 0x8E, 0x55)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if idx := run(v.Src); idx != 601 {
		t.Errorf("vulnerable FDC index = %d, want 601 (overflow persists)", idx)
	}
	if idx := run(v.Patched); idx != 1 {
		t.Errorf("patched FDC index = %d, want 1 (wrapped)", idx)
	}
}

func TestBuildSmall(t *testing.T) {
	tcs := compile.Toolchains()[:2]
	procs, err := Build(BuildConfig{Toolchains: tcs, IncludePatched: true, SynthVariants: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) == 0 {
		t.Fatal("empty corpus")
	}
	// Expected count: (vuln programs incl. patched + decoys + synth) ×
	// number of functions × 2 toolchains; just sanity-check scale and
	// provenance.
	perTC := map[string]int{}
	vulnSeen := map[string]bool{}
	for _, p := range procs {
		if p.Source.Package == "" || p.Source.SourceSym == "" || p.Source.Toolchain == "" {
			t.Fatalf("missing provenance on %s", p.Name)
		}
		perTC[p.Source.Toolchain]++
		if p.Source.SourceSym == "tls1_process_heartbeat" {
			vulnSeen[p.Source.Toolchain+patchTag(p.Source.Patched)] = true
		}
	}
	if len(perTC) != 2 {
		t.Errorf("toolchains in corpus: %v", perTC)
	}
	if perTC[tcs[0].Name()] != perTC[tcs[1].Name()] {
		t.Errorf("unbalanced corpus: %v", perTC)
	}
	for _, tc := range tcs {
		for _, tag := range []string{"", "+p"} {
			if !vulnSeen[tc.Name()+tag] {
				t.Errorf("heartbleed variant missing for %s%s", tc.Name(), tag)
			}
		}
	}
	// Find works.
	if Find(procs, "tls1_process_heartbeat", tcs[0].Name(), true) == nil {
		t.Error("Find failed for patched heartbleed")
	}
	if Find(procs, "no_such_proc", tcs[0].Name(), false) != nil {
		t.Error("Find invented a procedure")
	}
}

func patchTag(p bool) string {
	if p {
		return "+p"
	}
	return ""
}

func TestCompileVuln(t *testing.T) {
	gcc, _ := compile.ByName("gcc-4.9")
	for _, v := range Vulns() {
		p, err := CompileVuln(v, gcc, false)
		if err != nil {
			t.Fatalf("%s: %v", v.Alias, err)
		}
		if p.Source.SourceSym != v.FuncName || p.Source.Patched {
			t.Errorf("%s: provenance %+v", v.Alias, p.Source)
		}
		if p.NumInsts() < 10 {
			t.Errorf("%s: suspiciously small (%d insts)", v.Alias, p.NumInsts())
		}
	}
}

func TestFig6NamesPresent(t *testing.T) {
	// Figure 6 names specific query procedures; the decoy library must
	// provide them.
	want := []string{"parse_integer", "dev_ino_compare", "default_format",
		"print_stat", "cached_umask", "create_hard_link", "i_write",
		"compare_nodes", "ftp_syst", "ff_rv34_decode_init_thread_copy"}
	have := map[string]bool{}
	for _, d := range Decoys() {
		prog, err := minic.Parse(d.Src)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range prog.Funcs {
			have[f.Name] = true
		}
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("decoy library missing %s", name)
		}
	}
}
