package corpus

import (
	"fmt"
	"strings"
)

// Decoy packages stand in for the randomly selected Coreutils (and other
// open-source) procedures that fill the paper's 1500-procedure target
// database. Function names follow the paper's Figure 6 where it names
// specific queries (parse_integer, dev_ino_compare, default_format,
// print_stat, cached_umask, create_hard_link, i_write, compare_nodes,
// ftp_syst, ff_rv34_decode_init_thread_copy).

// Package is one decoy source package: all functions compile into the
// target database under every toolchain.
type Package struct {
	Name string // e.g. "coreutils-8.23/stat"
	Src  string
}

// Decoys returns the decoy package library.
func Decoys() []Package {
	pkgs := []Package{
		{Name: "coreutils-8.23/parse", Src: pkgParse},
		{Name: "coreutils-8.23/stat", Src: pkgStat},
		{Name: "coreutils-8.23/ln", Src: pkgLn},
		{Name: "coreutils-8.23/sort", Src: pkgSort},
		{Name: "coreutils-8.23/od", Src: pkgOd},
		{Name: "coreutils-8.23/cksum", Src: pkgCksum},
		{Name: "coreutils-8.23/expr", Src: pkgExpr},
		{Name: "coreutils-8.23/tr", Src: pkgTr},
		{Name: "coreutils-8.23/du", Src: pkgDu},
		{Name: "wget-1.8/ftp", Src: pkgWgetFtp},
		{Name: "ffmpeg-2.4.6/rv34", Src: pkgFfmpegRv34},
		{Name: "bash-4.3/subst", Src: pkgBashSubst},
		{Name: "openssl-1.0.1f/buf", Src: pkgOpensslBuf},
		{Name: "qemu-2.3/chardev", Src: pkgQemuChardev},
		{Name: "ntp-4.2.7/refclock", Src: pkgNtpRefclock},
	}
	pkgs = append(pkgs, Decoys2()...)
	pkgs = append(pkgs, Decoys3()...)
	return append(pkgs, templatePackages()...)
}

// templatePackages reproduces the DEFINE_SORT_FUNCTIONS macro pattern the
// paper's §6.6 discusses (ls.c): families of near-identical "template"
// procedures that differ only in the comparison they delegate to. These
// are the known hard case for strand-based matching.
func templatePackages() []Package {
	keys := []string{"ctime", "mtime", "atime", "size", "name", "extension"}
	var b strings.Builder
	for i, key := range keys {
		fmt.Fprintf(&b, `
func strcmp_%s(a, b) {
	return cmp_%s(a, b, %d);
}
func rev_strcmp_%s(a, b) {
	return 0 - cmp_%s(a, b, %d);
}
`, key, key, 8*(i+1), key, key, 8*(i+1))
	}
	return []Package{{Name: "coreutils-8.23/ls-templates", Src: b.String()}}
}

// GeneratedVariants returns n additional synthetic decoy packages built
// from parameterized templates (different constants, field offsets and
// loop structures), used to grow the target database toward the paper's
// 1500-procedure scale without hand-writing every source. Every
// constant is a distinct function of the variant index — never a small
// modulus — so variants do not collapse into shared canonical strands:
// unique-strand count, the quantity query cost actually scales with,
// grows near-linearly in n (which is what makes this the corpus-growth
// knob behind the retrieval scaling benchmark).
func GeneratedVariants(n int) []Package {
	var out []Package
	for i := 0; i < n; i++ {
		// Vary constants so every variant is a distinct computation,
		// and keep the straight-line blocks chunky: MinHash signatures
		// over tiny feature sets collide with everything, which would
		// turn corpus growth into candidate-set growth and defeat the
		// point of the decoys.
		poly := 0x21 + 2*i
		shift := 3 + i%5
		mask := 0x11 + 3*i
		off := 8 * (i + 1)
		stride := 8*(i%6) + 16
		seed := 0x9E37 + 31*i
		fold := 5 + i%7
		k1 := 0x5BD1 + 101*i
		k2 := 0xC2B2 + 67*i
		src := fmt.Sprintf(`
func digest_v%d(buf, len) {
	var h = %d;
	var t = %d;
	var i = 0;
	while (i < len) {
		h = h * %d + load8(buf + i);
		h = h ^ (h >>u %d);
		t = t + (h ^ %d);
		t = t * %d;
		h = h + (t >>u %d);
		i = i + 1;
	}
	h = h ^ (t * %d);
	h = h * %d;
	h = h ^ (h >>u %d);
	return h & 0x7FFFFFFFFFFFFFFF;
}
func scan_v%d(buf, len, needle) {
	var i = 0;
	var hits = 0;
	var run = %d;
	while (i < len) {
		var c = load8(buf + i);
		c = (c * %d) ^ (run >>u %d);
		run = run + (c & %d);
		if ((c & %d) == needle) {
			hits = hits + (run & %d);
			run = run ^ %d;
		}
		i = i + 1;
	}
	return hits + (run * %d);
}
func pack_v%d(rec, a, b) {
	var chk = (a * %d) ^ (b * %d);
	store64(rec, a + %d);
	store64(rec + %d, b ^ %d);
	store64(rec + %d, chk);
	store32(rec + %d, (a ^ b) & 0xFFFFFFFF);
	store32(rec + %d, (chk >>u %d) & 0xFFFFFFFF);
	return rec;
}
func stride_v%d(buf, count) {
	var acc = %d;
	var carry = %d;
	var i = 0;
	while (i < count) {
		var w = load64(buf + i * %d);
		acc = acc + (w * %d);
		acc = acc ^ (acc << %d);
		carry = carry + (w >>u %d);
		carry = carry * %d;
		acc = acc + (carry ^ %d);
		i = i + 1;
	}
	return acc ^ (carry * %d);
}
`, i, 0x1000+i*17, seed, poly, shift, k1, k2, fold, k1+3, poly+2, shift+7,
			i, seed, poly+4, fold, mask, mask+2, k1, k2, poly+6,
			i, k1, k2, seed, off, k1+5, off+16, off+24, off+32, shift,
			i, seed, k2, stride, poly+8, fold, shift, k1+7, k2+9, poly+10)
		out = append(out, Package{Name: fmt.Sprintf("synth-0.%d/lib", i), Src: src})
	}
	return out
}

const pkgParse = `
func parse_integer(s, len) {
	var i = 0;
	var neg = 0;
	var val = 0;
	while (i < len && load8(s + i) == 0x20) {
		i = i + 1;
	}
	if (i < len && load8(s + i) == 0x2D) {
		neg = 1;
		i = i + 1;
	}
	while (i < len) {
		var c = load8(s + i);
		if (c < 0x30 || c > 0x39) {
			break;
		}
		val = val * 10 + (c - 0x30);
		i = i + 1;
	}
	if (neg == 1) {
		return 0 - val;
	}
	return val;
}
func parse_hex(s, len) {
	var i = 0;
	var val = 0;
	while (i < len) {
		var c = load8(s + i);
		var d = 0 - 1;
		if (c >= 0x30 && c <= 0x39) {
			d = c - 0x30;
		} else if (c >= 0x61 && c <= 0x66) {
			d = c - 0x61 + 10;
		} else if (c >= 0x41 && c <= 0x46) {
			d = c - 0x41 + 10;
		}
		if (d < 0) {
			break;
		}
		val = val * 16 + d;
		i = i + 1;
	}
	return val;
}
func skip_field(s, len, from) {
	var i = from;
	while (i < len && load8(s + i) != 0x3A) {
		i = i + 1;
	}
	return i + 1;
}`

const pkgStat = `
func default_format(mode, flags, out) {
	var pos = 0;
	if ((mode & 0x4000) != 0) {
		store8(out, 0x64);
	} else if ((mode & 0xA000) == 0xA000) {
		store8(out, 0x6C);
	} else {
		store8(out, 0x2D);
	}
	pos = 1;
	var bit = 8;
	while (bit >= 0) {
		var ch = 0x2D;
		if ((mode & (1 << bit)) != 0) {
			var r = bit % 3;
			if (r == 2) {
				ch = 0x72;
			} else if (r == 1) {
				ch = 0x77;
			} else {
				ch = 0x78;
			}
		}
		store8(out + pos, ch);
		pos = pos + 1;
		bit = bit - 1;
	}
	store8(out + pos, 0);
	return pos;
}
func print_stat(statbuf, out) {
	var size = load64(statbuf + 48);
	var blocks = (size + 511) / 512;
	var inode = load64(statbuf + 8);
	var links = load64(statbuf + 24);
	store64(out, inode);
	store64(out + 8, blocks);
	store64(out + 16, links);
	write_bytes(out, 24);
	return blocks;
}
func cached_umask(cachep) {
	var v = load64(cachep);
	if (v == 0 - 1) {
		v = get_umask(0);
		store64(cachep, v);
	}
	return v & 0x1FF;
}
func dev_ino_compare(a, b) {
	var da = load64(a);
	var db = load64(b);
	if (da != db) {
		if (da <u db) {
			return 0 - 1;
		}
		return 1;
	}
	var ia = load64(a + 8);
	var ib = load64(b + 8);
	if (ia <u ib) {
		return 0 - 1;
	}
	if (ia == ib) {
		return 0;
	}
	return 1;
}`

const pkgLn = `
func create_hard_link(src, dst, force, verbose) {
	if (force != 0) {
		var removed = unlink_path(dst);
		if (removed < 0) {
			log_event(0x55);
			return 0 - 1;
		}
	}
	var r = do_link(src, dst);
	if (r != 0) {
		log_event(0x4C);
		return 0 - 2;
	}
	if (verbose != 0) {
		write_bytes(dst, 1);
	}
	return 0;
}
func target_directory_operand(path, len, statp) {
	var isdir = stat_path(path, statp);
	if (isdir < 0) {
		return 0 - 1;
	}
	var mode = load64(statp + 16);
	if ((mode & 0x4000) != 0) {
		return 1;
	}
	return 0;
}`

const pkgSort = `
func compare_nodes(a, b) {
	var ka = load64(a + 16);
	var kb = load64(b + 16);
	if (ka < kb) {
		return 0 - 1;
	}
	if (ka > kb) {
		return 1;
	}
	var sa = load64(a + 24);
	var sb = load64(b + 24);
	if (sa < sb) {
		return 0 - 1;
	}
	if (sa > sb) {
		return 1;
	}
	return 0;
}
func insertion_sort64(arr, n) {
	var i = 1;
	while (i < n) {
		var key = load64(arr + i * 8);
		var j = i - 1;
		while (j >= 0 && load64(arr + j * 8) > key) {
			store64(arr + (j + 1) * 8, load64(arr + j * 8));
			j = j - 1;
		}
		store64(arr + (j + 1) * 8, key);
		i = i + 1;
	}
	return n;
}
func median_of_three(arr, lo, hi) {
	var mid = lo + (hi - lo) / 2;
	var a = load64(arr + lo * 8);
	var b = load64(arr + mid * 8);
	var c = load64(arr + hi * 8);
	if (a > b) {
		var t = a;
		a = b;
		b = t;
	}
	if (b > c) {
		b = c;
	}
	if (a > b) {
		b = a;
	}
	return b;
}`

const pkgOd = `
func format_hex_line(buf, len, off, out) {
	var pos = 0;
	var v = off;
	var k = 0;
	while (k < 6) {
		var digit = (v >>u (20 - k * 4)) & 0xF;
		if (digit < 10) {
			store8(out + pos, 0x30 + digit);
		} else {
			store8(out + pos, 0x61 + digit - 10);
		}
		pos = pos + 1;
		k = k + 1;
	}
	var i = 0;
	while (i < len && i < 16) {
		var b = load8(buf + off + i);
		store8(out + pos, 0x20);
		var hi = b >>u 4;
		var lo = b & 0xF;
		if (hi < 10) {
			store8(out + pos + 1, 0x30 + hi);
		} else {
			store8(out + pos + 1, 0x61 + hi - 10);
		}
		if (lo < 10) {
			store8(out + pos + 2, 0x30 + lo);
		} else {
			store8(out + pos + 2, 0x61 + lo - 10);
		}
		pos = pos + 3;
		i = i + 1;
	}
	store8(out + pos, 0x0A);
	return pos + 1;
}
func i_write(fd, buf, n) {
	var done = 0;
	while (done < n) {
		var chunk = n - done;
		if (chunk > 4096) {
			chunk = 4096;
		}
		var w = sys_write(fd, buf + done, chunk);
		if (w <= 0) {
			return 0 - 1;
		}
		done = done + w;
	}
	return done;
}`

const pkgCksum = `
func crc_update(crc, buf, len) {
	var i = 0;
	while (i < len) {
		crc = crc ^ (load8(buf + i) << 56);
		var k = 0;
		while (k < 8) {
			if ((crc & 0x8000000000000000) != 0) {
				crc = (crc << 1) ^ 0x42F0E1EBA9EA3693;
			} else {
				crc = crc << 1;
			}
			k = k + 1;
		}
		i = i + 1;
	}
	return crc;
}
func bsd_sum(buf, len) {
	var checksum = 0;
	var i = 0;
	while (i < len) {
		checksum = (checksum >>u 1) + ((checksum & 1) << 15);
		checksum = checksum + load8(buf + i);
		checksum = checksum & 0xFFFF;
		i = i + 1;
	}
	return checksum;
}`

const pkgExpr = `
func eval_add_chain(vals, ops, n) {
	var acc = load64(vals);
	var i = 1;
	while (i < n) {
		var op = load8(ops + i - 1);
		var v = load64(vals + i * 8);
		if (op == 0x2B) {
			acc = acc + v;
		} else if (op == 0x2D) {
			acc = acc - v;
		} else if (op == 0x2A) {
			acc = acc * v;
		} else {
			if (v == 0) {
				return 0 - 1;
			}
			acc = acc / v;
		}
		i = i + 1;
	}
	return acc;
}
func str_index(s, slen, set, setlen) {
	var i = 0;
	while (i < slen) {
		var c = load8(s + i);
		var k = 0;
		while (k < setlen) {
			if (load8(set + k) == c) {
				return i + 1;
			}
			k = k + 1;
		}
		i = i + 1;
	}
	return 0;
}`

const pkgTr = `
func build_translate_table(from, to, n, tbl) {
	var i = 0;
	while (i < 256) {
		store8(tbl + i, i);
		i = i + 1;
	}
	i = 0;
	while (i < n) {
		store8(tbl + load8(from + i), load8(to + i));
		i = i + 1;
	}
	return tbl;
}
func translate_buffer(buf, len, tbl) {
	var i = 0;
	while (i < len) {
		store8(buf + i, load8(tbl + load8(buf + i)));
		i = i + 1;
	}
	return len;
}
func squeeze_repeats(buf, len, ch) {
	var out = 0;
	var i = 0;
	var prev = 0 - 1;
	while (i < len) {
		var c = load8(buf + i);
		if (c != ch || c != prev) {
			store8(buf + out, c);
			out = out + 1;
		}
		prev = c;
		i = i + 1;
	}
	return out;
}`

const pkgDu = `
func hash_ins(table, mask, dev, ino) {
	var h = (dev * 0x9E3779B97F4A7C15) ^ ino;
	h = h >>u 32;
	var idx = h & mask;
	var probes = 0;
	while (probes <= mask) {
		var slot = table + idx * 16;
		var d = load64(slot);
		if (d == 0) {
			store64(slot, dev);
			store64(slot + 8, ino);
			return 1;
		}
		if (d == dev && load64(slot + 8) == ino) {
			return 0;
		}
		idx = (idx + 1) & mask;
		probes = probes + 1;
	}
	return 0 - 1;
}
func human_readable(n, out) {
	var unit = 0;
	while (n >= 10240 && unit < 6) {
		n = n / 1024;
		unit = unit + 1;
	}
	store64(out, n);
	store8(out + 8, unit);
	return n;
}`

const pkgWgetFtp = `
func ftp_syst(csock, buf, buflen) {
	var req = buf;
	store8(req, 0x53);
	store8(req + 1, 0x59);
	store8(req + 2, 0x53);
	store8(req + 3, 0x54);
	store8(req + 4, 0x0D);
	store8(req + 5, 0x0A);
	var sent = sys_write(csock, req, 6);
	if (sent != 6) {
		return 0 - 1;
	}
	var got = sys_read(csock, buf, buflen);
	if (got < 3) {
		return 0 - 2;
	}
	var code = (load8(buf) - 0x30) * 100 + (load8(buf + 1) - 0x30) * 10 + (load8(buf + 2) - 0x30);
	if (code != 215) {
		return 0 - 3;
	}
	var i = 3;
	while (i < got && load8(buf + i) == 0x20) {
		i = i + 1;
	}
	if (i + 4 <= got && load8(buf + i) == 0x55 && load8(buf + i + 1) == 0x4E) {
		return 1;
	}
	if (i + 3 <= got && load8(buf + i) == 0x56 && load8(buf + i + 1) == 0x4D) {
		return 2;
	}
	return 0;
}
func ftp_expected_bytes(resp, len) {
	var i = 0;
	var bytes = 0;
	while (i + 1 < len) {
		if (load8(resp + i) == 0x28) {
			var k = i + 1;
			while (k < len) {
				var c = load8(resp + k);
				if (c < 0x30 || c > 0x39) {
					break;
				}
				bytes = bytes * 10 + (c - 0x30);
				k = k + 1;
			}
			return bytes;
		}
		i = i + 1;
	}
	return 0;
}`

const pkgFfmpegRv34 = `
func ff_rv34_decode_init_thread_copy(dst, src) {
	var i = 0;
	while (i < 6) {
		store64(dst + i * 8, load64(src + i * 8));
		i = i + 1;
	}
	var w = load64(src);
	var h = load64(src + 8);
	var mb = ((w + 15) >> 4) * ((h + 15) >> 4);
	var tbl = av_malloc(mb * 8);
	if (tbl == 0) {
		return 0 - 12;
	}
	store64(dst + 24, tbl);
	var k = 0;
	while (k < mb) {
		store64(tbl + k * 8, load64(load64(src + 24) + k * 8));
		k = k + 1;
	}
	store64(dst + 48, 1);
	return 0;
}
func rv34_gen_vlc(table, n, out) {
	var i = 0;
	var code = 0;
	while (i < n) {
		var bits = load8(table + i);
		code = (code + 1) << (bits & 0x1F);
		store32(out + i * 4, code | (bits << 24));
		i = i + 1;
	}
	return code;
}`

const pkgBashSubst = `
func sub_append_string(base, baselen, add, addlen, cap) {
	if (baselen + addlen + 1 >u cap) {
		var newcap = cap * 2;
		while (newcap <u baselen + addlen + 1) {
			newcap = newcap * 2;
		}
		base = xrealloc(base, newcap);
	}
	var i = 0;
	while (i < addlen) {
		store8(base + baselen + i, load8(add + i));
		i = i + 1;
	}
	store8(base + baselen + addlen, 0);
	return base;
}
func skip_single_quoted(s, len, from) {
	var i = from;
	while (i < len && load8(s + i) != 0x27) {
		i = i + 1;
	}
	if (i < len) {
		return i + 1;
	}
	return i;
}
func de_backslash(s, len) {
	var out = 0;
	var i = 0;
	while (i < len) {
		var c = load8(s + i);
		if (c == 0x5C && i + 1 < len) {
			i = i + 1;
			c = load8(s + i);
		}
		store8(s + out, c);
		out = out + 1;
		i = i + 1;
	}
	store8(s + out, 0);
	return out;
}`

const pkgOpensslBuf = `
func buf_mem_grow(lenp, datap, newlen) {
	var len = load64(lenp);
	if (newlen <= len) {
		store64(lenp, newlen);
		return newlen;
	}
	var grown = xrealloc(load64(datap), newlen + 3 & ~3);
	if (grown == 0) {
		return 0;
	}
	store64(datap, grown);
	var i = len;
	while (i < newlen) {
		store8(grown + i, 0);
		i = i + 1;
	}
	store64(lenp, newlen);
	return newlen;
}
func ssl3_read_n(bufp, have, want, max) {
	if (want >u max) {
		return 0 - 1;
	}
	var need = want - have;
	var got = 0;
	while (got < need) {
		var r = sys_read(0, load64(bufp) + have + got, need - got);
		if (r <= 0) {
			return 0 - 2;
		}
		got = got + r;
	}
	return have + got;
}`

const pkgQemuChardev = `
func qemu_chr_write(chr, buf, len) {
	var offset = 0;
	while (offset < len) {
		var avail = load64(chr + 16) - load64(chr + 8);
		if (avail <= 0) {
			chr_flush(chr);
			avail = load64(chr + 16);
			store64(chr + 8, 0);
		}
		var chunk = len - offset;
		if (chunk > avail) {
			chunk = avail;
		}
		var wpos = load64(chr) + load64(chr + 8);
		var i = 0;
		while (i < chunk) {
			store8(wpos + i, load8(buf + offset + i));
			i = i + 1;
		}
		store64(chr + 8, load64(chr + 8) + chunk);
		offset = offset + chunk;
	}
	return len;
}
func ringbuf_put(rb, cap, val) {
	var head = load64(rb + 8);
	store8(load64(rb) + (head & (cap - 1)), val);
	store64(rb + 8, head + 1);
	var tail = load64(rb + 16);
	if (head + 1 - tail >u cap) {
		store64(rb + 16, head + 1 - cap);
	}
	return head + 1;
}`

const pkgNtpRefclock = `
func refclock_process_offset(peer, sample, leap) {
	var n = load64(peer + 8);
	var idx = n % 64;
	store64(load64(peer) + idx * 8, sample);
	store64(peer + 8, n + 1);
	if (leap != 0) {
		store64(peer + 16, leap);
	}
	return n + 1;
}
func clocktime(yday, hour, minute, second, tzoff) {
	var secs = (yday - 1) * 86400;
	secs = secs + hour * 3600;
	secs = secs + minute * 60;
	secs = secs + second;
	return secs - tzoff;
}
func median_filter(samples, n) {
	var best = load64(samples);
	var besterr = best;
	if (besterr < 0) {
		besterr = 0 - besterr;
	}
	var i = 1;
	while (i < n) {
		var v = load64(samples + i * 8);
		var e = v;
		if (e < 0) {
			e = 0 - e;
		}
		if (e < besterr) {
			best = v;
			besterr = e;
		}
		i = i + 1;
	}
	return best;
}`
