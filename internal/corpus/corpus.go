// Package corpus builds the experiment test-bed of the paper's §5.2–5.3:
// eight real-world-shaped vulnerable procedures (with patched variants)
// and a library of Coreutils-like decoy packages, each compiled by every
// simulated toolchain into the binary target database. Ground truth for
// evaluation travels in each procedure's asm.Provenance.
package corpus

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/minic"
)

// BuildConfig selects what goes into the test-bed.
type BuildConfig struct {
	// Toolchains to compile with; nil selects all seven.
	Toolchains []compile.Toolchain
	// Opt is the optimization level; the zero value selects -O2, the
	// paper's default.
	Opt compile.Options
	// IncludePatched adds the patched variant of every vulnerable
	// procedure (the paper's openssl-1.0.1g etc.).
	IncludePatched bool
	// SynthVariants adds n generated decoy packages to grow the corpus
	// toward the paper's 1500-procedure scale.
	SynthVariants int
}

// Build compiles the test-bed and returns all target procedures.
func Build(cfg BuildConfig) ([]*asm.Proc, error) {
	if cfg.Toolchains == nil {
		cfg.Toolchains = compile.Toolchains()
	}
	if cfg.Opt.OptLevel == 0 {
		cfg.Opt = compile.O2()
	}
	var out []*asm.Proc

	addProgram := func(pkg, src string, patched bool) error {
		prog, err := minic.Parse(src)
		if err != nil {
			return fmt.Errorf("corpus: parse %s: %w", pkg, err)
		}
		for _, tc := range cfg.Toolchains {
			procs, err := compile.CompileAll(prog, tc, cfg.Opt)
			if err != nil {
				return fmt.Errorf("corpus: compile %s with %s: %w", pkg, tc.Name(), err)
			}
			for _, p := range procs {
				p.Source = asm.Provenance{
					Package:   pkg,
					SourceSym: p.Name,
					Toolchain: tc.Name(),
					OptLevel:  fmt.Sprintf("-O%d", cfg.Opt.OptLevel),
					Patched:   patched,
				}
				p.Name = p.Source.Key()
				out = append(out, p)
			}
		}
		return nil
	}

	for _, v := range Vulns() {
		if err := addProgram(v.Package, v.Src, false); err != nil {
			return nil, err
		}
		if cfg.IncludePatched {
			if err := addProgram(v.Package, v.Patched, true); err != nil {
				return nil, err
			}
		}
	}
	for _, d := range Decoys() {
		if err := addProgram(d.Name, d.Src, false); err != nil {
			return nil, err
		}
	}
	for _, d := range GeneratedVariants(cfg.SynthVariants) {
		if err := addProgram(d.Name, d.Src, false); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Find returns the first procedure matching the given source symbol,
// toolchain name and patch state, or nil.
func Find(procs []*asm.Proc, sym, toolchain string, patched bool) *asm.Proc {
	for _, p := range procs {
		if p.Source.SourceSym == sym && p.Source.Toolchain == toolchain && p.Source.Patched == patched {
			return p
		}
	}
	return nil
}

// CompileVuln compiles one vulnerable (or patched) procedure with one
// toolchain and returns only the named CVE procedure (helpers excluded).
// It is the convenience used to produce experiment queries.
func CompileVuln(v Vuln, tc compile.Toolchain, patched bool) (*asm.Proc, error) {
	src := v.Src
	if patched {
		src = v.Patched
	}
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("corpus: parse %s: %w", v.Alias, err)
	}
	p, err := compile.Compile(prog, v.FuncName, tc, compile.O2())
	if err != nil {
		return nil, err
	}
	p.Source = asm.Provenance{
		Package:   v.Package,
		SourceSym: v.FuncName,
		Toolchain: tc.Name(),
		OptLevel:  "-O2",
		Patched:   patched,
	}
	p.Name = p.Source.Key()
	return p, nil
}
