// Package minic defines MiniC, the small C-like source language the
// simulated toolchains compile. It stands in for the C sources of the
// paper's corpus (OpenSSL, bash, qemu, Coreutils, ...): the corpus
// package writes vulnerable procedures and decoys in MiniC, and package
// compile turns them into syntactically diverse assembly under seven
// simulated compiler toolchains.
//
// MiniC has a single value type — the 64-bit signed integer, which also
// serves as a byte pointer — C-like expressions and control flow, and
// builtin memory accessors (load8/16/32/64, sext8/16/32, store8/16/32/64).
// The package provides a lexer, parser, scope/arity checker and a
// reference interpreter used to differentially test the compilers.
package minic

import "fmt"

// Program is a parsed compilation unit.
type Program struct {
	Funcs []*Func
}

// Func is a function definition.
type Func struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ isStmt() }

// VarDecl declares and initializes a local variable.
type VarDecl struct {
	Name string
	Init Expr
	Line int
}

// AssignStmt assigns to a local variable.
type AssignStmt struct {
	Name string
	Val  Expr
	Line int
}

// StoreStmt writes Width bytes of Val at address Addr.
type StoreStmt struct {
	Width int // 1, 2, 4, 8
	Addr  Expr
	Val   Expr
	Line  int
}

// IfStmt is if/else; Else may be nil.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ReturnStmt returns a value.
type ReturnStmt struct {
	Val  Expr
	Line int
}

// ExprStmt evaluates an expression for its effect (a call).
type ExprStmt struct {
	X    Expr
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Line int }

func (*VarDecl) isStmt()      {}
func (*AssignStmt) isStmt()   {}
func (*StoreStmt) isStmt()    {}
func (*IfStmt) isStmt()       {}
func (*WhileStmt) isStmt()    {}
func (*ReturnStmt) isStmt()   {}
func (*ExprStmt) isStmt()     {}
func (*BreakStmt) isStmt()    {}
func (*ContinueStmt) isStmt() {}

// Expr is an expression node.
type Expr interface{ isExpr() }

// NumLit is an integer literal.
type NumLit struct{ Val int64 }

// Ident references a local variable or parameter.
type Ident struct{ Name string }

// BinOp is the operator of a Binary expression.
type BinOp int

// Binary operators with C semantics (>> is arithmetic on the signed
// 64-bit value; comparisons yield 0/1; && and || short-circuit).
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpShrU // logical (unsigned) right shift
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpLAnd
	OpLOr
	// Unsigned comparisons (MiniC spells them <u, <=u, >u, >=u), needed
	// for the bounds checks that dominate the vulnerable procedures.
	OpULt
	OpULe
	OpUGt
	OpUGe
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>", OpShrU: ">>u",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=",
	OpLAnd: "&&", OpLOr: "||",
	OpULt: "<u", OpULe: "<=u", OpUGt: ">u", OpUGe: ">=u",
}

func (o BinOp) String() string { return binOpNames[o] }

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	X, Y Expr
}

// UnOp is the operator of a Unary expression.
type UnOp int

// Unary operators.
const (
	OpNeg  UnOp = iota // -x
	OpNot              // ~x
	OpLNot             // !x
)

// Unary applies a unary operator.
type Unary struct {
	Op UnOp
	X  Expr
}

// Load reads Width bytes at Addr, zero-extended (wrap in Sext for a
// signed load).
type Load struct {
	Width int
	Addr  Expr
}

// Sext sign-extends the low Width bytes of X.
type Sext struct {
	Width int
	X     Expr
}

// Call invokes a function (MiniC-defined or external).
type Call struct {
	Name string
	Args []Expr
}

func (*NumLit) isExpr() {}
func (*Ident) isExpr()  {}
func (*Binary) isExpr() {}
func (*Unary) isExpr()  {}
func (*Load) isExpr()   {}
func (*Sext) isExpr()   {}
func (*Call) isExpr()   {}

// Lookup returns the function with the given name.
func (p *Program) Lookup(name string) (*Func, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// Check validates scopes and call arities for every function in the
// program. Calls to names not defined in the program are assumed
// external and accepted with any arity.
func (p *Program) Check() error {
	for _, f := range p.Funcs {
		scope := map[string]bool{}
		for _, param := range f.Params {
			if scope[param] {
				return fmt.Errorf("%s: duplicate parameter %q", f.Name, param)
			}
			scope[param] = true
		}
		if err := checkStmts(p, f, f.Body, scope, 0); err != nil {
			return err
		}
	}
	return nil
}

func checkStmts(p *Program, f *Func, stmts []Stmt, scope map[string]bool, loopDepth int) error {
	for _, s := range stmts {
		switch t := s.(type) {
		case *VarDecl:
			if scope[t.Name] {
				return fmt.Errorf("%s:%d: redeclared variable %q", f.Name, t.Line, t.Name)
			}
			if err := checkExpr(p, f, t.Init, scope, t.Line); err != nil {
				return err
			}
			scope[t.Name] = true
		case *AssignStmt:
			if !scope[t.Name] {
				return fmt.Errorf("%s:%d: assignment to undeclared %q", f.Name, t.Line, t.Name)
			}
			if err := checkExpr(p, f, t.Val, scope, t.Line); err != nil {
				return err
			}
		case *StoreStmt:
			if err := checkExpr(p, f, t.Addr, scope, t.Line); err != nil {
				return err
			}
			if err := checkExpr(p, f, t.Val, scope, t.Line); err != nil {
				return err
			}
		case *IfStmt:
			if err := checkExpr(p, f, t.Cond, scope, t.Line); err != nil {
				return err
			}
			if err := checkStmts(p, f, t.Then, copyScope(scope), loopDepth); err != nil {
				return err
			}
			if err := checkStmts(p, f, t.Else, copyScope(scope), loopDepth); err != nil {
				return err
			}
		case *WhileStmt:
			if err := checkExpr(p, f, t.Cond, scope, t.Line); err != nil {
				return err
			}
			if err := checkStmts(p, f, t.Body, copyScope(scope), loopDepth+1); err != nil {
				return err
			}
		case *ReturnStmt:
			if err := checkExpr(p, f, t.Val, scope, t.Line); err != nil {
				return err
			}
		case *ExprStmt:
			if err := checkExpr(p, f, t.X, scope, t.Line); err != nil {
				return err
			}
		case *BreakStmt:
			if loopDepth == 0 {
				return fmt.Errorf("%s:%d: break outside loop", f.Name, t.Line)
			}
		case *ContinueStmt:
			if loopDepth == 0 {
				return fmt.Errorf("%s:%d: continue outside loop", f.Name, t.Line)
			}
		}
	}
	return nil
}

func copyScope(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func checkExpr(p *Program, f *Func, e Expr, scope map[string]bool, line int) error {
	switch t := e.(type) {
	case *NumLit:
	case *Ident:
		if !scope[t.Name] {
			return fmt.Errorf("%s:%d: undeclared variable %q", f.Name, line, t.Name)
		}
	case *Binary:
		if err := checkExpr(p, f, t.X, scope, line); err != nil {
			return err
		}
		return checkExpr(p, f, t.Y, scope, line)
	case *Unary:
		return checkExpr(p, f, t.X, scope, line)
	case *Load:
		return checkExpr(p, f, t.Addr, scope, line)
	case *Sext:
		return checkExpr(p, f, t.X, scope, line)
	case *Call:
		if callee, ok := p.Lookup(t.Name); ok && len(callee.Params) != len(t.Args) {
			return fmt.Errorf("%s:%d: call %s with %d args, want %d",
				f.Name, line, t.Name, len(t.Args), len(callee.Params))
		}
		if len(t.Args) > 6 {
			return fmt.Errorf("%s:%d: call %s with %d args; the ABI passes at most 6",
				f.Name, line, t.Name, len(t.Args))
		}
		for _, a := range t.Args {
			if err := checkExpr(p, f, a, scope, line); err != nil {
				return err
			}
		}
	}
	return nil
}
