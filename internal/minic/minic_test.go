package minic

import (
	"strings"
	"testing"
)

func run(t *testing.T, src, fn string, args ...int64) int64 {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ip := NewInterp(prog)
	got, err := ip.Call(fn, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return got
}

func TestParseAndRunBasics(t *testing.T) {
	src := `
// doubles and adds
func f(x, y) {
	var a = x * 2;
	var b = a + y;
	return b;
}`
	if got := run(t, src, "f", 10, 3); got != 23 {
		t.Errorf("f(10,3) = %d, want 23", got)
	}
}

func TestPrecedence(t *testing.T) {
	tests := []struct {
		expr string
		want int64
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"1 << 4 | 1", 17},
		{"10 - 2 - 3", 5}, // left associative
		{"7 & 3 ^ 1", 2},
		{"1 + 2 == 3", 1},
		{"4 / 2 / 2", 1},
		{"-3 + 1", -2},
		{"~0", -1},
		{"!5", 0},
		{"!0", 1},
		{"100 % 7", 2},
		{"-1 >> 8", -1},    // arithmetic shift
		{"0 - 8 >> 1", -4}, // binds (0-8) >> 1
		{"1 < 2 && 3 > 2", 1},
		{"1 > 2 || 0", 0},
	}
	for _, tt := range tests {
		src := "func f() { return " + tt.expr + "; }"
		if got := run(t, src, "f"); got != tt.want {
			t.Errorf("%s = %d, want %d", tt.expr, got, tt.want)
		}
	}
}

func TestUnsignedComparisons(t *testing.T) {
	src := `func f(a, b) { return a <u b; }`
	if got := run(t, src, "f", -1, 1); got != 0 {
		t.Error("-1 <u 1 should be 0 (unsigned)")
	}
	if got := run(t, src, "f", 1, -1); got != 1 {
		t.Error("1 <u -1 should be 1 (unsigned)")
	}
}

func TestControlFlow(t *testing.T) {
	src := `
func sum_to(n) {
	var s = 0;
	var i = 1;
	while (i <= n) {
		s = s + i;
		i = i + 1;
	}
	return s;
}
func classify(x) {
	if (x < 0) {
		return 0 - 1;
	} else if (x == 0) {
		return 0;
	} else {
		return 1;
	}
}
func breaker(n) {
	var i = 0;
	while (1) {
		if (i >= n) { break; }
		i = i + 1;
	}
	return i;
}`
	if got := run(t, src, "sum_to", 10); got != 55 {
		t.Errorf("sum_to(10) = %d", got)
	}
	for _, tc := range []struct{ in, want int64 }{{-5, -1}, {0, 0}, {7, 1}} {
		if got := run(t, src, "classify", tc.in); got != tc.want {
			t.Errorf("classify(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := run(t, src, "breaker", 4); got != 4 {
		t.Errorf("breaker(4) = %d", got)
	}
}

func TestMemoryBuiltins(t *testing.T) {
	src := `
func fill(buf, n, v) {
	var i = 0;
	while (i < n) {
		store8(buf + i, v);
		i = i + 1;
	}
	return 0;
}
func sum8(buf, n) {
	var s = 0;
	var i = 0;
	while (i < n) {
		s = s + load8(buf + i);
		i = i + 1;
	}
	return s;
}
func wide(buf) {
	store64(buf, 0x1122334455667788);
	return load32(buf + 4);
}`
	prog := MustParse(src)
	ip := NewInterp(prog)
	if _, err := ip.Call("fill", 0x1000, 10, 7); err != nil {
		t.Fatal(err)
	}
	got, err := ip.Call("sum8", 0x1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 70 {
		t.Errorf("sum8 = %d, want 70", got)
	}
	got, _ = ip.Call("wide", 0x2000)
	if got != 0x11223344 {
		t.Errorf("wide = %#x", got)
	}
}

func TestSext(t *testing.T) {
	src := `func f(x) { return sext8(x); }`
	if got := run(t, src, "f", 0x80); got != -128 {
		t.Errorf("sext8(0x80) = %d, want -128", got)
	}
	if got := run(t, src, "f", 0x7F); got != 127 {
		t.Errorf("sext8(0x7F) = %d", got)
	}
}

func TestCallsAndExterns(t *testing.T) {
	src := `
func helper(x) { return x * 3; }
func main(a) { return helper(a) + ext_fn(a, 2); }`
	prog := MustParse(src)
	ip := NewInterp(prog)
	ip.Externs["ext_fn"] = func(ip *Interp, args []int64) int64 { return args[0] * args[1] }
	got, err := ip.Call("main", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 25 {
		t.Errorf("main(5) = %d, want 25", got)
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right of && must not run when left is 0.
	src := `func f(a, b) { return a != 0 && 10 / a > b; }`
	if got := run(t, src, "f", 0, 1); got != 0 {
		t.Errorf("short-circuit failed: %d", got)
	}
	if got := run(t, src, "f", 2, 4); got != 1 {
		t.Errorf("f(2,4) = %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"func f( { }",                                         // broken params
		"func f() { return 1 }",                               // missing semicolon
		"func f() { x = 1; }",                                 // undeclared assign
		"func f() { return y; }",                              // undeclared use
		"func f(a, a) { return a; }",                          // duplicate param
		"func f() { var a = 1; var a = 2; return a; }",        // redeclared
		"func f() { break; }",                                 // break outside loop
		"func f() { return g(1,2); } func g(x) { return x; }", // arity
		"func f() { return store8(1, 2); }",                   // store as expression
		"func f() { return load8(1, 2); }",                    // load arity
		"func f() { return 1; } func f() { return 2; }",       // duplicate func
		"func f() { return h(1,2,3,4,5,6,7); }",               // >6 args
		"func f() { @ }",                                      // lex error
		"func f() {",                                          // unterminated
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestDivByZeroRuntime(t *testing.T) {
	prog := MustParse("func f(a) { return 10 / a; }")
	ip := NewInterp(prog)
	if _, err := ip.Call("f", 0); err == nil {
		t.Error("division by zero not reported")
	}
}

func TestStepLimit(t *testing.T) {
	prog := MustParse("func f() { while (1) { } return 0; }")
	ip := NewInterp(prog)
	ip.SetMaxSteps(1000)
	if _, err := ip.Call("f"); err != ErrSteps {
		t.Errorf("err = %v, want ErrSteps", err)
	}
}

func TestFallOffEndReturnsZero(t *testing.T) {
	prog := MustParse("func f() { var a = 5; a = a + 1; }")
	ip := NewInterp(prog)
	got, err := ip.Call("f")
	if err != nil || got != 0 {
		t.Errorf("fall-off return = %d, %v", got, err)
	}
}

func TestCheckReportsPosition(t *testing.T) {
	_, err := Parse("func f() {\n\tvar a = 1;\n\tb = 2;\n\treturn a;\n}")
	if err == nil || !strings.Contains(err.Error(), "f:3") {
		t.Errorf("error lacks position: %v", err)
	}
}
