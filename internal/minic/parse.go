package minic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// token kinds
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNum
	tPunct // operators and punctuation
	tKw    // keyword
)

var keywords = map[string]bool{
	"func": true, "var": true, "if": true, "else": true, "while": true,
	"return": true, "break": true, "continue": true,
}

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// multi-char operators, longest first.
var punts = []string{
	">>u", "<<", ">>", "<=u", ">=u", "<u", ">u", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", ",", ";",
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
				l.pos++
			}
			text := l.src[start:l.pos]
			kind := tIdent
			if keywords[text] {
				kind = tKw
			}
			l.toks = append(l.toks, token{kind, text, l.line})
		case unicode.IsDigit(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tNum, l.src[start:l.pos], l.line})
		default:
			matched := false
			for _, p := range punts {
				if strings.HasPrefix(l.src[l.pos:], p) {
					// "<u" must not eat the u of an identifier boundary:
					// operators ending in 'u' require a non-ident follow
					// or end of input... they are only generated before
					// spaces/identifiers in practice; accept as-is.
					l.toks = append(l.toks, token{tPunct, p, l.line})
					l.pos += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("line %d: unexpected character %q", l.line, c)
			}
		}
	}
	l.toks = append(l.toks, token{tEOF, "", l.line})
	return l.toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a MiniC compilation unit and checks it.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tEOF, "") {
		f, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.Lookup(f.Name); dup {
			return nil, fmt.Errorf("duplicate function %q", f.Name)
		}
		prog.Funcs = append(prog.Funcs, f)
	}
	if err := prog.Check(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses src and panics on error (for tests and the corpus,
// whose sources are compiled into the binary).
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) take() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.peek()
	if t.kind != kind || (text != "" && t.text != text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, fmt.Errorf("line %d: expected %q, found %q", t.line, want, t.text)
	}
	return p.take(), nil
}

func (p *parser) parseFunc() (*Func, error) {
	kw, err := p.expect(tKw, "func")
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	f := &Func{Name: name.text, Line: kw.line}
	for !p.at(tPunct, ")") {
		param, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, param.text)
		if p.at(tPunct, ",") {
			p.take()
		}
	}
	p.take() // ')'
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(tPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(tPunct, "}") {
		if p.at(tEOF, "") {
			return nil, fmt.Errorf("line %d: unterminated block", p.peek().line)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.take() // '}'
	return stmts, nil
}

var storeWidths = map[string]int{"store8": 1, "store16": 2, "store32": 4, "store64": 8}
var loadWidths = map[string]int{"load8": 1, "load16": 2, "load32": 4, "load64": 8}
var sextWidths = map[string]int{"sext8": 1, "sext16": 2, "sext32": 4}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.kind == tKw && t.text == "var":
		p.take()
		name, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, "="); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &VarDecl{Name: name.text, Init: init, Line: t.line}, nil

	case t.kind == tKw && t.text == "if":
		p.take()
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.at(tKw, "else") {
			p.take()
			if p.at(tKw, "if") {
				nested, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{nested}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: t.line}, nil

	case t.kind == tKw && t.text == "while":
		p.take()
		if _, err := p.expect(tPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.line}, nil

	case t.kind == tKw && t.text == "return":
		p.take()
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Val: val, Line: t.line}, nil

	case t.kind == tKw && t.text == "break":
		p.take()
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil

	case t.kind == tKw && t.text == "continue":
		p.take()
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil

	case t.kind == tIdent:
		// store builtin, assignment, or expression statement (call).
		if w, isStore := storeWidths[t.text]; isStore && p.toks[p.pos+1].text == "(" {
			p.take()
			p.take() // '('
			addr, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, ","); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, ";"); err != nil {
				return nil, err
			}
			return &StoreStmt{Width: w, Addr: addr, Val: val, Line: t.line}, nil
		}
		if p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == "=" {
			p.take()
			p.take() // '='
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, ";"); err != nil {
				return nil, err
			}
			return &AssignStmt{Name: t.text, Val: val, Line: t.line}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Line: t.line}, nil
	}
	return nil, fmt.Errorf("line %d: unexpected %q", t.line, t.text)
}

// Precedence climbing. Levels (low to high):
// || ; && ; | ; ^ ; & ; == != ; < <= > >= <u <=u >u >=u ; << >> ; + - ; * / %
var precedence = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7, "<u": 7, "<=u": 7, ">u": 7, ">=u": 7,
	"<<": 8, ">>": 8, ">>u": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var binOpOf = map[string]BinOp{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpRem,
	"&": OpAnd, "|": OpOr, "^": OpXor, "<<": OpShl, ">>": OpShr,
	">>u": OpShrU, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe, "==": OpEq, "!=": OpNe,
	"&&": OpLAnd, "||": OpLOr,
	"<u": OpULt, "<=u": OpULe, ">u": OpUGt, ">=u": OpUGe,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.take()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: binOpOf[t.text], X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tPunct {
		switch t.text {
		case "-":
			p.take()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: OpNeg, X: x}, nil
		case "~":
			p.take()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: OpNot, X: x}, nil
		case "!":
			p.take()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: OpLNot, X: x}, nil
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.take()
	switch {
	case t.kind == tNum:
		var v uint64
		var err error
		if strings.HasPrefix(t.text, "0x") || strings.HasPrefix(t.text, "0X") {
			v, err = strconv.ParseUint(t.text[2:], 16, 64)
		} else {
			v, err = strconv.ParseUint(t.text, 10, 64)
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: bad number %q", t.line, t.text)
		}
		return &NumLit{Val: int64(v)}, nil

	case t.kind == tPunct && t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.kind == tIdent:
		if !p.at(tPunct, "(") {
			return &Ident{Name: t.text}, nil
		}
		p.take() // '('
		var args []Expr
		for !p.at(tPunct, ")") {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.at(tPunct, ",") {
				p.take()
			}
		}
		p.take() // ')'
		if w, ok := loadWidths[t.text]; ok {
			if len(args) != 1 {
				return nil, fmt.Errorf("line %d: %s takes 1 argument", t.line, t.text)
			}
			return &Load{Width: w, Addr: args[0]}, nil
		}
		if w, ok := sextWidths[t.text]; ok {
			if len(args) != 1 {
				return nil, fmt.Errorf("line %d: %s takes 1 argument", t.line, t.text)
			}
			return &Sext{Width: w, X: args[0]}, nil
		}
		if _, isStore := storeWidths[t.text]; isStore {
			return nil, fmt.Errorf("line %d: %s is a statement, not an expression", t.line, t.text)
		}
		return &Call{Name: t.text, Args: args}, nil
	}
	return nil, fmt.Errorf("line %d: unexpected %q", t.line, t.text)
}
