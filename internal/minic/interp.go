package minic

import (
	"errors"
	"fmt"
)

// Extern is a Go implementation of an external function callable from
// MiniC. It receives the interpreter (for memory access) and the
// argument values.
type Extern func(ip *Interp, args []int64) int64

// Interp is a reference interpreter for MiniC, used to differentially
// test the simulated compilers: compiled code run under the machine
// emulator must agree with the interpreter on return values and memory.
type Interp struct {
	Prog    *Program
	Mem     map[uint64]byte
	Externs map[string]Extern

	steps    int
	maxSteps int
}

// ErrSteps reports a runaway loop.
var ErrSteps = errors.New("minic: step limit exceeded")

// NewInterp returns an interpreter with empty memory and a one-million
// statement budget.
func NewInterp(prog *Program) *Interp {
	return &Interp{
		Prog:     prog,
		Mem:      map[uint64]byte{},
		Externs:  map[string]Extern{},
		maxSteps: 1_000_000,
	}
}

// SetMaxSteps overrides the statement budget.
func (ip *Interp) SetMaxSteps(n int) { ip.maxSteps = n }

// LoadMem reads w bytes little-endian; unwritten memory reads 0.
func (ip *Interp) LoadMem(addr uint64, w int) uint64 {
	var v uint64
	for i := 0; i < w; i++ {
		v |= uint64(ip.Mem[addr+uint64(i)]) << (8 * i)
	}
	return v
}

// StoreMem writes the low w bytes of v little-endian.
func (ip *Interp) StoreMem(addr uint64, w int, v uint64) {
	for i := 0; i < w; i++ {
		ip.Mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
}

// control-flow signals inside statement execution
type ctrl int

const (
	ctrlNext ctrl = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

// Call runs the named function with the given arguments.
func (ip *Interp) Call(name string, args ...int64) (int64, error) {
	if ext, ok := ip.Externs[name]; ok {
		return ext(ip, args), nil
	}
	f, ok := ip.Prog.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("minic: unknown function %q", name)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("minic: %s expects %d args, got %d", name, len(f.Params), len(args))
	}
	env := make(map[string]int64, len(f.Params))
	for i, p := range f.Params {
		env[p] = args[i]
	}
	var ret int64
	c, err := ip.execStmts(f.Body, env, &ret)
	if err != nil {
		return 0, err
	}
	if c == ctrlReturn {
		return ret, nil
	}
	return 0, nil // falling off the end returns 0
}

func (ip *Interp) execStmts(stmts []Stmt, env map[string]int64, ret *int64) (ctrl, error) {
	for _, s := range stmts {
		if ip.steps++; ip.steps > ip.maxSteps {
			return ctrlNext, ErrSteps
		}
		switch t := s.(type) {
		case *VarDecl:
			v, err := ip.eval(t.Init, env)
			if err != nil {
				return ctrlNext, err
			}
			env[t.Name] = v
		case *AssignStmt:
			v, err := ip.eval(t.Val, env)
			if err != nil {
				return ctrlNext, err
			}
			env[t.Name] = v
		case *StoreStmt:
			addr, err := ip.eval(t.Addr, env)
			if err != nil {
				return ctrlNext, err
			}
			val, err := ip.eval(t.Val, env)
			if err != nil {
				return ctrlNext, err
			}
			ip.StoreMem(uint64(addr), t.Width, uint64(val))
		case *IfStmt:
			c, err := ip.eval(t.Cond, env)
			if err != nil {
				return ctrlNext, err
			}
			var sig ctrl
			if c != 0 {
				sig, err = ip.execStmts(t.Then, env, ret)
			} else {
				sig, err = ip.execStmts(t.Else, env, ret)
			}
			if err != nil {
				return ctrlNext, err
			}
			if sig != ctrlNext {
				return sig, nil
			}
		case *WhileStmt:
		loop:
			for {
				if ip.steps++; ip.steps > ip.maxSteps {
					return ctrlNext, ErrSteps
				}
				c, err := ip.eval(t.Cond, env)
				if err != nil {
					return ctrlNext, err
				}
				if c == 0 {
					break
				}
				sig, err := ip.execStmts(t.Body, env, ret)
				if err != nil {
					return ctrlNext, err
				}
				switch sig {
				case ctrlReturn:
					return ctrlReturn, nil
				case ctrlBreak:
					break loop
				}
			}
		case *ReturnStmt:
			v, err := ip.eval(t.Val, env)
			if err != nil {
				return ctrlNext, err
			}
			*ret = v
			return ctrlReturn, nil
		case *ExprStmt:
			if _, err := ip.eval(t.X, env); err != nil {
				return ctrlNext, err
			}
		case *BreakStmt:
			return ctrlBreak, nil
		case *ContinueStmt:
			return ctrlContinue, nil
		}
	}
	return ctrlNext, nil
}

func (ip *Interp) eval(e Expr, env map[string]int64) (int64, error) {
	switch t := e.(type) {
	case *NumLit:
		return t.Val, nil
	case *Ident:
		return env[t.Name], nil
	case *Unary:
		x, err := ip.eval(t.X, env)
		if err != nil {
			return 0, err
		}
		switch t.Op {
		case OpNeg:
			return -x, nil
		case OpNot:
			return ^x, nil
		default: // OpLNot
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *Binary:
		// Short-circuit forms first.
		if t.Op == OpLAnd || t.Op == OpLOr {
			x, err := ip.eval(t.X, env)
			if err != nil {
				return 0, err
			}
			if t.Op == OpLAnd && x == 0 {
				return 0, nil
			}
			if t.Op == OpLOr && x != 0 {
				return 1, nil
			}
			y, err := ip.eval(t.Y, env)
			if err != nil {
				return 0, err
			}
			if y != 0 {
				return 1, nil
			}
			return 0, nil
		}
		x, err := ip.eval(t.X, env)
		if err != nil {
			return 0, err
		}
		y, err := ip.eval(t.Y, env)
		if err != nil {
			return 0, err
		}
		return EvalBinOp(t.Op, x, y)
	case *Load:
		addr, err := ip.eval(t.Addr, env)
		if err != nil {
			return 0, err
		}
		return int64(ip.LoadMem(uint64(addr), t.Width)), nil
	case *Sext:
		x, err := ip.eval(t.X, env)
		if err != nil {
			return 0, err
		}
		sh := 64 - 8*uint(t.Width)
		return int64(uint64(x)<<sh) >> sh, nil
	case *Call:
		args := make([]int64, len(t.Args))
		for i, a := range t.Args {
			v, err := ip.eval(a, env)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return ip.Call(t.Name, args...)
	}
	return 0, fmt.Errorf("minic: cannot evaluate %T", e)
}

// EvalBinOp applies a (non-short-circuit) binary operator with MiniC
// semantics: 64-bit two's complement, arithmetic >>, shift counts masked
// to 6 bits, comparisons yielding 0/1. Division by zero is an error.
func EvalBinOp(op BinOp, x, y int64) (int64, error) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return x + y, nil
	case OpSub:
		return x - y, nil
	case OpMul:
		return x * y, nil
	case OpDiv:
		if y == 0 {
			return 0, errors.New("minic: division by zero")
		}
		if x == -1<<63 && y == -1 {
			return x, nil
		}
		return x / y, nil
	case OpRem:
		if y == 0 {
			return 0, errors.New("minic: remainder by zero")
		}
		if x == -1<<63 && y == -1 {
			return 0, nil
		}
		return x % y, nil
	case OpAnd:
		return x & y, nil
	case OpOr:
		return x | y, nil
	case OpXor:
		return x ^ y, nil
	case OpShl:
		return x << (uint64(y) & 63), nil
	case OpShr:
		return x >> (uint64(y) & 63), nil
	case OpShrU:
		return int64(uint64(x) >> (uint64(y) & 63)), nil
	case OpLt:
		return b2i(x < y), nil
	case OpLe:
		return b2i(x <= y), nil
	case OpGt:
		return b2i(x > y), nil
	case OpGe:
		return b2i(x >= y), nil
	case OpEq:
		return b2i(x == y), nil
	case OpNe:
		return b2i(x != y), nil
	case OpULt:
		return b2i(uint64(x) < uint64(y)), nil
	case OpULe:
		return b2i(uint64(x) <= uint64(y)), nil
	case OpUGt:
		return b2i(uint64(x) > uint64(y)), nil
	case OpUGe:
		return b2i(uint64(x) >= uint64(y)), nil
	}
	return 0, fmt.Errorf("minic: bad operator %v", op)
}
