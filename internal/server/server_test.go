package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/vcp"
)

const gccStyle = `proc checksum_gcc
	xor eax, eax
	mov rcx, rdi
	lea rdx, [rsi+rsi*2]
	shl rdx, 2
	add rdx, 0x20
	imul rcx, rdx
	mov rax, rcx
	shr rax, 7
	xor rax, rcx
	mov r8, rax
	and r8, 0xff
	add rax, r8
	ret
endp`

const iccStyle = `proc checksum_icc
	xor r9d, r9d
	mov r10, rdi
	mov r11, rsi
	imul r11, 3
	imul r11, 4
	add r11, 0x20
	imul r10, r11
	mov rax, r10
	shr rax, 7
	xor rax, r10
	mov rbx, rax
	and rbx, 0xff
	add rax, rbx
	ret
endp`

const unrelated = `proc strlen_like
	xor eax, eax
	mov rdx, rdi
top:
	movzx ecx, byte [rdx]
	test rcx, rcx
	je done
	add rdx, 1
	add rax, 1
	cmp rax, 0x1000
	jb top
done:
	ret
endp`

func testDB(t *testing.T) *core.DB {
	t.Helper()
	db := core.NewDB(core.Options{VCP: vcp.Config{MinVars: 3}})
	for _, src := range []string{iccStyle, unrelated} {
		p, err := asm.ParseProc(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.AddTarget(p); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func quietConfig() Config {
	return Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

// newTestServer starts an httptest server; queryFn (optional) replaces
// the engine query before the listener accepts traffic.
func newTestServer(t *testing.T, db *core.DB, cfg Config, queryFn func(context.Context, *asm.Proc) (*core.Report, error)) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietConfig().Logger
	}
	s := New(db, cfg)
	if queryFn != nil {
		s.queryFn = queryFn
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postQuery(t *testing.T, url string, req QueryRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestQueryEndpoint checks that HTTP results match an in-process Query
// exactly (same ranking, same scores bit for bit).
func TestQueryEndpoint(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, quietConfig(), nil)

	resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle, Method: "esh", Top: 10})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var got QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}

	p, err := asm.ParseProc(gccStyle)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	ranked := want.Rank(stats.Esh)
	if len(got.Results) != len(ranked) {
		t.Fatalf("results %d, want %d", len(got.Results), len(ranked))
	}
	for i, r := range got.Results {
		w := ranked[i]
		if r.Target != w.Target.Name || r.GES != w.GES || r.SLOG != w.SLOG || r.SVCP != w.SVCP {
			t.Fatalf("rank %d: got (%s %v %v %v), want (%s %v %v %v)",
				i, r.Target, r.GES, r.SLOG, r.SVCP, w.Target.Name, w.GES, w.SLOG, w.SVCP)
		}
	}
	if got.Results[0].Target != "checksum_icc" {
		t.Fatalf("top result %s, want checksum_icc", got.Results[0].Target)
	}
}

func TestQueryBadInput(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)
	for _, tc := range []struct {
		req  QueryRequest
		want int
	}{
		{QueryRequest{Asm: "this is not assembler"}, http.StatusBadRequest},
		{QueryRequest{Asm: ""}, http.StatusBadRequest},
		{QueryRequest{Asm: gccStyle, Method: "bogus"}, http.StatusBadRequest},
	} {
		resp := postQuery(t, ts.URL, tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%+v: status %d, want %d", tc.req, resp.StatusCode, tc.want)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if strings.TrimSpace(string(b)) != "ok" {
		t.Fatalf("body %q", b)
	}
}

func TestTargetsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)
	resp, err := http.Get(ts.URL + "/v1/targets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Targets []TargetInfo `json:"targets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Targets) != 2 {
		t.Fatalf("targets %d, want 2", len(got.Targets))
	}
	if got.Targets[0].Name != "checksum_icc" {
		t.Fatalf("first target %s", got.Targets[0].Name)
	}
}

// TestQueryTimeout injects a query that outlives the configured timeout
// and expects 504.
func TestQueryTimeout(t *testing.T) {
	cfg := quietConfig()
	cfg.QueryTimeout = 20 * time.Millisecond
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, testDB(t), cfg, func(_ context.Context, p *asm.Proc) (*core.Report, error) {
		<-release
		return &core.Report{QueryName: p.Name}, nil
	})

	resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

// TestInFlightLimit saturates MaxInFlight with blocked queries and
// expects the next request to be shed with 429.
func TestInFlightLimit(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxInFlight = 2
	cfg.QueryTimeout = 5 * time.Second
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	_, ts := newTestServer(t, testDB(t), cfg, func(_ context.Context, p *asm.Proc) (*core.Report, error) {
		started <- struct{}{}
		<-release
		return &core.Report{QueryName: p.Name}, nil
	})

	var wg sync.WaitGroup
	for i := 0; i < cfg.MaxInFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("blocked query status %d", resp.StatusCode)
			}
		}()
	}
	for i := 0; i < cfg.MaxInFlight; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("queries did not start")
		}
	}

	resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}

	close(release)
	wg.Wait()

	// Counters surfaced via /v1/stats reflect the traffic.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Queries.Rejected)
	}
	if st.Queries.Completed != uint64(cfg.MaxInFlight) {
		t.Errorf("completed = %d, want %d", st.Queries.Completed, cfg.MaxInFlight)
	}
	if st.Index.Targets != 2 {
		t.Errorf("index targets = %d, want 2", st.Index.Targets)
	}
}

// TestMetricsEndpoint scrapes /metrics after one query and checks that
// the exposition is well-formed and covers the server, engine, and
// process registries.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)
	if resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	body := string(b)
	for _, want := range []string{
		"# TYPE esh_http_queries_total counter",
		`esh_http_queries_total{result="completed"} 1`,
		"# TYPE esh_http_query_seconds histogram",
		"esh_http_query_seconds_count 1",
		"esh_http_inflight_queries 0",
		"esh_engine_queries_total 1",
		`esh_query_stage_seconds_bucket{stage="vcp",le="+Inf"} 1`,
		"# TYPE esh_vcp_cache_hit_ratio gauge",
		"esh_vcp_cache_pairs ",
		"esh_index_targets 2",
		"esh_verifier_calls_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestQueryTrace opts into ?trace=1 and checks the span tree shape: a
// query root whose four stage children account for ≈ all of its time,
// with VCP work counts attached.
func TestQueryTrace(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)
	body, _ := json.Marshal(QueryRequest{Asm: gccStyle})
	resp, err := http.Post(ts.URL+"/v1/query?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil {
		t.Fatal("no trace in response")
	}
	if got.Trace.Name != "query" {
		t.Fatalf("root span %q", got.Trace.Name)
	}
	wantStages := []string{"decompose", "prepare", "vcp", "score"}
	if len(got.Trace.Children) != len(wantStages) {
		t.Fatalf("stages %d, want %d: %+v", len(got.Trace.Children), len(wantStages), got.Trace.Children)
	}
	var stageSum float64
	for i, c := range got.Trace.Children {
		if c.Name != wantStages[i] {
			t.Errorf("stage %d is %q, want %q", i, c.Name, wantStages[i])
		}
		if c.DurationMS < 0 {
			t.Errorf("stage %s has negative duration", c.Name)
		}
		stageSum += c.DurationMS
	}
	// Stages run back to back inside the root span, so their durations
	// must sum to at most the root's and, when the query is long enough
	// to measure, to most of it.
	if stageSum > got.Trace.DurationMS+0.1 {
		t.Errorf("stage sum %.3fms exceeds root %.3fms", stageSum, got.Trace.DurationMS)
	}
	if got.Trace.DurationMS > 5 && stageSum < 0.5*got.Trace.DurationMS {
		t.Errorf("stage sum %.3fms does not account for root %.3fms", stageSum, got.Trace.DurationMS)
	}
	vcpSpan := got.Trace.Children[2]
	if vcpSpan.Attrs["pairs"] <= 0 {
		t.Errorf("vcp span missing pairs attr: %v", vcpSpan.Attrs)
	}
	if math.IsNaN(vcpSpan.Attrs["verifier_calls"]) || vcpSpan.Attrs["verifier_calls"] <= 0 {
		t.Errorf("vcp span missing verifier_calls attr: %v", vcpSpan.Attrs)
	}

	// Without ?trace=1 the response carries no trace.
	plain := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle})
	var noTrace QueryResponse
	if err := json.NewDecoder(plain.Body).Decode(&noTrace); err != nil {
		t.Fatal(err)
	}
	if noTrace.Trace != nil {
		t.Error("trace present without opt-in")
	}
}

// TestRequestID checks ID propagation: a client-supplied X-Request-ID is
// echoed, a missing one is generated, and query responses embed it.
func TestRequestID(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-supplied-42" {
		t.Errorf("echoed ID %q, want client-supplied-42", got)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("generated ID %q, want 16 hex chars", got)
	}

	qresp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle})
	var qr QueryResponse
	if err := json.NewDecoder(qresp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.RequestID == "" || qr.RequestID != qresp.Header.Get("X-Request-ID") {
		t.Errorf("response request_id %q vs header %q", qr.RequestID, qresp.Header.Get("X-Request-ID"))
	}
}

func TestStatsAfterQueries(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)
	for i := 0; i < 3; i++ {
		resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries.Completed != 3 {
		t.Fatalf("completed = %d, want 3", st.Queries.Completed)
	}
	var histTotal uint64
	for _, n := range st.LatencyMS {
		histTotal += n
	}
	if histTotal != 3 {
		t.Fatalf("latency histogram total = %d, want 3", histTotal)
	}
	if st.VCPCache.Pairs == 0 {
		t.Error("vcp cache occupancy not reported")
	}
	// Repeat queries replay the same strand rows, so the cache must
	// report hits and a nonzero hit rate.
	if st.VCPCache.Hits == 0 || st.VCPCache.HitRate <= 0 || st.VCPCache.HitRate > 1 {
		t.Errorf("cache traffic hits=%d rate=%v", st.VCPCache.Hits, st.VCPCache.HitRate)
	}
	if st.Engine.Queries != 3 {
		t.Errorf("engine queries = %d, want 3", st.Engine.Queries)
	}
	for _, stage := range []string{"decompose", "prepare", "vcp", "score"} {
		if _, ok := st.Engine.StageSeconds[stage]; !ok {
			t.Errorf("stage_seconds missing %q", stage)
		}
	}
	if st.Engine.VerifierCalls == 0 {
		t.Error("verifier calls not reported")
	}
}
