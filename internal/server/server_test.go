package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/vcp"
)

const gccStyle = `proc checksum_gcc
	xor eax, eax
	mov rcx, rdi
	lea rdx, [rsi+rsi*2]
	shl rdx, 2
	add rdx, 0x20
	imul rcx, rdx
	mov rax, rcx
	shr rax, 7
	xor rax, rcx
	mov r8, rax
	and r8, 0xff
	add rax, r8
	ret
endp`

const iccStyle = `proc checksum_icc
	xor r9d, r9d
	mov r10, rdi
	mov r11, rsi
	imul r11, 3
	imul r11, 4
	add r11, 0x20
	imul r10, r11
	mov rax, r10
	shr rax, 7
	xor rax, r10
	mov rbx, rax
	and rbx, 0xff
	add rax, rbx
	ret
endp`

const unrelated = `proc strlen_like
	xor eax, eax
	mov rdx, rdi
top:
	movzx ecx, byte [rdx]
	test rcx, rcx
	je done
	add rdx, 1
	add rax, 1
	cmp rax, 0x1000
	jb top
done:
	ret
endp`

func testDB(t *testing.T) *core.DB {
	t.Helper()
	db := core.NewDB(core.Options{VCP: vcp.Config{MinVars: 3}})
	for _, src := range []string{iccStyle, unrelated} {
		p, err := asm.ParseProc(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.AddTarget(p); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func quietConfig() Config {
	return Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

// newTestServer starts an httptest server; queryFn (optional) replaces
// the engine query before the listener accepts traffic.
func newTestServer(t *testing.T, db *core.DB, cfg Config, queryFn func(*asm.Proc) (*core.Report, error)) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietConfig().Logger
	}
	s := New(db, cfg)
	if queryFn != nil {
		s.queryFn = queryFn
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postQuery(t *testing.T, url string, req QueryRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestQueryEndpoint checks that HTTP results match an in-process Query
// exactly (same ranking, same scores bit for bit).
func TestQueryEndpoint(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, quietConfig(), nil)

	resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle, Method: "esh", Top: 10})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var got QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}

	p, err := asm.ParseProc(gccStyle)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	ranked := want.Rank(stats.Esh)
	if len(got.Results) != len(ranked) {
		t.Fatalf("results %d, want %d", len(got.Results), len(ranked))
	}
	for i, r := range got.Results {
		w := ranked[i]
		if r.Target != w.Target.Name || r.GES != w.GES || r.SLOG != w.SLOG || r.SVCP != w.SVCP {
			t.Fatalf("rank %d: got (%s %v %v %v), want (%s %v %v %v)",
				i, r.Target, r.GES, r.SLOG, r.SVCP, w.Target.Name, w.GES, w.SLOG, w.SVCP)
		}
	}
	if got.Results[0].Target != "checksum_icc" {
		t.Fatalf("top result %s, want checksum_icc", got.Results[0].Target)
	}
}

func TestQueryBadInput(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)
	for _, tc := range []struct {
		req  QueryRequest
		want int
	}{
		{QueryRequest{Asm: "this is not assembler"}, http.StatusBadRequest},
		{QueryRequest{Asm: ""}, http.StatusBadRequest},
		{QueryRequest{Asm: gccStyle, Method: "bogus"}, http.StatusBadRequest},
	} {
		resp := postQuery(t, ts.URL, tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%+v: status %d, want %d", tc.req, resp.StatusCode, tc.want)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if strings.TrimSpace(string(b)) != "ok" {
		t.Fatalf("body %q", b)
	}
}

func TestTargetsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)
	resp, err := http.Get(ts.URL + "/v1/targets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Targets []TargetInfo `json:"targets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Targets) != 2 {
		t.Fatalf("targets %d, want 2", len(got.Targets))
	}
	if got.Targets[0].Name != "checksum_icc" {
		t.Fatalf("first target %s", got.Targets[0].Name)
	}
}

// TestQueryTimeout injects a query that outlives the configured timeout
// and expects 504.
func TestQueryTimeout(t *testing.T) {
	cfg := quietConfig()
	cfg.QueryTimeout = 20 * time.Millisecond
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, testDB(t), cfg, func(p *asm.Proc) (*core.Report, error) {
		<-release
		return &core.Report{QueryName: p.Name}, nil
	})

	resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

// TestInFlightLimit saturates MaxInFlight with blocked queries and
// expects the next request to be shed with 429.
func TestInFlightLimit(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxInFlight = 2
	cfg.QueryTimeout = 5 * time.Second
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	_, ts := newTestServer(t, testDB(t), cfg, func(p *asm.Proc) (*core.Report, error) {
		started <- struct{}{}
		<-release
		return &core.Report{QueryName: p.Name}, nil
	})

	var wg sync.WaitGroup
	for i := 0; i < cfg.MaxInFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("blocked query status %d", resp.StatusCode)
			}
		}()
	}
	for i := 0; i < cfg.MaxInFlight; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("queries did not start")
		}
	}

	resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}

	close(release)
	wg.Wait()

	// Counters surfaced via /v1/stats reflect the traffic.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Queries.Rejected)
	}
	if st.Queries.Completed != uint64(cfg.MaxInFlight) {
		t.Errorf("completed = %d, want %d", st.Queries.Completed, cfg.MaxInFlight)
	}
	if st.Index.Targets != 2 {
		t.Errorf("index targets = %d, want 2", st.Index.Targets)
	}
}

func TestStatsAfterQueries(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)
	for i := 0; i < 3; i++ {
		resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries.Completed != 3 {
		t.Fatalf("completed = %d, want 3", st.Queries.Completed)
	}
	var histTotal uint64
	for _, n := range st.LatencyMS {
		histTotal += n
	}
	if histTotal != 3 {
		t.Fatalf("latency histogram total = %d, want 3", histTotal)
	}
	if st.VCPCache.Pairs == 0 {
		t.Error("vcp cache occupancy not reported")
	}
}
