package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/index"
)

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestReadyzDrain covers the liveness/readiness split: /healthz stays
// 200 across a drain, /readyz flips to 503 the moment SetReady(false)
// runs (before the listener would close) and recovers on SetReady(true).
func TestReadyzDrain(t *testing.T) {
	s, ts := newTestServer(t, testDB(t), quietConfig(), nil)

	if resp := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh server /readyz = %d", resp.StatusCode)
	}
	s.SetReady(false)
	if resp := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server /readyz = %d, want 503", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining server /healthz = %d, want 200 (drain is not death)", resp.StatusCode)
	}
	if s.Ready() {
		t.Fatal("Ready() true while draining")
	}
	s.SetReady(true)
	if resp := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered server /readyz = %d", resp.StatusCode)
	}
}

// TestPartialEndpoint checks the scatter leg: /v1/query/partial returns
// the shard-exact reductions with coherent dimensions.
func TestPartialEndpoint(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, quietConfig(), nil)

	body, _ := json.Marshal(QueryRequest{Asm: gccStyle})
	resp, err := http.Post(ts.URL+"/v1/query/partial", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial query = %d", resp.StatusCode)
	}
	var pr PartialResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	p := pr.Partial
	if p == nil {
		t.Fatal("no partial in response")
	}
	if p.QueryName != "checksum_gcc" {
		t.Fatalf("partial query name %q", p.QueryName)
	}
	if p.ShardCount != 0 {
		t.Fatalf("unsharded corpus reports shard %d/%d", p.ShardID, p.ShardCount)
	}
	if len(p.Targets) != db.NumTargets() {
		t.Fatalf("%d target partials, corpus has %d", len(p.Targets), db.NumTargets())
	}
	if len(p.Rows) != len(p.Weights) {
		t.Fatalf("%d rows for %d query strands", len(p.Rows), len(p.Weights))
	}
	for i, row := range p.Rows {
		if len(row) != db.NumUniqueStrands() {
			t.Fatalf("row %d has %d entries, corpus has %d unique strands", i, len(row), db.NumUniqueStrands())
		}
	}
	for _, tp := range p.Targets {
		if len(tp.MaxVCP) != len(p.Weights) {
			t.Fatalf("target %s has %d max-VCP entries", tp.Name, len(tp.MaxVCP))
		}
	}

	// Malformed asm is rejected like on /v1/query.
	bad, _ := json.Marshal(QueryRequest{Asm: "not asm"})
	resp2, err := http.Post(ts.URL+"/v1/query/partial", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad asm partial query = %d, want 400", resp2.StatusCode)
	}
}

// TestStatsSnapshotBlock checks that /v1/stats surfaces the snapshot
// identity a gateway verifies the fleet with.
func TestStatsSnapshotBlock(t *testing.T) {
	cfg := quietConfig()
	cfg.Snapshot = index.Info{Version: 3, BodyLen: 123, Checksum: "abcdef"}
	_, ts := newTestServer(t, testDB(t), cfg, nil)

	resp := get(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Snapshot.Version != 3 || st.Snapshot.Checksum != "abcdef" {
		t.Fatalf("snapshot block %+v", st.Snapshot)
	}
	if st.Snapshot.ShardCount != 0 {
		t.Fatalf("unsharded corpus reports shard count %d", st.Snapshot.ShardCount)
	}
	if st.Engine.Kernel == "" {
		t.Fatal("stats omit kernel mode")
	}
	if st.Prefilter.Mode == "" {
		t.Fatal("stats omit prefilter mode")
	}
}
