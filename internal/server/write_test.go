package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/vcp"
)

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestWritesDisabledByDefault: without EnableWrites every write
// endpoint answers 501, and the read API is untouched.
func TestWritesDisabledByDefault(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, quietConfig(), nil)

	for _, c := range []struct{ method, path string }{
		{http.MethodPost, "/v1/targets"},
		{http.MethodDelete, "/v1/targets/checksum_icc"},
		{http.MethodPost, "/v1/compact"},
	} {
		resp, body := doJSON(t, c.method, ts.URL+c.path, WriteRequest{Asm: gccStyle})
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("%s %s: status %d, want 501 (%s)", c.method, c.path, resp.StatusCode, body)
		}
	}
	if n := db.NumTargets(); n != 2 {
		t.Fatalf("disabled writes mutated the corpus: %d targets", n)
	}
}

func writeConfig(db *core.DB) Config {
	cfg := quietConfig()
	cfg.EnableWrites = true
	cfg.Compact = func() (uint64, uint64, error) { return db.Compact(nil, nil) }
	return cfg
}

func TestWriteEndpoints(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, db, writeConfig(db), nil)

	// Add: 200, names in order, pending count bumps.
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/targets", WriteRequest{Asm: gccStyle})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: status %d: %s", resp.StatusCode, body)
	}
	var wr WriteResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if len(wr.Added) != 1 || wr.Added[0] != "checksum_gcc" || wr.PendingWrites != 1 {
		t.Fatalf("add response: %+v", wr)
	}

	// The new target answers queries immediately.
	qresp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle, Method: "esh", Top: 10})
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query after add: status %d", qresp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(qresp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != 3 || qr.Results[0].Target != "checksum_gcc" {
		t.Fatalf("query after add: %d results, top %q", len(qr.Results), qr.Results[0].Target)
	}

	// Duplicate add: 409, nothing applied.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/targets", WriteRequest{Asm: gccStyle})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate add: status %d: %s", resp.StatusCode, body)
	}

	// Unparseable and empty bodies: 400.
	for _, asmText := range []string{"not assembler at all {", ""} {
		resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/targets", WriteRequest{Asm: asmText})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad asm %q: status %d: %s", asmText, resp.StatusCode, body)
		}
	}

	// Delete: 200 with the tombstone count; the target stops answering.
	resp, body = doJSON(t, http.MethodDelete, ts.URL+"/v1/targets/checksum_gcc", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Removed != 1 || wr.PendingWrites != 2 {
		t.Fatalf("delete response: %+v", wr)
	}

	// Delete of an unknown name: 404.
	resp, body = doJSON(t, http.MethodDelete, ts.URL+"/v1/targets/no_such_proc", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing delete: status %d: %s", resp.StatusCode, body)
	}

	// GET /v1/targets lists only live targets.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/targets", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("targets: status %d", resp.StatusCode)
	}
	if bytes.Contains(body, []byte("checksum_gcc")) {
		t.Fatalf("tombstoned target still listed: %s", body)
	}

	// Stats report the drift...
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Writes.Enabled || st.Writes.PendingWrites != 2 || st.Writes.Tombstones != 1 {
		t.Fatalf("stats writes block: %+v", st.Writes)
	}
	if st.Index.LiveTargets != 2 {
		t.Fatalf("stats live targets = %d, want 2", st.Index.LiveTargets)
	}

	// ...until compaction folds it into generation 1.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/compact", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d: %s", resp.StatusCode, body)
	}
	var cr struct {
		Generation    uint64 `json:"generation"`
		PendingWrites int    `json:"pending_writes"`
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Generation != 1 || cr.PendingWrites != 0 {
		t.Fatalf("compact response: %s", body)
	}
	if db.Tombstones() != 0 || db.PendingWrites() != 0 {
		t.Fatalf("post-compact drift: tombstones=%d pending=%d", db.Tombstones(), db.PendingWrites())
	}
}

// TestCompactWithoutHook: writes enabled but no compaction hook wired
// (a test harness, not eshd) → 501, not a crash.
func TestCompactWithoutHook(t *testing.T) {
	db := testDB(t)
	cfg := quietConfig()
	cfg.EnableWrites = true
	_, ts := newTestServer(t, db, cfg, nil)
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/compact", nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("compact without hook: status %d: %s", resp.StatusCode, body)
	}
}

// TestCompactionUnderLoad runs writers, queriers, and a compactor
// concurrently against one server — the zero-downtime claim. Every
// query must succeed (a swap mid-query serves the old snapshot, never
// an error), every write must land exactly once, and the final corpus
// must equal the survivors. CI runs this under -race, where the payoff
// is the absence of data-race reports across the write/query/compact
// triangle.
func TestCompactionUnderLoad(t *testing.T) {
	db := core.NewDB(core.Options{VCP: vcp.Config{MinVars: 3}})
	p, err := asm.ParseProc(iccStyle)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddTarget(p); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, db, writeConfig(db), nil)

	const writers, perWriter = 4, 8
	var wg sync.WaitGroup
	var queryFails, writeFails atomic.Int64

	for wID := 0; wID < writers; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				src := fmt.Sprintf(`proc load_%d_%d
	mov rax, rdi
	imul rax, %d
	add rax, 0x%x
	shr rax, %d
	xor rax, rdi
	ret
endp`, wID, i, 3+2*(wID*perWriter+i), 0x21+wID+i*5, 1+(i%7))
				resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/targets", WriteRequest{Asm: src})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("writer %d add %d: status %d: %s", wID, i, resp.StatusCode, body)
					writeFails.Add(1)
				}
				// Tombstone every fourth write again, so compaction
				// always has remap work.
				if i%4 == 3 {
					name := fmt.Sprintf("load_%d_%d", wID, i)
					resp, body := doJSON(t, http.MethodDelete, ts.URL+"/v1/targets/"+name, nil)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("writer %d delete %s: status %d: %s", wID, name, resp.StatusCode, body)
						writeFails.Add(1)
					}
				}
			}
		}(wID)
	}

	for qID := 0; qID < 2; qID++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle, Method: "esh", Top: 5})
				if resp.StatusCode != http.StatusOK {
					queryFails.Add(1)
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/compact", nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("compact %d: status %d: %s", i, resp.StatusCode, body)
			}
		}
	}()

	wg.Wait()
	if queryFails.Load() > 0 || writeFails.Load() > 0 {
		t.Fatalf("%d queries and %d writes failed under load", queryFails.Load(), writeFails.Load())
	}

	// Fold whatever is left and check the final corpus exactly.
	if _, _, err := db.Compact(nil, nil); err != nil {
		t.Fatal(err)
	}
	wantLive := 1 + writers*perWriter - writers*(perWriter/4)
	if n := db.NumTargets(); n != wantLive {
		t.Fatalf("final corpus has %d targets, want %d", n, wantLive)
	}
	if db.Tombstones() != 0 || db.PendingWrites() != 0 {
		t.Fatalf("final drift: tombstones=%d pending=%d", db.Tombstones(), db.PendingWrites())
	}
	resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle, Method: "esh", Top: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final query: status %d", resp.StatusCode)
	}
}
