package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/telemetry"
)

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestSlowQueryCaptureWithoutTrace is the tentpole acceptance test: a
// query slower than the threshold must show up in GET /debug/slow with
// its full span tree and stage breakdown even though the client never
// asked for ?trace=1.
func TestSlowQueryCaptureWithoutTrace(t *testing.T) {
	cfg := quietConfig()
	cfg.SlowQueryThreshold = 5 * time.Millisecond
	_, ts := newTestServer(t, testDB(t), cfg, func(ctx context.Context, p *asm.Proc) (*core.Report, error) {
		// Simulate an engine with one instrumented stage, like QueryCtx.
		_, sp := telemetry.StartSpan(ctx, "vcp")
		sp.SetAttr("pairs", 42)
		sp.SetAttr("verifier_calls", 7)
		time.Sleep(20 * time.Millisecond)
		sp.End()
		return &core.Report{QueryName: p.Name}, nil
	})

	// Plain query: no trace parameter anywhere.
	resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-ID")
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace != nil {
		t.Fatal("untraced response carries a trace")
	}

	var slow SlowResponse
	getJSON(t, ts.URL+"/debug/slow", &slow)
	if slow.ThresholdMS != 5 {
		t.Fatalf("threshold_ms = %g, want 5", slow.ThresholdMS)
	}
	if slow.Total != 1 || len(slow.Records) != 1 {
		t.Fatalf("slow log: total=%d records=%d, want 1 each", slow.Total, len(slow.Records))
	}
	rec := slow.Records[0]
	if rec.ID != rid {
		t.Errorf("record id %q does not match X-Request-ID %q", rec.ID, rid)
	}
	if rec.Kind != "query" || rec.Outcome != "completed" || !rec.Slow {
		t.Errorf("record classification wrong: %+v", rec)
	}
	if rec.DurationMS < 20 {
		t.Errorf("duration %gms, want >= 20", rec.DurationMS)
	}
	if rec.Trace == nil || rec.Trace.Name != "query" {
		t.Fatalf("slow record lost its span tree: %+v", rec.Trace)
	}
	if rec.Trace.Find("vcp") == nil {
		t.Fatalf("span tree missing vcp stage: %+v", rec.Trace)
	}
	if rec.StageMS["vcp"] < 20 {
		t.Errorf("stage_ms[vcp] = %g, want >= 20", rec.StageMS["vcp"])
	}
	if rec.Pairs != 42 || rec.VerifierCalls != 7 {
		t.Errorf("work counters not adopted from span attrs: %+v", rec)
	}

	// The stats view agrees.
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.StartTime.IsZero() {
		t.Error("stats start_time is zero")
	}
	if st.Recorder.Records != 1 || st.Recorder.Slow != 1 || st.Recorder.ThresholdMS != 5 {
		t.Errorf("stats recorder block: %+v", st.Recorder)
	}
	if st.LatencyQuantilesMS["p50"] < 20 {
		t.Errorf("latency_quantiles_ms = %v, want p50 >= 20", st.LatencyQuantilesMS)
	}
}

// TestRecorderAlwaysOn runs a real (fast) engine query at the default
// threshold and checks it leaves a trace-stripped record in
// GET /debug/queries, with the engine path pinned from the vcp span.
func TestRecorderAlwaysOn(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)
	if resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var recent struct {
		Total   uint64                   `json:"total"`
		Records []*telemetry.QueryRecord `json:"records"`
	}
	getJSON(t, ts.URL+"/debug/queries", &recent)
	if recent.Total != 1 || len(recent.Records) != 1 {
		t.Fatalf("recent: total=%d records=%d, want 1 each", recent.Total, len(recent.Records))
	}
	rec := recent.Records[0]
	if rec.Slow || rec.Trace != nil {
		t.Errorf("fast record kept slow state or trace: %+v", rec)
	}
	if rec.Kernel != "batch" || rec.Prefilter != "off" {
		t.Errorf("engine path = kernel=%q prefilter=%q, want batch/off", rec.Kernel, rec.Prefilter)
	}
	if rec.StageMS["vcp"] <= 0 || rec.StageMS["decompose"] <= 0 {
		t.Errorf("stage breakdown missing: %v", rec.StageMS)
	}
	var slow SlowResponse
	getJSON(t, ts.URL+"/debug/slow", &slow)
	if len(slow.Records) != 0 {
		t.Errorf("fast query landed in the slow log: %+v", slow.Records)
	}
}

// TestPartialSlowFailureCapture checks the partial endpoint records slow
// failures too: the flight recorder is evidence for every query that
// reached the engine, not just the successful ones.
func TestPartialSlowFailureCapture(t *testing.T) {
	cfg := quietConfig()
	cfg.SlowQueryThreshold = 5 * time.Millisecond
	s := New(testDB(t), cfg)
	s.partialFn = func(ctx context.Context, p *asm.Proc) (*core.QueryPartial, error) {
		time.Sleep(20 * time.Millisecond)
		return nil, fmt.Errorf("verifier backend lost")
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body := strings.NewReader(`{"asm": ` + fmt.Sprintf("%q", gccStyle) + `}`)
	resp, err := http.Post(ts.URL+"/v1/query/partial", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}

	var slow SlowResponse
	getJSON(t, ts.URL+"/debug/slow", &slow)
	if len(slow.Records) != 1 {
		t.Fatalf("slow log holds %d records, want 1", len(slow.Records))
	}
	rec := slow.Records[0]
	if rec.Kind != "partial" || rec.Outcome != "failure" || rec.Err == "" {
		t.Errorf("record = %+v, want slow partial failure with error text", rec)
	}
	if rec.Trace == nil {
		t.Error("slow failure lost its span tree")
	}
}

// TestMetricsExpositionLint strict-parses the /metrics page (the same
// parser CI and the gateway federation use) and checks the new
// observability families are present and well-formed.
func TestMetricsExpositionLint(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), quietConfig(), nil)
	if resp := postQuery(t, ts.URL, QueryRequest{Asm: gccStyle}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics fails strict parse: %v", err)
	}
	byName := map[string]*telemetry.ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	bi, ok := byName["esh_build_info"]
	if !ok || len(bi.Samples) != 1 {
		t.Fatalf("esh_build_info missing: %+v", bi)
	}
	if v, _ := bi.Samples[0].Label("go_version"); v != runtime.Version() {
		t.Errorf("build_info go_version = %q, want %q", v, runtime.Version())
	}
	if v, _ := bi.Samples[0].Label("kernel"); v != "batch" {
		t.Errorf("build_info kernel = %q", v)
	}
	if bi.Samples[0].Value != 1 {
		t.Errorf("build_info value = %g, want 1", bi.Samples[0].Value)
	}

	qf, ok := byName["esh_http_query_quantile_seconds"]
	if !ok || len(qf.Samples) != 3 {
		t.Fatalf("quantile gauges missing: %+v", qf)
	}
	seen := map[string]bool{}
	for _, smp := range qf.Samples {
		q, _ := smp.Label("quantile")
		seen[q] = true
		if !(smp.Value > 0) { // one query observed: no NaN, positive seconds
			t.Errorf("quantile %s = %g, want > 0", q, smp.Value)
		}
	}
	if !seen["0.5"] || !seen["0.95"] || !seen["0.99"] {
		t.Errorf("quantile labels = %v", seen)
	}

	if st, ok := byName["esh_process_start_time_seconds"]; !ok || st.Samples[0].Value <= 0 {
		t.Errorf("esh_process_start_time_seconds missing or non-positive: %+v", st)
	}
	if _, ok := byName["esh_http_slow_queries_total"]; !ok {
		t.Error("esh_http_slow_queries_total missing")
	}
	if fr, ok := byName["esh_flight_recorder_records"]; !ok || fr.Samples[0].Value != 1 {
		t.Errorf("esh_flight_recorder_records: %+v", fr)
	}
}
