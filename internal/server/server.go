// Package server exposes an indexed core.DB over HTTP as a JSON query
// service — the lookup half of the index-once/query-many split. It is
// deliberately small: request decoding, a per-request timeout, an
// in-flight query limit (back-pressure instead of queue collapse),
// metrics, and structured logging. Process lifecycle (listening,
// signal-driven graceful shutdown) belongs to cmd/eshd.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/stats"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// QueryTimeout bounds one query's wall time, queueing included
	// (default 60s).
	QueryTimeout time.Duration
	// MaxInFlight bounds concurrently executing queries; excess
	// requests are rejected with 429 (default 2×GOMAXPROCS).
	MaxInFlight int
	// MaxBodyBytes bounds the request body (default 8 MiB).
	MaxBodyBytes int64
	// MaxTop caps the top parameter (default 1000).
	MaxTop int
	// Logger receives one structured line per request (default
	// slog.Default).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 60 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxTop <= 0 {
		c.MaxTop = 1000
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// latencyBucketsMS are the upper bounds (milliseconds) of the query
// latency histogram; the last bucket is unbounded.
var latencyBucketsMS = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Server serves similarity queries against one immutable DB.
type Server struct {
	db  *core.DB
	cfg Config
	sem chan struct{}
	// queryFn indirects db.Query so tests can inject slow or failing
	// queries deterministically.
	queryFn func(*asm.Proc) (*core.Report, error)

	mu        sync.Mutex
	queries   uint64 // completed successfully
	failures  uint64 // engine errors
	timeouts  uint64
	rejected  uint64 // 429s
	badInput  uint64 // 4xx parse/validation errors
	latencyMS [len(latencyBucketsMS) + 1]uint64
	started   time.Time
}

// New builds a Server around an indexed database.
func New(db *core.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		db:      db,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		queryFn: db.Query,
		started: time.Now(),
	}
}

// Handler returns the HTTP handler tree (with request logging).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/targets", s.handleTargets)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s.logged(mux)
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.cfg.Logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	// Asm holds one or more procedures in assembler-text form; the
	// first is the query.
	Asm string `json:"asm"`
	// Method is the ranking method: "esh" (default), "slog", "svcp".
	Method string `json:"method,omitempty"`
	// Top bounds the number of ranked results (default 20).
	Top int `json:"top,omitempty"`
}

// QueryResult is one ranked row of a QueryResponse.
type QueryResult struct {
	Rank      int     `json:"rank"`
	Target    string  `json:"target"`
	Package   string  `json:"package,omitempty"`
	Toolchain string  `json:"toolchain,omitempty"`
	Patched   bool    `json:"patched,omitempty"`
	Score     float64 `json:"score"`
	GES       float64 `json:"ges"`
	SLOG      float64 `json:"slog"`
	SVCP      float64 `json:"svcp"`
}

// QueryResponse is the POST /v1/query reply.
type QueryResponse struct {
	Query      string        `json:"query"`
	Method     string        `json:"method"`
	NumBlocks  int           `json:"num_blocks"`
	NumStrands int           `json:"num_strands"`
	Results    []QueryResult `json:"results"`
}

func methodByName(name string) (stats.Method, error) {
	switch name {
	case "", "esh":
		return stats.Esh, nil
	case "slog":
		return stats.SLOG, nil
	case "svcp":
		return stats.SVCP, nil
	}
	return stats.Esh, fmt.Errorf("unknown method %q (esh, slog, svcp)", name)
}

func (s *Server) count(c *uint64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

func (s *Server) observe(d time.Duration) {
	ms := float64(d.Microseconds()) / 1000
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	s.mu.Lock()
	s.queries++
	s.latencyMS[i]++
	s.mu.Unlock()
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.count(&s.badInput)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		s.fail(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	m, err := methodByName(req.Method)
	if err != nil {
		s.count(&s.badInput)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	top := req.Top
	if top <= 0 {
		top = 20
	}
	if top > s.cfg.MaxTop {
		top = s.cfg.MaxTop
	}
	procs, err := asm.Parse(req.Asm)
	if err != nil {
		s.count(&s.badInput)
		s.fail(w, http.StatusBadRequest, "parse asm: %v", err)
		return
	}
	if len(procs) == 0 {
		s.count(&s.badInput)
		s.fail(w, http.StatusBadRequest, "no procedure in request")
		return
	}

	// Admission: reject rather than queue when the configured number of
	// queries is already executing — a loaded search service should shed,
	// not build an unbounded latency backlog.
	select {
	case s.sem <- struct{}{}:
	default:
		s.count(&s.rejected)
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, "too many in-flight queries (limit %d)", s.cfg.MaxInFlight)
		return
	}

	start := time.Now()
	type result struct {
		rep *core.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		defer func() { <-s.sem }()
		rep, err := s.queryFn(procs[0])
		done <- result{rep, err}
	}()

	timer := time.NewTimer(s.cfg.QueryTimeout)
	defer timer.Stop()
	select {
	case res := <-done:
		if res.err != nil {
			s.count(&s.failures)
			s.fail(w, http.StatusUnprocessableEntity, "query: %v", res.err)
			return
		}
		s.observe(time.Since(start))
		writeJSON(w, http.StatusOK, buildResponse(res.rep, m, top))
	case <-timer.C:
		// The engine query is not cancellable; it keeps running (and
		// keeps holding its in-flight slot) while the client gets a 504.
		s.count(&s.timeouts)
		s.fail(w, http.StatusGatewayTimeout, "query exceeded %s", s.cfg.QueryTimeout)
	}
}

func buildResponse(rep *core.Report, m stats.Method, top int) *QueryResponse {
	resp := &QueryResponse{
		Query:      rep.QueryName,
		Method:     m.String(),
		NumBlocks:  rep.NumBlocks,
		NumStrands: rep.NumStrands,
		Results:    []QueryResult{},
	}
	for i, ts := range rep.Rank(m) {
		if i >= top {
			break
		}
		resp.Results = append(resp.Results, QueryResult{
			Rank:      i + 1,
			Target:    ts.Target.Name,
			Package:   ts.Target.Source.Package,
			Toolchain: ts.Target.Source.Toolchain,
			Patched:   ts.Target.Source.Patched,
			Score:     ts.Score(m),
			GES:       ts.GES,
			SLOG:      ts.SLOG,
			SVCP:      ts.SVCP,
		})
	}
	return resp
}

// TargetInfo is one row of GET /v1/targets.
type TargetInfo struct {
	Name       string `json:"name"`
	Package    string `json:"package,omitempty"`
	Toolchain  string `json:"toolchain,omitempty"`
	Patched    bool   `json:"patched,omitempty"`
	NumBlocks  int    `json:"num_blocks"`
	NumStrands int    `json:"num_strands"`
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	out := make([]TargetInfo, 0, s.db.NumTargets())
	for _, t := range s.db.Targets() {
		out = append(out, TargetInfo{
			Name:       t.Name,
			Package:    t.Source.Package,
			Toolchain:  t.Source.Toolchain,
			Patched:    t.Source.Patched,
			NumBlocks:  t.NumBlocks,
			NumStrands: t.NumStrands,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"targets": out})
}

// StatsResponse is the GET /v1/stats reply.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Index         struct {
		Targets       int `json:"targets"`
		UniqueStrands int `json:"unique_strands"`
		TotalStrands  int `json:"total_strands"`
	} `json:"index"`
	VCPCache struct {
		Pairs     int    `json:"pairs"`
		QueryKeys int    `json:"query_keys"`
		CapPairs  int    `json:"cap_pairs"`
		Evicted   uint64 `json:"evicted"`
	} `json:"vcp_cache"`
	Queries struct {
		Completed uint64 `json:"completed"`
		Failures  uint64 `json:"failures"`
		Timeouts  uint64 `json:"timeouts"`
		Rejected  uint64 `json:"rejected"`
		BadInput  uint64 `json:"bad_input"`
		InFlight  int    `json:"in_flight"`
		MaxIn     int    `json:"max_in_flight"`
	} `json:"queries"`
	// LatencyMS maps histogram bucket labels ("<=50ms", ">10000ms") to
	// completed-query counts.
	LatencyMS map[string]uint64 `json:"latency_ms"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	dbs := s.db.Stats()
	resp := &StatsResponse{UptimeSeconds: time.Since(s.started).Seconds()}
	resp.Index.Targets = dbs.Targets
	resp.Index.UniqueStrands = dbs.UniqueStrands
	resp.Index.TotalStrands = dbs.TotalStrands
	resp.VCPCache.Pairs = dbs.VCPCachePairs
	resp.VCPCache.QueryKeys = dbs.VCPCacheQueries
	resp.VCPCache.CapPairs = dbs.VCPCacheCap
	resp.VCPCache.Evicted = dbs.VCPCacheEvicted
	resp.LatencyMS = make(map[string]uint64, len(s.latencyMS))

	s.mu.Lock()
	resp.Queries.Completed = s.queries
	resp.Queries.Failures = s.failures
	resp.Queries.Timeouts = s.timeouts
	resp.Queries.Rejected = s.rejected
	resp.Queries.BadInput = s.badInput
	for i, n := range s.latencyMS {
		if n == 0 {
			continue
		}
		if i < len(latencyBucketsMS) {
			resp.LatencyMS[fmt.Sprintf("<=%gms", latencyBucketsMS[i])] = n
		} else {
			resp.LatencyMS[fmt.Sprintf(">%gms", latencyBucketsMS[len(latencyBucketsMS)-1])] = n
		}
	}
	s.mu.Unlock()

	resp.Queries.InFlight = len(s.sem)
	resp.Queries.MaxIn = s.cfg.MaxInFlight
	writeJSON(w, http.StatusOK, resp)
}
