// Package server exposes an indexed core.DB over HTTP as a JSON query
// service — the lookup half of the index-once/query-many split. It is
// deliberately small: request decoding, a per-request timeout, an
// in-flight query limit (back-pressure instead of queue collapse),
// metrics, and structured logging. Process lifecycle (listening,
// signal-driven graceful shutdown) belongs to cmd/eshd.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/vcp"
	"repro/internal/wal"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// QueryTimeout bounds one query's wall time, queueing included
	// (default 60s).
	QueryTimeout time.Duration
	// MaxInFlight bounds concurrently executing queries; excess
	// requests are rejected with 429 (default 2×GOMAXPROCS).
	MaxInFlight int
	// MaxBodyBytes bounds the request body (default 8 MiB).
	MaxBodyBytes int64
	// MaxTop caps the top parameter (default 1000).
	MaxTop int
	// Logger receives one structured line per request (default
	// slog.Default).
	Logger *slog.Logger
	// Snapshot identifies the index snapshot the DB was loaded from
	// (version, checksum, shard). Optional — an in-memory corpus has
	// none — but a gateway needs it in /v1/stats to verify the fleet.
	Snapshot index.Info
	// SlowQueryThreshold marks queries at or above this duration as
	// slow: they keep their full span tree in the flight recorder, show
	// up at GET /debug/slow, and emit a structured warning line. Default
	// 1s; negative disables slow capture (the recorder itself stays on).
	SlowQueryThreshold time.Duration
	// RecorderSize / SlowLogSize bound the flight-recorder rings
	// (defaults telemetry.DefaultRecorderSize / DefaultSlowLogSize).
	RecorderSize int
	SlowLogSize  int
	// EnableWrites turns on the live write API (POST /v1/targets,
	// DELETE /v1/targets/{name}, POST /v1/compact). Off by default:
	// without a write-ahead log the daemon cannot make writes durable,
	// so cmd/eshd enables it only when -wal is set.
	EnableWrites bool
	// Compact, when non-nil, is invoked by POST /v1/compact (and is how
	// the daemon's background compactor and the API share one code
	// path). It returns the new generation and folded WAL high-water
	// mark.
	Compact func() (gen, hwm uint64, err error)
	// WALStats, when non-nil, supplies journal statistics for /v1/stats.
	WALStats func() wal.Stats
}

func (c Config) withDefaults() Config {
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 60 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxTop <= 0 {
		c.MaxTop = 1000
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = time.Second
	}
	if c.SlowQueryThreshold < 0 {
		c.SlowQueryThreshold = 0 // disabled
	}
	return c
}

// queryResults enumerate the label values of esh_http_queries_total: one
// terminal outcome per query request.
var queryResults = [...]string{"completed", "failure", "timeout", "rejected", "bad_input"}

// Server serves similarity queries — and, with writes enabled, live
// corpus mutations — against one DB.
type Server struct {
	db  *core.DB
	cfg Config
	sem chan struct{}

	// snapMu guards the serving snapshot identity: compaction persists a
	// new snapshot generation under the live daemon and updates it via
	// SetSnapshotInfo while /v1/stats reads it.
	snapMu   sync.RWMutex
	snapshot index.Info
	// queryFn indirects db.QueryCtx so tests can inject slow or failing
	// queries deterministically; partialFn likewise for db.PartialQueryCtx.
	queryFn   func(context.Context, *asm.Proc) (*core.Report, error)
	partialFn func(context.Context, *asm.Proc) (*core.QueryPartial, error)

	// ready gates /readyz: true once the snapshot is loaded and
	// serving, flipped false by SetReady during graceful drain so load
	// balancers and the gateway stop picking this replica before the
	// listener closes. Liveness (/healthz) is independent: a draining
	// process is still alive.
	ready atomic.Bool

	// HTTP-level metrics; engine metrics live in the DB's registry and
	// both are rendered by /metrics.
	reg      *telemetry.Registry
	outcomes map[string]*telemetry.Counter // by queryResults label
	latency  *telemetry.Histogram
	started  time.Time

	// Flight recorder: every query that reached the engine leaves a
	// structured record here whether or not the caller traced it; slow
	// ones retain their span tree. lat feeds the streaming p50/p95/p99
	// gauges next to the latency histogram; slowQ counts slow queries.
	rec   *telemetry.Recorder
	lat   *telemetry.Quantiles
	slowQ *telemetry.Counter
}

// latencyQuantiles are the streamed percentiles exported as gauges and
// reported in /v1/stats, by both the server and the gateway.
var latencyQuantiles = [...]float64{0.5, 0.95, 0.99}

// New builds a Server around an indexed database.
func New(db *core.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:        db,
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.MaxInFlight),
		snapshot:  cfg.Snapshot,
		queryFn:   db.QueryCtx,
		partialFn: db.PartialQueryCtx,
		reg:       telemetry.NewRegistry(),
		started:   time.Now(),
	}
	s.ready.Store(true)
	s.outcomes = make(map[string]*telemetry.Counter, len(queryResults))
	for _, res := range queryResults {
		s.outcomes[res] = s.reg.Counter("esh_http_queries_total",
			"Query requests by terminal outcome.", "result", res)
	}
	s.latency = s.reg.Histogram("esh_http_query_seconds",
		"End-to-end latency of completed queries.", nil)
	s.reg.GaugeFunc("esh_http_inflight_queries", "Queries executing right now.",
		func() float64 { return float64(len(s.sem)) })
	s.reg.GaugeFunc("esh_http_max_inflight", "Configured in-flight query limit.",
		func() float64 { return float64(cfg.MaxInFlight) })
	s.reg.GaugeFunc("esh_http_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	s.reg.Gauge("esh_process_start_time_seconds",
		"Unix time the process started.").Set(float64(s.started.UnixNano()) / 1e9)
	s.reg.Gauge("esh_build_info", "Build and engine configuration (value is always 1).",
		"go_version", runtime.Version(),
		"kernel", db.Options().VCP.Kernel,
		"prefilter", db.Options().Prefilter,
		"retrieval", db.Options().Retrieval).Set(1)

	s.rec = telemetry.NewRecorder(cfg.RecorderSize, cfg.SlowLogSize, cfg.SlowQueryThreshold)
	s.lat = telemetry.NewQuantiles(latencyQuantiles[:]...)
	s.slowQ = s.reg.Counter("esh_http_slow_queries_total",
		"Queries at or above the slow-query threshold.")
	s.reg.GaugeFunc("esh_flight_recorder_records",
		"Query records ever published to the flight recorder.",
		func() float64 { return float64(s.rec.Total()) })
	for _, q := range latencyQuantiles {
		q := q
		s.reg.GaugeFunc("esh_http_query_quantile_seconds",
			"Streaming latency quantiles of completed queries (P2 estimator).",
			func() float64 { return s.lat.Quantile(q) },
			"quantile", telemetry.FormatQuantile(q))
	}
	return s
}

// Handler returns the HTTP handler tree (with request-ID assignment and
// request logging).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/query/partial", s.handlePartial)
	mux.HandleFunc("GET /v1/targets", s.handleTargets)
	mux.HandleFunc("POST /v1/targets", s.handleAddTarget)
	mux.HandleFunc("DELETE /v1/targets/{name}", s.handleDeleteTarget)
	mux.HandleFunc("POST /v1/compact", s.handleCompact)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /debug/slow", s.handleSlow)
	mux.HandleFunc("GET /debug/queries", s.handleRecent)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return s.logged(mux)
}

// SetReady flips the /readyz state. cmd/eshd calls SetReady(false) at
// the start of a graceful drain, then waits out a grace period before
// closing the listener, so pollers observe the 503 and route around the
// replica while it still answers in-flight (and straggler) queries.
func (s *Server) SetReady(v bool) { s.ready.Store(v) }

// Ready reports the current /readyz state.
func (s *Server) Ready() bool { return s.ready.Load() }

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

type requestIDKey struct{}

// NewRequestID returns a fresh request ID: 8 random bytes, hex-encoded.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// RequestID returns the request ID assigned to ctx by the handler
// chain, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// WithRequestID returns ctx carrying rid, so non-server frontends (the
// gateway) reuse the same correlation plumbing.
func WithRequestID(ctx context.Context, rid string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, rid)
}

// logged assigns every request an ID (the client's X-Request-ID when
// present, otherwise generated), echoes it in the response header, and
// emits one structured log line carrying it — so a log line, a traced
// response and a client retry all correlate on one token.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-ID")
		if rid == "" || len(rid) > 128 {
			rid = NewRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, rid))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.cfg.Logger.Info("request",
			"request_id", rid,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

// handleMetrics renders the server, engine, and process-default metric
// registries as one Prometheus text-format page. Names are disjoint by
// construction (esh_http_*, esh_vcp_*/esh_query_*/esh_index_* gauges,
// esh_index_*_seconds), so concatenation is a valid exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, reg := range []*telemetry.Registry{s.reg, s.db.Metrics(), telemetry.Default()} {
		if err := reg.WriteText(w); err != nil {
			return // client went away; nothing sensible to do
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	// Asm holds one or more procedures in assembler-text form; the
	// first is the query.
	Asm string `json:"asm"`
	// Method is the ranking method: "esh" (default), "slog", "svcp".
	Method string `json:"method,omitempty"`
	// Top bounds the number of ranked results (default 20).
	Top int `json:"top,omitempty"`
}

// QueryResult is one ranked row of a QueryResponse.
type QueryResult struct {
	Rank      int     `json:"rank"`
	Target    string  `json:"target"`
	Package   string  `json:"package,omitempty"`
	Toolchain string  `json:"toolchain,omitempty"`
	Patched   bool    `json:"patched,omitempty"`
	Score     float64 `json:"score"`
	GES       float64 `json:"ges"`
	SLOG      float64 `json:"slog"`
	SVCP      float64 `json:"svcp"`
}

// QueryResponse is the POST /v1/query reply.
type QueryResponse struct {
	Query      string        `json:"query"`
	RequestID  string        `json:"request_id,omitempty"`
	Method     string        `json:"method"`
	NumBlocks  int           `json:"num_blocks"`
	NumStrands int           `json:"num_strands"`
	Results    []QueryResult `json:"results"`
	// Trace is the per-query span tree (stage timings and work counts),
	// present when the request opted in with ?trace=1.
	Trace *telemetry.SpanData `json:"trace,omitempty"`
}

// MethodByName maps a wire-form ranking-method name to a stats.Method;
// "" selects the default (esh). Shared with the gateway, which speaks
// the same request schema.
func MethodByName(name string) (stats.Method, error) {
	switch name {
	case "", "esh":
		return stats.Esh, nil
	case "slog":
		return stats.SLOG, nil
	case "svcp":
		return stats.SVCP, nil
	}
	return stats.Esh, fmt.Errorf("unknown method %q (esh, slog, svcp)", name)
}

func (s *Server) count(result string) { s.outcomes[result].Inc() }

// record publishes one query's flight-recorder entry — built from the
// span tree the handler grows for every query, traced or not — and
// emits the structured slow-query line when it crossed the threshold.
// Only queries that reached the engine are recorded; bad_input and
// rejected requests never ran and leave no record.
func (s *Server) record(kind, rid, outcome, errMsg string, start time.Time, root *telemetry.Span) {
	opts := s.db.Options()
	rec := &telemetry.QueryRecord{
		ID:         rid,
		Kind:       kind,
		Start:      start,
		Outcome:    outcome,
		Err:        errMsg,
		Generation: s.db.Shard().Generation,
		Kernel:     opts.VCP.Kernel,
		Prefilter:  opts.Prefilter,
		Retrieval:  opts.Retrieval,
	}
	snap := root.Snapshot()
	rec.FillFromTrace(snap)
	// The vcp span carries the entry-time engine configuration, which
	// beats the live options under concurrent reconfiguration.
	if v := snap.Find("vcp"); v != nil {
		if kb, ok := v.Attrs["kernel_batch"]; ok {
			rec.Kernel = vcp.KernelScalar
			if kb != 0 {
				rec.Kernel = vcp.KernelBatch
			}
		}
		if pf, ok := v.Attrs["prefilter_lsh"]; ok {
			rec.Prefilter = core.PrefilterOff
			if pf != 0 {
				rec.Prefilter = core.PrefilterLSH
			}
		}
		if rp, ok := v.Attrs["retrieval_probe"]; ok {
			rec.Retrieval = core.RetrievalScan
			if rp != 0 {
				rec.Retrieval = core.RetrievalProbe
			}
		}
	}
	if s.rec.Record(rec) {
		s.slowQ.Inc()
		s.cfg.Logger.Warn("slow query",
			"request_id", rid,
			"kind", kind,
			"outcome", outcome,
			"dur_ms", rec.DurationMS,
			"threshold_ms", float64(s.rec.SlowThreshold().Microseconds())/1000,
			"pairs", rec.Pairs,
			"verifier_calls", rec.VerifierCalls,
			"stage_ms", fmt.Sprintf("%v", rec.StageMS),
		)
	}
}

// SlowResponse is the GET /debug/slow reply: the retained slow-query
// records, newest first, each with its full span tree.
type SlowResponse struct {
	ThresholdMS float64                  `json:"threshold_ms"`
	Total       uint64                   `json:"total_slow"`
	Recorded    uint64                   `json:"total_recorded"`
	Records     []*telemetry.QueryRecord `json:"records"`
}

func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &SlowResponse{
		ThresholdMS: float64(s.rec.SlowThreshold().Microseconds()) / 1000,
		Total:       s.rec.SlowTotal(),
		Recorded:    s.rec.Total(),
		Records:     s.rec.Slow(),
	})
}

// handleRecent serves GET /debug/queries: the most recent flight-recorder
// entries (trace-stripped unless slow), newest first. ?n= bounds the
// count (default 100).
func (s *Server) handleRecent(w http.ResponseWriter, r *http.Request) {
	n := 100
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":   s.rec.Total(),
		"records": s.rec.Recent(n),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.count("bad_input")
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		s.fail(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	m, err := MethodByName(req.Method)
	if err != nil {
		s.count("bad_input")
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	top := req.Top
	if top <= 0 {
		top = 20
	}
	if top > s.cfg.MaxTop {
		top = s.cfg.MaxTop
	}
	procs, err := asm.Parse(req.Asm)
	if err != nil {
		s.count("bad_input")
		s.fail(w, http.StatusBadRequest, "parse asm: %v", err)
		return
	}
	if len(procs) == 0 {
		s.count("bad_input")
		s.fail(w, http.StatusBadRequest, "no procedure in request")
		return
	}
	wantTrace := r.URL.Query().Get("trace") == "1"

	// Admission: reject rather than queue when the configured number of
	// queries is already executing — a loaded search service should shed,
	// not build an unbounded latency backlog.
	select {
	case s.sem <- struct{}{}:
	default:
		s.count("rejected")
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, "too many in-flight queries (limit %d)", s.cfg.MaxInFlight)
		return
	}

	start := time.Now()
	type result struct {
		rep *core.Report
		err error
	}
	done := make(chan result, 1)
	// The engine runs on a background context (not r.Context()): a query
	// is not cancellable once started, and the span tree must stay valid
	// past a client disconnect. The root span covers queueing-free engine
	// time; QueryCtx hangs the stage spans under it.
	qctx, root := telemetry.StartSpan(context.Background(), "query")
	go func() {
		defer func() { <-s.sem }()
		rep, err := s.queryFn(qctx, procs[0])
		root.End()
		done <- result{rep, err}
	}()

	timer := time.NewTimer(s.cfg.QueryTimeout)
	defer timer.Stop()
	rid := RequestID(r.Context())
	select {
	case res := <-done:
		if res.err != nil {
			s.count("failure")
			s.record("query", rid, "failure", res.err.Error(), start, root)
			s.fail(w, http.StatusUnprocessableEntity, "query: %v", res.err)
			return
		}
		s.count("completed")
		secs := time.Since(start).Seconds()
		s.latency.Observe(secs)
		s.lat.Observe(secs)
		s.record("query", rid, "completed", "", start, root)
		resp := BuildQueryResponse(res.rep, m, top)
		resp.RequestID = rid
		if wantTrace {
			resp.Trace = root.Snapshot()
		}
		writeJSON(w, http.StatusOK, resp)
	case <-timer.C:
		// The engine query is not cancellable; it keeps running (and
		// keeps holding its in-flight slot) while the client gets a 504.
		// The record snapshots the still-running span tree: elapsed time
		// so far, with whatever stages have finished.
		s.count("timeout")
		s.record("query", rid, "timeout", fmt.Sprintf("query exceeded %s", s.cfg.QueryTimeout), start, root)
		s.fail(w, http.StatusGatewayTimeout, "query exceeded %s", s.cfg.QueryTimeout)
	}
}

// PartialResponse is the POST /v1/query/partial reply: one shard's
// contribution to a scattered query, for a gateway to merge. The shard
// identity inside lets the gateway check the reply against its manifest.
type PartialResponse struct {
	RequestID string         `json:"request_id,omitempty"`
	Partial   *shard.Partial `json:"partial"`
	// Trace is the per-query span tree, present with ?trace=1; the
	// gateway grafts it into its fan-out trace.
	Trace *telemetry.SpanData `json:"trace,omitempty"`
}

// handlePartial runs the shard-local stages of a query and returns the
// wire-form partial instead of finalized scores. Request shape is the
// same as /v1/query (method and top are ignored — ranking happens at
// the gateway), as are admission, timeout, and outcome accounting.
func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.count("bad_input")
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		s.fail(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	procs, err := asm.Parse(req.Asm)
	if err != nil {
		s.count("bad_input")
		s.fail(w, http.StatusBadRequest, "parse asm: %v", err)
		return
	}
	if len(procs) == 0 {
		s.count("bad_input")
		s.fail(w, http.StatusBadRequest, "no procedure in request")
		return
	}
	wantTrace := r.URL.Query().Get("trace") == "1"

	select {
	case s.sem <- struct{}{}:
	default:
		s.count("rejected")
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, "too many in-flight queries (limit %d)", s.cfg.MaxInFlight)
		return
	}

	start := time.Now()
	type result struct {
		qp  *core.QueryPartial
		err error
	}
	done := make(chan result, 1)
	qctx, root := telemetry.StartSpan(context.Background(), "query_partial")
	go func() {
		defer func() { <-s.sem }()
		qp, err := s.partialFn(qctx, procs[0])
		root.End()
		done <- result{qp, err}
	}()

	timer := time.NewTimer(s.cfg.QueryTimeout)
	defer timer.Stop()
	rid := RequestID(r.Context())
	select {
	case res := <-done:
		if res.err != nil {
			s.count("failure")
			s.record("partial", rid, "failure", res.err.Error(), start, root)
			s.fail(w, http.StatusUnprocessableEntity, "query: %v", res.err)
			return
		}
		s.count("completed")
		secs := time.Since(start).Seconds()
		s.latency.Observe(secs)
		s.lat.Observe(secs)
		s.record("partial", rid, "completed", "", start, root)
		resp := &PartialResponse{
			RequestID: rid,
			Partial:   shard.FromQueryPartial(res.qp, s.db.Shard()),
		}
		if wantTrace {
			resp.Trace = root.Snapshot()
		}
		writeJSON(w, http.StatusOK, resp)
	case <-timer.C:
		s.count("timeout")
		s.record("partial", rid, "timeout", fmt.Sprintf("query exceeded %s", s.cfg.QueryTimeout), start, root)
		s.fail(w, http.StatusGatewayTimeout, "query exceeded %s", s.cfg.QueryTimeout)
	}
}

// BuildQueryResponse ranks a report and shapes it as the wire response.
// Exported so the gateway renders merged reports through the exact same
// code path a single node uses — the differential guarantee includes
// the response encoding.
func BuildQueryResponse(rep *core.Report, m stats.Method, top int) *QueryResponse {
	resp := &QueryResponse{
		Query:      rep.QueryName,
		Method:     m.String(),
		NumBlocks:  rep.NumBlocks,
		NumStrands: rep.NumStrands,
		Results:    []QueryResult{},
	}
	for i, ts := range rep.Rank(m) {
		if i >= top {
			break
		}
		resp.Results = append(resp.Results, QueryResult{
			Rank:      i + 1,
			Target:    ts.Target.Name,
			Package:   ts.Target.Source.Package,
			Toolchain: ts.Target.Source.Toolchain,
			Patched:   ts.Target.Source.Patched,
			Score:     ts.Score(m),
			GES:       ts.GES,
			SLOG:      ts.SLOG,
			SVCP:      ts.SVCP,
		})
	}
	return resp
}

// TargetInfo is one row of GET /v1/targets.
type TargetInfo struct {
	Name       string `json:"name"`
	Package    string `json:"package,omitempty"`
	Toolchain  string `json:"toolchain,omitempty"`
	Patched    bool   `json:"patched,omitempty"`
	NumBlocks  int    `json:"num_blocks"`
	NumStrands int    `json:"num_strands"`
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	live := s.db.LiveTargets()
	out := make([]TargetInfo, 0, len(live))
	for _, t := range live {
		out = append(out, TargetInfo{
			Name:       t.Name,
			Package:    t.Source.Package,
			Toolchain:  t.Source.Toolchain,
			Patched:    t.Source.Patched,
			NumBlocks:  t.NumBlocks,
			NumStrands: t.NumStrands,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"targets": out})
}

// SetSnapshotInfo replaces the snapshot identity reported by /v1/stats.
// The daemon calls it after a compaction persists a new snapshot
// generation under the live server.
func (s *Server) SetSnapshotInfo(info index.Info) {
	s.snapMu.Lock()
	s.snapshot = info
	s.snapMu.Unlock()
}

// writeEnabled gates the write API: 501 with a pointer at -wal when the
// daemon has no durable journal.
func (s *Server) writeEnabled(w http.ResponseWriter) bool {
	if !s.cfg.EnableWrites {
		s.fail(w, http.StatusNotImplemented, "live writes are disabled (start eshd with -wal)")
		return false
	}
	return true
}

// WriteRequest is the POST /v1/targets body: one or more procedures in
// assembler-text form, each indexed as one target.
type WriteRequest struct {
	Asm string `json:"asm"`
}

// WriteResponse is the reply of the write endpoints. Added lists the
// target names indexed by a POST (in order; on error the prefix that
// was durably applied before the failure). Removed counts tombstoned
// targets. WALSeq is the journal high-water mark after the write and
// PendingWrites the uncompacted write count.
type WriteResponse struct {
	Added         []string `json:"added,omitempty"`
	Removed       int      `json:"removed,omitempty"`
	Generation    uint64   `json:"generation"`
	WALSeq        uint64   `json:"wal_seq"`
	PendingWrites int      `json:"pending_writes"`
}

func (s *Server) fillWriteState(resp *WriteResponse) {
	resp.Generation = s.db.DataGeneration()
	resp.WALSeq = s.db.WALSeq()
	resp.PendingWrites = s.db.PendingWrites()
}

// writeStatus maps a write-path error to its HTTP status: duplicate
// names conflict (409), unknown names are absent (404), journal append
// failures are server-side (500, the write was not applied), and
// everything else is an unprocessable procedure (422).
func writeStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrDuplicateTarget):
		return http.StatusConflict
	case errors.Is(err, core.ErrTargetNotFound):
		return http.StatusNotFound
	case errors.Is(err, core.ErrJournal):
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

// handleAddTarget serves POST /v1/targets: journal, then index, each
// procedure in the body. Each procedure is individually durable — on a
// mid-batch failure the response still lists the prefix that was
// acknowledged, and those targets survive a crash.
func (s *Server) handleAddTarget(w http.ResponseWriter, r *http.Request) {
	if !s.writeEnabled(w) {
		return
	}
	var req WriteRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		s.fail(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	procs, err := asm.Parse(req.Asm)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "parse asm: %v", err)
		return
	}
	if len(procs) == 0 {
		s.fail(w, http.StatusBadRequest, "no procedure in request")
		return
	}
	rid := RequestID(r.Context())
	start := time.Now()
	_, root := telemetry.StartSpan(context.Background(), "write")
	resp := &WriteResponse{}
	for _, p := range procs {
		if err := s.db.ApplyAdd(p); err != nil {
			root.End()
			s.record("write", rid, "failure", err.Error(), start, root)
			s.fillWriteState(resp)
			status := writeStatus(err)
			writeJSON(w, status, map[string]any{
				"error":   err.Error(),
				"added":   resp.Added,
				"wal_seq": resp.WALSeq,
			})
			return
		}
		resp.Added = append(resp.Added, p.Name)
	}
	root.SetAttr("targets_added", float64(len(resp.Added)))
	root.End()
	s.record("write", rid, "completed", "", start, root)
	s.fillWriteState(resp)
	writeJSON(w, http.StatusOK, resp)
}

// handleDeleteTarget serves DELETE /v1/targets/{name}: tombstone every
// live target with that name. The strands stay resident until the next
// compaction but stop influencing scores immediately.
func (s *Server) handleDeleteTarget(w http.ResponseWriter, r *http.Request) {
	if !s.writeEnabled(w) {
		return
	}
	name := r.PathValue("name")
	if name == "" {
		s.fail(w, http.StatusBadRequest, "empty target name")
		return
	}
	rid := RequestID(r.Context())
	start := time.Now()
	_, root := telemetry.StartSpan(context.Background(), "delete")
	n, err := s.db.ApplyRemove(name)
	root.End()
	if err != nil {
		s.record("delete", rid, "failure", err.Error(), start, root)
		s.fail(w, writeStatus(err), "%v", err)
		return
	}
	s.record("delete", rid, "completed", "", start, root)
	resp := &WriteResponse{Removed: n}
	s.fillWriteState(resp)
	writeJSON(w, http.StatusOK, resp)
}

// handleCompact serves POST /v1/compact: fold the journal and
// tombstones into a new snapshot generation via the daemon's compaction
// hook. 501 when the daemon wired no hook (no snapshot path to persist
// to).
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if !s.writeEnabled(w) {
		return
	}
	if s.cfg.Compact == nil {
		s.fail(w, http.StatusNotImplemented, "no compaction hook configured")
		return
	}
	rid := RequestID(r.Context())
	start := time.Now()
	_, root := telemetry.StartSpan(context.Background(), "compact")
	gen, hwm, err := s.cfg.Compact()
	root.SetAttr("generation", float64(gen))
	root.End()
	if err != nil {
		s.record("compact", rid, "failure", err.Error(), start, root)
		s.fail(w, http.StatusInternalServerError, "compact: %v", err)
		return
	}
	s.record("compact", rid, "completed", "", start, root)
	writeJSON(w, http.StatusOK, map[string]any{
		"generation":     gen,
		"wal_seq":        hwm,
		"pending_writes": s.db.PendingWrites(),
	})
}

// StatsResponse is the GET /v1/stats reply.
type StatsResponse struct {
	StartTime     time.Time `json:"start_time"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Index         struct {
		Targets       int `json:"targets"`
		LiveTargets   int `json:"live_targets"`
		UniqueStrands int `json:"unique_strands"`
		TotalStrands  int `json:"total_strands"`
	} `json:"index"`
	// Writes reports the live write path: whether it is enabled, the
	// data generation (bumped per compaction), the journal high-water
	// mark, uncompacted write and tombstone counts, and — when a WAL is
	// attached — its on-disk statistics. A gateway refuses to merge
	// partials from a shard with nonzero pending writes or generation
	// (its manifest no longer describes that shard's corpus).
	Writes struct {
		Enabled       bool       `json:"enabled"`
		Generation    uint64     `json:"generation"`
		WALSeq        uint64     `json:"wal_seq"`
		PendingWrites int        `json:"pending_writes"`
		Tombstones    int        `json:"tombstones"`
		WAL           *wal.Stats `json:"wal,omitempty"`
	} `json:"writes"`
	// Snapshot identifies the index snapshot this replica serves —
	// format version, body checksum, and (when the corpus is one shard
	// of a split) the shard coordinates and fleet generation. A gateway
	// compares these across replicas to detect a mixed fleet before
	// trusting merged scores.
	Snapshot struct {
		Version    int    `json:"version,omitempty"`
		Checksum   string `json:"checksum,omitempty"`
		ShardID    int    `json:"shard_id"`
		ShardCount int    `json:"shard_count"`
		Generation string `json:"generation,omitempty"`
	} `json:"snapshot"`
	VCPCache struct {
		Pairs     int     `json:"pairs"`
		QueryKeys int     `json:"query_keys"`
		CapPairs  int     `json:"cap_pairs"`
		Evicted   uint64  `json:"evicted"`
		Hits      uint64  `json:"hits"`
		Misses    uint64  `json:"misses"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"vcp_cache"`
	// Prefilter reports the LSH sketch prefilter: active mode, sketch
	// geometry, the heuristic-tier containment threshold (0 = sound
	// tier only), and how much work it removed before the verifier —
	// whole pairs skipped plus single dead directions of surviving
	// pairs (cumulative across queries).
	Prefilter struct {
		Mode           string  `json:"mode"`
		LSHBands       int     `json:"lsh_bands"`
		LSHRows        int     `json:"lsh_rows"`
		MinContainment float64 `json:"min_containment"`
		PairsSkipped   uint64  `json:"pairs_skipped"`
		DeadDirections uint64  `json:"dead_directions"`
	} `json:"prefilter"`
	// Retrieval reports stage-3 candidate retrieval: the active mode
	// ("scan" walks every unique strand per query strand, "probe" looks
	// candidates up in the ANN table), cumulative probe counters, and
	// the probe table's shape (zeros until the table is built).
	Retrieval struct {
		Mode            string  `json:"mode"`
		Probes          uint64  `json:"probes"`
		Candidates      uint64  `json:"candidates"`
		SoundCandidates uint64  `json:"sound_candidates"`
		TableBuckets    int     `json:"table_buckets"`
		TableMaxPosting int     `json:"table_max_posting"`
		TableMeanPost   float64 `json:"table_mean_posting"`
		TableSkew       float64 `json:"table_skew"`
	} `json:"retrieval"`
	// Engine aggregates pipeline work across all queries: verifier
	// effort, pruning effectiveness, evaluation-kernel mode and time,
	// γ-invariant hoisting coverage, and cumulative per-stage wall time.
	Engine struct {
		Queries                 uint64             `json:"queries"`
		PairsPruned             uint64             `json:"pairs_pruned"`
		VerifierCalls           uint64             `json:"verifier_calls"`
		VerifierCorrespondences uint64             `json:"verifier_correspondences"`
		SigmoidK                float64            `json:"sigmoid_k"`
		Kernel                  string             `json:"kernel"`
		KernelSeconds           float64            `json:"kernel_seconds"`
		KernelPrefixInstrs      uint64             `json:"kernel_prefix_instrs"`
		KernelInstrs            uint64             `json:"kernel_instrs"`
		GammaBatch              int                `json:"gamma_batch"`
		GammaBatches            uint64             `json:"gamma_batches"`
		GammaBatchRows          uint64             `json:"gamma_batch_rows"`
		StageSeconds            map[string]float64 `json:"stage_seconds"`
	} `json:"engine"`
	Queries struct {
		Completed uint64 `json:"completed"`
		Failures  uint64 `json:"failures"`
		Timeouts  uint64 `json:"timeouts"`
		Rejected  uint64 `json:"rejected"`
		BadInput  uint64 `json:"bad_input"`
		InFlight  int    `json:"in_flight"`
		MaxIn     int    `json:"max_in_flight"`
	} `json:"queries"`
	// LatencyMS maps histogram bucket labels ("<=50ms", ">10000ms") to
	// completed-query counts. Empty buckets are omitted.
	LatencyMS map[string]uint64 `json:"latency_ms"`
	// LatencyQuantilesMS are the streamed P2 estimates behind the
	// esh_http_query_quantile_seconds gauges (zero until traffic).
	LatencyQuantilesMS map[string]float64 `json:"latency_quantiles_ms"`
	// Recorder summarizes the flight recorder (see /debug/slow and
	// /debug/queries for the records themselves).
	Recorder struct {
		Records     uint64  `json:"records"`
		Slow        uint64  `json:"slow"`
		ThresholdMS float64 `json:"threshold_ms"`
	} `json:"recorder"`
}

// quantilesMS shapes a Quantiles estimator as a {"p50": ms, ...} map,
// dropping NaN (empty-stream) entries so the struct stays JSON-safe.
func quantilesMS(lat *telemetry.Quantiles) map[string]float64 {
	out := make(map[string]float64, len(latencyQuantiles))
	for _, q := range latencyQuantiles {
		v := lat.Quantile(q)
		if math.IsNaN(v) {
			v = 0
		}
		out[fmt.Sprintf("p%g", q*100)] = v * 1000
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	dbs := s.db.Stats()
	resp := &StatsResponse{
		StartTime:     s.started.UTC(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	resp.Index.Targets = dbs.Targets
	resp.Index.LiveTargets = dbs.LiveTargets
	resp.Index.UniqueStrands = dbs.UniqueStrands
	resp.Index.TotalStrands = dbs.TotalStrands
	resp.Writes.Enabled = s.cfg.EnableWrites
	resp.Writes.Generation = dbs.Generation
	resp.Writes.WALSeq = dbs.WALSeq
	resp.Writes.PendingWrites = dbs.PendingWrites
	resp.Writes.Tombstones = dbs.Tombstones
	if s.cfg.WALStats != nil {
		ws := s.cfg.WALStats()
		resp.Writes.WAL = &ws
	}
	s.snapMu.RLock()
	resp.Snapshot.Version = s.snapshot.Version
	resp.Snapshot.Checksum = s.snapshot.Checksum
	s.snapMu.RUnlock()
	si := s.db.Shard()
	resp.Snapshot.ShardID = si.ID
	resp.Snapshot.ShardCount = si.Count
	resp.Snapshot.Generation = si.Generation
	resp.VCPCache.Pairs = dbs.VCPCachePairs
	resp.VCPCache.QueryKeys = dbs.VCPCacheQueries
	resp.VCPCache.CapPairs = dbs.VCPCacheCap
	resp.VCPCache.Evicted = dbs.VCPCacheEvicted
	resp.VCPCache.Hits = dbs.VCPCacheHits
	resp.VCPCache.Misses = dbs.VCPCacheMisses
	resp.VCPCache.HitRate = dbs.VCPCacheHitRate()
	resp.Prefilter.Mode = dbs.Prefilter
	resp.Prefilter.LSHBands = dbs.LSHBands
	resp.Prefilter.LSHRows = dbs.LSHRows
	resp.Prefilter.MinContainment = dbs.LSHMinContainment
	resp.Prefilter.PairsSkipped = dbs.LSHPairsSkipped
	resp.Prefilter.DeadDirections = dbs.LSHDeadDirections
	resp.Retrieval.Mode = dbs.Retrieval
	resp.Retrieval.Probes = dbs.RetrievalProbes
	resp.Retrieval.Candidates = dbs.RetrievalCandidates
	resp.Retrieval.SoundCandidates = dbs.RetrievalSoundCandidates
	resp.Retrieval.TableBuckets = dbs.RetrievalTableBuckets
	resp.Retrieval.TableMaxPosting = dbs.RetrievalTableMaxPost
	resp.Retrieval.TableMeanPost = dbs.RetrievalTableMeanPost
	resp.Retrieval.TableSkew = dbs.RetrievalTableSkew
	resp.Engine.Queries = dbs.Queries
	resp.Engine.PairsPruned = dbs.VCPPairsPruned
	resp.Engine.VerifierCalls = dbs.VerifierCalls
	resp.Engine.VerifierCorrespondences = dbs.VerifierCorrespondences
	resp.Engine.SigmoidK = s.db.Options().SigmoidK
	resp.Engine.Kernel = dbs.Kernel
	resp.Engine.KernelSeconds = float64(dbs.KernelNanos) / 1e9
	resp.Engine.KernelPrefixInstrs = dbs.KernelPrefixInstrs
	resp.Engine.KernelInstrs = dbs.KernelInstrs
	resp.Engine.GammaBatch = dbs.GammaBatch
	resp.Engine.GammaBatches = dbs.GammaBatches
	resp.Engine.GammaBatchRows = dbs.GammaBatchRows
	resp.Engine.StageSeconds = dbs.StageSeconds

	resp.Queries.Completed = s.outcomes["completed"].Value()
	resp.Queries.Failures = s.outcomes["failure"].Value()
	resp.Queries.Timeouts = s.outcomes["timeout"].Value()
	resp.Queries.Rejected = s.outcomes["rejected"].Value()
	resp.Queries.BadInput = s.outcomes["bad_input"].Value()
	resp.Queries.InFlight = len(s.sem)
	resp.Queries.MaxIn = s.cfg.MaxInFlight

	bounds, counts := s.latency.Snapshot()
	resp.LatencyMS = make(map[string]uint64, len(counts))
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if i < len(bounds) {
			resp.LatencyMS[fmt.Sprintf("<=%gms", bounds[i]*1000)] = n
		} else {
			resp.LatencyMS[fmt.Sprintf(">%gms", bounds[len(bounds)-1]*1000)] = n
		}
	}
	resp.LatencyQuantilesMS = quantilesMS(s.lat)
	resp.Recorder.Records = s.rec.Total()
	resp.Recorder.Slow = s.rec.SlowTotal()
	resp.Recorder.ThresholdMS = float64(s.rec.SlowThreshold().Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}
