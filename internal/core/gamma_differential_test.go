package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/stats"
	"repro/internal/vcp"
)

// TestGammaBatchDifferential is the end-to-end γ-batch guard: the width
// only changes how many correspondences ride in one kernel dispatch, so
// databases configured with G ∈ {1, 2, 8, 16} must produce rankings,
// raw scores and γ counts byte-identical to the scalar interpreter.
// Each width gets its own DB — the VCP cache is per-database, so every
// width actually runs its own γ loop rather than replaying a cached
// score. The batch accounting telemetry must engage at every width.
func TestGammaBatchDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential gamma run is slow")
	}
	procs := buildDiffCorpus(t)

	scalarOpts := Options{}
	scalarOpts.VCP.Kernel = vcp.KernelScalar
	dbScalar := NewDB(scalarOpts)
	fillDB(t, dbScalar, procs)

	widths := []int{1, 2, 8, 16}
	dbs := make([]*DB, len(widths))
	for i, g := range widths {
		opts := Options{}
		opts.VCP.GammaBatch = g
		dbs[i] = NewDB(opts)
		if got := dbs[i].Stats().GammaBatch; got != g {
			t.Fatalf("GammaBatch = %d, want %d", got, g)
		}
		fillDB(t, dbs[i], procs)
	}

	qtc, ok := compile.ByName("clang-3.5")
	if !ok {
		t.Fatal("query toolchain missing")
	}
	vulns := corpus.Vulns()
	if len(vulns) > 2 {
		vulns = vulns[:2]
	}
	for _, v := range vulns {
		q, err := corpus.CompileVuln(v, qtc, false)
		if err != nil {
			t.Fatalf("compile query %s: %v", v.Alias, err)
		}
		repScalar, err := dbScalar.Query(q)
		if err != nil {
			t.Fatalf("query %s (scalar): %v", v.Alias, err)
		}
		for i, g := range widths {
			rep, err := dbs[i].Query(q)
			if err != nil {
				t.Fatalf("query %s (G=%d): %v", v.Alias, g, err)
			}
			for _, m := range []stats.Method{stats.Esh, stats.SLOG, stats.SVCP} {
				if s, b := rankingNames(repScalar, m), rankingNames(rep, m); s != b {
					t.Errorf("query %s G=%d: %v ranking diverges from scalar", v.Alias, g, m)
				}
			}
			var drift []string
			for r := range repScalar.Results {
				s, b := repScalar.Results[r], rep.Results[r]
				if s.Target.Name != b.Target.Name || s.GES != b.GES || s.SLOG != b.SLOG || s.SVCP != b.SVCP {
					drift = append(drift, fmt.Sprintf(
						"  %-52s scalar GES=%.9f G=%d GES=%.9f", s.Target.Name, s.GES, g, b.GES))
				}
			}
			if len(drift) > 0 {
				t.Errorf("query %s G=%d: %d targets with non-identical scores:\n%s",
					v.Alias, g, len(drift), strings.Join(drift[:min(5, len(drift))], "\n"))
			}
		}
	}

	ss := dbScalar.Stats()
	for i, g := range widths {
		bs := dbs[i].Stats()
		if bs.VerifierCorrespondences != ss.VerifierCorrespondences {
			t.Errorf("G=%d: γ count %d diverges from scalar %d",
				g, bs.VerifierCorrespondences, ss.VerifierCorrespondences)
		}
		if bs.GammaBatches == 0 {
			t.Errorf("G=%d: batch telemetry not recorded", g)
		}
		if bs.GammaBatchRows < bs.GammaBatches {
			t.Errorf("G=%d: %d rows < %d batches", g, bs.GammaBatchRows, bs.GammaBatches)
		}
		if bs.GammaBatchRows > bs.GammaBatches*uint64(g) {
			t.Errorf("G=%d: %d rows over %d batches exceeds the width",
				g, bs.GammaBatchRows, bs.GammaBatches)
		}
		t.Logf("G=%2d: %d γ over %d batches (%d rows, mean occupancy %.2f)",
			g, bs.VerifierCorrespondences, bs.GammaBatches, bs.GammaBatchRows,
			float64(bs.GammaBatchRows)/float64(bs.GammaBatches*uint64(g)))
	}

	// Runtime reconfiguration: flipping the width on a live DB must keep
	// answers fixed, and invalid widths must be rejected.
	if err := dbs[0].ConfigureGammaBatch(vcp.MaxGammaBatch + 1); err == nil {
		t.Error("ConfigureGammaBatch accepted an over-limit width")
	}
	if err := dbs[0].ConfigureGammaBatch(-1); err == nil {
		t.Error("ConfigureGammaBatch accepted a negative width")
	}
	if err := dbs[0].ConfigureGammaBatch(16); err != nil {
		t.Fatal(err)
	}
	if got := dbs[0].Stats().GammaBatch; got != 16 {
		t.Errorf("GammaBatch after reconfigure = %d, want 16", got)
	}
	q, err := corpus.CompileVuln(vulns[0], qtc, false)
	if err != nil {
		t.Fatal(err)
	}
	repScalar, err := dbScalar.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	repFlip, err := dbs[0].Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rankingNames(repFlip, stats.Esh) != rankingNames(repScalar, stats.Esh) {
		t.Error("ranking changed after ConfigureGammaBatch(16)")
	}
}
