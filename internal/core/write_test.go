package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/vcp"
	"repro/internal/wal"
)

// The live write path is an optimisation over rebuilding the index, not
// a new indexing method: after any interleaving of adds, tombstones,
// and compactions, queries must be bit-identical — same ranking, same
// Float64bits — to a from-scratch index of the surviving targets in
// their original add order. This file is that differential harness,
// plus the crash-recovery bridge: a WAL truncated or garbled at an
// arbitrary byte recovers a prefix, and the replayed index is again
// bit-identical to a fresh build from the surviving writes.

// genProc emits a small single-block procedure whose strand content
// varies with i, so the pool has many distinct strands with occasional
// structural overlap (the shift/xor tail).
func genProc(i int) string {
	return fmt.Sprintf(`proc synth_%d
	mov rax, rdi
	imul rax, %d
	add rax, 0x%x
	mov rcx, rax
	shr rcx, %d
	xor rax, rcx
	add rax, rsi
	ret
endp`, i, 3+2*i, 0x11+i*7, 1+(i%7))
}

// wop is one step of a write script.
type wop struct {
	kind string // "add", "del", "compact"
	src  string // add: asm source
	name string // del: target name
}

func addOp(src string) wop  { return wop{kind: "add", src: src} }
func delOp(name string) wop { return wop{kind: "del", name: name} }
func compactOp() wop        { return wop{kind: "compact"} }
func synthOps(is ...int) []wop {
	var ops []wop
	for _, i := range is {
		ops = append(ops, addOp(genProc(i)))
	}
	return ops
}

// applyScript drives ops through the live write path. Duplicate adds
// and misses are allowed when lax (the randomized script generator does
// not track liveness precisely).
func applyScript(t *testing.T, db *DB, ops []wop, lax bool) {
	t.Helper()
	for i, op := range ops {
		switch op.kind {
		case "add":
			err := db.ApplyAdd(parse(t, op.src))
			if err != nil && !(lax && errors.Is(err, ErrDuplicateTarget)) {
				t.Fatalf("op %d: add: %v", i, err)
			}
		case "del":
			_, err := db.ApplyRemove(op.name)
			if err != nil && !(lax && errors.Is(err, ErrTargetNotFound)) {
				t.Fatalf("op %d: del %s: %v", i, op.name, err)
			}
		case "compact":
			if _, _, err := db.Compact(nil, nil); err != nil {
				t.Fatalf("op %d: compact: %v", i, err)
			}
		}
	}
}

// survivors replays the script against a reference model and returns
// the sources of the targets a from-scratch rebuild would index, in
// original add order (the order the live path's H0 normalisation and
// compaction both preserve).
func survivors(t *testing.T, ops []wop) []string {
	t.Helper()
	type entry struct {
		name, src string
		live      bool
	}
	var m []entry
	for _, op := range ops {
		switch op.kind {
		case "add":
			name := parse(t, op.src).Name
			dup := false
			for _, e := range m {
				if e.live && e.name == name {
					dup = true
				}
			}
			if !dup {
				m = append(m, entry{name, op.src, true})
			}
		case "del":
			for i := range m {
				if m[i].name == op.name {
					m[i].live = false
				}
			}
		}
	}
	var out []string
	for _, e := range m {
		if e.live {
			out = append(out, e.src)
		}
	}
	return out
}

func buildFresh(t *testing.T, opts Options, srcs []string) *DB {
	t.Helper()
	db := NewDB(opts)
	for _, src := range srcs {
		if err := db.AddTarget(parse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// diffReports fails unless the two reports are bit-identical: same
// targets in the same order, and every score's Float64bits equal.
func diffReports(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, fresh rebuild has %d", label, len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		g, w := got.Results[i], want.Results[i]
		if g.Target.Name != w.Target.Name {
			t.Fatalf("%s: rank %d is %s, fresh rebuild ranks %s", label, i, g.Target.Name, w.Target.Name)
		}
		for _, sc := range []struct {
			field string
			g, w  float64
		}{{"GES", g.GES, w.GES}, {"SVCP", g.SVCP, w.SVCP}, {"SLOG", g.SLOG, w.SLOG}} {
			if math.Float64bits(sc.g) != math.Float64bits(sc.w) {
				t.Fatalf("%s: rank %d (%s) %s = %x, fresh rebuild %x",
					label, i, g.Target.Name, sc.field, math.Float64bits(sc.g), math.Float64bits(sc.w))
			}
		}
	}
}

func writeTestOptions(mode string) Options {
	opts := Options{VCP: vcp.Config{MinVars: 3}}
	if mode == "probe" {
		// Sound tier only: the probe differential claim is bit-identity,
		// which the heuristic tier deliberately trades away.
		opts.Retrieval = RetrievalProbe
	}
	return opts
}

func TestWriteDifferential(t *testing.T) {
	scripts := []struct {
		name string
		ops  []wop
	}{
		{"adds-only", synthOps(1, 2, 3, 4)},
		{"add-del", append(synthOps(1, 2, 3), delOp("synth_2"))},
		{"del-then-add-back", append(append(synthOps(1, 2, 3), delOp("synth_2")), addOp(genProc(2)))},
		{"del-first-target", append(synthOps(1, 2, 3), delOp("synth_1"))},
		{"del-all-then-add", append(append(synthOps(1, 2), delOp("synth_1"), delOp("synth_2")), synthOps(3, 4)...)},
		{"compact-mid-stream", append(append(synthOps(1, 2, 3), delOp("synth_1"), compactOp()), synthOps(5, 6)...)},
		{"compact-twice", append(append(append(synthOps(1, 2), compactOp(), delOp("synth_2")), synthOps(3)...), compactOp(), delOp("synth_1"))},
		{"multiblock-mix", append([]wop{addOp(iccStyle), addOp(unrelated)}, append(synthOps(7, 8), delOp("strlen_like"), compactOp(), addOp(unrelated))...)},
		{"shared-strands", []wop{addOp(iccStyle), addOp(renameProc(iccStyle, "checksum_icc", "checksum_copy")), delOp("checksum_icc"), addOp(unrelated)}},
	}
	queries := []string{gccStyle, genProc(3), unrelated}

	for _, mode := range []string{"scan", "probe"} {
		for _, sc := range scripts {
			t.Run(mode+"/"+sc.name, func(t *testing.T) {
				opts := writeTestOptions(mode)
				live := NewDB(opts)
				applyScript(t, live, sc.ops, false)
				fresh := buildFresh(t, opts, survivors(t, sc.ops))

				if live.NumTargets()-live.Tombstones() != fresh.NumTargets() {
					t.Fatalf("live corpus has %d live targets, fresh rebuild %d",
						live.NumTargets()-live.Tombstones(), fresh.NumTargets())
				}
				for qi, qsrc := range queries {
					q := parse(t, qsrc)
					got, err := live.Query(q)
					if err != nil {
						t.Fatalf("query %d (live): %v", qi, err)
					}
					want, err := fresh.Query(q)
					if err != nil {
						t.Fatalf("query %d (fresh): %v", qi, err)
					}
					diffReports(t, fmt.Sprintf("query %d", qi), got, want)
				}
			})
		}
	}
}

// renameProc swaps the procedure name in canonical asm text, giving a
// second live target with byte-identical strands.
func renameProc(src, from, to string) string {
	p, err := asm.ParseProc(src)
	if err != nil {
		panic(err)
	}
	_ = p
	out := ""
	for i := 0; i < len(src); i++ {
		if i+len(from) <= len(src) && src[i:i+len(from)] == from {
			out += to
			i += len(from) - 1
			continue
		}
		out += string(src[i])
	}
	return out
}

// TestWriteDifferentialRandomized drives fixed-seed random scripts
// through both modes: every prefix ends with queries compared against a
// from-scratch rebuild, so compaction points and tombstone density vary
// arbitrarily.
func TestWriteDifferentialRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized differential run is slow")
	}
	for _, mode := range []string{"scan", "probe"} {
		t.Run(mode, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			opts := writeTestOptions(mode)
			var ops []wop
			next := 0
			for round := 0; round < 4; round++ {
				for step := 0; step < 8; step++ {
					switch r := rng.Intn(10); {
					case r < 6:
						ops = append(ops, addOp(genProc(next)))
						next++
					case r < 9 && next > 0:
						ops = append(ops, delOp(fmt.Sprintf("synth_%d", rng.Intn(next))))
					default:
						ops = append(ops, compactOp())
					}
				}
				live := NewDB(opts)
				applyScript(t, live, ops, true)
				fresh := buildFresh(t, opts, survivors(t, ops))
				for _, qsrc := range []string{genProc(rng.Intn(next + 1)), gccStyle} {
					q := parse(t, qsrc)
					got, err := live.Query(q)
					if err != nil {
						t.Fatal(err)
					}
					want, err := fresh.Query(q)
					if err != nil {
						t.Fatal(err)
					}
					diffReports(t, fmt.Sprintf("round %d query %s", round, q.Name), got, want)
				}
			}
		})
	}
}

// TestWriteDifferentialEagerRebuild forces the probe path's eager
// retrieval-table rebuild (RetrievalMaxDelta=1 rebuilds on nearly every
// add) and the deferred path (negative leaves the delta to the overlay
// until compaction); both must stay bit-identical.
func TestWriteDifferentialEagerRebuild(t *testing.T) {
	for _, maxDelta := range []int{1, -1} {
		t.Run(fmt.Sprintf("maxdelta=%d", maxDelta), func(t *testing.T) {
			opts := writeTestOptions("probe")
			opts.RetrievalMaxDelta = maxDelta
			ops := append(append(synthOps(1, 2, 3), delOp("synth_2")), synthOps(4, 5)...)
			live := NewDB(opts)
			applyScript(t, live, ops, false)
			fresh := buildFresh(t, writeTestOptions("probe"), survivors(t, ops))
			q := parse(t, gccStyle)
			got, err := live.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			diffReports(t, "eager-rebuild", got, want)
		})
	}
}

// journalLog adapts *wal.Log to the Journal interface for the
// crash-recovery bridge (the eshd daemon carries its own copy; tests
// use this one so core does not import cmd code).
type journalLog struct{ log *wal.Log }

func (j journalLog) LogAdd(name, body string) (uint64, error) {
	return j.log.Append(wal.OpAdd, name, body)
}
func (j journalLog) LogRemove(name string) (uint64, error) {
	return j.log.Append(wal.OpDelete, name, "")
}

// TestCrashRecoveryDifferential journals a write script, then crashes
// at every byte-boundary of interest: the WAL is cut (or garbled) at
// each record boundary and mid-record, recovered, replayed into a fresh
// engine, and the recovered engine's Query must be bit-identical to a
// from-scratch index of exactly the surviving prefix's targets. This is
// the acceptance claim: an acknowledged write either survives whole or
// the tail is dropped cleanly — never a half-applied corpus.
func TestCrashRecoveryDifferential(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "crash.wal")
	log, recs, err := wal.Open(walPath, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}

	ops := append(append(synthOps(1, 2, 3), delOp("synth_2")), append(synthOps(4), delOp("synth_1"))...)
	db := NewDB(writeTestOptions("scan"))
	db.SetJournal(journalLog{log})
	var bounds []int64 // file size after each journaled record
	for i, op := range ops {
		switch op.kind {
		case "add":
			if err := db.ApplyAdd(parse(t, op.src)); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		case "del":
			if _, err := db.ApplyRemove(op.name); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		st := log.Stats()
		bounds = append(bounds, st.Bytes)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != bounds[len(bounds)-1] {
		t.Fatalf("WAL is %d bytes, last record ends at %d", len(full), bounds[len(bounds)-1])
	}

	// Cut points: every record boundary, and three bytes past each (a
	// torn mid-record tail). A garble run flips a byte in the tail
	// record instead of cutting.
	check := func(t *testing.T, data []byte, nSurvive int) {
		p := filepath.Join(t.TempDir(), "recovered.wal")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rlog, rrecs, err := wal.Open(p, wal.Options{Sync: wal.SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		defer rlog.Close()
		if len(rrecs) != nSurvive {
			t.Fatalf("recovered %d records, want %d", len(rrecs), nSurvive)
		}
		rec := NewDB(writeTestOptions("scan"))
		for _, r := range rrecs {
			switch r.Op {
			case wal.OpAdd:
				if err := rec.ReplayAdd(parse(t, r.Body), r.Seq); err != nil {
					t.Fatal(err)
				}
			case wal.OpDelete:
				if err := rec.ReplayRemove(r.Name, r.Seq); err != nil {
					t.Fatal(err)
				}
			}
		}
		if rec.WALSeq() != uint64(nSurvive) {
			t.Fatalf("replayed high-water mark %d, want %d", rec.WALSeq(), nSurvive)
		}
		fresh := buildFresh(t, writeTestOptions("scan"), survivors(t, ops[:nSurvive]))
		for _, qsrc := range []string{gccStyle, genProc(4)} {
			q := parse(t, qsrc)
			got, err := rec.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			diffReports(t, "post-recovery "+q.Name, got, want)
		}
	}

	for k := 0; k <= len(bounds); k++ {
		cut := int64(0)
		if k > 0 {
			cut = bounds[k-1]
		}
		t.Run(fmt.Sprintf("cut-at-record-%d", k), func(t *testing.T) {
			check(t, full[:cut], k)
		})
		if cut < int64(len(full)) {
			t.Run(fmt.Sprintf("torn-after-record-%d", k), func(t *testing.T) {
				// A torn write 3 bytes into the next record: the tail
				// frame is incomplete, so exactly k records survive.
				end := cut + 3
				if end > int64(len(full)) {
					end = int64(len(full))
				}
				check(t, full[:end], k)
			})
			t.Run(fmt.Sprintf("garbled-record-%d", k), func(t *testing.T) {
				// Flip a byte inside record k+1's frame: CRC rejects it
				// and everything after it, so k records survive.
				data := append([]byte(nil), full...)
				data[cut+5] ^= 0x40
				check(t, data, k)
			})
		}
	}
}

// TestCompactPersistCrash simulates SIGKILL during compaction: if the
// persist callback fails (the snapshot never lands), the engine keeps
// serving the old generation and the WAL is untouched, so a restart
// replays every acknowledged write.
func TestCompactPersistCrash(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "c.wal")
	log, _, err := wal.Open(walPath, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(writeTestOptions("scan"))
	db.SetJournal(journalLog{log})
	for _, i := range []int{1, 2, 3} {
		if err := db.ApplyAdd(parse(t, genProc(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.ApplyRemove("synth_2"); err != nil {
		t.Fatal(err)
	}

	boom := fmt.Errorf("disk full")
	if _, _, err := db.Compact(func(*Export) error { return boom }, nil); err == nil {
		t.Fatal("compact with failing persist did not error")
	}
	if db.DataGeneration() != 0 || db.PendingWrites() != 4 || db.Tombstones() != 1 {
		t.Fatalf("failed compaction mutated state: gen=%d pending=%d tombstones=%d",
			db.DataGeneration(), db.PendingWrites(), db.Tombstones())
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the WAL and replay into a fresh engine.
	log2, recs, err := wal.Open(walPath, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(recs) != 4 {
		t.Fatalf("restart replayed %d records, want 4", len(recs))
	}
	rec := NewDB(writeTestOptions("scan"))
	for _, r := range recs {
		switch r.Op {
		case wal.OpAdd:
			if err := rec.ReplayAdd(parse(t, r.Body), r.Seq); err != nil {
				t.Fatal(err)
			}
		case wal.OpDelete:
			if err := rec.ReplayRemove(r.Name, r.Seq); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := parse(t, gccStyle)
	got, err := rec.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	diffReports(t, "post-restart", got, want)
}

// TestCompactRoundTrip compacts through a persist callback that saves
// the export, then reloads it: the reloaded engine carries the new
// generation and high-water mark and answers bit-identically.
func TestCompactRoundTrip(t *testing.T) {
	db := NewDB(writeTestOptions("scan"))
	for _, i := range []int{1, 2, 3, 4} {
		if err := db.ApplyAdd(parse(t, genProc(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.ApplyRemove("synth_3"); err != nil {
		t.Fatal(err)
	}
	var saved *Export
	cleaned := uint64(0)
	gen, hwm, err := db.Compact(
		func(ex *Export) error { saved = ex; return nil },
		func(h uint64) error { cleaned = h; return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || hwm != 0 || cleaned != 0 {
		// No journal: seq stays 0, but the generation still advances.
		t.Fatalf("gen=%d hwm=%d cleaned=%d", gen, hwm, cleaned)
	}
	if saved == nil {
		t.Fatal("persist callback never ran")
	}
	if saved.Generation != 1 {
		t.Fatalf("export generation %d, want 1", saved.Generation)
	}
	if db.PendingWrites() != 0 || db.Tombstones() != 0 {
		t.Fatalf("post-compact pending=%d tombstones=%d", db.PendingWrites(), db.Tombstones())
	}

	re, err := FromExport(saved)
	if err != nil {
		t.Fatal(err)
	}
	if re.DataGeneration() != 1 {
		t.Fatalf("reloaded generation %d, want 1", re.DataGeneration())
	}
	q := parse(t, gccStyle)
	got, err := re.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	diffReports(t, "reloaded", got, want)

	// A second compaction with nothing pending is a no-op.
	gen2, _, err := db.Compact(func(*Export) error {
		t.Fatal("no-op compaction ran persist")
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen2 != 1 {
		t.Fatalf("no-op compaction moved generation to %d", gen2)
	}
}
