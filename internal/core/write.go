package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/sketch"
	"repro/internal/vcp"
)

// This file is the live write path: durable, crash-safe corpus mutation
// under a serving daemon. The concurrency contract is two locks with a
// fixed order:
//
//   - writeMu serializes writers (ApplyAdd, ApplyRemove, Replay*,
//     Compact, Export, the Configure* calls). Validation, journaling and
//     sketch building all happen under writeMu alone, so queries keep
//     flowing through the expensive part of a write.
//   - cfgMu (held second, briefly) publishes the new state. Everything a
//     query reads is snapshotted once at entry under cfgMu.RLock; writers
//     install fresh slices (copy-on-write) or append beyond the lengths
//     snapshotted readers hold, so an in-flight query's view stays
//     internally consistent for its whole lifetime.
//
// Durability is write-ahead: a write is acknowledged only after its
// journal record is on disk (per the journal's fsync policy) AND applied
// in memory. The in-memory apply step is infallible by construction —
// every fallible operation (decompose, prepare, summarize, journal I/O)
// runs before it — so an acknowledged write can never be half-applied.

// Journal is the write-ahead log the DB appends to before applying a
// write in memory. Implemented by an adapter over internal/wal; kept as
// an interface so core carries no dependency on the log format and tests
// can inject failures. Both methods return the record's sequence number;
// on error nothing may have been written and the write is not applied.
type Journal interface {
	LogAdd(name, body string) (uint64, error)
	LogRemove(name string) (uint64, error)
}

// ErrDuplicateTarget is returned by ApplyAdd when a live target with the
// same name is already indexed (the server maps it to 409).
var ErrDuplicateTarget = errors.New("core: duplicate target name")

// ErrTargetNotFound is returned by ApplyRemove when no live target has
// the given name (the server maps it to 404).
var ErrTargetNotFound = errors.New("core: target not found")

// ErrJournal wraps write-ahead-log append failures (the server maps it
// to 500: the write was valid but could not be made durable, and was
// not applied).
var ErrJournal = errors.New("core: journal append failed")

// SetJournal installs the write-ahead journal acknowledged writes are
// logged to. A nil journal (the default) makes writes memory-only —
// the replay path and tests use that.
func (db *DB) SetJournal(j Journal) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.journal = j
}

// ApplyAdd indexes one procedure through the live write path: validate
// and prepare, journal, then apply in memory. On any error the corpus is
// unchanged and nothing was acknowledged. Safe to call concurrently with
// Query; concurrent writers serialize.
func (db *DB) ApplyAdd(p *asm.Proc) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	_, err := db.applyAdd(p, true, 0)
	return err
}

// ReplayAdd re-applies a journaled add during startup replay: identical
// in-memory effect to the ApplyAdd that produced the record, minus the
// journaling. seq becomes the new high-water mark.
func (db *DB) ReplayAdd(p *asm.Proc, seq uint64) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	_, err := db.applyAdd(p, false, seq)
	return err
}

// ApplyRemove tombstones every live target with the given name and
// returns how many it removed. The targets' strands stay resident until
// the next compaction but stop contributing to candidates, scores and
// the H0 normalisation immediately — post-remove scores are
// bit-identical to a from-scratch rebuild of the surviving corpus.
func (db *DB) ApplyRemove(name string) (int, error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	return db.applyRemove(name, true, 0)
}

// ReplayRemove re-applies a journaled tombstone during startup replay.
func (db *DB) ReplayRemove(name string, seq uint64) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	_, err := db.applyRemove(name, false, seq)
	return err
}

// applyAdd is the shared body of ApplyAdd and ReplayAdd; callers hold
// writeMu. Ordering is the durability argument: (1) reject duplicates,
// (2) run every fallible step (decompose, prepare, summarize), (3)
// journal, (4) apply in memory — step 4 cannot fail, so a journaled
// write is always fully applied before it is acknowledged.
func (db *DB) applyAdd(p *asm.Proc, journal bool, replaySeq uint64) (uint64, error) {
	for ti, t := range db.targets {
		if t.Name == p.Name && (db.live == nil || db.live[ti]) {
			return 0, fmt.Errorf("%w: %s", ErrDuplicateTarget, p.Name)
		}
	}

	kept, nBlocks, err := decompose(p, db.opts)
	if err != nil {
		return 0, fmt.Errorf("core: add %s: %w", p.Name, err)
	}

	// Prepare and summarize every novel strand up front. newByKey maps
	// a novel canonical key to its position in the pending slices; keys
	// already indexed resolve through byKey (stable under writeMu).
	type pending struct {
		prep *vcp.Prepared
		sum  sketch.Summary
	}
	var news []pending
	newByKey := map[string]int{}
	keys := make([]string, len(kept))
	for i, s := range kept {
		key := s.CanonicalKey()
		keys[i] = key
		if _, ok := db.byKey[key]; ok {
			continue
		}
		if _, ok := newByKey[key]; ok {
			continue
		}
		prep := vcp.Prepare(s, db.opts.VCP)
		if prep.Err() != nil {
			return 0, fmt.Errorf("core: add %s: prepare strand: %w", p.Name, prep.Err())
		}
		skStart := time.Now()
		sum := sketch.Summarize(s, db.sketchCfg)
		db.hSketchBuild.Observe(time.Since(skStart).Seconds())
		newByKey[key] = len(news)
		news = append(news, pending{prep: prep, sum: sum})
	}

	// Heavy shared-structure rebuilds, still outside cfgMu: novel
	// strands force a fresh LSH index (sketch.Index is not safe to
	// mutate under concurrent Candidates readers), and a stale-enough
	// probe table is rebuilt eagerly rather than growing the per-query
	// delta overlay without bound.
	var (
		newUniq  []*vcp.Prepared
		newSums  []sketch.Summary
		newIdx   *sketch.Index
		newRetr  *sketch.RetrievalIndex
		haveRetr bool
	)
	if len(news) > 0 {
		newUniq = make([]*vcp.Prepared, 0, len(db.uniq)+len(news))
		newUniq = append(newUniq, db.uniq...)
		newSums = make([]sketch.Summary, 0, len(db.sums)+len(news))
		newSums = append(newSums, db.sums...)
		for _, pd := range news {
			newUniq = append(newUniq, pd.prep)
			newSums = append(newSums, pd.sum)
		}
		newIdx = sketch.NewIndex(db.sketchCfg)
		for _, sum := range newSums {
			newIdx.Add(sum)
		}
		if db.retr != nil {
			maxDelta := db.opts.RetrievalMaxDelta
			if maxDelta == 0 {
				maxDelta = DefaultRetrievalMaxDelta
			}
			if db.retr.Stale(len(newSums), maxDelta) {
				start := time.Now()
				newRetr = sketch.BuildRetrieval(newSums, db.sketchCfg)
				db.hRetrBuild.Observe(time.Since(start).Seconds())
				haveRetr = true
			}
		}
	}

	seq := replaySeq
	if journal && db.journal != nil {
		seq, err = db.journal.LogAdd(p.Name, p.String())
		if err != nil {
			return 0, fmt.Errorf("%w: add %s: %v", ErrJournal, p.Name, err)
		}
	}

	// Infallible in-memory apply. counts is cloned (readers hold the old
	// slice); uniq/sums swap to the extended copies built above.
	db.cfgMu.Lock()
	newCounts := make([]int, len(db.counts), len(db.counts)+len(news))
	copy(newCounts, db.counts)
	if len(news) > 0 {
		newCounts = newCounts[:len(db.counts)+len(news)]
		base := len(db.uniq)
		for key, k := range newByKey {
			db.byKey[key] = base + k
		}
		db.uniq = newUniq
		db.sums = newSums
		db.sketchIdx = newIdx
		if haveRetr {
			db.retr = newRetr
		}
		for _, pd := range news {
			pre, tot := pd.prep.InstrCounts()
			db.mPrefixInstrs.Add(uint64(pre))
			db.mKernelInstrs.Add(uint64(tot))
		}
	}
	t := &Target{
		Name:       p.Name,
		Source:     p.Source,
		NumBlocks:  nBlocks,
		NumStrands: len(kept),
	}
	pos := map[int]int{}
	for _, key := range keys {
		idx := db.byKey[key]
		newCounts[idx]++
		db.total++
		if k, dup := pos[idx]; dup {
			t.strandMult[k]++
		} else {
			pos[idx] = len(t.strandIdx)
			t.strandIdx = append(t.strandIdx, idx)
			t.strandMult = append(t.strandMult, 1)
		}
	}
	db.counts = newCounts
	db.targets = append(db.targets, t)
	if db.live != nil {
		db.live = append(db.live, true)
		db.h0Order = db.computeH0Order()
	}
	db.pendingWrites++
	if seq != 0 {
		db.walSeq = seq
	}
	db.cfgMu.Unlock()
	db.mWritesAdd.Inc()
	return seq, nil
}

// applyRemove is the shared body of ApplyRemove and ReplayRemove;
// callers hold writeMu. Same ordering as applyAdd: journal first, then
// an infallible in-memory apply.
func (db *DB) applyRemove(name string, journal bool, replaySeq uint64) (int, error) {
	var hits []int
	for ti, t := range db.targets {
		if t.Name == name && (db.live == nil || db.live[ti]) {
			hits = append(hits, ti)
		}
	}
	if len(hits) == 0 {
		return 0, fmt.Errorf("%w: %s", ErrTargetNotFound, name)
	}

	seq := replaySeq
	if journal && db.journal != nil {
		var err error
		seq, err = db.journal.LogRemove(name)
		if err != nil {
			return 0, fmt.Errorf("%w: remove %s: %v", ErrJournal, name, err)
		}
	}

	db.cfgMu.Lock()
	newLive := make([]bool, len(db.targets))
	if db.live == nil {
		for i := range newLive {
			newLive[i] = true
		}
	} else {
		copy(newLive, db.live)
	}
	newCounts := make([]int, len(db.counts))
	copy(newCounts, db.counts)
	for _, ti := range hits {
		newLive[ti] = false
		t := db.targets[ti]
		for k, j := range t.strandIdx {
			newCounts[j] -= t.strandMult[k]
			db.total -= t.strandMult[k]
		}
	}
	db.counts = newCounts
	db.live = newLive
	db.tombstones += len(hits)
	db.h0Order = db.computeH0Order()
	db.pendingWrites++
	if seq != 0 {
		db.walSeq = seq
	}
	db.cfgMu.Unlock()
	db.mWritesDel.Inc()
	return len(hits), nil
}

// computeH0Order derives the H0 accumulation permutation for the
// current tombstone state: the surviving strands in the first-seen order
// a from-scratch rebuild of the live targets (in add order) would assign
// them. Within a target, strandIdx is already first-occurrence order, so
// walking live targets in order and taking each strand's first
// appearance reproduces the rebuild's AddTarget order exactly. Returns
// nil when no tombstones exist (index order is already the rebuild
// order). Callers hold writeMu; the result is a fresh slice, installed
// under cfgMu by the caller-side apply step.
func (db *DB) computeH0Order() []int32 {
	if db.live == nil {
		return nil
	}
	order := make([]int32, 0, len(db.uniq))
	seen := make([]bool, len(db.uniq))
	for ti, t := range db.targets {
		if !db.live[ti] {
			continue
		}
		for _, j := range t.strandIdx {
			if !seen[j] {
				seen[j] = true
				order = append(order, int32(j))
			}
		}
	}
	return order
}

// liveView is the remapped, rebuild-equivalent form of a possibly-dirty
// corpus: dead targets dropped, dead strands dropped, surviving strands
// renumbered into the first-seen order a from-scratch rebuild would use.
// identity reports that no remapping was needed (no tombstones) and the
// slices alias the DB's own.
type liveView struct {
	identity bool
	uniq     []*vcp.Prepared
	counts   []int
	sums     []sketch.Summary
	byKey    map[string]int
	targets  []*Target
	total    int
}

// buildLiveView computes the live view; callers hold writeMu (which
// freezes every field read here).
func (db *DB) buildLiveView() liveView {
	if db.live == nil {
		return liveView{
			identity: true,
			uniq:     db.uniq, counts: db.counts, sums: db.sums,
			byKey: db.byKey, targets: db.targets, total: db.total,
		}
	}
	order := db.computeH0Order() // old index of the k-th surviving strand
	newIdx := make([]int, len(db.uniq))
	for i := range newIdx {
		newIdx[i] = -1
	}
	for k, j := range order {
		newIdx[j] = k
	}
	lv := liveView{
		uniq:   make([]*vcp.Prepared, len(order)),
		counts: make([]int, len(order)),
		sums:   make([]sketch.Summary, len(order)),
		byKey:  make(map[string]int, len(order)),
	}
	for k, j := range order {
		lv.uniq[k] = db.uniq[j]
		lv.counts[k] = db.counts[j]
		lv.sums[k] = db.sums[j]
		lv.byKey[lv.uniq[k].Key()] = k
		lv.total += lv.counts[k]
	}
	lv.targets = make([]*Target, 0, len(db.targets)-db.tombstones)
	for ti, t := range db.targets {
		if !db.live[ti] {
			continue
		}
		nt := &Target{
			Name:       t.Name,
			Source:     t.Source,
			NumBlocks:  t.NumBlocks,
			NumStrands: t.NumStrands,
			strandIdx:  make([]int, len(t.strandIdx)),
			strandMult: append([]int(nil), t.strandMult...),
		}
		for k, j := range t.strandIdx {
			nt.strandIdx[k] = newIdx[j]
		}
		lv.targets = append(lv.targets, nt)
	}
	return lv
}

// Compact folds the uncompacted writes and tombstones into a new
// snapshot generation: remap the corpus to its rebuild-equivalent live
// view, persist it (persist is typically index.SaveExportFile — an
// atomic temp+rename), atomically swap the in-memory state to the
// remapped form, then let cleanup truncate the journal up to the
// persisted high-water mark (typically wal.Log.Rewrite). Queries never
// block: in-flight ones finish on the old state, later ones snapshot the
// new. Writers stall for the duration (writeMu is held throughout,
// which is also what keeps journal appends from racing the truncation).
//
// Crash safety, window by window: before persist's rename the old
// snapshot plus a full journal replay reproduce everything; after the
// rename but before cleanup the new snapshot's recorded high-water mark
// makes startup replay skip the already-folded records. Either way no
// acknowledged write is lost.
//
// Returns the new generation and the folded high-water mark. With
// nothing to compact it returns immediately without bumping the
// generation. A persist error aborts the compaction with the in-memory
// state untouched; a cleanup error is returned but the swap has already
// happened (harmless: stale journal records are skipped on replay).
func (db *DB) Compact(persist func(*Export) error, cleanup func(hwm uint64) error) (gen, hwm uint64, err error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()

	db.cfgMu.RLock()
	pending, tombs := db.pendingWrites, db.tombstones
	gen, hwm = db.generation, db.walSeq
	db.cfgMu.RUnlock()
	if pending == 0 && tombs == 0 {
		return gen, hwm, nil
	}
	start := time.Now()
	gen++

	lv := db.buildLiveView()
	if persist != nil {
		ex := &Export{
			Opts: db.opts, Shard: db.shard,
			Generation: gen, WALSeq: hwm,
		}
		ex.Strands = make([]ExportStrand, len(lv.uniq))
		for i, p := range lv.uniq {
			ex.Strands[i] = ExportStrand{S: p.S, Count: lv.counts[i], Sig: lv.sums[i].Sig}
		}
		ex.Targets = make([]ExportTarget, len(lv.targets))
		for i, t := range lv.targets {
			ex.Targets[i] = ExportTarget{
				Name:       t.Name,
				Source:     t.Source,
				NumBlocks:  t.NumBlocks,
				NumStrands: t.NumStrands,
				StrandIdx:  t.strandIdx,
				StrandMult: t.strandMult,
			}
		}
		if err := persist(ex); err != nil {
			return gen - 1, hwm, fmt.Errorf("core: compact: persist: %w", err)
		}
	}

	// Rebuild the derived structures over the remapped corpus (outside
	// cfgMu — queries keep running on the old state). The LSH index and
	// probe table depend on strand numbering, so a non-identity remap
	// invalidates both.
	newIdx := db.sketchIdx
	newRetr := db.retr
	if !lv.identity {
		newIdx = sketch.NewIndex(db.sketchCfg)
		for _, sum := range lv.sums {
			newIdx.Add(sum)
		}
		newRetr = nil
	}
	if (db.retr != nil || db.opts.Retrieval == RetrievalProbe) &&
		(newRetr == nil || newRetr.Len() != len(lv.sums)) {
		rStart := time.Now()
		newRetr = sketch.BuildRetrieval(lv.sums, db.sketchCfg)
		db.hRetrBuild.Observe(time.Since(rStart).Seconds())
	}

	db.cfgMu.Lock()
	db.uniq = lv.uniq
	db.counts = lv.counts
	db.sums = lv.sums
	db.byKey = lv.byKey
	db.targets = lv.targets
	db.total = lv.total
	db.sketchIdx = newIdx
	db.retr = newRetr
	db.sketchGen++ // stale snapshots must not adopt a remapped table
	db.live = nil
	db.h0Order = nil
	db.tombstones = 0
	db.pendingWrites = 0
	db.generation = gen
	db.cfgMu.Unlock()

	db.mCompactions.Inc()
	db.hCompact.Observe(time.Since(start).Seconds())
	if cleanup != nil {
		if err := cleanup(hwm); err != nil {
			return gen, hwm, fmt.Errorf("core: compact: journal cleanup (state already swapped): %w", err)
		}
	}
	return gen, hwm, nil
}
