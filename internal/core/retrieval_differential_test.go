package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// Probe-mode retrieval is an optimisation, not a new ranking method:
// at sound settings (no heuristic containment tier) the probe table
// must hand the verifier exactly the pairs the exhaustive scan would
// have scored nonzero, so every score — not just every rank — comes
// out bit-identical. The heuristic tier trades recall for sublinear
// candidate lookup; its top-k agreement against the exhaustive scan is
// pinned here so a regression shows up as a test failure, not as a
// silent recall cliff in production.

func TestRetrievalDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential retrieval run is slow")
	}
	procs := buildDiffCorpus(t)

	dbScan := NewDB(Options{})
	dbProbe := NewDB(Options{Retrieval: RetrievalProbe})
	fillDB(t, dbScan, procs)
	fillDB(t, dbProbe, procs)

	qtc, ok := compile.ByName("clang-3.5")
	if !ok {
		t.Fatal("query toolchain missing")
	}
	vulns := corpus.Vulns()
	if len(vulns) > 3 {
		vulns = vulns[:3]
	}
	for _, v := range vulns {
		q, err := corpus.CompileVuln(v, qtc, false)
		if err != nil {
			t.Fatalf("compile query %s: %v", v.Alias, err)
		}
		repScan, err := dbScan.Query(q)
		if err != nil {
			t.Fatalf("query %s (scan): %v", v.Alias, err)
		}
		repProbe, err := dbProbe.Query(q)
		if err != nil {
			t.Fatalf("query %s (probe): %v", v.Alias, err)
		}
		compareReportsExact(t, v.Alias, repScan, repProbe)
		auditProbeCandidates(t, dbProbe, q, v.Alias)
	}

	scanCalls := dbScan.Stats().VerifierCalls
	probeCalls := dbProbe.Stats().VerifierCalls
	if probeCalls == 0 {
		t.Fatal("probe-mode run made no verifier calls; harness is vacuous")
	}
	if probeCalls > scanCalls {
		t.Errorf("probe mode made more verifier calls than the exhaustive scan: %d vs %d", probeCalls, scanCalls)
	}
	ps := dbProbe.Stats()
	if ps.RetrievalProbes == 0 || ps.RetrievalCandidates == 0 {
		t.Errorf("probe counters did not move: probes=%d candidates=%d", ps.RetrievalProbes, ps.RetrievalCandidates)
	}
	t.Logf("verifier calls: scan=%d probe=%d (%.1f%% saved); %d probes, %d candidates",
		scanCalls, probeCalls, 100*(1-float64(probeCalls)/float64(scanCalls)),
		ps.RetrievalProbes, ps.RetrievalCandidates)
}

// compareReportsExact demands bit-identical scores in identical order —
// the strongest statement of "same computation, different loop shape".
func compareReportsExact(t *testing.T, alias string, a, b *Report) {
	t.Helper()
	if len(a.Results) != len(b.Results) {
		t.Errorf("query %s: %d results under scan, %d under probe", alias, len(a.Results), len(b.Results))
		return
	}
	var diffs []string
	for i := range a.Results {
		ra, rb := a.Results[i], b.Results[i]
		if ra.Target.Name != rb.Target.Name ||
			math.Float64bits(ra.SVCP) != math.Float64bits(rb.SVCP) ||
			math.Float64bits(ra.SLOG) != math.Float64bits(rb.SLOG) ||
			math.Float64bits(ra.GES) != math.Float64bits(rb.GES) {
			diffs = append(diffs, fmt.Sprintf(
				"  rank %3d: scan %-52s GES=%.9f | probe %-52s GES=%.9f",
				i+1, ra.Target.Name, ra.GES, rb.Target.Name, rb.GES))
		}
	}
	if len(diffs) > 0 {
		if len(diffs) > 8 {
			diffs = diffs[:8]
		}
		t.Errorf("query %s: probe-mode scores are not bit-identical to scan at sound settings:\n%s",
			alias, strings.Join(diffs, "\n"))
	}
}

// auditProbeCandidates recomputes the ground-truth sound candidate set
// for every unique query strand and demands the probe table return
// exactly it: a missing strand would silently zero a pair the scan
// scores, an extra one would waste verifier calls (and at sound
// settings both are bugs, not tradeoffs).
func auditProbeCandidates(t *testing.T, db *DB, q *asm.Proc, alias string) {
	t.Helper()
	kept, _, err := decompose(q, db.opts)
	if err != nil {
		t.Fatalf("decompose %s: %v", alias, err)
	}
	rx := db.RetrievalIndex()
	scratch := make([]bool, rx.Len())
	seen := map[string]bool{}
	audited, want := 0, map[int32]bool{}
	for _, s := range kept {
		key := s.CanonicalKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		qSum := sketch.Summarize(s, db.sketchCfg)
		clear(want)
		for j := range db.sums {
			if qSum.Injects(db.sums[j]) || db.sums[j].Injects(qSum) {
				want[int32(j)] = true
			}
		}
		ids, sound := rx.Probe(qSum, scratch, nil)
		if sound != len(want) {
			t.Errorf("query %s: strand probe reports %d sound candidates, brute force finds %d", alias, sound, len(want))
		}
		if len(ids) != len(want) {
			t.Errorf("query %s: strand probe returned %d candidates, brute force finds %d", alias, len(ids), len(want))
		}
		for _, id := range ids {
			if !want[id] {
				t.Errorf("query %s: probe returned strand %d, which is not injectability-live", alias, id)
			}
		}
		audited++
	}
	t.Logf("query %s: audited probe candidate sets of %d unique strands", alias, audited)
}

// TestRetrievalHeuristicRecall pins the recall of the heuristic probe
// tier against the exhaustive scan: band-bucket retrieval may drop
// pairs the scan's containment estimate would rescue, so top-k is not
// guaranteed identical — but it must stay close, and any change to the
// banding or probe rule that craters it fails here first.
func TestRetrievalHeuristicRecall(t *testing.T) {
	if testing.Short() {
		t.Skip("differential retrieval run is slow")
	}
	procs := buildDiffCorpus(t)

	dbScan := NewDB(Options{})
	dbProbe := NewDB(Options{
		Retrieval:         RetrievalProbe,
		Prefilter:         PrefilterLSH,
		LSHMinContainment: sketch.SuggestedMinContainment,
	})
	fillDB(t, dbScan, procs)
	fillDB(t, dbProbe, procs)

	qtc, ok := compile.ByName("clang-3.5")
	if !ok {
		t.Fatal("query toolchain missing")
	}
	const topK = 10
	const minRecall = 0.7
	vulns := corpus.Vulns()
	if len(vulns) > 3 {
		vulns = vulns[:3]
	}
	for _, v := range vulns {
		q, err := corpus.CompileVuln(v, qtc, false)
		if err != nil {
			t.Fatalf("compile query %s: %v", v.Alias, err)
		}
		repScan, err := dbScan.Query(q)
		if err != nil {
			t.Fatalf("query %s (scan): %v", v.Alias, err)
		}
		repProbe, err := dbProbe.Query(q)
		if err != nil {
			t.Fatalf("query %s (probe): %v", v.Alias, err)
		}
		truth := map[string]bool{}
		for i, ts := range repScan.Rank(stats.Esh) {
			if i >= topK {
				break
			}
			truth[ts.Target.Name] = true
		}
		hits := 0
		for i, ts := range repProbe.Rank(stats.Esh) {
			if i >= topK {
				break
			}
			if truth[ts.Target.Name] {
				hits++
			}
		}
		recall := float64(hits) / float64(len(truth))
		t.Logf("query %s: heuristic probe top-%d recall %.2f (%d/%d)", v.Alias, topK, recall, hits, len(truth))
		if recall < minRecall {
			t.Errorf("query %s: heuristic probe top-%d recall %.2f below %.2f", v.Alias, topK, recall, minRecall)
		}
	}
}

// TestProbeScalingSmoke is the sublinearity check behind the whole
// exercise, sized for CI: growing the corpus by a decoy factor must
// grow probe-mode verifier work per query by much less. The full 8×
// curve lives in BenchmarkQueryScale; this smoke asserts the shape.
func TestProbeScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling smoke builds two corpora")
	}
	var tcs []compile.Toolchain
	for _, n := range []string{"gcc-4.9", "clang-3.5"} {
		tc, ok := compile.ByName(n)
		if !ok {
			t.Fatalf("unknown toolchain %q", n)
		}
		tcs = append(tcs, tc)
	}
	build := func(synth int) *DB {
		procs, err := corpus.Build(corpus.BuildConfig{
			Toolchains:     tcs,
			IncludePatched: true,
			SynthVariants:  synth,
		})
		if err != nil {
			t.Fatal(err)
		}
		db := NewDB(Options{
			Retrieval:         RetrievalProbe,
			Prefilter:         PrefilterLSH,
			LSHBands:          12,
			LSHRows:           6,
			LSHMinContainment: sketch.SuggestedMinContainment,
		})
		fillDB(t, db, procs)
		return db
	}
	small := build(4)
	big := build(32)

	qtc, _ := compile.ByName("clang-3.5")
	q, err := corpus.CompileVuln(corpus.Vulns()[0], qtc, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := big.Query(q); err != nil {
		t.Fatal(err)
	}

	smallCalls := float64(small.Stats().VerifierCalls)
	bigCalls := float64(big.Stats().VerifierCalls)
	strandRatio := float64(big.NumUniqueStrands()) / float64(small.NumUniqueStrands())
	callRatio := bigCalls / smallCalls
	t.Logf("strands %d -> %d (%.2fx); probe verifier calls %v -> %v (%.2fx)",
		small.NumUniqueStrands(), big.NumUniqueStrands(), strandRatio,
		smallCalls, bigCalls, callRatio)
	if smallCalls == 0 {
		t.Fatal("small-corpus query made no verifier calls; harness is vacuous")
	}
	if strandRatio < 1.5 {
		t.Fatalf("corpus did not grow (ratio %.2f); adjust SynthVariants", strandRatio)
	}
	if callRatio > 0.75*strandRatio {
		t.Errorf("probe verifier calls grew near-linearly with the corpus: %.2fx calls for %.2fx strands", callRatio, strandRatio)
	}
}
