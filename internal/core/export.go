package core

import (
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/sketch"
	"repro/internal/strand"
	"repro/internal/vcp"
)

// Export is the serializable state of an indexed DB: everything needed
// to rebuild a database that answers queries identically, without
// re-running the disassemble→lift→strand pipeline over the corpus.
// Verifier preparations (compiled programs, fingerprints) are derived
// deterministically from the strands at import time, so they are not
// part of the exported state.
type Export struct {
	Opts Options
	// Shard identifies this snapshot's slice of a split corpus (zero
	// value: unsharded). Counts and multiplicities below are local to
	// the shard; the manifest carries the union view.
	Shard ShardInfo
	// Strands holds the unique strands in index order with their corpus
	// multiplicity; index order is significant (targets reference
	// strands by position, and reports must be reproducible).
	Strands []ExportStrand
	Targets []ExportTarget
	// Retrieval, when non-nil, is the probe table's persistable band
	// structure (snapshot format v4). Nil means "not built" — an
	// importer that needs the table rebuilds it from the strands, which
	// is deterministic and yields an identical table.
	Retrieval *sketch.RetrievalTable
	// Generation is the compaction generation of the exported corpus
	// and WALSeq its journal high-water mark: a snapshot at (g, s)
	// already contains every write with sequence <= s, so startup replay
	// skips them (snapshot format v5; both zero before).
	Generation uint64
	WALSeq     uint64
}

// ExportStrand is one unique strand, its corpus multiplicity, and its
// MinHash signature (may be nil on import — e.g. a version-1 snapshot —
// in which case it is recomputed).
type ExportStrand struct {
	S     *strand.Strand
	Count int
	Sig   sketch.Signature
}

// ExportTarget mirrors Target with the strand index list exported.
type ExportTarget struct {
	Name       string
	Source     asm.Provenance
	NumBlocks  int
	NumStrands int
	StrandIdx  []int
	// StrandMult[k] is the target's multiplicity of StrandIdx[k]. Nil on
	// import (a pre-v3 snapshot) defaults every multiplicity to 1 —
	// which only skews a direct query's H0 weighting on that snapshot,
	// never a gateway merge (the manifest carries the union counts).
	StrandMult []int
}

// Export captures the database state for serialization. The returned
// value aliases the DB's strands and targets; treat it as read-only.
// With tombstones or uncompacted live writes present it exports the
// remapped live view — the corpus a from-scratch rebuild of the
// surviving targets would hold — because Export's invariants (counts
// == per-target multiplicity sums, every strand owned) only hold for
// that view. It takes the write lock, so it serializes against live
// writes but never against queries.
func (db *DB) Export() *Export {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	return db.exportLocked()
}

// exportLocked is Export's body; callers hold writeMu.
func (db *DB) exportLocked() *Export {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	lv := db.buildLiveView()
	ex := &Export{
		Opts: db.opts, Shard: db.shard,
		Generation: db.generation, WALSeq: db.walSeq,
	}
	ex.Strands = make([]ExportStrand, len(lv.uniq))
	for i, p := range lv.uniq {
		ex.Strands[i] = ExportStrand{S: p.S, Count: lv.counts[i], Sig: lv.sums[i].Sig}
	}
	if lv.identity && db.retr != nil && db.retr.Len() == len(lv.sums) {
		// The resident probe table only describes the unremapped index;
		// a dirty export leaves Retrieval nil and importers rebuild it
		// deterministically from the strands.
		tab := db.retr.Table()
		ex.Retrieval = &tab
	}
	ex.Targets = make([]ExportTarget, len(lv.targets))
	for i, t := range lv.targets {
		ex.Targets[i] = ExportTarget{
			Name:       t.Name,
			Source:     t.Source,
			NumBlocks:  t.NumBlocks,
			NumStrands: t.NumStrands,
			StrandIdx:  t.strandIdx,
			StrandMult: t.strandMult,
		}
	}
	return ex
}

// FromExport rebuilds a queryable DB from exported state, re-preparing
// every strand (compilation + fingerprints are deterministic, so the
// rebuilt DB produces reports identical to the original). Preparation
// runs in parallel under Opts.Workers.
func FromExport(ex *Export) (*DB, error) {
	db := NewDB(ex.Opts)
	if ex.Shard.Sharded() && (ex.Shard.ID < 0 || ex.Shard.ID >= ex.Shard.Count) {
		return nil, fmt.Errorf("core: import: shard id %d out of range [0,%d)", ex.Shard.ID, ex.Shard.Count)
	}
	db.shard = ex.Shard
	db.generation = ex.Generation
	db.walSeq = ex.WALSeq
	db.uniq = make([]*vcp.Prepared, len(ex.Strands))
	db.counts = make([]int, len(ex.Strands))

	var wg sync.WaitGroup
	sem := make(chan struct{}, db.opts.Workers)
	for i, es := range ex.Strands {
		wg.Add(1)
		go func(i int, s *strand.Strand) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			db.uniq[i] = vcp.Prepare(s, db.opts.VCP)
		}(i, es.S)
	}
	wg.Wait()

	for i, es := range ex.Strands {
		prep := db.uniq[i]
		if err := prep.Err(); err != nil {
			return nil, fmt.Errorf("core: import strand %d: %w", i, err)
		}
		pre, tot := prep.InstrCounts()
		db.mPrefixInstrs.Add(uint64(pre))
		db.mKernelInstrs.Add(uint64(tot))
		if es.Count < 1 {
			return nil, fmt.Errorf("core: import strand %d: multiplicity %d", i, es.Count)
		}
		key := prep.Key()
		if prev, dup := db.byKey[key]; dup {
			return nil, fmt.Errorf("core: import strand %d: duplicate canonical key with strand %d", i, prev)
		}
		db.byKey[key] = i
		db.counts[i] = es.Count
		db.total += es.Count
	}

	// Adopt persisted sketch signatures when they match the configured
	// geometry; recompute otherwise (deterministic, so equivalent).
	sigs := make([]sketch.Signature, len(ex.Strands))
	for i, es := range ex.Strands {
		sigs[i] = es.Sig
	}
	db.rebuildSketches(sigs)

	// Adopt the persisted probe table when present and consistent with
	// the summaries just rebuilt; otherwise fall back to rebuilding it
	// (pre-v4 snapshots, banding overridden at load, or a corrupt
	// table). Eager only under probe mode — scan-mode databases build
	// the table lazily if it is ever needed.
	if ex.Retrieval != nil {
		if rx, err := sketch.FromTable(*ex.Retrieval, db.sums, db.sketchCfg); err == nil {
			db.retr = rx
		}
	}
	if db.opts.Retrieval == RetrievalProbe && db.retr == nil {
		db.retr = sketch.BuildRetrieval(db.sums, db.sketchCfg)
	}

	// Per-target multiplicities: all-or-nothing per snapshot (the v3
	// writer always emits them). When present they must reproduce the
	// per-strand counts exactly — the invariant a shard split relies on.
	haveMults := len(ex.Targets) > 0
	for _, et := range ex.Targets {
		if et.StrandMult == nil {
			haveMults = false
			break
		}
	}
	multSum := make([]int, len(db.uniq))
	for ti, et := range ex.Targets {
		t := &Target{
			Name:       et.Name,
			Source:     et.Source,
			NumBlocks:  et.NumBlocks,
			NumStrands: et.NumStrands,
		}
		if et.StrandMult != nil && len(et.StrandMult) != len(et.StrandIdx) {
			return nil, fmt.Errorf("core: import target %d (%s): %d multiplicities for %d strand indices",
				ti, et.Name, len(et.StrandMult), len(et.StrandIdx))
		}
		seen := make(map[int]bool, len(et.StrandIdx))
		for k, idx := range et.StrandIdx {
			if idx < 0 || idx >= len(db.uniq) {
				return nil, fmt.Errorf("core: import target %d (%s): strand index %d out of range [0,%d)",
					ti, et.Name, idx, len(db.uniq))
			}
			if seen[idx] {
				return nil, fmt.Errorf("core: import target %d (%s): duplicate strand index %d", ti, et.Name, idx)
			}
			seen[idx] = true
			m := 1
			if et.StrandMult != nil {
				m = et.StrandMult[k]
				if m < 1 {
					return nil, fmt.Errorf("core: import target %d (%s): multiplicity %d for strand %d", ti, et.Name, m, idx)
				}
			}
			t.strandMult = append(t.strandMult, m)
			multSum[idx] += m
		}
		t.strandIdx = append(t.strandIdx, et.StrandIdx...)
		db.targets = append(db.targets, t)
	}
	if haveMults {
		for j, want := range db.counts {
			if multSum[j] != want {
				return nil, fmt.Errorf("core: import: strand %d multiplicities sum to %d, count is %d", j, multSum[j], want)
			}
		}
	}
	return db, nil
}
