package core

import (
	"sync"
	"testing"
)

// TestReconfigureDuringQueries drives ConfigureKernel and
// ConfigurePrefilter concurrently with in-flight queries. Queries
// snapshot the configuration once at entry (snapshotConfig), so under
// -race this proves a live reconfiguration can neither tear a query's
// view nor race its reads; each query must still succeed and rank the
// similar target first.
func TestReconfigureDuringQueries(t *testing.T) {
	db := buildDB(t)
	q := parse(t, gccStyle)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		modes := []string{"scalar", "batch"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.ConfigureKernel(modes[i%len(modes)]); err != nil {
				t.Errorf("ConfigureKernel: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		modes := []string{"lsh", "off"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.ConfigurePrefilter(modes[i%len(modes)], 0, 0, -1); err != nil {
				t.Errorf("ConfigurePrefilter: %v", err)
				return
			}
		}
	}()

	const queriers, perQuerier = 4, 8
	var qwg sync.WaitGroup
	for w := 0; w < queriers; w++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for i := 0; i < perQuerier; i++ {
				rep, err := db.Query(q)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if len(rep.Results) != 2 || rep.Results[0].Target.Name != "checksum_icc" {
					t.Errorf("query under reconfiguration ranked %q first", rep.Results[0].Target.Name)
					return
				}
			}
		}()
	}
	qwg.Wait()
	close(stop)
	wg.Wait()
}
