package core

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/vcp"
)

// Additional engine-level behaviours: the sigmoid-k option, cache
// coherence across repeated and interleaved queries, and ranking.

func TestSigmoidKChangesEshOnly(t *testing.T) {
	build := func(k float64) *Report {
		db := NewDB(Options{VCP: vcp.Config{MinVars: 3}, SigmoidK: k})
		for _, src := range []string{iccStyle, unrelated} {
			if err := db.AddTarget(parse(t, src)); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := db.Query(parse(t, gccStyle))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r10 := build(0) // default k = 10
	r2 := build(2)
	for i := range r10.Results {
		// S-VCP and S-LOG ignore the sigmoid entirely.
		var match *TargetScore
		for j := range r2.Results {
			if r2.Results[j].Target.Name == r10.Results[i].Target.Name {
				match = &r2.Results[j]
			}
		}
		if match == nil {
			t.Fatal("target sets differ")
		}
		if match.SVCP != r10.Results[i].SVCP || match.SLOG != r10.Results[i].SLOG {
			t.Error("sub-method scores changed with k")
		}
		if match.GES == r10.Results[i].GES {
			t.Errorf("GES of %s identical under k=2 and k=10", match.Target.Name)
		}
	}
}

func TestCacheCoherentAcrossQueries(t *testing.T) {
	db := buildDB(t)
	// Query A, then B, then A again: the third result must equal the
	// first exactly (the memo cache may only cache, never corrupt).
	a1, err := db.Query(parse(t, gccStyle))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(parse(t, unrelated)); err != nil {
		t.Fatal(err)
	}
	a2, err := db.Query(parse(t, gccStyle))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.Results {
		if a1.Results[i].GES != a2.Results[i].GES ||
			a1.Results[i].SVCP != a2.Results[i].SVCP ||
			a1.Results[i].SLOG != a2.Results[i].SLOG {
			t.Fatalf("cache changed result %d: %+v vs %+v", i, a1.Results[i], a2.Results[i])
		}
	}
}

func TestRankOrdering(t *testing.T) {
	db := buildDB(t)
	rep, err := db.Query(parse(t, gccStyle))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []stats.Method{stats.SVCP, stats.SLOG, stats.Esh} {
		ranked := rep.Rank(m)
		if len(ranked) != len(rep.Results) {
			t.Fatal("Rank changed length")
		}
		for i := 1; i < len(ranked); i++ {
			if ranked[i].Score(m) > ranked[i-1].Score(m) {
				t.Errorf("%v: not sorted at %d", m, i)
			}
		}
	}
	// Rank must not mutate the receiver (Results stays GES-sorted).
	for i := 1; i < len(rep.Results); i++ {
		if rep.Results[i].GES > rep.Results[i-1].GES {
			t.Error("Results order mutated by Rank")
		}
	}
}

func TestQueryAgainstEmptyDB(t *testing.T) {
	db := NewDB(Options{VCP: vcp.Config{MinVars: 3}})
	rep, err := db.Query(parse(t, gccStyle))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("results from empty DB: %d", len(rep.Results))
	}
}

func TestWorkersOption(t *testing.T) {
	// Worker count must not change results.
	mk := func(workers int) *Report {
		db := NewDB(Options{VCP: vcp.Config{MinVars: 3}, Workers: workers})
		for _, src := range []string{iccStyle, unrelated} {
			if err := db.AddTarget(parse(t, src)); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := db.Query(parse(t, gccStyle))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r4 := mk(1), mk(4)
	for i := range r1.Results {
		if r1.Results[i].GES != r4.Results[i].GES {
			t.Fatal("worker count changed scores")
		}
	}
}
