package core

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/minic"
	"repro/internal/vcp"
)

// The §6.6 extension: small procedures whose blocks are too short to
// carry significant strands gain representation through multi-block path
// strands.

// A "wrapper"-shaped procedure: each block is tiny, so block-level
// strands mostly fall under the minimum-size filter.
const wrapperSrc = `
func tiny_wrap(p, n) {
	if (p == 0) {
		return 0 - 1;
	}
	if (n <= 0) {
		return 0 - 2;
	}
	var r = process_one(p, n);
	if (r < 0) {
		log_event(r);
	}
	return r;
}`

func TestPathStrandsIncreaseSmallProcCoverage(t *testing.T) {
	prog := minic.MustParse(wrapperSrc)
	gcc, _ := compile.ByName("gcc-4.9")
	icc, _ := compile.ByName("icc-15.0.1")
	pg, err := compile.Compile(prog, "tiny_wrap", gcc, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	pi, err := compile.Compile(prog, "tiny_wrap", icc, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	pi.Name = "tiny_wrap_icc"

	run := func(pathLen int) (*Report, int) {
		db := NewDB(Options{VCP: vcp.Config{MinVars: 5}, PathLen: pathLen})
		if err := db.AddTarget(pi); err != nil {
			t.Fatal(err)
		}
		rep, err := db.Query(pg)
		if err != nil {
			t.Fatal(err)
		}
		return rep, rep.NumStrands
	}

	_, blockStrands := run(0)
	repPaths, pathStrands := run(2)
	if pathStrands <= blockStrands {
		t.Errorf("path decomposition added no strands: %d vs %d", pathStrands, blockStrands)
	}
	if repPaths.Results[0].GES == 0 && repPaths.Results[0].SVCP == 0 {
		t.Error("path strands produced no evidence at all")
	}
}

func TestPathStrandsRespectBlockLimit(t *testing.T) {
	// A procedure above the block limit must not pay the path cost
	// (observable through the strand count staying at block level).
	src := `
func many_blocks(x) {
	var r = 0;
	if (x > 1) { r = r + 1; }
	if (x > 2) { r = r + 2; }
	if (x > 3) { r = r + 3; }
	if (x > 4) { r = r + 4; }
	if (x > 5) { r = r + 5; }
	if (x > 6) { r = r + 6; }
	if (x > 7) { r = r + 7; }
	return r;
}`
	gcc, _ := compile.ByName("gcc-4.9")
	p, err := compile.Compile(minic.MustParse(src), "many_blocks", gcc, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	count := func(pathLen, maxBlocks int) int {
		db := NewDB(Options{VCP: vcp.Config{MinVars: 3}, PathLen: pathLen, PathMaxBlocks: maxBlocks})
		if err := db.AddTarget(p); err != nil {
			t.Fatal(err)
		}
		return db.TotalStrands()
	}
	base := count(0, 0)
	limited := count(2, 3) // block count exceeds the limit: no paths
	if limited != base {
		t.Errorf("block limit ignored: %d vs %d", limited, base)
	}
	unlimited := count(2, 100)
	if unlimited <= base {
		t.Errorf("paths added nothing under a generous limit: %d vs %d", unlimited, base)
	}
}

func TestPathStrandsDeterministic(t *testing.T) {
	gcc, _ := compile.ByName("gcc-4.9")
	p, err := compile.Compile(minic.MustParse(wrapperSrc), "tiny_wrap", gcc, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *DB {
		db := NewDB(Options{VCP: vcp.Config{MinVars: 5}, PathLen: 3})
		if err := db.AddTarget(p); err != nil {
			t.Fatal(err)
		}
		return db
	}
	a, b := mk(), mk()
	if a.TotalStrands() != b.TotalStrands() || a.NumUniqueStrands() != b.NumUniqueStrands() {
		t.Error("path decomposition not deterministic")
	}
}
