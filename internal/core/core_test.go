package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/stats"
	"repro/internal/vcp"
)

// Two compilations of the same source (different instruction selection
// and registers) and one unrelated procedure.
const gccStyle = `proc checksum_gcc
	xor eax, eax
	mov rcx, rdi
	lea rdx, [rsi+rsi*2]
	shl rdx, 2
	add rdx, 0x20
	imul rcx, rdx
	mov rax, rcx
	shr rax, 7
	xor rax, rcx
	mov r8, rax
	and r8, 0xff
	add rax, r8
	ret
endp`

const iccStyle = `proc checksum_icc
	xor r9d, r9d
	mov r10, rdi
	mov r11, rsi
	imul r11, 3
	imul r11, 4
	add r11, 0x20
	imul r10, r11
	mov rax, r10
	shr rax, 7
	xor rax, r10
	mov rbx, rax
	and rbx, 0xff
	add rax, rbx
	ret
endp`

const unrelated = `proc strlen_like
	xor eax, eax
	mov rdx, rdi
top:
	movzx ecx, byte [rdx]
	test rcx, rcx
	je done
	add rdx, 1
	add rax, 1
	cmp rax, 0x1000
	jb top
done:
	ret
endp`

func parse(t *testing.T, src string) *asm.Proc {
	t.Helper()
	p, err := asm.ParseProc(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func buildDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB(Options{VCP: vcp.Config{MinVars: 3}})
	for _, src := range []string{iccStyle, unrelated} {
		if err := db.AddTarget(parse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestQueryRanksSimilarFirst(t *testing.T) {
	db := buildDB(t)
	rep, err := db.Query(parse(t, gccStyle))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	if rep.Results[0].Target.Name != "checksum_icc" {
		t.Fatalf("top result = %s, want checksum_icc (GES %v vs %v)",
			rep.Results[0].Target.Name, rep.Results[0].GES, rep.Results[1].GES)
	}
	if rep.Results[0].GES <= rep.Results[1].GES {
		t.Error("similar target does not outscore unrelated")
	}
	// Sub-methods rank it first here too (clean two-target case).
	for _, m := range []stats.Method{stats.SVCP, stats.SLOG} {
		ranked := rep.Rank(m)
		if ranked[0].Target.Name != "checksum_icc" {
			t.Errorf("%v ranks %s first", m, ranked[0].Target.Name)
		}
	}
}

func TestQueryDeterministic(t *testing.T) {
	db := buildDB(t)
	r1, err := db.Query(parse(t, gccStyle))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Query(parse(t, gccStyle))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Results {
		if r1.Results[i].GES != r2.Results[i].GES {
			t.Fatal("query not deterministic")
		}
	}
}

func TestSelfQueryWins(t *testing.T) {
	db := NewDB(Options{VCP: vcp.Config{MinVars: 3}})
	for _, src := range []string{gccStyle, iccStyle, unrelated} {
		if err := db.AddTarget(parse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := db.Query(parse(t, gccStyle))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Target.Name != "checksum_gcc" {
		t.Errorf("self not ranked first: %s", rep.Results[0].Target.Name)
	}
	// The cross-compiled variant ranks above the unrelated procedure.
	if rep.Results[1].Target.Name != "checksum_icc" {
		t.Errorf("cross-compiled variant not second: %s", rep.Results[1].Target.Name)
	}
}

func TestDBStats(t *testing.T) {
	db := buildDB(t)
	if db.NumTargets() != 2 {
		t.Errorf("NumTargets = %d", db.NumTargets())
	}
	if db.NumUniqueStrands() == 0 || db.TotalStrands() < db.NumUniqueStrands() {
		t.Errorf("strand counts inconsistent: uniq=%d total=%d",
			db.NumUniqueStrands(), db.TotalStrands())
	}
	for _, tgt := range db.Targets() {
		if tgt.NumBlocks == 0 {
			t.Errorf("target %s has no blocks", tgt.Name)
		}
	}
}

func TestAddTargetBadProc(t *testing.T) {
	db := NewDB(Options{})
	err := db.AddTarget(&asm.Proc{Name: "empty"})
	if err == nil {
		t.Error("empty procedure indexed without error")
	}
}
