// Package core is the Esh engine: it indexes a database of binary target
// procedures (disassembly → CFG → lifting → strand decomposition →
// verifier preparation) and answers similarity queries, producing the
// ranked GES scores the paper's evaluation is built on, for the full
// method and for the S-VCP / S-LOG sub-method decomposition of §6.2.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/lift"
	"repro/internal/stats"
	"repro/internal/strand"
	"repro/internal/vcp"
)

// Options configures the engine.
type Options struct {
	// VCP holds the verifier and §5.5 heuristic settings.
	VCP vcp.Config
	// Workers bounds query parallelism; 0 selects GOMAXPROCS.
	Workers int
	// SigmoidK overrides the Esh sigmoid steepness (0 = paper's k=10);
	// it exists for the k-ablation experiment.
	SigmoidK float64
	// PathLen, when >= 2, additionally decomposes procedures with at
	// most PathMaxBlocks basic blocks into strands over control-flow
	// paths of PathLen blocks — the paper's §6.6 mitigation for small
	// procedures whose individual blocks carry no significant strands.
	PathLen int
	// PathMaxBlocks bounds the path explosion (0 selects 12).
	PathMaxBlocks int
	// VCPCachePairs bounds the cross-query VCP memo cache to roughly
	// this many cached strand-pair results, so a long-running server
	// does not grow without limit. 0 selects DefaultVCPCachePairs; a
	// negative value disables the bound. Eviction is FIFO over query
	// strands: the cache may transiently exceed the bound by one query
	// strand's row.
	VCPCachePairs int
}

// DefaultVCPCachePairs is the default vcpCache bound: at 16 bytes per
// cached pair (plus key overhead) this keeps the steady-state cache in
// the low hundreds of MB even with long canonical keys.
const DefaultVCPCachePairs = 1 << 21

// Target is one indexed procedure.
type Target struct {
	Name       string
	Source     asm.Provenance
	NumBlocks  int
	NumStrands int // strands surviving the minimum-size filter
	strandIdx  []int
}

// DB is an indexed target database. Create with NewDB, populate with
// AddTarget, then issue Query calls (Query is safe for concurrent use;
// AddTarget is not).
type DB struct {
	opts Options

	uniq    []*vcp.Prepared // unique strands across all targets
	counts  []int           // corpus multiplicity per unique strand
	byKey   map[string]int  // canonical key -> index in uniq
	targets []*Target
	total   int // Σ counts: |T|, the H0 denominator

	// vcpCache memoizes forward and reverse VCP by (query strand key,
	// target strand key). It is bounded by Options.VCPCachePairs with
	// FIFO eviction at query-strand granularity: cacheOrder records
	// query keys in insertion order, cachePairs counts cached pairs.
	mu             sync.Mutex
	vcpCache       map[string]map[string][2]float64
	cacheOrder     []string
	cachePairs     int
	cacheEvictions uint64
}

// NewDB returns an empty database.
func NewDB(opts Options) *DB {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &DB{
		opts:     opts,
		byKey:    map[string]int{},
		vcpCache: map[string]map[string][2]float64{},
	}
}

// NumTargets returns the number of indexed procedures.
func (db *DB) NumTargets() int { return len(db.targets) }

// NumUniqueStrands returns the number of distinct strands in the index.
func (db *DB) NumUniqueStrands() int { return len(db.uniq) }

// TotalStrands returns |T|, the corpus strand count used for H0.
func (db *DB) TotalStrands() int { return db.total }

// Targets returns the indexed targets (do not modify).
func (db *DB) Targets() []*Target { return db.targets }

// SetWorkers overrides query parallelism (n <= 0 selects GOMAXPROCS).
// It exists so a snapshot indexed on one machine can serve on another;
// it must not be called concurrently with Query.
func (db *DB) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	db.opts.Workers = n
}

// Options returns the engine options the database was built with.
func (db *DB) Options() Options { return db.opts }

// DBStats is a point-in-time snapshot of database and cache occupancy,
// safe to collect concurrently with Query.
type DBStats struct {
	Targets       int
	UniqueStrands int
	TotalStrands  int
	// VCPCachePairs is the number of cached strand-pair results;
	// VCPCacheQueries the number of distinct query strands they span.
	VCPCachePairs   int
	VCPCacheQueries int
	VCPCacheCap     int
	VCPCacheEvicted uint64
}

// Stats returns current occupancy counters. Targets, unique strands and
// totals are only written by AddTarget (not concurrency-safe anyway);
// the cache counters are read under the cache lock.
func (db *DB) Stats() DBStats {
	s := DBStats{
		Targets:       len(db.targets),
		UniqueStrands: len(db.uniq),
		TotalStrands:  db.total,
		VCPCacheCap:   db.cacheCap(),
	}
	db.mu.Lock()
	s.VCPCachePairs = db.cachePairs
	s.VCPCacheQueries = len(db.vcpCache)
	s.VCPCacheEvicted = db.cacheEvictions
	db.mu.Unlock()
	return s
}

// cacheCap resolves the configured vcpCache bound (< 0: unbounded).
func (db *DB) cacheCap() int {
	if db.opts.VCPCachePairs == 0 {
		return DefaultVCPCachePairs
	}
	return db.opts.VCPCachePairs
}

// decompose runs the front half of the pipeline on one procedure and
// returns its strands that survive the minimum-size filter, plus the
// block count.
func (db *DB) decompose(p *asm.Proc) ([]*strand.Strand, int, error) {
	g, err := cfg.Build(p)
	if err != nil {
		return nil, 0, err
	}
	lp, err := lift.LiftProc(g)
	if err != nil {
		return nil, 0, err
	}
	all := strand.FromProc(lp)
	if db.opts.PathLen >= 2 {
		limit := db.opts.PathMaxBlocks
		if limit <= 0 {
			limit = 12
		}
		if len(g.Blocks) <= limit {
			paths, err := lift.LiftPaths(g, db.opts.PathLen)
			if err != nil {
				return nil, 0, err
			}
			for _, pb := range paths {
				all = append(all, strand.FromBlock(p.Name, pb)...)
			}
		}
	}
	minVars := db.opts.VCP.MinVars
	if minVars <= 0 {
		minVars = vcp.Default().MinVars
	}
	var kept []*strand.Strand
	for _, s := range all {
		if s.NumVars() >= minVars {
			kept = append(kept, s)
		}
	}
	return kept, len(g.Blocks), nil
}

// AddTarget indexes one target procedure.
func (db *DB) AddTarget(p *asm.Proc) error {
	kept, nBlocks, err := db.decompose(p)
	if err != nil {
		return fmt.Errorf("core: index %s: %w", p.Name, err)
	}
	t := &Target{
		Name:       p.Name,
		Source:     p.Source,
		NumBlocks:  nBlocks,
		NumStrands: len(kept),
	}
	seen := map[int]bool{}
	for _, s := range kept {
		key := s.CanonicalKey()
		idx, ok := db.byKey[key]
		if !ok {
			prep := vcp.Prepare(s, db.opts.VCP)
			if prep.Err() != nil {
				return fmt.Errorf("core: prepare strand of %s: %w", p.Name, prep.Err())
			}
			idx = len(db.uniq)
			db.uniq = append(db.uniq, prep)
			db.counts = append(db.counts, 0)
			db.byKey[key] = idx
		}
		db.counts[idx]++
		db.total++
		if !seen[idx] {
			seen[idx] = true
			t.strandIdx = append(t.strandIdx, idx)
		}
	}
	db.targets = append(db.targets, t)
	return nil
}

// TargetScore is one row of a query result: the three method scores for
// one target, plus ground-truth provenance for evaluation.
type TargetScore struct {
	Target *Target
	SVCP   float64
	SLOG   float64
	GES    float64 // the full Esh score
}

// Score returns the score under the requested method.
func (ts TargetScore) Score(m stats.Method) float64 {
	switch m {
	case stats.SVCP:
		return ts.SVCP
	case stats.SLOG:
		return ts.SLOG
	default:
		return ts.GES
	}
}

// Report is the result of one query against the database.
type Report struct {
	QueryName  string
	Source     asm.Provenance
	NumBlocks  int
	NumStrands int // query strands surviving the size filter
	// Results holds one entry per target, sorted by descending GES.
	Results []TargetScore
}

// Rank returns the results re-sorted by the given method's score
// (descending). The receiver is unchanged.
func (r *Report) Rank(m stats.Method) []TargetScore {
	out := make([]TargetScore, len(r.Results))
	copy(out, r.Results)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score(m) > out[j].Score(m) })
	return out
}

// Query scores every indexed target against the query procedure.
func (db *DB) Query(p *asm.Proc) (*Report, error) {
	kept, nBlocks, err := db.decompose(p)
	if err != nil {
		return nil, fmt.Errorf("core: query %s: %w", p.Name, err)
	}
	rep := &Report{
		QueryName:  p.Name,
		Source:     p.Source,
		NumBlocks:  nBlocks,
		NumStrands: len(kept),
	}

	// Deduplicate query strands, keeping multiplicity as LES weight.
	type qstrand struct {
		prep   *vcp.Prepared
		weight float64
	}
	var qs []*qstrand
	qIdx := map[string]int{}
	for _, s := range kept {
		key := s.CanonicalKey()
		if i, ok := qIdx[key]; ok {
			qs[i].weight++
			continue
		}
		prep := vcp.Prepare(s, db.opts.VCP)
		if prep.Err() != nil {
			return nil, fmt.Errorf("core: prepare query strand: %w", prep.Err())
		}
		qIdx[key] = len(qs)
		qs = append(qs, &qstrand{prep: prep, weight: 1})
	}

	// For each unique query strand, compute the VCP row against every
	// unique target strand, in both directions (parallel over query
	// strands). The forward direction VCP(sq, st) drives S-LOG and Esh;
	// the reverse direction VCP(st, sq) drives the paper's S-VCP
	// definition (§6.2), which sums over target strands.
	rows := make([][]float64, len(qs))
	revRows := make([][]float64, len(qs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, db.opts.Workers)
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q *qstrand) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], revRows[i] = db.vcpRow(q.prep)
		}(i, q)
	}
	wg.Wait()

	// maxRev[j]: the best any query strand contains target strand j.
	maxRev := make([]float64, len(db.uniq))
	for i := range qs {
		for j, v := range revRows[i] {
			if v > maxRev[j] {
				maxRev[j] = v
			}
		}
	}

	// H0 estimate per query strand (corpus mean, weighted by
	// multiplicity), §3.3.2.
	evidence := make([]stats.StrandEvidence, len(qs))
	for i, q := range qs {
		h0 := stats.H0Accumulator{K: db.opts.SigmoidK}
		for j, v := range rows[i] {
			h0.Add(v, db.counts[j])
		}
		evidence[i] = h0.Evidence(q.weight)
	}

	// Per-target best VCP per query strand, then GES per method.
	rep.Results = make([]TargetScore, len(db.targets))
	maxVCPs := make([]float64, len(qs))
	for ti, t := range db.targets {
		for i := range qs {
			best := 0.0
			row := rows[i]
			for _, j := range t.strandIdx {
				if row[j] > best {
					best = row[j]
				}
			}
			maxVCPs[i] = best
		}
		svcp := 0.0
		for _, j := range t.strandIdx {
			svcp += maxRev[j]
		}
		rep.Results[ti] = TargetScore{
			Target: t,
			SVCP:   svcp,
			SLOG:   stats.GES(stats.SLOG, maxVCPs, evidence),
			GES:    stats.GES(stats.Esh, maxVCPs, evidence),
		}
	}
	sort.SliceStable(rep.Results, func(i, j int) bool {
		return rep.Results[i].GES > rep.Results[j].GES
	})
	return rep, nil
}

// vcpRow computes VCP(q, u) and VCP(u, q) for every unique target strand
// u, applying the §5.5 size window and the cross-query memo cache. The
// cache is read once and written back once, so concurrent query strands
// do not fight over the lock in the inner loop.
func (db *DB) vcpRow(q *vcp.Prepared) (fwd, rev []float64) {
	qKey := q.Key()
	db.mu.Lock()
	cached := map[string][2]float64{}
	for k, v := range db.vcpCache[qKey] {
		cached[k] = v
	}
	db.mu.Unlock()

	ratio := db.opts.VCP.SizeRatio
	if ratio <= 0 {
		ratio = vcp.Default().SizeRatio
	}

	fwd = make([]float64, len(db.uniq))
	rev = make([]float64, len(db.uniq))
	fresh := map[string][2]float64{}
	for j, u := range db.uniq {
		uKey := u.Key()
		if qKey == uKey {
			fwd[j], rev[j] = 1.0, 1.0 // identical strands match exactly
			continue
		}
		// The size window is symmetric, so it gates both directions.
		if !vcp.SizeCompatible(q.S, u.S, ratio) {
			continue
		}
		v, hit := cached[uKey]
		if !hit {
			v = [2]float64{
				vcp.Compute(q, u, db.opts.VCP),
				vcp.Compute(u, q, db.opts.VCP),
			}
			cached[uKey] = v
			fresh[uKey] = v
		}
		fwd[j], rev[j] = v[0], v[1]
	}

	if len(fresh) > 0 {
		db.mu.Lock()
		shared := db.vcpCache[qKey]
		if shared == nil {
			shared = map[string][2]float64{}
			db.vcpCache[qKey] = shared
			db.cacheOrder = append(db.cacheOrder, qKey)
		}
		for k, v := range fresh {
			if _, dup := shared[k]; !dup {
				db.cachePairs++
			}
			shared[k] = v
		}
		db.evictLocked(qKey)
		db.mu.Unlock()
	}
	return fwd, rev
}

// evictLocked drops whole query-strand rows, oldest first, until the
// cache is back under its pair bound. The row just written (keep) is
// spared unless it is the only one left, so a single huge query cannot
// evict itself into a cold cache on every call. Callers hold db.mu.
func (db *DB) evictLocked(keep string) {
	bound := db.cacheCap()
	if bound < 0 {
		return
	}
	for db.cachePairs > bound && len(db.cacheOrder) > 0 {
		oldest := db.cacheOrder[0]
		if oldest == keep && len(db.cacheOrder) == 1 {
			return
		}
		db.cacheOrder = db.cacheOrder[1:]
		if oldest == keep {
			db.cacheOrder = append(db.cacheOrder, oldest)
			continue
		}
		db.cachePairs -= len(db.vcpCache[oldest])
		delete(db.vcpCache, oldest)
		db.cacheEvictions++
	}
	// Re-base the order slice occasionally so the sliced-off prefix of
	// the backing array can be collected.
	if cap(db.cacheOrder) > 2*len(db.cacheOrder)+64 {
		db.cacheOrder = append([]string(nil), db.cacheOrder...)
	}
}
