// Package core is the Esh engine: it indexes a database of binary target
// procedures (disassembly → CFG → lifting → strand decomposition →
// verifier preparation) and answers similarity queries, producing the
// ranked GES scores the paper's evaluation is built on, for the full
// method and for the S-VCP / S-LOG sub-method decomposition of §6.2.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/lift"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/strand"
	"repro/internal/telemetry"
	"repro/internal/vcp"
)

// Prefilter modes: which candidate prefilter runs before the §5.5
// size-ratio window in the VCP pair loop.
const (
	// PrefilterOff disables prefiltering: every (query strand, target
	// strand) pair reaches the size window. The zero Options value and
	// the empty string select this mode.
	PrefilterOff = "off"
	// PrefilterLSH gates pairs through the sketch index (package
	// sketch). Its sound core skips pairs whose typed input counts
	// make VCP provably zero in both directions, and computes only the
	// live direction of half-dead pairs — rankings stay byte-identical
	// to PrefilterOff. An opt-in heuristic tier (LSHMinContainment)
	// additionally requires an LSH band collision or an estimated
	// feature-containment level, trading a small measured recall loss
	// for a larger skip rate.
	PrefilterLSH = "lsh"
)

// NormalizePrefilter maps a user-facing mode string to a canonical
// value, rejecting unknown modes.
func NormalizePrefilter(mode string) (string, error) {
	switch mode {
	case "", PrefilterOff:
		return PrefilterOff, nil
	case PrefilterLSH:
		return PrefilterLSH, nil
	}
	return "", fmt.Errorf("core: unknown prefilter mode %q (off, lsh)", mode)
}

// NormalizeKernel maps a user-facing evaluation-kernel mode string to a
// canonical value, rejecting unknown modes. Both kernels produce
// byte-identical fingerprints (the differential suite enforces it), so
// the mode only affects speed, never rankings.
func NormalizeKernel(mode string) (string, error) {
	switch mode {
	case "", vcp.KernelBatch:
		return vcp.KernelBatch, nil
	case vcp.KernelScalar:
		return vcp.KernelScalar, nil
	}
	return "", fmt.Errorf("core: unknown kernel mode %q (batch, scalar)", mode)
}

// NormalizeGammaBatch maps a user-facing γ-batch width to a canonical
// value: 0 selects vcp.DefaultGammaBatch, widths above vcp.MaxGammaBatch
// are rejected. Any width produces byte-identical scores (the
// differential suite enforces it), so the knob only affects speed.
func NormalizeGammaBatch(g int) (int, error) {
	if g == 0 {
		return vcp.DefaultGammaBatch, nil
	}
	if g < 0 || g > vcp.MaxGammaBatch {
		return 0, fmt.Errorf("core: gamma-batch width %d out of range [1, %d]", g, vcp.MaxGammaBatch)
	}
	return g, nil
}

// Retrieval modes: how stage 3 finds the candidate target strands for
// each query strand.
const (
	// RetrievalScan walks every unique target strand per query strand,
	// consulting the prefilter per pair. The zero Options value and the
	// empty string select this mode; per-query cost grows linearly with
	// the corpus.
	RetrievalScan = "scan"
	// RetrievalProbe probes the banded-LSH retrieval table (package
	// sketch, RetrievalIndex) for each query strand's candidate set and
	// runs injectability, the size window, and the verifier only on
	// retrieved pairs. At sound settings (LSHMinContainment == 0) the
	// probe returns exactly the injectability-live set, so rankings are
	// byte-identical to scan mode; with the heuristic tier enabled the
	// probe returns band-bucket collisions (a subset of the scan-mode
	// heuristic rule) and per-query cost becomes roughly independent of
	// corpus size.
	RetrievalProbe = "probe"
)

// NormalizeRetrieval maps a user-facing retrieval mode string to a
// canonical value, rejecting unknown modes.
func NormalizeRetrieval(mode string) (string, error) {
	switch mode {
	case "", RetrievalScan:
		return RetrievalScan, nil
	case RetrievalProbe:
		return RetrievalProbe, nil
	}
	return "", fmt.Errorf("core: unknown retrieval mode %q (scan, probe)", mode)
}

// Options configures the engine.
type Options struct {
	// VCP holds the verifier and §5.5 heuristic settings.
	VCP vcp.Config
	// Workers bounds query parallelism; 0 selects GOMAXPROCS.
	Workers int
	// SigmoidK overrides the Esh sigmoid steepness (0 = paper's k=10);
	// it exists for the k-ablation experiment.
	SigmoidK float64
	// PathLen, when >= 2, additionally decomposes procedures with at
	// most PathMaxBlocks basic blocks into strands over control-flow
	// paths of PathLen blocks — the paper's §6.6 mitigation for small
	// procedures whose individual blocks carry no significant strands.
	PathLen int
	// PathMaxBlocks bounds the path explosion (0 selects 12).
	PathMaxBlocks int
	// VCPCachePairs bounds the cross-query VCP memo cache to roughly
	// this many cached strand-pair results, so a long-running server
	// does not grow without limit. 0 selects DefaultVCPCachePairs; a
	// negative value disables the bound. Eviction is FIFO over query
	// strands: the cache may transiently exceed the bound by one query
	// strand's row.
	VCPCachePairs int
	// Prefilter selects the candidate prefilter consulted before the
	// size-ratio window: PrefilterOff ("" or "off") or PrefilterLSH
	// ("lsh"). The sketch index is maintained regardless, so the mode
	// can be flipped at runtime with ConfigurePrefilter.
	Prefilter string
	// LSHBands and LSHRows shape the MinHash signature of the sketch
	// prefilter (0 selects sketch.DefaultBands / sketch.DefaultRows).
	LSHBands int
	LSHRows  int
	// LSHMinContainment, when > 0, enables the heuristic tier of the
	// lsh prefilter (see sketch.Config.MinContainment;
	// sketch.SuggestedMinContainment is the calibrated setting). The
	// default 0 keeps the prefilter sound: rankings are byte-identical
	// to prefilter-off.
	LSHMinContainment float64
	// Retrieval selects the stage-3 candidate source: RetrievalScan
	// ("" or "scan") or RetrievalProbe ("probe"). Like Prefilter it can
	// be flipped at runtime (ConfigureRetrieval); the probe table is
	// built lazily on first use and persisted in snapshot format v4.
	Retrieval string
	// RetrievalMaxDelta bounds how many live-written strands the probe
	// path may overlay on the immutable retrieval table before the
	// table is rebuilt eagerly at write time. Overlay strands are
	// tested per query strand with the sound injectability rule, so
	// correctness never depends on this knob — only the probe's
	// sublinearity does. 0 selects DefaultRetrievalMaxDelta; negative
	// defers every rebuild to compaction.
	RetrievalMaxDelta int
}

// DefaultVCPCachePairs is the default vcpCache bound: at 16 bytes per
// cached pair (plus key overhead) this keeps the steady-state cache in
// the low hundreds of MB even with long canonical keys.
const DefaultVCPCachePairs = 1 << 21

// DefaultRetrievalMaxDelta is the default Options.RetrievalMaxDelta: a
// few hundred overlay strands cost microseconds per probe, far below
// one verifier call, while keeping write-time table rebuilds rare.
const DefaultRetrievalMaxDelta = 256

// Target is one indexed procedure.
type Target struct {
	Name       string
	Source     asm.Provenance
	NumBlocks  int
	NumStrands int // strands surviving the minimum-size filter
	strandIdx  []int
	// strandMult[k] is how many times strandIdx[k] occurs in this
	// target (strandIdx is deduplicated). Σ strandMult == NumStrands,
	// and summing per-target multiplicities over all targets
	// reconstructs the corpus-wide counts — which is what makes a
	// corpus exactly decomposable into shards.
	strandMult []int
}

// ShardInfo identifies a snapshot's position within a sharded corpus: a
// corpus split by eshcorpus -save-shards produces Count snapshots, each
// carrying its shard ID and the manifest generation it belongs to, so a
// gateway can refuse to scatter a query across mismatched fleets. The
// zero value means "unsharded" (Count == 0).
type ShardInfo struct {
	ID         int
	Count      int
	Generation string
}

// Sharded reports whether the info describes a shard of a split corpus.
func (si ShardInfo) Sharded() bool { return si.Count > 0 }

// DB is an indexed target database. Create with NewDB, populate with
// AddTarget, then issue Query calls (Query is safe for concurrent use;
// AddTarget is not). The serve-time reconfiguration calls
// (ConfigurePrefilter, ConfigureKernel, SetWorkers) are safe to run
// concurrently with Query: each query snapshots the configuration once
// at entry and runs to completion under that view.
type DB struct {
	// cfgMu guards opts, the sketch state (sketchCfg, sums, sketchIdx),
	// and — since the live write path landed — the corpus itself (uniq,
	// counts, targets, total, live, h0Order, generation) against
	// serve-time mutation racing in-flight queries. Queries take one
	// RLock at entry to snapshot a consistent view; mutators take the
	// write lock for the swap. AddTarget still mutates without the lock
	// — it is documented as not concurrency-safe (bulk indexing).
	cfgMu sync.RWMutex
	opts  Options
	shard ShardInfo

	// writeMu serializes the live write path (ApplyAdd, ApplyRemove,
	// Replay*, Compact) and the serve-time reconfiguration calls, and
	// orders strictly before cfgMu: writers validate and journal under
	// writeMu alone (queries keep flowing), then apply in memory under
	// a brief cfgMu write lock. Compact holds writeMu across snapshot
	// persistence, freezing writers but never readers.
	writeMu sync.Mutex

	uniq    []*vcp.Prepared // unique strands across all targets
	counts  []int           // corpus multiplicity per unique strand
	byKey   map[string]int  // canonical key -> index in uniq
	targets []*Target
	total   int // Σ counts: |T|, the H0 denominator

	// Tombstone state. live[ti] is target ti's liveness; nil means "all
	// live" (the common, tombstone-free case — the bulk AddTarget path
	// never materializes it). h0Order, non-nil exactly when tombstones
	// exist, is the H0 iteration permutation: the surviving strands in
	// the first-seen order a from-scratch rebuild of the live targets
	// would assign, which is what keeps post-tombstone scores
	// bit-identical to that rebuild (float addition is order-
	// sensitive, so masking dead strands is not enough — see
	// FinalizeOrder). Both are copy-on-write: mutators install fresh
	// slices under cfgMu so snapshotted queries keep a stable view.
	live    []bool
	h0Order []int32

	// Write-path bookkeeping: the data generation (bumped by every
	// compaction), the WAL high-water mark (sequence of the last
	// applied record), pending live writes and tombstoned targets
	// since the last compaction, and the journal acknowledged writes
	// are logged to (nil: writes are memory-only, e.g. replay or
	// tests).
	generation    uint64
	walSeq        uint64
	pendingWrites int
	tombstones    int
	journal       Journal

	// Prefilter state: one sketch summary per unique strand (in uniq
	// order; MinHash signatures are persisted in snapshots, the rest
	// is recomputed cheaply) and the banded index over them.
	// Maintained unconditionally — it is cheap next to verifier
	// preparation — so Options.Prefilter can be toggled at runtime.
	sketchCfg sketch.Config
	sums      []sketch.Summary
	sketchIdx *sketch.Index

	// Retrieval state: the immutable probe table over sums, built
	// lazily (first probe query, ConfigureRetrieval, or snapshot adopt)
	// and invalidated whenever sums or the banding change. sketchGen
	// counts those invalidations so a query whose config snapshot
	// predates a rebuild can detect it and build a private table
	// instead of caching a stale one.
	retr      *sketch.RetrievalIndex
	sketchGen uint64

	// markPool recycles the n-wide []bool scratch slices stage 3 uses
	// for prefilter candidate marking and probe deduplication, so a
	// query of many strands does not allocate one per strand.
	markPool sync.Pool

	// vcpCache memoizes forward and reverse VCP by (query strand key,
	// target strand key). It is bounded by Options.VCPCachePairs with
	// FIFO eviction at query-strand granularity: cacheOrder records
	// query keys in insertion order, cachePairs counts cached pairs.
	mu         sync.Mutex
	vcpCache   map[string]map[string][2]float64
	cacheOrder []string
	cachePairs int

	// Telemetry: a per-DB registry so multiple databases in one process
	// (tests, blue/green index swaps) do not share counters. Per-pair
	// work is accumulated locally in vcpRow and flushed here once per
	// query strand, so the hot loop never touches an atomic.
	reg            *telemetry.Registry
	stageHist      map[string]*telemetry.Histogram
	mCacheHits     *telemetry.Counter
	mCacheMisses   *telemetry.Counter
	mCacheEvict    *telemetry.Counter
	mPairsPruned   *telemetry.Counter
	mPairsIdent    *telemetry.Counter
	mVerifierCalls *telemetry.Counter
	mGamma         *telemetry.Counter
	mQueries       *telemetry.Counter
	mLSHSkipped    *telemetry.Counter
	mDeadDirs      *telemetry.Counter
	mKernelNanos   *telemetry.Counter
	mPrefixInstrs  *telemetry.Counter
	mKernelInstrs  *telemetry.Counter
	mGammaBatches  *telemetry.Counter
	mGammaRows     *telemetry.Counter
	hGammaOccup    *telemetry.Histogram
	mProbes        *telemetry.Counter
	mProbeCands    *telemetry.Counter
	mProbeSound    *telemetry.Counter
	hLSHCands      *telemetry.Histogram
	hSketchBuild   *telemetry.Histogram
	hProbeCands    *telemetry.Histogram
	hProbeLatency  *telemetry.Histogram
	hRetrBuild     *telemetry.Histogram
	mWritesAdd     *telemetry.Counter
	mWritesDel     *telemetry.Counter
	mCompactions   *telemetry.Counter
	hCompact       *telemetry.Histogram
}

// queryStages names the Query pipeline stages, in execution order. Each
// has a span in the per-query trace and a duration histogram in the
// DB's metrics registry.
var queryStages = [...]string{"decompose", "prepare", "vcp", "score"}

// NewDB returns an empty database.
func NewDB(opts Options) *DB {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	opts.Prefilter, _ = NormalizePrefilter(opts.Prefilter) // unknown modes read as off
	if opts.Prefilter == "" {
		opts.Prefilter = PrefilterOff
	}
	opts.VCP.Kernel, _ = NormalizeKernel(opts.VCP.Kernel) // unknown modes read as batch
	if opts.VCP.Kernel == "" {
		opts.VCP.Kernel = vcp.KernelBatch
	}
	if g, err := NormalizeGammaBatch(opts.VCP.GammaBatch); err == nil {
		opts.VCP.GammaBatch = g // out-of-range widths read as the default
	} else {
		opts.VCP.GammaBatch = vcp.DefaultGammaBatch
	}
	opts.Retrieval, _ = NormalizeRetrieval(opts.Retrieval) // unknown modes read as scan
	if opts.Retrieval == "" {
		opts.Retrieval = RetrievalScan
	}
	cfg := sketch.Config{
		Bands:          opts.LSHBands,
		Rows:           opts.LSHRows,
		MinContainment: opts.LSHMinContainment,
	}.Normalized()
	opts.LSHBands, opts.LSHRows = cfg.Bands, cfg.Rows
	db := &DB{
		opts:      opts,
		byKey:     map[string]int{},
		vcpCache:  map[string]map[string][2]float64{},
		sketchCfg: cfg,
		sketchIdx: sketch.NewIndex(cfg),
	}
	db.initMetrics()
	return db
}

// initMetrics builds the DB's metrics registry. Index-size gauge funcs
// take cfgMu.RLock: the live write path mutates those fields at serve
// time, so a scrape concurrent with ApplyAdd must see a consistent view.
func (db *DB) initMetrics() {
	reg := telemetry.NewRegistry()
	db.reg = reg
	db.stageHist = make(map[string]*telemetry.Histogram, len(queryStages))
	for _, st := range queryStages {
		db.stageHist[st] = reg.Histogram("esh_query_stage_seconds",
			"Wall time per query pipeline stage.", nil, "stage", st)
	}
	db.mQueries = reg.Counter("esh_engine_queries_total", "Queries answered by the engine.")
	db.mCacheHits = reg.Counter("esh_vcp_cache_hits_total", "VCP memo cache hits (pair results reused).")
	db.mCacheMisses = reg.Counter("esh_vcp_cache_misses_total", "VCP memo cache misses (pair results computed).")
	db.mCacheEvict = reg.Counter("esh_vcp_cache_evictions_total", "Query-strand rows evicted from the VCP cache.")
	db.mPairsPruned = reg.Counter("esh_vcp_pairs_pruned_total", "Strand pairs rejected by the size-ratio window before any verifier work.")
	db.mPairsIdent = reg.Counter("esh_vcp_pairs_identical_total", "Strand pairs short-circuited as structurally identical.")
	db.mVerifierCalls = reg.Counter("esh_verifier_calls_total", "vcp.Compute invocations (two per cache miss: forward and reverse).")
	db.mGamma = reg.Counter("esh_verifier_correspondences_total", "Input correspondences evaluated by the probabilistic verifier.")
	db.mLSHSkipped = reg.Counter("esh_lsh_pairs_skipped_total", "Strand pairs skipped by the sketch prefilter before any verifier work.")
	db.mDeadDirs = reg.Counter("esh_lsh_dead_directions_total", "Single verifier calls avoided because one direction of a live pair is provably zero (typed inputs cannot inject).")
	db.mKernelNanos = reg.Counter("esh_vcp_kernel_nanos_total", "Wall nanoseconds the γ loops spent inside the evaluation kernel.")
	db.mPrefixInstrs = reg.Counter("esh_kernel_prefix_instrs_total", "γ-invariant prefix instructions across prepared strands (hoisted out of the γ loop by the batched kernel).")
	db.mKernelInstrs = reg.Counter("esh_kernel_instrs_total", "Total compiled instructions across prepared strands.")
	db.mGammaBatches = reg.Counter("esh_kernel_gamma_batches_total", "γ-batch kernel flushes (one suffix execution each; correspondences/batches is the mean rows per flush).")
	db.mGammaRows = reg.Counter("esh_kernel_gamma_batch_rows_total", "Correspondence rows carried by γ-batch kernel flushes (includes rows discarded uncounted after a perfect match or the cap).")
	db.hGammaOccup = reg.Histogram("esh_kernel_gamma_batch_occupancy",
		"Mean γ-batch fill fraction at flush, observed once per query strand row (rows carried / (width × flushes)).",
		[]float64{0.0625, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0})
	db.hLSHCands = reg.Histogram("esh_lsh_candidate_set_size",
		"LSH candidate-set size per query strand (prefilter on).",
		[]float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000})
	db.hSketchBuild = reg.Histogram("esh_sketch_build_seconds",
		"Wall time spent computing MinHash sketches and LSH buckets (per target at index time, per rebuild at load time).", nil)
	db.mProbes = reg.Counter("esh_retrieval_probes_total", "Probe-mode candidate retrievals (one per query strand).")
	db.mProbeCands = reg.Counter("esh_retrieval_candidates_total", "Candidate target strands retrieved by probe-mode queries.")
	db.mProbeSound = reg.Counter("esh_retrieval_sound_candidates_total", "Injectability-live target strands for probe-mode query strands (the sound candidate set the heuristic tier's retrieval is a subset of; candidates/sound is the recall proxy).")
	db.hProbeCands = reg.Histogram("esh_retrieval_candidate_set_size",
		"Retrieved candidate-set size per probe-mode query strand.",
		[]float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000})
	db.hProbeLatency = reg.Histogram("esh_retrieval_probe_seconds",
		"Wall time per retrieval-table probe (one per probe-mode query strand).",
		[]float64{1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1})
	db.hRetrBuild = reg.Histogram("esh_retrieval_table_build_seconds",
		"Wall time per retrieval-table build (lazy first probe, ConfigureRetrieval, or sketch rebuild).", nil)
	reg.GaugeFunc("esh_lsh_prefilter_enabled", "1 when the LSH prefilter gates the VCP pair loop.", func() float64 {
		if db.prefilterOn() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("esh_retrieval_probe_enabled", "1 when stage 3 probes the retrieval table instead of scanning all targets.", func() float64 {
		if db.retrievalOn() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("esh_vcp_cache_pairs", "Strand-pair results currently cached.", func() float64 {
		db.mu.Lock()
		defer db.mu.Unlock()
		return float64(db.cachePairs)
	})
	reg.GaugeFunc("esh_vcp_cache_query_strands", "Distinct query strands with cached rows.", func() float64 {
		db.mu.Lock()
		defer db.mu.Unlock()
		return float64(len(db.vcpCache))
	})
	reg.GaugeFunc("esh_vcp_cache_hit_ratio", "Lifetime VCP cache hit ratio.", func() float64 {
		h, m := db.mCacheHits.Value(), db.mCacheMisses.Value()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})
	reg.GaugeFunc("esh_index_targets", "Indexed target procedures.", func() float64 {
		db.cfgMu.RLock()
		defer db.cfgMu.RUnlock()
		return float64(len(db.targets))
	})
	reg.GaugeFunc("esh_index_unique_strands", "Distinct strands in the index.", func() float64 {
		db.cfgMu.RLock()
		defer db.cfgMu.RUnlock()
		return float64(len(db.uniq))
	})
	reg.GaugeFunc("esh_index_total_strands", "Corpus strand count |T| (H0 denominator).", func() float64 {
		db.cfgMu.RLock()
		defer db.cfgMu.RUnlock()
		return float64(db.total)
	})
	db.mWritesAdd = reg.Counter("esh_writes_applied_total", "Live corpus writes applied in memory.", "op", "add")
	db.mWritesDel = reg.Counter("esh_writes_applied_total", "Live corpus writes applied in memory.", "op", "delete")
	db.mCompactions = reg.Counter("esh_compactions_total", "Compactions folding live writes and tombstones into a new snapshot generation.")
	db.hCompact = reg.Histogram("esh_compaction_seconds",
		"Wall time per compaction (remap + snapshot persistence + swap).", nil)
	reg.GaugeFunc("esh_index_generation", "Data generation: bumped by every compaction.", func() float64 {
		db.cfgMu.RLock()
		defer db.cfgMu.RUnlock()
		return float64(db.generation)
	})
	reg.GaugeFunc("esh_index_pending_writes", "Live writes applied since the last compaction (or load).", func() float64 {
		db.cfgMu.RLock()
		defer db.cfgMu.RUnlock()
		return float64(db.pendingWrites)
	})
	reg.GaugeFunc("esh_index_tombstones", "Tombstoned (dead but uncompacted) targets.", func() float64 {
		db.cfgMu.RLock()
		defer db.cfgMu.RUnlock()
		return float64(db.tombstones)
	})
}

// Metrics returns the DB's metrics registry, for exposition alongside
// server-level metrics.
func (db *DB) Metrics() *telemetry.Registry { return db.reg }

// observeStage records one stage duration into the per-stage histogram.
func (db *DB) observeStage(stage string, d time.Duration) {
	if h := db.stageHist[stage]; h != nil {
		h.Observe(d.Seconds())
	}
}

// NumTargets returns the number of indexed procedures (live and
// tombstoned alike; compaction drops the dead ones).
func (db *DB) NumTargets() int {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return len(db.targets)
}

// NumUniqueStrands returns the number of distinct strands in the index.
func (db *DB) NumUniqueStrands() int {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return len(db.uniq)
}

// TotalStrands returns |T|, the corpus strand count used for H0. It
// tracks the live corpus: tombstoning a target subtracts its strand
// multiplicities immediately.
func (db *DB) TotalStrands() int {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return db.total
}

// Targets returns the indexed targets (do not modify), including
// tombstoned ones. Use LiveTargets for the serving view.
func (db *DB) Targets() []*Target {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return db.targets
}

// LiveTargets returns the live (non-tombstoned) targets in add order —
// the view queries rank over (do not modify the targets).
func (db *DB) LiveTargets() []*Target {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	if db.live == nil {
		return db.targets
	}
	out := make([]*Target, 0, len(db.targets)-db.tombstones)
	for ti, t := range db.targets {
		if db.live[ti] {
			out = append(out, t)
		}
	}
	return out
}

// DataGeneration returns the compaction generation of the in-memory
// corpus (zero until the first compaction).
func (db *DB) DataGeneration() uint64 {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return db.generation
}

// WALSeq returns the journal high-water mark: the sequence number of
// the last write applied to the in-memory corpus (zero when none).
func (db *DB) WALSeq() uint64 {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return db.walSeq
}

// PendingWrites returns the number of live writes applied since the
// last compaction (or snapshot load).
func (db *DB) PendingWrites() int {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return db.pendingWrites
}

// Tombstones returns the number of tombstoned, not-yet-compacted
// targets.
func (db *DB) Tombstones() int {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return db.tombstones
}

// SetWorkers overrides query parallelism (n <= 0 selects GOMAXPROCS).
// It exists so a snapshot indexed on one machine can serve on another.
func (db *DB) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.cfgMu.Lock()
	db.opts.Workers = n
	db.cfgMu.Unlock()
}

// Options returns the engine options the database was built with.
func (db *DB) Options() Options {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return db.opts
}

// Shard returns the snapshot's shard identity (zero when the corpus is
// unsharded).
func (db *DB) Shard() ShardInfo { return db.shard }

// prefilterOn reports whether the LSH prefilter gates the pair loop.
func (db *DB) prefilterOn() bool {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return db.opts.Prefilter == PrefilterLSH
}

// retrievalOn reports whether stage 3 probes the retrieval table.
func (db *DB) retrievalOn() bool {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return db.opts.Retrieval == RetrievalProbe
}

// SketchConfig returns the banding of the DB's sketch index.
func (db *DB) SketchConfig() sketch.Config {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	return db.sketchCfg
}

// queryConfig is the per-query view of the reconfigurable state: one
// consistent snapshot taken at query entry, so serve-time overrides
// never race an in-flight pair loop.
type queryConfig struct {
	opts      Options
	sketchCfg sketch.Config
	sums      []sketch.Summary
	sketchIdx *sketch.Index
	retr      *sketch.RetrievalIndex
	sketchGen uint64

	// Corpus snapshot: live writes install fresh slices (counts, live,
	// h0Order) or append beyond our lengths (uniq, targets, sums), so
	// these headers stay internally consistent for the query's
	// lifetime. live == nil means every target is live; h0Order == nil
	// means H0 accumulates in index order (no tombstones).
	uniq       []*vcp.Prepared
	counts     []int
	targets    []*Target
	live       []bool
	h0Order    []int32
	generation uint64
	pending    int
}

func (qc *queryConfig) prefilterOn() bool { return qc.opts.Prefilter == PrefilterLSH }
func (qc *queryConfig) probeOn() bool     { return qc.opts.Retrieval == RetrievalProbe }

func (db *DB) snapshotConfig() queryConfig {
	db.cfgMu.RLock()
	qc := queryConfig{
		opts: db.opts, sketchCfg: db.sketchCfg, sums: db.sums,
		sketchIdx: db.sketchIdx, retr: db.retr, sketchGen: db.sketchGen,
		uniq: db.uniq, counts: db.counts, targets: db.targets,
		live: db.live, h0Order: db.h0Order,
		generation: db.generation, pending: db.pendingWrites,
	}
	db.cfgMu.RUnlock()
	if qc.probeOn() && qc.retr == nil {
		qc.retr = db.retrievalFor(&qc)
	}
	return qc
}

// retrievalFor resolves the probe table for a query's configuration
// snapshot, building and caching it on first use. If the sketch state
// moved on between the snapshot and the build (a concurrent
// ConfigurePrefilter geometry change), the shared cache is left alone
// and the query gets a private table over its own snapshot view, so the
// query still runs under one consistent configuration.
func (db *DB) retrievalFor(qc *queryConfig) *sketch.RetrievalIndex {
	db.cfgMu.Lock()
	// The length check matters under live writes: sums is append-only
	// within a sketch generation, so a write between the snapshot and
	// this build could leave db.sums longer than the query's uniq view —
	// a shared table built now would probe out of the query's range.
	if db.sketchGen == qc.sketchGen && len(db.sums) == len(qc.sums) {
		if db.retr == nil {
			start := time.Now()
			db.retr = sketch.BuildRetrieval(db.sums, db.sketchCfg)
			db.hRetrBuild.Observe(time.Since(start).Seconds())
		}
		r := db.retr
		db.cfgMu.Unlock()
		return r
	}
	db.cfgMu.Unlock()
	start := time.Now()
	r := sketch.BuildRetrieval(qc.sums, qc.sketchCfg)
	db.hRetrBuild.Observe(time.Since(start).Seconds())
	return r
}

// getMark fetches an all-false scratch slice of length n from the pool.
func (db *DB) getMark(n int) []bool {
	if v := db.markPool.Get(); v != nil {
		if m := *(v.(*[]bool)); len(m) >= n {
			return m[:n]
		}
	}
	return make([]bool, n)
}

// putMark clears a scratch slice and returns it to the pool. The clear
// costs the same memset the old per-row allocation paid, without the
// garbage.
func (db *DB) putMark(m []bool) {
	m = m[:cap(m)]
	clear(m)
	db.markPool.Put(&m)
}

// Signatures returns the per-unique-strand MinHash signatures in index
// order (do not modify). Used by the snapshot writer.
func (db *DB) Signatures() []sketch.Signature {
	db.cfgMu.RLock()
	defer db.cfgMu.RUnlock()
	sigs := make([]sketch.Signature, len(db.sums))
	for i := range db.sums {
		sigs[i] = db.sums[i].Sig
	}
	return sigs
}

// ConfigurePrefilter sets the prefilter mode and, optionally, a new
// sketch geometry (bands/rows <= 0 keep the current values) or
// heuristic-tier threshold (minCont < 0 keeps the current value; 0
// disables the tier). Changing the geometry recomputes every signature
// and rebuilds the LSH index. Like SetWorkers it exists for serve-time
// overrides of snapshot-baked options; it is safe to call concurrently
// with Query (in-flight queries finish under the configuration they
// started with).
func (db *DB) ConfigurePrefilter(mode string, bands, rows int, minCont float64) error {
	m, err := NormalizePrefilter(mode)
	if err != nil {
		return err
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	db.opts.Prefilter = m
	cfg := db.sketchCfg
	if bands > 0 {
		cfg.Bands = bands
	}
	if rows > 0 {
		cfg.Rows = rows
	}
	if minCont >= 0 {
		cfg.MinContainment = minCont
	}
	cfg = cfg.Normalized()
	if cfg == db.sketchCfg {
		return nil
	}
	db.opts.LSHBands, db.opts.LSHRows = cfg.Bands, cfg.Rows
	db.opts.LSHMinContainment = cfg.MinContainment
	db.sketchCfg = cfg
	sigs := make([]sketch.Signature, len(db.sums))
	for i := range db.sums {
		sigs[i] = db.sums[i].Sig
	}
	db.rebuildSketches(sigs)
	return nil
}

// ConfigureKernel sets the evaluation kernel mode (batch or scalar) for
// subsequent queries. Fingerprints are identical under both kernels, so
// the switch needs no index rebuild and never changes rankings; like
// SetWorkers it exists for serve-time overrides of snapshot-baked
// options and is safe to call concurrently with Query.
func (db *DB) ConfigureKernel(mode string) error {
	m, err := NormalizeKernel(mode)
	if err != nil {
		return err
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.cfgMu.Lock()
	db.opts.VCP.Kernel = m
	db.cfgMu.Unlock()
	return nil
}

// ConfigureGammaBatch sets the γ-batch width for subsequent queries
// (0 = default). Every width produces byte-identical rankings — batching
// only changes how many correspondences one kernel dispatch carries —
// so, like ConfigureKernel, the switch needs no rebuild and is safe to
// call concurrently with Query.
func (db *DB) ConfigureGammaBatch(g int) error {
	n, err := NormalizeGammaBatch(g)
	if err != nil {
		return err
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.cfgMu.Lock()
	db.opts.VCP.GammaBatch = n
	db.cfgMu.Unlock()
	return nil
}

// ConfigureRetrieval sets the stage-3 candidate source (scan or probe)
// for subsequent queries. Switching to probe builds the retrieval table
// if it is not already resident (adopted from a v4 snapshot or built by
// an earlier probe). Like ConfigurePrefilter it is safe to call
// concurrently with Query: in-flight queries finish under the mode they
// started with.
func (db *DB) ConfigureRetrieval(mode string) error {
	m, err := NormalizeRetrieval(mode)
	if err != nil {
		return err
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	db.opts.Retrieval = m
	if m == RetrievalProbe && db.retr == nil {
		start := time.Now()
		db.retr = sketch.BuildRetrieval(db.sums, db.sketchCfg)
		db.hRetrBuild.Observe(time.Since(start).Seconds())
	}
	return nil
}

// RetrievalIndex returns the probe table over the current corpus,
// building it if necessary. The returned index is immutable; it is what
// the snapshot writer persists and eshcorpus prints build stats from.
func (db *DB) RetrievalIndex() *sketch.RetrievalIndex {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	if db.retr == nil {
		start := time.Now()
		db.retr = sketch.BuildRetrieval(db.sums, db.sketchCfg)
		db.hRetrBuild.Observe(time.Since(start).Seconds())
	}
	return db.retr
}

// rebuildSketches rebuilds the summary table and LSH index over every
// unique strand. When sigs is non-nil and geometrically compatible the
// persisted signatures are adopted as-is (the snapshot-restore path);
// otherwise signatures are re-MinHashed. The rest of each summary
// (feature-set size, typed input counts) is always recomputed — those
// walks are cheap next to MinHashing, so they are not persisted.
func (db *DB) rebuildSketches(sigs []sketch.Signature) {
	start := time.Now()
	if sigs != nil && len(sigs) != len(db.uniq) {
		sigs = nil
	}
	sums := make([]sketch.Summary, len(db.uniq))
	var wg sync.WaitGroup
	sem := make(chan struct{}, db.opts.Workers)
	for i, p := range db.uniq {
		wg.Add(1)
		go func(i int, s *strand.Strand) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var sig sketch.Signature
			if sigs != nil {
				sig = sigs[i] // AdoptSignature re-MinHashes on length mismatch
			}
			sums[i] = sketch.AdoptSignature(s, sig, db.sketchCfg)
		}(i, p.S)
	}
	wg.Wait()
	idx := sketch.NewIndex(db.sketchCfg)
	for _, sum := range sums {
		idx.Add(sum)
	}
	db.sums = sums
	db.sketchIdx = idx
	db.invalidateRetrieval()
	db.hSketchBuild.Observe(time.Since(start).Seconds())
}

// invalidateRetrieval drops the probe table after the summaries or the
// banding change; the next probe-mode query (or ConfigureRetrieval)
// rebuilds it. Callers hold cfgMu, or are AddTarget (documented as not
// concurrency-safe).
func (db *DB) invalidateRetrieval() {
	db.retr = nil
	db.sketchGen++
}

// DBStats is a point-in-time snapshot of database and cache occupancy,
// safe to collect concurrently with Query.
type DBStats struct {
	Targets       int
	UniqueStrands int
	TotalStrands  int
	// Live write-path state: LiveTargets excludes tombstoned targets;
	// Generation is the compaction generation; WALSeq the sequence of
	// the last applied journal record; PendingWrites/Tombstones the
	// uncompacted write and tombstone counts.
	LiveTargets   int
	Generation    uint64
	WALSeq        uint64
	PendingWrites int
	Tombstones    int
	// VCPCachePairs is the number of cached strand-pair results;
	// VCPCacheQueries the number of distinct query strands they span.
	VCPCachePairs   int
	VCPCacheQueries int
	VCPCacheCap     int
	VCPCacheEvicted uint64
	// Lifetime cache traffic: hits reused a cached pair result, misses
	// computed one (two verifier calls each).
	VCPCacheHits   uint64
	VCPCacheMisses uint64
	// VCPPairsPruned counts pairs rejected by the size-ratio window;
	// VerifierCalls counts vcp.Compute invocations;
	// VerifierCorrespondences counts γ evaluations inside them.
	VCPPairsPruned          uint64
	VerifierCalls           uint64
	VerifierCorrespondences uint64
	// Prefilter is the active mode (PrefilterOff or PrefilterLSH);
	// LSHBands/LSHRows the sketch geometry; LSHMinContainment the
	// heuristic-tier threshold (0 = sound tier only); LSHPairsSkipped
	// the pairs the prefilter removed before any verifier work;
	// LSHDeadDirections the single verifier directions skipped on
	// surviving pairs because the typed inputs cannot inject.
	Prefilter         string
	LSHBands          int
	LSHRows           int
	LSHMinContainment float64
	LSHPairsSkipped   uint64
	LSHDeadDirections uint64
	// Retrieval is the active stage-3 candidate source (RetrievalScan
	// or RetrievalProbe). RetrievalProbes counts probe-mode query
	// strands; RetrievalCandidates their cumulative retrieved
	// candidates; RetrievalSoundCandidates the cumulative
	// injectability-live set sizes (candidates/sound is the recall
	// proxy at heuristic settings — at sound settings the two are
	// equal). The table-shape fields are zero until the probe table has
	// been built (lazily, on first probe use).
	Retrieval                string
	RetrievalProbes          uint64
	RetrievalCandidates      uint64
	RetrievalSoundCandidates uint64
	RetrievalTableBuckets    int
	RetrievalTableMaxPost    int
	RetrievalTableMeanPost   float64
	RetrievalTableSkew       float64
	// Kernel is the active evaluation-kernel mode (batch or scalar);
	// KernelNanos the cumulative wall time γ loops spent inside it;
	// KernelPrefixInstrs / KernelInstrs the γ-invariant and total
	// compiled instruction counts across prepared strands (their ratio
	// is the fraction of evaluation work hoisted out of the γ loop).
	Kernel             string
	KernelNanos        uint64
	KernelPrefixInstrs uint64
	KernelInstrs       uint64
	// GammaBatch is the configured γ-batch width G; GammaBatches the
	// cumulative kernel flushes and GammaBatchRows the correspondences
	// those flushes carried (rows/(G·batches) is the mean occupancy).
	GammaBatch     int
	GammaBatches   uint64
	GammaBatchRows uint64
	// Queries is the number of Query calls answered; StageSeconds holds
	// the cumulative wall-clock seconds each pipeline stage has consumed
	// across them.
	Queries      uint64
	StageSeconds map[string]float64
}

// VCPCacheHitRate returns hits/(hits+misses), or 0 before any traffic.
func (s DBStats) VCPCacheHitRate() float64 {
	if s.VCPCacheHits+s.VCPCacheMisses == 0 {
		return 0
	}
	return float64(s.VCPCacheHits) / float64(s.VCPCacheHits+s.VCPCacheMisses)
}

// Stats returns current occupancy counters. Index sizes and write-path
// state are read under cfgMu (the live write path mutates them at serve
// time); the cache counters are read under the cache lock.
func (db *DB) Stats() DBStats {
	db.cfgMu.RLock()
	prefilter := db.opts.Prefilter
	kernel := db.opts.VCP.Kernel
	gammaBatch := db.opts.VCP.GammaBatch
	retrieval := db.opts.Retrieval
	skCfg := db.sketchCfg
	retr := db.retr
	nTargets := len(db.targets)
	nUniq := len(db.uniq)
	total := db.total
	tombstones := db.tombstones
	generation := db.generation
	walSeq := db.walSeq
	pending := db.pendingWrites
	db.cfgMu.RUnlock()
	s := DBStats{
		Targets:                  nTargets,
		UniqueStrands:            nUniq,
		TotalStrands:             total,
		LiveTargets:              nTargets - tombstones,
		Generation:               generation,
		WALSeq:                   walSeq,
		PendingWrites:            pending,
		Tombstones:               tombstones,
		VCPCacheCap:              db.cacheCap(),
		VCPCacheEvicted:          db.mCacheEvict.Value(),
		VCPCacheHits:             db.mCacheHits.Value(),
		VCPCacheMisses:           db.mCacheMisses.Value(),
		VCPPairsPruned:           db.mPairsPruned.Value(),
		VerifierCalls:            db.mVerifierCalls.Value(),
		VerifierCorrespondences:  db.mGamma.Value(),
		Prefilter:                prefilter,
		LSHBands:                 skCfg.Bands,
		LSHRows:                  skCfg.Rows,
		LSHMinContainment:        skCfg.MinContainment,
		LSHPairsSkipped:          db.mLSHSkipped.Value(),
		LSHDeadDirections:        db.mDeadDirs.Value(),
		Retrieval:                retrieval,
		RetrievalProbes:          db.mProbes.Value(),
		RetrievalCandidates:      db.mProbeCands.Value(),
		RetrievalSoundCandidates: db.mProbeSound.Value(),
		Kernel:                   kernel,
		KernelNanos:              db.mKernelNanos.Value(),
		KernelPrefixInstrs:       db.mPrefixInstrs.Value(),
		KernelInstrs:             db.mKernelInstrs.Value(),
		GammaBatch:               gammaBatch,
		GammaBatches:             db.mGammaBatches.Value(),
		GammaBatchRows:           db.mGammaRows.Value(),
		Queries:                  db.mQueries.Value(),
		StageSeconds:             make(map[string]float64, len(queryStages)),
	}
	if retr != nil {
		rst := retr.Stats()
		s.RetrievalTableBuckets = rst.Buckets
		s.RetrievalTableMaxPost = rst.MaxPosting
		s.RetrievalTableMeanPost = rst.MeanPosting
		s.RetrievalTableSkew = rst.Skew
	}
	for _, st := range queryStages {
		s.StageSeconds[st] = db.stageHist[st].Sum()
	}
	db.mu.Lock()
	s.VCPCachePairs = db.cachePairs
	s.VCPCacheQueries = len(db.vcpCache)
	db.mu.Unlock()
	return s
}

// cacheCap resolves the configured vcpCache bound (< 0: unbounded).
func (db *DB) cacheCap() int {
	if db.opts.VCPCachePairs == 0 {
		return DefaultVCPCachePairs
	}
	return db.opts.VCPCachePairs
}

// decompose runs the front half of the pipeline on one procedure and
// returns its strands that survive the minimum-size filter, plus the
// block count. Options are passed explicitly so the query path can run
// against its entry-time configuration snapshot.
func decompose(p *asm.Proc, opts Options) ([]*strand.Strand, int, error) {
	g, err := cfg.Build(p)
	if err != nil {
		return nil, 0, err
	}
	lp, err := lift.LiftProc(g)
	if err != nil {
		return nil, 0, err
	}
	all := strand.FromProc(lp)
	if opts.PathLen >= 2 {
		limit := opts.PathMaxBlocks
		if limit <= 0 {
			limit = 12
		}
		if len(g.Blocks) <= limit {
			paths, err := lift.LiftPaths(g, opts.PathLen)
			if err != nil {
				return nil, 0, err
			}
			for _, pb := range paths {
				all = append(all, strand.FromBlock(p.Name, pb)...)
			}
		}
	}
	minVars := opts.VCP.MinVars
	if minVars <= 0 {
		minVars = vcp.Default().MinVars
	}
	var kept []*strand.Strand
	for _, s := range all {
		if s.NumVars() >= minVars {
			kept = append(kept, s)
		}
	}
	return kept, len(g.Blocks), nil
}

// AddTarget indexes one target procedure.
func (db *DB) AddTarget(p *asm.Proc) error {
	kept, nBlocks, err := decompose(p, db.opts)
	if err != nil {
		return fmt.Errorf("core: index %s: %w", p.Name, err)
	}
	t := &Target{
		Name:       p.Name,
		Source:     p.Source,
		NumBlocks:  nBlocks,
		NumStrands: len(kept),
	}
	pos := map[int]int{} // unique-strand index -> position in t.strandIdx
	for _, s := range kept {
		key := s.CanonicalKey()
		idx, ok := db.byKey[key]
		if !ok {
			prep := vcp.Prepare(s, db.opts.VCP)
			if prep.Err() != nil {
				return fmt.Errorf("core: prepare strand of %s: %w", p.Name, prep.Err())
			}
			pre, tot := prep.InstrCounts()
			db.mPrefixInstrs.Add(uint64(pre))
			db.mKernelInstrs.Add(uint64(tot))
			idx = len(db.uniq)
			db.uniq = append(db.uniq, prep)
			db.counts = append(db.counts, 0)
			db.byKey[key] = idx
			skStart := time.Now()
			sum := sketch.Summarize(s, db.sketchCfg)
			db.sums = append(db.sums, sum)
			db.sketchIdx.Add(sum)
			db.invalidateRetrieval()
			db.hSketchBuild.Observe(time.Since(skStart).Seconds())
		}
		db.counts[idx]++
		db.total++
		if k, dup := pos[idx]; dup {
			t.strandMult[k]++
		} else {
			pos[idx] = len(t.strandIdx)
			t.strandIdx = append(t.strandIdx, idx)
			t.strandMult = append(t.strandMult, 1)
		}
	}
	db.targets = append(db.targets, t)
	if db.live != nil {
		// Keep the tombstone mask and H0 order in step when bulk adds
		// are mixed with live writes (startup WAL replay after a dirty
		// snapshot).
		db.live = append(db.live, true)
		db.h0Order = db.computeH0Order()
	}
	return nil
}

// TargetScore is one row of a query result: the three method scores for
// one target, plus ground-truth provenance for evaluation.
type TargetScore struct {
	Target *Target
	SVCP   float64
	SLOG   float64
	GES    float64 // the full Esh score
}

// Score returns the score under the requested method.
func (ts TargetScore) Score(m stats.Method) float64 {
	switch m {
	case stats.SVCP:
		return ts.SVCP
	case stats.SLOG:
		return ts.SLOG
	default:
		return ts.GES
	}
}

// Report is the result of one query against the database.
type Report struct {
	QueryName  string
	Source     asm.Provenance
	NumBlocks  int
	NumStrands int // query strands surviving the size filter
	// Results holds one entry per target, sorted by descending GES.
	Results []TargetScore
}

// Rank returns the results re-sorted by the given method's score
// (descending). The receiver is unchanged.
func (r *Report) Rank(m stats.Method) []TargetScore {
	out := make([]TargetScore, len(r.Results))
	copy(out, r.Results)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score(m) > out[j].Score(m) })
	return out
}

// Query scores every indexed target against the query procedure. It is
// QueryCtx with a background context (metrics are still recorded; no
// trace tree is reachable by the caller).
func (db *DB) Query(p *asm.Proc) (*Report, error) {
	return db.QueryCtx(context.Background(), p)
}

// QueryCtx scores every indexed target against the query procedure.
// Each pipeline stage (decompose, prepare, vcp, score) is recorded as a
// child of the telemetry span carried by ctx (if any) with work counts
// attached — strand pairs examined, cache hits and misses, verifier
// invocations — so callers can report a per-query stage breakdown.
// Stage durations also feed the DB's stage histograms regardless of
// whether ctx carries a span.
//
// QueryCtx is PartialQueryCtx finalized against the database's own
// corpus counts; running the identical code path for the sharded and
// unsharded cases is what makes a gateway merge provably score-identical
// to a single node.
func (db *DB) QueryCtx(ctx context.Context, p *asm.Proc) (*Report, error) {
	qc := db.snapshotConfig()
	qp, err := db.partialQuery(ctx, p, &qc)
	if err != nil {
		return nil, err
	}
	// Finalize against the same snapshot the pair loop ran under: a live
	// write between the two would otherwise hand Finalize counts that
	// are longer (or, post-tombstone, differently weighted) than the
	// rows. With tombstones present, h0Order replays the H0 sums in the
	// first-seen order a from-scratch rebuild of the live targets would
	// use, keeping scores bit-identical to that rebuild.
	return qp.FinalizeOrder(qc.counts, qc.h0Order), nil
}

// PartialQueryCtx runs the query pipeline up to (but excluding) the
// corpus-wide H0 estimate: decompose, prepare, the VCP pair loop, and
// the order-insensitive per-target reductions (best forward VCP per
// query strand, S-VCP). The returned QueryPartial carries everything a
// coordinator needs to merge this shard's view with others' and produce
// scores bit-identical to a single node holding the union corpus — see
// QueryPartial.Finalize for the exactness argument.
func (db *DB) PartialQueryCtx(ctx context.Context, p *asm.Proc) (*QueryPartial, error) {
	qc := db.snapshotConfig()
	return db.partialQuery(ctx, p, &qc)
}

// partialQuery is the shared pipeline body behind QueryCtx and
// PartialQueryCtx: both snapshot the configuration exactly once and run
// every stage — and, for QueryCtx, finalization — against that view, so
// a live write landing mid-query can never mix two corpus states.
func (db *DB) partialQuery(ctx context.Context, p *asm.Proc, qc *queryConfig) (*QueryPartial, error) {
	db.mQueries.Inc()

	// Stage 1: decompose — disassembly → CFG → lift → strands.
	_, spDec := telemetry.StartSpan(ctx, "decompose")
	kept, nBlocks, err := decompose(p, qc.opts)
	db.observeStage("decompose", spDec.End())
	if err != nil {
		return nil, fmt.Errorf("core: query %s: %w", p.Name, err)
	}
	spDec.SetAttr("blocks", float64(nBlocks))
	spDec.SetAttr("strands", float64(len(kept)))
	qp := &QueryPartial{
		QueryName:  p.Name,
		Source:     p.Source,
		NumBlocks:  nBlocks,
		NumStrands: len(kept),
		SigmoidK:   qc.opts.SigmoidK,
	}

	// Stage 2: prepare — deduplicate query strands (multiplicity becomes
	// LES weight) and build their verifier preparations. The dedup order
	// is first-seen, which is deterministic in the query text — every
	// shard handed the same query builds the same row order, so a
	// coordinator can merge rows by index.
	_, spPrep := telemetry.StartSpan(ctx, "prepare")
	type qstrand struct {
		prep   *vcp.Prepared
		weight float64
	}
	var qs []*qstrand
	qIdx := map[string]int{}
	for _, s := range kept {
		key := s.CanonicalKey()
		if i, ok := qIdx[key]; ok {
			qs[i].weight++
			continue
		}
		prep := vcp.Prepare(s, qc.opts.VCP)
		if prep.Err() != nil {
			spPrep.End()
			return nil, fmt.Errorf("core: prepare query strand: %w", prep.Err())
		}
		pre, tot := prep.InstrCounts()
		db.mPrefixInstrs.Add(uint64(pre))
		db.mKernelInstrs.Add(uint64(tot))
		qIdx[key] = len(qs)
		qs = append(qs, &qstrand{prep: prep, weight: 1})
	}
	spPrep.SetAttr("unique_strands", float64(len(qs)))
	db.observeStage("prepare", spPrep.End())

	// Stage 3: vcp — for each unique query strand, compute the VCP row
	// against every unique target strand, in both directions. The
	// forward direction VCP(sq, st) drives S-LOG and Esh; the reverse
	// direction VCP(st, sq) drives the paper's S-VCP definition (§6.2),
	// which sums over target strands. The rows are cut into pair-level
	// chunks and drained by a bounded worker pool (see vcpRows), so a
	// query of few large strands still saturates every worker and the
	// goroutine count is bounded by Workers rather than the strand count.
	_, spVCP := telemetry.StartSpan(ctx, "vcp")
	// Pin the engine path this query actually ran under to the span:
	// serve-time reconfiguration (ConfigureKernel/ConfigurePrefilter)
	// can flip db.opts before anyone inspects the trace, so record
	// the entry-time snapshot rather than the live options.
	if qc.opts.VCP.Kernel == vcp.KernelScalar {
		spVCP.SetAttr("kernel_batch", 0)
	} else {
		spVCP.SetAttr("kernel_batch", 1)
	}
	if qc.prefilterOn() {
		spVCP.SetAttr("prefilter_lsh", 1)
	} else {
		spVCP.SetAttr("prefilter_lsh", 0)
	}
	if qc.probeOn() {
		spVCP.SetAttr("retrieval_probe", 1)
	} else {
		spVCP.SetAttr("retrieval_probe", 0)
	}
	preps := make([]*vcp.Prepared, len(qs))
	for i, q := range qs {
		preps[i] = q.prep
	}
	rows, revRows := db.vcpRows(preps, spVCP, qc)
	db.observeStage("vcp", spVCP.End())

	qp.Weights = make([]float64, len(qs))
	for i, q := range qs {
		qp.Weights[i] = q.weight
	}
	qp.Rows = rows

	// Stage 4: score — the shard-local reductions. Both are exact under
	// sharding: per-target best-VCP is a max over the target's own
	// strands, and S-VCP sums maxRev over the target's own strands (a
	// strand shared between two targets contributes to each target's sum
	// on whichever shard holds that target, from rows computed against
	// the full query — so per-shard values equal single-node values).
	_, spScore := telemetry.StartSpan(ctx, "score")

	// maxRev[j]: the best any query strand contains target strand j.
	maxRev := make([]float64, len(qc.uniq))
	for i := range qs {
		for j, v := range revRows[i] {
			if v > maxRev[j] {
				maxRev[j] = v
			}
		}
	}

	// Tombstoned targets are masked here rather than at row level: the
	// surviving targets in add order are exactly the target order a
	// from-scratch rebuild of the live corpus would produce.
	qp.Targets = make([]PartialScore, 0, len(qc.targets))
	for ti, t := range qc.targets {
		if qc.live != nil && !qc.live[ti] {
			continue
		}
		maxVCPs := make([]float64, len(qs))
		for i := range qs {
			best := 0.0
			row := rows[i]
			for _, j := range t.strandIdx {
				if row[j] > best {
					best = row[j]
				}
			}
			maxVCPs[i] = best
		}
		svcp := 0.0
		for _, j := range t.strandIdx {
			svcp += maxRev[j]
		}
		qp.Targets = append(qp.Targets, PartialScore{Target: t, SVCP: svcp, MaxVCP: maxVCPs})
	}
	qp.DataGeneration = qc.generation
	qp.PendingWrites = qc.pending
	spScore.SetAttr("targets", float64(len(qp.Targets)))
	db.observeStage("score", spScore.End())
	return qp, nil
}

// rowStats is the per-row telemetry accumulator: each chunk counts its
// work locally and merges under the row lock; the completed row flushes
// once, so the pair loop never touches an atomic or a span lock.
type rowStats struct {
	pairs       int   // unique target strands examined
	lshSkipped  int   // skipped by the LSH prefilter
	lshCands    int   // LSH candidate-set size (valid when lshOn)
	lshOn       bool  // prefilter consulted for this row
	probeOn     bool  // candidates came from a retrieval-table probe
	probeCands  int   // retrieved candidate-set size (valid when probeOn)
	soundCands  int   // injectability-live set size (valid when probeOn)
	probeNanos  int64 // wall time inside the probe (valid when probeOn)
	pruned      int   // rejected by the size-ratio window
	identical   int   // short-circuited as structurally identical
	hits        int   // cache hits (pair results reused)
	misses      int   // cache misses (pair results computed)
	calls       int   // vcp.Compute invocations (up to two per miss)
	deadDirs    int   // per-direction calls avoided as provably zero
	gamma       int   // input correspondences evaluated inside them
	kernelNanos int64 // wall time inside the evaluation kernel
	gammaB      int64 // γ-batch kernel flushes
	gammaRows   int64 // correspondences those flushes carried
	gammaWidth  int   // configured γ-batch width (for occupancy)
}

// merge folds a chunk's local counts into the row accumulator. The
// row-wide fields (pairs, lshOn, lshCands) are set at init time and left
// alone here.
func (rs *rowStats) merge(d rowStats) {
	rs.lshSkipped += d.lshSkipped
	rs.pruned += d.pruned
	rs.identical += d.identical
	rs.hits += d.hits
	rs.misses += d.misses
	rs.calls += d.calls
	rs.deadDirs += d.deadDirs
	rs.gamma += d.gamma
	rs.kernelNanos += d.kernelNanos
	rs.gammaB += d.gammaB
	rs.gammaRows += d.gammaRows
	if d.gammaWidth > rs.gammaWidth {
		rs.gammaWidth = d.gammaWidth
	}
}

// flush adds the row's counts to the DB counters and, when sp is part of
// a live trace, to the shared vcp stage span.
func (db *DB) flushRowStats(rs rowStats, sp *telemetry.Span) {
	db.mPairsPruned.Add(uint64(rs.pruned))
	db.mPairsIdent.Add(uint64(rs.identical))
	db.mCacheHits.Add(uint64(rs.hits))
	db.mCacheMisses.Add(uint64(rs.misses))
	db.mVerifierCalls.Add(uint64(rs.calls))
	db.mGamma.Add(uint64(rs.gamma))
	db.mKernelNanos.Add(uint64(rs.kernelNanos))
	if rs.gammaB > 0 {
		db.mGammaBatches.Add(uint64(rs.gammaB))
		db.mGammaRows.Add(uint64(rs.gammaRows))
		db.hGammaOccup.Observe(float64(rs.gammaRows) / (float64(rs.gammaWidth) * float64(rs.gammaB)))
	}
	if rs.lshOn {
		db.mLSHSkipped.Add(uint64(rs.lshSkipped))
		db.hLSHCands.Observe(float64(rs.lshCands))
	}
	if rs.probeOn {
		db.mProbes.Inc()
		db.mProbeCands.Add(uint64(rs.probeCands))
		db.mProbeSound.Add(uint64(rs.soundCands))
		db.hProbeCands.Observe(float64(rs.probeCands))
		db.hProbeLatency.Observe(float64(rs.probeNanos) / 1e9)
	}
	if rs.lshOn || rs.probeOn {
		db.mDeadDirs.Add(uint64(rs.deadDirs))
	}
	if sp == nil {
		return
	}
	sp.AddAttr("pairs", float64(rs.pairs))
	if rs.lshOn {
		sp.AddAttr("lsh_skipped", float64(rs.lshSkipped))
		sp.AddAttr("lsh_candidates", float64(rs.lshCands))
	}
	if rs.probeOn {
		sp.AddAttr("retrieval_candidates", float64(rs.probeCands))
		sp.AddAttr("retrieval_sound_candidates", float64(rs.soundCands))
		sp.AddAttr("probe_nanos", float64(rs.probeNanos))
	}
	if rs.lshOn || rs.probeOn {
		sp.AddAttr("dead_directions", float64(rs.deadDirs))
	}
	sp.AddAttr("pairs_pruned", float64(rs.pruned))
	sp.AddAttr("pairs_identical", float64(rs.identical))
	sp.AddAttr("cache_hits", float64(rs.hits))
	sp.AddAttr("cache_misses", float64(rs.misses))
	sp.AddAttr("verifier_calls", float64(rs.calls))
	sp.AddAttr("correspondences", float64(rs.gamma))
	sp.AddAttr("kernel_nanos", float64(rs.kernelNanos))
	sp.AddAttr("gamma_batches", float64(rs.gammaB))
	sp.AddAttr("gamma_batch_rows", float64(rs.gammaRows))
}

// maxPairChunk caps the number of target strands one work-queue item
// covers, so the per-chunk bookkeeping (row lock, once-init check)
// stays noise next to the verifier calls inside. Below the cap the
// chunk size adapts to the workload — see pairChunk.
const maxPairChunk = 64

// pairChunk picks the work-queue chunk size for a query of nq strands
// against n targets: small enough that even a single-strand query
// against a small index cuts into several chunks per worker (so the
// machine saturates on the pair population, not the strand count),
// capped at maxPairChunk for large corpora.
func pairChunk(nq, n, workers int) int {
	chunk := (nq*n + 4*workers - 1) / (4 * workers)
	if chunk < 1 {
		chunk = 1
	}
	return min(chunk, maxPairChunk)
}

// vcpRowState carries one query strand's row through the pair-level
// work queue. The once-init populates the row-wide inputs (cache
// snapshot, prefilter candidate set, size ratio) on whichever worker
// touches the row first; chunks then run lock-free over disjoint target
// ranges, merging their telemetry and fresh cache entries under the row
// lock; the worker that finishes the last chunk flushes the stats and
// writes the fresh entries back to the shared cache.
type vcpRowState struct {
	q        *vcp.Prepared
	qc       *queryConfig // the query's entry-time configuration snapshot
	fwd, rev []float64

	// Probe mode: the retrieved candidate ids, filled at row setup
	// (before chunking — the chunk cuts cover this list, not [0, n)).
	// nil in scan mode. probed distinguishes "probe mode, no
	// candidates" from "scan mode".
	candIDs []int32
	probed  bool

	init   sync.Once
	cached map[string][2]float64 // shared-cache snapshot, read-only after init
	cand   []bool                // prefilter candidates (nil when off or probing)
	qSum   sketch.Summary
	ratio  float64

	mu      sync.Mutex
	fresh   map[string][2]float64 // pairs computed by this row's chunks
	rs      rowStats
	pending atomic.Int32 // chunks not yet finished
}

// vcpRows computes VCP(q, u) and VCP(u, q) for every (query strand q,
// unique target strand u) pair, applying the §5.5 size window and the
// cross-query memo cache. All rows are cut into pairChunkSize chunks up
// front and drained through one shared queue by min(Workers, chunks)
// goroutines, so parallelism comes from the pair population rather than
// the strand count: a query with fewer strands than workers no longer
// leaves cores idle, and a query with thousands of strands no longer
// spawns a goroutine per strand. Work counts flow into sp (the shared
// vcp stage span) and the DB counters once per row.
func (db *DB) vcpRows(qs []*vcp.Prepared, sp *telemetry.Span, qc *queryConfig) (rows, revRows [][]float64) {
	n := len(qc.uniq)
	rows = make([][]float64, len(qs))
	revRows = make([][]float64, len(qs))
	states := make([]*vcpRowState, len(qs))
	probe := qc.probeOn() && qc.retr != nil
	totalPairs := 0
	var scratch []bool
	if probe {
		scratch = db.getMark(n)
	}
	for i, q := range qs {
		st := &vcpRowState{
			q:     q,
			qc:    qc,
			fwd:   make([]float64, n),
			rev:   make([]float64, n),
			fresh: map[string][2]float64{},
		}
		if probe {
			// Probe the retrieval table up front: the chunk cuts below
			// cover the retrieved candidate list, so everything outside
			// it is never touched (its row entries stay zero, exactly
			// like a scan-mode prefilter skip).
			st.probed = true
			st.qSum = sketch.Summarize(q.S, qc.sketchCfg)
			start := time.Now()
			st.candIDs, st.rs.soundCands = qc.retr.Probe(st.qSum, scratch, nil)
			// Delta overlay: strands written live since the table was
			// built (sketch.RetrievalIndex.ProbeDelta has the contract).
			var deltaSound int
			st.candIDs, deltaSound = qc.retr.ProbeDelta(st.qSum, qc.sums[:n], qc.counts, st.candIDs)
			st.rs.soundCands += deltaSound
			st.rs.probeNanos = time.Since(start).Nanoseconds()
			st.rs.probeOn = true
			st.rs.probeCands = len(st.candIDs)
			st.rs.pairs = len(st.candIDs)
			totalPairs += len(st.candIDs)
		} else {
			st.rs.pairs = n
			totalPairs += n
		}
		states[i] = st
		rows[i], revRows[i] = st.fwd, st.rev
	}
	if probe {
		db.putMark(scratch)
	}
	size := pairChunk(1, totalPairs, qc.opts.Workers)
	type chunk struct{ row, lo, hi int }
	var chunks []chunk
	for i, st := range states {
		rowLen := n
		if st.probed {
			rowLen = len(st.candIDs)
		}
		if rowLen == 0 {
			// No chunk will ever touch this row: flush its telemetry
			// (probe latency, empty candidate set) here.
			db.flushRowStats(st.rs, sp)
			continue
		}
		st.pending.Store(int32((rowLen + size - 1) / size))
		for lo := 0; lo < rowLen; lo += size {
			chunks = append(chunks, chunk{row: i, lo: lo, hi: min(lo+size, rowLen)})
		}
	}
	if len(chunks) == 0 {
		return rows, revRows
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < min(qc.opts.Workers, len(chunks)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= len(chunks) {
					return
				}
				db.vcpChunk(states[chunks[c].row], chunks[c].lo, chunks[c].hi, sp)
			}
		}()
	}
	wg.Wait()
	return rows, revRows
}

// initRow populates a row's shared inputs: the memo-cache snapshot and
// — with the prefilter on — the candidate target set (everything
// unmarked is skipped in vcpChunk before the size window runs: pairs
// that are injectability-dead in both directions, plus — with the
// heuristic tier enabled — pairs the LSH/containment tests consider
// dissimilar).
func (db *DB) initRow(st *vcpRowState) {
	qKey := st.q.Key()
	db.mu.Lock()
	st.cached = make(map[string][2]float64, len(db.vcpCache[qKey]))
	for k, v := range db.vcpCache[qKey] {
		st.cached[k] = v
	}
	db.mu.Unlock()

	st.ratio = st.qc.opts.VCP.SizeRatio
	if st.ratio <= 0 {
		st.ratio = vcp.Default().SizeRatio
	}
	// In probe mode the candidate set was retrieved at row setup (it
	// determined the chunk cuts); the scan-mode prefilter has nothing
	// left to mark.
	if !st.probed && st.qc.prefilterOn() {
		st.rs.lshOn = true
		st.cand = db.getMark(len(st.qc.uniq))
		st.qSum = sketch.Summarize(st.q.S, st.qc.sketchCfg)
		st.rs.lshCands = st.qc.sketchIdx.Candidates(st.qSum, st.cand)
	}
}

// vcpChunk processes the target strands [lo, hi) of one row: the pair
// loop body (identical-key short circuit, prefilter, size window, memo
// cache, verifier calls in both live directions) over a local stats
// accumulator and fresh-entry map, merged into the row under its lock.
// The identical-key short circuit stays ahead of the prefilter so an
// exact structural match can never be lost to sketch noise. The chunk
// that completes the row triggers finishRow.
func (db *DB) vcpChunk(st *vcpRowState, lo, hi int, sp *telemetry.Span) {
	st.init.Do(func() { db.initRow(st) })

	q := st.q
	qKey := q.Key()
	var rs rowStats
	rs.gammaWidth = st.qc.opts.VCP.GammaBatch
	var fresh map[string][2]float64
	// One forward-direction evaluator for the whole chunk: the query
	// strand's kernel — and its evaluated γ-invariant prefix — persists
	// across every pair here instead of being re-acquired per pair.
	// (Chunks of one row run on concurrent workers and kernels are not
	// concurrency-safe, so the unit of reuse is the chunk, not the row.)
	// The reverse direction swaps the query to the target strand each
	// pair, so it keeps the per-call path; the pool makes that cheap.
	fwdEval := vcp.NewEvaluator(q, st.qc.opts.VCP)
	defer fwdEval.Close()
	for k := lo; k < hi; k++ {
		j := k
		if st.candIDs != nil {
			j = int(st.candIDs[k]) // probe mode: [lo,hi) indexes the candidate list
		}
		// Dead strands (every owning target tombstoned) are skipped
		// before any work — including the identical short circuit — so
		// their row entries stay zero and scan and probe hand the
		// verifier the same live pair set. Nothing downstream reads
		// them: h0Order excludes dead strands and stage 4 only walks
		// live targets' strand lists.
		if st.qc.counts[j] == 0 {
			continue
		}
		u := st.qc.uniq[j]
		uKey := u.Key()
		if qKey == uKey {
			st.fwd[j], st.rev[j] = 1.0, 1.0 // identical strands match exactly
			rs.identical++
			continue
		}
		if st.cand != nil && !st.cand[j] {
			rs.lshSkipped++
			continue
		}
		// The size window is symmetric, so it gates both directions.
		if !vcp.SizeCompatible(q.S, u.S, st.ratio) {
			rs.pruned++
			continue
		}
		v, hit := st.cached[uKey]
		if !hit {
			// With the prefilter on (or a probed candidate set), a
			// candidate pair can still be injectability-dead in ONE
			// direction: that direction's VCP is exactly 0 and its
			// verifier call is skipped.
			fwdLive, revLive := true, true
			if st.cand != nil || st.probed {
				uSum := st.qc.sums[j]
				fwdLive, revLive = st.qSum.Injects(uSum), uSum.Injects(st.qSum)
			}
			if fwdLive {
				fv, fst := fwdEval.Compute(u)
				v[0] = fv
				rs.calls++
				rs.gamma += fst.Correspondences
				rs.kernelNanos += fst.KernelNanos
				rs.gammaB += fst.Batches
				rs.gammaRows += fst.BatchRows
			} else {
				rs.deadDirs++
			}
			if revLive {
				rv, rst := vcp.ComputeWithStats(u, q, st.qc.opts.VCP)
				v[1] = rv
				rs.calls++
				rs.gamma += rst.Correspondences
				rs.kernelNanos += rst.KernelNanos
				rs.gammaB += rst.Batches
				rs.gammaRows += rst.BatchRows
			} else {
				rs.deadDirs++
			}
			rs.misses++
			if fresh == nil {
				fresh = map[string][2]float64{}
			}
			fresh[uKey] = v
		} else {
			rs.hits++
		}
		st.fwd[j], st.rev[j] = v[0], v[1]
	}

	st.mu.Lock()
	st.rs.merge(rs)
	for k, v := range fresh {
		st.fresh[k] = v
	}
	st.mu.Unlock()

	if st.pending.Add(-1) == 0 {
		db.finishRow(st, sp)
	}
}

// finishRow runs once per row, after its last chunk: flush the merged
// telemetry and write the freshly computed pairs back to the shared
// memo cache. The cache is read once at init and written back once
// here, so concurrent chunks never fight over the cache lock inside
// the pair loop.
func (db *DB) finishRow(st *vcpRowState, sp *telemetry.Span) {
	db.flushRowStats(st.rs, sp)
	if st.cand != nil {
		db.putMark(st.cand)
		st.cand = nil
	}
	if len(st.fresh) == 0 {
		return
	}
	qKey := st.q.Key()
	db.mu.Lock()
	shared := db.vcpCache[qKey]
	if shared == nil {
		shared = map[string][2]float64{}
		db.vcpCache[qKey] = shared
		db.cacheOrder = append(db.cacheOrder, qKey)
	}
	for k, v := range st.fresh {
		if _, dup := shared[k]; !dup {
			db.cachePairs++
		}
		shared[k] = v
	}
	db.evictLocked(qKey)
	db.mu.Unlock()
}

// evictLocked drops whole query-strand rows, oldest first, until the
// cache is back under its pair bound. The row just written (keep) is
// spared unless it is the only one left, so a single huge query cannot
// evict itself into a cold cache on every call. Callers hold db.mu.
func (db *DB) evictLocked(keep string) {
	bound := db.cacheCap()
	if bound < 0 {
		return
	}
	for db.cachePairs > bound && len(db.cacheOrder) > 0 {
		oldest := db.cacheOrder[0]
		if oldest == keep && len(db.cacheOrder) == 1 {
			return
		}
		db.cacheOrder = db.cacheOrder[1:]
		if oldest == keep {
			db.cacheOrder = append(db.cacheOrder, oldest)
			continue
		}
		db.cachePairs -= len(db.vcpCache[oldest])
		delete(db.vcpCache, oldest)
		db.mCacheEvict.Inc()
	}
	// Re-base the order slice occasionally so the sliced-off prefix of
	// the backing array can be collected.
	if cap(db.cacheOrder) > 2*len(db.cacheOrder)+64 {
		db.cacheOrder = append([]string(nil), db.cacheOrder...)
	}
}
