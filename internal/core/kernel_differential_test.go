package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/stats"
	"repro/internal/vcp"
)

// The batched SoA kernel is an optimisation, not a new verifier: under
// -kernel=batch every fingerprint — and therefore every VCP, every GES
// score and every ranking — must be byte-identical to -kernel=scalar.
// This harness builds the same corpus into a scalar DB and a batch DB,
// runs vulnerability queries through both, and compares rankings AND
// raw scores; it also pins that the batch engine actually engaged (γ
// time was attributed to the kernel and a nonzero instruction prefix
// was hoisted) and that flipping the kernel at runtime with
// ConfigureKernel keeps the answers fixed.
func TestKernelDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential kernel run is slow")
	}
	procs := buildDiffCorpus(t)

	scalarOpts := Options{}
	scalarOpts.VCP.Kernel = vcp.KernelScalar
	dbScalar := NewDB(scalarOpts)
	dbBatch := NewDB(Options{}) // batch is the default
	if got := dbBatch.Stats().Kernel; got != vcp.KernelBatch {
		t.Fatalf("default kernel = %q, want %q", got, vcp.KernelBatch)
	}
	fillDB(t, dbScalar, procs)
	fillDB(t, dbBatch, procs)

	qtc, ok := compile.ByName("clang-3.5")
	if !ok {
		t.Fatal("query toolchain missing")
	}
	vulns := corpus.Vulns()
	if len(vulns) > 3 {
		vulns = vulns[:3]
	}
	for _, v := range vulns {
		q, err := corpus.CompileVuln(v, qtc, false)
		if err != nil {
			t.Fatalf("compile query %s: %v", v.Alias, err)
		}
		repScalar, err := dbScalar.Query(q)
		if err != nil {
			t.Fatalf("query %s (scalar): %v", v.Alias, err)
		}
		repBatch, err := dbBatch.Query(q)
		if err != nil {
			t.Fatalf("query %s (batch): %v", v.Alias, err)
		}
		for _, m := range []stats.Method{stats.Esh, stats.SLOG, stats.SVCP} {
			if s, b := rankingNames(repScalar, m), rankingNames(repBatch, m); s != b {
				t.Errorf("query %s: %v ranking diverges between kernels", v.Alias, m)
			}
		}
		// Rankings could coincide while scores drift; the fingerprints
		// are supposed to be byte-identical, so the scores must be too.
		var drift []string
		for i := range repScalar.Results {
			s, b := repScalar.Results[i], repBatch.Results[i]
			if s.Target.Name != b.Target.Name || s.GES != b.GES || s.SLOG != b.SLOG || s.SVCP != b.SVCP {
				drift = append(drift, fmt.Sprintf(
					"  %-52s scalar GES=%.9f batch GES=%.9f", s.Target.Name, s.GES, b.GES))
			}
		}
		if len(drift) > 0 {
			t.Errorf("query %s: %d targets with non-identical scores:\n%s",
				v.Alias, len(drift), strings.Join(drift[:min(5, len(drift))], "\n"))
		}

		// Runtime flip on the scalar DB: same answers through the batch
		// kernel against the same prepared index (the γ counts must stay
		// identical too, or the caches diverge between modes).
		if err := dbScalar.ConfigureKernel(vcp.KernelBatch); err != nil {
			t.Fatal(err)
		}
		repFlip, err := dbScalar.Query(q)
		if err != nil {
			t.Fatalf("query %s (flipped): %v", v.Alias, err)
		}
		if rankingNames(repFlip, stats.Esh) != rankingNames(repScalar, stats.Esh) {
			t.Errorf("query %s: ranking changed after ConfigureKernel(batch)", v.Alias)
		}
		if err := dbScalar.ConfigureKernel(vcp.KernelScalar); err != nil {
			t.Fatal(err)
		}
	}

	ss, bs := dbScalar.Stats(), dbBatch.Stats()
	if ss.VerifierCorrespondences != bs.VerifierCorrespondences {
		t.Errorf("γ counts diverge: scalar=%d batch=%d",
			ss.VerifierCorrespondences, bs.VerifierCorrespondences)
	}
	if bs.KernelNanos == 0 || ss.KernelNanos == 0 {
		t.Error("kernel time telemetry not recorded")
	}
	if bs.KernelInstrs == 0 || bs.KernelPrefixInstrs == 0 {
		t.Errorf("hoisting telemetry empty: prefix=%d total=%d",
			bs.KernelPrefixInstrs, bs.KernelInstrs)
	}
	t.Logf("kernel γ time: scalar=%.1fms batch=%.1fms; hoisted %d/%d instrs (%.1f%%)",
		float64(ss.KernelNanos)/1e6, float64(bs.KernelNanos)/1e6,
		bs.KernelPrefixInstrs, bs.KernelInstrs,
		100*float64(bs.KernelPrefixInstrs)/float64(bs.KernelInstrs))
}
