package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/vcp"
)

// The LSH prefilter is an optimisation, not a new ranking method: at
// the sound defaults it must leave GES rankings byte-identical to the
// exhaustive pair loop while doing measurably less verifier work. This
// differential harness builds the same small-scale corpus into two DBs
// (prefilter off and lsh), runs representative vulnerability queries
// through both, and then audits every pair-direction the prefilter
// skipped by recomputing its true VCP — the sound core only ever skips
// work that is provably zero, so a single nonzero value is a bug, not a
// tuning tradeoff.

func buildDiffCorpus(t *testing.T) []*asm.Proc {
	t.Helper()
	var tcs []compile.Toolchain
	for _, n := range []string{"gcc-4.9", "clang-3.5", "icc-15.0.1"} {
		tc, ok := compile.ByName(n)
		if !ok {
			t.Fatalf("unknown toolchain %q", n)
		}
		tcs = append(tcs, tc)
	}
	procs, err := corpus.Build(corpus.BuildConfig{
		Toolchains:     tcs,
		IncludePatched: true,
		SynthVariants:  0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return procs
}

func fillDB(t *testing.T, db *DB, procs []*asm.Proc) {
	t.Helper()
	for _, p := range procs {
		if err := db.AddTarget(p); err != nil {
			t.Fatalf("index %s: %v", p.Name, err)
		}
	}
}

func rankingNames(rep *Report, m stats.Method) string {
	var b strings.Builder
	for _, ts := range rep.Rank(m) {
		b.WriteString(ts.Target.Name)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestPrefilterDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential prefilter run is slow")
	}
	procs := buildDiffCorpus(t)

	dbOff := NewDB(Options{})
	dbLSH := NewDB(Options{Prefilter: PrefilterLSH})
	fillDB(t, dbOff, procs)
	fillDB(t, dbLSH, procs)

	qtc, ok := compile.ByName("clang-3.5")
	if !ok {
		t.Fatal("query toolchain missing")
	}
	vulns := corpus.Vulns()
	if len(vulns) > 3 {
		vulns = vulns[:3]
	}
	for _, v := range vulns {
		q, err := corpus.CompileVuln(v, qtc, false)
		if err != nil {
			t.Fatalf("compile query %s: %v", v.Alias, err)
		}
		repOff, err := dbOff.Query(q)
		if err != nil {
			t.Fatalf("query %s (off): %v", v.Alias, err)
		}
		repLSH, err := dbLSH.Query(q)
		if err != nil {
			t.Fatalf("query %s (lsh): %v", v.Alias, err)
		}
		off := rankingNames(repOff, stats.Esh)
		lsh := rankingNames(repLSH, stats.Esh)
		if off != lsh {
			ro, rl := repOff.Rank(stats.Esh), repLSH.Rank(stats.Esh)
			var diffs []string
			for i := range ro {
				if ro[i].Target.Name != rl[i].Target.Name {
					diffs = append(diffs, fmt.Sprintf(
						"  rank %3d: off %-52s GES=%.6f | lsh %-52s GES=%.6f",
						i+1, ro[i].Target.Name, ro[i].GES, rl[i].Target.Name, rl[i].GES))
				}
			}
			t.Errorf("query %s: GES ranking diverges under the LSH prefilter at %d positions:\n%s",
				v.Alias, len(diffs), strings.Join(diffs, "\n"))
		}

		auditDroppedPairs(t, dbLSH, q, v.Alias)
	}

	offCalls := dbOff.Stats().VerifierCalls
	lshCalls := dbLSH.Stats().VerifierCalls
	if offCalls == 0 {
		t.Fatal("off-mode run made no verifier calls; harness is vacuous")
	}
	t.Logf("verifier calls: off=%d lsh=%d (%.1f%% saved; %d pairs LSH-skipped)",
		offCalls, lshCalls, 100*(1-float64(lshCalls)/float64(offCalls)),
		dbLSH.Stats().LSHPairsSkipped)
	if float64(lshCalls) > 0.7*float64(offCalls) {
		t.Errorf("LSH prefilter saved too little verifier work: %d calls vs %d off (want <= 70%%)",
			lshCalls, offCalls)
	}
}

// auditDroppedPairs recomputes the ground truth for everything the
// prefilter removed from this query. At the sound defaults the claim is
// exact, so the audit is too: a pair skipped outright (dead in both
// directions) must have true VCP exactly 0 both ways, and a surviving
// pair's dead direction must score exactly 0 — any nonzero value is an
// unsound skip that perturbs scores, not just a recall leak.
func auditDroppedPairs(t *testing.T, db *DB, q *asm.Proc, alias string) {
	t.Helper()
	kept, _, err := decompose(q, db.opts)
	if err != nil {
		t.Fatalf("decompose %s: %v", alias, err)
	}
	ratio := db.opts.VCP.SizeRatio
	if ratio <= 0 {
		ratio = vcp.Default().SizeRatio
	}
	seen := map[string]bool{}
	dropped, deadDirs, unsound := 0, 0, 0
	var examples []string
	flag := func(j int, dir string, v float64) {
		unsound++
		if len(examples) < 5 {
			examples = append(examples,
				fmt.Sprintf("  %s vcp=%.3f target-strand=%d", dir, v, j))
		}
	}
	for _, s := range kept {
		key := s.CanonicalKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		prep := vcp.Prepare(s, db.opts.VCP)
		if prep.Err() != nil {
			t.Fatalf("prepare query strand: %v", prep.Err())
		}
		qSum := sketch.Summarize(s, db.sketchCfg)
		mark := make([]bool, len(db.uniq))
		db.sketchIdx.Candidates(qSum, mark)
		for j, u := range db.uniq {
			if u.Key() == key || !vcp.SizeCompatible(s, u.S, ratio) {
				continue
			}
			uSum := db.sums[j]
			if !mark[j] {
				// Skipped outright: must be zero in both directions.
				dropped++
				if fv := vcp.Compute(prep, u, db.opts.VCP); fv != 0 {
					flag(j, "dropped-fwd", fv)
				}
				if rv := vcp.Compute(u, prep, db.opts.VCP); rv != 0 {
					flag(j, "dropped-rev", rv)
				}
				continue
			}
			// Candidate pair: each direction the engine declares dead
			// must truly score zero.
			if !qSum.Injects(uSum) {
				deadDirs++
				if fv := vcp.Compute(prep, u, db.opts.VCP); fv != 0 {
					flag(j, "dead-fwd", fv)
				}
			}
			if !uSum.Injects(qSum) {
				deadDirs++
				if rv := vcp.Compute(u, prep, db.opts.VCP); rv != 0 {
					flag(j, "dead-rev", rv)
				}
			}
		}
	}
	t.Logf("query %s: audited %d dropped pairs and %d dead directions of surviving pairs, %d unsound",
		alias, dropped, deadDirs, unsound)
	if unsound > 0 {
		t.Errorf("query %s: prefilter skipped %d pair-directions with nonzero true VCP:\n%s",
			alias, unsound, strings.Join(examples, "\n"))
	}
}
