package core

import (
	"testing"

	"repro/internal/vcp"
)

// TestVCPCacheEviction checks that the cross-query memo cache stays
// bounded: with a tiny pair cap, querying two different procedures must
// trigger eviction and keep occupancy at (or under) one query's row.
func TestVCPCacheEviction(t *testing.T) {
	db := NewDB(Options{VCP: vcp.Config{MinVars: 3}, VCPCachePairs: 2})
	for _, src := range []string{iccStyle, unrelated} {
		if err := db.AddTarget(parse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Query(parse(t, gccStyle)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(parse(t, unrelated)); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.VCPCacheEvicted == 0 {
		t.Fatalf("no evictions with cap 2: %+v", s)
	}
	if s.VCPCacheCap != 2 {
		t.Fatalf("cap = %d, want 2", s.VCPCacheCap)
	}
	// Bound may be transiently exceeded by one query strand's row, never
	// by more: every retained row belongs to a live query strand key.
	if s.VCPCacheQueries > s.VCPCachePairs {
		t.Fatalf("more query keys than pairs: %+v", s)
	}
}

// TestVCPCacheUnbounded checks that a negative cap disables eviction.
func TestVCPCacheUnbounded(t *testing.T) {
	db := NewDB(Options{VCP: vcp.Config{MinVars: 3}, VCPCachePairs: -1})
	for _, src := range []string{iccStyle, unrelated} {
		if err := db.AddTarget(parse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Query(parse(t, gccStyle)); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.VCPCacheEvicted != 0 {
		t.Fatalf("unexpected evictions: %+v", s)
	}
	if s.VCPCachePairs == 0 {
		t.Fatal("cache did not populate")
	}
}

// TestQueryAfterEvictionDeterministic checks that eviction never changes
// scores, only recomputation cost.
func TestQueryAfterEvictionDeterministic(t *testing.T) {
	bounded := NewDB(Options{VCP: vcp.Config{MinVars: 3}, VCPCachePairs: 1})
	unbounded := NewDB(Options{VCP: vcp.Config{MinVars: 3}, VCPCachePairs: -1})
	for _, src := range []string{iccStyle, unrelated} {
		if err := bounded.AddTarget(parse(t, src)); err != nil {
			t.Fatal(err)
		}
		if err := unbounded.AddTarget(parse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		rb, err := bounded.Query(parse(t, gccStyle))
		if err != nil {
			t.Fatal(err)
		}
		ru, err := unbounded.Query(parse(t, gccStyle))
		if err != nil {
			t.Fatal(err)
		}
		for j := range rb.Results {
			if rb.Results[j].GES != ru.Results[j].GES {
				t.Fatalf("iteration %d: bounded GES %v != unbounded %v",
					i, rb.Results[j].GES, ru.Results[j].GES)
			}
		}
	}
}
