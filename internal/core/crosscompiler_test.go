package core

import (
	"fmt"
	"testing"

	"repro/internal/compile"
	"repro/internal/minic"
	"repro/internal/stats"
)

// Realistically sized source procedures (the paper's queries average
// dozens of statements). Querying one compilation of hash_stream must
// rank its six other compilations above unrelated procedures.
const srcA = `
func hash_stream(buf, len, seed) {
	var acc = seed ^ 0x9E3779B97F4A7C15;
	var i = 0;
	while (i + 8 <= len) {
		var w = load64(buf + i);
		w = w * 0xC2B2AE3D27D4EB4F;
		w = (w << 31) | (w >>u 33);
		acc = acc ^ w;
		acc = acc * 0x9E3779B97F4A7C15 + 0x165667B19E3779F9;
		i = i + 8;
	}
	var tail = 0;
	while (i < len) {
		tail = (tail << 8) | load8(buf + i);
		i = i + 1;
	}
	acc = acc ^ tail;
	acc = acc ^ (acc >>u 29);
	acc = acc * 0xBF58476D1CE4E5B9;
	acc = acc ^ (acc >>u 32);
	store64(buf + len, acc);
	return acc;
}`

const srcB = `
func parse_fields(buf, len, maxf) {
	var count = 0;
	var i = 0;
	var start = 0;
	var sum = 0;
	while (i < len) {
		var c = load8(buf + i);
		if (c == 0x2C) {
			var flen = i - start;
			if (flen > 0 && count < maxf) {
				sum = sum + flen * flen;
				count = count + 1;
			}
			start = i + 1;
		} else {
			if (c == 0) {
				break;
			}
		}
		i = i + 1;
	}
	if (i > start && count < maxf) {
		count = count + 1;
		sum = sum + (i - start);
	}
	return count * 0x10000 + (sum & 0xFFFF);
}`

const srcC = `
func table_lookup(tbl, keys, nkeys, mask) {
	var i = 0;
	var hits = 0;
	var acc = 0;
	while (i < nkeys) {
		var k = load32(keys + i * 4);
		var h = (k * 0x85EBCA6B) & mask;
		var slot = load64(tbl + h * 8);
		if (slot == k) {
			hits = hits + 1;
			acc = acc + slot;
		} else {
			var h2 = (h + 1) & mask;
			var probe = load64(tbl + h2 * 8);
			if (probe == k) {
				hits = hits + 1;
				acc = acc ^ probe;
			}
		}
		i = i + 1;
	}
	return hits * 0x100000 + (acc & 0xFFFFF);
}`

func buildCrossDB(t *testing.T) *DB {
	t.Helper()
	sources := map[string]string{"hash_stream": srcA, "parse_fields": srcB, "table_lookup": srcC}
	db := NewDB(Options{})
	for name, src := range sources {
		prog := minic.MustParse(src)
		for _, tc := range compile.Toolchains() {
			p, err := compile.Compile(prog, name, tc, compile.O2())
			if err != nil {
				t.Fatal(err)
			}
			p.Name = name + "@" + tc.Name()
			p.Source.SourceSym = name
			p.Source.Toolchain = tc.Name()
			if err := db.AddTarget(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestCrossCompilerRanking(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-compiler ranking is slow")
	}
	db := buildCrossDB(t)
	gcc, _ := compile.ByName("gcc-4.9")
	q, err := compile.Compile(minic.MustParse(srcA), "hash_stream", gcc, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	q.Source.SourceSym = "hash_stream"
	rep, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	dump := ""
	for _, r := range rep.Results {
		dump += fmt.Sprintf("\n  %-28s GES=%8.3f S-VCP=%7.2f", r.Target.Name, r.GES, r.SVCP)
	}
	t.Logf("ranking:%s", dump)

	// At this deliberately small corpus size (21 targets) the H0
	// estimate cannot fully damp compiler-idiom strands — the phenomenon
	// §6.2 of the paper analyzes — so we require at least 6 of the 7
	// compilations in the top 9 and a clean top-5. The full-scale
	// behaviour is validated by the experiments package on corpora of
	// hundreds of procedures.
	tp := 0
	for _, r := range rep.Results[:9] {
		if r.Target.Source.SourceSym == "hash_stream" {
			tp++
		}
	}
	if tp < 6 {
		t.Errorf("only %d/7 true positives in Esh top 9%s", tp, dump)
	}
	for _, r := range rep.Results[:5] {
		if r.Target.Source.SourceSym != "hash_stream" {
			t.Errorf("top-5 contains %s", r.Target.Name)
		}
	}
	// S-VCP uses the paper's reverse-direction definition (§6.2), whose
	// large-target bias makes it noticeably weaker — the entire point of
	// the sub-method decomposition. It must still retrieve a majority.
	svcp := rep.Rank(stats.SVCP)
	svcpTP := 0
	for _, r := range svcp[:9] {
		if r.Target.Source.SourceSym == "hash_stream" {
			svcpTP++
		}
	}
	if svcpTP < 4 {
		t.Errorf("S-VCP top-9 TPs = %d", svcpTP)
	}
	if svcpTP > tp {
		t.Logf("note: S-VCP (%d) beat Esh (%d) on this small corpus", svcpTP, tp)
	}
}
