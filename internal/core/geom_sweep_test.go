package core

import (
	"os"
	"testing"

	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/ivl"
	"repro/internal/sketch"
	"repro/internal/vcp"
)

// Throwaway sweep harness: RUN_GEOM_SWEEP=1 go test -run TestGeomSweep
func TestGeomSweep(t *testing.T) {
	if os.Getenv("RUN_GEOM_SWEEP") == "" {
		t.Skip("set RUN_GEOM_SWEEP=1")
	}
	procs := buildDiffCorpus(t)
	base := NewDB(Options{})
	fillDB(t, base, procs)

	qtc, _ := compile.ByName("clang-3.5")
	var queries []*vcp.Prepared
	for _, v := range corpus.Vulns()[:3] {
		q, err := corpus.CompileVuln(v, qtc, false)
		if err != nil {
			t.Fatal(err)
		}
		kept, _, err := decompose(q, base.opts)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, s := range kept {
			k := s.CanonicalKey()
			if seen[k] {
				continue
			}
			seen[k] = true
			queries = append(queries, vcp.Prepare(s, base.opts.VCP))
		}
	}
	ratio := vcp.Default().SizeRatio

	// Ground truth: all eligible (non-identical, size-compatible) pairs
	// with their true fwd VCP values.
	type pair struct {
		q  *vcp.Prepared
		j  int
		fv float64
		rv float64
	}
	var eligible []pair
	for _, qp := range queries {
		for j, u := range base.uniq {
			if u.Key() == qp.Key() || !vcp.SizeCompatible(qp.S, u.S, ratio) {
				continue
			}
			fv := vcp.Compute(qp, u, base.opts.VCP)
			rv := vcp.Compute(u, qp, base.opts.VCP)
			eligible = append(eligible, pair{qp, j, fv, rv})
		}
	}
	t.Logf("eligible pairs: %d", len(eligible))

	// Sound dead-direction test: VCP(a,b) == 0 whenever a's typed
	// inputs cannot inject into b's. Measure how many eligible pairs
	// are dead in one or both directions — and confirm soundness
	// against the ground-truth values.
	count := func(vars []ivl.Var) (ni, nm int) {
		for _, v := range vars {
			if v.Type == ivl.Mem {
				nm++
			} else {
				ni++
			}
		}
		return
	}
	fits := func(a, b *vcp.Prepared) bool {
		ai, am := count(a.S.Inputs)
		bi, bm := count(b.S.Inputs)
		return ai <= bi && am <= bm
	}
	fwdDead, revDead, bothDead, unsound := 0, 0, 0, 0
	for _, p := range eligible {
		u := base.uniq[p.j]
		fd, rd := !fits(p.q, u), !fits(u, p.q)
		if fd {
			fwdDead++
			if p.fv != 0 {
				unsound++
			}
		}
		if rd {
			revDead++
			if rd && p.rv != 0 {
				unsound++
			}
		}
		if fd && rd {
			bothDead++
		}
	}
	t.Logf("dead directions: fwd %d/%d (%.0f%%), rev %d/%d (%.0f%%), both %d (%.0f%%), call reduction %.0f%%, unsound %d",
		fwdDead, len(eligible), 100*float64(fwdDead)/float64(len(eligible)),
		revDead, len(eligible), 100*float64(revDead)/float64(len(eligible)),
		bothDead, 100*float64(bothDead)/float64(len(eligible)),
		100*float64(fwdDead+revDead)/float64(2*len(eligible)), unsound)

	// Characterize high-VCP pairs: strand sizes and feature overlap.
	cfg0 := sketch.Config{}.Normalized()
	nHigh, small := 0, 0
	for _, p := range eligible {
		if p.fv < 0.5 && p.rv < 0.5 {
			continue
		}
		nHigh++
		fq := sketch.Features(p.q.S)
		fu := sketch.Features(base.uniq[p.j].S)
		inter := 0
		set := map[uint64]bool{}
		for _, f := range fq {
			set[f] = true
		}
		for _, f := range fu {
			if set[f] {
				inter++
			}
		}
		minf := len(fq)
		if len(fu) < minf {
			minf = len(fu)
		}
		if minf <= 12 {
			small++
		}
		if nHigh <= 25 {
			t.Logf("high pair: fv=%.2f rv=%.2f qvars=%d uvars=%d qfeat=%d ufeat=%d inter=%d jacc=%.2f cont=%.2f",
				p.fv, p.rv, p.q.S.NumVars(), base.uniq[p.j].S.NumVars(),
				len(fq), len(fu), inter,
				float64(inter)/float64(len(fq)+len(fu)-inter),
				float64(inter)/float64(minf))
		}
	}
	t.Logf("high-VCP eligible pairs: %d (%d with min-feature-count <= 12); cfg0=%+v", nHigh, small, cfg0)

	// Hybrid rule: candidate iff banded-bucket match OR estimated
	// containment (from signature agreement + feature counts) >= C.
	estCont := func(a, b sketch.Signature, na, nb int) float64 {
		eq := 0
		for i := range a {
			if a[i] == b[i] {
				eq++
			}
		}
		j := float64(eq) / float64(len(a))
		if j >= 1 {
			return 1
		}
		inter := j / (1 + j) * float64(na+nb)
		min := na
		if nb < min {
			min = nb
		}
		if min == 0 {
			return 0
		}
		return inter / float64(min)
	}
	{
		cfg := sketch.Config{Bands: 24, Rows: 3}.Normalized()
		qsigs := map[*vcp.Prepared]sketch.Signature{}
		usigs := make([]sketch.Signature, len(base.uniq))
		ufeat := make([]int, len(base.uniq))
		for j, u := range base.uniq {
			usigs[j] = sketch.Compute(u.S, cfg)
			ufeat[j] = len(sketch.Features(u.S))
		}
		qfeat := map[*vcp.Prepared]int{}
		for _, qp := range queries {
			qsigs[qp] = sketch.Compute(qp.S, cfg)
			qfeat[qp] = len(sketch.Features(qp.S))
		}
		// Production candidate rule (sound core + heuristic tier) at
		// various containment thresholds.
		for _, C := range []float64{0.30, 0.35, 0.40, 0.45, 0.50} {
			hcfg := sketch.Config{Bands: 24, Rows: 3, MinContainment: C}.Normalized()
			idx := sketch.NewIndex(hcfg)
			for _, u := range base.uniq {
				idx.Add(sketch.Summarize(u.S, hcfg))
			}
			marks := map[*vcp.Prepared][]bool{}
			for _, qp := range queries {
				m := make([]bool, len(base.uniq))
				idx.Candidates(sketch.Summarize(qp.S, hcfg), m)
				marks[qp] = m
			}
			skipped, flagged, flaggedFwd := 0, 0, 0
			for _, p := range eligible {
				if marks[p.q][p.j] {
					continue
				}
				skipped++
				if p.fv >= 0.5 || p.rv >= 0.5 {
					flagged++
				}
				if p.fv >= 0.5 {
					flaggedFwd++
				}
			}
			t.Logf("candidate rule 24x3 + heuristic estCont>=%.2f: skipped %5d/%5d (%.0f%%), flagged %d (fwd %d)",
				C, skipped, len(eligible), 100*float64(skipped)/float64(len(eligible)), flagged, flaggedFwd)
		}
		// Noise-free ceiling: gate on EXACT feature containment.
		exactCont := func(qp *vcp.Prepared, j int) float64 {
			fq := sketch.Features(qp.S)
			fu := sketch.Features(base.uniq[j].S)
			set := map[uint64]bool{}
			for _, f := range fq {
				set[f] = true
			}
			inter := 0
			for _, f := range fu {
				if set[f] {
					inter++
				}
			}
			min := len(fq)
			if len(fu) < min {
				min = len(fu)
			}
			if min == 0 {
				return 0
			}
			return float64(inter) / float64(min)
		}
		// Distribution of true containment among high-VCP pairs.
		buckets := map[int]int{}
		for _, p := range eligible {
			if p.fv < 0.5 && p.rv < 0.5 {
				continue
			}
			c := exactCont(p.q, p.j)
			buckets[int(c*10)]++
		}
		t.Logf("true-containment deciles of high-VCP pairs: %v", buckets)
		for _, C := range []float64{0.30, 0.40, 0.50, 0.60} {
			skipped, flagged := 0, 0
			for _, p := range eligible {
				if exactCont(p.q, p.j) >= C {
					continue
				}
				skipped++
				if p.fv >= 0.5 || p.rv >= 0.5 {
					flagged++
				}
			}
			t.Logf("EXACT cont>=%.2f: skipped %5d/%5d (%.0f%%), flagged %d",
				C, skipped, len(eligible), 100*float64(skipped)/float64(len(eligible)), flagged)
		}
		// Pure containment rule (no banding).
		for _, C := range []float64{0.35, 0.45, 0.55} {
			skipped, flagged := 0, 0
			for _, p := range eligible {
				if estCont(qsigs[p.q], usigs[p.j], qfeat[p.q], ufeat[p.j]) >= C {
					continue
				}
				skipped++
				if p.fv >= 0.5 || p.rv >= 0.5 {
					flagged++
				}
			}
			t.Logf("pure estCont>=%.2f: skipped %5d/%5d (%.0f%%), flagged %d",
				C, skipped, len(eligible), 100*float64(skipped)/float64(len(eligible)), flagged)
		}
	}

	// Heuristic-tier geometry sweep at the suggested containment level.
	for _, cfg := range []sketch.Config{
		{Bands: 24, Rows: 3, MinContainment: sketch.SuggestedMinContainment},
		{Bands: 24, Rows: 2, MinContainment: sketch.SuggestedMinContainment},
		{Bands: 32, Rows: 2, MinContainment: sketch.SuggestedMinContainment},
		{Bands: 16, Rows: 1, MinContainment: sketch.SuggestedMinContainment},
		{Bands: 32, Rows: 1, MinContainment: sketch.SuggestedMinContainment},
	} {
		cfg = cfg.Normalized()
		idx := sketch.NewIndex(cfg)
		for _, u := range base.uniq {
			idx.Add(sketch.Summarize(u.S, cfg))
		}
		marks := map[*vcp.Prepared][]bool{}
		for _, qp := range queries {
			m := make([]bool, len(base.uniq))
			idx.Candidates(sketch.Summarize(qp.S, cfg), m)
			marks[qp] = m
		}
		skipped, flagged, flaggedFwd := 0, 0, 0
		for _, p := range eligible {
			if marks[p.q][p.j] {
				continue
			}
			skipped++
			if p.fv >= 0.5 || p.rv >= 0.5 {
				flagged++
			}
			if p.fv >= 0.5 {
				flaggedFwd++
			}
		}
		t.Logf("bands=%2d rows=%d estCont>=%.2f: skipped %5d/%5d (%.0f%%), flagged %d (fwd-only %d)",
			cfg.Bands, cfg.Rows, cfg.MinContainment, skipped, len(eligible),
			100*float64(skipped)/float64(len(eligible)), flagged, flaggedFwd)
	}
}
