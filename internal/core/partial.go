package core

import (
	"sort"

	"repro/internal/asm"
	"repro/internal/stats"
)

// QueryPartial is one database's half-finished view of a query: the
// output of every pipeline stage whose result is exact under sharding,
// stopping just short of the one quantity that is not — the corpus-wide
// H0 estimate. A shard returns its QueryPartial (serialized by the
// server layer); a coordinator splices the shards' rows and reductions
// back into the union corpus's strand order and calls Finalize with the
// union counts, running the same float operations in the same order a
// single node holding the whole corpus would.
//
// Exactness under sharding, piece by piece:
//
//   - Rows: VCP(query strand, target strand) is a per-pair computation;
//     a shard computes exactly the columns for the strands it holds,
//     bitwise equal to the same columns on a single node (kernel and
//     prefilter decisions are per-pair deterministic).
//   - PartialScore.MaxVCP: a max over the target's own strands — every
//     input lives on the target's shard.
//   - PartialScore.SVCP: a sum over the target's own strands of
//     maxRev[j], where maxRev[j] is a max over *query* strands of
//     VCP(target strand j, query strand) — and every shard runs the
//     full query, so maxRev[j] is exact on the shard holding j.
//   - H0 (the part deferred to Finalize): a corpus-weighted mean over
//     ALL unique strands in index order. Floating-point addition is not
//     associative, so per-shard partial sums would NOT merge
//     bit-identically; instead the coordinator rebuilds the dense
//     global rows and recomputes the mean in global order.
type QueryPartial struct {
	QueryName  string
	Source     asm.Provenance
	NumBlocks  int
	NumStrands int // query strands surviving the size filter
	// SigmoidK is the engine's Esh steepness override (0 = paper's
	// k=10); a coordinator must refuse to merge partials computed under
	// different k.
	SigmoidK float64
	// Weights[i] is the multiplicity of unique query strand i (its LES
	// weight). Unique strands are in first-seen decomposition order,
	// which depends only on the query text — all databases handed the
	// same query agree on it, so rows merge by index.
	Weights []float64
	// Rows[i][j] = VCP(query strand i, target strand j), dense over
	// this database's unique-strand index order.
	Rows [][]float64
	// Targets holds the exact per-target reductions, in index order.
	Targets []PartialScore
	// DataGeneration is the compaction generation the partial was
	// computed under; PendingWrites the number of uncompacted live
	// writes. A coordinator merging shard partials must refuse either
	// being nonzero: its manifest's union counts describe the shards'
	// generation-zero snapshots, so a drifted shard would finalize
	// against stale multiplicities and corrupt scores.
	DataGeneration uint64
	PendingWrites  int
}

// PartialScore is the shard-exact half of one target's score.
type PartialScore struct {
	Target *Target
	// SVCP is the paper's S-VCP score (exact per shard, see above).
	SVCP float64
	// MaxVCP[i] is the best VCP(query strand i, t) over the target's
	// strands — the Pr(s_q|t) input of the LES.
	MaxVCP []float64
}

// Finalize turns the partial into a ranked Report by estimating H0 from
// the rows under the given per-strand corpus multiplicities (counts[j]
// weights Rows[i][j]; §3.3.2) and composing GES per method. It is a
// pure function of (qp, counts): the single-node Query path and a
// coordinator that reassembled global rows from shards call it with
// bit-identical inputs and therefore produce bit-identical scores and
// (stable-sorted) rankings.
func (qp *QueryPartial) Finalize(counts []int) *Report {
	return qp.FinalizeOrder(counts, nil)
}

// FinalizeOrder is Finalize with an explicit H0 accumulation order:
// order[k] is the index (into counts and each row) of the k-th strand to
// fold into the H0 mean. nil means index order — plain Finalize. The
// live write path uses it after tombstones: floating-point addition is
// order-sensitive, so bit-identity with a from-scratch rebuild of the
// surviving corpus requires replaying the rebuild's first-seen strand
// order, not the dirty index order with dead strands masked. Dead
// strands (counts 0) are simply absent from the order.
func (qp *QueryPartial) FinalizeOrder(counts []int, order []int32) *Report {
	evidence := make([]stats.StrandEvidence, len(qp.Weights))
	for i, w := range qp.Weights {
		h0 := stats.H0Accumulator{K: qp.SigmoidK}
		row := qp.Rows[i]
		if order == nil {
			for j, v := range row {
				h0.Add(v, counts[j])
			}
		} else {
			for _, j := range order {
				h0.Add(row[j], counts[j])
			}
		}
		evidence[i] = h0.Evidence(w)
	}
	rep := &Report{
		QueryName:  qp.QueryName,
		Source:     qp.Source,
		NumBlocks:  qp.NumBlocks,
		NumStrands: qp.NumStrands,
		Results:    make([]TargetScore, len(qp.Targets)),
	}
	for ti, ps := range qp.Targets {
		rep.Results[ti] = TargetScore{
			Target: ps.Target,
			SVCP:   ps.SVCP,
			SLOG:   stats.GES(stats.SLOG, ps.MaxVCP, evidence),
			GES:    stats.GES(stats.Esh, ps.MaxVCP, evidence),
		}
	}
	sort.SliceStable(rep.Results, func(i, j int) bool {
		return rep.Results[i].GES > rep.Results[j].GES
	})
	return rep
}
