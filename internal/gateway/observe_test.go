package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp := getURL(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestGatewayFederation scrapes a real two-shard fleet and checks the
// federated /metrics page: strict-parser-clean, with each shard's
// series re-exported under a shard label next to the gateway's own.
func TestGatewayFederation(t *testing.T) {
	f := startFleet(t, 2, nil)
	// Traffic first, so quantile gauges and shard series are non-trivial.
	decodeResponse(t, postQuery(t, f.gwSrv.URL, gccStyle))
	f.gw.ScrapeFleet(context.Background())

	resp := getURL(t, f.gwSrv.URL+"/metrics")
	fams, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("federated page fails strict parse: %v", err)
	}
	byName := map[string]*telemetry.ParsedFamily{}
	for _, fam := range fams {
		if _, dup := byName[fam.Name]; dup {
			t.Fatalf("family %s appears twice", fam.Name)
		}
		byName[fam.Name] = fam
	}

	// A shard-only family arrives with one sample per shard.
	it, ok := byName["esh_index_targets"]
	if !ok {
		t.Fatal("federated page missing esh_index_targets")
	}
	seen := map[string]bool{}
	for _, s := range it.Samples {
		sh, _ := s.Label("shard")
		seen[sh] = true
	}
	if !seen["0"] || !seen["1"] {
		t.Fatalf("esh_index_targets shard labels = %v, want 0 and 1", seen)
	}

	// A family exported by gateway AND shards merges into one block:
	// the gateway's unlabeled sample plus one labeled sample per shard.
	bi, ok := byName["esh_build_info"]
	if !ok || len(bi.Samples) != 3 {
		t.Fatalf("esh_build_info merge: %+v", bi)
	}

	// The gateway's own quantile gauges are present and positive.
	qf, ok := byName["esh_gw_query_quantile_seconds"]
	if !ok || len(qf.Samples) != 3 {
		t.Fatalf("esh_gw_query_quantile_seconds: %+v", qf)
	}
	for _, s := range qf.Samples {
		if _, hasShard := s.Label("shard"); hasShard {
			t.Errorf("gateway-own series gained a shard label: %+v", s)
		}
		if !(s.Value > 0) {
			t.Errorf("quantile gauge %v not positive after traffic", s)
		}
	}
	if sq, ok := byName["esh_gw_shard_quantile_seconds"]; !ok || len(sq.Samples) != 6 {
		t.Fatalf("esh_gw_shard_quantile_seconds: %+v", sq)
	}

	// Scrape outcome counters: one ok scrape per shard.
	sc, ok := byName["esh_gw_scrapes_total"]
	if !ok {
		t.Fatal("esh_gw_scrapes_total missing")
	}
	for _, s := range sc.Samples {
		res, _ := s.Label("result")
		if want := float64(0); res == "ok" {
			want = 1
			if s.Value != want {
				t.Errorf("scrape counter %v, want %g", s, want)
			}
		}
	}
}

// TestGatewayFederationScrapeFailure points the scraper at hand-built
// /metrics endpoints — one healthy, one broken — and checks the broken
// shard's series are dropped (not staled) while the page stays valid
// and /v1/fleet surfaces the scrape error.
func TestGatewayFederationScrapeFailure(t *testing.T) {
	const shardPage = `# HELP esh_http_uptime_seconds Seconds since the server started.
# TYPE esh_http_uptime_seconds gauge
esh_http_uptime_seconds 42
# TYPE esh_index_targets gauge
esh_index_targets 2
`
	okShard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, shardPage)
	}))
	t.Cleanup(okShard.Close)
	brokenShard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(brokenShard.Close)

	// Borrow a real manifest of the right shape; the fake endpoints
	// replace the real replicas for scraping purposes.
	f := startFleet(t, 2, nil)
	cfg := Config{
		Manifest: f.man,
		Shards:   [][]string{{okShard.URL}, {brokenShard.URL}},
		Logger:   quietLogger(),
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.ScrapeFleet(context.Background())
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	resp := getURL(t, ts.URL+"/metrics")
	fams, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("federated page fails strict parse with a broken shard: %v", err)
	}
	var page strings.Builder
	for _, fam := range fams {
		// The gateway's own esh_gw_* series carry shard labels by design;
		// only scraped families must not show the broken shard.
		if !strings.HasPrefix(fam.Name, "esh_gw_") {
			for _, s := range fam.Samples {
				if sh, _ := s.Label("shard"); sh == "1" {
					t.Errorf("broken shard leaked series %s into the page", s.Name)
				}
			}
		}
		page.WriteString(fam.Name + "\n")
	}
	if !strings.Contains(page.String(), "esh_index_targets") {
		t.Error("healthy shard's series missing from the federated page")
	}

	var fleet shard.FleetHealth
	getJSON(t, ts.URL+"/v1/fleet", &fleet)
	if fleet.Generation != f.man.Generation {
		t.Errorf("fleet generation %q, want %q", fleet.Generation, f.man.Generation)
	}
	if len(fleet.Shards) != 2 {
		t.Fatalf("fleet has %d shards", len(fleet.Shards))
	}
	s0, s1 := fleet.Shards[0], fleet.Shards[1]
	if s0.LastScrape == nil || s0.LastScrape.Err != "" || s0.LastScrape.Series == 0 {
		t.Errorf("healthy shard scrape status: %+v", s0.LastScrape)
	}
	if s0.UptimeSeconds != 42 {
		t.Errorf("scraped uptime = %g, want 42", s0.UptimeSeconds)
	}
	if s1.LastScrape == nil || s1.LastScrape.Err == "" {
		t.Errorf("broken shard scrape status carries no error: %+v", s1.LastScrape)
	}
	if s1.UptimeSeconds != 0 {
		t.Errorf("broken shard reports uptime %g", s1.UptimeSeconds)
	}
}

// TestGatewaySlowQueryCapture is the gateway half of the tentpole
// acceptance test: an untraced query past the threshold lands in
// GET /debug/slow with the full fan-out span tree and per-shard
// outcomes.
func TestGatewaySlowQueryCapture(t *testing.T) {
	f := startFleet(t, 2, func(c *Config) {
		c.SlowQueryThreshold = time.Nanosecond // everything is slow
	})
	resp := decodeResponse(t, postQuery(t, f.gwSrv.URL, gccStyle))
	if resp.Trace != nil {
		t.Fatal("untraced response carries a trace")
	}

	var slow server.SlowResponse
	getJSON(t, f.gwSrv.URL+"/debug/slow", &slow)
	if len(slow.Records) != 1 {
		t.Fatalf("slow log holds %d records, want 1", len(slow.Records))
	}
	rec := slow.Records[0]
	if rec.Kind != "gateway" || rec.Outcome != "completed" || !rec.Slow {
		t.Errorf("record classification: %+v", rec)
	}
	if rec.Generation != f.man.Generation {
		t.Errorf("record generation %q, want %q", rec.Generation, f.man.Generation)
	}
	if rec.Trace == nil || rec.Trace.Find("shard_0") == nil || rec.Trace.Find("shard_1") == nil {
		t.Fatalf("fan-out span tree incomplete: %+v", rec.Trace)
	}
	if len(rec.Shards) != 2 {
		t.Fatalf("per-shard outcomes: %+v", rec.Shards)
	}
	for _, so := range rec.Shards {
		if so.Err != "" || so.Replica == "" || so.Millis <= 0 || so.Attempts < 1 {
			t.Errorf("shard outcome %+v", so)
		}
	}
	if rec.StageMS["shard_0"] <= 0 || rec.StageMS["shard_1"] <= 0 {
		t.Errorf("stage breakdown missing shard legs: %v", rec.StageMS)
	}

	// Stats and fleet views reflect the traffic.
	st := fetchGatewayStats(t, f.gwSrv.URL)
	if st.Recorder.Records != 1 || st.Recorder.Slow != 1 {
		t.Errorf("stats recorder block: %+v", st.Recorder)
	}
	if st.StartTime.IsZero() {
		t.Error("stats start_time is zero")
	}
	if st.LatencyQuantilesMS["p50"] <= 0 {
		t.Errorf("latency quantiles: %v", st.LatencyQuantilesMS)
	}
	var fleet shard.FleetHealth
	getJSON(t, f.gwSrv.URL+"/v1/fleet", &fleet)
	if !fleet.Ready || fleet.ReadyReplicas != 2 {
		t.Errorf("fleet readiness: %+v", fleet)
	}
	total := 0
	for _, sh := range fleet.Shards {
		total += sh.Targets
		if sh.P50MS <= 0 {
			t.Errorf("shard %d p50 = %g after traffic", sh.ID, sh.P50MS)
		}
	}
	if total != f.man.NumTargets {
		t.Errorf("fleet targets sum %d, manifest says %d", total, f.man.NumTargets)
	}
}
