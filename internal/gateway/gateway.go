// Package gateway implements the eshgw scatter-gather coordinator: it
// owns a shard manifest, fans each query out to one replica of every
// shard's /v1/query/partial, and merges the partials into scores
// bit-identical to a single node holding the whole corpus (see
// shard.Merge for the exactness argument).
//
// The fan-out is latency-engineered in the classic tail-at-scale
// shape: each shard's request is hedged — if the first replica has not
// answered within the hedge budget, a second request races it on
// another replica and the first success wins — and failures are
// retried with backoff against the remaining replicas. A background
// prober polls every replica's /readyz so draining or dead replicas
// are deprioritized before a query ever waits on them. When a shard
// stays unreachable the gateway degrades instead of failing: it merges
// what it has and flags the response partial with the missing shard
// IDs.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// Config tunes the gateway. Zero values select the documented defaults.
type Config struct {
	// Manifest describes the fleet this gateway coordinates (required).
	Manifest *shard.Manifest
	// Shards[i] lists the base URLs ("http://host:port") of the
	// replicas serving shard i. Every shard needs at least one replica;
	// extra replicas enable hedging and retries (required).
	Shards [][]string
	// QueryTimeout bounds one fan-out end to end (default 60s). A shard
	// that misses it is treated as down for this query.
	QueryTimeout time.Duration
	// HedgeAfter is the per-shard latency budget before a hedge request
	// is launched on the next replica (default 300ms). Hedging needs a
	// second replica; with one replica per shard it never triggers.
	HedgeAfter time.Duration
	// MaxRetries bounds extra attempts per shard after a failed request
	// (default 2; hedges do not count as retries).
	MaxRetries int
	// RetryBackoff is the wait before retry k, scaled linearly: k×backoff
	// (default 100ms).
	RetryBackoff time.Duration
	// ProbeInterval is the /readyz polling period (default 2s).
	ProbeInterval time.Duration
	// MaxInFlight bounds concurrently executing fan-outs; excess
	// requests get 429 (default 16).
	MaxInFlight int
	// MaxBodyBytes bounds the request body (default 8 MiB).
	MaxBodyBytes int64
	// MaxTop caps the top parameter (default 1000).
	MaxTop int
	// Logger receives one structured line per request (default
	// slog.Default).
	Logger *slog.Logger
	// Client issues the shard requests (default: http.Client with the
	// query timeout).
	Client *http.Client
	// ScrapeInterval is the metrics-federation period: every interval
	// the gateway scrapes one ready replica per shard's /metrics and
	// re-exports the series with a shard label (default 15s). The
	// scraper rides the prober goroutine, so it needs StartProber.
	ScrapeInterval time.Duration
	// SlowQueryThreshold marks merged queries at or above this duration
	// as slow (full fan-out span tree retained, exposed at /debug/slow).
	// Default 1s; negative disables slow capture.
	SlowQueryThreshold time.Duration
	// RecorderSize / SlowLogSize bound the flight-recorder rings
	// (defaults telemetry.DefaultRecorderSize / DefaultSlowLogSize).
	RecorderSize int
	SlowLogSize  int
}

func (c Config) withDefaults() Config {
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 60 * time.Second
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 300 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxTop <= 0 {
		c.MaxTop = 1000
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.QueryTimeout}
	}
	if c.ScrapeInterval <= 0 {
		c.ScrapeInterval = 15 * time.Second
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = time.Second
	}
	if c.SlowQueryThreshold < 0 {
		c.SlowQueryThreshold = 0 // disabled
	}
	return c
}

// gwResults enumerate the label values of esh_gw_queries_total. A
// degraded (partial) merge counts as "partial", not "completed".
var gwResults = [...]string{"completed", "partial", "failure", "rejected", "bad_input"}

// Gateway coordinates a fleet of eshd shards.
type Gateway struct {
	cfg Config
	sem chan struct{}

	// ready[i][j] is replica j of shard i's last observed /readyz state
	// (true until the prober learns otherwise, so an unstarted prober
	// degrades to "try them in configured order").
	ready [][]atomic.Bool

	probeStop chan struct{}
	probeDone chan struct{}
	probeOnce sync.Once

	reg      *telemetry.Registry
	outcomes map[string]*telemetry.Counter
	hedges   *telemetry.Counter
	retries  *telemetry.Counter
	latency  *telemetry.Histogram
	shardLat []*telemetry.Histogram // per shard
	started  time.Time

	// Flight recorder and streaming latency quantiles, mirroring the
	// shard server's: every fan-out leaves a record with its per-shard
	// outcomes; slow ones keep the whole fan-out span tree.
	rec    *telemetry.Recorder
	lat    *telemetry.Quantiles
	shardQ []*telemetry.Quantiles // per shard fan-out leg latency
	slowQ  *telemetry.Counter

	// Federation state: scrapes[i] holds shard i's last /metrics scrape
	// (atomically swapped whole, so renders never see a half-written
	// scrape); the counters track scrape outcomes per shard.
	scrapes    []atomic.Pointer[scrapeResult]
	scrapeOK   []*telemetry.Counter
	scrapeErr  []*telemetry.Counter
	fedDropped *telemetry.Counter
}

// scrapeResult is one shard's last federation scrape. fams is nil when
// the scrape failed — failure drops the shard's series from the
// federated page rather than re-exporting stale values.
type scrapeResult struct {
	replica string
	at      time.Time
	millis  float64
	err     string
	fams    []*telemetry.ParsedFamily
	series  int
	uptime  float64 // the shard's esh_http_uptime_seconds at scrape time
}

// New validates the fleet shape and builds a Gateway.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if cfg.Manifest == nil {
		return nil, errors.New("gateway: no manifest")
	}
	if len(cfg.Shards) != len(cfg.Manifest.Shards) {
		return nil, fmt.Errorf("gateway: manifest has %d shards, %d replica sets configured", len(cfg.Manifest.Shards), len(cfg.Shards))
	}
	for i, reps := range cfg.Shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("gateway: shard %d has no replicas", i)
		}
		for j, u := range reps {
			cfg.Shards[i][j] = strings.TrimRight(u, "/")
		}
	}
	g := &Gateway{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.MaxInFlight),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
		reg:       telemetry.NewRegistry(),
		started:   time.Now(),
	}
	g.ready = make([][]atomic.Bool, len(cfg.Shards))
	for i, reps := range cfg.Shards {
		g.ready[i] = make([]atomic.Bool, len(reps))
		for j := range g.ready[i] {
			g.ready[i][j].Store(true)
		}
	}
	g.outcomes = make(map[string]*telemetry.Counter, len(gwResults))
	for _, res := range gwResults {
		g.outcomes[res] = g.reg.Counter("esh_gw_queries_total",
			"Gateway queries by terminal outcome.", "result", res)
	}
	g.hedges = g.reg.Counter("esh_gw_hedges_total", "Hedge requests launched.")
	g.retries = g.reg.Counter("esh_gw_retries_total", "Retry requests launched after a shard failure.")
	g.latency = g.reg.Histogram("esh_gw_query_seconds",
		"End-to-end latency of merged queries.", nil)
	g.shardLat = make([]*telemetry.Histogram, len(cfg.Shards))
	for i := range cfg.Shards {
		g.shardLat[i] = g.reg.Histogram("esh_gw_shard_seconds",
			"Per-shard fan-out latency (first winning attempt).", nil,
			"shard", fmt.Sprint(i))
	}
	g.reg.GaugeFunc("esh_gw_healthy_replicas", "Replicas currently passing /readyz.",
		func() float64 {
			n := 0
			for i := range g.ready {
				for j := range g.ready[i] {
					if g.ready[i][j].Load() {
						n++
					}
				}
			}
			return float64(n)
		})
	g.reg.GaugeFunc("esh_gw_uptime_seconds", "Seconds since the gateway started.",
		func() float64 { return time.Since(g.started).Seconds() })
	g.reg.Gauge("esh_process_start_time_seconds",
		"Unix time the process started.").Set(float64(g.started.UnixNano()) / 1e9)
	g.reg.Gauge("esh_build_info", "Build and engine configuration (value is always 1).",
		"go_version", runtime.Version(),
		"kernel", cfg.Manifest.Kernel,
		"prefilter", cfg.Manifest.Prefilter,
		"retrieval", cfg.Manifest.Retrieval).Set(1)

	g.rec = telemetry.NewRecorder(cfg.RecorderSize, cfg.SlowLogSize, cfg.SlowQueryThreshold)
	g.lat = telemetry.NewQuantiles(latencyQuantiles[:]...)
	g.slowQ = g.reg.Counter("esh_gw_slow_queries_total",
		"Merged queries at or above the slow-query threshold.")
	g.reg.GaugeFunc("esh_flight_recorder_records",
		"Query records ever published to the flight recorder.",
		func() float64 { return float64(g.rec.Total()) })
	for _, q := range latencyQuantiles {
		q := q
		g.reg.GaugeFunc("esh_gw_query_quantile_seconds",
			"Streaming latency quantiles of merged queries (P2 estimator).",
			func() float64 { return g.lat.Quantile(q) },
			"quantile", telemetry.FormatQuantile(q))
	}
	g.shardQ = make([]*telemetry.Quantiles, len(cfg.Shards))
	g.scrapes = make([]atomic.Pointer[scrapeResult], len(cfg.Shards))
	g.scrapeOK = make([]*telemetry.Counter, len(cfg.Shards))
	g.scrapeErr = make([]*telemetry.Counter, len(cfg.Shards))
	for i := range cfg.Shards {
		g.shardQ[i] = telemetry.NewQuantiles(latencyQuantiles[:]...)
		for _, q := range latencyQuantiles {
			i, q := i, q
			g.reg.GaugeFunc("esh_gw_shard_quantile_seconds",
				"Streaming per-shard fan-out latency quantiles (P2 estimator).",
				func() float64 { return g.shardQ[i].Quantile(q) },
				"shard", fmt.Sprint(i), "quantile", telemetry.FormatQuantile(q))
		}
		g.scrapeOK[i] = g.reg.Counter("esh_gw_scrapes_total",
			"Federation scrapes of shard /metrics by result.",
			"shard", fmt.Sprint(i), "result", "ok")
		g.scrapeErr[i] = g.reg.Counter("esh_gw_scrapes_total",
			"Federation scrapes of shard /metrics by result.",
			"shard", fmt.Sprint(i), "result", "error")
	}
	g.fedDropped = g.reg.Counter("esh_gw_federation_dropped_total",
		"Scraped families dropped from the federated page for type conflicts (cumulative over renders).")
	return g, nil
}

// latencyQuantiles mirrors the server's exported percentile set.
var latencyQuantiles = [...]float64{0.5, 0.95, 0.99}

// StartProber launches the background /readyz prober, which also
// drives the metrics-federation scraper on its own cadence; StopProber
// (or nothing, for tests — ScrapeFleet can be called directly) ends it.
func (g *Gateway) StartProber() {
	go func() {
		defer close(g.probeDone)
		t := time.NewTicker(g.cfg.ProbeInterval)
		defer t.Stop()
		st := time.NewTicker(g.cfg.ScrapeInterval)
		defer st.Stop()
		g.probeAll()
		g.ScrapeFleet(context.Background())
		for {
			select {
			case <-g.probeStop:
				return
			case <-t.C:
				g.probeAll()
			case <-st.C:
				g.ScrapeFleet(context.Background())
			}
		}
	}()
}

// ScrapeFleet scrapes one replica per shard's /metrics (ready replicas
// preferred) and stores the parsed families for the federated /metrics
// page and /v1/fleet. Shards scrape concurrently; a failed scrape
// replaces the shard's series with the failure, never with stale data.
func (g *Gateway) ScrapeFleet(ctx context.Context) {
	var wg sync.WaitGroup
	for sid := range g.cfg.Shards {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			g.scrapeShard(ctx, sid)
		}(sid)
	}
	wg.Wait()
}

func (g *Gateway) scrapeShard(ctx context.Context, sid int) {
	u := g.cfg.Shards[sid][g.replicaOrder(sid)[0]]
	start := time.Now()
	res := &scrapeResult{replica: u, at: start}
	fams, err := g.fetchMetrics(ctx, u)
	res.millis = float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		res.err = err.Error()
		g.scrapeErr[sid].Inc()
		g.cfg.Logger.Warn("federation scrape failed", "shard", sid, "replica", u, "err", err.Error())
	} else {
		res.fams = fams
		for _, f := range fams {
			res.series += len(f.Samples)
			if f.Name == "esh_http_uptime_seconds" {
				if v, ok := f.Gauge(); ok {
					res.uptime = v
				}
			}
		}
		g.scrapeOK[sid].Inc()
	}
	g.scrapes[sid].Store(res)
}

func (g *Gateway) fetchMetrics(ctx context.Context, base string) ([]*telemetry.ParsedFamily, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ScrapeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	fams, err := telemetry.ParseExposition(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("parse exposition: %w", err)
	}
	return fams, nil
}

// StopProber stops the prober and waits for it to exit. Safe to call
// without StartProber only if StartProber is never called afterwards.
func (g *Gateway) StopProber() {
	g.probeOnce.Do(func() { close(g.probeStop) })
	select {
	case <-g.probeDone:
	case <-time.After(5 * time.Second):
	}
}

func (g *Gateway) probeAll() {
	var wg sync.WaitGroup
	for i, reps := range g.cfg.Shards {
		for j, u := range reps {
			wg.Add(1)
			go func(i, j int, u string) {
				defer wg.Done()
				g.ready[i][j].Store(g.probe(u))
			}(i, j, u)
		}
	}
	wg.Wait()
}

func (g *Gateway) probe(base string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// replicaOrder returns shard sid's replica indices, ready ones first,
// preserving configured order within each class — the order attempts
// (first try, hedges, retries) walk through.
func (g *Gateway) replicaOrder(sid int) []int {
	reps := g.cfg.Shards[sid]
	order := make([]int, 0, len(reps))
	for j := range reps {
		if g.ready[sid][j].Load() {
			order = append(order, j)
		}
	}
	for j := range reps {
		if !g.ready[sid][j].Load() {
			order = append(order, j)
		}
	}
	return order
}

// FleetError describes one replica failing fleet verification.
type FleetError struct {
	Shard   int
	Replica string
	Err     error
}

func (e *FleetError) Error() string {
	return fmt.Sprintf("shard %d (%s): %v", e.Shard, e.Replica, e.Err)
}

// CheckFleet asks every replica for /v1/stats and verifies it against
// the manifest: fleet generation, shard coordinates, and snapshot
// checksum must match exactly (a mismatch means merged scores would be
// silently wrong); kernel and prefilter mode mismatches are
// score-neutral by the differential suites, so they come back as
// warnings, not errors.
func (g *Gateway) CheckFleet(ctx context.Context) (warnings []string, errs []error) {
	man := g.cfg.Manifest
	for i, reps := range g.cfg.Shards {
		for _, u := range reps {
			st, err := g.fetchStats(ctx, u)
			if err != nil {
				errs = append(errs, &FleetError{i, u, err})
				continue
			}
			if st.Snapshot.Generation != man.Generation {
				errs = append(errs, &FleetError{i, u, fmt.Errorf("generation %q, manifest is %q", st.Snapshot.Generation, man.Generation)})
			}
			if st.Snapshot.ShardID != i || st.Snapshot.ShardCount != len(man.Shards) {
				errs = append(errs, &FleetError{i, u, fmt.Errorf("serves shard %d/%d, expected %d/%d", st.Snapshot.ShardID, st.Snapshot.ShardCount, i, len(man.Shards))})
			}
			if st.Snapshot.Checksum != "" && man.Shards[i].Checksum != "" && st.Snapshot.Checksum != man.Shards[i].Checksum {
				errs = append(errs, &FleetError{i, u, fmt.Errorf("snapshot checksum %.12s…, manifest says %.12s…", st.Snapshot.Checksum, man.Shards[i].Checksum)})
			}
			// Live writes drift a shard's corpus away from the counts the
			// manifest was split with; merging its partials would corrupt
			// scores, so this is an error, not a warning.
			if st.Writes.Generation > 0 || st.Writes.PendingWrites > 0 {
				errs = append(errs, &FleetError{i, u, fmt.Errorf("live writes drifted from snapshot (data generation %d, %d pending writes); re-split the corpus", st.Writes.Generation, st.Writes.PendingWrites)})
			}
			if st.Engine.SigmoidK != man.SigmoidK {
				errs = append(errs, &FleetError{i, u, fmt.Errorf("sigmoid k=%g, manifest says %g", st.Engine.SigmoidK, man.SigmoidK)})
			}
			if st.Engine.Kernel != man.Kernel {
				warnings = append(warnings, fmt.Sprintf("shard %d (%s): kernel %q, manifest built with %q (score-neutral)", i, u, st.Engine.Kernel, man.Kernel))
			}
			if st.Prefilter.Mode != man.Prefilter {
				warnings = append(warnings, fmt.Sprintf("shard %d (%s): prefilter %q, manifest built with %q (score-neutral)", i, u, st.Prefilter.Mode, man.Prefilter))
			}
			// Pre-retrieval manifests and replicas report "", which
			// means scan — normalize so mixed-age fleets don't warn.
			if got, want := retrMode(st.Retrieval.Mode), retrMode(man.Retrieval); got != want {
				warnings = append(warnings, fmt.Sprintf("shard %d (%s): retrieval %q, manifest built with %q (score-neutral)", i, u, got, want))
			}
		}
	}
	return warnings, errs
}

// retrMode canonicalizes a retrieval-mode string: an empty value (a
// pre-retrieval snapshot, manifest, or replica) means core.RetrievalScan.
func retrMode(m string) string {
	if m == "" {
		return "scan"
	}
	return m
}

func (g *Gateway) fetchStats(ctx context.Context, base string) (*server.StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: HTTP %d", resp.StatusCode)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&st); err != nil {
		return nil, fmt.Errorf("decode stats: %w", err)
	}
	return &st, nil
}

// shardReply is one shard's fan-out outcome.
type shardReply struct {
	sid      int
	partial  *shard.Partial
	trace    *telemetry.SpanData
	replica  string
	attempts int
	hedged   bool
	millis   float64
	err      error
}

// scatter fans the query out to every shard concurrently (each under
// qctx, so one span child per shard hangs off the caller's trace) and
// returns the per-shard outcomes in shard order.
func (g *Gateway) scatter(qctx context.Context, body []byte, wantTrace bool) []shardReply {
	replies := make([]shardReply, len(g.cfg.Shards))
	var wg sync.WaitGroup
	for sid := range g.cfg.Shards {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			_, ss := telemetry.StartSpan(qctx, fmt.Sprintf("shard_%d", sid))
			start := time.Now()
			replies[sid] = g.queryShard(qctx, sid, body, wantTrace)
			elapsed := time.Since(start)
			replies[sid].millis = float64(elapsed.Microseconds()) / 1000
			ss.SetAttr("attempts", float64(replies[sid].attempts))
			if replies[sid].hedged {
				ss.SetAttr("hedged", 1)
			}
			if replies[sid].err == nil {
				g.shardLat[sid].Observe(elapsed.Seconds())
				g.shardQ[sid].Observe(elapsed.Seconds())
				ss.AttachRemote(replies[sid].trace)
			} else {
				ss.SetAttr("failed", 1)
			}
			ss.End()
		}(sid)
	}
	wg.Wait()
	return replies
}

// queryShard runs the hedged, retried attempt loop for one shard.
// Attempts walk the replica order (ready first); the first success
// wins. A hedge launches when the oldest outstanding attempt exceeds
// the hedge budget and an untried replica exists; a retry launches
// after a failure, with linear backoff, while the retry budget lasts.
func (g *Gateway) queryShard(ctx context.Context, sid int, body []byte, wantTrace bool) shardReply {
	order := g.replicaOrder(sid)
	reps := g.cfg.Shards[sid]
	maxAttempts := len(order) + g.cfg.MaxRetries

	type attempt struct {
		reply   *server.PartialResponse
		replica string
		err     error
	}
	results := make(chan attempt, maxAttempts)
	launched, failed := 0, 0
	hedged := false
	launch := func() {
		u := reps[order[launched%len(order)]]
		launched++
		go func() {
			pr, err := g.postPartial(ctx, u, body, wantTrace)
			results <- attempt{pr, u, err}
		}()
	}
	launch()

	hedge := time.NewTimer(g.cfg.HedgeAfter)
	defer hedge.Stop()
	var lastErr error
	var backoff <-chan time.Time
	for {
		select {
		case a := <-results:
			if a.err == nil {
				return shardReply{sid: sid, partial: a.reply.Partial, trace: a.reply.Trace,
					replica: a.replica, attempts: launched, hedged: hedged}
			}
			lastErr = fmt.Errorf("%s: %w", a.replica, a.err)
			failed++
			if failed == launched && launched < maxAttempts {
				// Every attempt so far failed; schedule a retry after
				// backoff (hedges in flight keep their chance to win).
				g.retries.Inc()
				backoff = time.After(time.Duration(failed) * g.cfg.RetryBackoff)
			} else if failed == launched {
				return shardReply{sid: sid, attempts: launched, hedged: hedged, err: lastErr}
			}
		case <-backoff:
			backoff = nil
			launch()
		case <-hedge.C:
			if launched < len(order) && launched < maxAttempts && backoff == nil {
				hedged = true
				g.hedges.Inc()
				launch()
			}
		case <-ctx.Done():
			return shardReply{sid: sid, attempts: launched, hedged: hedged,
				err: fmt.Errorf("shard %d: %w", sid, ctx.Err())}
		}
	}
}

// postPartial posts the query to one replica's /v1/query/partial.
func (g *Gateway) postPartial(ctx context.Context, base string, body []byte, wantTrace bool) (*server.PartialResponse, error) {
	url := base + "/v1/query/partial"
	if wantTrace {
		url += "?trace=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if rid := server.RequestID(ctx); rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var pr server.PartialResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, fmt.Errorf("decode partial: %w", err)
	}
	if pr.Partial == nil {
		return nil, errors.New("reply carries no partial")
	}
	return &pr, nil
}
