package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/asm"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// QueryResponse is the gateway's POST /v1/query reply: the single-node
// response shape (so clients and diff tools need no gateway-specific
// handling) plus degradation flags. On a complete fleet Partial is
// false and both extra fields are omitted, making the body
// field-for-field comparable with a single node's.
type QueryResponse struct {
	server.QueryResponse
	// Partial is true when at least one shard contributed nothing;
	// results then cover only the reachable corpus.
	Partial bool `json:"partial,omitempty"`
	// MissingShards lists the shard IDs that contributed nothing.
	MissingShards []int `json:"missing_shards,omitempty"`
}

// Handler returns the gateway's HTTP handler tree. The query surface
// mirrors internal/server's: same request schema, same ranked response
// rows, plus /readyz reporting whether every shard is reachable.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", g.handleQuery)
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", g.handleReady)
	return g.logged(mux)
}

// logged mirrors the server's request-ID/logging middleware so gateway
// and shard log lines correlate on the same token (the gateway forwards
// its ID in X-Request-ID on every fan-out leg).
func (g *Gateway) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-ID")
		if rid == "" || len(rid) > 128 {
			rid = server.NewRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		r = r.WithContext(server.WithRequestID(r.Context(), rid))
		next.ServeHTTP(w, r)
		g.cfg.Logger.Info("request",
			"request_id", rid,
			"method", r.Method,
			"path", r.URL.Path,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

func (g *Gateway) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for sid := range g.ready {
		ok := false
		for j := range g.ready[sid] {
			if g.ready[sid][j].Load() {
				ok = true
				break
			}
		}
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "shard %d has no ready replica\n", sid)
			return
		}
	}
	fmt.Fprintln(w, "ready")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (g *Gateway) fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (g *Gateway) count(result string) { g.outcomes[result].Inc() }

func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	body := http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		g.count("bad_input")
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			g.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", g.cfg.MaxBodyBytes)
			return
		}
		g.fail(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	m, err := server.MethodByName(req.Method)
	if err != nil {
		g.count("bad_input")
		g.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	top := req.Top
	if top <= 0 {
		top = 20
	}
	if top > g.cfg.MaxTop {
		top = g.cfg.MaxTop
	}
	// Parse locally before burning fleet work: malformed asm fails here
	// with a 400 instead of N× 400s from the shards.
	procs, err := asm.Parse(req.Asm)
	if err != nil {
		g.count("bad_input")
		g.fail(w, http.StatusBadRequest, "parse asm: %v", err)
		return
	}
	if len(procs) == 0 {
		g.count("bad_input")
		g.fail(w, http.StatusBadRequest, "no procedure in request")
		return
	}
	wantTrace := r.URL.Query().Get("trace") == "1"

	select {
	case g.sem <- struct{}{}:
		defer func() { <-g.sem }()
	default:
		g.count("rejected")
		w.Header().Set("Retry-After", "1")
		g.fail(w, http.StatusTooManyRequests, "too many in-flight queries (limit %d)", g.cfg.MaxInFlight)
		return
	}

	// Forward a canonical body: the query procedure only, ignored
	// method/top stripped.
	fwd, err := json.Marshal(server.QueryRequest{Asm: req.Asm})
	if err != nil {
		g.fail(w, http.StatusInternalServerError, "encode fan-out body: %v", err)
		return
	}

	start := time.Now()
	ctx, cancel := context.WithTimeout(server.WithRequestID(context.Background(), server.RequestID(r.Context())), g.cfg.QueryTimeout)
	defer cancel()
	qctx, root := telemetry.StartSpan(ctx, "gateway_query")
	replies := g.scatter(qctx, fwd, wantTrace)
	root.End()

	parts := make([]*shard.Partial, 0, len(replies))
	for _, rep := range replies {
		if rep.err != nil {
			g.cfg.Logger.Warn("shard failed",
				"request_id", server.RequestID(r.Context()),
				"shard", rep.sid, "attempts", rep.attempts, "err", rep.err.Error())
			continue
		}
		parts = append(parts, rep.partial)
	}
	report, missing, err := shard.Merge(g.cfg.Manifest, parts)
	if err != nil {
		g.count("failure")
		status := http.StatusBadGateway
		if len(parts) > 0 {
			// Shards answered but inconsistently — a fleet bug, not a
			// transient outage.
			status = http.StatusInternalServerError
		}
		g.fail(w, status, "merge: %v", err)
		return
	}

	if len(missing) > 0 {
		g.count("partial")
	} else {
		g.count("completed")
	}
	g.latency.Observe(time.Since(start).Seconds())

	resp := &QueryResponse{
		QueryResponse: *server.BuildQueryResponse(report, m, top),
		Partial:       len(missing) > 0,
		MissingShards: missing,
	}
	resp.RequestID = server.RequestID(r.Context())
	if wantTrace {
		resp.Trace = root.Snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse is the gateway's GET /v1/stats reply.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Fleet         struct {
		Generation string `json:"generation"`
		Shards     int    `json:"shards"`
		Targets    int    `json:"targets"`
		Replicas   int    `json:"replicas"`
		Ready      int    `json:"ready_replicas"`
	} `json:"fleet"`
	Queries struct {
		Completed uint64 `json:"completed"`
		Partial   uint64 `json:"partial"`
		Failures  uint64 `json:"failures"`
		Rejected  uint64 `json:"rejected"`
		BadInput  uint64 `json:"bad_input"`
		InFlight  int    `json:"in_flight"`
		MaxIn     int    `json:"max_in_flight"`
	} `json:"queries"`
	Hedges  uint64 `json:"hedges"`
	Retries uint64 `json:"retries"`
	// ShardReady[i] lists per-replica readiness for shard i, in
	// configured replica order.
	ShardReady [][]bool `json:"shard_ready"`
	// LatencyMS buckets end-to-end merged-query latency.
	LatencyMS map[string]uint64 `json:"latency_ms"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := &StatsResponse{UptimeSeconds: time.Since(g.started).Seconds()}
	resp.Fleet.Generation = g.cfg.Manifest.Generation
	resp.Fleet.Shards = len(g.cfg.Manifest.Shards)
	resp.Fleet.Targets = g.cfg.Manifest.NumTargets
	resp.ShardReady = make([][]bool, len(g.ready))
	for i := range g.ready {
		resp.ShardReady[i] = make([]bool, len(g.ready[i]))
		for j := range g.ready[i] {
			resp.Fleet.Replicas++
			up := g.ready[i][j].Load()
			resp.ShardReady[i][j] = up
			if up {
				resp.Fleet.Ready++
			}
		}
	}
	resp.Queries.Completed = g.outcomes["completed"].Value()
	resp.Queries.Partial = g.outcomes["partial"].Value()
	resp.Queries.Failures = g.outcomes["failure"].Value()
	resp.Queries.Rejected = g.outcomes["rejected"].Value()
	resp.Queries.BadInput = g.outcomes["bad_input"].Value()
	resp.Queries.InFlight = len(g.sem)
	resp.Queries.MaxIn = g.cfg.MaxInFlight
	resp.Hedges = g.hedges.Value()
	resp.Retries = g.retries.Value()

	bounds, counts := g.latency.Snapshot()
	resp.LatencyMS = make(map[string]uint64, len(counts))
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if i < len(bounds) {
			resp.LatencyMS[fmt.Sprintf("<=%gms", bounds[i]*1000)] = n
		} else {
			resp.LatencyMS[fmt.Sprintf(">%gms", bounds[len(bounds)-1]*1000)] = n
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = g.reg.WriteText(w)
}
