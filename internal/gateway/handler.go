package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/asm"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// QueryResponse is the gateway's POST /v1/query reply: the single-node
// response shape (so clients and diff tools need no gateway-specific
// handling) plus degradation flags. On a complete fleet Partial is
// false and both extra fields are omitted, making the body
// field-for-field comparable with a single node's.
type QueryResponse struct {
	server.QueryResponse
	// Partial is true when at least one shard contributed nothing;
	// results then cover only the reachable corpus.
	Partial bool `json:"partial,omitempty"`
	// MissingShards lists the shard IDs that contributed nothing.
	MissingShards []int `json:"missing_shards,omitempty"`
}

// Handler returns the gateway's HTTP handler tree. The query surface
// mirrors internal/server's: same request schema, same ranked response
// rows, plus /readyz reporting whether every shard is reachable.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", g.handleQuery)
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("GET /v1/fleet", g.handleFleet)
	mux.HandleFunc("GET /debug/slow", g.handleSlow)
	mux.HandleFunc("GET /debug/queries", g.handleRecent)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", g.handleReady)
	return g.logged(mux)
}

// logged mirrors the server's request-ID/logging middleware so gateway
// and shard log lines correlate on the same token (the gateway forwards
// its ID in X-Request-ID on every fan-out leg).
func (g *Gateway) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-ID")
		if rid == "" || len(rid) > 128 {
			rid = server.NewRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		r = r.WithContext(server.WithRequestID(r.Context(), rid))
		next.ServeHTTP(w, r)
		g.cfg.Logger.Info("request",
			"request_id", rid,
			"method", r.Method,
			"path", r.URL.Path,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

func (g *Gateway) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for sid := range g.ready {
		ok := false
		for j := range g.ready[sid] {
			if g.ready[sid][j].Load() {
				ok = true
				break
			}
		}
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "shard %d has no ready replica\n", sid)
			return
		}
	}
	fmt.Fprintln(w, "ready")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (g *Gateway) fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (g *Gateway) count(result string) { g.outcomes[result].Inc() }

// record publishes one fan-out's flight-recorder entry, with the
// per-shard leg outcomes, and emits the slow-query warning when it
// crossed the threshold. Only queries that reached the fleet are
// recorded (bad_input and rejected requests never fanned out).
func (g *Gateway) record(rid, outcome, errMsg string, start time.Time, root *telemetry.Span, replies []shardReply) {
	man := g.cfg.Manifest
	rec := &telemetry.QueryRecord{
		ID:         rid,
		Kind:       "gateway",
		Start:      start,
		Outcome:    outcome,
		Err:        errMsg,
		Generation: man.Generation,
		Kernel:     man.Kernel,
		Prefilter:  man.Prefilter,
		Retrieval:  man.Retrieval,
	}
	rec.FillFromTrace(root.Snapshot())
	rec.Shards = make([]telemetry.ShardOutcome, len(replies))
	for i, rep := range replies {
		so := telemetry.ShardOutcome{
			Shard:    rep.sid,
			Replica:  rep.replica,
			Millis:   rep.millis,
			Attempts: rep.attempts,
			Hedged:   rep.hedged,
		}
		if rep.err != nil {
			so.Err = rep.err.Error()
		}
		rec.Shards[i] = so
	}
	if g.rec.Record(rec) {
		g.slowQ.Inc()
		g.cfg.Logger.Warn("slow query",
			"request_id", rid,
			"kind", "gateway",
			"outcome", outcome,
			"dur_ms", rec.DurationMS,
			"threshold_ms", float64(g.rec.SlowThreshold().Microseconds())/1000,
			"stage_ms", fmt.Sprintf("%v", rec.StageMS),
		)
	}
}

func (g *Gateway) handleSlow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &server.SlowResponse{
		ThresholdMS: float64(g.rec.SlowThreshold().Microseconds()) / 1000,
		Total:       g.rec.SlowTotal(),
		Recorded:    g.rec.Total(),
		Records:     g.rec.Slow(),
	})
}

func (g *Gateway) handleRecent(w http.ResponseWriter, r *http.Request) {
	n := 100
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":   g.rec.Total(),
		"records": g.rec.Recent(n),
	})
}

// handleFleet serves GET /v1/fleet: the JSON fleet-health view —
// generation, readiness, gateway-observed per-shard latency quantiles,
// and each shard's last federation scrape.
func (g *Gateway) handleFleet(w http.ResponseWriter, r *http.Request) {
	fleet := &shard.FleetHealth{
		Generation:    g.cfg.Manifest.Generation,
		StartTime:     g.started.UTC(),
		UptimeSeconds: time.Since(g.started).Seconds(),
		Ready:         true,
		Shards:        make([]shard.ShardHealth, len(g.cfg.Shards)),
	}
	for sid, reps := range g.cfg.Shards {
		sh := shard.ShardHealth{
			ID:       sid,
			Targets:  len(g.cfg.Manifest.Shards[sid].Targets),
			Replicas: make([]shard.ReplicaHealth, len(reps)),
		}
		anyReady := false
		for j, u := range reps {
			up := g.ready[sid][j].Load()
			sh.Replicas[j] = shard.ReplicaHealth{URL: u, Ready: up}
			fleet.Replicas++
			if up {
				anyReady = true
				fleet.ReadyReplicas++
			}
		}
		if !anyReady {
			fleet.Ready = false
		}
		sh.P50MS = quantileMS(g.shardQ[sid], 0.5)
		sh.P95MS = quantileMS(g.shardQ[sid], 0.95)
		sh.P99MS = quantileMS(g.shardQ[sid], 0.99)
		if sr := g.scrapes[sid].Load(); sr != nil {
			sh.UptimeSeconds = sr.uptime
			sh.LastScrape = &shard.ScrapeStatus{
				Replica: sr.replica,
				At:      sr.at.UTC(),
				Millis:  sr.millis,
				Series:  sr.series,
				Err:     sr.err,
			}
		}
		fleet.Shards[sid] = sh
	}
	writeJSON(w, http.StatusOK, fleet)
}

// quantileMS reads one quantile as milliseconds, mapping the empty
// stream's NaN to 0 so the value is JSON-encodable.
func quantileMS(q *telemetry.Quantiles, p float64) float64 {
	v := q.Quantile(p)
	if math.IsNaN(v) {
		return 0
	}
	return v * 1000
}

func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	body := http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		g.count("bad_input")
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			g.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", g.cfg.MaxBodyBytes)
			return
		}
		g.fail(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	m, err := server.MethodByName(req.Method)
	if err != nil {
		g.count("bad_input")
		g.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	top := req.Top
	if top <= 0 {
		top = 20
	}
	if top > g.cfg.MaxTop {
		top = g.cfg.MaxTop
	}
	// Parse locally before burning fleet work: malformed asm fails here
	// with a 400 instead of N× 400s from the shards.
	procs, err := asm.Parse(req.Asm)
	if err != nil {
		g.count("bad_input")
		g.fail(w, http.StatusBadRequest, "parse asm: %v", err)
		return
	}
	if len(procs) == 0 {
		g.count("bad_input")
		g.fail(w, http.StatusBadRequest, "no procedure in request")
		return
	}
	wantTrace := r.URL.Query().Get("trace") == "1"

	select {
	case g.sem <- struct{}{}:
		defer func() { <-g.sem }()
	default:
		g.count("rejected")
		w.Header().Set("Retry-After", "1")
		g.fail(w, http.StatusTooManyRequests, "too many in-flight queries (limit %d)", g.cfg.MaxInFlight)
		return
	}

	// Forward a canonical body: the query procedure only, ignored
	// method/top stripped.
	fwd, err := json.Marshal(server.QueryRequest{Asm: req.Asm})
	if err != nil {
		g.fail(w, http.StatusInternalServerError, "encode fan-out body: %v", err)
		return
	}

	start := time.Now()
	rid := server.RequestID(r.Context())
	ctx, cancel := context.WithTimeout(server.WithRequestID(context.Background(), rid), g.cfg.QueryTimeout)
	defer cancel()
	qctx, root := telemetry.StartSpan(ctx, "gateway_query")
	replies := g.scatter(qctx, fwd, wantTrace)
	root.End()

	parts := make([]*shard.Partial, 0, len(replies))
	for _, rep := range replies {
		if rep.err != nil {
			g.cfg.Logger.Warn("shard failed",
				"request_id", rid,
				"shard", rep.sid, "attempts", rep.attempts, "err", rep.err.Error())
			continue
		}
		parts = append(parts, rep.partial)
	}
	report, missing, err := shard.Merge(g.cfg.Manifest, parts)
	if err != nil {
		g.count("failure")
		g.record(rid, "failure", err.Error(), start, root, replies)
		status := http.StatusBadGateway
		if len(parts) > 0 {
			// Shards answered but inconsistently — a fleet bug, not a
			// transient outage.
			status = http.StatusInternalServerError
		}
		g.fail(w, status, "merge: %v", err)
		return
	}

	outcome := "completed"
	if len(missing) > 0 {
		outcome = "partial"
	}
	g.count(outcome)
	g.latency.Observe(time.Since(start).Seconds())
	g.lat.Observe(time.Since(start).Seconds())
	g.record(rid, outcome, "", start, root, replies)

	resp := &QueryResponse{
		QueryResponse: *server.BuildQueryResponse(report, m, top),
		Partial:       len(missing) > 0,
		MissingShards: missing,
	}
	resp.RequestID = server.RequestID(r.Context())
	if wantTrace {
		resp.Trace = root.Snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse is the gateway's GET /v1/stats reply.
type StatsResponse struct {
	StartTime     time.Time `json:"start_time"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Fleet         struct {
		Generation string `json:"generation"`
		Shards     int    `json:"shards"`
		Targets    int    `json:"targets"`
		Replicas   int    `json:"replicas"`
		Ready      int    `json:"ready_replicas"`
	} `json:"fleet"`
	Queries struct {
		Completed uint64 `json:"completed"`
		Partial   uint64 `json:"partial"`
		Failures  uint64 `json:"failures"`
		Rejected  uint64 `json:"rejected"`
		BadInput  uint64 `json:"bad_input"`
		InFlight  int    `json:"in_flight"`
		MaxIn     int    `json:"max_in_flight"`
	} `json:"queries"`
	Hedges  uint64 `json:"hedges"`
	Retries uint64 `json:"retries"`
	// ShardReady[i] lists per-replica readiness for shard i, in
	// configured replica order.
	ShardReady [][]bool `json:"shard_ready"`
	// LatencyMS buckets end-to-end merged-query latency.
	LatencyMS map[string]uint64 `json:"latency_ms"`
	// LatencyQuantilesMS are the streamed P2 estimates behind the
	// esh_gw_query_quantile_seconds gauges (zero until traffic).
	LatencyQuantilesMS map[string]float64 `json:"latency_quantiles_ms"`
	// Recorder summarizes the flight recorder (see /debug/slow).
	Recorder struct {
		Records     uint64  `json:"records"`
		Slow        uint64  `json:"slow"`
		ThresholdMS float64 `json:"threshold_ms"`
	} `json:"recorder"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := &StatsResponse{
		StartTime:     g.started.UTC(),
		UptimeSeconds: time.Since(g.started).Seconds(),
	}
	resp.Fleet.Generation = g.cfg.Manifest.Generation
	resp.Fleet.Shards = len(g.cfg.Manifest.Shards)
	resp.Fleet.Targets = g.cfg.Manifest.NumTargets
	resp.ShardReady = make([][]bool, len(g.ready))
	for i := range g.ready {
		resp.ShardReady[i] = make([]bool, len(g.ready[i]))
		for j := range g.ready[i] {
			resp.Fleet.Replicas++
			up := g.ready[i][j].Load()
			resp.ShardReady[i][j] = up
			if up {
				resp.Fleet.Ready++
			}
		}
	}
	resp.Queries.Completed = g.outcomes["completed"].Value()
	resp.Queries.Partial = g.outcomes["partial"].Value()
	resp.Queries.Failures = g.outcomes["failure"].Value()
	resp.Queries.Rejected = g.outcomes["rejected"].Value()
	resp.Queries.BadInput = g.outcomes["bad_input"].Value()
	resp.Queries.InFlight = len(g.sem)
	resp.Queries.MaxIn = g.cfg.MaxInFlight
	resp.Hedges = g.hedges.Value()
	resp.Retries = g.retries.Value()

	bounds, counts := g.latency.Snapshot()
	resp.LatencyMS = make(map[string]uint64, len(counts))
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if i < len(bounds) {
			resp.LatencyMS[fmt.Sprintf("<=%gms", bounds[i]*1000)] = n
		} else {
			resp.LatencyMS[fmt.Sprintf(">%gms", bounds[len(bounds)-1]*1000)] = n
		}
	}
	resp.LatencyQuantilesMS = make(map[string]float64, len(latencyQuantiles))
	for _, q := range latencyQuantiles {
		resp.LatencyQuantilesMS[fmt.Sprintf("p%g", q*100)] = quantileMS(g.lat, q)
	}
	resp.Recorder.Records = g.rec.Total()
	resp.Recorder.Slow = g.rec.SlowTotal()
	resp.Recorder.ThresholdMS = float64(g.rec.SlowThreshold().Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics renders the federated exposition: the gateway's own
// registry plus every shard's last scraped /metrics page re-labeled
// with shard="<id>". The merge goes through parse → label → merge →
// re-render, so the result is one family block per name with a single
// TYPE/HELP line — strict-parser-clean by construction even when the
// gateway and shards export same-named families (esh_build_info,
// esh_process_start_time_seconds). Scraped families whose type
// conflicts with the gateway's own are dropped and counted.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf bytes.Buffer
	if err := g.reg.WriteText(&buf); err != nil {
		return
	}
	own, err := telemetry.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		// The registry's own rendering should always parse; degrade to
		// the raw page rather than serving nothing.
		_, _ = w.Write(buf.Bytes())
		return
	}
	var scraped []*telemetry.ParsedFamily
	for sid := range g.scrapes {
		sr := g.scrapes[sid].Load()
		if sr == nil || sr.fams == nil {
			continue
		}
		for _, f := range sr.fams {
			scraped = append(scraped, f.WithLabels("shard", strconv.Itoa(sid)))
		}
	}
	merged, dropped := telemetry.MergeFamilies(own, scraped)
	if n := len(dropped); n > 0 {
		g.fedDropped.Add(uint64(n))
	}
	_ = telemetry.WriteFamilies(w, merged)
}
