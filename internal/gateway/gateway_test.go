package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/vcp"
)

const gccStyle = `proc checksum_gcc
	xor eax, eax
	mov rcx, rdi
	lea rdx, [rsi+rsi*2]
	shl rdx, 2
	add rdx, 0x20
	imul rcx, rdx
	mov rax, rcx
	shr rax, 7
	xor rax, rcx
	mov r8, rax
	and r8, 0xff
	add rax, r8
	ret
endp`

const iccStyle = `proc checksum_icc
	xor r9d, r9d
	mov r10, rdi
	mov r11, rsi
	imul r11, 3
	imul r11, 4
	add r11, 0x20
	imul r10, r11
	mov rax, r10
	shr rax, 7
	xor rax, r10
	mov rbx, rax
	and rbx, 0xff
	add rax, rbx
	ret
endp`

const memStyle = `proc save_pair
	mov [rdi], rsi
	mov [rdi+8], rdx
	mov rax, rsi
	add rax, rdx
	mov [rdi+16], rax
	call helper
	ret
endp`

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func buildCorpus(t *testing.T) *core.DB {
	t.Helper()
	db := core.NewDB(core.Options{VCP: vcp.Config{MinVars: 3}, Workers: 2})
	for _, src := range []string{gccStyle, iccStyle, memStyle} {
		p, err := asm.ParseProc(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.AddTarget(p); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// fleet is a complete in-process cluster: one httptest eshd per shard,
// the single-node reference server, and the gateway in front.
type fleet struct {
	man      *shard.Manifest
	shardSrv []*httptest.Server
	single   *httptest.Server
	gw       *Gateway
	gwSrv    *httptest.Server
}

// startFleet splits the corpus n ways and wires real server.Server
// instances behind a gateway. mutate (optional) adjusts the gateway
// config (replica lists, budgets) before New.
func startFleet(t *testing.T, n int, mutate func(*Config)) *fleet {
	t.Helper()
	db := buildCorpus(t)
	ex := db.Export()
	man, shardExs, err := shard.Split(ex, n)
	if err != nil {
		t.Fatal(err)
	}
	f := &fleet{man: man}
	scfg := server.Config{Logger: quietLogger()}
	var urls [][]string
	for s, se := range shardExs {
		sdb, err := core.FromExport(se)
		if err != nil {
			t.Fatalf("rebuild shard %d: %v", s, err)
		}
		ts := httptest.NewServer(server.New(sdb, scfg).Handler())
		t.Cleanup(ts.Close)
		f.shardSrv = append(f.shardSrv, ts)
		urls = append(urls, []string{ts.URL})
	}
	single, err := core.FromExport(ex)
	if err != nil {
		t.Fatal(err)
	}
	f.single = httptest.NewServer(server.New(single, scfg).Handler())
	t.Cleanup(f.single.Close)

	cfg := Config{
		Manifest:     man,
		Shards:       urls,
		QueryTimeout: 30 * time.Second,
		HedgeAfter:   5 * time.Second, // effectively off unless a test lowers it
		MaxRetries:   1,
		RetryBackoff: 5 * time.Millisecond,
		Logger:       quietLogger(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f.gw, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.gwSrv = httptest.NewServer(f.gw.Handler())
	t.Cleanup(f.gwSrv.Close)
	return f
}

func postQuery(t *testing.T, url, asmText string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(server.QueryRequest{Asm: asmText, Top: 100})
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeResponse(t *testing.T, resp *http.Response) *QueryResponse {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("query = %d: %s", resp.StatusCode, msg)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return &qr
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// requireSameResults asserts two wire responses carry identical ranked
// rows — names, ranks, and every score bit for bit.
func requireSameResults(t *testing.T, want, got *QueryResponse, label string) {
	t.Helper()
	if got.NumStrands != want.NumStrands || got.NumBlocks != want.NumBlocks {
		t.Fatalf("%s: query shape %d/%d, want %d/%d", label, got.NumStrands, got.NumBlocks, want.NumStrands, want.NumBlocks)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		a, b := want.Results[i], got.Results[i]
		if !reflect.DeepEqual(a, b) ||
			!sameBits(a.Score, b.Score) || !sameBits(a.GES, b.GES) ||
			!sameBits(a.SLOG, b.SLOG) || !sameBits(a.SVCP, b.SVCP) {
			t.Fatalf("%s: rank %d differs:\nwant %+v\ngot  %+v", label, i, a, b)
		}
	}
}

// TestGatewayDifferential is the over-HTTP exact-merge guard: for N in
// {1,2,4}, the gateway's ranked rows must be identical — names and raw
// GES/SLOG/SVCP/sigmoid scores to the bit — to a single eshd serving
// the union corpus, and the response must not be flagged partial.
func TestGatewayDifferential(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		f := startFleet(t, n, nil)
		for _, q := range []string{gccStyle, memStyle} {
			want := decodeResponse(t, postQuery(t, f.single.URL, q))
			got := decodeResponse(t, postQuery(t, f.gwSrv.URL, q))
			if got.Partial || len(got.MissingShards) != 0 {
				t.Fatalf("n=%d: complete fleet flagged partial (missing %v)", n, got.MissingShards)
			}
			requireSameResults(t, want, got, q[:20])
		}
	}
}

// TestGatewayShardDown kills one shard and requires a 200 with the
// partial flag, the missing shard listed, and only the surviving
// shards' targets ranked.
func TestGatewayShardDown(t *testing.T) {
	f := startFleet(t, 2, nil)
	down := 1
	f.shardSrv[down].Close()

	got := decodeResponse(t, postQuery(t, f.gwSrv.URL, gccStyle))
	if !got.Partial {
		t.Fatal("response not flagged partial with a shard down")
	}
	if len(got.MissingShards) != 1 || got.MissingShards[0] != down {
		t.Fatalf("missing_shards = %v, want [%d]", got.MissingShards, down)
	}
	if want := f.man.NumTargets - len(f.man.Shards[down].Targets); len(got.Results) != want {
		t.Fatalf("%d results with shard %d down, want %d", len(got.Results), down, want)
	}
	st := fetchGatewayStats(t, f.gwSrv.URL)
	if st.Queries.Partial != 1 {
		t.Fatalf("partial counter = %d, want 1", st.Queries.Partial)
	}
}

// TestGatewayAllShardsDown requires a clean upstream error, not a hang
// or a panic, when nobody answers.
func TestGatewayAllShardsDown(t *testing.T) {
	f := startFleet(t, 2, nil)
	for _, ts := range f.shardSrv {
		ts.Close()
	}
	resp := postQuery(t, f.gwSrv.URL, gccStyle)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-down query = %d, want 502", resp.StatusCode)
	}
}

// TestGatewayHedging gives shard 0 a slow first replica and a fast
// second one; with a tight hedge budget the query must complete fast
// and the hedge counter must move.
func TestGatewayHedging(t *testing.T) {
	var slowed *httptest.Server
	f := startFleet(t, 2, func(cfg *Config) {
		// A delaying proxy in front of shard 0's real server.
		target := cfg.Shards[0][0]
		slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(400 * time.Millisecond)
			body, _ := io.ReadAll(r.Body)
			req, _ := http.NewRequest(r.Method, target+r.URL.String(), bytes.NewReader(body))
			req.Header = r.Header
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				w.WriteHeader(http.StatusBadGateway)
				return
			}
			defer resp.Body.Close()
			w.WriteHeader(resp.StatusCode)
			io.Copy(w, resp.Body)
		})
		slowed = httptest.NewServer(slow)
		cfg.Shards[0] = []string{slowed.URL, target}
		cfg.HedgeAfter = 25 * time.Millisecond
	})
	t.Cleanup(slowed.Close)

	want := decodeResponse(t, postQuery(t, f.single.URL, gccStyle))
	got := decodeResponse(t, postQuery(t, f.gwSrv.URL, gccStyle))
	requireSameResults(t, want, got, "hedged")
	if f.gw.hedges.Value() == 0 {
		t.Fatal("hedge counter did not move")
	}
	st := fetchGatewayStats(t, f.gwSrv.URL)
	if st.Hedges == 0 {
		t.Fatal("stats report zero hedges")
	}
}

// TestGatewayRetry gives shard 0 a failing first replica; the retry
// path must fall through to the healthy one and still merge exactly.
func TestGatewayRetry(t *testing.T) {
	var broken *httptest.Server
	f := startFleet(t, 2, func(cfg *Config) {
		broken = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "shard on fire", http.StatusInternalServerError)
		}))
		cfg.Shards[0] = []string{broken.URL, cfg.Shards[0][0]}
		cfg.MaxRetries = 2
	})
	t.Cleanup(broken.Close)

	want := decodeResponse(t, postQuery(t, f.single.URL, gccStyle))
	got := decodeResponse(t, postQuery(t, f.gwSrv.URL, gccStyle))
	if got.Partial {
		t.Fatal("retry path flagged partial despite a healthy replica")
	}
	requireSameResults(t, want, got, "retried")
	if f.gw.retries.Value() == 0 {
		t.Fatal("retry counter did not move")
	}
}

// TestGatewayTrace checks fan-out trace stitching: one child span per
// shard, each carrying the shard's remote server-side trace.
func TestGatewayTrace(t *testing.T) {
	f := startFleet(t, 2, nil)
	body, _ := json.Marshal(server.QueryRequest{Asm: gccStyle})
	resp, err := http.Post(f.gwSrv.URL+"/v1/query?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	qr := decodeResponse(t, resp)
	if qr.Trace == nil {
		t.Fatal("no trace in ?trace=1 response")
	}
	if len(qr.Trace.Children) != 2 {
		t.Fatalf("trace has %d shard children, want 2", len(qr.Trace.Children))
	}
	for _, c := range qr.Trace.Children {
		if len(c.Children) == 0 {
			t.Fatalf("shard span %s carries no remote trace", c.Name)
		}
		if c.Children[0].Name != "query_partial" {
			t.Fatalf("shard span %s grafted %q, want query_partial", c.Name, c.Children[0].Name)
		}
	}
}

// TestCheckFleet verifies fleet verification: a correct fleet passes,
// and pointing a shard slot at the wrong shard's replica is an error.
func TestCheckFleet(t *testing.T) {
	f := startFleet(t, 2, nil)
	warnings, errs := f.gw.CheckFleet(context.Background())
	if len(errs) != 0 {
		t.Fatalf("correct fleet: %v", errs)
	}
	_ = warnings

	// Cross-wire: shard 1's slot points at shard 0's server.
	bad, err := New(Config{
		Manifest: f.man,
		Shards:   [][]string{{f.shardSrv[0].URL}, {f.shardSrv[0].URL}},
		Logger:   quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, errs := bad.CheckFleet(context.Background()); len(errs) == 0 {
		t.Fatal("cross-wired fleet passed verification")
	}
}

// TestGatewayReadyz exercises the prober: all up → ready; a dead shard
// with no replicas left → 503 naming the shard.
func TestGatewayReadyz(t *testing.T) {
	f := startFleet(t, 2, nil)
	f.gw.probeAll()
	if resp := getURL(t, f.gwSrv.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy fleet /readyz = %d", resp.StatusCode)
	}
	f.shardSrv[1].Close()
	f.gw.probeAll()
	if resp := getURL(t, f.gwSrv.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shard-down /readyz = %d, want 503", resp.StatusCode)
	}
	st := fetchGatewayStats(t, f.gwSrv.URL)
	if st.Fleet.Ready != 1 || st.Fleet.Replicas != 2 {
		t.Fatalf("fleet health %d/%d, want 1/2", st.Fleet.Ready, st.Fleet.Replicas)
	}
}

func getURL(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func fetchGatewayStats(t *testing.T, base string) *StatsResponse {
	t.Helper()
	resp := getURL(t, base+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}
