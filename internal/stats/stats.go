// Package stats implements the paper's statistical framework (§3.3–3.4):
// lifting the VCP similarity of strands into probabilities with a sigmoid,
// estimating the random hypothesis H0 as the corpus mean, and composing
// Local and Global Evidence Scores. It also defines the sub-method
// decomposition of §6.2 (S-VCP, S-LOG, Esh) used throughout the
// evaluation.
package stats

import "math"

// Sigmoid parameters from §3.3.1: midpoint 0.5 (VCP ranges over [0,1])
// and steepness k = 10, found experimentally by the authors.
const (
	SigmoidMidpoint = 0.5
	DefaultSigmoidK = 10.0
)

// Epsilon floors probabilities before logarithms.
const Epsilon = 1e-9

// Sigmoid maps a VCP in [0,1] to a probability with the paper's logistic
// curve: Pr(sq|st) = 1 / (1 + exp(-k (VCP - 0.5))).
func Sigmoid(vcp float64) float64 { return SigmoidWithK(vcp, DefaultSigmoidK) }

// SigmoidWithK is Sigmoid with an explicit steepness (for the k-ablation).
func SigmoidWithK(vcp, k float64) float64 {
	return 1.0 / (1.0 + math.Exp(-k*(vcp-SigmoidMidpoint)))
}

// Method selects one of the paper's sub-method layers (§6.2).
type Method uint8

// Sub-methods, in increasing order of machinery.
const (
	// SVCP sums, per query strand, the best VCP over the target's
	// strands — no statistical significance weighting at all.
	SVCP Method = iota
	// SLOG applies the likelihood-ratio framework with Pr(sq|st) taken
	// to be the raw VCP (no sigmoid).
	SLOG
	// Esh is the full method: sigmoid probability plus likelihood ratio.
	Esh
)

func (m Method) String() string {
	switch m {
	case SVCP:
		return "S-VCP"
	case SLOG:
		return "S-LOG"
	default:
		return "Esh"
	}
}

// Pr converts a VCP into the method's strand-match probability. For SVCP
// the "probability" is the VCP itself (the method never takes logs).
func Pr(m Method, vcp float64) float64 {
	switch m {
	case Esh:
		return Sigmoid(vcp)
	default:
		return vcp
	}
}

// LES is the Local Evidence Score (§3.4): the log likelihood-ratio
// between the best match in the target and the random hypothesis:
// log Pr(sq|t) − log Pr(sq|H0). Inputs are floored at Epsilon.
func LES(prBest, prH0 float64) float64 {
	return math.Log(math.Max(prBest, Epsilon)) - math.Log(math.Max(prH0, Epsilon))
}

// StrandEvidence aggregates one query strand's statistics against the
// whole corpus: the corpus-mean probabilities per method (the H0
// estimate) and, externally, per-target best VCPs.
type StrandEvidence struct {
	// Weight is the strand's multiplicity in the query (identical
	// strands are deduplicated but still contribute once each).
	Weight float64
	// H0Esh and H0Raw are the corpus means of Sigmoid(VCP) and VCP.
	H0Esh, H0Raw float64
	// K is the sigmoid steepness used for Esh scores (0 selects
	// DefaultSigmoidK); it exists for the k-ablation.
	K float64
}

func (ev StrandEvidence) k() float64 {
	if ev.K == 0 {
		return DefaultSigmoidK
	}
	return ev.K
}

// Score computes the method's contribution of one query strand matched
// against one target with best VCP maxVCP.
func Score(m Method, maxVCP float64, ev StrandEvidence) float64 {
	switch m {
	case SVCP:
		return ev.Weight * maxVCP
	case SLOG:
		return ev.Weight * LES(maxVCP, ev.H0Raw)
	default:
		return ev.Weight * LES(SigmoidWithK(maxVCP, ev.k()), ev.H0Esh)
	}
}

// GES sums strand contributions into the Global Evidence Score (Eq. 1).
func GES(m Method, maxVCPs []float64, evidence []StrandEvidence) float64 {
	total := 0.0
	for i, v := range maxVCPs {
		total += Score(m, v, evidence[i])
	}
	return total
}

// H0Accumulator incrementally estimates Pr(sq|H0) for one query strand as
// the corpus-weighted mean of Pr(sq|st) over every target strand
// (§3.3.2), tracked for both the sigmoid and the raw probability model.
// K overrides the sigmoid steepness (0 selects DefaultSigmoidK).
type H0Accumulator struct {
	K              float64
	sumEsh, sumRaw float64
	count          float64
}

// Add records a VCP observation with the given corpus multiplicity.
func (h *H0Accumulator) Add(vcp float64, multiplicity int) {
	k := h.K
	if k == 0 {
		k = DefaultSigmoidK
	}
	w := float64(multiplicity)
	h.sumEsh += SigmoidWithK(vcp, k) * w
	h.sumRaw += vcp * w
	h.count += w
}

// Evidence finalizes the estimate for a strand with the given weight.
func (h *H0Accumulator) Evidence(weight float64) StrandEvidence {
	ev := StrandEvidence{Weight: weight, K: h.K}
	if h.count > 0 {
		ev.H0Esh = h.sumEsh / h.count
		ev.H0Raw = h.sumRaw / h.count
	}
	return ev
}
