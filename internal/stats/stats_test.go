package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSigmoidEndpoints(t *testing.T) {
	// §3.3.1: Pr ≈ 1 at VCP = 1, ≈ 0 at VCP = 0, exactly 0.5 at midpoint.
	if g := Sigmoid(1); g < 0.99 {
		t.Errorf("Sigmoid(1) = %v, want ≈ 1", g)
	}
	if g := Sigmoid(0); g > 0.01 {
		t.Errorf("Sigmoid(0) = %v, want ≈ 0", g)
	}
	if g := Sigmoid(0.5); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0.5) = %v, want 0.5", g)
	}
}

func TestSigmoidMonotonic(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return Sigmoid(a) <= Sigmoid(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmoidWithK(t *testing.T) {
	// Larger k is steeper: further from 0.5 at the same VCP.
	if SigmoidWithK(0.8, 20) <= SigmoidWithK(0.8, 5) {
		t.Error("steeper k not steeper above midpoint")
	}
	if SigmoidWithK(0.2, 20) >= SigmoidWithK(0.2, 5) {
		t.Error("steeper k not steeper below midpoint")
	}
}

func TestLES(t *testing.T) {
	// Matching better than random is positive evidence.
	if LES(0.9, 0.1) <= 0 {
		t.Error("strong match yields non-positive LES")
	}
	// Matching exactly as well as random is zero evidence.
	if got := LES(0.3, 0.3); math.Abs(got) > 1e-12 {
		t.Errorf("LES(p,p) = %v, want 0", got)
	}
	// Matching worse than random is negative evidence.
	if LES(0.01, 0.5) >= 0 {
		t.Error("weak match yields non-negative LES")
	}
	// Zero probabilities do not produce infinities.
	if math.IsInf(LES(0, 0.5), 0) || math.IsNaN(LES(0, 0)) {
		t.Error("LES not floored")
	}
}

func TestMethodString(t *testing.T) {
	if SVCP.String() != "S-VCP" || SLOG.String() != "S-LOG" || Esh.String() != "Esh" {
		t.Error("method names wrong")
	}
}

func TestPrPerMethod(t *testing.T) {
	if Pr(Esh, 0.75) != Sigmoid(0.75) {
		t.Error("Esh Pr is not the sigmoid")
	}
	if Pr(SLOG, 0.75) != 0.75 || Pr(SVCP, 0.75) != 0.75 {
		t.Error("sub-method Pr is not raw VCP")
	}
}

func TestH0Accumulator(t *testing.T) {
	var h H0Accumulator
	h.Add(1.0, 1)
	h.Add(0.0, 3)
	ev := h.Evidence(1)
	if math.Abs(ev.H0Raw-0.25) > 1e-12 {
		t.Errorf("H0Raw = %v, want 0.25", ev.H0Raw)
	}
	wantEsh := (Sigmoid(1.0) + 3*Sigmoid(0.0)) / 4
	if math.Abs(ev.H0Esh-wantEsh) > 1e-12 {
		t.Errorf("H0Esh = %v, want %v", ev.H0Esh, wantEsh)
	}
	// Empty accumulator yields zero evidence (floored downstream).
	var empty H0Accumulator
	if ev := empty.Evidence(1); ev.H0Esh != 0 || ev.H0Raw != 0 {
		t.Error("empty accumulator not zero")
	}
}

func TestScoreAmplifiesRareStrands(t *testing.T) {
	// The paper's key statistical claim: a match on a rare strand (low
	// H0) contributes more evidence than the same match on a common
	// strand (high H0).
	rare := StrandEvidence{Weight: 1, H0Esh: 0.01, H0Raw: 0.01}
	common := StrandEvidence{Weight: 1, H0Esh: 0.6, H0Raw: 0.6}
	if Score(Esh, 1.0, rare) <= Score(Esh, 1.0, common) {
		t.Error("rare strand match not amplified (Esh)")
	}
	if Score(SLOG, 1.0, rare) <= Score(SLOG, 1.0, common) {
		t.Error("rare strand match not amplified (S-LOG)")
	}
	// S-VCP ignores significance entirely.
	if Score(SVCP, 1.0, rare) != Score(SVCP, 1.0, common) {
		t.Error("S-VCP should ignore H0")
	}
}

func TestGESSums(t *testing.T) {
	evs := []StrandEvidence{
		{Weight: 1, H0Esh: 0.1, H0Raw: 0.1},
		{Weight: 2, H0Esh: 0.1, H0Raw: 0.1},
	}
	vcps := []float64{1.0, 1.0}
	got := GES(Esh, vcps, evs)
	want := Score(Esh, 1.0, evs[0]) + Score(Esh, 1.0, evs[1])
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("GES = %v, want %v", got, want)
	}
	// Weight 2 counts double.
	if Score(Esh, 1.0, evs[1]) != 2*Score(Esh, 1.0, evs[0]) {
		t.Error("weights not applied")
	}
}

func TestGESDiscriminates(t *testing.T) {
	// A target matching every strand must outscore one matching none,
	// under every method.
	evs := []StrandEvidence{
		{Weight: 1, H0Esh: 0.05, H0Raw: 0.05},
		{Weight: 1, H0Esh: 0.05, H0Raw: 0.05},
		{Weight: 1, H0Esh: 0.05, H0Raw: 0.05},
	}
	full := []float64{1, 1, 1}
	none := []float64{0, 0, 0}
	for _, m := range []Method{SVCP, SLOG, Esh} {
		if GES(m, full, evs) <= GES(m, none, evs) {
			t.Errorf("%v: full match does not outscore no match", m)
		}
	}
}
