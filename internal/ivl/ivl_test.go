package ivl

import (
	"strings"
	"testing"
	"testing/quick"
)

func intv(name string) Var { return Var{Name: name, Type: Int} }

func TestExprString(t *testing.T) {
	e := Bin(Add, IntVar("x"), C(0x13))
	if got := e.String(); got != "(x + 0x13)" {
		t.Errorf("String = %q", got)
	}
	s := Assign(intv("v1"), e)
	if got := s.String(); got != "v1 := (x + 0x13)" {
		t.Errorf("Stmt = %q", got)
	}
	if got := Assume(Bin(Eq, IntVar("a"), IntVar("b"))).String(); got != "assume (a == b)" {
		t.Errorf("assume = %q", got)
	}
	ld := LoadExpr{Mem: IntVar("m"), Addr: IntVar("p"), W: 4}
	if got := ld.String(); got != "load32(m, p)" {
		t.Errorf("load = %q", got)
	}
}

func TestProcString(t *testing.T) {
	p := &Proc{Name: "q", Stmts: []Stmt{
		Assign(intv("v1"), C(1)),
		Assert(Bin(Eq, IntVar("v1"), C(1))),
	}}
	s := p.String()
	if !strings.Contains(s, "procedure q") || !strings.Contains(s, "assert") {
		t.Errorf("Proc.String = %q", s)
	}
}

func TestFreeVars(t *testing.T) {
	e := Bin(Add, Bin(Mul, IntVar("a"), IntVar("b")), IntVar("a"))
	fv := FreeVars(e)
	if len(fv) != 2 || fv[0].Name != "a" || fv[1].Name != "b" {
		t.Errorf("FreeVars = %v", fv)
	}
}

func TestRename(t *testing.T) {
	e := Bin(Add, IntVar("a"), IntVar("b"))
	r := Rename(e, func(v Var) Var { v.Name = v.Name + "_q"; return v })
	if r.String() != "(a_q + b_q)" {
		t.Errorf("Rename = %q", r)
	}
	// original unchanged
	if e.String() != "(a + b)" {
		t.Errorf("Rename mutated original: %q", e)
	}
}

func TestSize(t *testing.T) {
	e := Bin(Add, Bin(Mul, IntVar("a"), C(2)), C(3))
	if Size(e) != 5 {
		t.Errorf("Size = %d, want 5", Size(e))
	}
}

func TestEvalArith(t *testing.T) {
	env := Env{"x": IntValue(10), "y": IntValue(3)}
	tests := []struct {
		e    Expr
		want uint64
	}{
		{Bin(Add, IntVar("x"), IntVar("y")), 13},
		{Bin(Sub, IntVar("x"), IntVar("y")), 7},
		{Bin(Mul, IntVar("x"), IntVar("y")), 30},
		{Bin(SDiv, IntVar("x"), IntVar("y")), 3},
		{Bin(SRem, IntVar("x"), IntVar("y")), 1},
		{Bin(And, IntVar("x"), IntVar("y")), 2},
		{Bin(Or, IntVar("x"), IntVar("y")), 11},
		{Bin(Xor, IntVar("x"), IntVar("y")), 9},
		{Bin(Shl, IntVar("x"), IntVar("y")), 80},
		{Bin(LShr, IntVar("x"), C(1)), 5},
		{Bin(SLt, IntVar("y"), IntVar("x")), 1},
		{Bin(UGt, IntVar("x"), IntVar("y")), 1},
		{Bin(Eq, IntVar("x"), IntVar("x")), 1},
		{Un(Not, C(0)), ^uint64(0)},
		{Un(Neg, C(5)), uint64(1<<64 - 5)},
		{Un(BoolNot, C(0)), 1},
		{IteExpr{Cond: C(1), Then: C(7), Else: C(9)}, 7},
		{IteExpr{Cond: C(0), Then: C(7), Else: C(9)}, 9},
		{TruncExpr{Bits: 8, X: C(0x1FF)}, 0xFF},
		{SextExpr{Bits: 8, X: C(0x80)}, ^uint64(0x7F)},
	}
	for _, tt := range tests {
		got, err := Eval(tt.e, env)
		if err != nil {
			t.Fatalf("Eval(%s): %v", tt.e, err)
		}
		if got.Bits != tt.want {
			t.Errorf("Eval(%s) = %#x, want %#x", tt.e, got.Bits, tt.want)
		}
	}
}

func TestEvalDivTotalization(t *testing.T) {
	// SMT-LIB semantics: nonneg/0 = all-ones, neg/0 = 1, x%0 = x.
	got, _ := Eval(Bin(SDiv, C(5), C(0)), nil)
	if got.Bits != ^uint64(0) {
		t.Errorf("5/0 = %#x", got.Bits)
	}
	got, _ = Eval(Bin(SDiv, Un(Neg, C(5)), C(0)), nil)
	if got.Bits != 1 {
		t.Errorf("-5/0 = %#x", got.Bits)
	}
	got, _ = Eval(Bin(SRem, C(5), C(0)), nil)
	if got.Bits != 5 {
		t.Errorf("5%%0 = %#x", got.Bits)
	}
	// INT_MIN / -1 does not trap.
	intMin := uint64(1) << 63
	got, _ = Eval(Bin(SDiv, C(intMin), Un(Neg, C(1))), nil)
	if got.Bits != intMin {
		t.Errorf("INT_MIN/-1 = %#x", got.Bits)
	}
}

func TestEvalUnbound(t *testing.T) {
	if _, err := Eval(IntVar("nope"), Env{}); err == nil {
		t.Error("unbound variable not reported")
	}
}

func TestMemLoadStore(t *testing.T) {
	m := NewMem(42)
	m2 := m.Store(0x100, 8, 0x1122334455667788)
	if got := m2.Load(0x100, 8); got != 0x1122334455667788 {
		t.Errorf("load after store = %#x", got)
	}
	if got := m2.Load(0x104, 4); got != 0x11223344 {
		t.Errorf("partial load = %#x", got)
	}
	// Store is persistent: original memory unchanged.
	if m.Load(0x100, 8) == 0x1122334455667788 {
		t.Error("store mutated original memory")
	}
	// Same seed reads the same background.
	if NewMem(42).Load(0x500, 8) != NewMem(42).Load(0x500, 8) {
		t.Error("background not deterministic")
	}
	// Different seeds read different backgrounds (overwhelmingly).
	if NewMem(1).Load(0x500, 8) == NewMem(2).Load(0x500, 8) {
		t.Error("distinct seeds collided")
	}
}

func TestMemEquality(t *testing.T) {
	a := NewMem(7).Store(0x10, 4, 0xAABBCCDD)
	b := NewMem(7).Store(0x10, 4, 0xAABBCCDD)
	c := NewMem(7).Store(0x10, 4, 0xAABBCCDE)
	if !MemValue(a).Equal(MemValue(b)) {
		t.Error("identical memories not equal")
	}
	if MemValue(a).Equal(MemValue(c)) {
		t.Error("different memories equal")
	}
	// Eq operator over memory values.
	env := Env{"m1": MemValue(a), "m2": MemValue(b), "m3": MemValue(c)}
	got, err := Eval(Bin(Eq, IntVar("m1"), IntVar("m2")), env)
	if err != nil || got.Bits != 1 {
		t.Errorf("m1 == m2: %v %v", got.Bits, err)
	}
	got, _ = Eval(Bin(Ne, IntVar("m1"), IntVar("m3")), env)
	if got.Bits != 1 {
		t.Errorf("m1 != m3 = %v", got.Bits)
	}
	if _, err := Eval(Bin(Add, IntVar("m1"), IntVar("m2")), env); err == nil {
		t.Error("arithmetic on memory not rejected")
	}
}

func TestEvalLoadStoreExpr(t *testing.T) {
	env := Env{"mem": MemValue(NewMem(3)), "p": IntValue(0x1000)}
	st := StoreExpr{Mem: IntVar("mem"), Addr: IntVar("p"), Val: C(0xBEEF), W: 2}
	mv, err := Eval(st, env)
	if err != nil {
		t.Fatal(err)
	}
	env["mem2"] = mv
	ld, err := Eval(LoadExpr{Mem: IntVar("mem2"), Addr: IntVar("p"), W: 2}, env)
	if err != nil {
		t.Fatal(err)
	}
	if ld.Bits != 0xBEEF {
		t.Errorf("load = %#x", ld.Bits)
	}
}

func TestEvalCallDeterministic(t *testing.T) {
	env := Env{"a": IntValue(11), "b": IntValue(22)}
	call := CallExpr{Sym: "call/2", Args: []Expr{IntVar("a"), IntVar("b")}}
	v1, err := Eval(call, env)
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := Eval(call, env)
	if v1.Bits != v2.Bits {
		t.Error("uninterpreted call not deterministic")
	}
	// Different args give different results.
	other := CallExpr{Sym: "call/2", Args: []Expr{IntVar("b"), IntVar("a")}}
	v3, _ := Eval(other, env)
	if v3.Bits == v1.Bits {
		t.Error("arg order ignored by uninterpreted call")
	}
	// Different arity-class symbols differ.
	v4, _ := Eval(CallExpr{Sym: "call/1", Args: []Expr{IntVar("a")}}, env)
	if v4.Bits == v1.Bits {
		t.Error("symbol ignored by uninterpreted call")
	}
}

func TestEvalCallMem(t *testing.T) {
	env := Env{"a": IntValue(5)}
	v, err := Eval(CallExpr{Sym: "callmem/1", Args: []Expr{IntVar("a")}}, env)
	if err != nil {
		t.Fatal(err)
	}
	if v.M == nil {
		t.Fatal("callmem did not produce a memory value")
	}
	v2, _ := Eval(CallExpr{Sym: "callmem/1", Args: []Expr{IntVar("a")}}, env)
	if !v.Equal(v2) {
		t.Error("callmem not deterministic")
	}
}

func TestRunStmts(t *testing.T) {
	stmts := []Stmt{
		Assign(intv("v1"), Bin(Add, IntVar("x"), C(1))),
		Assign(intv("v2"), Bin(Mul, IntVar("v1"), C(2))),
		Assert(Bin(Eq, IntVar("v2"), C(22))),
		Assert(Bin(Eq, IntVar("v2"), C(23))),
	}
	env := Env{"x": IntValue(10)}
	failed := map[int]bool{}
	ok, err := RunStmts(stmts, env, failed)
	if err != nil || !ok {
		t.Fatalf("RunStmts: ok=%v err=%v", ok, err)
	}
	if failed[2] {
		t.Error("true assertion reported failed")
	}
	if !failed[3] {
		t.Error("false assertion not reported")
	}
}

func TestRunStmtsAssumeStops(t *testing.T) {
	stmts := []Stmt{
		Assume(C(0)),
		Assert(C(0)), // must not be reached
	}
	failed := map[int]bool{}
	ok, err := RunStmts(stmts, Env{}, failed)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("false assume did not stop execution")
	}
	if len(failed) != 0 {
		t.Error("assert after false assume was evaluated")
	}
}

// Property: trunc(sext(x)) at the same width is identity on the low bits.
func TestQuickTruncSext(t *testing.T) {
	f := func(x uint64) bool {
		for _, bits := range []uint{8, 16, 32} {
			e := TruncExpr{Bits: bits, X: SextExpr{Bits: bits, X: C(x)}}
			got, err := Eval(e, nil)
			if err != nil || got.Bits != x&((1<<bits)-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: memory store/load round-trips arbitrary values at arbitrary
// addresses and widths.
func TestQuickMemRoundTrip(t *testing.T) {
	f := func(seed, addr, val uint64, wsel uint8) bool {
		w := []uint{1, 2, 4, 8}[wsel%4]
		m := NewMem(seed).Store(addr, w, val)
		want := val
		if w < 8 {
			want &= (1 << (8 * w)) - 1
		}
		return m.Load(addr, w) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
