package ivl

import "fmt"

// Value is a runtime IVL value: a 64-bit bitvector or a memory state.
type Value struct {
	M    *MemVal // non-nil for Mem-typed values
	Bits uint64
}

// IntValue wraps a bitvector as a Value.
func IntValue(v uint64) Value { return Value{Bits: v} }

// MemVal is an immutable memory state: a deterministic pseudo-random
// background derived from Seed, plus a persistent chain of store nodes.
// Store is O(1); the value hash is maintained incrementally, so two
// memories are considered equal when they were built from equal
// backgrounds by the same store sequence (program order). Matched
// strands arising from the same source code perform their stores in the
// same order, so the incremental hash preserves the equalities the
// verifier needs; differently-ordered but extensionally-equal stores are
// conservatively considered different.
type MemVal struct {
	Seed   uint64
	parent *MemVal // nil at the background root
	addr   uint64
	w      uint
	val    uint64
	hash   uint64
}

// NewMem returns a fresh memory with the given background seed.
func NewMem(seed uint64) *MemVal {
	return &MemVal{Seed: seed, hash: mix64(seed)}
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed mixer used
// to give uninterpreted entities (memory backgrounds, call results)
// deterministic pseudo-random values.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MemValue wraps a memory as a Value.
func MemValue(m *MemVal) Value { return Value{M: m} }

// byteAt reads one byte of memory: the newest covering store wins.
func (m *MemVal) byteAt(addr uint64) byte {
	for n := m; n != nil; n = n.parent {
		if n.parent == nil {
			break
		}
		if addr >= n.addr && addr < n.addr+uint64(n.w) {
			return byte(n.val >> (8 * (addr - n.addr)))
		}
	}
	return byte(mix64(m.Seed ^ mix64(addr)))
}

// Load reads w bytes little-endian.
func (m *MemVal) Load(addr uint64, w uint) uint64 {
	var v uint64
	for i := uint(0); i < w; i++ {
		v |= uint64(m.byteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Store returns a new memory with the low w bytes of val written at addr.
// The receiver is not modified.
func (m *MemVal) Store(addr uint64, w uint, val uint64) *MemVal {
	if w < 8 {
		val &= (uint64(1) << (8 * w)) - 1
	}
	return &MemVal{
		Seed:   m.Seed,
		parent: m,
		addr:   addr,
		w:      w,
		val:    val,
		hash:   mix64(m.hash ^ mix64(addr)*3 ^ mix64(val) ^ uint64(w)),
	}
}

// Hash returns the value hash of the memory state.
func (m *MemVal) Hash() uint64 { return m.hash }

// Hash returns a value hash usable for grouping equal values.
func (v Value) Hash() uint64 {
	if v.M != nil {
		return v.M.Hash()
	}
	return v.Bits
}

// Equal reports whether two values are observably equal. Memories are
// equal when every address reads equal: same seed and compatible overlays.
func (v Value) Equal(o Value) bool {
	if (v.M != nil) != (o.M != nil) {
		return false
	}
	if v.M == nil {
		return v.Bits == o.Bits
	}
	return v.M.Hash() == o.M.Hash()
}

// Env is an evaluation environment mapping variable names to values.
type Env map[string]Value

// hashString folds a string into a seed.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func sext(v uint64, bits uint) uint64 {
	sh := 64 - bits
	return uint64(int64(v<<sh) >> sh)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Eval evaluates e under env. Unbound variables are an error; semantics
// of division by zero follow SMT-LIB totalization.
func Eval(e Expr, env Env) (Value, error) {
	switch t := e.(type) {
	case VarExpr:
		v, ok := env[t.V.Name]
		if !ok {
			return Value{}, fmt.Errorf("ivl: unbound variable %q", t.V.Name)
		}
		return v, nil
	case ConstExpr:
		return IntValue(t.Val), nil
	case UnExpr:
		x, err := Eval(t.X, env)
		if err != nil {
			return Value{}, err
		}
		switch t.Op {
		case Not:
			return IntValue(^x.Bits), nil
		case Neg:
			return IntValue(-x.Bits), nil
		case BoolNot:
			return IntValue(b2u(x.Bits == 0)), nil
		}
	case BinExpr:
		x, err := Eval(t.X, env)
		if err != nil {
			return Value{}, err
		}
		y, err := Eval(t.Y, env)
		if err != nil {
			return Value{}, err
		}
		if x.M != nil || y.M != nil {
			// Memory values support only (in)equality.
			switch t.Op {
			case Eq:
				return IntValue(b2u(x.Equal(y))), nil
			case Ne:
				return IntValue(b2u(!x.Equal(y))), nil
			default:
				return Value{}, fmt.Errorf("ivl: operator %s on memory value", t.Op)
			}
		}
		return IntValue(EvalBin(t.Op, x.Bits, y.Bits)), nil
	case IteExpr:
		c, err := Eval(t.Cond, env)
		if err != nil {
			return Value{}, err
		}
		if c.Bits != 0 {
			return Eval(t.Then, env)
		}
		return Eval(t.Else, env)
	case TruncExpr:
		x, err := Eval(t.X, env)
		if err != nil {
			return Value{}, err
		}
		if t.Bits >= 64 {
			return x, nil
		}
		return IntValue(x.Bits & ((1 << t.Bits) - 1)), nil
	case SextExpr:
		x, err := Eval(t.X, env)
		if err != nil {
			return Value{}, err
		}
		return IntValue(sext(x.Bits, t.Bits)), nil
	case LoadExpr:
		m, err := Eval(t.Mem, env)
		if err != nil {
			return Value{}, err
		}
		if m.M == nil {
			return Value{}, fmt.Errorf("ivl: load from non-memory value")
		}
		a, err := Eval(t.Addr, env)
		if err != nil {
			return Value{}, err
		}
		return IntValue(m.M.Load(a.Bits, t.W)), nil
	case StoreExpr:
		m, err := Eval(t.Mem, env)
		if err != nil {
			return Value{}, err
		}
		if m.M == nil {
			return Value{}, fmt.Errorf("ivl: store to non-memory value")
		}
		a, err := Eval(t.Addr, env)
		if err != nil {
			return Value{}, err
		}
		v, err := Eval(t.Val, env)
		if err != nil {
			return Value{}, err
		}
		return MemValue(m.M.Store(a.Bits, t.W, v.Bits)), nil
	case CallExpr:
		h := mix64(hashString(t.Sym))
		for _, arg := range t.Args {
			av, err := Eval(arg, env)
			if err != nil {
				return Value{}, err
			}
			h = mix64(h ^ av.Hash())
		}
		if len(t.Sym) > 7 && t.Sym[:7] == "callmem" {
			// Calls may modify memory: the post-call memory is a fresh
			// uninterpreted memory determined by the call's arguments.
			return MemValue(NewMem(h)), nil
		}
		return IntValue(h), nil
	}
	return Value{}, fmt.Errorf("ivl: cannot evaluate %T", e)
}

// EvalBin applies a binary operator to 64-bit operands with SMT-LIB
// totalization for division; comparisons yield 0 or 1.
func EvalBin(op BinOp, a, b uint64) uint64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case SDiv:
		if b == 0 {
			// SMT-LIB bvsdiv totalization.
			if int64(a) >= 0 {
				return ^uint64(0)
			}
			return 1
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return a
		}
		return uint64(int64(a) / int64(b))
	case SRem:
		if b == 0 {
			return a
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Shl:
		return a << (b & 63)
	case LShr:
		return a >> (b & 63)
	case AShr:
		return uint64(int64(a) >> (b & 63))
	case Eq:
		return b2u(a == b)
	case Ne:
		return b2u(a != b)
	case SLt:
		return b2u(int64(a) < int64(b))
	case SLe:
		return b2u(int64(a) <= int64(b))
	case SGt:
		return b2u(int64(a) > int64(b))
	case SGe:
		return b2u(int64(a) >= int64(b))
	case ULt:
		return b2u(a < b)
	case ULe:
		return b2u(a <= b)
	case UGt:
		return b2u(a > b)
	case UGe:
		return b2u(a >= b)
	}
	return 0
}

// RunStmts executes a straight-line statement list, extending env with
// each assignment. Assumes and asserts are evaluated: a false assume stops
// execution (returning false for feasible); assert failures are recorded
// in failed (by statement index) when failed is non-nil.
func RunStmts(stmts []Stmt, env Env, failed map[int]bool) (feasible bool, err error) {
	for i, s := range stmts {
		switch s.Kind {
		case SAssign:
			v, err := Eval(s.Rhs, env)
			if err != nil {
				return false, err
			}
			env[s.Dst.Name] = v
		case SAssume:
			v, err := Eval(s.Rhs, env)
			if err != nil {
				return false, err
			}
			if v.Bits == 0 {
				return false, nil
			}
		case SAssert:
			v, err := Eval(s.Rhs, env)
			if err != nil {
				return false, err
			}
			if v.Bits == 0 && failed != nil {
				failed[i] = true
			}
		}
	}
	return true, nil
}
