// Package ivl defines the intermediate verification language the Esh
// pipeline works over: a non-branching, SSA-form subset of a Boogie-like
// language. Assembly blocks are lifted into sequences of single-assignment
// statements over 64-bit bitvector variables, an explicit memory variable,
// and uninterpreted function applications for procedure calls.
//
// The package plays the role BoogieIVL plays in the paper: strands are
// extracted from IVL statement lists, and the verifier (package verifier)
// decides equivalence queries phrased as assume/assert IVL programs.
package ivl

import (
	"fmt"
	"strings"
)

// Type classifies IVL variables. All scalar values are 64-bit bitvectors;
// memory is a separate sort, as in the paper's lifted code.
type Type uint8

// Variable types.
const (
	Int Type = iota // 64-bit bitvector
	Mem             // byte-addressed memory array
)

func (t Type) String() string {
	if t == Mem {
		return "mem"
	}
	return "bv64"
}

// Var is an IVL variable. Names are unique within a procedure (SSA).
type Var struct {
	Name string
	Type Type
}

func (v Var) String() string { return v.Name }

// IsZero reports whether v is the zero Var.
func (v Var) IsZero() bool { return v.Name == "" }

// UnOp is a unary operator.
type UnOp uint8

// Unary operators.
const (
	Not UnOp = iota // bitwise complement
	Neg             // two's complement negation
	BoolNot
)

var unNames = map[UnOp]string{Not: "not", Neg: "neg", BoolNot: "!"}

func (o UnOp) String() string { return unNames[o] }

// BinOp is a binary operator. Comparison operators yield 0 or 1.
type BinOp uint8

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	SDiv
	SRem
	And
	Or
	Xor
	Shl
	LShr
	AShr
	Eq
	Ne
	SLt
	SLe
	SGt
	SGe
	ULt
	ULe
	UGt
	UGe
)

var binNames = map[BinOp]string{
	Add: "+", Sub: "-", Mul: "*", SDiv: "/s", SRem: "%s",
	And: "&", Or: "|", Xor: "^", Shl: "<<", LShr: ">>u", AShr: ">>s",
	Eq: "==", Ne: "!=", SLt: "<s", SLe: "<=s", SGt: ">s", SGe: ">=s",
	ULt: "<u", ULe: "<=u", UGt: ">u", UGe: ">=u",
}

func (o BinOp) String() string { return binNames[o] }

// IsCommutative reports whether x op y == y op x.
func (o BinOp) IsCommutative() bool {
	switch o {
	case Add, Mul, And, Or, Xor, Eq, Ne:
		return true
	}
	return false
}

// IsComparison reports whether the operator yields a 0/1 truth value.
func (o BinOp) IsComparison() bool { return o >= Eq }

// Expr is an IVL expression tree node.
type Expr interface {
	isExpr()
	String() string
}

// VarExpr references a variable.
type VarExpr struct{ V Var }

// ConstExpr is a 64-bit constant.
type ConstExpr struct{ Val uint64 }

// UnExpr applies a unary operator.
type UnExpr struct {
	Op UnOp
	X  Expr
}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   BinOp
	X, Y Expr
}

// IteExpr is if-then-else: Cond != 0 ? Then : Else.
type IteExpr struct{ Cond, Then, Else Expr }

// TruncExpr truncates to the low Bits bits (zero-extending back to 64).
type TruncExpr struct {
	Bits uint
	X    Expr
}

// SextExpr sign-extends the low Bits bits to 64.
type SextExpr struct {
	Bits uint
	X    Expr
}

// LoadExpr reads W bytes little-endian from memory at Addr.
type LoadExpr struct {
	Mem  Expr
	Addr Expr
	W    uint // bytes: 1, 2, 4, 8
}

// StoreExpr yields the memory resulting from writing the low W bytes of
// Val at Addr.
type StoreExpr struct {
	Mem  Expr
	Addr Expr
	Val  Expr
	W    uint
}

// CallExpr is an uninterpreted function application modelling the result
// of a procedure call. Sym is an arity-class symbol (call targets are
// unavailable in stripped binaries), e.g. "call/2" or "callmem/2".
type CallExpr struct {
	Sym  string
	Args []Expr
}

func (VarExpr) isExpr()   {}
func (ConstExpr) isExpr() {}
func (UnExpr) isExpr()    {}
func (BinExpr) isExpr()   {}
func (IteExpr) isExpr()   {}
func (TruncExpr) isExpr() {}
func (SextExpr) isExpr()  {}
func (LoadExpr) isExpr()  {}
func (StoreExpr) isExpr() {}
func (CallExpr) isExpr()  {}

func (e VarExpr) String() string   { return e.V.Name }
func (e ConstExpr) String() string { return fmt.Sprintf("%#x", e.Val) }
func (e UnExpr) String() string    { return fmt.Sprintf("%s(%s)", e.Op, e.X) }
func (e BinExpr) String() string   { return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y) }
func (e IteExpr) String() string   { return fmt.Sprintf("ite(%s, %s, %s)", e.Cond, e.Then, e.Else) }
func (e TruncExpr) String() string { return fmt.Sprintf("trunc%d(%s)", e.Bits, e.X) }
func (e SextExpr) String() string  { return fmt.Sprintf("sext%d(%s)", e.Bits, e.X) }
func (e LoadExpr) String() string  { return fmt.Sprintf("load%d(%s, %s)", e.W*8, e.Mem, e.Addr) }
func (e StoreExpr) String() string {
	return fmt.Sprintf("store%d(%s, %s, %s)", e.W*8, e.Mem, e.Addr, e.Val)
}
func (e CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Sym, strings.Join(parts, ", "))
}

// Convenience constructors.

// V wraps a Var as an expression.
func V(v Var) Expr { return VarExpr{V: v} }

// IntVar returns a bv64 variable expression named name.
func IntVar(name string) Expr { return VarExpr{V: Var{Name: name, Type: Int}} }

// C returns a constant expression.
func C(v uint64) Expr { return ConstExpr{Val: v} }

// Bin builds a binary expression.
func Bin(op BinOp, x, y Expr) Expr { return BinExpr{Op: op, X: x, Y: y} }

// Un builds a unary expression.
func Un(op UnOp, x Expr) Expr { return UnExpr{Op: op, X: x} }

// StmtKind discriminates statement variants.
type StmtKind uint8

// Statement kinds.
const (
	SAssign StmtKind = iota
	SAssume
	SAssert
)

// Stmt is an IVL statement: an SSA assignment, or an assume/assert of a
// condition expression.
type Stmt struct {
	Kind StmtKind
	Dst  Var  // SAssign target
	Rhs  Expr // SAssign right-hand side, or SAssume/SAssert condition
}

// Assign builds an assignment statement.
func Assign(dst Var, rhs Expr) Stmt { return Stmt{Kind: SAssign, Dst: dst, Rhs: rhs} }

// Assume builds an assumption statement.
func Assume(cond Expr) Stmt { return Stmt{Kind: SAssume, Rhs: cond} }

// Assert builds an assertion statement.
func Assert(cond Expr) Stmt { return Stmt{Kind: SAssert, Rhs: cond} }

func (s Stmt) String() string {
	switch s.Kind {
	case SAssume:
		return fmt.Sprintf("assume %s", s.Rhs)
	case SAssert:
		return fmt.Sprintf("assert %s", s.Rhs)
	default:
		return fmt.Sprintf("%s := %s", s.Dst, s.Rhs)
	}
}

// Proc is a straight-line IVL procedure (the non-branching Boogie subset
// the paper lifts into).
type Proc struct {
	Name  string
	Stmts []Stmt
}

func (p *Proc) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "procedure %s {\n", p.Name)
	for _, s := range p.Stmts {
		fmt.Fprintf(&b, "\t%s;\n", s)
	}
	b.WriteString("}\n")
	return b.String()
}

// FreeVars returns the variables referenced in e, in first-use order.
func FreeVars(e Expr) []Var {
	var out []Var
	seen := map[string]bool{}
	WalkVars(e, func(v Var) {
		if !seen[v.Name] {
			seen[v.Name] = true
			out = append(out, v)
		}
	})
	return out
}

// WalkVars calls fn for every variable reference in e (with repeats).
func WalkVars(e Expr, fn func(Var)) {
	switch t := e.(type) {
	case VarExpr:
		fn(t.V)
	case ConstExpr:
	case UnExpr:
		WalkVars(t.X, fn)
	case BinExpr:
		WalkVars(t.X, fn)
		WalkVars(t.Y, fn)
	case IteExpr:
		WalkVars(t.Cond, fn)
		WalkVars(t.Then, fn)
		WalkVars(t.Else, fn)
	case TruncExpr:
		WalkVars(t.X, fn)
	case SextExpr:
		WalkVars(t.X, fn)
	case LoadExpr:
		WalkVars(t.Mem, fn)
		WalkVars(t.Addr, fn)
	case StoreExpr:
		WalkVars(t.Mem, fn)
		WalkVars(t.Addr, fn)
		WalkVars(t.Val, fn)
	case CallExpr:
		for _, a := range t.Args {
			WalkVars(a, fn)
		}
	}
}

// Rename returns e with every variable renamed through fn.
func Rename(e Expr, fn func(Var) Var) Expr {
	switch t := e.(type) {
	case VarExpr:
		return VarExpr{V: fn(t.V)}
	case ConstExpr:
		return t
	case UnExpr:
		return UnExpr{Op: t.Op, X: Rename(t.X, fn)}
	case BinExpr:
		return BinExpr{Op: t.Op, X: Rename(t.X, fn), Y: Rename(t.Y, fn)}
	case IteExpr:
		return IteExpr{Cond: Rename(t.Cond, fn), Then: Rename(t.Then, fn), Else: Rename(t.Else, fn)}
	case TruncExpr:
		return TruncExpr{Bits: t.Bits, X: Rename(t.X, fn)}
	case SextExpr:
		return SextExpr{Bits: t.Bits, X: Rename(t.X, fn)}
	case LoadExpr:
		return LoadExpr{Mem: Rename(t.Mem, fn), Addr: Rename(t.Addr, fn), W: t.W}
	case StoreExpr:
		return StoreExpr{Mem: Rename(t.Mem, fn), Addr: Rename(t.Addr, fn), Val: Rename(t.Val, fn), W: t.W}
	case CallExpr:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = Rename(a, fn)
		}
		return CallExpr{Sym: t.Sym, Args: args}
	}
	return e
}

// Size returns the node count of the expression tree.
func Size(e Expr) int {
	n := 1
	switch t := e.(type) {
	case UnExpr:
		n += Size(t.X)
	case BinExpr:
		n += Size(t.X) + Size(t.Y)
	case IteExpr:
		n += Size(t.Cond) + Size(t.Then) + Size(t.Else)
	case TruncExpr:
		n += Size(t.X)
	case SextExpr:
		n += Size(t.X)
	case LoadExpr:
		n += Size(t.Mem) + Size(t.Addr)
	case StoreExpr:
		n += Size(t.Mem) + Size(t.Addr) + Size(t.Val)
	case CallExpr:
		for _, a := range t.Args {
			n += Size(a)
		}
	}
	return n
}
