package ivl

import "testing"

func TestParseExprRoundTrip(t *testing.T) {
	v := func(n string) Expr { return VarExpr{V: Var{Name: n, Type: Int}} }
	exprs := []Expr{
		ConstExpr{Val: 0},
		ConstExpr{Val: 0x2a},
		ConstExpr{Val: ^uint64(0)},
		v("rax_3"),
		v("stk_rbp_-8_64"),
		UnExpr{Op: Not, X: v("v1")},
		UnExpr{Op: Neg, X: v("v1")},
		UnExpr{Op: BoolNot, X: v("v1")},
		BinExpr{Op: Add, X: v("a"), Y: ConstExpr{Val: 0x20}},
		BinExpr{Op: SRem, X: v("a"), Y: v("b")},
		BinExpr{Op: AShr, X: BinExpr{Op: Sub, X: v("a"), Y: v("b")}, Y: ConstExpr{Val: 7}},
		IteExpr{Cond: BinExpr{Op: ULt, X: v("a"), Y: v("b")}, Then: v("a"), Else: ConstExpr{Val: 1}},
		TruncExpr{Bits: 32, X: v("v7")},
		SextExpr{Bits: 8, X: BinExpr{Op: And, X: v("a"), Y: ConstExpr{Val: 0xff}}},
		LoadExpr{Mem: v("mem_0"), Addr: BinExpr{Op: Add, X: v("rdi_0"), Y: ConstExpr{Val: 8}}, W: 4},
		StoreExpr{Mem: v("mem_1"), Addr: v("p"), Val: ConstExpr{Val: 0x7f}, W: 8},
		CallExpr{Sym: "call/2", Args: []Expr{v("rdi_0"), v("rsi_0")}},
		CallExpr{Sym: "callmem/1", Args: []Expr{v("rdi_0")}},
		CallExpr{Sym: "flags/-/lt/64", Args: []Expr{v("a"), v("b")}},
	}
	for _, e := range exprs {
		s := e.String()
		got, err := ParseExpr(s)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", s, err)
			continue
		}
		if got.String() != s {
			t.Errorf("round trip %q -> %q", s, got.String())
		}
	}
}

func TestParseExprCompareBinops(t *testing.T) {
	// Every binary operator name round-trips.
	for op := Add; op <= UGe; op++ {
		e := BinExpr{Op: op, X: IntVar("x"), Y: IntVar("y")}
		got, err := ParseExpr(e.String())
		if err != nil {
			t.Fatalf("op %v: %v", op, err)
		}
		if got.String() != e.String() {
			t.Fatalf("op %v: %q != %q", op, got.String(), e.String())
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"(a +",
		"(a ?? b)",
		"ite(a, b)",
		"not(a, b)",
		"0xzz",
		"(a + b) trailing",
		"load7(m, a)",
		"trunc32(a, b)",
	} {
		if _, err := ParseExpr(s); err == nil {
			t.Errorf("ParseExpr(%q): expected error", s)
		}
	}
}
