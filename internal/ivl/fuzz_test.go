package ivl

import (
	"strings"
	"testing"
)

// FuzzParseExpr asserts that the expression grammar is a fixed point
// under parse→print→reparse: for any input that parses at all, printing
// it and parsing the result must succeed and print identically. This is
// the invariant the snapshot index relies on to reload persisted
// strands (see internal/index), so a violation here is a data-loss bug.
// It also shakes out panics: the parser must reject arbitrary input
// (including deeply nested expressions) with an error, never a crash.
func FuzzParseExpr(f *testing.F) {
	seeds := []string{
		"(x + 0x2a)",
		"((a - b) * (a >>s 0x3))",
		"ite((a <u b), a, b)",
		"load64(m, (p + 0x8))",
		"store32(m1, p, trunc32(v))",
		"sext8(trunc8(x))",
		"call/2(x, y)",
		"callmem/3(m, x, y)",
		"not(neg(!(flag)))",
		"0x0",
		"0b101",
		"load999(m, p)",
		"((x == y) & (x != 0x0))",
		strings.Repeat("(", 600) + "x" + strings.Repeat(")", 600),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return // rejected without panicking: fine
		}
		printed := e.String()
		e2, err := ParseExpr(printed)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", printed, src, err)
		}
		if again := e2.String(); again != printed {
			t.Fatalf("print is not a parse fixed point:\n input: %q\n first: %q\nsecond: %q", src, printed, again)
		}
	})
}
