package ivl

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseExpr parses the textual rendering produced by Expr.String back
// into an expression tree. The grammar is exactly the String output:
//
//	(X op Y)             binary operators, space-separated
//	not(X) neg(X) !(X)   unary operators
//	ite(C, T, E)         if-then-else
//	trunc<b>(X)          truncation to b bits
//	sext<b>(X)           sign extension from b bits
//	load<b>(M, A)        b-bit load
//	store<b>(M, A, V)    b-bit store
//	sym(A, ...)          uninterpreted call (sym may contain '/')
//	0x2a, 0              64-bit constants
//	name                 variable reference
//
// Variable references parse with type Int; callers that know variable
// types (e.g. from a declared input list) should fix them up with Rename.
// It is the inverse used by the snapshot index to reload persisted
// strands, so round-tripping is guaranteed: for any expression e,
// ParseExpr(e.String()).String() == e.String().
func ParseExpr(s string) (Expr, error) {
	p := &exprParser{src: s}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("ivl: trailing input at %d in %q", p.pos, s)
	}
	return e, nil
}

var binOpByName = func() map[string]BinOp {
	m := make(map[string]BinOp, len(binNames))
	for op, name := range binNames {
		m[name] = op
	}
	return m
}()

// maxParseDepth bounds expression nesting so hostile input (e.g. a
// megabyte of open parens in a corrupted snapshot) fails with an error
// instead of exhausting the goroutine stack. Real lifted strands are
// nowhere near this deep.
const maxParseDepth = 512

type exprParser struct {
	src   string
	pos   int
	depth int
}

func (p *exprParser) ws() {
	for p.pos < len(p.src) && p.src[p.pos] == ' ' {
		p.pos++
	}
}

func (p *exprParser) errf(format string, args ...any) error {
	return fmt.Errorf("ivl: parse %q at %d: %s", p.src, p.pos, fmt.Sprintf(format, args...))
}

// token reads a run of characters up to a delimiter (space, paren, comma).
func (p *exprParser) token() string {
	start := p.pos
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '(', ')', ',':
			return p.src[start:p.pos]
		}
		p.pos++
	}
	return p.src[start:]
}

func (p *exprParser) expect(c byte) error {
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

// args parses "(" expr ("," expr)* ")".
func (p *exprParser) args() ([]Expr, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var out []Expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *exprParser) expr() (Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return nil, p.errf("expression nested deeper than %d", maxParseDepth)
	}
	p.ws()
	if p.pos >= len(p.src) {
		return nil, p.errf("unexpected end of input")
	}
	if p.src[p.pos] == '(' {
		// Binary: "(" X " " op " " Y ")".
		p.pos++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.ws()
		opName := p.token()
		op, ok := binOpByName[opName]
		if !ok {
			return nil, p.errf("unknown binary operator %q", opName)
		}
		y, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.ws()
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return BinExpr{Op: op, X: x, Y: y}, nil
	}

	tok := p.token()
	if tok == "" {
		return nil, p.errf("expected expression")
	}
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		return p.callForm(tok)
	}
	if tok[0] >= '0' && tok[0] <= '9' {
		v, err := strconv.ParseUint(tok, 0, 64)
		if err != nil {
			return nil, p.errf("bad constant %q: %v", tok, err)
		}
		return ConstExpr{Val: v}, nil
	}
	return VarExpr{V: Var{Name: tok, Type: Int}}, nil
}

// callForm dispatches "name(" forms: unary operators, ite, width-suffixed
// builtins, and uninterpreted calls.
func (p *exprParser) callForm(name string) (Expr, error) {
	args, err := p.args()
	if err != nil {
		return nil, err
	}
	arity := func(n int) error {
		if len(args) != n {
			return p.errf("%s expects %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "not", "neg", "!":
		if err := arity(1); err != nil {
			return nil, err
		}
		op := map[string]UnOp{"not": Not, "neg": Neg, "!": BoolNot}[name]
		return UnExpr{Op: op, X: args[0]}, nil
	case "ite":
		if err := arity(3); err != nil {
			return nil, err
		}
		return IteExpr{Cond: args[0], Then: args[1], Else: args[2]}, nil
	}
	for _, b := range [...]struct {
		prefix string
		arity  int
	}{{"trunc", 1}, {"sext", 1}, {"load", 2}, {"store", 3}} {
		suffix, ok := strings.CutPrefix(name, b.prefix)
		if !ok || suffix == "" {
			continue
		}
		bits, err := strconv.Atoi(suffix)
		if err != nil || bits <= 0 {
			continue // e.g. a call symbol that happens to start with "load"
		}
		if err := arity(b.arity); err != nil {
			return nil, err
		}
		switch b.prefix {
		case "trunc":
			return TruncExpr{Bits: uint(bits), X: args[0]}, nil
		case "sext":
			return SextExpr{Bits: uint(bits), X: args[0]}, nil
		case "load":
			if bits%8 != 0 {
				return nil, p.errf("load width %d is not a multiple of 8", bits)
			}
			return LoadExpr{Mem: args[0], Addr: args[1], W: uint(bits / 8)}, nil
		default:
			if bits%8 != 0 {
				return nil, p.errf("store width %d is not a multiple of 8", bits)
			}
			return StoreExpr{Mem: args[0], Addr: args[1], Val: args[2], W: uint(bits / 8)}, nil
		}
	}
	return CallExpr{Sym: name, Args: args}, nil
}
