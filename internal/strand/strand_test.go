package strand

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/ivl"
	"repro/internal/lift"
)

func iv(name string) ivl.Var { return ivl.Var{Name: name, Type: ivl.Int} }

// block builds a lift.Block from assignments with explicit inputs.
func block(inputs []string, stmts ...ivl.Stmt) *lift.Block {
	b := &lift.Block{Stmts: stmts}
	for _, n := range inputs {
		b.Inputs = append(b.Inputs, iv(n))
	}
	return b
}

func TestFromBlockSingleChain(t *testing.T) {
	// v1 = x + 1; v2 = v1 * 2 : one strand containing both.
	b := block([]string{"x"},
		ivl.Assign(iv("v1"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.C(1))),
		ivl.Assign(iv("v2"), ivl.Bin(ivl.Mul, ivl.IntVar("v1"), ivl.C(2))),
	)
	strands := FromBlock("p", b)
	if len(strands) != 1 {
		t.Fatalf("strands = %d, want 1", len(strands))
	}
	s := strands[0]
	if s.NumVars() != 2 {
		t.Errorf("NumVars = %d, want 2", s.NumVars())
	}
	if len(s.Inputs) != 1 || s.Inputs[0].Name != "x" {
		t.Errorf("Inputs = %v", s.Inputs)
	}
}

func TestFromBlockTwoIndependentChains(t *testing.T) {
	// Two independent computations yield two strands.
	b := block([]string{"x", "y"},
		ivl.Assign(iv("v1"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.C(1))),
		ivl.Assign(iv("v2"), ivl.Bin(ivl.Mul, ivl.IntVar("y"), ivl.C(2))),
	)
	strands := FromBlock("p", b)
	if len(strands) != 2 {
		t.Fatalf("strands = %d, want 2", len(strands))
	}
	// Backward order: the LAST unused statement seeds the first strand.
	if strands[0].Stmts[0].Dst.Name != "v2" {
		t.Errorf("first strand seeds %q, want v2", strands[0].Stmts[0].Dst.Name)
	}
	if strands[1].Stmts[0].Dst.Name != "v1" {
		t.Errorf("second strand seeds %q, want v1", strands[1].Stmts[0].Dst.Name)
	}
}

func TestFromBlockSharedPrefix(t *testing.T) {
	// v1 = x+1; v2 = v1*2; v3 = v1*3
	// Strand 1 (seeded by v3) pulls in v1; strand 2 (seeded by v2, the
	// last remaining unused) pulls in v1 again.
	b := block([]string{"x"},
		ivl.Assign(iv("v1"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.C(1))),
		ivl.Assign(iv("v2"), ivl.Bin(ivl.Mul, ivl.IntVar("v1"), ivl.C(2))),
		ivl.Assign(iv("v3"), ivl.Bin(ivl.Mul, ivl.IntVar("v1"), ivl.C(3))),
	)
	strands := FromBlock("p", b)
	if len(strands) != 2 {
		t.Fatalf("strands = %d, want 2", len(strands))
	}
	if strands[0].NumVars() != 2 { // v1, v3
		t.Errorf("strand0 vars = %d, want 2", strands[0].NumVars())
	}
	if strands[1].NumVars() != 2 { // v1, v2
		t.Errorf("strand1 vars = %d, want 2", strands[1].NumVars())
	}
}

func TestFromBlockCoverage(t *testing.T) {
	// Every statement appears in at least one strand.
	b := block([]string{"x", "y", "m"},
		ivl.Assign(iv("v1"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.IntVar("y"))),
		ivl.Assign(iv("v2"), ivl.LoadExpr{Mem: ivl.IntVar("m"), Addr: ivl.IntVar("v1"), W: 8}),
		ivl.Assign(iv("v3"), ivl.Bin(ivl.Xor, ivl.IntVar("x"), ivl.C(0xFF))),
		ivl.Assign(iv("v4"), ivl.Bin(ivl.Sub, ivl.IntVar("v3"), ivl.IntVar("y"))),
	)
	strands := FromBlock("p", b)
	covered := map[string]bool{}
	for _, s := range strands {
		for _, st := range s.Stmts {
			covered[st.Dst.Name] = true
		}
	}
	for _, want := range []string{"v1", "v2", "v3", "v4"} {
		if !covered[want] {
			t.Errorf("statement defining %s not covered", want)
		}
	}
}

func TestStrandStmtsInExecutionOrder(t *testing.T) {
	b := block([]string{"x"},
		ivl.Assign(iv("a"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.C(1))),
		ivl.Assign(iv("b"), ivl.Bin(ivl.Add, ivl.IntVar("a"), ivl.C(2))),
		ivl.Assign(iv("c"), ivl.Bin(ivl.Add, ivl.IntVar("b"), ivl.C(3))),
	)
	s := FromBlock("p", b)[0]
	want := []string{"a", "b", "c"}
	for i, st := range s.Stmts {
		if st.Dst.Name != want[i] {
			t.Fatalf("stmt %d defines %q, want %q", i, st.Dst.Name, want[i])
		}
	}
}

func TestFromBlockEmpty(t *testing.T) {
	if got := FromBlock("p", &lift.Block{}); got != nil {
		t.Errorf("FromBlock(empty) = %v", got)
	}
}

func TestCanonicalKeyAlphaInvariant(t *testing.T) {
	a := &Strand{
		Inputs: []ivl.Var{iv("x")},
		Stmts: []ivl.Stmt{
			ivl.Assign(iv("v1"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.C(1))),
			ivl.Assign(iv("v2"), ivl.Bin(ivl.Mul, ivl.IntVar("v1"), ivl.C(2))),
		},
	}
	b := &Strand{
		Inputs: []ivl.Var{iv("rdi_0")},
		Stmts: []ivl.Stmt{
			ivl.Assign(iv("t9"), ivl.Bin(ivl.Add, ivl.IntVar("rdi_0"), ivl.C(1))),
			ivl.Assign(iv("t11"), ivl.Bin(ivl.Mul, ivl.IntVar("t9"), ivl.C(2))),
		},
	}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("alpha-equivalent strands have different keys:\n%s\n%s",
			a.CanonicalKey(), b.CanonicalKey())
	}
	c := &Strand{
		Inputs: []ivl.Var{iv("x")},
		Stmts: []ivl.Stmt{
			ivl.Assign(iv("v1"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.C(2))), // different const
			ivl.Assign(iv("v2"), ivl.Bin(ivl.Mul, ivl.IntVar("v1"), ivl.C(2))),
		},
	}
	if a.CanonicalKey() == c.CanonicalKey() {
		t.Error("different strands share a canonical key")
	}
}

func TestFromProcEndToEnd(t *testing.T) {
	src := `proc f
	mov rax, rdi
	add rax, rsi
	test rax, rax
	jne big
	mov rax, 1
	ret
big:
	shl rax, 2
	ret
endp`
	p, err := asm.ParseProc(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lift.LiftProc(g)
	if err != nil {
		t.Fatal(err)
	}
	strands := FromProc(lp)
	if len(strands) == 0 {
		t.Fatal("no strands extracted")
	}
	// Each strand's referenced-but-not-defined variables are exactly its inputs.
	for _, s := range strands {
		defined := map[string]bool{}
		for _, st := range s.Stmts {
			defined[st.Dst.Name] = true
		}
		inputSet := map[string]bool{}
		for _, in := range s.Inputs {
			inputSet[in.Name] = true
		}
		for _, st := range s.Stmts {
			for _, v := range ivl.FreeVars(st.Rhs) {
				if !defined[v.Name] && !inputSet[v.Name] {
					t.Errorf("strand var %q neither defined nor input:\n%s", v.Name, s)
				}
			}
		}
	}
}

// TestMinimality: the paper notes backward iteration minimizes strand
// count. A chain a->b->c must give exactly one strand, not three.
func TestMinimality(t *testing.T) {
	b := block([]string{"x"},
		ivl.Assign(iv("a"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.C(1))),
		ivl.Assign(iv("b"), ivl.Bin(ivl.Add, ivl.IntVar("a"), ivl.C(1))),
		ivl.Assign(iv("c"), ivl.Bin(ivl.Add, ivl.IntVar("b"), ivl.C(1))),
	)
	if got := len(FromBlock("p", b)); got != 1 {
		t.Errorf("chain produced %d strands, want 1", got)
	}
}
