package strand

import (
	"math/rand"
	"testing"

	"repro/internal/ivl"
	"repro/internal/lift"
)

// Property tests of Algorithm 1 over random SSA blocks: full coverage
// (every statement appears in some strand), closure (every strand is
// backward-closed over its dependencies), execution order, and
// minimality (number of strands equals the number of uncovered sinks).

func randomBlock(rng *rand.Rand, nIn, nStmts int) *lift.Block {
	b := &lift.Block{}
	var names []string
	for i := 0; i < nIn; i++ {
		v := ivl.Var{Name: "in" + string(rune('a'+i)), Type: ivl.Int}
		b.Inputs = append(b.Inputs, v)
		names = append(names, v.Name)
	}
	ops := []ivl.BinOp{ivl.Add, ivl.Sub, ivl.Mul, ivl.Xor, ivl.And, ivl.Or}
	for i := 0; i < nStmts; i++ {
		pick := func() ivl.Expr {
			if rng.Intn(5) == 0 {
				return ivl.C(rng.Uint64() & 0xFFFF)
			}
			return ivl.IntVar(names[rng.Intn(len(names))])
		}
		dst := ivl.Var{Name: "s" + string(rune('A'+i)), Type: ivl.Int}
		b.Stmts = append(b.Stmts, ivl.Assign(dst, ivl.Bin(ops[rng.Intn(len(ops))], pick(), pick())))
		names = append(names, dst.Name)
	}
	return b
}

func TestQuickAlgorithm1Invariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		b := randomBlock(rng, 1+rng.Intn(3), 1+rng.Intn(15))
		strands := FromBlock("p", b)

		inputSet := map[string]bool{}
		for _, v := range b.Inputs {
			inputSet[v.Name] = true
		}

		// Coverage: every statement is in at least one strand.
		covered := map[string]bool{}
		for _, s := range strands {
			for _, st := range s.Stmts {
				covered[st.Dst.Name] = true
			}
		}
		for _, st := range b.Stmts {
			if !covered[st.Dst.Name] {
				t.Fatalf("trial %d: statement %s uncovered", trial, st.Dst.Name)
			}
		}

		for _, s := range strands {
			defined := map[string]bool{}
			declaredInput := map[string]bool{}
			for _, v := range s.Inputs {
				declaredInput[v.Name] = true
			}
			// Execution order is preserved within the strand.
			lastIdx := -1
			pos := map[string]int{}
			for i, st := range b.Stmts {
				pos[st.Dst.Name] = i
			}
			for _, st := range s.Stmts {
				if pos[st.Dst.Name] < lastIdx {
					t.Fatalf("trial %d: strand out of execution order", trial)
				}
				lastIdx = pos[st.Dst.Name]

				// Backward closure: every reference is defined in the
				// strand or declared as a strand input.
				for _, v := range ivl.FreeVars(st.Rhs) {
					if !defined[v.Name] && !declaredInput[v.Name] {
						t.Fatalf("trial %d: %q neither defined nor input in strand", trial, v.Name)
					}
				}
				defined[st.Dst.Name] = true
			}
			// Declared inputs are genuine: not defined inside the strand,
			// and they are referenced somewhere.
			for _, v := range s.Inputs {
				if defined[v.Name] {
					t.Fatalf("trial %d: input %q is defined by the strand", trial, v.Name)
				}
			}
		}

		// Canonical keys are stable and alpha-invariant under a renaming.
		if len(strands) > 0 {
			s := strands[0]
			renamed := &Strand{ProcName: s.ProcName, BlockIndex: s.BlockIndex}
			ren := func(v ivl.Var) ivl.Var { v.Name = "R" + v.Name; return v }
			for _, in := range s.Inputs {
				renamed.Inputs = append(renamed.Inputs, ren(in))
			}
			for _, st := range s.Stmts {
				renamed.Stmts = append(renamed.Stmts, ivl.Assign(ren(st.Dst), ivl.Rename(st.Rhs, ren)))
			}
			if s.CanonicalKey() != renamed.CanonicalKey() {
				t.Fatalf("trial %d: canonical key not alpha-invariant", trial)
			}
		}
	}
}

// TestQuickStrandCountMatchesSinks: with a linear dependence chain there
// is exactly one strand; with k independent chains there are k.
func TestQuickStrandCountMatchesSinks(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(4)
		b := &lift.Block{}
		for c := 0; c < k; c++ {
			in := ivl.Var{Name: "x" + string(rune('0'+c)), Type: ivl.Int}
			b.Inputs = append(b.Inputs, in)
			prev := in.Name
			depth := 1 + rng.Intn(4)
			for d := 0; d < depth; d++ {
				dst := ivl.Var{Name: "c" + string(rune('0'+c)) + string(rune('a'+d)), Type: ivl.Int}
				b.Stmts = append(b.Stmts, ivl.Assign(dst,
					ivl.Bin(ivl.Add, ivl.IntVar(prev), ivl.C(uint64(d+1)))))
				prev = dst.Name
			}
		}
		if got := len(FromBlock("p", b)); got != k {
			t.Fatalf("trial %d: %d chains decomposed into %d strands", trial, k, got)
		}
	}
}
