// Package strand implements the paper's procedure decomposition
// (Algorithm 1): each basic block is sliced backwards at variable
// granularity into strands — the partial dependence chains that are the
// unit of semantic comparison. Strands contain only data dependencies;
// values flowing in over block boundaries are the strand's inputs.
package strand

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ivl"
	"repro/internal/lift"
)

// Strand is a basic-block slice: an ordered subsequence of a block's IVL
// statements computing one or more of its variables, together with the
// inputs the computation needs.
type Strand struct {
	ProcName   string
	BlockIndex int
	Stmts      []ivl.Stmt
	Inputs     []ivl.Var
}

// NumVars returns the number of non-input variables the strand defines —
// the denominator of the VCP measure.
func (s *Strand) NumVars() int { return len(s.Stmts) }

// Vars returns the variables defined by the strand, in definition order.
func (s *Strand) Vars() []ivl.Var {
	out := make([]ivl.Var, 0, len(s.Stmts))
	for _, st := range s.Stmts {
		out = append(out, st.Dst)
	}
	return out
}

// String renders the strand with its inputs.
func (s *Strand) String() string {
	var b strings.Builder
	names := make([]string, len(s.Inputs))
	for i, v := range s.Inputs {
		names[i] = v.Name
	}
	fmt.Fprintf(&b, "strand %s/B%d inputs(%s)\n", s.ProcName, s.BlockIndex, strings.Join(names, ", "))
	for _, st := range s.Stmts {
		fmt.Fprintf(&b, "\t%s\n", st)
	}
	return b.String()
}

// FromBlock decomposes one lifted block into strands following the
// paper's Algorithm 1: repeatedly take the last instruction not yet used
// in any strand and slice backwards, collecting every earlier statement
// that defines a variable the slice references.
func FromBlock(procName string, b *lift.Block) []*Strand {
	n := len(b.Stmts)
	if n == 0 {
		return nil
	}
	blockInput := make(map[string]bool, len(b.Inputs))
	for _, v := range b.Inputs {
		blockInput[v.Name] = true
	}

	used := make([]bool, n)
	remaining := n
	var strands []*Strand

	for remaining > 0 {
		// maxUsed: the last not-yet-used statement.
		maxIdx := -1
		for i := n - 1; i >= 0; i-- {
			if !used[i] {
				maxIdx = i
				break
			}
		}
		used[maxIdx] = true
		remaining--

		take := make([]bool, n)
		take[maxIdx] = true
		varsRefed := make(map[string]ivl.Var)
		varsDefed := map[string]bool{}
		addRefs(b.Stmts[maxIdx].Rhs, varsRefed)
		varsDefed[b.Stmts[maxIdx].Dst.Name] = true

		for i := maxIdx - 1; i >= 0; i-- {
			st := b.Stmts[i]
			if _, needed := varsRefed[st.Dst.Name]; !needed {
				continue
			}
			take[i] = true
			addRefs(st.Rhs, varsRefed)
			varsDefed[st.Dst.Name] = true
			if !used[i] {
				used[i] = true
				remaining--
			}
		}

		s := &Strand{ProcName: procName, BlockIndex: b.Index}
		for i := 0; i < n; i++ {
			if take[i] {
				s.Stmts = append(s.Stmts, b.Stmts[i])
			}
		}
		// Inputs: referenced but not defined inside the strand. These are
		// necessarily block inputs (SSA within the block).
		var inputNames []string
		for name := range varsRefed {
			if !varsDefed[name] {
				inputNames = append(inputNames, name)
			}
		}
		sort.Strings(inputNames)
		for _, name := range inputNames {
			v := varsRefed[name]
			if !blockInput[name] {
				// A strand referencing a mid-block variable it does not
				// define would break SSA slicing; treat it as an input
				// anyway (it is a severed data dependence).
				_ = v
			}
			s.Inputs = append(s.Inputs, v)
		}
		strands = append(strands, s)
	}
	return strands
}

func addRefs(e ivl.Expr, refs map[string]ivl.Var) {
	ivl.WalkVars(e, func(v ivl.Var) {
		if _, ok := refs[v.Name]; !ok {
			refs[v.Name] = v
		}
	})
}

// FromProc decomposes every block of a lifted procedure.
func FromProc(p *lift.Proc) []*Strand {
	var out []*Strand
	for _, b := range p.Blocks {
		out = append(out, FromBlock(p.Name, b)...)
	}
	return out
}

// CanonicalKey returns an alpha-renaming-invariant structural key for the
// strand: variables are numbered in order of first appearance, so two
// strands that differ only in variable names share a key. Used for strand
// deduplication and verifier-result caching.
func (s *Strand) CanonicalKey() string {
	names := map[string]string{}
	next := 0
	canon := func(v ivl.Var) ivl.Var {
		n, ok := names[v.Name]
		if !ok {
			n = fmt.Sprintf("x%d", next)
			next++
			names[v.Name] = n
		}
		return ivl.Var{Name: n, Type: v.Type}
	}
	var b strings.Builder
	for _, in := range s.Inputs {
		b.WriteString(canon(in).Name)
		b.WriteByte(':')
		b.WriteString(in.Type.String())
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, st := range s.Stmts {
		rhs := ivl.Rename(st.Rhs, canon)
		b.WriteString(canon(st.Dst).Name)
		b.WriteByte('=')
		b.WriteString(rhs.String())
		b.WriteByte(';')
	}
	return b.String()
}
