// Package sketch implements a MinHash/LSH prefilter over strand
// features, the syntactic first stage the binary-similarity literature
// places in front of expensive semantic comparison (GitZ-style
// statistical prefiltering; see PAPERS.md). A strand is summarized once
// at index time into a short MinHash signature over cheap syntactic
// features — operator bag, input/variable counts, constant set, and
// expression-tree shape shingles — and signatures are bucketed with
// banded locality-sensitive hashing.
//
// The candidate rule has a sound core and an optional heuristic tier.
//
// Sound core: VCP requires a type-preserving injective correspondence
// that is total on the first strand's inputs, so VCP(a, b) is exactly 0
// whenever a's typed input counts cannot inject into b's. A pair that
// is dead in both directions contributes exactly zero to every score
// and is skipped outright — rankings stay byte-identical to the
// exhaustive loop by construction. (The engine additionally uses the
// same test per direction to avoid the dead half of a live pair's two
// verifier calls.)
//
// Heuristic tier (off by default, Config.MinContainment > 0): a live
// pair is additionally required to share a band bucket (the classic
// symmetric-Jaccard LSH test) or to clear an estimated feature
// containment. Containment rather than plain Jaccard because VCP is
// asymmetric: a small strand embedded in a larger one scores high VCP
// while its feature Jaccard stays low; the estimate divides the
// Jaccard-derived intersection by the smaller set size. Strand pairs
// where either side has a tiny feature set are always candidates: their
// sketches are too noisy to trust and their VCP is cheap anyway. The
// heuristic tier trades a small, measured recall loss (see the
// differential harness in internal/core) for a larger skip rate, so it
// is opt-in.
//
// Everything skipped here is rejected before the §5.5 size-ratio window
// even runs.
//
// Everything here is deterministic: the same strand always produces the
// same signature (fixed seeds, no map-iteration dependence), so
// signatures can be persisted in index snapshots and recomputed at load
// time interchangeably.
package sketch

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ivl"
	"repro/internal/strand"
)

// Defaults shape the signature (Bands×Rows hash functions) and the
// heuristic tier. The banding puts the LSH S-curve threshold near
// Jaccard 0.3; SuggestedMinContainment was calibrated with the
// ground-truth sweep in internal/core (RUN_GEOM_SWEEP): nearly every
// pair with true VCP >= 0.5 has feature containment >= 0.5, so gating
// at 0.45 leaves headroom for MinHash estimation noise.
const (
	DefaultBands = 24
	DefaultRows  = 3
	// SuggestedMinContainment is the calibrated setting for the
	// opt-in heuristic tier. It is intentionally NOT the default:
	// MinContainment = 0 keeps the prefilter sound (rankings
	// byte-identical to the exhaustive loop).
	SuggestedMinContainment = 0.45
	// SmallSetFeatures is the feature-set size at or under which a
	// strand's sketch is considered too noisy to gate on: pairs where
	// either side is this small always pass the heuristic tier.
	SmallSetFeatures = 12
)

// Config shapes the MinHash signature, its LSH banding, and the
// heuristic tier of the candidate rule.
type Config struct {
	// Bands is the number of LSH bands (0 selects DefaultBands).
	Bands int
	// Rows is the number of signature rows per band (0 selects
	// DefaultRows). The signature length is Bands*Rows.
	Rows int
	// MinContainment, when > 0, enables the heuristic tier: a live
	// pair with no band collision and an estimated feature containment
	// below this level is not a candidate. 0 (the default) keeps the
	// prefilter sound — only provably-zero pairs are skipped.
	MinContainment float64
}

// Normalized fills in zero fields with the defaults. MinContainment is
// left alone: zero is a meaningful setting (heuristic tier off).
func (c Config) Normalized() Config {
	if c.Bands <= 0 {
		c.Bands = DefaultBands
	}
	if c.Rows <= 0 {
		c.Rows = DefaultRows
	}
	return c
}

// Len returns the signature length Bands*Rows.
func (c Config) Len() int {
	c = c.Normalized()
	return c.Bands * c.Rows
}

// Signature is a MinHash signature: one minimum per hash function.
type Signature []uint32

// splitmix64 is the SplitMix64 finalizer: a fast, well-mixed 64-bit
// permutation used both to derive per-function seeds and as the hash
// family itself.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// multCap bounds the multiplicity encoding of bag features: the k-th
// occurrence of an operator is its own set element up to this many, so
// the set representation still reflects operator counts without letting
// one hot loop dominate the signature.
const multCap = 8

// Features returns the strand's feature set as 64-bit hashes. The set
// is deterministic and sorted; it underlies both the MinHash signature
// and (directly) tests. Feature classes:
//
//   - counts: number of inputs, log2-bucketed number of defined
//     variables ("nin:3", "nv:2")
//   - operator bag: every operator/builtin occurrence with multiplicity
//     up to multCap ("n:+#2", "n:load#1")
//   - constant set: every distinct constant value ("c:0x2a")
//   - shape shingles: one-level subtree shapes, child operators sorted
//     under commutative parents ("t:+(load,var)"), plus per-statement
//     root tokens with multiplicity ("r:store#1")
func Features(s *strand.Strand) []uint64 {
	set := map[string]bool{}
	set["nin:"+strconv.Itoa(len(s.Inputs))] = true
	set["nv:"+strconv.Itoa(log2bucket(len(s.Stmts)))] = true

	opCount := map[string]int{}
	rootCount := map[string]int{}
	addBag := func(m map[string]int, prefix, tok string) {
		m[tok]++
		if n := m[tok]; n <= multCap {
			set[prefix+tok+"#"+strconv.Itoa(n)] = true
		}
	}
	var walk func(e ivl.Expr)
	walk = func(e ivl.Expr) {
		tok, children, commutative := describe(e)
		if c, ok := e.(ivl.ConstExpr); ok {
			set["c:"+strconv.FormatUint(c.Val, 16)] = true
		}
		if tok != "var" && tok != "const" {
			addBag(opCount, "n:", tok)
		}
		if len(children) > 0 {
			parts := make([]string, len(children))
			for i, ch := range children {
				parts[i], _, _ = describe(ch)
			}
			if commutative {
				sort.Strings(parts)
			}
			set["t:"+tok+"("+strings.Join(parts, ",")+")"] = true
		}
		for _, ch := range children {
			walk(ch)
		}
	}
	for _, st := range s.Stmts {
		tok, _, _ := describe(st.Rhs)
		addBag(rootCount, "r:", tok)
		walk(st.Rhs)
	}

	out := make([]uint64, 0, len(set))
	for f := range set {
		out = append(out, hashString(f))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// describe returns a node's operator token, its children, and whether
// child order is insignificant.
func describe(e ivl.Expr) (tok string, children []ivl.Expr, commutative bool) {
	switch t := e.(type) {
	case ivl.VarExpr:
		return "var", nil, false
	case ivl.ConstExpr:
		return "const", nil, false
	case ivl.UnExpr:
		return "u" + t.Op.String(), []ivl.Expr{t.X}, false
	case ivl.BinExpr:
		return t.Op.String(), []ivl.Expr{t.X, t.Y}, t.Op.IsCommutative()
	case ivl.IteExpr:
		return "ite", []ivl.Expr{t.Cond, t.Then, t.Else}, false
	case ivl.TruncExpr:
		return "trunc" + strconv.Itoa(int(t.Bits)), []ivl.Expr{t.X}, false
	case ivl.SextExpr:
		return "sext" + strconv.Itoa(int(t.Bits)), []ivl.Expr{t.X}, false
	case ivl.LoadExpr:
		return "load", []ivl.Expr{t.Mem, t.Addr}, false
	case ivl.StoreExpr:
		return "store", []ivl.Expr{t.Mem, t.Addr, t.Val}, false
	case ivl.CallExpr:
		return t.Sym, t.Args, false
	}
	return "?", nil, false
}

func log2bucket(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Compute returns the strand's MinHash signature under cfg. It is a
// pure function of the strand's statements and inputs: two strands with
// equal feature sets share a signature. An empty strand (no statements)
// yields the all-max signature.
func Compute(s *strand.Strand, cfg Config) Signature {
	return FromFeatures(Features(s), cfg)
}

// Summary is everything the candidate rule knows about one strand: its
// MinHash signature, its feature-set size (for the containment
// estimate), and its typed input counts (for the sound injectability
// test).
type Summary struct {
	Sig   Signature
	NFeat int
	NInt  int // inputs of bitvector type
	NMem  int // inputs of memory type
}

// Summarize builds the strand's candidate-rule summary under cfg.
func Summarize(s *strand.Strand, cfg Config) Summary {
	feats := Features(s)
	return FromFeatureSet(s, feats, cfg)
}

// FromFeatureSet assembles a Summary from an already-extracted feature
// set, optionally adopting a persisted signature: when sig is non-nil
// and the right length it is used as-is instead of re-MinHashing (the
// snapshot-restore path).
func FromFeatureSet(s *strand.Strand, feats []uint64, cfg Config) Summary {
	return adoptSignature(s, feats, nil, cfg)
}

// AdoptSignature is FromFeatureSet with a persisted signature.
func AdoptSignature(s *strand.Strand, sig Signature, cfg Config) Summary {
	return adoptSignature(s, Features(s), sig, cfg)
}

func adoptSignature(s *strand.Strand, feats []uint64, sig Signature, cfg Config) Summary {
	if len(sig) != cfg.Len() {
		sig = FromFeatures(feats, cfg)
	}
	sum := Summary{Sig: sig, NFeat: len(feats)}
	for _, v := range s.Inputs {
		if v.Type == ivl.Mem {
			sum.NMem++
		} else {
			sum.NInt++
		}
	}
	return sum
}

// Injects reports whether a's typed inputs can inject into b's — the
// necessary condition for VCP(a, b) > 0: the correspondence γ must be
// injective, type-preserving, and total on a's inputs. When it fails,
// VCP(a, b) is exactly 0 and the verifier call can be skipped with no
// effect on any score.
func (a Summary) Injects(b Summary) bool {
	return a.NInt <= b.NInt && a.NMem <= b.NMem
}

// FromFeatures builds the MinHash signature of an explicit feature set.
func FromFeatures(feats []uint64, cfg Config) Signature {
	k := cfg.Len()
	sig := make(Signature, k)
	for i := range sig {
		sig[i] = math.MaxUint32
	}
	seeds := make([]uint64, k)
	for i := range seeds {
		seeds[i] = splitmix64(0x657368736b746368 + uint64(i)) // "eshsktch"
	}
	for _, f := range feats {
		for i := 0; i < k; i++ {
			if v := uint32(splitmix64(f^seeds[i]) >> 32); v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// Index is a banded LSH index over strand summaries, plus the flat
// summary table the injectability and containment tests scan. Strands
// are added with sequential ids (0, 1, 2, ...) matching their position
// in the engine's unique-strand table. Add is not safe for concurrent
// use; Candidates is safe concurrently with other Candidates calls once
// building is done.
type Index struct {
	cfg   Config
	bands []map[uint64][]int32
	sums  []Summary
}

// NewIndex returns an empty index with cfg's banding.
func NewIndex(cfg Config) *Index {
	cfg = cfg.Normalized()
	ix := &Index{cfg: cfg, bands: make([]map[uint64][]int32, cfg.Bands)}
	for b := range ix.bands {
		ix.bands[b] = map[uint64][]int32{}
	}
	return ix
}

// Config returns the index's banding configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Len returns the number of summaries added.
func (ix *Index) Len() int { return len(ix.sums) }

// Summary returns the id-th strand's summary.
func (ix *Index) Summary(id int) Summary { return ix.sums[id] }

// bandKey hashes one band's rows of the signature. It delegates to the
// shared bandKeyFor so the scan-mode index and the retrieval table
// always bucket identically.
func (ix *Index) bandKey(sig Signature, b int) uint64 {
	return bandKeyFor(sig, ix.cfg.Rows, b)
}

// Add inserts the next strand's summary; ids are assigned sequentially.
// It returns the id.
func (ix *Index) Add(sum Summary) int {
	if len(sum.Sig) != ix.cfg.Len() {
		panic(fmt.Sprintf("sketch: signature length %d does not match config %dx%d",
			len(sum.Sig), ix.cfg.Bands, ix.cfg.Rows))
	}
	id := int32(len(ix.sums))
	ix.sums = append(ix.sums, sum)
	for b := range ix.bands {
		key := ix.bandKey(sum.Sig, b)
		ix.bands[b][key] = append(ix.bands[b][key], id)
	}
	return int(id)
}

// Candidates marks every indexed strand that is a verifier candidate
// for the strand summarized by sum (mark[id] = true; len(mark) must be
// at least Len()) and returns the number of candidates marked. A pair
// that is injectability-dead in both directions is never a candidate
// (its VCP is exactly 0 both ways). With the heuristic tier enabled
// (cfg.MinContainment > 0), a live pair must additionally collide in a
// band, clear the containment estimate, or involve a tiny feature set.
func (ix *Index) Candidates(sum Summary, mark []bool) int {
	if len(sum.Sig) != ix.cfg.Len() {
		panic(fmt.Sprintf("sketch: signature length %d does not match config %dx%d",
			len(sum.Sig), ix.cfg.Bands, ix.cfg.Rows))
	}
	var banded []bool
	if ix.cfg.MinContainment > 0 {
		banded = make([]bool, len(ix.sums))
		for b := range ix.bands {
			for _, id := range ix.bands[b][ix.bandKey(sum.Sig, b)] {
				banded[id] = true
			}
		}
	}
	qSmall := sum.NFeat <= SmallSetFeatures
	count := 0
	for id, ts := range ix.sums {
		if !sum.Injects(ts) && !ts.Injects(sum) {
			continue // provably zero in both directions
		}
		if banded != nil && !banded[id] && !qSmall && ts.NFeat > SmallSetFeatures &&
			estContainment(sum.Sig, ts.Sig, sum.NFeat, ts.NFeat) < ix.cfg.MinContainment {
			continue
		}
		if !mark[id] {
			mark[id] = true
			count++
		}
	}
	return count
}

// estContainment estimates |A∩B| / min(|A|,|B|) of the two underlying
// feature sets from the signature agreement rate. The agreement rate of
// two MinHash signatures is an unbiased estimate of the Jaccard J =
// |A∩B| / |A∪B|; with the exact set sizes stored alongside, the
// intersection follows as J/(1+J)·(|A|+|B|), and dividing by the
// smaller set turns the symmetric estimate into the asymmetric overlap
// the VCP loop actually cares about.
func estContainment(a, b Signature, na, nb int) float64 {
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	if eq == len(a) {
		return 1
	}
	min := na
	if nb < min {
		min = nb
	}
	if min <= 0 {
		return 0
	}
	j := float64(eq) / float64(len(a))
	return j / (1 + j) * float64(na+nb) / float64(min)
}
