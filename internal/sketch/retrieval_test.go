package sketch

import (
	"reflect"
	"testing"
)

// synthSummaries derives a deterministic summary set from a byte
// string: every 4 bytes become one strand's typed input counts and a
// small synthetic feature set. Shared by the unit tests and the fuzz
// target so corpus entries shrink meaningfully.
func synthSummaries(data []byte, cfg Config) []Summary {
	cfg = cfg.Normalized()
	var sums []Summary
	for i := 0; i+4 <= len(data) && len(sums) < 64; i += 4 {
		nInt := int(data[i] % 5)
		nMem := int(data[i+1] % 3)
		nf := int(data[i+2]%29) + 1
		seed := splitmix64(uint64(data[i+3]) + 1)
		feats := make([]uint64, nf)
		for k := range feats {
			seed = splitmix64(seed)
			feats[k] = seed
		}
		sums = append(sums, Summary{
			Sig:   FromFeatures(feats, cfg),
			NFeat: nf,
			NInt:  nInt,
			NMem:  nMem,
		})
	}
	return sums
}

// soundSet is the reference sound candidate rule: every strand whose
// typed counts inject into the query's or vice versa.
func soundSet(rx *RetrievalIndex, sums []Summary, q Summary) map[int32]bool {
	set := map[int32]bool{}
	for id := range sums {
		if q.Injects(sums[id]) || sums[id].Injects(q) {
			set[int32(id)] = true
		}
	}
	return set
}

func checkProbe(t *testing.T, rx *RetrievalIndex, sums []Summary, self int) {
	t.Helper()
	q := sums[self]
	scratch := make([]bool, rx.Len())
	ids, sound := rx.Probe(q, scratch, nil)

	for _, v := range scratch {
		if v {
			t.Fatal("Probe left scratch dirty")
		}
	}
	want := soundSet(rx, sums, q)
	if sound != len(want) {
		t.Fatalf("Probe reports %d sound candidates, brute force finds %d", sound, len(want))
	}
	seen := map[int32]bool{}
	for i, id := range ids {
		if id < 0 || int(id) >= rx.Len() {
			t.Fatalf("candidate id %d out of range [0,%d)", id, rx.Len())
		}
		if i > 0 && ids[i-1] >= id {
			t.Fatal("candidate ids are not sorted and unique")
		}
		if !want[id] {
			t.Fatalf("candidate %d is not injectability-live against the query", id)
		}
		seen[id] = true
	}
	if !seen[int32(self)] {
		t.Fatalf("strand %d does not retrieve itself", self)
	}
	if rx.Config().MinContainment <= 0 {
		// Sound tier: the set must be exactly the brute-force live set.
		if len(seen) != len(want) {
			t.Fatalf("sound probe returned %d candidates, brute force finds %d", len(seen), len(want))
		}
		return
	}
	// Heuristic tier: a live strand sharing any band bucket with the
	// query must be retrieved, and nothing that shares no bucket may be.
	collides := func(id int32) bool {
		for b := 0; b < rx.Config().Bands; b++ {
			if bandKeyFor(q.Sig, rx.Config().Rows, b) == bandKeyFor(sums[id].Sig, rx.Config().Rows, b) {
				return true
			}
		}
		return false
	}
	for id := range want {
		if seen[id] != collides(id) {
			t.Fatalf("live strand %d: retrieved=%v collides=%v", id, seen[id], collides(id))
		}
	}
}

func checkRoundTrip(t *testing.T, rx *RetrievalIndex, sums []Summary) {
	t.Helper()
	tab := rx.Table()
	rt, err := FromTable(tab, sums, rx.Config())
	if err != nil {
		t.Fatalf("FromTable rejected the table Table() produced: %v", err)
	}
	if rt.Checksum() != rx.Checksum() {
		t.Fatalf("round-tripped checksum %016x, built %016x", rt.Checksum(), rx.Checksum())
	}
	scratch := make([]bool, rx.Len())
	for id := range sums {
		a, as := rx.Probe(sums[id], scratch, nil)
		b, bs := rt.Probe(sums[id], scratch, nil)
		if as != bs || !reflect.DeepEqual(a, b) {
			t.Fatalf("strand %d probes differently through the adopted table", id)
		}
	}
}

func fuzzConfigs() []Config {
	return []Config{
		{Bands: 4, Rows: 2},
		{Bands: 4, Rows: 2, MinContainment: SuggestedMinContainment},
		{Bands: 6, Rows: 3, MinContainment: 0.2},
	}
}

// FuzzRetrieval asserts the probe-table invariants for arbitrary
// summary sets: deterministic builds, self-retrieval, sorted unique
// live candidate sets, exact agreement with the brute-force sound rule
// at sound settings, the no-missed-collision guarantee at heuristic
// settings, a clean scratch buffer after every probe, and
// Table→FromTable round-trips that preserve checksum and probe results.
func FuzzRetrieval(f *testing.F) {
	f.Add([]byte{1, 0, 20, 7, 2, 1, 3, 9, 1, 0, 20, 7})
	f.Add([]byte{0, 0, 1, 1})
	f.Add([]byte{4, 2, 28, 255, 4, 2, 28, 255, 0, 1, 14, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			return // bound build cost, not a correctness limit
		}
		for _, cfg := range fuzzConfigs() {
			sums := synthSummaries(data, cfg)
			if len(sums) == 0 {
				return
			}
			rx := BuildRetrieval(sums, cfg)
			if again := BuildRetrieval(sums, cfg); again.Checksum() != rx.Checksum() {
				t.Fatal("BuildRetrieval is not deterministic")
			}
			for id := range sums {
				checkProbe(t, rx, sums, id)
			}
			checkRoundTrip(t, rx, sums)
		}
	})
}

func TestRetrievalProbeMatchesCandidates(t *testing.T) {
	// The sound probe must mark exactly what Index.Candidates marks at
	// sound settings, for the same summaries in the same order.
	cfg := Config{Bands: 4, Rows: 2}
	data := []byte{
		1, 0, 20, 7, 2, 1, 3, 9, 1, 0, 20, 8, 0, 0, 1, 1,
		3, 2, 25, 77, 1, 1, 9, 4, 2, 0, 17, 5, 4, 1, 28, 6,
	}
	sums := synthSummaries(data, cfg)
	rx := BuildRetrieval(sums, cfg)
	ix := NewIndex(cfg)
	for _, s := range sums {
		ix.Add(s)
	}
	scratch := make([]bool, len(sums))
	for qi, q := range sums {
		ids, _ := rx.Probe(q, scratch, nil)
		mark := make([]bool, len(sums))
		ix.Candidates(q, mark)
		probed := make([]bool, len(sums))
		for _, id := range ids {
			probed[id] = true
		}
		if !reflect.DeepEqual(probed, mark) {
			t.Errorf("query %d: probe set diverges from Candidates at sound settings", qi)
		}
	}
}

func TestFromTableRejectsCorruption(t *testing.T) {
	cfg := Config{Bands: 4, Rows: 2}
	sums := synthSummaries([]byte{1, 0, 20, 7, 2, 1, 3, 9, 1, 0, 18, 8, 3, 1, 22, 2}, cfg)
	rx := BuildRetrieval(sums, cfg)
	base := rx.Table()

	clone := func() RetrievalTable {
		t := base
		t.BandDir = append([]int32(nil), base.BandDir...)
		t.BandKeys = append([]uint64(nil), base.BandKeys...)
		t.BandOffs = append([]int32(nil), base.BandOffs...)
		t.BandIDs = append([]int32(nil), base.BandIDs...)
		return t
	}

	if _, err := FromTable(clone(), sums, cfg); err != nil {
		t.Fatalf("pristine table rejected: %v", err)
	}
	cases := map[string]func(*RetrievalTable){
		"banding mismatch":  func(tb *RetrievalTable) { tb.Bands = 8 },
		"strand count":      func(tb *RetrievalTable) { tb.N++ },
		"truncated dir":     func(tb *RetrievalTable) { tb.BandDir = tb.BandDir[:len(tb.BandDir)-1] },
		"id out of range":   func(tb *RetrievalTable) { tb.BandIDs[0] = int32(tb.N) },
		"flipped id":        func(tb *RetrievalTable) { tb.BandIDs[0], tb.BandIDs[1] = tb.BandIDs[1], tb.BandIDs[0] },
		"stale checksum":    func(tb *RetrievalTable) { tb.Checksum ^= 1 },
		"missing sentinel":  func(tb *RetrievalTable) { tb.BandOffs = tb.BandOffs[:len(tb.BandOffs)-1] },
		"unsorted bandkeys": func(tb *RetrievalTable) { tb.BandKeys[0], tb.BandKeys[1] = tb.BandKeys[1], tb.BandKeys[0] },
	}
	for name, corrupt := range cases {
		tb := clone()
		corrupt(&tb)
		if _, err := FromTable(tb, sums, cfg); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

// TestProbeDelta pins the delta-overlay contract: a table built over a
// prefix of the corpus, probed and then extended with ProbeDelta over
// the full summary slice, must return exactly the sound set a table
// over the whole corpus would (minus zero-count tombstone remnants),
// sorted and duplicate-free.
func TestProbeDelta(t *testing.T) {
	cfg := Config{}.Normalized()
	data := []byte("probe-delta-corpus-material-0123456789abcdefghijklmnop")
	sums := synthSummaries(data, cfg)
	if len(sums) < 8 {
		t.Fatalf("synth corpus too small: %d", len(sums))
	}
	built := len(sums) - 3 // last 3 strands arrive after the build
	rx := BuildRetrieval(sums[:built], cfg)
	counts := make([]int, len(sums))
	for i := range counts {
		counts[i] = 1
	}
	counts[built+1] = 0 // a tombstoned delta strand

	for self := range sums {
		q := sums[self]
		scratch := make([]bool, rx.Len())
		ids, sound := rx.Probe(q, scratch, nil)
		ids, deltaSound := rx.ProbeDelta(q, sums, counts, ids)

		want := map[int32]bool{}
		for id := range sums {
			if counts[id] == 0 {
				continue
			}
			if q.Injects(sums[id]) || sums[id].Injects(q) {
				want[int32(id)] = true
			}
		}
		// The table covers [0,built) exhaustively at sound settings and
		// the overlay covers [built,len) minus zero counts.
		got := map[int32]bool{}
		for i, id := range ids {
			if i > 0 && ids[i-1] >= id {
				t.Fatalf("query %d: ids not sorted/unique at %d: %v", self, i, ids)
			}
			got[id] = true
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: overlaid candidates = %v, want %v", self, ids, want)
		}
		_ = sound
		if deltaSound > 3 {
			t.Fatalf("query %d: %d delta sound candidates from a 3-strand delta", self, deltaSound)
		}
	}

	if rx.Stale(len(sums), 3) {
		t.Fatal("delta of 3 with maxDelta 3 reported stale")
	}
	if !rx.Stale(len(sums), 2) {
		t.Fatal("delta of 3 with maxDelta 2 not reported stale")
	}
	if rx.Stale(len(sums), -1) {
		t.Fatal("negative maxDelta must never report stale")
	}
}
