package sketch

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/ivl"
	"repro/internal/strand"
)

// strandFromText builds a strand from ';'-separated IVL expression
// texts: each parseable chunk becomes one SSA assignment v0, v1, ...;
// free variables not defined earlier become strand inputs. It returns
// nil when no chunk parses.
func strandFromText(src string) *strand.Strand {
	s := &strand.Strand{ProcName: "fuzz"}
	defined := map[string]bool{}
	inputs := map[string]bool{}
	for _, chunk := range strings.Split(src, ";") {
		e, err := ivl.ParseExpr(chunk)
		if err != nil {
			continue
		}
		ivl.WalkVars(e, func(v ivl.Var) {
			if !defined[v.Name] && !inputs[v.Name] {
				inputs[v.Name] = true
				s.Inputs = append(s.Inputs, v)
			}
		})
		dst := ivl.Var{Name: "v" + strconv.Itoa(len(s.Stmts)), Type: ivl.Int}
		s.Stmts = append(s.Stmts, ivl.Assign(dst, e))
		defined[dst.Name] = true
	}
	if len(s.Stmts) == 0 {
		return nil
	}
	return s
}

// FuzzSketch asserts the sketch invariants the prefilter depends on for
// any valid strand: Compute is deterministic, the signature is exactly
// Bands*Rows long with no panics, Features is deterministic and
// strictly sorted, and a strand added to an index is always a candidate
// of its own signature (self-recall — without it, identical strands
// could be prefiltered away).
func FuzzSketch(f *testing.F) {
	f.Add("(a + b)")
	f.Add("(x * 0x21); (v0 ^ (v0 >>u 0x7)); load64(m, (p + 0x8))")
	f.Add("ite((a <u b), a, b); store32(m, p, trunc32(v1))")
	f.Add("call/2(x, y); sext8(trunc8(v0)); not(v1)")
	f.Add("0x0")
	f.Add(";;;")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return // bound feature-walk cost, not a correctness limit
		}
		s := strandFromText(src)
		if s == nil {
			return
		}
		for _, cfg := range []Config{{}, {Bands: 4, Rows: 2}} {
			sig := Compute(s, cfg)
			if len(sig) != cfg.Len() {
				t.Fatalf("signature length %d, want %d", len(sig), cfg.Len())
			}
			if again := Compute(s, cfg); !reflect.DeepEqual(sig, again) {
				t.Fatal("Compute is not deterministic")
			}
			feats := Features(s)
			for i := 1; i < len(feats); i++ {
				if feats[i-1] >= feats[i] {
					t.Fatal("features not strictly sorted")
				}
			}
			sum := FromFeatureSet(s, feats, cfg)
			if !reflect.DeepEqual(sum.Sig, sig) {
				t.Fatal("FromFeatureSet signature diverges from Compute")
			}
			if !sum.Injects(sum) {
				t.Fatal("summary does not inject into itself")
			}
			ix := NewIndex(cfg)
			id := ix.Add(sum)
			mark := make([]bool, ix.Len())
			if ix.Candidates(sum, mark); !mark[id] {
				t.Fatal("strand is not a candidate of its own summary")
			}
		}
	})
}
