// Retrieval index: the LSH sketches promoted from a per-pair prefilter
// to a top-level ANN structure probed at query time. Where Index walks
// every indexed summary and asks "is this pair a candidate?", the
// RetrievalIndex inverts the loop: posting lists keyed by typed-input
// class and by LSH band bucket are built once over all target strands,
// and a query strand probes them for its candidate set without touching
// the rest of the corpus.
//
// The probe rule mirrors the candidate rule's two tiers:
//
// Sound tier (MinContainment == 0): candidates are exactly the strands
// whose typed input counts inject into the query's or vice versa — the
// union of the live typed-input classes. Typed counts partition strands
// into few classes (one per distinct (ints, mems) pair), so the probe
// enumerates classes, not strands, and returns the same set Candidates
// would mark: rankings stay byte-identical to the exhaustive loop.
//
// Heuristic tier (MinContainment > 0): candidates are exactly the
// strands sharing at least one band bucket with the query, filtered to
// the injectability-live set. This is a strict subset of the scan-mode
// heuristic rule, which additionally rescues non-colliding pairs via
// the containment estimate and always-passes small-feature-set strands
// on either side. None of those escapes has a sublinear analogue —
// each is a per-target decision that needs the full scan, so keeping
// any of them would make the candidate set grow linearly with the
// corpus and defeat the probe. An identical target strand still always
// self-retrieves — identical signatures collide in every band — and
// the resulting recall gap is pinned by the differential harness.
//
// All posting lists live in flat slabs ([]int32 id runs addressed by
// offset) rather than per-bucket map slices: the table is immutable
// after build, cheap to persist, and probe touches contiguous memory.
package sketch

import (
	"fmt"
	"sort"
)

// retrClass is one typed-input class: the strands whose inputs are
// exactly nInt bitvectors and nMem memories. Posting lists are disjoint
// across classes (each strand has one typed-count pair).
type retrClass struct {
	nInt, nMem int32
	off, n     int32 // posting run classIDs[off : off+n]
}

// RetrievalIndex is an immutable probe table over strand summaries.
// Build it with BuildRetrieval (or adopt a persisted table with
// FromTable); Probe is safe for concurrent use.
type RetrievalIndex struct {
	cfg Config
	n   int

	// Sound tier: typed-input classes, sorted by (nInt, nMem), with
	// one flat id slab.
	classes  []retrClass
	classIDs []int32

	// Heuristic tier: per-band sorted bucket directories over one flat
	// id slab. Band b's buckets are bandKeys[bandDir[b]:bandDir[b+1]]
	// (sorted, unique); bucket i's posting run is
	// bandIDs[bandOffs[i]:bandOffs[i+1]] (bandOffs has a final
	// sentinel).
	bandDir  []int32
	bandKeys []uint64
	bandOffs []int32
	bandIDs  []int32

	// small lists the strands the scan-mode heuristic would always pass
	// (NFeat <= SmallSetFeatures). The probe does NOT consult it — an
	// always-pass list is a linear floor on candidate-set growth — but
	// its size is surfaced through Stats as a recall-gap indicator.
	small []int32

	// Typed counts and feature-set sizes in SoA form for the probe's
	// liveness filter.
	nInt, nMem, nFeat []int32

	checksum uint64
}

// bandKeyFor hashes one band's rows of a signature. Shared with
// Index.bandKey so the scan-mode index and the retrieval table always
// bucket identically.
func bandKeyFor(sig Signature, rows, b int) uint64 {
	h := uint64(14695981039346656037) ^ uint64(b)<<32
	for _, v := range sig[b*rows : (b+1)*rows] {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// BuildRetrieval constructs the probe table over sums under cfg. It is
// deterministic: the same summaries in the same order always produce
// the same table (and checksum), which is what lets a persisted table
// and a load-time rebuild be used interchangeably.
func BuildRetrieval(sums []Summary, cfg Config) *RetrievalIndex {
	cfg = cfg.Normalized()
	k := cfg.Len()
	rx := &RetrievalIndex{
		cfg:   cfg,
		n:     len(sums),
		nInt:  make([]int32, len(sums)),
		nMem:  make([]int32, len(sums)),
		nFeat: make([]int32, len(sums)),
	}
	for id, s := range sums {
		if len(s.Sig) != k {
			panic(fmt.Sprintf("sketch: signature length %d does not match config %dx%d",
				len(s.Sig), cfg.Bands, cfg.Rows))
		}
		rx.nInt[id] = int32(s.NInt)
		rx.nMem[id] = int32(s.NMem)
		rx.nFeat[id] = int32(s.NFeat)
		if s.NFeat <= SmallSetFeatures {
			rx.small = append(rx.small, int32(id))
		}
	}

	rx.rebuildClasses()

	// Band buckets: sort (key, id) pairs per band, then cut runs into
	// the shared slab.
	type pair struct {
		key uint64
		id  int32
	}
	pairs := make([]pair, len(sums))
	rx.bandDir = make([]int32, cfg.Bands+1)
	rx.bandIDs = make([]int32, 0, len(sums)*cfg.Bands)
	for b := 0; b < cfg.Bands; b++ {
		for id, s := range sums {
			pairs[id] = pair{key: bandKeyFor(s.Sig, cfg.Rows, b), id: int32(id)}
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].key != pairs[j].key {
				return pairs[i].key < pairs[j].key
			}
			return pairs[i].id < pairs[j].id
		})
		for i := 0; i < len(pairs); {
			j := i
			for j < len(pairs) && pairs[j].key == pairs[i].key {
				j++
			}
			rx.bandKeys = append(rx.bandKeys, pairs[i].key)
			rx.bandOffs = append(rx.bandOffs, int32(len(rx.bandIDs)))
			for ; i < j; i++ {
				rx.bandIDs = append(rx.bandIDs, pairs[i].id)
			}
		}
		rx.bandDir[b+1] = int32(len(rx.bandKeys))
	}
	rx.bandOffs = append(rx.bandOffs, int32(len(rx.bandIDs))) // sentinel
	rx.checksum = rx.computeChecksum()
	return rx
}

// Len returns the number of indexed strands.
func (rx *RetrievalIndex) Len() int { return rx.n }

// Stale reports whether the table has fallen too far behind a corpus
// that now holds total strands. The table is immutable — live writes
// cannot batch-append into its sorted slabs — so the engine overlays
// written-since-build strands onto every probe (ProbeDelta) and
// rebuilds the table once the overlay exceeds maxDelta strands, the
// point where per-probe overlay work starts to erode the table's
// sublinearity. maxDelta < 0 means never (the overlay runs until
// compaction rebuilds the table anyway).
func (rx *RetrievalIndex) Stale(total, maxDelta int) bool {
	return maxDelta >= 0 && total-rx.n > maxDelta
}

// ProbeDelta extends a Probe result with the delta overlay: strands
// with ids in [Len(), len(sums)) — written live after the table was
// built; the corpus arrays are append-only within a generation — are
// tested by the same typed-input injectability criterion the sound
// tier stores, skipping ids whose counts entry is zero (tombstoned
// remnants). ids must be a Probe result over this table, so the
// returned slice stays sorted and duplicate-free (all delta ids are
// larger than any table id). Returns the extended ids and the number
// of sound candidates appended. The overlay is a superset guarantee
// for the heuristic tier (every delta strand passes, band-collision
// untested) and exact for the sound tier, so sound-tier rankings stay
// bit-identical to a scan.
func (rx *RetrievalIndex) ProbeDelta(sum Summary, sums []Summary, counts []int, ids []int32) ([]int32, int) {
	sound := 0
	for j := rx.n; j < len(sums); j++ {
		if counts[j] == 0 {
			continue
		}
		if sum.Injects(sums[j]) || sums[j].Injects(sum) {
			ids = append(ids, int32(j))
			sound++
		}
	}
	return ids, sound
}

// Config returns the banding configuration the table was built under.
func (rx *RetrievalIndex) Config() Config { return rx.cfg }

// Checksum returns the table checksum (a pure function of the band
// structures and dimensions).
func (rx *RetrievalIndex) Checksum() uint64 { return rx.checksum }

func (rx *RetrievalIndex) computeChecksum() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
		h = splitmix64(h)
	}
	mix(uint64(rx.n))
	mix(uint64(rx.cfg.Bands))
	mix(uint64(rx.cfg.Rows))
	for _, v := range rx.bandDir {
		mix(uint64(uint32(v)))
	}
	for _, v := range rx.bandKeys {
		mix(v)
	}
	for _, v := range rx.bandOffs {
		mix(uint64(uint32(v)))
	}
	for _, v := range rx.bandIDs {
		mix(uint64(uint32(v)))
	}
	return h
}

func (rx *RetrievalIndex) live(sum Summary, id int32) bool {
	ti, tm := rx.nInt[id], rx.nMem[id]
	return (int32(sum.NInt) <= ti && int32(sum.NMem) <= tm) ||
		(ti <= int32(sum.NInt) && tm <= int32(sum.NMem))
}

// Probe appends the candidate ids for the query strand summarized by
// sum to out and returns the (sorted, duplicate-free) result along with
// the size of the sound candidate set — the injectability-live strand
// count, which the heuristic tier's result is a subset of (the ratio is
// the engine's recall proxy). scratch must be at least Len() long and
// all-false; it is restored to all-false before returning. At sound
// settings (MinContainment == 0) the returned set is exactly the set
// Candidates would mark.
func (rx *RetrievalIndex) Probe(sum Summary, scratch []bool, out []int32) (ids []int32, sound int) {
	if len(sum.Sig) != rx.cfg.Len() {
		panic(fmt.Sprintf("sketch: signature length %d does not match config %dx%d",
			len(sum.Sig), rx.cfg.Bands, rx.cfg.Rows))
	}
	qi, qm := int32(sum.NInt), int32(sum.NMem)
	liveClass := func(c retrClass) bool {
		return (qi <= c.nInt && qm <= c.nMem) || (c.nInt <= qi && c.nMem <= qm)
	}
	for _, c := range rx.classes {
		if liveClass(c) {
			sound += int(c.n)
		}
	}
	// Sound tier: the union of live class runs IS the candidate set.
	// Class runs are disjoint, so no dedup is needed.
	if rx.cfg.MinContainment <= 0 {
		for _, c := range rx.classes {
			if liveClass(c) {
				out = append(out, rx.classIDs[c.off:c.off+c.n]...)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, sound
	}
	// Heuristic tier: band-bucket collisions, deduplicated through
	// scratch and filtered to the live set.
	start := len(out)
	collect := func(id int32) {
		if !scratch[id] {
			scratch[id] = true
			if rx.live(sum, id) {
				out = append(out, id)
			}
		}
	}
	for b := 0; b < rx.cfg.Bands; b++ {
		key := bandKeyFor(sum.Sig, rx.cfg.Rows, b)
		lo, hi := rx.bandDir[b], rx.bandDir[b+1]
		keys := rx.bandKeys[lo:hi]
		i := sort.Search(len(keys), func(i int) bool { return keys[i] >= key })
		if i == len(keys) || keys[i] != key {
			continue
		}
		bi := int(lo) + i
		for _, id := range rx.bandIDs[rx.bandOffs[bi]:rx.bandOffs[bi+1]] {
			collect(id)
		}
	}
	// Un-mark everything touched: live hits are in out, the dead ones
	// must be rediscovered by re-walking the same buckets. Cheaper than
	// clearing all of scratch when candidate sets are small.
	for b := 0; b < rx.cfg.Bands; b++ {
		key := bandKeyFor(sum.Sig, rx.cfg.Rows, b)
		lo, hi := rx.bandDir[b], rx.bandDir[b+1]
		keys := rx.bandKeys[lo:hi]
		i := sort.Search(len(keys), func(i int) bool { return keys[i] >= key })
		if i == len(keys) || keys[i] != key {
			continue
		}
		bi := int(lo) + i
		for _, id := range rx.bandIDs[rx.bandOffs[bi]:rx.bandOffs[bi+1]] {
			scratch[id] = false
		}
	}
	cands := out[start:]
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	return out, sound
}

// RetrievalStats summarizes the table's shape for operators: degenerate
// banding (one giant bucket) shows up as posting-list skew long before
// it shows up as query latency.
type RetrievalStats struct {
	Strands     int
	Bands       int
	Rows        int
	Classes     int     // distinct typed-input classes
	Buckets     int     // non-empty band buckets
	MaxPosting  int     // longest posting list
	MeanPosting float64 // mean posting-list length
	Skew        float64 // MaxPosting / MeanPosting (1 = perfectly even)
	Small       int     // tiny-feature strands the scan-mode escape would always pass
	Checksum    uint64
}

// Stats returns the table's shape summary.
func (rx *RetrievalIndex) Stats() RetrievalStats {
	st := RetrievalStats{
		Strands:  rx.n,
		Bands:    rx.cfg.Bands,
		Rows:     rx.cfg.Rows,
		Classes:  len(rx.classes),
		Buckets:  len(rx.bandKeys),
		Small:    len(rx.small),
		Checksum: rx.checksum,
	}
	for i := range rx.bandKeys {
		n := int(rx.bandOffs[i+1] - rx.bandOffs[i])
		if n > st.MaxPosting {
			st.MaxPosting = n
		}
	}
	if st.Buckets > 0 {
		st.MeanPosting = float64(len(rx.bandIDs)) / float64(st.Buckets)
		st.Skew = float64(st.MaxPosting) / st.MeanPosting
	}
	return st
}

// RetrievalTable is the persistable form of the band structures: plain
// slices with no behavior, encoded into snapshot format v4 by
// internal/index. The typed-input classes and small-set list are NOT
// part of the table — they are O(n) derivations of the summaries, which
// the snapshot already persists, and FromTable rebuilds them on adopt.
type RetrievalTable struct {
	Bands, Rows int
	N           int
	BandDir     []int32
	BandKeys    []uint64
	BandOffs    []int32
	BandIDs     []int32
	Checksum    uint64
}

// Table returns the index's persistable band structures. The slices
// alias the index; treat them as read-only.
func (rx *RetrievalIndex) Table() RetrievalTable {
	return RetrievalTable{
		Bands:    rx.cfg.Bands,
		Rows:     rx.cfg.Rows,
		N:        rx.n,
		BandDir:  rx.bandDir,
		BandKeys: rx.bandKeys,
		BandOffs: rx.bandOffs,
		BandIDs:  rx.bandIDs,
		Checksum: rx.checksum,
	}
}

// FromTable adopts a persisted band table, skipping the build-time
// sort, and rebuilds the summary-derived parts (classes, small list,
// typed counts) from sums. The table is validated structurally and
// against its checksum; any mismatch — including a table persisted
// under a different banding than cfg — is an error, and the caller
// should fall back to BuildRetrieval.
func FromTable(tab RetrievalTable, sums []Summary, cfg Config) (*RetrievalIndex, error) {
	cfg = cfg.Normalized()
	if tab.Bands != cfg.Bands || tab.Rows != cfg.Rows {
		return nil, fmt.Errorf("sketch: retrieval table banding %dx%d does not match config %dx%d",
			tab.Bands, tab.Rows, cfg.Bands, cfg.Rows)
	}
	if tab.N != len(sums) {
		return nil, fmt.Errorf("sketch: retrieval table covers %d strands, have %d summaries", tab.N, len(sums))
	}
	if len(tab.BandDir) != tab.Bands+1 || tab.BandDir[0] != 0 || int(tab.BandDir[tab.Bands]) != len(tab.BandKeys) {
		return nil, fmt.Errorf("sketch: retrieval table band directory is malformed")
	}
	if len(tab.BandOffs) != len(tab.BandKeys)+1 || len(tab.BandIDs) != tab.N*tab.Bands ||
		(len(tab.BandOffs) > 0 && int(tab.BandOffs[len(tab.BandOffs)-1]) != len(tab.BandIDs)) {
		return nil, fmt.Errorf("sketch: retrieval table posting slab is malformed")
	}
	for b := 0; b < tab.Bands; b++ {
		lo, hi := tab.BandDir[b], tab.BandDir[b+1]
		if lo > hi || int(hi) > len(tab.BandKeys) {
			return nil, fmt.Errorf("sketch: retrieval table band %d directory out of range", b)
		}
		for i := lo + 1; i < hi; i++ {
			if tab.BandKeys[i-1] >= tab.BandKeys[i] {
				return nil, fmt.Errorf("sketch: retrieval table band %d keys are not sorted", b)
			}
		}
	}
	for i := 1; i < len(tab.BandOffs); i++ {
		if tab.BandOffs[i-1] > tab.BandOffs[i] {
			return nil, fmt.Errorf("sketch: retrieval table posting offsets are not monotonic")
		}
	}
	for _, id := range tab.BandIDs {
		if id < 0 || int(id) >= tab.N {
			return nil, fmt.Errorf("sketch: retrieval table posting id %d out of range [0,%d)", id, tab.N)
		}
	}

	// Rebuild the summary-derived parts by building a fresh index over
	// an empty band set: cheapest is to reuse BuildRetrieval's class
	// machinery via a throwaway build over the typed counts only. The
	// class/small rebuild is O(n); the band sort it skips is the
	// O(n·B·log n) part.
	rx := &RetrievalIndex{
		cfg:      cfg,
		n:        tab.N,
		bandDir:  tab.BandDir,
		bandKeys: tab.BandKeys,
		bandOffs: tab.BandOffs,
		bandIDs:  tab.BandIDs,
		nInt:     make([]int32, len(sums)),
		nMem:     make([]int32, len(sums)),
		nFeat:    make([]int32, len(sums)),
	}
	for id, s := range sums {
		if len(s.Sig) != cfg.Len() {
			return nil, fmt.Errorf("sketch: summary %d signature length %d does not match config %dx%d",
				id, len(s.Sig), cfg.Bands, cfg.Rows)
		}
		rx.nInt[id] = int32(s.NInt)
		rx.nMem[id] = int32(s.NMem)
		rx.nFeat[id] = int32(s.NFeat)
		if s.NFeat <= SmallSetFeatures {
			rx.small = append(rx.small, int32(id))
		}
	}
	rx.rebuildClasses()
	rx.checksum = rx.computeChecksum()
	if tab.Checksum != 0 && rx.checksum != tab.Checksum {
		return nil, fmt.Errorf("sketch: retrieval table checksum mismatch: table says %016x, content hashes to %016x",
			tab.Checksum, rx.checksum)
	}
	return rx, nil
}

// rebuildClasses fills the typed-input class runs from the SoA count
// arrays (shared by BuildRetrieval's logic and FromTable's adopt path).
func (rx *RetrievalIndex) rebuildClasses() {
	type classKey struct{ nInt, nMem int32 }
	counts := map[classKey]int32{}
	for id := 0; id < rx.n; id++ {
		counts[classKey{rx.nInt[id], rx.nMem[id]}]++
	}
	rx.classes = make([]retrClass, 0, len(counts))
	for ck, n := range counts {
		rx.classes = append(rx.classes, retrClass{nInt: ck.nInt, nMem: ck.nMem, n: n})
	}
	sort.Slice(rx.classes, func(i, j int) bool {
		a, b := rx.classes[i], rx.classes[j]
		if a.nInt != b.nInt {
			return a.nInt < b.nInt
		}
		return a.nMem < b.nMem
	})
	classAt := make(map[classKey]int, len(rx.classes))
	var off int32
	for i := range rx.classes {
		rx.classes[i].off = off
		off += rx.classes[i].n
		classAt[classKey{rx.classes[i].nInt, rx.classes[i].nMem}] = i
	}
	rx.classIDs = make([]int32, rx.n)
	cursor := make([]int32, len(rx.classes))
	for id := 0; id < rx.n; id++ {
		ci := classAt[classKey{rx.nInt[id], rx.nMem[id]}]
		rx.classIDs[rx.classes[ci].off+cursor[ci]] = int32(id)
		cursor[ci]++
	}
}
