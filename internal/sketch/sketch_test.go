package sketch

import (
	"reflect"
	"testing"

	"repro/internal/ivl"
	"repro/internal/strand"
)

// mkStrand builds a strand computing a small hash loop body.
func mkStrand(names ...string) *strand.Strand {
	// names lets tests alpha-rename without changing structure.
	n := func(i int) string { return names[i] }
	in := func(i int) ivl.Expr { return ivl.IntVar(n(i)) }
	v := func(i int) ivl.Var { return ivl.Var{Name: n(i), Type: ivl.Int} }
	return &strand.Strand{
		ProcName: "p",
		Inputs:   []ivl.Var{v(0), v(1)},
		Stmts: []ivl.Stmt{
			ivl.Assign(v(2), ivl.Bin(ivl.Mul, in(0), ivl.C(33))),
			ivl.Assign(v(3), ivl.Bin(ivl.Add, ivl.IntVar(n(2)), in(1))),
			ivl.Assign(v(4), ivl.Bin(ivl.Xor, ivl.IntVar(n(3)), ivl.Bin(ivl.LShr, ivl.IntVar(n(3)), ivl.C(7)))),
		},
	}
}

func TestComputeDeterministicAndAlphaInvariant(t *testing.T) {
	s1 := mkStrand("a", "b", "c", "d", "e")
	s2 := mkStrand("x9", "y7", "z1", "w2", "q3") // alpha-renamed, same structure

	sig1 := Compute(s1, Config{})
	sig1b := Compute(s1, Config{})
	sig2 := Compute(s2, Config{})

	if got, want := len(sig1), (Config{}).Len(); got != want {
		t.Fatalf("signature length = %d, want %d", got, want)
	}
	if !reflect.DeepEqual(sig1, sig1b) {
		t.Error("Compute is not deterministic")
	}
	if !reflect.DeepEqual(sig1, sig2) {
		t.Error("alpha-renamed strands should share a signature")
	}
}

func TestFeaturesSortedAndStable(t *testing.T) {
	s := mkStrand("a", "b", "c", "d", "e")
	f1 := Features(s)
	f2 := Features(s)
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("Features is not deterministic")
	}
	if len(f1) == 0 {
		t.Fatal("no features for a non-empty strand")
	}
	for i := 1; i < len(f1); i++ {
		if f1[i-1] >= f1[i] {
			t.Fatalf("features not strictly sorted at %d", i)
		}
	}
}

func TestIndexSelfCandidate(t *testing.T) {
	ix := NewIndex(Config{})
	s := mkStrand("a", "b", "c", "d", "e")
	sum := Summarize(s, ix.Config())
	id := ix.Add(sum)
	mark := make([]bool, ix.Len())
	n := ix.Candidates(sum, mark)
	if !mark[id] {
		t.Error("a strand is not a candidate of its own summary")
	}
	if n != 1 {
		t.Errorf("candidate count = %d, want 1", n)
	}
}

// memStrand is pure memory traffic: its inputs are (Mem, Int), so the
// all-Int hash loop is injectability-dead against it in both directions.
func memStrand() *strand.Strand {
	mem := ivl.Var{Name: "m", Type: ivl.Mem}
	p := ivl.Var{Name: "p", Type: ivl.Int}
	return &strand.Strand{
		ProcName: "q",
		Inputs:   []ivl.Var{mem, p},
		Stmts: []ivl.Stmt{
			ivl.Assign(ivl.Var{Name: "t0", Type: ivl.Int}, ivl.LoadExpr{Mem: ivl.V(mem), Addr: ivl.V(p), W: 8}),
			ivl.Assign(ivl.Var{Name: "t1", Type: ivl.Int}, ivl.Bin(ivl.ULt, ivl.IntVar("t0"), ivl.C(0x1000))),
			ivl.Assign(ivl.Var{Name: "m1", Type: ivl.Mem},
				ivl.StoreExpr{Mem: ivl.V(mem), Addr: ivl.Bin(ivl.Sub, ivl.V(p), ivl.C(16)), Val: ivl.IntVar("t1"), W: 8}),
		},
	}
}

// arithStrand shares the hash loop's input typing (two Int inputs) but
// none of its operators, constants, or shape — a live pair the sound
// core must keep and the heuristic tier should cut.
func arithStrand() *strand.Strand {
	v := func(name string) ivl.Var { return ivl.Var{Name: name, Type: ivl.Int} }
	return &strand.Strand{
		ProcName: "r",
		Inputs:   []ivl.Var{v("x"), v("y")},
		Stmts: []ivl.Stmt{
			ivl.Assign(v("t0"), ivl.Bin(ivl.Sub, ivl.IntVar("x"), ivl.C(0x1000))),
			ivl.Assign(v("t1"), ivl.Bin(ivl.ULt, ivl.IntVar("t0"), ivl.IntVar("y"))),
			ivl.Assign(v("t2"), ivl.Bin(ivl.And, ivl.IntVar("t1"), ivl.Bin(ivl.Shl, ivl.IntVar("y"), ivl.C(3)))),
			ivl.Assign(v("t3"), ivl.Bin(ivl.Or, ivl.IntVar("t2"), ivl.C(0xff))),
		},
	}
}

func TestIndexSoundCoreDropsTypeDeadPairs(t *testing.T) {
	// The default (sound-only) candidate rule keeps every pair that is
	// live in either direction — however dissimilar — and drops pairs
	// whose typed inputs cannot inject either way, whose VCP is exactly
	// zero by construction.
	cfg := Config{}.Normalized()
	hash := Summarize(mkStrand("a", "b", "c", "d", "e"), cfg)
	mem := Summarize(memStrand(), cfg)
	arith := Summarize(arithStrand(), cfg)

	if hash.Injects(mem) || mem.Injects(hash) {
		t.Fatal("test premise broken: hash/mem pair should be dead both ways")
	}
	ix := NewIndex(cfg)
	memID := ix.Add(mem)
	arithID := ix.Add(arith)
	mark := make([]bool, ix.Len())
	n := ix.Candidates(hash, mark)
	if mark[memID] {
		t.Error("type-dead pair survived the sound candidate rule")
	}
	if !mark[arithID] {
		t.Error("live-but-dissimilar pair was dropped by the sound candidate rule")
	}
	if n != 1 {
		t.Errorf("candidate count = %d, want 1", n)
	}
}

func TestIndexHeuristicTierSeparatesDissimilarStrands(t *testing.T) {
	// With the heuristic tier enabled, a live pair with no band
	// collision and low estimated containment is cut even though the
	// sound core keeps it.
	cfg := Config{MinContainment: SuggestedMinContainment}.Normalized()
	hash := mkStrand("a", "b", "c", "d", "e")
	other := arithStrand()
	// Both strands must be over the tiny-feature-set rescue for the
	// similarity tests to apply at all.
	if nf := len(Features(hash)); nf <= SmallSetFeatures {
		t.Fatalf("hash-loop strand has only %d features", nf)
	}
	if nf := len(Features(other)); nf <= SmallSetFeatures {
		t.Fatalf("arith strand has only %d features", nf)
	}
	ix := NewIndex(cfg)
	ix.Add(Summarize(hash, cfg))
	mark := make([]bool, ix.Len())
	if n := ix.Candidates(Summarize(other, cfg), mark); n != 0 {
		t.Errorf("dissimilar strand produced %d candidates, want 0", n)
	}
	// The same strand alpha-renamed still collides in every band.
	mark = make([]bool, ix.Len())
	if n := ix.Candidates(Summarize(mkStrand("p", "q", "r", "s", "t"), cfg), mark); n != 1 {
		t.Errorf("alpha-renamed twin produced %d candidates, want 1", n)
	}
}

func TestConfigNormalized(t *testing.T) {
	c := Config{}.Normalized()
	if c.Bands != DefaultBands || c.Rows != DefaultRows {
		t.Fatalf("Normalized() = %+v", c)
	}
	if got := (Config{Bands: 4, Rows: 2}).Len(); got != 8 {
		t.Fatalf("Len() = %d, want 8", got)
	}
}

func TestEmptyStrandSignature(t *testing.T) {
	s := &strand.Strand{ProcName: "empty"}
	sig := Compute(s, Config{})
	sig2 := Compute(s, Config{})
	if !reflect.DeepEqual(sig, sig2) {
		t.Fatal("empty strand signature not deterministic")
	}
	if len(sig) != (Config{}).Len() {
		t.Fatalf("empty strand signature length %d", len(sig))
	}
}
