package lift

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/ivl"
)

// Exhaustive differential coverage of condition recovery: every
// (flag-setter, condition-code) combination the lifter supports exactly
// must agree with the emulator on random and boundary operands.

type condCase struct {
	setter string // instruction text with %a/%b placeholders
	ccs    []asm.CC
}

func condCases() []condCase {
	allCCs := []asm.CC{asm.E, asm.NE, asm.L, asm.LE, asm.G, asm.GE,
		asm.B, asm.BE, asm.A, asm.AE, asm.S, asm.NS}
	logicCCs := allCCs // logic setters support every cc (some constant-fold)
	zsCCs := []asm.CC{asm.E, asm.NE, asm.S, asm.NS}
	return []condCase{
		{"cmp rdi, rsi", allCCs},
		{"cmp edi, esi", allCCs},
		{"test rdi, rsi", logicCCs},
		{"test edi, edi", logicCCs},
		{"and rdi, rsi", logicCCs},
		{"or rdi, rsi", logicCCs},
		{"xor rdi, rsi", logicCCs},
		{"inc rdi", zsCCs},
		{"dec rdi", zsCCs},
		{"neg rdi", allCCs},
		{"imul rdi, rsi", zsCCs},
		{"shl rdi, 3", zsCCs},
		{"sar rdi, 2", zsCCs},
	}
}

func TestConditionRecoveryMatchesEmulator(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	boundary := []uint64{0, 1, ^uint64(0), 0x7FFF_FFFF_FFFF_FFFF,
		0x8000_0000_0000_0000, 0x8000_0000, 0x7FFF_FFFF, 16}
	for _, tc := range condCases() {
		for _, cc := range tc.ccs {
			src := fmt.Sprintf("proc f\n\t%s\n\tset%s al\n\tmovzx eax, al\n\tret\nendp", tc.setter, cc)
			p, err := asm.ParseProc(src)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			for trial := 0; trial < 24; trial++ {
				var a, b uint64
				if trial < len(boundary) {
					a = boundary[trial]
					b = boundary[(trial+3)%len(boundary)]
				} else {
					a, b = rng.Uint64(), rng.Uint64()
				}

				m := asm.NewMachine()
				m.AddProc(p)
				m.Regs[asm.RDI] = a
				m.Regs[asm.RSI] = b
				want, err := m.Run("f")
				if err != nil {
					t.Fatal(err)
				}

				env, lb := evalBlock(t, src, map[asm.Reg]uint64{asm.RDI: a, asm.RSI: b})
				got, ok := lastRegValue(env, lb, asm.RAX)
				if !ok {
					t.Fatalf("%s %v: rax not defined", tc.setter, cc)
				}
				if got != want {
					t.Fatalf("set%s after %q with a=%#x b=%#x: lifted %d, emulator %d\n%s",
						cc, tc.setter, a, b, got, want, dumpStmts(lb.Stmts))
				}
			}
		}
	}
}

func dumpStmts(stmts []ivl.Stmt) string {
	out := ""
	for _, s := range stmts {
		out += "\t" + s.String() + "\n"
	}
	return out
}

// TestCmovRecoveryMatchesEmulator covers the cmov consumer the same way.
func TestCmovRecoveryMatchesEmulator(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, cc := range []asm.CC{asm.E, asm.L, asm.GE, asm.B, asm.A} {
		src := fmt.Sprintf(
			"proc f\n\tmov rax, rdi\n\tcmp rdi, rsi\n\tcmov%s rax, rsi\n\tret\nendp", cc)
		p, err := asm.ParseProc(src)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			a, b := rng.Uint64(), rng.Uint64()
			if trial%3 == 0 {
				b = a // exercise the equality boundary
			}
			m := asm.NewMachine()
			m.AddProc(p)
			m.Regs[asm.RDI] = a
			m.Regs[asm.RSI] = b
			want, err := m.Run("f")
			if err != nil {
				t.Fatal(err)
			}
			env, lb := evalBlock(t, src, map[asm.Reg]uint64{asm.RDI: a, asm.RSI: b})
			got, ok := lastRegValue(env, lb, asm.RAX)
			if !ok || got != want {
				t.Fatalf("cmov%s a=%#x b=%#x: lifted %d (ok=%v), emulator %d", cc, a, b, got, ok, want)
			}
		}
	}
}

// TestJccConditionValueMatchesEmulator checks that the materialized
// branch-condition temporary agrees with the emulator's branch decision.
func TestJccConditionValueMatchesEmulator(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, cc := range []asm.CC{asm.E, asm.NE, asm.L, asm.GE, asm.B, asm.AE, asm.S} {
		src := fmt.Sprintf(`proc f
	cmp rdi, rsi
	j%s yes
	mov rax, 0
	ret
yes:
	mov rax, 1
	ret
endp`, cc)
		p, err := asm.ParseProc(src)
		if err != nil {
			t.Fatal(err)
		}
		g, err := cfg.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := LiftBlock(g.Blocks[0], nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(lb.Stmts) == 0 {
			t.Fatal("empty lifted block")
		}
		condVar := lb.Stmts[len(lb.Stmts)-1].Dst

		for trial := 0; trial < 30; trial++ {
			a, b := rng.Uint64(), rng.Uint64()
			if trial%4 == 0 {
				b = a
			}
			m := asm.NewMachine()
			m.AddProc(p)
			m.Regs[asm.RDI] = a
			m.Regs[asm.RSI] = b
			want, err := m.Run("f")
			if err != nil {
				t.Fatal(err)
			}

			env := ivl.Env{}
			for _, v := range lb.Inputs {
				switch v.Name {
				case "rdi_0":
					env[v.Name] = ivl.IntValue(a)
				case "rsi_0":
					env[v.Name] = ivl.IntValue(b)
				default:
					env[v.Name] = ivl.IntValue(0)
				}
			}
			if ok, err := ivl.RunStmts(lb.Stmts, env, nil); err != nil || !ok {
				t.Fatal(err)
			}
			if env[condVar.Name].Bits != want {
				t.Fatalf("j%s a=%#x b=%#x: condition %d, emulator took %d",
					cc, a, b, env[condVar.Name].Bits, want)
			}
		}
	}
}
