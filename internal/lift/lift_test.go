package lift

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/ivl"
)

func liftSrc(t *testing.T, src string) *Proc {
	t.Helper()
	p, err := asm.ParseProc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	lp, err := LiftProc(g)
	if err != nil {
		t.Fatalf("lift: %v", err)
	}
	return lp
}

func TestLiftSSAForm(t *testing.T) {
	lp := liftSrc(t, `proc f
	mov rax, rdi
	add rax, 3
	add rax, rsi
	ret
endp`)
	b := lp.Blocks[0]
	defined := map[string]bool{}
	for _, s := range b.Stmts {
		if s.Kind != ivl.SAssign {
			continue
		}
		if defined[s.Dst.Name] {
			t.Fatalf("variable %q defined twice (not SSA)", s.Dst.Name)
		}
		defined[s.Dst.Name] = true
		// every referenced variable is either defined earlier or an input
		for _, v := range ivl.FreeVars(s.Rhs) {
			if !defined[v.Name] && !isInput(b, v.Name) {
				t.Fatalf("variable %q used before definition", v.Name)
			}
		}
	}
}

func isInput(b *Block, name string) bool {
	for _, v := range b.Inputs {
		if v.Name == name {
			return true
		}
	}
	return false
}

func TestLiftInputs(t *testing.T) {
	lp := liftSrc(t, `proc f
	add rdi, rsi
	mov rax, rdi
	ret
endp`)
	b := lp.Blocks[0]
	want := map[string]bool{"rdi_0": true, "rsi_0": true}
	if len(b.Inputs) != 2 {
		t.Fatalf("inputs = %v", b.Inputs)
	}
	for _, v := range b.Inputs {
		if !want[v.Name] {
			t.Errorf("unexpected input %q", v.Name)
		}
	}
}

func TestLiftMemoryInput(t *testing.T) {
	lp := liftSrc(t, `proc f
	mov rax, qword [rdi+0x8]
	ret
endp`)
	b := lp.Blocks[0]
	foundMem := false
	for _, v := range b.Inputs {
		if v.Type == ivl.Mem {
			foundMem = true
		}
	}
	if !foundMem {
		t.Errorf("memory not recorded as block input: %v", b.Inputs)
	}
}

func TestLiftStoreCreatesNewMem(t *testing.T) {
	lp := liftSrc(t, `proc f
	mov qword [rdi], rsi
	mov qword [rdi+0x8], rdx
	ret
endp`)
	memDefs := 0
	for _, s := range lp.Blocks[0].Stmts {
		if s.Kind == ivl.SAssign && s.Dst.Type == ivl.Mem {
			memDefs++
		}
	}
	if memDefs != 2 {
		t.Errorf("memory SSA defs = %d, want 2", memDefs)
	}
}

func TestCallArities(t *testing.T) {
	p, err := asm.ParseProc(`proc f
	mov rdi, rax
	mov rsi, rbx
	call two_args
	mov rdi, rax
	call one_arg
	call zero_args
	ret
endp`)
	if err != nil {
		t.Fatal(err)
	}
	got := callArities(p)
	want := []int{2, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("arities = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("arity[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCallAritiesPrefixRule(t *testing.T) {
	// rsi written but rdi not: arity 0 (prefix broken).
	p, _ := asm.ParseProc(`proc f
	mov rsi, rax
	call g
	ret
endp`)
	if got := callArities(p); got[0] != 0 {
		t.Errorf("broken prefix arity = %d, want 0", got[0])
	}
	// 32-bit writes count.
	p, _ = asm.ParseProc(`proc f
	mov edi, 5
	call g
	ret
endp`)
	if got := callArities(p); got[0] != 1 {
		t.Errorf("32-bit arg write arity = %d, want 1", got[0])
	}
}

func TestLiftCallUninterpreted(t *testing.T) {
	lp := liftSrc(t, `proc f
	mov rdi, rbx
	call g
	add rax, 1
	ret
endp`)
	var call, callmem bool
	for _, s := range lp.Blocks[0].Stmts {
		if s.Kind != ivl.SAssign {
			continue
		}
		if ce, ok := s.Rhs.(ivl.CallExpr); ok {
			switch ce.Sym {
			case "call/1":
				call = true
				if len(ce.Args) != 1 {
					t.Errorf("call/1 args = %d", len(ce.Args))
				}
			case "callmem/1":
				callmem = true
				if len(ce.Args) != 2 {
					t.Errorf("callmem/1 args = %d (want arg + mem)", len(ce.Args))
				}
			}
		}
	}
	if !call || !callmem {
		t.Errorf("call=%v callmem=%v; expected both", call, callmem)
	}
}

func TestLiftConditionFromCmp(t *testing.T) {
	lp := liftSrc(t, `proc f
	cmp rdi, rsi
	jl less
	mov rax, 1
	ret
less:
	mov rax, 2
	ret
endp`)
	// The first block must contain a signed-less condition.
	found := false
	for _, s := range lp.Blocks[0].Stmts {
		if s.Kind == ivl.SAssign {
			if be, ok := s.Rhs.(ivl.BinExpr); ok && be.Op == ivl.SLt {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("jl after cmp did not lift to SLt:\n%v", lp.Blocks[0].Stmts)
	}
}

func TestLiftConditionNoSetter(t *testing.T) {
	b := &cfg.Block{Insts: []asm.Inst{asm.MkJcc(asm.E, "x")}}
	if _, err := LiftBlock(b, nil); err == nil {
		t.Error("jcc without flag setter not rejected")
	}
}

// evalBlock lifts one block of asm and evaluates its IVL against initial
// register values, returning the final value of every register var.
func evalBlock(t *testing.T, src string, init map[asm.Reg]uint64) (ivl.Env, *Block) {
	t.Helper()
	p, err := asm.ParseProc(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := LiftBlock(g.Blocks[0], callArities(p))
	if err != nil {
		t.Fatal(err)
	}
	env := ivl.Env{}
	for _, v := range lb.Inputs {
		if v.Type == ivl.Mem {
			env[v.Name] = ivl.MemValue(ivl.NewMem(12345))
			continue
		}
		reg := regFromInputName(v.Name)
		env[v.Name] = ivl.IntValue(init[reg])
	}
	if ok, err := ivl.RunStmts(lb.Stmts, env, nil); err != nil || !ok {
		t.Fatalf("RunStmts: ok=%v err=%v", ok, err)
	}
	return env, lb
}

func regFromInputName(name string) asm.Reg {
	for r := asm.Reg(0); r < asm.NumRegs; r++ {
		if r.Name(asm.Width8)+"_0" == name {
			return r
		}
	}
	return asm.RAX
}

// lastRegValue finds the final SSA value of a register in the lifted block.
func lastRegValue(env ivl.Env, lb *Block, reg asm.Reg) (uint64, bool) {
	name := ""
	prefix := reg.Name(asm.Width8) + "_"
	for _, s := range lb.Stmts {
		if s.Kind == ivl.SAssign && s.Dst.Type == ivl.Int &&
			len(s.Dst.Name) > len(prefix) && s.Dst.Name[:len(prefix)] == prefix {
			name = s.Dst.Name
		}
	}
	if name == "" {
		return 0, false
	}
	v, ok := env[name]
	return v.Bits, ok
}

// TestLiftMatchesEmulator runs random register-only blocks through both
// the emulator and the lifted IVL and compares final register values.
func TestLiftMatchesEmulator(t *testing.T) {
	blocks := []string{
		"proc f\n\tmov rax, rdi\n\tadd rax, rsi\n\tret\nendp",
		"proc f\n\tlea rax, [rdi+rsi*4+0x10]\n\tret\nendp",
		"proc f\n\tmov rax, rdi\n\tshl rax, 3\n\tsub rax, rsi\n\tret\nendp",
		"proc f\n\tmov eax, edi\n\tadd eax, esi\n\tret\nendp",
		"proc f\n\tmovzx eax, dil\n\tret\nendp",
		"proc f\n\tmovsx rax, dil\n\tret\nendp",
		"proc f\n\tmov rax, rdi\n\txor rax, rsi\n\tnot rax\n\tret\nendp",
		"proc f\n\tmov rax, rdi\n\tneg rax\n\tret\nendp",
		"proc f\n\tmov rax, rdi\n\tsar rax, 5\n\tret\nendp",
		"proc f\n\tmov eax, edi\n\tsar eax, 5\n\tret\nendp",
		"proc f\n\tmov rax, rdi\n\timul rax, rsi\n\tret\nendp",
		"proc f\n\tmov rax, rdi\n\tinc rax\n\tdec rax\n\tdec rax\n\tret\nendp",
		"proc f\n\tcmp rdi, rsi\n\tsetl al\n\tmovzx eax, al\n\tret\nendp",
		"proc f\n\tcmp rdi, rsi\n\tsetb al\n\tmovzx eax, al\n\tret\nendp",
		"proc f\n\ttest rdi, rdi\n\tsete al\n\tmovzx eax, al\n\tret\nendp",
		"proc f\n\tcmp edi, esi\n\tsetle al\n\tmovzx eax, al\n\tret\nendp",
		"proc f\n\tmov rax, rsi\n\tcmp rdi, 0x10\n\tcmovge rax, rdi\n\tret\nendp",
		"proc f\n\tmov al, dil\n\tret\nendp", // partial-width merge
		"proc f\n\tmov rax, rdi\n\tcqo\n\tret\nendp",
	}
	rng := rand.New(rand.NewSource(7))
	for _, src := range blocks {
		for trial := 0; trial < 25; trial++ {
			init := map[asm.Reg]uint64{
				asm.RDI: rng.Uint64(),
				asm.RSI: rng.Uint64(),
				asm.RAX: rng.Uint64(),
			}
			if trial == 0 {
				init = map[asm.Reg]uint64{asm.RDI: 0, asm.RSI: 0, asm.RAX: 0}
			}

			// emulator
			p, err := asm.ParseProc(src)
			if err != nil {
				t.Fatal(err)
			}
			m := asm.NewMachine()
			m.AddProc(p)
			for r, v := range init {
				m.Regs[r] = v
			}
			if _, err := m.Run("f"); err != nil {
				t.Fatalf("%s: emulate: %v", src, err)
			}

			// lifted IVL
			env, lb := evalBlock(t, src, init)
			for _, reg := range []asm.Reg{asm.RAX, asm.RDX} {
				got, ok := lastRegValue(env, lb, reg)
				if !ok {
					continue // register not written by the block
				}
				if got != m.Regs[reg] {
					t.Errorf("%s\ninit=%v: lifted %s = %#x, emulator = %#x",
						src, init, reg, got, m.Regs[reg])
					break
				}
			}
		}
	}
}

// TestLiftMemoryMatchesEmulator aligns the IVL memory background with the
// emulator's memory and checks a load/store block agrees.
func TestLiftMemoryMatchesEmulator(t *testing.T) {
	src := `proc f
	mov rax, qword [rdi]
	add rax, qword [rdi+0x8]
	mov qword [rdi+0x10], rax
	mov rdx, qword [rdi+0x10]
	ret
endp`
	const base = 0x2000
	bg := ivl.NewMem(99)

	p, _ := asm.ParseProc(src)
	m := asm.NewMachine()
	m.AddProc(p)
	m.Regs[asm.RDI] = base
	// Seed the emulator with the IVL background for the touched window.
	for off := uint64(0); off < 0x40; off++ {
		m.WriteMem(base+off, asm.Width1, bg.Load(base+off, 1))
	}
	if _, err := m.Run("f"); err != nil {
		t.Fatal(err)
	}

	g, _ := cfg.Build(p)
	lb, err := LiftBlock(g.Blocks[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	env := ivl.Env{}
	for _, v := range lb.Inputs {
		if v.Type == ivl.Mem {
			env[v.Name] = ivl.MemValue(bg)
		} else {
			env[v.Name] = ivl.IntValue(base)
		}
	}
	if ok, err := ivl.RunStmts(lb.Stmts, env, nil); err != nil || !ok {
		t.Fatalf("RunStmts: %v %v", ok, err)
	}
	for _, reg := range []asm.Reg{asm.RAX, asm.RDX} {
		got, ok := lastRegValue(env, lb, reg)
		if !ok {
			t.Fatalf("%v not written", reg)
		}
		if got != m.Regs[reg] {
			t.Errorf("lifted %v = %#x, emulator = %#x", reg, got, m.Regs[reg])
		}
	}
}

// TestLiftTempPerOperation checks the paper's granularity convention:
// compound address computations decompose into one temp per operation.
func TestLiftTempPerOperation(t *testing.T) {
	lp := liftSrc(t, `proc f
	lea rax, [rdi+rsi*8+0x20]
	ret
endp`)
	temps := 0
	for _, s := range lp.Blocks[0].Stmts {
		if s.Kind == ivl.SAssign && s.Dst.Name[0] == 'v' {
			temps++
		}
	}
	// mul, add base, add disp => 3 temps.
	if temps != 3 {
		t.Errorf("temps = %d, want 3:\n%v", temps, lp.Blocks[0].Stmts)
	}
}

func TestLiftDeterministic(t *testing.T) {
	src := `proc f
	mov rax, qword [rdi]
	add rax, rsi
	mov qword [rdi], rax
	ret
endp`
	a := liftSrc(t, src)
	b := liftSrc(t, src)
	if len(a.Blocks[0].Stmts) != len(b.Blocks[0].Stmts) {
		t.Fatal("lift not deterministic in statement count")
	}
	for i := range a.Blocks[0].Stmts {
		if a.Blocks[0].Stmts[i].String() != b.Blocks[0].Stmts[i].String() {
			t.Fatalf("lift not deterministic at stmt %d", i)
		}
	}
}

func TestXorZeroIdiom(t *testing.T) {
	// "xor eax, eax" must lift to a constant zero with no dependence on
	// the old register value (so it is not a spurious block input).
	lp := liftSrc(t, "proc f\n\txor eax, eax\n\tret\nendp")
	b := lp.Blocks[0]
	if len(b.Inputs) != 0 {
		t.Errorf("xor-zero created inputs: %v", b.Inputs)
	}
	found := false
	for _, s := range b.Stmts {
		if c, ok := s.Rhs.(ivl.ConstExpr); ok && c.Val == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no constant-zero assignment:\n%v", b.Stmts)
	}
	// Flags from the idiom still feed a following branch correctly
	// (ZF=1): "xor eax,eax; je taken" must lift without error.
	lp = liftSrc(t, "proc g\n\txor eax, eax\n\tje out\n\tmov rax, 1\nout:\n\tret\nendp")
	if len(lp.Blocks) == 0 {
		t.Fatal("no blocks")
	}
}

func TestLiftPaths(t *testing.T) {
	src := `proc f
	test rdi, rdi
	jne big
	mov rax, 1
	jmp done
big:
	lea rax, [rdi+rdi*2]
done:
	add rax, rsi
	ret
endp`
	p, err := asm.ParseProc(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := LiftPaths(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 2-paths: entry->then, entry->big, then->done, big->done = 4.
	if len(paths) != 4 {
		t.Fatalf("paths = %d, want 4", len(paths))
	}
	for _, pb := range paths {
		if len(pb.Stmts) == 0 {
			t.Error("empty path block")
		}
		// SSA holds across the concatenation.
		defined := map[string]bool{}
		inputSet := map[string]bool{}
		for _, v := range pb.Inputs {
			inputSet[v.Name] = true
		}
		for _, s := range pb.Stmts {
			if defined[s.Dst.Name] {
				t.Fatalf("path block not SSA: %s", s.Dst.Name)
			}
			defined[s.Dst.Name] = true
			for _, v := range ivl.FreeVars(s.Rhs) {
				if !defined[v.Name] && !inputSet[v.Name] {
					t.Fatalf("undefined %s in path block", v.Name)
				}
			}
		}
	}
	if _, err := LiftPaths(g, 1); err == nil {
		t.Error("k=1 accepted")
	}
}
