// Package lift translates assembly basic blocks into the SSA-form IVL of
// package ivl, standing in for the paper's BAP → LLVM IR → SMACK pipeline.
//
// Lifting follows the paper's conventions:
//
//   - registers are always represented at full 64-bit width; sub-register
//     reads and writes go through fresh temporaries with explicit
//     truncation/extension and merge masks;
//   - every elementary operation result is assigned to a fresh temporary,
//     and register updates are explicit copies from temporaries, so the
//     lifted code is in SSA form within the block;
//   - values read before being defined in the block become block inputs
//     (registers and the memory state);
//   - procedure calls are uninterpreted: the result is call/N over the
//     arguments prepared for the call (an ABI liveness heuristic recovers
//     N), and the post-call memory is callmem/N over the same arguments
//     and the pre-call memory;
//   - status flags are not materialized eagerly; conditions are
//     reconstructed at their consumer (jcc/setcc/cmovcc) from the most
//     recent flag-setting instruction, the way decompilers recover
//     comparisons. Combinations our toolchains never emit fall back to an
//     uninterpreted flags/... function, which still matches structurally
//     identical code.
package lift

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/ivl"
)

// Block is a lifted basic block: straight-line SSA IVL statements plus
// the block's inputs (variables read before defined, including memory).
type Block struct {
	Index  int
	Stmts  []ivl.Stmt
	Inputs []ivl.Var
}

// Proc is a lifted procedure.
type Proc struct {
	Name   string
	Blocks []*Block
	Source asm.Provenance
}

// abiArgRegs is the SysV argument register sequence.
var abiArgRegs = [6]asm.Reg{asm.RDI, asm.RSI, asm.RDX, asm.RCX, asm.R8, asm.R9}

// LiftProc lifts every basic block of g.
func LiftProc(g *cfg.Graph) (*Proc, error) {
	arities := callArities(g.Proc)
	lp := &Proc{Name: g.Proc.Name, Source: g.Proc.Source}
	callIdx := 0
	for _, b := range g.Blocks {
		nCalls := 0
		for _, in := range b.Insts {
			if in.Op == asm.CALL {
				nCalls++
			}
		}
		lb, err := LiftBlock(b, arities[callIdx:callIdx+nCalls])
		if err != nil {
			return nil, fmt.Errorf("lift %s block %d: %w", g.Proc.Name, b.Index, err)
		}
		callIdx += nCalls
		lp.Blocks = append(lp.Blocks, lb)
	}
	return lp, nil
}

// callArities scans the linear instruction stream and, for each CALL,
// returns the recovered argument count: the longest prefix of the ABI
// argument registers each written since the previous call (or entry).
// This mirrors how binary analyses recover arity in stripped code and is
// an invariant our simulated toolchains maintain.
func callArities(p *asm.Proc) []int {
	var arities []int
	written := map[asm.Reg]bool{}
	for _, in := range p.Insts {
		switch {
		case in.Op == asm.CALL:
			n := 0
			for _, r := range abiArgRegs {
				if !written[r] {
					break
				}
				n++
			}
			arities = append(arities, n)
			written = map[asm.Reg]bool{}
		case in.Writes() && in.Dst.Kind == asm.KindReg:
			written[in.Dst.Reg] = true
		}
	}
	return arities
}

// lifter holds per-block lifting state.
type lifter struct {
	stmts      []ivl.Stmt
	inputs     []ivl.Var
	cur        map[asm.Reg]ivl.Var // current SSA variable per register
	curMem     ivl.Var
	regGen     map[asm.Reg]int // SSA version counters
	memGen     int
	tmpGen     int
	truncCache map[string]ivl.Var // (var,width) -> materialized truncation

	// Frame-slot tracking. The paper's block inputs are "registers and
	// memory locations used before they are defined in the block": a
	// reload of a spilled local must lift to an input variable (or to the
	// value a preceding in-block spill stored), not to an opaque load —
	// otherwise stack-allocating and register-allocating compilations of
	// the same code could never match. Like IDA's stack-variable model,
	// this assumes stack discipline: frame slots are accessed only
	// through rsp/rbp-based addressing, and neither pointer arguments
	// nor callees alias the caller's frame.
	frameVals   map[frameSlot]ivl.Expr // in-block frame stores, exact-slot forwarded
	frameInputs map[frameSlot]ivl.Var  // created frame-slot inputs

	// Stack-pointer symbolization (the IDA "stack variables" model):
	// spDelta tracks rsp relative to block entry across push/pop and
	// constant rsp arithmetic, so spill slots addressed through a moved
	// rsp still resolve to frame slots. spValid clears on any other
	// write to rsp.
	spDelta int64
	spValid bool
	// spAdjusted marks that the current instruction already accounted
	// for its rsp effect, so defReg must not invalidate the tracking.
	spAdjusted bool

	// last flag-setting instruction, for condition reconstruction
	flag *flagState
}

// frameSlot identifies a frame location: base register (rsp or rbp, at
// its block-entry version), displacement and access width.
type frameSlot struct {
	base asm.Reg
	off  int64
	w    uint
}

type flagState struct {
	op   asm.Op // CMP, TEST, SUB, AND, OR, XOR, INC, DEC, NEG
	w    asm.Width
	a, b ivl.Expr // source operand values (64-bit, zero-extended)
	res  ivl.Expr // result value (64-bit, zero-extended), nil for CMP/TEST
}

// LiftBlock lifts one basic block. callArities supplies the recovered
// arity for each CALL in the block, in order.
func LiftBlock(b *cfg.Block, callArities []int) (*Block, error) {
	lf := &lifter{
		cur:         make(map[asm.Reg]ivl.Var),
		regGen:      make(map[asm.Reg]int),
		truncCache:  make(map[string]ivl.Var),
		frameVals:   make(map[frameSlot]ivl.Expr),
		frameInputs: make(map[frameSlot]ivl.Var),
		spValid:     true,
	}
	callIdx := 0
	for _, in := range b.Insts {
		arity := -1
		if in.Op == asm.CALL {
			if callIdx >= len(callArities) {
				return nil, fmt.Errorf("missing arity for call %d", callIdx)
			}
			arity = callArities[callIdx]
			callIdx++
		}
		if err := lf.inst(in, arity); err != nil {
			return nil, err
		}
	}
	return &Block{Index: b.Index, Stmts: lf.stmts, Inputs: lf.inputs}, nil
}

// fresh allocates a temporary and assigns rhs to it.
func (lf *lifter) fresh(rhs ivl.Expr) ivl.Var {
	lf.tmpGen++
	v := ivl.Var{Name: fmt.Sprintf("v%d", lf.tmpGen), Type: ivl.Int}
	lf.stmts = append(lf.stmts, ivl.Assign(v, rhs))
	return v
}

// regVar returns the current SSA variable for r, creating a block input
// on first read.
func (lf *lifter) regVar(r asm.Reg) ivl.Var {
	if v, ok := lf.cur[r]; ok {
		return v
	}
	v := ivl.Var{Name: r.Name(asm.Width8) + "_0", Type: ivl.Int}
	lf.cur[r] = v
	lf.inputs = append(lf.inputs, v)
	return v
}

// memVar returns the current memory variable, creating the input memory
// on first use.
func (lf *lifter) memVar() ivl.Var {
	if !lf.curMem.IsZero() {
		return lf.curMem
	}
	lf.curMem = ivl.Var{Name: "mem_0", Type: ivl.Mem}
	lf.inputs = append(lf.inputs, lf.curMem)
	return lf.curMem
}

// defReg assigns a new SSA version of register r from val (a 64-bit
// expression, usually a temporary reference).
func (lf *lifter) defReg(r asm.Reg, val ivl.Expr) {
	if r == asm.RSP {
		if lf.spAdjusted {
			lf.spAdjusted = false
		} else {
			lf.spValid = false
		}
	}
	lf.regGen[r]++
	v := ivl.Var{Name: fmt.Sprintf("%s_%d", r.Name(asm.Width8), lf.regGen[r]), Type: ivl.Int}
	lf.stmts = append(lf.stmts, ivl.Assign(v, val))
	lf.cur[r] = v
}

// defMem assigns a new SSA version of the memory.
func (lf *lifter) defMem(val ivl.Expr) {
	lf.memGen++
	v := ivl.Var{Name: fmt.Sprintf("mem_%d", lf.memGen), Type: ivl.Mem}
	lf.stmts = append(lf.stmts, ivl.Assign(v, val))
	lf.curMem = v
}

// readReg reads register r at width w, materializing truncations as
// temporaries (cached per SSA version).
func (lf *lifter) readReg(r asm.Reg, w asm.Width) ivl.Expr {
	v := lf.regVar(r)
	if w == asm.Width8 {
		return ivl.V(v)
	}
	key := fmt.Sprintf("%s/%d", v.Name, w)
	if t, ok := lf.truncCache[key]; ok {
		return ivl.V(t)
	}
	t := lf.fresh(ivl.TruncExpr{Bits: w.Bits(), X: ivl.V(v)})
	lf.truncCache[key] = t
	return ivl.V(t)
}

// effAddr builds and materializes the effective address of a memory
// operand, one temporary per elementary operation.
func (lf *lifter) effAddr(o asm.Operand) ivl.Expr {
	var e ivl.Expr
	if o.Index != asm.NoReg {
		e = ivl.V(lf.regVar(o.Index))
		if o.Scale > 1 {
			e = ivl.V(lf.fresh(ivl.Bin(ivl.Mul, e, ivl.C(uint64(o.Scale)))))
		}
	}
	if o.Base != asm.NoReg {
		base := ivl.V(lf.regVar(o.Base))
		if e == nil {
			e = base
		} else {
			e = ivl.V(lf.fresh(ivl.Bin(ivl.Add, base, e)))
		}
	}
	if o.Disp != 0 || e == nil {
		d := ivl.C(uint64(o.Disp))
		if e == nil {
			e = d
		} else {
			e = ivl.V(lf.fresh(ivl.Bin(ivl.Add, e, d)))
		}
	}
	return e
}

// frameSlotOf recognizes a frame-slot memory operand: [rsp+c] or [rbp+c]
// with the base register still at its block-entry value.
func (lf *lifter) frameSlotOf(o asm.Operand) (frameSlot, bool) {
	if o.Kind != asm.KindMem || o.Index != asm.NoReg {
		return frameSlot{}, false
	}
	switch o.Base {
	case asm.RSP:
		if !lf.spValid {
			return frameSlot{}, false
		}
		// Offsets are relative to rsp at block entry.
		return frameSlot{base: asm.RSP, off: lf.spDelta + o.Disp, w: uint(o.Width)}, true
	case asm.RBP:
		if lf.regGen[asm.RBP] != 0 {
			return frameSlot{}, false // rbp was redefined in this block
		}
		return frameSlot{base: asm.RBP, off: o.Disp, w: uint(o.Width)}, true
	}
	return frameSlot{}, false
}

func slotsOverlap(a, b frameSlot) bool {
	if a.base != b.base {
		// rsp- and rbp-relative slots may alias; be conservative.
		return true
	}
	return a.off < b.off+int64(b.w) && b.off < a.off+int64(a.w)
}

// readOp reads any operand at its width, zero-extended to 64 bits.
func (lf *lifter) readOp(o asm.Operand) (ivl.Expr, error) {
	switch o.Kind {
	case asm.KindReg:
		return lf.readReg(o.Reg, o.Width), nil
	case asm.KindImm:
		return ivl.C(uint64(o.Imm) & o.Width.Mask()), nil
	case asm.KindMem:
		if slot, ok := lf.frameSlotOf(o); ok {
			if e, ok := lf.frameLoad(slot); ok {
				return e, nil
			}
		}
		addr := lf.effAddr(o)
		ld := ivl.LoadExpr{Mem: ivl.V(lf.memVar()), Addr: addr, W: uint(o.Width)}
		return ivl.V(lf.fresh(ld)), nil
	}
	return nil, fmt.Errorf("lift: cannot read operand kind %d", o.Kind)
}

// frameLoad resolves a frame-slot read: an exact in-block spill forwards
// its value; an untouched slot becomes a block input variable (a "memory
// location used before defined"); anything ambiguous falls back to a
// plain load.
func (lf *lifter) frameLoad(slot frameSlot) (ivl.Expr, bool) {
	if v, ok := lf.frameVals[slot]; ok {
		if slot.w < 8 {
			return ivl.V(lf.fresh(ivl.TruncExpr{Bits: slot.w * 8, X: v})), true
		}
		return v, true
	}
	for st := range lf.frameVals {
		if slotsOverlap(st, slot) {
			return nil, false // partial overlap: keep the precise load
		}
	}
	if v, ok := lf.frameInputs[slot]; ok {
		return ivl.V(v), true
	}
	v := ivl.Var{
		Name: fmt.Sprintf("stk_%s_%d_%d", slot.base.Name(asm.Width8), slot.off, slot.w*8),
		Type: ivl.Int,
	}
	lf.frameInputs[slot] = v
	lf.inputs = append(lf.inputs, v)
	return ivl.V(v), true
}

// writeOp writes a 64-bit value expression to a register or memory
// operand, honouring x86 width rules.
func (lf *lifter) writeOp(o asm.Operand, val ivl.Expr) error {
	switch o.Kind {
	case asm.KindReg:
		switch o.Width {
		case asm.Width8:
			lf.defReg(o.Reg, val)
		case asm.Width4:
			t := lf.fresh(ivl.TruncExpr{Bits: 32, X: val})
			lf.defReg(o.Reg, ivl.V(t))
		default:
			// Merge into the existing register value.
			mask := o.Width.Mask()
			old := ivl.V(lf.regVar(o.Reg))
			low := lf.fresh(ivl.Bin(ivl.And, val, ivl.C(mask)))
			hi := lf.fresh(ivl.Bin(ivl.And, old, ivl.C(^mask)))
			merged := lf.fresh(ivl.Bin(ivl.Or, ivl.V(low), ivl.V(hi)))
			lf.defReg(o.Reg, ivl.V(merged))
		}
		return nil
	case asm.KindMem:
		addr := lf.effAddr(o)
		st := ivl.StoreExpr{Mem: ivl.V(lf.memVar()), Addr: addr, Val: val, W: uint(o.Width)}
		lf.defMem(st)
		if slot, ok := lf.frameSlotOf(o); ok {
			// Record the spill for exact-slot forwarding; drop anything
			// it may partially overwrite.
			for st := range lf.frameVals {
				if st != slot && slotsOverlap(st, slot) {
					delete(lf.frameVals, st)
				}
			}
			lf.frameVals[slot] = val
		}
		return nil
	}
	return fmt.Errorf("lift: cannot write operand kind %d", o.Kind)
}

// truncTo truncates an expression result to width w, materializing a
// temporary only when needed.
func (lf *lifter) truncTo(e ivl.Expr, w asm.Width) ivl.Expr {
	if w == asm.Width8 {
		return e
	}
	return ivl.V(lf.fresh(ivl.TruncExpr{Bits: w.Bits(), X: e}))
}

func (lf *lifter) inst(in asm.Inst, callArity int) error {
	switch in.Op {
	case asm.NOP, asm.JMP, asm.RET, asm.LABEL:
		return nil

	case asm.MOV:
		src, err := lf.readOp(in.Src)
		if err != nil {
			return err
		}
		return lf.writeOp(in.Dst, src)

	case asm.MOVZX:
		src, err := lf.readOp(in.Src) // zero-extended by construction
		if err != nil {
			return err
		}
		return lf.writeOp(in.Dst, src)

	case asm.MOVSX:
		src, err := lf.readOp(in.Src)
		if err != nil {
			return err
		}
		t := lf.fresh(ivl.SextExpr{Bits: in.Src.Width.Bits(), X: src})
		return lf.writeOp(in.Dst, ivl.V(t))

	case asm.LEA:
		return lf.writeOp(in.Dst, lf.effAddr(in.Src))

	case asm.ADD, asm.SUB, asm.AND, asm.OR, asm.XOR, asm.IMUL:
		// Constant rsp adjustments keep the stack symbolization alive;
		// any other write to rsp below invalidates it (see defReg).
		if in.Dst.Kind == asm.KindReg && in.Dst.Reg == asm.RSP &&
			in.Src.Kind == asm.KindImm && lf.spValid {
			if in.Op == asm.ADD {
				lf.spDelta += in.Src.Imm
				lf.spAdjusted = true
			} else if in.Op == asm.SUB {
				lf.spDelta -= in.Src.Imm
				lf.spAdjusted = true
			}
		}
		// The xor-zeroing idiom: "xor r, r" defines r := 0 with no data
		// dependence on the old value (decompilers and BAP recognize it
		// the same way).
		if in.Op == asm.XOR && in.Src.Kind == asm.KindReg &&
			in.Dst.Kind == asm.KindReg && in.Src.Reg == in.Dst.Reg &&
			in.Src.Width == in.Dst.Width {
			zero := lf.fresh(ivl.C(0))
			lf.flag = &flagState{op: asm.XOR, w: in.Dst.Width,
				a: ivl.C(0), b: ivl.C(0), res: ivl.V(zero)}
			if in.Dst.Width >= asm.Width4 {
				// Zero-extension of zero is zero: write the register
				// directly, keeping the idiom strand trivially small.
				lf.defReg(in.Dst.Reg, ivl.V(zero))
				return nil
			}
			return lf.writeOp(in.Dst, ivl.V(zero))
		}
		a, err := lf.readOp(in.Dst)
		if err != nil {
			return err
		}
		b, err := lf.readOp(in.Src)
		if err != nil {
			return err
		}
		var op ivl.BinOp
		switch in.Op {
		case asm.ADD:
			op = ivl.Add
		case asm.SUB:
			op = ivl.Sub
		case asm.AND:
			op = ivl.And
		case asm.OR:
			op = ivl.Or
		case asm.XOR:
			op = ivl.Xor
		case asm.IMUL:
			op = ivl.Mul
		}
		res := lf.truncTo(ivl.Bin(op, a, b), in.Dst.Width)
		resV := lf.fresh(res)
		lf.flag = &flagState{op: in.Op, w: in.Dst.Width, a: a, b: b, res: ivl.V(resV)}
		return lf.writeOp(in.Dst, ivl.V(resV))

	case asm.NEG:
		a, err := lf.readOp(in.Dst)
		if err != nil {
			return err
		}
		res := lf.truncTo(ivl.Un(ivl.Neg, a), in.Dst.Width)
		resV := lf.fresh(res)
		lf.flag = &flagState{op: asm.NEG, w: in.Dst.Width, a: ivl.C(0), b: a, res: ivl.V(resV)}
		return lf.writeOp(in.Dst, ivl.V(resV))

	case asm.NOT:
		a, err := lf.readOp(in.Dst)
		if err != nil {
			return err
		}
		res := lf.truncTo(ivl.Un(ivl.Not, a), in.Dst.Width)
		return lf.writeOp(in.Dst, res)

	case asm.SHL, asm.SHR, asm.SAR:
		a, err := lf.readOp(in.Dst)
		if err != nil {
			return err
		}
		b, err := lf.readOp(in.Src)
		if err != nil {
			return err
		}
		var e ivl.Expr
		switch in.Op {
		case asm.SHL:
			e = lf.truncTo(ivl.Bin(ivl.Shl, a, b), in.Dst.Width)
		case asm.SHR:
			e = ivl.Bin(ivl.LShr, a, b) // operand already zero-extended
		case asm.SAR:
			if in.Dst.Width != asm.Width8 {
				s := lf.fresh(ivl.SextExpr{Bits: in.Dst.Width.Bits(), X: a})
				e = lf.truncTo(ivl.Bin(ivl.AShr, ivl.V(s), b), in.Dst.Width)
			} else {
				e = ivl.Bin(ivl.AShr, a, b)
			}
		}
		resV := lf.fresh(e)
		lf.flag = &flagState{op: in.Op, w: in.Dst.Width, a: a, b: b, res: ivl.V(resV)}
		return lf.writeOp(in.Dst, ivl.V(resV))

	case asm.INC, asm.DEC:
		a, err := lf.readOp(in.Dst)
		if err != nil {
			return err
		}
		op := ivl.Add
		aop := asm.INC
		if in.Op == asm.DEC {
			op = ivl.Sub
			aop = asm.DEC
		}
		res := lf.truncTo(ivl.Bin(op, a, ivl.C(1)), in.Dst.Width)
		resV := lf.fresh(res)
		lf.flag = &flagState{op: aop, w: in.Dst.Width, a: a, b: ivl.C(1), res: ivl.V(resV)}
		return lf.writeOp(in.Dst, ivl.V(resV))

	case asm.CMP:
		a, err := lf.readOp(in.Dst)
		if err != nil {
			return err
		}
		b, err := lf.readOp(in.Src)
		if err != nil {
			return err
		}
		lf.flag = &flagState{op: asm.CMP, w: in.Dst.Width, a: a, b: b}
		return nil

	case asm.TEST:
		a, err := lf.readOp(in.Dst)
		if err != nil {
			return err
		}
		b, err := lf.readOp(in.Src)
		if err != nil {
			return err
		}
		lf.flag = &flagState{op: asm.TEST, w: in.Dst.Width, a: a, b: b}
		return nil

	case asm.PUSH:
		v, err := lf.readOp(in.Dst)
		if err != nil {
			return err
		}
		sp := lf.fresh(ivl.Bin(ivl.Sub, ivl.V(lf.regVar(asm.RSP)), ivl.C(8)))
		if lf.spValid {
			lf.spDelta -= 8
			lf.spAdjusted = true
		}
		lf.defReg(asm.RSP, ivl.V(sp))
		st := ivl.StoreExpr{Mem: ivl.V(lf.memVar()), Addr: ivl.V(sp), Val: v, W: 8}
		lf.defMem(st)
		if lf.spValid {
			// Record the pushed value for pop forwarding.
			slot := frameSlot{base: asm.RSP, off: lf.spDelta, w: 8}
			for stSlot := range lf.frameVals {
				if stSlot != slot && slotsOverlap(stSlot, slot) {
					delete(lf.frameVals, stSlot)
				}
			}
			lf.frameVals[slot] = v
		}
		return nil

	case asm.POP:
		sp := lf.regVar(asm.RSP)
		var val ivl.Expr
		if lf.spValid {
			if e, ok := lf.frameLoad(frameSlot{base: asm.RSP, off: lf.spDelta, w: 8}); ok {
				val = e
			}
		}
		if val == nil {
			val = ivl.V(lf.fresh(ivl.LoadExpr{Mem: ivl.V(lf.memVar()), Addr: ivl.V(sp), W: 8}))
		}
		nsp := lf.fresh(ivl.Bin(ivl.Add, ivl.V(sp), ivl.C(8)))
		if lf.spValid {
			lf.spDelta += 8
			lf.spAdjusted = true
		}
		lf.defReg(asm.RSP, ivl.V(nsp))
		return lf.writeOp(in.Dst, val)

	case asm.CQO:
		t := lf.fresh(ivl.Bin(ivl.AShr, ivl.V(lf.regVar(asm.RAX)), ivl.C(63)))
		lf.defReg(asm.RDX, ivl.V(t))
		return nil

	case asm.IDIV:
		// Our toolchains always emit CQO; IDIV.  We lift the pair as a
		// 64-bit signed divide of rax (matching the emulator).
		d, err := lf.readOp(in.Dst)
		if err != nil {
			return err
		}
		n := ivl.V(lf.regVar(asm.RAX))
		q := lf.fresh(ivl.Bin(ivl.SDiv, n, d))
		r := lf.fresh(ivl.Bin(ivl.SRem, n, d))
		lf.defReg(asm.RAX, ivl.V(q))
		lf.defReg(asm.RDX, ivl.V(r))
		return nil

	case asm.CALL:
		if callArity < 0 {
			return fmt.Errorf("lift: call without arity")
		}
		args := make([]ivl.Expr, 0, callArity+1)
		for i := 0; i < callArity; i++ {
			args = append(args, ivl.V(lf.regVar(abiArgRegs[i])))
		}
		ret := lf.fresh(ivl.CallExpr{Sym: fmt.Sprintf("call/%d", callArity), Args: args})
		memArgs := append(append([]ivl.Expr{}, args...), ivl.V(lf.memVar()))
		lf.defMem(ivl.CallExpr{Sym: fmt.Sprintf("callmem/%d", callArity), Args: memArgs})
		lf.defReg(asm.RAX, ivl.V(ret))
		lf.flag = nil // calls clobber flags
		return nil

	case asm.JCC:
		cond, err := lf.cond(in.CC)
		if err != nil {
			return err
		}
		lf.fresh(cond) // materialize the branch condition as a block output
		return nil

	case asm.SETCC:
		cond, err := lf.cond(in.CC)
		if err != nil {
			return err
		}
		c := lf.fresh(cond)
		return lf.writeOp(in.Dst, ivl.V(c))

	case asm.CMOVCC:
		cond, err := lf.cond(in.CC)
		if err != nil {
			return err
		}
		c := lf.fresh(cond)
		src, err := lf.readOp(in.Src)
		if err != nil {
			return err
		}
		old := lf.readReg(in.Dst.Reg, in.Dst.Width)
		t := lf.fresh(ivl.IteExpr{Cond: ivl.V(c), Then: src, Else: old})
		return lf.writeOp(in.Dst, ivl.V(t))
	}
	return fmt.Errorf("lift: unsupported instruction %s", in)
}

// cond reconstructs the 0/1 condition expression for cc from the last
// flag-setting instruction.
func (lf *lifter) cond(cc asm.CC) (ivl.Expr, error) {
	f := lf.flag
	if f == nil {
		return nil, fmt.Errorf("lift: %v condition with no flag setter", cc)
	}
	// sign-extend operands to 64 bits for signed comparisons
	sx := func(e ivl.Expr) ivl.Expr {
		if f.w == asm.Width8 {
			return e
		}
		return ivl.V(lf.fresh(ivl.SextExpr{Bits: f.w.Bits(), X: e}))
	}
	switch f.op {
	case asm.CMP, asm.SUB, asm.NEG:
		// Conditions over the original operands a, b.
		switch cc {
		case asm.E:
			return ivl.Bin(ivl.Eq, f.a, f.b), nil
		case asm.NE:
			return ivl.Bin(ivl.Ne, f.a, f.b), nil
		case asm.L:
			return ivl.Bin(ivl.SLt, sx(f.a), sx(f.b)), nil
		case asm.LE:
			return ivl.Bin(ivl.SLe, sx(f.a), sx(f.b)), nil
		case asm.G:
			return ivl.Bin(ivl.SGt, sx(f.a), sx(f.b)), nil
		case asm.GE:
			return ivl.Bin(ivl.SGe, sx(f.a), sx(f.b)), nil
		case asm.B:
			return ivl.Bin(ivl.ULt, f.a, f.b), nil
		case asm.BE:
			return ivl.Bin(ivl.ULe, f.a, f.b), nil
		case asm.A:
			return ivl.Bin(ivl.UGt, f.a, f.b), nil
		case asm.AE:
			return ivl.Bin(ivl.UGe, f.a, f.b), nil
		case asm.S:
			res := f.res
			if res == nil {
				res = ivl.V(lf.fresh(lf.truncResult(ivl.Bin(ivl.Sub, f.a, f.b), f.w)))
			}
			return ivl.Bin(ivl.SLt, sx(res), ivl.C(0)), nil
		case asm.NS:
			res := f.res
			if res == nil {
				res = ivl.V(lf.fresh(lf.truncResult(ivl.Bin(ivl.Sub, f.a, f.b), f.w)))
			}
			return ivl.Bin(ivl.SGe, sx(res), ivl.C(0)), nil
		}

	case asm.TEST, asm.AND, asm.OR, asm.XOR:
		// Logic ops clear OF and CF, so signed conditions reduce to the
		// result's sign/zeroness and unsigned ones to constants.
		res := f.res
		if res == nil {
			res = ivl.V(lf.fresh(lf.truncResult(ivl.Bin(ivl.And, f.a, f.b), f.w)))
		}
		sres := sx(res)
		switch cc {
		case asm.E, asm.BE:
			return ivl.Bin(ivl.Eq, res, ivl.C(0)), nil
		case asm.NE, asm.A:
			return ivl.Bin(ivl.Ne, res, ivl.C(0)), nil
		case asm.S, asm.L:
			return ivl.Bin(ivl.SLt, sres, ivl.C(0)), nil
		case asm.NS, asm.GE:
			return ivl.Bin(ivl.SGe, sres, ivl.C(0)), nil
		case asm.LE:
			return ivl.Bin(ivl.SLe, sres, ivl.C(0)), nil
		case asm.G:
			return ivl.Bin(ivl.SGt, sres, ivl.C(0)), nil
		case asm.B:
			return ivl.C(0), nil
		case asm.AE:
			return ivl.C(1), nil
		}

	case asm.INC, asm.DEC, asm.ADD, asm.IMUL, asm.SHL, asm.SHR, asm.SAR:
		// Zero/sign conditions are exact; overflow-dependent ones our
		// toolchains never emit after these setters, so fall through to
		// the uninterpreted fallback below for those.
		switch cc {
		case asm.E:
			return ivl.Bin(ivl.Eq, f.res, ivl.C(0)), nil
		case asm.NE:
			return ivl.Bin(ivl.Ne, f.res, ivl.C(0)), nil
		case asm.S:
			return ivl.Bin(ivl.SLt, sx(f.res), ivl.C(0)), nil
		case asm.NS:
			return ivl.Bin(ivl.SGe, sx(f.res), ivl.C(0)), nil
		}
	}
	// Uninterpreted fallback: deterministic, matches only structurally
	// identical flag usage.
	sym := fmt.Sprintf("flags/%s/%s/%d", f.op, cc, f.w)
	args := []ivl.Expr{f.a, f.b}
	return ivl.CallExpr{Sym: sym, Args: args}, nil
}

func (lf *lifter) truncResult(e ivl.Expr, w asm.Width) ivl.Expr {
	if w == asm.Width8 {
		return e
	}
	return ivl.TruncExpr{Bits: w.Bits(), X: e}
}

// LiftPaths lifts every control-flow path of exactly k consecutive basic
// blocks (or shorter paths that dead-end) as a single pseudo-block, the
// "longer paths" extension the paper's §6.6 suggests for small
// procedures whose individual blocks are too short to carry significant
// strands. The concatenated instructions are lifted under the
// single-path execution assumption, exactly like a basic block.
func LiftPaths(g *cfg.Graph, k int) ([]*Block, error) {
	if k < 2 {
		return nil, fmt.Errorf("lift: path length %d; need k >= 2", k)
	}
	// Per-block call arities, in block order (the linear stream order of
	// callArities matches cfg's block carving).
	arities := callArities(g.Proc)
	perBlock := make([][]int, len(g.Blocks))
	idx := 0
	for i, b := range g.Blocks {
		n := 0
		for _, in := range b.Insts {
			if in.Op == asm.CALL {
				n++
			}
		}
		perBlock[i] = arities[idx : idx+n]
		idx += n
	}

	var out []*Block
	var walk func(path []int) error
	walk = func(path []int) error {
		last := g.Blocks[path[len(path)-1]]
		if len(path) == k || len(last.Succs) == 0 {
			if len(path) < 2 {
				return nil // single blocks are covered by LiftProc
			}
			var insts []asm.Inst
			var pathArities []int
			for _, bi := range path {
				insts = append(insts, g.Blocks[bi].Insts...)
				pathArities = append(pathArities, perBlock[bi]...)
			}
			lb, err := LiftBlock(&cfg.Block{Index: path[0], Insts: insts}, pathArities)
			if err != nil {
				return err
			}
			out = append(out, lb)
			return nil
		}
		for _, s := range last.Succs {
			ext := make([]int, len(path)+1)
			copy(ext, path)
			ext[len(path)] = s
			if err := walk(ext); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range g.Blocks {
		if err := walk([]int{i}); err != nil {
			return nil, err
		}
	}
	return out, nil
}
