package compile

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/minic"
)

// Options controls compilation.
type Options struct {
	// OptLevel is 0 (everything on the stack, naive selection), 1
	// (limited register promotion, naive selection) or 2 (full register
	// promotion, idiomatic selection and structural transforms). The
	// paper's corpus default is -O2.
	OptLevel int
}

// O2 returns the default optimization options.
func O2() Options { return Options{OptLevel: 2} }

var argRegs = [6]asm.Reg{asm.RDI, asm.RSI, asm.RDX, asm.RCX, asm.R8, asm.R9}

var calleeSaved = map[asm.Reg]bool{
	asm.RBX: true, asm.R12: true, asm.R13: true, asm.R14: true, asm.R15: true,
}

// Compile compiles one MiniC function under the toolchain.
func Compile(prog *minic.Program, fn string, tc Toolchain, opt Options) (*asm.Proc, error) {
	f, ok := prog.Lookup(fn)
	if !ok {
		return nil, fmt.Errorf("compile: unknown function %q", fn)
	}
	g := &gen{prog: prog, f: f, tc: tc, opt: opt}
	return g.compile()
}

// CompileAll compiles every function of the program.
func CompileAll(prog *minic.Program, tc Toolchain, opt Options) ([]*asm.Proc, error) {
	var out []*asm.Proc
	for _, f := range prog.Funcs {
		p, err := Compile(prog, f.Name, tc, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// home is a local variable's storage location.
type home struct {
	reg   asm.Reg
	inReg bool
	slot  int // frame slot index when !inReg
}

type loopCtx struct {
	condLbl, endLbl string
}

type gen struct {
	prog *minic.Program
	f    *minic.Func
	tc   Toolchain
	opt  Options

	body      []asm.Inst
	homes     map[string]home
	scratch   []asm.Reg // effective scratch registers, preference order
	saved     []asm.Reg // callee-saved registers to preserve
	nslots    int
	pushDepth int
	labelGen  int
	loops     []loopCtx
	err       error
}

func (g *gen) compile() (*asm.Proc, error) {
	g.homes = map[string]home{}

	// Collect locals in declaration order and count uses.
	locals := append([]string{}, g.f.Params...)
	uses := map[string]int{}
	collectLocals(g.f.Body, &locals)
	countUses(g.f.Body, uses)
	for _, p := range g.f.Params {
		uses[p]++ // params are written once at entry
	}

	// Promote the hottest locals to callee-saved registers at -O1 and
	// above (-O1 promotes at most two).
	promoted := map[string]asm.Reg{}
	if g.opt.OptLevel >= 1 {
		ranked := append([]string{}, locals...)
		sort.SliceStable(ranked, func(i, j int) bool { return uses[ranked[i]] > uses[ranked[j]] })
		n := g.tc.MaxRegLocals
		if g.opt.OptLevel == 1 && n > 2 {
			n = 2
		}
		if n > len(g.tc.CalleeOrder) {
			n = len(g.tc.CalleeOrder)
		}
		for i := 0; i < n && i < len(ranked); i++ {
			promoted[ranked[i]] = g.tc.CalleeOrder[i]
		}
	}
	for _, name := range locals {
		if r, ok := promoted[name]; ok {
			g.homes[name] = home{reg: r, inReg: true}
		} else {
			g.homes[name] = home{slot: g.nslots}
			g.nslots++
		}
	}

	// Effective scratch registers: the toolchain's preference order minus
	// registers promoted to locals.
	taken := map[asm.Reg]bool{}
	for _, r := range promoted {
		taken[r] = true
	}
	for _, r := range g.tc.ScratchOrder {
		if !taken[r] {
			g.scratch = append(g.scratch, r)
		}
	}
	if len(g.scratch) < 2 {
		return nil, fmt.Errorf("compile: toolchain %s leaves %d scratch registers", g.tc.Name(), len(g.scratch))
	}

	// Callee-saved registers to preserve: promoted homes plus any
	// callee-saved scratch, in a deterministic order.
	seen := map[asm.Reg]bool{}
	for _, r := range g.tc.CalleeOrder {
		if taken[r] && !seen[r] {
			seen[r] = true
			g.saved = append(g.saved, r)
		}
	}
	for _, r := range g.scratch {
		if calleeSaved[r] && !seen[r] {
			seen[r] = true
			g.saved = append(g.saved, r)
		}
	}

	// Move parameters to their homes.
	for i, p := range g.f.Params {
		h := g.homes[p]
		if h.inReg {
			g.emit(asm.MkInst(asm.MOV, asm.R64(h.reg), asm.R64(argRegs[i])))
		} else {
			g.emit(asm.MkInst(asm.MOV, g.slotOperand(h.slot), asm.R64(argRegs[i])))
		}
	}

	// Body.
	endsWithReturn := g.stmts(g.f.Body)
	if g.err != nil {
		return nil, fmt.Errorf("compile %s (%s): %w", g.f.Name, g.tc.Name(), g.err)
	}
	if !endsWithReturn {
		// Falling off the end returns 0.
		g.emitZero(asm.RAX)
	}

	return g.wrap(), nil
}

// frame layout ------------------------------------------------------------

// savedMovSlots is the number of extra frame slots when callee-saved
// registers are saved with mov (icc style).
func (g *gen) savedMovSlots() int {
	if g.tc.SaveWithMov {
		return len(g.saved)
	}
	return 0
}

func (g *gen) frameBytes() int64 { return int64(8 * (g.nslots + g.savedMovSlots())) }

// slotOperand addresses frame slot i from inside the body.
func (g *gen) slotOperand(i int) asm.Operand {
	if g.tc.OmitFP {
		return asm.Mem(asm.RSP, int64(8*(i+g.pushDepth)), asm.Width8)
	}
	// rbp frame: pushes of callee-saved (push style) sit between rbp and
	// the locals.
	pushedCS := 0
	if !g.tc.SaveWithMov {
		pushedCS = len(g.saved)
	}
	return asm.Mem(asm.RBP, -int64(8*(pushedCS+i+1)), asm.Width8)
}

// savedMovOperand addresses the j-th mov-saved callee register slot.
func (g *gen) savedMovOperand(j int) asm.Operand {
	if g.tc.OmitFP {
		return asm.Mem(asm.RSP, int64(8*(g.nslots+j)), asm.Width8)
	}
	return asm.Mem(asm.RBP, -int64(8*(g.nslots+j+1)), asm.Width8)
}

// wrap adds prologue and epilogue around the generated body.
func (g *gen) wrap() *asm.Proc {
	var out []asm.Inst
	frame := g.frameBytes()
	if !g.tc.OmitFP {
		out = append(out,
			asm.MkUnary(asm.PUSH, asm.R64(asm.RBP)),
			asm.MkInst(asm.MOV, asm.R64(asm.RBP), asm.R64(asm.RSP)),
		)
	}
	if !g.tc.SaveWithMov {
		for _, r := range g.saved {
			out = append(out, asm.MkUnary(asm.PUSH, asm.R64(r)))
		}
	}
	if frame > 0 {
		out = append(out, asm.MkInst(asm.SUB, asm.R64(asm.RSP), asm.Imm(frame)))
	}
	if g.tc.SaveWithMov {
		for j, r := range g.saved {
			op := g.savedMovOperandProlog(j)
			out = append(out, asm.MkInst(asm.MOV, op, asm.R64(r)))
		}
	}

	body := g.body
	if g.opt.OptLevel >= 2 && g.tc.SchedSeed != 0 {
		body = schedule(body, g.tc.SchedSeed)
	}
	out = append(out, body...)

	out = append(out, asm.Label(".Lret"))
	if g.tc.SaveWithMov {
		for j := len(g.saved) - 1; j >= 0; j-- {
			op := g.savedMovOperandProlog(j)
			out = append(out, asm.MkInst(asm.MOV, asm.R64(g.saved[j]), op))
		}
	}
	if frame > 0 {
		out = append(out, asm.MkInst(asm.ADD, asm.R64(asm.RSP), asm.Imm(frame)))
	}
	if !g.tc.SaveWithMov {
		for i := len(g.saved) - 1; i >= 0; i-- {
			out = append(out, asm.MkUnary(asm.POP, asm.R64(g.saved[i])))
		}
	}
	if !g.tc.OmitFP {
		out = append(out, asm.MkUnary(asm.POP, asm.R64(asm.RBP)))
	}
	out = append(out, asm.Inst{Op: asm.RET})
	return &asm.Proc{Name: g.f.Name, Insts: out}
}

// savedMovOperandProlog is savedMovOperand as seen from the prologue and
// epilogue (push depth zero).
func (g *gen) savedMovOperandProlog(j int) asm.Operand {
	saved := g.pushDepth
	g.pushDepth = 0
	op := g.savedMovOperand(j)
	g.pushDepth = saved
	return op
}

// emit helpers -------------------------------------------------------------

func (g *gen) emit(in asm.Inst) { g.body = append(g.body, in) }

func (g *gen) fail(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf(format, args...)
	}
}

func (g *gen) push(r asm.Reg) {
	g.emit(asm.MkUnary(asm.PUSH, asm.R64(r)))
	g.pushDepth++
}

func (g *gen) pop(r asm.Reg) {
	g.emit(asm.MkUnary(asm.POP, asm.R64(r)))
	g.pushDepth--
}

func (g *gen) label() string {
	g.labelGen++
	return fmt.Sprintf(".L%d", g.labelGen)
}

func (g *gen) emitZero(r asm.Reg) {
	if g.tc.ZeroWithMov {
		g.emit(asm.MkInst(asm.MOV, asm.R64(r), asm.Imm(0)))
	} else {
		g.emit(asm.MkInst(asm.XOR, asm.R32(r), asm.R32(r)))
	}
}

// statements ----------------------------------------------------------------

// stmts compiles a statement list and reports whether it definitely ends
// in a return on every path (used for fall-off handling at the top level).
func (g *gen) stmts(list []minic.Stmt) bool {
	ends := false
	for _, s := range list {
		ends = g.stmt(s)
		if g.err != nil {
			return false
		}
	}
	return ends
}

func (g *gen) stmt(s minic.Stmt) (endsWithReturn bool) {
	switch t := s.(type) {
	case *minic.VarDecl:
		g.assignLocal(t.Name, t.Init)
	case *minic.AssignStmt:
		g.assignLocal(t.Name, t.Val)
	case *minic.StoreStmt:
		g.store(t)
	case *minic.IfStmt:
		g.ifStmt(t)
	case *minic.WhileStmt:
		g.whileStmt(t)
	case *minic.ReturnStmt:
		g.expr(t.Val, 0)
		g.emit(asm.MkInst(asm.MOV, asm.R64(asm.RAX), asm.R64(g.scratch[0])))
		g.emit(asm.MkJump(".Lret"))
		return true
	case *minic.ExprStmt:
		g.expr(t.X, 0)
	case *minic.BreakStmt:
		if len(g.loops) == 0 {
			g.fail("break outside loop")
			return false
		}
		g.emit(asm.MkJump(g.loops[len(g.loops)-1].endLbl))
	case *minic.ContinueStmt:
		if len(g.loops) == 0 {
			g.fail("continue outside loop")
			return false
		}
		g.emit(asm.MkJump(g.loops[len(g.loops)-1].condLbl))
	}
	return false
}

// assignLocal compiles "name = val". Register-homed locals are computed
// directly into their home register when the value expression permits it
// (this is what makes -O2 output read like real compiler output: "i = i
// + 1" becomes a single inc on the home register).
func (g *gen) assignLocal(name string, val minic.Expr) {
	h, ok := g.homes[name]
	if !ok {
		g.fail("unknown local %q", name)
		return
	}
	if h.inReg && g.opt.OptLevel >= 1 && g.safeDirect(val, h.reg) {
		g.genInto(val, h.reg, 0)
		return
	}
	g.expr(val, 0)
	if h.inReg {
		g.emit(asm.MkInst(asm.MOV, asm.R64(h.reg), asm.R64(g.scratch[0])))
	} else {
		g.emit(asm.MkInst(asm.MOV, g.slotOperand(h.slot), asm.R64(g.scratch[0])))
	}
}

func widthOf(bytes int) asm.Width { return asm.Width(bytes) }

func (g *gen) store(t *minic.StoreStmt) {
	// Value first (depth 0), then address.
	g.expr(t.Val, 0)
	w := widthOf(t.Width)
	if op, ok := g.foldAddr(t.Addr, w); ok {
		g.emit(asm.MkInst(asm.MOV, op, asm.R(g.scratch[0], w)))
		return
	}
	g.expr(t.Addr, 1)
	g.emit(asm.MkInst(asm.MOV, asm.Mem(g.scratch[1], 0, w), asm.R(g.scratch[0], w)))
}

func (g *gen) ifStmt(t *minic.IfStmt) {
	if g.tc.IfConversion && g.opt.OptLevel >= 2 && g.ifConvert(t) {
		return
	}
	thenLbl, elseLbl, endLbl := g.label(), g.label(), g.label()
	if len(t.Else) == 0 {
		elseLbl = endLbl
	}
	if g.tc.InvertBranches && len(t.Else) > 0 {
		// Lay the else block first.
		g.branch(t.Cond, thenLbl, elseLbl, elseLbl)
		g.emit(asm.Label(elseLbl))
		g.stmts(t.Else)
		g.emit(asm.MkJump(endLbl))
		g.emit(asm.Label(thenLbl))
		g.stmts(t.Then)
		g.emit(asm.Label(endLbl))
		return
	}
	g.branch(t.Cond, thenLbl, elseLbl, thenLbl)
	g.emit(asm.Label(thenLbl))
	g.stmts(t.Then)
	if len(t.Else) > 0 {
		g.emit(asm.MkJump(endLbl))
		g.emit(asm.Label(elseLbl))
		g.stmts(t.Else)
	}
	g.emit(asm.Label(endLbl))
}

// ifConvert recognizes "if (a <op> b) x = e1; [else x = e2;]" with pure
// condition and arms and compiles it to a cmov, eliminating the diamond
// (clang's if-conversion). Reports whether it emitted code.
func (g *gen) ifConvert(t *minic.IfStmt) bool {
	cond, ok := t.Cond.(*minic.Binary)
	if !ok {
		return false
	}
	cc, ok := ccOf[cond.Op]
	if !ok || !pureExpr(cond.X) || !pureExpr(cond.Y) {
		return false
	}
	asgn := func(list []minic.Stmt) (*minic.AssignStmt, bool) {
		if len(list) != 1 {
			return nil, false
		}
		a, ok := list[0].(*minic.AssignStmt)
		if !ok || !pureExpr(a.Val) {
			return nil, false
		}
		return a, true
	}
	thenA, ok := asgn(t.Then)
	if !ok {
		return false
	}
	var elseVal minic.Expr = &minic.Ident{Name: thenA.Name}
	if len(t.Else) > 0 {
		elseA, ok := asgn(t.Else)
		if !ok || elseA.Name != thenA.Name {
			return false
		}
		elseVal = elseA.Val
	}
	if len(g.scratch) < 3 {
		return false
	}
	// Evaluate both arms first (ALU ops clobber flags), then compare,
	// then select.
	g.genInto(elseVal, g.scratch[0], 1)
	g.genInto(thenA.Val, g.scratch[1], 2)
	g.genInto(cond.X, g.scratch[2], 3)
	if lit, isLit := cond.Y.(*minic.NumLit); isLit && fitsImm(lit.Val) {
		g.emit(asm.MkInst(asm.CMP, asm.R64(g.scratch[2]), asm.Imm(lit.Val)))
	} else {
		g.push(g.scratch[2])
		g.genInto(cond.Y, g.scratch[2], 3)
		g.pop(asm.RAX)
		g.emit(asm.MkInst(asm.CMP, asm.R64(asm.RAX), asm.R64(g.scratch[2])))
	}
	g.emit(asm.Inst{Op: asm.CMOVCC, CC: cc, Dst: asm.R64(g.scratch[0]), Src: asm.R64(g.scratch[1])})
	h, ok := g.homes[thenA.Name]
	if !ok {
		g.fail("unknown local %q", thenA.Name)
		return true
	}
	if h.inReg {
		g.emit(asm.MkInst(asm.MOV, asm.R64(h.reg), asm.R64(g.scratch[0])))
	} else {
		g.emit(asm.MkInst(asm.MOV, g.slotOperand(h.slot), asm.R64(g.scratch[0])))
	}
	return true
}

func (g *gen) whileStmt(t *minic.WhileStmt) {
	condLbl, bodyLbl, endLbl := g.label(), g.label(), g.label()
	g.loops = append(g.loops, loopCtx{condLbl: condLbl, endLbl: endLbl})
	defer func() { g.loops = g.loops[:len(g.loops)-1] }()

	if g.tc.GuardedLoops && g.opt.OptLevel >= 2 {
		// gcc-style loop inversion: an entry guard plus a bottom test.
		// The condition code is emitted twice, changing the CFG shape
		// relative to both the rotated and the top-test styles.
		g.branch(t.Cond, bodyLbl, endLbl, bodyLbl)
		g.emit(asm.Label(bodyLbl))
		g.stmts(t.Body)
		g.emit(asm.Label(condLbl)) // continue target
		g.branch(t.Cond, bodyLbl, endLbl, endLbl)
		g.emit(asm.Label(endLbl))
		return
	}
	if g.tc.RotateLoops {
		// gcc style: entry jump to the bottom test.
		g.emit(asm.MkJump(condLbl))
		g.emit(asm.Label(bodyLbl))
		g.stmts(t.Body)
		g.emit(asm.Label(condLbl))
		g.branch(t.Cond, bodyLbl, endLbl, endLbl)
		g.emit(asm.Label(endLbl))
		return
	}
	// top-test style
	g.emit(asm.Label(condLbl))
	g.branch(t.Cond, bodyLbl, endLbl, bodyLbl)
	g.emit(asm.Label(bodyLbl))
	g.stmts(t.Body)
	g.emit(asm.MkJump(condLbl))
	g.emit(asm.Label(endLbl))
}

// pureExpr reports whether e can be evaluated eagerly: no calls (side
// effects) and no division (traps on zero). Loads are pure in this ISA.
func pureExpr(e minic.Expr) bool {
	switch t := e.(type) {
	case *minic.NumLit, *minic.Ident:
		return true
	case *minic.Unary:
		return pureExpr(t.X)
	case *minic.Sext:
		return pureExpr(t.X)
	case *minic.Load:
		return pureExpr(t.Addr)
	case *minic.Binary:
		if t.Op == minic.OpDiv || t.Op == minic.OpRem {
			return false
		}
		return pureExpr(t.X) && pureExpr(t.Y)
	}
	return false
}

// genBool compiles a pure boolean expression to a 0/1 value in dst with
// setcc and bitwise ops, without branches (the clang idiom enabled by
// BranchlessLogic).
func (g *gen) genBool(e minic.Expr, dst asm.Reg, free int) {
	if t, ok := e.(*minic.Binary); ok {
		switch t.Op {
		case minic.OpLAnd, minic.OpLOr:
			op := asm.AND
			if t.Op == minic.OpLOr {
				op = asm.OR
			}
			g.withTwoBool(t.X, t.Y, dst, free, op)
			return
		}
		if cc, ok := ccOf[t.Op]; ok {
			g.withTwo(t.X, t.Y, dst, free, func(a asm.Reg, b asm.Operand) {
				g.emit(asm.MkInst(asm.CMP, asm.R64(a), b))
				g.emit(asm.Inst{Op: asm.SETCC, CC: cc, Dst: asm.R8L(a)})
				g.emit(asm.MkInst(asm.MOVZX, asm.R32(a), asm.R8L(a)))
			})
			return
		}
	}
	if t, ok := e.(*minic.Unary); ok && t.Op == minic.OpLNot {
		g.genBool(t.X, dst, free)
		g.emit(asm.MkInst(asm.XOR, asm.R64(dst), asm.Imm(1)))
		return
	}
	// Generic truthiness.
	g.genInto(e, dst, free)
	g.testZero(dst)
	g.emit(asm.Inst{Op: asm.SETCC, CC: asm.NE, Dst: asm.R8L(dst)})
	g.emit(asm.MkInst(asm.MOVZX, asm.R32(dst), asm.R8L(dst)))
}

// withTwoBool combines two boolean subexpressions with a bitwise op.
func (g *gen) withTwoBool(x, y minic.Expr, dst asm.Reg, free int, op asm.Op) {
	if free < len(g.scratch) && g.scratch[free] != dst {
		b := g.scratch[free]
		g.genBool(x, dst, free)
		g.genBool(y, b, free+1)
		g.emit(asm.MkInst(op, asm.R64(dst), asm.R64(b)))
		return
	}
	g.genBool(x, dst, free)
	g.push(dst)
	g.genBool(y, dst, free)
	g.pop(asm.RAX)
	g.emit(asm.MkInst(op, asm.R64(asm.RAX), asm.R64(dst)))
	g.emit(asm.MkInst(asm.MOV, asm.R64(dst), asm.R64(asm.RAX)))
}

// branch compiles e as control flow: jump to trueLbl when e != 0, else to
// falseLbl. next names the label that immediately follows, letting the
// fall-through jump be elided.
func (g *gen) branch(e minic.Expr, trueLbl, falseLbl, next string) {
	// Clang-style: pure short-circuit chains become one branchless 0/1
	// value followed by a single conditional jump.
	if g.tc.BranchlessLogic && g.opt.OptLevel >= 2 {
		if t, ok := e.(*minic.Binary); ok &&
			(t.Op == minic.OpLAnd || t.Op == minic.OpLOr) && pureExpr(e) {
			g.genBool(e, g.scratch[0], 1)
			g.testZero(g.scratch[0])
			g.emitCondJump(asm.NE, trueLbl, falseLbl, next)
			return
		}
	}
	switch t := e.(type) {
	case *minic.Binary:
		if cc, ok := ccOf[t.Op]; ok {
			// Left side: a register-homed local compares in place.
			var left asm.Reg
			if op, isLeaf := g.operandLeaf(t.X); isLeaf && op.Kind == asm.KindReg && g.opt.OptLevel >= 2 {
				left = op.Reg
			} else {
				g.expr(t.X, 0)
				left = g.scratch[0]
			}
			if op, isLeaf := g.operandLeaf(t.Y); isLeaf && g.opt.OptLevel >= 2 {
				g.emit(asm.MkInst(asm.CMP, asm.R64(left), op))
			} else if lit, isLit := t.Y.(*minic.NumLit); isLit && fitsImm(lit.Val) {
				g.emit(asm.MkInst(asm.CMP, asm.R64(left), asm.Imm(lit.Val)))
			} else {
				g.expr(t.Y, 1)
				g.emit(asm.MkInst(asm.CMP, asm.R64(left), asm.R64(g.scratch[1])))
			}
			g.emitCondJump(cc, trueLbl, falseLbl, next)
			return
		}
		switch t.Op {
		case minic.OpLAnd:
			mid := g.label()
			g.branch(t.X, mid, falseLbl, mid)
			g.emit(asm.Label(mid))
			g.branch(t.Y, trueLbl, falseLbl, next)
			return
		case minic.OpLOr:
			mid := g.label()
			g.branch(t.X, trueLbl, mid, mid)
			g.emit(asm.Label(mid))
			g.branch(t.Y, trueLbl, falseLbl, next)
			return
		}
	case *minic.Unary:
		if t.Op == minic.OpLNot {
			g.branch(t.X, falseLbl, trueLbl, next)
			return
		}
	}
	// Generic truthiness.
	g.expr(e, 0)
	g.testZero(g.scratch[0])
	g.emitCondJump(asm.NE, trueLbl, falseLbl, next)
}

func (g *gen) testZero(r asm.Reg) {
	if g.tc.CmpZero {
		g.emit(asm.MkInst(asm.CMP, asm.R64(r), asm.Imm(0)))
	} else {
		g.emit(asm.MkInst(asm.TEST, asm.R64(r), asm.R64(r)))
	}
}

func (g *gen) emitCondJump(cc asm.CC, trueLbl, falseLbl, next string) {
	if trueLbl == next {
		g.emit(asm.MkJcc(cc.Negate(), falseLbl))
		return
	}
	g.emit(asm.MkJcc(cc, trueLbl))
	if falseLbl != next {
		g.emit(asm.MkJump(falseLbl))
	}
}

var ccOf = map[minic.BinOp]asm.CC{
	minic.OpEq: asm.E, minic.OpNe: asm.NE,
	minic.OpLt: asm.L, minic.OpLe: asm.LE, minic.OpGt: asm.G, minic.OpGe: asm.GE,
	minic.OpULt: asm.B, minic.OpULe: asm.BE, minic.OpUGt: asm.A, minic.OpUGe: asm.AE,
}

func fitsImm(v int64) bool { return v >= -(1<<31) && v < (1<<31) }

// expressions ----------------------------------------------------------------

// expr compiles e, leaving the value in g.scratch[d] (temporaries use
// scratch registers above d).
func (g *gen) expr(e minic.Expr, d int) {
	if d >= len(g.scratch) {
		g.fail("internal: scratch depth overflow")
		return
	}
	g.genInto(e, g.scratch[d], d+1)
}

// refsLocalReg reports whether e reads a local homed in reg.
func (g *gen) refsLocalReg(e minic.Expr, reg asm.Reg) bool {
	switch t := e.(type) {
	case *minic.Ident:
		h := g.homes[t.Name]
		return h.inReg && h.reg == reg
	case *minic.Binary:
		return g.refsLocalReg(t.X, reg) || g.refsLocalReg(t.Y, reg)
	case *minic.Unary:
		return g.refsLocalReg(t.X, reg)
	case *minic.Load:
		return g.refsLocalReg(t.Addr, reg)
	case *minic.Sext:
		return g.refsLocalReg(t.X, reg)
	case *minic.Call:
		for _, a := range t.Args {
			if g.refsLocalReg(a, reg) {
				return true
			}
		}
	}
	return false
}

// safeDirect reports whether e can be compiled directly into dst even
// though dst is the home of a local that e may read: dst must only be
// read before the first write to it. Left spines are evaluated first, so
// a left-spine read is safe; calls and short-circuit forms write dst
// last and are always safe.
func (g *gen) safeDirect(e minic.Expr, dst asm.Reg) bool {
	switch t := e.(type) {
	case *minic.NumLit, *minic.Ident, *minic.Call:
		return true
	case *minic.Unary:
		return g.safeDirect(t.X, dst)
	case *minic.Sext:
		return g.safeDirect(t.X, dst)
	case *minic.Load:
		return g.safeDirect(t.Addr, dst)
	case *minic.Binary:
		if t.Op == minic.OpLAnd || t.Op == minic.OpLOr {
			return true // dst written only at the join labels
		}
		return g.safeDirect(t.X, dst) && !g.refsLocalReg(t.Y, dst)
	}
	return false
}

// genInto compiles e into dst; scratch registers from index free upward
// are available for temporaries. dst is never rax or rdx (those are
// reserved for division and returns).
func (g *gen) genInto(e minic.Expr, dst asm.Reg, free int) {
	if g.err != nil {
		return
	}
	switch t := e.(type) {
	case *minic.NumLit:
		if t.Val == 0 {
			g.emitZero(dst)
		} else {
			g.emit(asm.MkInst(asm.MOV, asm.R64(dst), asm.Imm(t.Val)))
		}

	case *minic.Ident:
		h := g.homes[t.Name]
		if h.inReg {
			if h.reg != dst {
				g.emit(asm.MkInst(asm.MOV, asm.R64(dst), asm.R64(h.reg)))
			}
		} else {
			g.emit(asm.MkInst(asm.MOV, asm.R64(dst), g.slotOperand(h.slot)))
		}

	case *minic.Unary:
		g.genInto(t.X, dst, free)
		switch t.Op {
		case minic.OpNeg:
			g.emit(asm.MkUnary(asm.NEG, asm.R64(dst)))
		case minic.OpNot:
			g.emit(asm.MkUnary(asm.NOT, asm.R64(dst)))
		case minic.OpLNot:
			g.testZero(dst)
			g.emit(asm.Inst{Op: asm.SETCC, CC: asm.E, Dst: asm.R8L(dst)})
			g.emit(asm.MkInst(asm.MOVZX, asm.R32(dst), asm.R8L(dst)))
		}

	case *minic.Binary:
		g.binary(t, dst, free)

	case *minic.Load:
		w := widthOf(t.Width)
		var mem asm.Operand
		if op, ok := g.foldAddr(t.Addr, w); ok {
			mem = op
		} else {
			g.genInto(t.Addr, dst, free)
			mem = asm.Mem(dst, 0, w)
		}
		if t.Width == 8 {
			g.emit(asm.MkInst(asm.MOV, asm.R64(dst), mem))
		} else {
			g.emit(asm.MkInst(asm.MOVZX, asm.R32(dst), mem))
		}

	case *minic.Sext:
		g.genInto(t.X, dst, free)
		g.emit(asm.MkInst(asm.MOVSX, asm.R64(dst), asm.R(dst, widthOf(t.Width))))

	case *minic.Call:
		g.call(t, dst, free)

	default:
		g.fail("cannot compile expression %T", e)
	}
}

// binary compiles a binary operator into dst.
func (g *gen) binary(t *minic.Binary, dst asm.Reg, free int) {
	// Pure short-circuit chains under BranchlessLogic become setcc and
	// bitwise ops with no branches at all.
	if (t.Op == minic.OpLAnd || t.Op == minic.OpLOr) &&
		g.tc.BranchlessLogic && g.opt.OptLevel >= 2 && pureExpr(t) {
		g.genBool(t, dst, free)
		return
	}
	// Short-circuit operators materialize 0/1 through branches. branch
	// compiles its condition at scratch depth 0, so live partial results
	// are preserved around it.
	if t.Op == minic.OpLAnd || t.Op == minic.OpLOr {
		for i := 0; i < free; i++ {
			if g.scratch[i] != dst {
				g.push(g.scratch[i])
			}
		}
		trueLbl, falseLbl, endLbl := g.label(), g.label(), g.label()
		g.branch(t, trueLbl, falseLbl, trueLbl)
		g.emit(asm.Label(trueLbl))
		g.emit(asm.MkInst(asm.MOV, asm.R64(dst), asm.Imm(1)))
		g.emit(asm.MkJump(endLbl))
		g.emit(asm.Label(falseLbl))
		g.emitZero(dst)
		g.emit(asm.Label(endLbl))
		for i := free - 1; i >= 0; i-- {
			if g.scratch[i] != dst {
				g.pop(g.scratch[i])
			}
		}
		return
	}

	// Constant right operands get folded instruction selections.
	if lit, ok := t.Y.(*minic.NumLit); ok && fitsImm(lit.Val) {
		g.genInto(t.X, dst, free)
		g.binaryWithConst(t.Op, dst, lit.Val)
		return
	}

	// Comparisons producing a value.
	if cc, ok := ccOf[t.Op]; ok {
		g.withTwo(t.X, t.Y, dst, free, func(a asm.Reg, b asm.Operand) {
			g.emit(asm.MkInst(asm.CMP, asm.R64(a), b))
			g.emit(asm.Inst{Op: asm.SETCC, CC: cc, Dst: asm.R8L(a)})
			g.emit(asm.MkInst(asm.MOVZX, asm.R32(a), asm.R8L(a)))
		})
		return
	}

	switch t.Op {
	case minic.OpDiv, minic.OpRem:
		g.withTwo(t.X, t.Y, dst, free, func(a asm.Reg, b asm.Operand) {
			g.emit(asm.MkInst(asm.MOV, asm.R64(asm.RAX), asm.R64(a)))
			g.emit(asm.Inst{Op: asm.CQO})
			g.emit(asm.MkUnary(asm.IDIV, b))
			res := asm.RAX
			if t.Op == minic.OpRem {
				res = asm.RDX
			}
			g.emit(asm.MkInst(asm.MOV, asm.R64(a), asm.R64(res)))
		})
	case minic.OpShl, minic.OpShr, minic.OpShrU:
		op := asm.SHL
		switch t.Op {
		case minic.OpShr:
			op = asm.SAR // MiniC >> is arithmetic
		case minic.OpShrU:
			op = asm.SHR
		}
		g.withTwo(t.X, t.Y, dst, free, func(a asm.Reg, b asm.Operand) {
			g.emit(asm.MkInst(op, asm.R64(a), b))
		})
	default:
		op, ok := simpleOp[t.Op]
		if !ok {
			g.fail("bad binary operator %v", t.Op)
			return
		}
		g.withTwo(t.X, t.Y, dst, free, func(a asm.Reg, b asm.Operand) {
			g.emit(asm.MkInst(op, asm.R64(a), b))
		})
	}
}

var simpleOp = map[minic.BinOp]asm.Op{
	minic.OpAdd: asm.ADD, minic.OpSub: asm.SUB, minic.OpMul: asm.IMUL,
	minic.OpAnd: asm.AND, minic.OpOr: asm.OR, minic.OpXor: asm.XOR,
}

// operandLeaf returns a direct operand for expressions that need no code:
// integer literals and homed locals (register or frame slot). Users must
// only read the operand (ALU source position).
func (g *gen) operandLeaf(e minic.Expr) (asm.Operand, bool) {
	switch t := e.(type) {
	case *minic.NumLit:
		if fitsImm(t.Val) {
			return asm.Imm(t.Val), true
		}
	case *minic.Ident:
		h, ok := g.homes[t.Name]
		if !ok {
			return asm.Operand{}, false
		}
		if h.inReg {
			return asm.R64(h.reg), true
		}
		return g.slotOperand(h.slot), true
	}
	return asm.Operand{}, false
}

// withTwo evaluates x into dst and y into the next free scratch register
// (spilling through the stack and rax when scratch runs out), runs fn on
// the two registers (fn leaves its result in the first), and ensures the
// result ends in dst.
func (g *gen) withTwo(x, y minic.Expr, dst asm.Reg, free int, fn func(a asm.Reg, b asm.Operand)) {
	// A homed right operand needs no code: use it directly as the ALU
	// source, the way real compilers fold locals into instructions.
	if op, ok := g.operandLeaf(y); ok && g.opt.OptLevel >= 2 {
		if !(op.Kind == asm.KindReg && op.Reg == dst) {
			g.genInto(x, dst, free)
			fn(dst, op)
			return
		}
	}
	if free < len(g.scratch) {
		b := g.scratch[free]
		if b == dst {
			// dst is itself scratch[free]; take the next one.
			if free+1 < len(g.scratch) {
				b = g.scratch[free+1]
				g.genInto(x, dst, free+1)
				g.genInto(y, b, free+2)
				fn(dst, asm.R64(b))
				return
			}
		} else {
			g.genInto(x, dst, free)
			g.genInto(y, b, free+1)
			fn(dst, asm.R64(b))
			return
		}
	}
	// Spill: x goes to the stack while y is computed into dst.
	g.genInto(x, dst, free)
	g.push(dst)
	g.genInto(y, dst, free)
	g.pop(asm.RAX)
	fn(asm.RAX, asm.R64(dst))
	g.emit(asm.MkInst(asm.MOV, asm.R64(dst), asm.R64(asm.RAX)))
}

// binaryWithConst lowers op with a constant right operand, applying the
// toolchain's instruction-selection idioms.
func (g *gen) binaryWithConst(op minic.BinOp, dst asm.Reg, c int64) {
	switch op {
	case minic.OpAdd:
		switch {
		case c == 1 && g.tc.UseIncDec:
			g.emit(asm.MkUnary(asm.INC, asm.R64(dst)))
		case c == -1 && g.tc.UseIncDec:
			g.emit(asm.MkUnary(asm.DEC, asm.R64(dst)))
		case g.tc.UseLeaAdd && g.opt.OptLevel >= 2:
			g.emit(asm.MkInst(asm.LEA, asm.R64(dst), asm.Mem(dst, c, asm.Width8)))
		default:
			g.emit(asm.MkInst(asm.ADD, asm.R64(dst), asm.Imm(c)))
		}
	case minic.OpSub:
		switch {
		case c == 1 && g.tc.UseIncDec:
			g.emit(asm.MkUnary(asm.DEC, asm.R64(dst)))
		case g.tc.UseLeaAdd && g.opt.OptLevel >= 2:
			g.emit(asm.MkInst(asm.LEA, asm.R64(dst), asm.Mem(dst, -c, asm.Width8)))
		default:
			g.emit(asm.MkInst(asm.SUB, asm.R64(dst), asm.Imm(c)))
		}
	case minic.OpMul:
		g.mulConst(dst, c)
	case minic.OpAnd:
		g.emit(asm.MkInst(asm.AND, asm.R64(dst), asm.Imm(c)))
	case minic.OpOr:
		g.emit(asm.MkInst(asm.OR, asm.R64(dst), asm.Imm(c)))
	case minic.OpXor:
		g.emit(asm.MkInst(asm.XOR, asm.R64(dst), asm.Imm(c)))
	case minic.OpShl:
		g.emit(asm.MkInst(asm.SHL, asm.R64(dst), asm.Imm(c&63)))
	case minic.OpShr:
		g.emit(asm.MkInst(asm.SAR, asm.R64(dst), asm.Imm(c&63)))
	case minic.OpShrU:
		g.emit(asm.MkInst(asm.SHR, asm.R64(dst), asm.Imm(c&63)))
	case minic.OpDiv, minic.OpRem:
		// No constant-divisor tricks: mov the constant and divide.
		g.emit(asm.MkInst(asm.MOV, asm.R64(asm.RAX), asm.R64(dst)))
		g.emit(asm.MkInst(asm.MOV, asm.R64(dst), asm.Imm(c)))
		g.emit(asm.Inst{Op: asm.CQO})
		g.emit(asm.MkUnary(asm.IDIV, asm.R64(dst)))
		res := asm.RAX
		if op == minic.OpRem {
			res = asm.RDX
		}
		g.emit(asm.MkInst(asm.MOV, asm.R64(dst), asm.R64(res)))
	default:
		if cc, ok := ccOf[op]; ok {
			g.emit(asm.MkInst(asm.CMP, asm.R64(dst), asm.Imm(c)))
			g.emit(asm.Inst{Op: asm.SETCC, CC: cc, Dst: asm.R8L(dst)})
			g.emit(asm.MkInst(asm.MOVZX, asm.R32(dst), asm.R8L(dst)))
			return
		}
		g.fail("bad const binary operator %v", op)
	}
}

// mulConst lowers dst *= c per the toolchain's style.
func (g *gen) mulConst(dst asm.Reg, c int64) {
	if g.opt.OptLevel < 2 || g.tc.Mul == MulImul {
		g.emit(asm.MkInst(asm.IMUL, asm.R64(dst), asm.Imm(c)))
		return
	}
	switch {
	case c > 0 && c&(c-1) == 0: // power of two
		sh := int64(0)
		for v := c; v > 1; v >>= 1 {
			sh++
		}
		if g.tc.Mul == MulLeaPreferred && (c == 2 || c == 4 || c == 8) {
			g.emit(asm.MkInst(asm.LEA, asm.R64(dst),
				asm.MemIdx(asm.NoReg, dst, uint8(c), 0, asm.Width8)))
		} else {
			g.emit(asm.MkInst(asm.SHL, asm.R64(dst), asm.Imm(sh)))
		}
	case c == 3 || c == 5 || c == 9:
		g.emit(asm.MkInst(asm.LEA, asm.R64(dst),
			asm.MemIdx(dst, dst, uint8(c-1), 0, asm.Width8)))
	default:
		g.emit(asm.MkInst(asm.IMUL, asm.R64(dst), asm.Imm(c)))
	}
}

// foldAddr recognizes addressing patterns over register-homed locals and
// folds them into a memory operand (when the toolchain folds addressing).
// Folding succeeds only with no code emitted.
func (g *gen) foldAddr(e minic.Expr, w asm.Width) (asm.Operand, bool) {
	if !g.tc.FoldAddressing || g.opt.OptLevel < 2 {
		return asm.Operand{}, false
	}
	regOf := func(x minic.Expr) (asm.Reg, bool) {
		id, ok := x.(*minic.Ident)
		if !ok {
			return 0, false
		}
		h := g.homes[id.Name]
		if !h.inReg {
			return 0, false
		}
		return h.reg, true
	}
	switch t := e.(type) {
	case *minic.Ident:
		if r, ok := regOf(t); ok {
			return asm.Mem(r, 0, w), true
		}
	case *minic.Binary:
		if t.Op != minic.OpAdd {
			break
		}
		base, baseOK := regOf(t.X)
		if !baseOK {
			break
		}
		switch y := t.Y.(type) {
		case *minic.NumLit:
			if fitsImm(y.Val) {
				return asm.Mem(base, y.Val, w), true
			}
		case *minic.Ident:
			if idx, ok := regOf(y); ok {
				return asm.MemIdx(base, idx, 1, 0, w), true
			}
		case *minic.Binary:
			if y.Op == minic.OpMul {
				if idx, ok := regOf(y.X); ok {
					if sc, isLit := y.Y.(*minic.NumLit); isLit &&
						(sc.Val == 2 || sc.Val == 4 || sc.Val == 8) {
						return asm.MemIdx(base, idx, uint8(sc.Val), 0, w), true
					}
				}
			}
		}
	}
	return asm.Operand{}, false
}

// call compiles a function call into dst. Partial results held in
// scratch registers below free are preserved across the call; argument
// values travel through the stack so that every argument can use the
// full scratch set.
func (g *gen) call(t *minic.Call, dst asm.Reg, free int) {
	var saved []asm.Reg
	for i := 0; i < free && i < len(g.scratch); i++ {
		if g.scratch[i] != dst {
			saved = append(saved, g.scratch[i])
		}
	}
	for _, r := range saved {
		g.push(r)
	}
	// Evaluate arguments left to right onto the stack.
	for _, a := range t.Args {
		g.expr(a, 0)
		g.push(g.scratch[0])
	}
	// Pop into the ABI registers, last argument first.
	for i := len(t.Args) - 1; i >= 0; i-- {
		g.pop(argRegs[i])
	}
	g.emit(asm.MkCall(t.Name))
	g.emit(asm.MkInst(asm.MOV, asm.R64(dst), asm.R64(asm.RAX)))
	for i := len(saved) - 1; i >= 0; i-- {
		g.pop(saved[i])
	}
}

// collectLocals appends declared variable names in declaration order.
// Same-named variables in sibling scopes share a home; their lifetimes
// are disjoint, so the sharing is safe.
func collectLocals(stmts []minic.Stmt, out *[]string) {
	for _, s := range stmts {
		switch t := s.(type) {
		case *minic.VarDecl:
			*out = append(*out, t.Name)
		case *minic.IfStmt:
			collectLocals(t.Then, out)
			collectLocals(t.Else, out)
		case *minic.WhileStmt:
			collectLocals(t.Body, out)
		}
	}
}

// countUses tallies identifier reads and writes per local.
func countUses(stmts []minic.Stmt, uses map[string]int) {
	var walkExpr func(e minic.Expr)
	walkExpr = func(e minic.Expr) {
		switch t := e.(type) {
		case *minic.Ident:
			uses[t.Name]++
		case *minic.Binary:
			walkExpr(t.X)
			walkExpr(t.Y)
		case *minic.Unary:
			walkExpr(t.X)
		case *minic.Load:
			walkExpr(t.Addr)
		case *minic.Sext:
			walkExpr(t.X)
		case *minic.Call:
			for _, a := range t.Args {
				walkExpr(a)
			}
		}
	}
	for _, s := range stmts {
		switch t := s.(type) {
		case *minic.VarDecl:
			uses[t.Name]++
			walkExpr(t.Init)
		case *minic.AssignStmt:
			uses[t.Name]++
			walkExpr(t.Val)
		case *minic.StoreStmt:
			walkExpr(t.Addr)
			walkExpr(t.Val)
		case *minic.IfStmt:
			walkExpr(t.Cond)
			countUses(t.Then, uses)
			countUses(t.Else, uses)
		case *minic.WhileStmt:
			walkExpr(t.Cond)
			countUses(t.Body, uses)
		case *minic.ReturnStmt:
			walkExpr(t.Val)
		case *minic.ExprStmt:
			walkExpr(t.X)
		}
	}
}
