package compile

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/minic"
)

// testPrograms exercises every language feature: arithmetic, bitwise ops,
// signed/unsigned comparisons, memory, control flow, calls, deep
// expressions (spills), and division.
var testPrograms = []struct {
	name string
	src  string
	fn   string
	args int  // number of integer args
	mem  bool // function takes a buffer pointer as first arg
}{
	{
		name: "arith",
		src: `func f(a, b) {
			var x = a * 2 + b;
			var y = x - b * 3;
			return x ^ y + (a & 0xFF);
		}`,
		fn: "f", args: 2,
	},
	{
		name: "compare",
		src: `func f(a, b) {
			var r = 0;
			if (a < b) { r = r + 1; }
			if (a <u b) { r = r + 2; }
			if (a >= b) { r = r + 4; }
			if (a == b) { r = r + 8; }
			if (a != 0 && b != 0) { r = r + 16; }
			if (a > 100 || b > 100) { r = r + 32; }
			return r;
		}`,
		fn: "f", args: 2,
	},
	{
		name: "loops",
		src: `func f(n, step) {
			var s = 0;
			var i = 0;
			var bound = n & 0x3F;
			while (i < bound) {
				s = s + i * step;
				i = i + 1;
			}
			return s;
		}`,
		fn: "f", args: 2,
	},
	{
		name: "breakcontinue",
		src: `func f(n) {
			var limit = n & 0x1F;
			var i = 0;
			var s = 0;
			while (1) {
				i = i + 1;
				if (i > limit) { break; }
				if (i % 3 == 0) { continue; }
				s = s + i;
			}
			return s;
		}`,
		fn: "f", args: 1,
	},
	{
		name: "division",
		src: `func f(a, b) {
			var d = (b & 0xFF) + 1;
			return a / d + a % d;
		}`,
		fn: "f", args: 2,
	},
	{
		name: "shifts",
		src: `func f(a, b) {
			var s = b & 31;
			return (a << s) ^ (a >> s) ^ (a >> 3);
		}`,
		fn: "f", args: 2,
	},
	{
		name: "mulstyles",
		src: `func f(a) {
			return a*2 + a*3 + a*4 + a*5 + a*7 + a*8 + a*9 + a*16 + a*100;
		}`,
		fn: "f", args: 1,
	},
	{
		name: "deepexpr",
		src: `func f(a, b) {
			return ((a + 1) * (b + 2) + (a - 3) * (b - 4)) ^ ((a * b + 5) * ((a ^ b) + ((a & b) | 7)));
		}`,
		fn: "f", args: 2,
	},
	{
		name: "memory",
		src: `func f(buf, n) {
			var i = 0;
			var cnt = n & 0xF;
			while (i < cnt) {
				store8(buf + i, i * 7 + 1);
				i = i + 1;
			}
			var s = 0;
			i = 0;
			while (i < cnt) {
				s = s + load8(buf + i);
				i = i + 1;
			}
			store32(buf + 64, s);
			return load32(buf + 64) + load16(buf);
		}`,
		fn: "f", args: 2, mem: true,
	},
	{
		name: "widemem",
		src: `func f(buf, v) {
			store64(buf, v);
			store16(buf + 8, v >> 3);
			var lo = load32(buf);
			var hi = load32(buf + 4);
			return lo ^ hi ^ sext8(load8(buf + 1));
		}`,
		fn: "f", args: 2, mem: true,
	},
	{
		name: "calls",
		src: `
		func sq(x) { return x * x; }
		func add3(a, b, c) { return a + b + c; }
		func f(a, b) {
			return sq(a) + add3(a, b, sq(b)) + sq(a + b);
		}`,
		fn: "f", args: 2,
	},
	{
		name: "callinexpr",
		src: `
		func g(x) { return x + 7; }
		func f(a, b) {
			return a * g(b) + g(a) * g(g(b));
		}`,
		fn: "f", args: 2,
	},
	{
		name: "manylocals",
		src: `func f(a, b) {
			var c = a + 1;
			var d = b + 2;
			var e = c * d;
			var g = e - a;
			var h = g ^ d;
			var i = h + c;
			var j = i | 0xF0;
			return j - h + e;
		}`,
		fn: "f", args: 2,
	},
	{
		name: "logicalvalue",
		src: `func f(a, b) {
			var x = a > 0 && b > 0;
			var y = a < 0 || b < 0;
			return x * 10 + y + (a != 0 && (b / (a + (a == 0))) > 2);
		}`,
		fn: "f", args: 2,
	},
	{
		name: "nestedif",
		src: `func f(a, b) {
			if (a > b) {
				if (a > 2 * b) { return 3; } else { return 2; }
			} else {
				if (b > 2 * a) { return 0; } else { return 1; }
			}
		}`,
		fn: "f", args: 2,
	},
	{
		name: "unsignedbounds",
		src: `func f(len, off) {
			var cap = 0x100;
			if (off + 8 >u cap) { return 0 - 1; }
			if (len >u cap - off) { return 0 - 2; }
			return off + len;
		}`,
		fn: "f", args: 2,
	},
}

const memBase = 0x4000

// TestCompilerAgainstInterpreter differentially tests every toolchain and
// optimization level against the MiniC reference interpreter: same
// arguments, same initial (empty) memory, equal return values and equal
// final memory contents.
func TestCompilerAgainstInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tp := range testPrograms {
		prog, err := minic.Parse(tp.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tp.name, err)
		}
		for _, tc := range Toolchains() {
			for _, opt := range []Options{{OptLevel: 0}, {OptLevel: 1}, {OptLevel: 2}} {
				procs, err := CompileAll(prog, tc, opt)
				if err != nil {
					t.Fatalf("%s/%s/O%d: compile: %v", tp.name, tc.Name(), opt.OptLevel, err)
				}
				for trial := 0; trial < 12; trial++ {
					args := make([]int64, tp.args)
					for i := range args {
						switch trial % 3 {
						case 0:
							args[i] = int64(rng.Intn(200) - 100)
						case 1:
							args[i] = rng.Int63()
						default:
							args[i] = -rng.Int63()
						}
					}
					if tp.mem {
						args[0] = memBase
					}

					// Reference run.
					ip := minic.NewInterp(prog)
					want, werr := ip.Call(tp.fn, args...)

					// Emulated run.
					m := asm.NewMachine()
					for _, p := range procs {
						m.AddProc(p)
					}
					for i, a := range args {
						m.Regs[argRegs[i]] = uint64(a)
					}
					got, gerr := m.Run(tp.fn)

					if (werr != nil) != (gerr != nil) {
						t.Fatalf("%s/%s/O%d trial %d: error mismatch: interp=%v emu=%v",
							tp.name, tc.Name(), opt.OptLevel, trial, werr, gerr)
					}
					if werr != nil {
						continue
					}
					if got != uint64(want) {
						t.Fatalf("%s/%s/O%d args=%v: emu=%#x interp=%#x\n%s",
							tp.name, tc.Name(), opt.OptLevel, args, got, uint64(want), procs[len(procs)-1])
					}
					if tp.mem {
						for off := uint64(0); off < 0x100; off++ {
							wantB := byte(ip.LoadMem(memBase+off, 1))
							gotB := byte(m.ReadMem(memBase+off, asm.Width1))
							if wantB != gotB {
								t.Fatalf("%s/%s/O%d: memory differs at +%#x: emu=%#x interp=%#x",
									tp.name, tc.Name(), opt.OptLevel, off, gotB, wantB)
							}
						}
					}
				}
			}
		}
	}
}

// TestStackBalance: rsp must return to its initial value.
func TestStackBalance(t *testing.T) {
	for _, tp := range testPrograms {
		if tp.mem {
			continue
		}
		prog := minic.MustParse(tp.src)
		for _, tc := range Toolchains() {
			procs, err := CompileAll(prog, tc, O2())
			if err != nil {
				t.Fatal(err)
			}
			m := asm.NewMachine()
			for _, p := range procs {
				m.AddProc(p)
			}
			m.Regs[asm.RDI] = 13
			m.Regs[asm.RSI] = 5
			if _, err := m.Run(tp.fn); err != nil {
				t.Fatalf("%s/%s: %v", tp.name, tc.Name(), err)
			}
			if m.Regs[asm.RSP] != asm.StackTop {
				t.Fatalf("%s/%s: rsp unbalanced: %#x", tp.name, tc.Name(), m.Regs[asm.RSP])
			}
		}
	}
}

// TestCalleeSavedPreserved: compiled procedures must preserve the
// callee-saved registers.
func TestCalleeSavedPreserved(t *testing.T) {
	prog := minic.MustParse(testPrograms[0].src)
	for _, tc := range Toolchains() {
		procs, err := CompileAll(prog, tc, O2())
		if err != nil {
			t.Fatal(err)
		}
		m := asm.NewMachine()
		for _, p := range procs {
			m.AddProc(p)
		}
		saved := map[asm.Reg]uint64{}
		for r := range calleeSaved {
			m.Regs[r] = 0x1000 + uint64(r)
			saved[r] = m.Regs[r]
		}
		m.Regs[asm.RDI] = 3
		m.Regs[asm.RSI] = 4
		if _, err := m.Run("f"); err != nil {
			t.Fatal(err)
		}
		for r, want := range saved {
			if m.Regs[r] != want {
				t.Errorf("%s: callee-saved %v clobbered", tc.Name(), r)
			}
		}
	}
}

// TestToolchainsDiverge: the whole point of the simulation — different
// toolchains must produce syntactically different code for the same
// source.
func TestToolchainsDiverge(t *testing.T) {
	prog := minic.MustParse(testPrograms[0].src)
	texts := map[string]string{}
	for _, tc := range Toolchains() {
		p, err := Compile(prog, "f", tc, O2())
		if err != nil {
			t.Fatal(err)
		}
		texts[tc.Name()] = p.String()
	}
	if len(texts) != 7 {
		t.Fatalf("toolchains = %d, want 7", len(texts))
	}
	distinct := map[string]bool{}
	for _, txt := range texts {
		distinct[txt] = true
	}
	if len(distinct) < 6 {
		t.Errorf("only %d distinct outputs across 7 toolchains", len(distinct))
	}
	// O0 and O2 differ too.
	tc := Toolchains()[0]
	p0, _ := Compile(prog, "f", tc, Options{OptLevel: 0})
	p2, _ := Compile(prog, "f", tc, O2())
	if p0.String() == p2.String() {
		t.Error("O0 == O2")
	}
}

func TestCompileDeterministic(t *testing.T) {
	prog := minic.MustParse(testPrograms[8].src) // memory program
	tc := Toolchains()[3]
	a, err := Compile(prog, "f", tc, O2())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Compile(prog, "f", tc, O2())
	if a.String() != b.String() {
		t.Error("compilation not deterministic")
	}
}

func TestExternCalls(t *testing.T) {
	prog := minic.MustParse(`func f(a) { return helper_ext(a, a + 1) * 2; }`)
	for _, tc := range Toolchains() {
		p, err := Compile(prog, "f", tc, O2())
		if err != nil {
			t.Fatal(err)
		}
		m := asm.NewMachine()
		m.AddProc(p)
		m.AddExtern("helper_ext", func(m *asm.Machine) uint64 {
			return m.Regs[asm.RDI] + m.Regs[asm.RSI]*10
		})
		m.Regs[asm.RDI] = 4
		got, err := m.Run("f")
		if err != nil {
			t.Fatalf("%s: %v", tc.Name(), err)
		}
		if got != (4+5*10)*2 {
			t.Errorf("%s: got %d", tc.Name(), got)
		}
	}
}

func TestCompileUnknownFunction(t *testing.T) {
	prog := minic.MustParse("func f() { return 1; }")
	if _, err := Compile(prog, "nope", Toolchains()[0], O2()); err == nil {
		t.Error("unknown function compiled")
	}
}

func TestByName(t *testing.T) {
	tc, ok := ByName("gcc-4.9")
	if !ok || tc.Vendor != "gcc" || tc.Version != "4.9" {
		t.Errorf("ByName(gcc-4.9) = %+v, %v", tc, ok)
	}
	if _, ok := ByName("msvc-2015"); ok {
		t.Error("unknown toolchain found")
	}
}
