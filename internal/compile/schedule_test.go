package compile

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
)

func TestScheduleDeterministic(t *testing.T) {
	insts := []asm.Inst{
		asm.MkInst(asm.MOV, asm.R64(asm.R10), asm.R64(asm.RDI)),
		asm.MkInst(asm.MOV, asm.R64(asm.R11), asm.R64(asm.RSI)),
		asm.MkInst(asm.ADD, asm.R64(asm.R10), asm.Imm(1)),
		asm.MkInst(asm.ADD, asm.R64(asm.R11), asm.Imm(2)),
	}
	a := schedule(insts, 7)
	b := schedule(insts, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("schedule not deterministic")
		}
	}
	if got := schedule(insts, 0); &got[0] == &insts[0] {
		_ = got // seed 0 returns the input unchanged (same contents)
	}
}

func TestScheduleSeedsDiffer(t *testing.T) {
	// A long independent sequence must come out differently for at
	// least one pair of seeds.
	var insts []asm.Inst
	regs := []asm.Reg{asm.R10, asm.R11, asm.RBX, asm.R12, asm.R13, asm.R14}
	for i, r := range regs {
		insts = append(insts, asm.MkInst(asm.MOV, asm.R64(r), asm.Imm(int64(i))))
	}
	base := schedule(insts, 1)
	differs := false
	for seed := uint64(2); seed < 12; seed++ {
		out := schedule(insts, seed)
		for i := range out {
			if out[i] != base[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("ten seeds produced identical schedules of independent movs")
	}
}

func TestScheduleRespectsDependencies(t *testing.T) {
	// RAW: the add must stay after the mov that defines its input.
	insts := []asm.Inst{
		asm.MkInst(asm.MOV, asm.R64(asm.R10), asm.R64(asm.RDI)),
		asm.MkInst(asm.ADD, asm.R64(asm.R11), asm.R64(asm.R10)),
	}
	for seed := uint64(1); seed < 64; seed++ {
		out := schedule(insts, seed)
		if out[0].Op != asm.MOV {
			t.Fatalf("seed %d broke a RAW dependency", seed)
		}
	}
	// Flags: cmp must stay adjacent-before jcc (control barrier) and
	// before setcc (flag read).
	insts = []asm.Inst{
		asm.MkInst(asm.CMP, asm.R64(asm.RDI), asm.R64(asm.RSI)),
		asm.Inst{Op: asm.SETCC, CC: asm.L, Dst: asm.R8L(asm.R10)},
	}
	for seed := uint64(1); seed < 64; seed++ {
		out := schedule(insts, seed)
		if out[0].Op != asm.CMP {
			t.Fatalf("seed %d moved a setcc before its cmp", seed)
		}
	}
}

func TestRegSetOps(t *testing.T) {
	var s regSet
	s.add(asm.RAX)
	s.add(asm.R15)
	if !s.has(asm.RAX) || !s.has(asm.R15) || s.has(asm.RBX) {
		t.Error("regSet membership wrong")
	}
	var o regSet
	o.add(asm.RBX)
	if s.overlaps(o) {
		t.Error("disjoint sets overlap")
	}
	o.add(asm.R15)
	if !s.overlaps(o) {
		t.Error("intersecting sets do not overlap")
	}
}

// TestQuickSchedulePreservesSemantics: random straight-line register
// programs must compute identical results before and after scheduling,
// for many seeds.
func TestQuickSchedulePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	regs := []asm.Reg{asm.R10, asm.R11, asm.RBX, asm.R12, asm.R13}
	ops := []asm.Op{asm.MOV, asm.ADD, asm.SUB, asm.AND, asm.OR, asm.XOR, asm.IMUL}

	for trial := 0; trial < 150; trial++ {
		var insts []asm.Inst
		for i := 0; i < 12; i++ {
			op := ops[rng.Intn(len(ops))]
			dst := asm.R64(regs[rng.Intn(len(regs))])
			var src asm.Operand
			if rng.Intn(2) == 0 {
				src = asm.Imm(int64(rng.Intn(1000)))
			} else {
				src = asm.R64(regs[rng.Intn(len(regs))])
			}
			insts = append(insts, asm.MkInst(op, dst, src))
		}
		run := func(list []asm.Inst) [asm.NumRegs]uint64 {
			p := &asm.Proc{Name: "t", Insts: append(append([]asm.Inst{}, list...), asm.Inst{Op: asm.RET})}
			m := asm.NewMachine()
			m.AddProc(p)
			for i, r := range regs {
				m.Regs[r] = uint64(i * 1111)
			}
			if _, err := m.Run("t"); err != nil {
				t.Fatal(err)
			}
			return m.Regs
		}
		want := run(insts)
		for seed := uint64(1); seed <= 5; seed++ {
			got := run(schedule(insts, seed))
			for _, r := range regs {
				if got[r] != want[r] {
					t.Fatalf("trial %d seed %d: %v = %#x, want %#x", trial, seed, r, got[r], want[r])
				}
			}
		}
	}
}
