package compile

import (
	"repro/internal/asm"
)

// The post-pass scheduler reorders adjacent independent instructions
// deterministically per toolchain, reproducing the paper's "program
// ordering" divergence class: two compilers emitting the same operations
// in different orders. Reordering respects register, flag, memory,
// stack and control dependencies, so it is semantics-preserving (and is
// covered by the differential test suite like every other knob).

// regSet is a bitmask over the sixteen general-purpose registers.
type regSet uint32

func (s regSet) has(r asm.Reg) bool     { return s&(1<<uint(r)) != 0 }
func (s *regSet) add(r asm.Reg)         { *s |= 1 << uint(r) }
func (s regSet) overlaps(o regSet) bool { return s&o != 0 }

// instEffects summarizes one instruction's dependencies.
type instEffects struct {
	reads, writes regSet
	readsFlags    bool
	writesFlags   bool
	memRead       bool
	memWrite      bool
	control       bool // labels, branches, calls, ret: scheduling barriers
}

func operandRegs(o asm.Operand) regSet {
	var s regSet
	switch o.Kind {
	case asm.KindReg:
		s.add(o.Reg)
	case asm.KindMem:
		if o.Base != asm.NoReg {
			s.add(o.Base)
		}
		if o.Index != asm.NoReg {
			s.add(o.Index)
		}
	}
	return s
}

func effectsOf(in asm.Inst) instEffects {
	var e instEffects
	switch in.Op {
	case asm.LABEL, asm.JMP, asm.JCC, asm.CALL, asm.RET:
		e.control = true
		if in.Op == asm.JCC {
			e.readsFlags = true
		}
		return e
	case asm.PUSH, asm.POP:
		// Stack ops move rsp and touch memory; treat as barriers-lite.
		e.memRead = true
		e.memWrite = true
		e.reads.add(asm.RSP)
		e.writes.add(asm.RSP)
		if in.Op == asm.PUSH {
			e.reads = e.reads | operandRegs(in.Dst)
			if in.Dst.Kind == asm.KindMem {
				e.memRead = true
			}
		} else {
			e.writes = e.writes | operandRegs(in.Dst)
		}
		return e
	case asm.CQO:
		e.reads.add(asm.RAX)
		e.writes.add(asm.RDX)
		return e
	case asm.IDIV:
		e.reads.add(asm.RAX)
		e.reads.add(asm.RDX)
		e.writes.add(asm.RAX)
		e.writes.add(asm.RDX)
		e.reads = e.reads | operandRegs(in.Dst)
		if in.Dst.Kind == asm.KindMem {
			e.memRead = true
		}
		e.writesFlags = true
		return e
	}

	// Generic two-operand instructions.
	e.reads = operandRegs(in.Src)
	if in.Src.Kind == asm.KindMem {
		e.memRead = true
	}
	switch in.Op {
	case asm.MOV, asm.MOVZX, asm.MOVSX, asm.LEA:
		// Dst is written (registers) or stored (memory); mov does not
		// read its register destination at full width, but sub-width
		// register writes merge, which reads the old value.
		if in.Dst.Kind == asm.KindMem {
			e.memWrite = true
			e.reads = e.reads | operandRegs(in.Dst)
		} else {
			e.writes = e.writes | operandRegs(in.Dst)
			if in.Dst.Width == asm.Width1 || in.Dst.Width == asm.Width2 {
				e.reads.add(in.Dst.Reg)
			}
		}
		if in.Op == asm.LEA {
			e.reads = e.reads | operandRegs(in.Src)
			e.memRead = false // lea computes the address only
		}
	case asm.CMP, asm.TEST:
		e.reads = e.reads | operandRegs(in.Dst)
		if in.Dst.Kind == asm.KindMem {
			e.memRead = true
		}
		e.writesFlags = true
	case asm.SETCC:
		e.readsFlags = true
		if in.Dst.Kind == asm.KindMem {
			e.memWrite = true
			e.reads = e.reads | operandRegs(in.Dst)
		} else {
			e.writes = e.writes | operandRegs(in.Dst)
			e.reads.add(in.Dst.Reg) // 8-bit write merges
		}
	case asm.CMOVCC:
		e.readsFlags = true
		e.reads = e.reads | operandRegs(in.Dst)
		e.writes = e.writes | operandRegs(in.Dst)
	default:
		// ALU read-modify-write: ADD, SUB, IMUL, NEG, NOT, AND, OR, XOR,
		// SHL, SHR, SAR, INC, DEC.
		e.reads = e.reads | operandRegs(in.Dst)
		if in.Dst.Kind == asm.KindMem {
			e.memRead = true
			e.memWrite = true
		} else {
			e.writes = e.writes | operandRegs(in.Dst)
		}
		e.writesFlags = true
	}
	return e
}

// independent reports whether two adjacent instructions may swap.
func independent(a, b instEffects) bool {
	if a.control || b.control {
		return false
	}
	// Register dependencies: RAW, WAR, WAW.
	if a.writes.overlaps(b.reads) || a.reads.overlaps(b.writes) || a.writes.overlaps(b.writes) {
		return false
	}
	// Flag dependencies.
	if (a.writesFlags && (b.readsFlags || b.writesFlags)) ||
		(a.readsFlags && b.writesFlags) {
		return false
	}
	// Memory dependencies (no alias analysis: any write conflicts).
	if (a.memWrite && (b.memRead || b.memWrite)) || (a.memRead && b.memWrite) {
		return false
	}
	return true
}

// schedule performs one bubble pass over the instruction list, swapping
// adjacent independent pairs selected by a deterministic per-position
// hash of the seed. Different seeds produce different (but individually
// stable) orderings.
func schedule(insts []asm.Inst, seed uint64) []asm.Inst {
	if seed == 0 {
		return insts
	}
	out := make([]asm.Inst, len(insts))
	copy(out, insts)
	for i := 0; i+1 < len(out); i++ {
		h := seed*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9
		h ^= h >> 29
		if h&3 != 0 {
			continue // swap roughly a quarter of eligible pairs
		}
		if independent(effectsOf(out[i]), effectsOf(out[i+1])) {
			out[i], out[i+1] = out[i+1], out[i]
			i++ // do not immediately reconsider the moved instruction
		}
	}
	return out
}
