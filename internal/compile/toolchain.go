// Package compile is the simulated multi-vendor C toolchain: it compiles
// MiniC functions to the synthetic x86-64 subset of package asm under
// seven toolchains modelled after the paper's test-bed (gcc 4.6/4.8/4.9,
// clang 3.4/3.5, icc 14.0.4/15.0.1).
//
// The toolchains produce semantically identical but syntactically diverse
// code, reproducing the divergence classes the paper identifies:
// different register allocation preferences, instruction selection
// (lea vs add, shl vs imul vs lea-scale, xor vs mov for zeroing, test vs
// cmp), branch and loop layout, frame-pointer usage, and prologue styles.
// The compilers are differentially tested against the MiniC interpreter.
package compile

import "repro/internal/asm"

// MulStyle selects how multiplications by constants are lowered.
type MulStyle int

// Multiplication lowering styles.
const (
	MulShiftLea     MulStyle = iota // shifts for powers of two, lea for 3/5/9
	MulImul                         // imul always (icc-style)
	MulLeaPreferred                 // lea chains whenever possible (clang-style)
)

// Toolchain describes one simulated compiler. The fields are the
// divergence knobs; two toolchains with different knobs produce visibly
// different assembly from the same source.
type Toolchain struct {
	Vendor  string
	Version string

	// ScratchOrder is the preference order for expression temporaries.
	// It never contains rax, rdx, rsp, rbp or the ABI argument
	// registers (keeping the lifter's call-arity heuristic exact).
	ScratchOrder []asm.Reg
	// CalleeOrder is the assignment order of callee-saved registers to
	// hot locals at -O2.
	CalleeOrder []asm.Reg
	// MaxRegLocals caps how many locals are promoted to registers.
	MaxRegLocals int
	// OmitFP selects rsp-relative frames (no rbp chain).
	OmitFP bool
	// SaveWithMov saves callee-saved registers with mov to frame slots
	// instead of push (an icc idiom).
	SaveWithMov bool
	// UseLeaAdd lowers reg+const into lea instead of mov+add.
	UseLeaAdd bool
	// Mul selects multiplication lowering.
	Mul MulStyle
	// ZeroWithMov materializes 0 as "mov reg, 0" instead of xor.
	ZeroWithMov bool
	// CmpZero uses "cmp reg, 0" instead of "test reg, reg".
	CmpZero bool
	// UseIncDec emits inc/dec for ±1.
	UseIncDec bool
	// RotateLoops emits bottom-tested loops with an entry jump.
	RotateLoops bool
	// GuardedLoops emits gcc-style loop inversion: the condition is
	// duplicated as an entry guard and a bottom test (changes the block
	// structure relative to both other styles).
	GuardedLoops bool
	// BranchlessLogic compiles pure && / || chains with setcc and
	// bitwise ops instead of branches (clang-style), removing blocks.
	BranchlessLogic bool
	// IfConversion turns pure if/else assignments into cmov sequences
	// (clang-style), removing the diamond entirely.
	IfConversion bool
	// InvertBranches lays out else-blocks first.
	InvertBranches bool
	// FoldAddressing folds base+disp into memory operands when possible.
	FoldAddressing bool
	// SchedSeed, when non-zero, enables the deterministic post-pass
	// scheduler that swaps adjacent independent instructions — the
	// paper's "program ordering" divergence. Each seed is a distinct
	// stable ordering.
	SchedSeed uint64
}

// Name returns the canonical "vendor-version" identifier.
func (tc Toolchain) Name() string { return tc.Vendor + "-" + tc.Version }

// Toolchains returns the seven simulated toolchains of the paper's
// test-bed (§5.3).
func Toolchains() []Toolchain {
	r := func(rs ...asm.Reg) []asm.Reg { return rs }
	return []Toolchain{
		{
			Vendor: "gcc", Version: "4.6",
			ScratchOrder:   r(asm.R10, asm.R11, asm.RBX, asm.R12),
			CalleeOrder:    r(asm.RBX, asm.R12, asm.R13),
			MaxRegLocals:   3,
			UseLeaAdd:      false,
			Mul:            MulShiftLea,
			CmpZero:        true,
			UseIncDec:      false,
			RotateLoops:    true,
			FoldAddressing: true,
		},
		{
			Vendor: "gcc", Version: "4.8",
			ScratchOrder:   r(asm.R10, asm.R11, asm.RBX, asm.R13),
			CalleeOrder:    r(asm.RBX, asm.R12, asm.R13, asm.R14),
			MaxRegLocals:   4,
			UseLeaAdd:      false,
			Mul:            MulShiftLea,
			UseIncDec:      false,
			GuardedLoops:   true,
			FoldAddressing: true,
			SchedSeed:      0x48,
		},
		{
			Vendor: "gcc", Version: "4.9",
			ScratchOrder:   r(asm.R11, asm.R10, asm.RBX, asm.R12),
			CalleeOrder:    r(asm.RBX, asm.R12, asm.R13, asm.R14),
			MaxRegLocals:   4,
			UseLeaAdd:      true,
			Mul:            MulShiftLea,
			UseIncDec:      true,
			GuardedLoops:   true,
			FoldAddressing: true,
			SchedSeed:      0x49,
		},
		{
			Vendor: "clang", Version: "3.4",
			ScratchOrder:    r(asm.R11, asm.R10, asm.R14, asm.RBX),
			CalleeOrder:     r(asm.R14, asm.R15, asm.RBX, asm.R12),
			MaxRegLocals:    4,
			OmitFP:          true,
			UseLeaAdd:       true,
			Mul:             MulLeaPreferred,
			UseIncDec:       true,
			InvertBranches:  true,
			BranchlessLogic: true,
			FoldAddressing:  true,
			SchedSeed:       0x34,
		},
		{
			Vendor: "clang", Version: "3.5",
			ScratchOrder:    r(asm.R10, asm.R11, asm.R15, asm.RBX),
			CalleeOrder:     r(asm.R14, asm.R15, asm.R12, asm.RBX),
			MaxRegLocals:    4,
			OmitFP:          true,
			UseLeaAdd:       true,
			Mul:             MulLeaPreferred,
			UseIncDec:       true,
			InvertBranches:  true,
			BranchlessLogic: true,
			IfConversion:    true,
			FoldAddressing:  true,
			SchedSeed:       0x35,
		},
		{
			Vendor: "icc", Version: "14.0.4",
			ScratchOrder:   r(asm.R12, asm.R13, asm.R10, asm.R11),
			CalleeOrder:    r(asm.R15, asm.R14, asm.R13, asm.RBX),
			MaxRegLocals:   4,
			SaveWithMov:    true,
			Mul:            MulImul,
			ZeroWithMov:    true,
			CmpZero:        true,
			FoldAddressing: false,
			SchedSeed:      0x14,
		},
		{
			Vendor: "icc", Version: "15.0.1",
			ScratchOrder:   r(asm.R13, asm.R12, asm.R11, asm.R10),
			CalleeOrder:    r(asm.R15, asm.R14, asm.R12, asm.RBX),
			MaxRegLocals:   4,
			SaveWithMov:    true,
			Mul:            MulImul,
			ZeroWithMov:    true,
			CmpZero:        true,
			UseIncDec:      true,
			FoldAddressing: false,
			SchedSeed:      0x15,
		},
	}
}

// ByName returns the toolchain with the given Name.
func ByName(name string) (Toolchain, bool) {
	for _, tc := range Toolchains() {
		if tc.Name() == name {
			return tc, true
		}
	}
	return Toolchain{}, false
}
