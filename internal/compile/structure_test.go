package compile

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/minic"
)

// Tests for the structural divergence knobs: guarded loops, branchless
// logic and if-conversion must change the emitted shape — and stay
// semantically correct (the differential suite in compile_test.go already
// runs every program under every toolchain).

const loopProg = `
func f(n) {
	var s = 0;
	var i = 0;
	while (i < n) {
		s = s + i;
		i = i + 1;
	}
	return s;
}`

func mustCompile(t *testing.T, src, fn string, tc Toolchain) *asm.Proc {
	t.Helper()
	p, err := Compile(minic.MustParse(src), fn, tc, O2())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func blocksOf(t *testing.T, p *asm.Proc) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLoopStylesDiffer(t *testing.T) {
	byStyle := map[string]string{}
	for _, name := range []string{"gcc-4.6", "gcc-4.9", "icc-15.0.1"} {
		tc, _ := ByName(name)
		p := mustCompile(t, loopProg, "f", tc)
		byStyle[name] = p.String()
	}
	// gcc-4.6 rotates (jmp to a bottom test), gcc-4.9 guards (condition
	// emitted twice), icc top-tests. All three must differ structurally.
	g46 := blocksOf(t, mustCompileNamed(t, loopProg, "f", "gcc-4.6"))
	g49 := blocksOf(t, mustCompileNamed(t, loopProg, "f", "gcc-4.9"))
	gicc := blocksOf(t, mustCompileNamed(t, loopProg, "f", "icc-15.0.1"))
	if g46.NumEdges() == g49.NumEdges() && len(g46.Blocks) == len(g49.Blocks) {
		t.Errorf("rotated (B=%d E=%d) and guarded (B=%d E=%d) loops have identical shape",
			len(g46.Blocks), g46.NumEdges(), len(g49.Blocks), g49.NumEdges())
	}
	// The guarded style duplicates the comparison.
	cmps := strings.Count(byStyle["gcc-4.9"], "cmp ")
	if cmps < 2 {
		t.Errorf("guarded loop emitted %d cmps, want the condition twice", cmps)
	}
	_ = gicc
}

func mustCompileNamed(t *testing.T, src, fn, tcName string) *asm.Proc {
	t.Helper()
	tc, ok := ByName(tcName)
	if !ok {
		t.Fatalf("no toolchain %s", tcName)
	}
	return mustCompile(t, src, fn, tc)
}

func TestBranchlessLogicRemovesBranches(t *testing.T) {
	src := `
func f(a, b) {
	var r = 0;
	if (a > 0 && b > 0 && a < b) {
		r = 1;
	}
	return r;
}`
	withBranches := blocksOf(t, mustCompileNamed(t, src, "f", "gcc-4.9"))
	branchless := blocksOf(t, mustCompileNamed(t, src, "f", "clang-3.5"))
	if len(branchless.Blocks) >= len(withBranches.Blocks) {
		t.Errorf("branchless logic did not reduce blocks: clang=%d gcc=%d",
			len(branchless.Blocks), len(withBranches.Blocks))
	}
	// clang's output contains setcc + and.
	text := mustCompileNamed(t, src, "f", "clang-3.5").String()
	if !strings.Contains(text, "set") {
		t.Errorf("no setcc in branchless output:\n%s", text)
	}
}

func TestBranchlessLogicPreservesShortCircuitWhenImpure(t *testing.T) {
	// Division on the right side must keep the branching form under
	// every toolchain (otherwise a guarded divide-by-zero would trap).
	src := `func f(a, b) { return a != 0 && b / a > 2; }`
	for _, tcName := range []string{"clang-3.5", "clang-3.4"} {
		p := mustCompileNamed(t, src, "f", tcName)
		m := asm.NewMachine()
		m.AddProc(p)
		m.Regs[asm.RDI] = 0 // a == 0: the division must not run
		m.Regs[asm.RSI] = 7
		got, err := m.Run("f")
		if err != nil {
			t.Fatalf("%s: guarded division executed: %v", tcName, err)
		}
		if got != 0 {
			t.Errorf("%s: f(0,7) = %d", tcName, got)
		}
	}
}

func TestIfConversionEmitsCmov(t *testing.T) {
	src := `
func f(a, b) {
	var m = a;
	if (b < a) {
		m = b;
	}
	return m;
}`
	clang := mustCompileNamed(t, src, "f", "clang-3.5")
	if !strings.Contains(clang.String(), "cmov") {
		t.Errorf("clang-3.5 min() did not if-convert:\n%s", clang)
	}
	gcc := mustCompileNamed(t, src, "f", "gcc-4.9")
	if strings.Contains(gcc.String(), "cmov") {
		t.Errorf("gcc-4.9 unexpectedly emitted cmov")
	}
	// The converted form is straight-line except for the shared
	// epilogue label every function carries.
	if got := len(blocksOf(t, clang).Blocks); got > 2 {
		t.Errorf("if-converted min() has %d blocks, want <= 2", got)
	}
	// Semantics both ways.
	for _, tcName := range []string{"clang-3.5", "gcc-4.9"} {
		for _, args := range [][2]uint64{{3, 9}, {9, 3}, {5, 5}} {
			p := mustCompileNamed(t, src, "f", tcName)
			m := asm.NewMachine()
			m.AddProc(p)
			m.Regs[asm.RDI] = args[0]
			m.Regs[asm.RSI] = args[1]
			got, err := m.Run("f")
			if err != nil {
				t.Fatal(err)
			}
			want := args[0]
			if args[1] < args[0] {
				want = args[1]
			}
			if got != want {
				t.Errorf("%s: min(%d,%d) = %d", tcName, args[0], args[1], got)
			}
		}
	}
}

func TestIfConversionSkipsImpureArms(t *testing.T) {
	// A call in the arm must not be if-converted (it would always run).
	src := `
func g(x) { return x * 2; }
func f(a, b) {
	var m = a;
	if (b < a) {
		m = g(b);
	}
	return m;
}`
	clang := mustCompileNamed(t, src, "f", "clang-3.5")
	if strings.Contains(clang.String(), "cmov") {
		t.Errorf("call arm was if-converted:\n%s", clang)
	}
}

func TestIfConversionElseArm(t *testing.T) {
	src := `
func f(a, b) {
	var r = 0;
	if (a == b) {
		r = 0x11;
	} else {
		r = 0x22;
	}
	return r;
}`
	clang := mustCompileNamed(t, src, "f", "clang-3.5")
	if !strings.Contains(clang.String(), "cmov") {
		t.Errorf("two-arm select not converted:\n%s", clang)
	}
	m := asm.NewMachine()
	m.AddProc(clang)
	m.Regs[asm.RDI] = 4
	m.Regs[asm.RSI] = 4
	if got, _ := m.Run("f"); got != 0x11 {
		t.Errorf("f(4,4) = %#x", got)
	}
	m2 := asm.NewMachine()
	m2.AddProc(clang)
	m2.Regs[asm.RDI] = 4
	m2.Regs[asm.RSI] = 5
	if got, _ := m2.Run("f"); got != 0x22 {
		t.Errorf("f(4,5) = %#x", got)
	}
}

func TestO0DisablesStructuralTransforms(t *testing.T) {
	src := `
func f(a, b) {
	var m = a;
	if (b < a) {
		m = b;
	}
	var i = 0;
	while (i < m && i < 100) {
		i = i + 1;
	}
	return i;
}`
	tc, _ := ByName("clang-3.5")
	p, err := Compile(minic.MustParse(src), "f", tc, Options{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.String(), "cmov") {
		t.Error("O0 output contains cmov")
	}
	if strings.Contains(p.String(), "set") {
		t.Error("O0 output contains setcc fusion")
	}
}

func TestPureExpr(t *testing.T) {
	pure := []string{"a + b", "load8(a)", "~a", "a << 3", "a < b && b < 10"}
	impure := []string{"a / b", "a % b", "g(a)", "a + g(b)", "a != 0 && b / a > 1"}
	parse := func(expr string) minic.Expr {
		prog := minic.MustParse("func g(x) { return x; }\nfunc t(a, b) { return " + expr + "; }")
		f, _ := prog.Lookup("t")
		ret := f.Body[len(f.Body)-1].(*minic.ReturnStmt)
		return ret.Val
	}
	for _, e := range pure {
		if !pureExpr(parse(e)) {
			t.Errorf("%q should be pure", e)
		}
	}
	for _, e := range impure {
		if pureExpr(parse(e)) {
			t.Errorf("%q should be impure", e)
		}
	}
}
