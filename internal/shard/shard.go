// Package shard splits an indexed corpus into N immutable shards and
// merges per-shard query partials back into scores bit-identical to a
// single node holding the whole corpus.
//
// The split is by target procedure: a deterministic hash of the
// target's name and provenance assigns it to one of N shards, and each
// shard's snapshot contains exactly the unique strands its targets
// reference, with shard-local multiplicities that sum (across shards)
// to the union corpus's counts. A manifest ties the fleet together: the
// global strand counts (for the corpus-wide H0 estimate), each shard's
// local→global strand and target maps (so a coordinator can splice
// partial rows back into global order), and each shard snapshot's
// checksum (so a coordinator can refuse a mixed-version fleet).
//
// Everything downstream of the split is exact, not approximate — see
// Merge and core.QueryPartial for the argument.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/core"
)

// Manifest describes one split of a corpus into shards. It is written
// next to the shard snapshots by SaveShards and read by the gateway.
type Manifest struct {
	// Generation identifies the split: a hash of the partition content
	// (target assignments, strand counts). It is baked into each shard
	// snapshot's header before encoding, so a snapshot and a manifest
	// can vouch for each other without a checksum cycle.
	Generation string
	// SigmoidK, Kernel, Prefilter, LSHMinContainment and Retrieval
	// record the engine options the corpus was built with. SigmoidK and
	// LSHMinContainment affect scores, so a coordinator refuses shards
	// reporting different values; Kernel, Prefilter (sound mode) and
	// Retrieval do not — the differential suites enforce it — so
	// mismatches there are only warnings.
	SigmoidK          float64
	Kernel            string
	Prefilter         string
	LSHMinContainment float64
	Retrieval         string
	// Counts[g] is the union corpus's multiplicity of global unique
	// strand g — the exact weights of the single-node H0 estimate.
	Counts []int
	// NumTargets is the union corpus's target count; global target
	// indices below index into that order (the corpus build order, which
	// is also the single-node pre-sort result order).
	NumTargets int
	Shards     []ShardEntry
}

// ShardEntry is one shard's slice of the manifest.
type ShardEntry struct {
	// File is the snapshot's file name, relative to the manifest.
	File string
	// Checksum is the snapshot body's sha256 (index.Info.Checksum).
	Checksum string
	// Targets[k] is the global target index of the shard's k-th target.
	Targets []int
	// Strands[j] is the global strand index of the shard's j-th unique
	// strand. Local order is ascending in global index, but consumers
	// should not rely on that.
	Strands []int
}

// Assign deterministically maps a target to one of n shards: SHA-256
// over the target name and provenance key, top 8 bytes mod n. Any
// process that agrees on (name, provenance, n) agrees on the shard.
// (SHA-256 rather than FNV-1a: the low bit of FNV-1a is the XOR of the
// input bytes' low bits, and corpus targets are named by their
// provenance key — hashing name and key concatenated made that parity
// cancel and sent every target to one shard of two.)
func Assign(name string, src asm.Provenance, n int) int {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(src.Key()))
	return int(binary.BigEndian.Uint64(h.Sum(nil)) % uint64(n))
}

// Split partitions exported corpus state into n shard exports plus the
// manifest tying them together. Checksums and file names in the
// returned manifest are empty; SaveShards fills them in. The input must
// carry real per-target multiplicities (anything built by AddTarget
// does; a corpus round-tripped through a pre-v3 snapshot does not).
func Split(ex *core.Export, n int) (*Manifest, []*core.Export, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("shard: split into %d shards", n)
	}
	if ex.Shard.Sharded() {
		return nil, nil, fmt.Errorf("shard: input is already shard %d/%d", ex.Shard.ID, ex.Shard.Count)
	}
	multSum := make([]int, len(ex.Strands))
	for ti, t := range ex.Targets {
		if len(t.StrandMult) != len(t.StrandIdx) {
			return nil, nil, fmt.Errorf("shard: target %d (%s) has no per-target strand multiplicities (pre-v3 snapshot?)", ti, t.Name)
		}
		for k, idx := range t.StrandIdx {
			multSum[idx] += t.StrandMult[k]
		}
	}
	for j, es := range ex.Strands {
		if multSum[j] != es.Count {
			return nil, nil, fmt.Errorf("shard: strand %d multiplicities sum to %d, count is %d — corpus is not exactly decomposable", j, multSum[j], es.Count)
		}
	}

	man := &Manifest{
		SigmoidK:          ex.Opts.SigmoidK,
		Kernel:            ex.Opts.VCP.Kernel,
		Prefilter:         ex.Opts.Prefilter,
		LSHMinContainment: ex.Opts.LSHMinContainment,
		Retrieval:         ex.Opts.Retrieval,
		Counts:            make([]int, len(ex.Strands)),
		NumTargets:        len(ex.Targets),
		Shards:            make([]ShardEntry, n),
	}
	for j, es := range ex.Strands {
		man.Counts[j] = es.Count
	}
	assign := make([]int, len(ex.Targets))
	for ti, t := range ex.Targets {
		assign[ti] = Assign(t.Name, t.Source, n)
		man.Shards[assign[ti]].Targets = append(man.Shards[assign[ti]].Targets, ti)
	}
	man.Generation = generation(ex, assign, n)

	shards := make([]*core.Export, n)
	for s := 0; s < n; s++ {
		entry := &man.Shards[s]

		// The shard's unique-strand set: the union of its targets'
		// strands, kept in ascending global order so the local order is
		// deterministic.
		inShard := make(map[int]bool)
		for _, ti := range entry.Targets {
			for _, idx := range ex.Targets[ti].StrandIdx {
				inShard[idx] = true
			}
		}
		if len(inShard) > 0 {
			entry.Strands = make([]int, 0, len(inShard))
			for g := range inShard {
				entry.Strands = append(entry.Strands, g)
			}
			sort.Ints(entry.Strands)
		}
		local := make(map[int]int, len(entry.Strands))
		for j, g := range entry.Strands {
			local[g] = j
		}

		se := &core.Export{
			Opts:  ex.Opts,
			Shard: core.ShardInfo{ID: s, Count: n, Generation: man.Generation},
		}
		se.Strands = make([]core.ExportStrand, len(entry.Strands))
		for j, g := range entry.Strands {
			se.Strands[j] = core.ExportStrand{S: ex.Strands[g].S, Sig: ex.Strands[g].Sig}
		}
		for _, ti := range entry.Targets {
			t := ex.Targets[ti]
			st := core.ExportTarget{
				Name:       t.Name,
				Source:     t.Source,
				NumBlocks:  t.NumBlocks,
				NumStrands: t.NumStrands,
				StrandIdx:  make([]int, len(t.StrandIdx)),
				StrandMult: append([]int(nil), t.StrandMult...),
			}
			for k, g := range t.StrandIdx {
				st.StrandIdx[k] = local[g]
				se.Strands[local[g]].Count += t.StrandMult[k]
			}
			se.Targets = append(se.Targets, st)
		}
		shards[s] = se
	}
	return man, shards, nil
}

// generation hashes the partition content: shard count, per-target
// assignment, and the global strand counts. 16 hex digits are plenty to
// distinguish fleet generations (this is an identity, not an integrity
// check — the snapshot and manifest checksums carry integrity).
func generation(ex *core.Export, assign []int, n int) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(n)
	put(len(ex.Targets))
	for ti, t := range ex.Targets {
		h.Write([]byte(t.Name))
		h.Write([]byte{0})
		h.Write([]byte(t.Source.Key()))
		h.Write([]byte{0})
		put(assign[ti])
	}
	put(len(ex.Strands))
	for _, es := range ex.Strands {
		put(es.Count)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
