package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/vcp"
)

// loadShard loads one shard snapshot and verifies it against the
// manifest checksum — the trust chain eshd+eshgw rely on.
func loadShard(path, wantSum string) (*core.DB, error) {
	db, info, err := index.LoadFileInfoCtx(context.Background(), path)
	if err != nil {
		return nil, err
	}
	if info.Checksum != wantSum {
		return nil, fmt.Errorf("snapshot %s checksum %s, manifest says %s", path, info.Checksum, wantSum)
	}
	return db, nil
}

const gccStyle = `proc checksum_gcc
	xor eax, eax
	mov rcx, rdi
	lea rdx, [rsi+rsi*2]
	shl rdx, 2
	add rdx, 0x20
	imul rcx, rdx
	mov rax, rcx
	shr rax, 7
	xor rax, rcx
	mov r8, rax
	and r8, 0xff
	add rax, r8
	ret
endp`

const iccStyle = `proc checksum_icc
	xor r9d, r9d
	mov r10, rdi
	mov r11, rsi
	imul r11, 3
	imul r11, 4
	add r11, 0x20
	imul r10, r11
	mov rax, r10
	shr rax, 7
	xor rax, r10
	mov rbx, rax
	and rbx, 0xff
	add rax, rbx
	ret
endp`

const memStyle = `proc save_pair
	mov [rdi], rsi
	mov [rdi+8], rdx
	mov rax, rsi
	add rax, rdx
	mov [rdi+16], rax
	call helper
	ret
endp`

func parse(t *testing.T, src string) *asm.Proc {
	t.Helper()
	p, err := asm.ParseProc(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func buildSmallDB(t *testing.T) *core.DB {
	t.Helper()
	db := core.NewDB(core.Options{VCP: vcp.Config{MinVars: 3}, Workers: 2})
	for _, src := range []string{gccStyle, iccStyle, memStyle} {
		if err := db.AddTarget(parse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// scatterQuery runs the query through every shard DB and merges —
// optionally round-tripping each partial through its JSON wire form, so
// the test proves the serialized path (what eshgw actually sees) loses
// no bits.
func scatterQuery(t *testing.T, man *Manifest, dbs []*core.DB, q *asm.Proc, drop int) (*core.Report, []int) {
	t.Helper()
	var parts []*Partial
	for s, db := range dbs {
		if s == drop {
			continue
		}
		qp, err := db.PartialQueryCtx(context.Background(), q)
		if err != nil {
			t.Fatalf("shard %d partial query: %v", s, err)
		}
		wire, err := json.Marshal(FromQueryPartial(qp, db.Shard()))
		if err != nil {
			t.Fatal(err)
		}
		p := &Partial{}
		dec := json.NewDecoder(bytes.NewReader(wire))
		if err := dec.Decode(p); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	rep, missing, err := Merge(man, parts)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return rep, missing
}

// requireIdentical asserts rankings AND raw scores are bit-identical.
func requireIdentical(t *testing.T, want, got *core.Report, label string) {
	t.Helper()
	if len(want.Results) != len(got.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	if got.NumStrands != want.NumStrands || got.NumBlocks != want.NumBlocks {
		t.Fatalf("%s: query shape %d/%d, want %d/%d", label, got.NumStrands, got.NumBlocks, want.NumStrands, want.NumBlocks)
	}
	for i := range want.Results {
		a, b := want.Results[i], got.Results[i]
		if a.Target.Name != b.Target.Name || !reflect.DeepEqual(a.Target.Source, b.Target.Source) {
			t.Fatalf("%s: rank %d is %s, want %s", label, i, b.Target.Name, a.Target.Name)
		}
		if !sameBits(a.GES, b.GES) || !sameBits(a.SLOG, b.SLOG) || !sameBits(a.SVCP, b.SVCP) {
			t.Fatalf("%s: rank %d (%s): scores GES=%x/%x SLOG=%x/%x SVCP=%x/%x differ",
				label, i, a.Target.Name,
				math.Float64bits(b.GES), math.Float64bits(a.GES),
				math.Float64bits(b.SLOG), math.Float64bits(a.SLOG),
				math.Float64bits(b.SVCP), math.Float64bits(a.SVCP))
		}
	}
}

// splitDBs splits the export n ways and rebuilds one DB per shard, the
// way a fleet of eshd processes would from their snapshots.
func splitDBs(t *testing.T, ex *core.Export, n int) (*Manifest, []*core.DB) {
	t.Helper()
	man, shardExs, err := Split(ex, n)
	if err != nil {
		t.Fatal(err)
	}
	dbs := make([]*core.DB, n)
	for s, se := range shardExs {
		dbs[s], err = core.FromExport(se)
		if err != nil {
			t.Fatalf("rebuild shard %d: %v", s, err)
		}
		if got := dbs[s].Shard(); got.ID != s || got.Count != n || got.Generation != man.Generation {
			t.Fatalf("shard %d identity %+v", s, got)
		}
	}
	return man, dbs
}

func TestSplitInvariants(t *testing.T) {
	ex := buildSmallDB(t).Export()
	for _, n := range []int{1, 2, 4} {
		man, shardExs, err := Split(ex, n)
		if err != nil {
			t.Fatal(err)
		}
		if man.NumTargets != len(ex.Targets) {
			t.Fatalf("n=%d: manifest has %d targets, corpus %d", n, man.NumTargets, len(ex.Targets))
		}
		// Shard-local strand counts must sum to the union counts.
		sum := make([]int, len(ex.Strands))
		targets := 0
		for s, se := range shardExs {
			targets += len(se.Targets)
			for j, es := range se.Strands {
				g := man.Shards[s].Strands[j]
				sum[g] += es.Count
				if es.S != ex.Strands[g].S {
					t.Fatalf("n=%d shard %d strand %d: wrong strand aliased", n, s, j)
				}
			}
		}
		if targets != len(ex.Targets) {
			t.Fatalf("n=%d: shards hold %d targets, corpus has %d", n, targets, len(ex.Targets))
		}
		for g, c := range sum {
			if c != ex.Strands[g].Count {
				t.Fatalf("n=%d: strand %d shard counts sum to %d, union count %d", n, g, c, ex.Strands[g].Count)
			}
		}
		// Assignment is the deterministic hash.
		for s, entry := range man.Shards {
			for _, ti := range entry.Targets {
				et := ex.Targets[ti]
				if got := Assign(et.Name, et.Source, n); got != s {
					t.Fatalf("n=%d: target %s on shard %d, Assign says %d", n, et.Name, s, got)
				}
			}
		}
	}
}

// TestMergeDifferential is the exact-merge guard on hand-written
// procedures: for N in {1,2,4}, scattering a query over N shard DBs and
// merging must reproduce the single node's rankings and raw scores to
// the bit, through the JSON wire form.
func TestMergeDifferential(t *testing.T) {
	ex := buildSmallDB(t).Export()
	single, err := core.FromExport(ex)
	if err != nil {
		t.Fatal(err)
	}
	for _, qsrc := range []string{gccStyle, memStyle} {
		q := parse(t, qsrc)
		want, err := single.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 4} {
			man, dbs := splitDBs(t, ex, n)
			got, missing := scatterQuery(t, man, dbs, q, -1)
			if len(missing) != 0 {
				t.Fatalf("n=%d: unexpected missing shards %v", n, missing)
			}
			requireIdentical(t, want, got, q.Name)
		}
	}
}

func TestMergeMissingShard(t *testing.T) {
	ex := buildSmallDB(t).Export()
	single, err := core.FromExport(ex)
	if err != nil {
		t.Fatal(err)
	}
	q := parse(t, gccStyle)
	want, err := single.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	n := 2
	man, dbs := splitDBs(t, ex, n)
	// Find a shard that actually holds targets, and drop the other one
	// first to exercise the degraded path with survivors.
	for drop := 0; drop < n; drop++ {
		if len(man.Shards[drop].Targets) == len(ex.Targets) {
			continue // dropping it would leave no responders' targets... still valid, skip for assert simplicity
		}
		rep, missing := scatterQuery(t, man, dbs, q, drop)
		if len(missing) != 1 || missing[0] != drop {
			t.Fatalf("drop=%d: missing=%v", drop, missing)
		}
		wantNames := map[string]bool{}
		for _, ti := range man.Shards[drop].Targets {
			wantNames[ex.Targets[ti].Name] = true
		}
		if len(rep.Results) != len(ex.Targets)-len(man.Shards[drop].Targets) {
			t.Fatalf("drop=%d: %d results, want %d", drop, len(rep.Results), len(ex.Targets)-len(man.Shards[drop].Targets))
		}
		for _, ts := range rep.Results {
			if wantNames[ts.Target.Name] {
				t.Fatalf("drop=%d: result includes %s from the dropped shard", drop, ts.Target.Name)
			}
		}
	}
	_ = want
}

func TestMergeRejectsMixedFleet(t *testing.T) {
	ex := buildSmallDB(t).Export()
	man, dbs := splitDBs(t, ex, 2)
	q := parse(t, gccStyle)
	var parts []*Partial
	for _, db := range dbs {
		qp, err := db.PartialQueryCtx(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, FromQueryPartial(qp, db.Shard()))
	}
	parts[1].Generation = "deadbeefdeadbeef"
	if _, _, err := Merge(man, parts); err == nil {
		t.Fatal("merge accepted a shard from another fleet generation")
	}
	parts[1].Generation = man.Generation
	parts[1].SigmoidK = 7
	if _, _, err := Merge(man, parts); err == nil {
		t.Fatal("merge accepted a shard with a different sigmoid k")
	}
	if _, _, err := Merge(man, nil); err == nil {
		t.Fatal("merge of zero partials succeeded")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	ex := buildSmallDB(t).Export()
	man, _, err := Split(ex, 2)
	if err != nil {
		t.Fatal(err)
	}
	man.Shards[0].File, man.Shards[0].Checksum = "corpus.eshidx.0", "aa"
	man.Shards[1].File, man.Shards[1].Checksum = "corpus.eshidx.1", "bb"
	var buf bytes.Buffer
	if err := WriteManifest(&buf, man); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(man, got) {
		t.Fatalf("manifest round trip:\nwant %+v\ngot  %+v", man, got)
	}
	// Corruption must be detected.
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 1
	if _, err := ReadManifest(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted manifest accepted")
	}
}

// TestSaveShardsDifferential is the full-path guard on a real (small)
// compiled corpus: save shards + manifest to disk, reload each shard
// snapshot the way eshd would, scatter representative vulnerability
// queries, and require bit-identity with the single node — for N in
// {1,2,4} — plus the one-shard-down degraded path.
func TestSaveShardsDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("compiled-corpus shard differential is slow")
	}
	var tcs []compile.Toolchain
	for _, n := range []string{"gcc-4.9", "clang-3.5"} {
		tc, ok := compile.ByName(n)
		if !ok {
			t.Fatalf("unknown toolchain %q", n)
		}
		tcs = append(tcs, tc)
	}
	procs, err := corpus.Build(corpus.BuildConfig{Toolchains: tcs})
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDB(core.Options{Workers: 4})
	for _, p := range procs {
		if err := db.AddTarget(p); err != nil {
			t.Fatal(err)
		}
	}
	ex := db.Export()

	qtc, _ := compile.ByName("icc-15.0.1")
	q, err := corpus.CompileVuln(corpus.Vulns()[0], qtc, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 2, 4} {
		dir := t.TempDir()
		man, err := SaveShards(dir+"/corpus.eshmani", ex, n)
		if err != nil {
			t.Fatal(err)
		}
		reloaded, err := LoadManifest(dir + "/corpus.eshmani")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(man, reloaded) {
			t.Fatalf("n=%d: manifest did not round-trip through disk", n)
		}
		dbs := make([]*core.DB, n)
		for s, se := range man.Shards {
			var err error
			dbs[s], err = loadShard(dir+"/"+se.File, se.Checksum)
			if err != nil {
				t.Fatalf("n=%d shard %d: %v", n, s, err)
			}
		}
		got, missing := scatterQuery(t, man, dbs, q, -1)
		if len(missing) != 0 {
			t.Fatalf("n=%d: missing %v", n, missing)
		}
		requireIdentical(t, want, got, q.Name)
		if n > 1 {
			got, missing = scatterQuery(t, man, dbs, q, 0)
			if len(missing) != 1 || missing[0] != 0 {
				t.Fatalf("n=%d: degraded merge missing=%v", n, missing)
			}
			if len(got.Results) != len(want.Results)-len(man.Shards[0].Targets) {
				t.Fatalf("n=%d: degraded merge has %d results", n, len(got.Results))
			}
		}
	}
}
