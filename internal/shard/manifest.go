package shard

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/index"
)

// ManifestMagic identifies manifest files; ManifestVersion is the
// current format. The header line mirrors the snapshot format —
//
//	eshmani <version> <body-length> <sha256-of-body>\n
//
// — so corruption is detectable before parsing.
const (
	ManifestMagic   = "eshmani"
	ManifestVersion = 1
)

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WriteManifest encodes the manifest to w.
func WriteManifest(w io.Writer, m *Manifest) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "generation %s\n", strconv.Quote(m.Generation))
	fmt.Fprintf(&b, "opts sigmoidk=%s kernel=%s prefilter=%s lshmincont=%s retrieval=%s\n",
		ftoa(m.SigmoidK), m.Kernel, m.Prefilter, ftoa(m.LSHMinContainment), m.Retrieval)
	fmt.Fprintf(&b, "targets %d\n", m.NumTargets)
	fmt.Fprintf(&b, "counts %d", len(m.Counts))
	for _, c := range m.Counts {
		fmt.Fprintf(&b, " %d", c)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "shards %d\n", len(m.Shards))
	for id, se := range m.Shards {
		fmt.Fprintf(&b, "shard %d %s %s\n", id, strconv.Quote(se.File), strconv.Quote(se.Checksum))
		writeIntList(&b, "st", se.Targets)
		writeIntList(&b, "ss", se.Strands)
	}
	body := b.Bytes()
	sum := sha256.Sum256(body)
	if _, err := fmt.Fprintf(w, "%s %d %d %s\n", ManifestMagic, ManifestVersion, len(body), hex.EncodeToString(sum[:])); err != nil {
		return fmt.Errorf("shard: write manifest header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("shard: write manifest body: %w", err)
	}
	return nil
}

func writeIntList(b *bytes.Buffer, tag string, vals []int) {
	fmt.Fprintf(b, "%s %d", tag, len(vals))
	for _, v := range vals {
		fmt.Fprintf(b, " %d", v)
	}
	b.WriteByte('\n')
}

// SaveManifest writes the manifest atomically to path.
func SaveManifest(path string, m *Manifest) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".eshmani-*")
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := WriteManifest(bw, m); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("shard: flush %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("shard: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// ReadManifest decodes and verifies a manifest.
func ReadManifest(r io.Reader) (*Manifest, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("shard: read manifest header: %w", err)
	}
	var magic, sumHex string
	var version, bodyLen int
	if _, err := fmt.Sscanf(strings.TrimSuffix(header, "\n"), "%s %d %d %s", &magic, &version, &bodyLen, &sumHex); err != nil {
		return nil, fmt.Errorf("shard: malformed manifest header %q", strings.TrimSpace(header))
	}
	if magic != ManifestMagic {
		return nil, fmt.Errorf("shard: not a manifest (magic %q)", magic)
	}
	if version != ManifestVersion {
		return nil, fmt.Errorf("shard: unsupported manifest version %d (have %d)", version, ManifestVersion)
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("shard: read manifest body: %w", err)
	}
	if len(body) != bodyLen {
		return nil, fmt.Errorf("shard: truncated manifest: body is %d bytes, header says %d", len(body), bodyLen)
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, fmt.Errorf("shard: manifest checksum mismatch: file is corrupted")
	}
	return decodeManifest(body)
}

// LoadManifest reads a manifest from path.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	defer f.Close()
	m, err := ReadManifest(f)
	if err != nil {
		return nil, fmt.Errorf("shard: load %s: %w", path, err)
	}
	return m, nil
}

func decodeManifest(body []byte) (*Manifest, error) {
	lines := strings.Split(string(body), "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	pos := 0
	next := func() (string, error) {
		if pos >= len(lines) {
			return "", fmt.Errorf("shard: manifest truncated at line %d", pos+1)
		}
		pos++
		return lines[pos-1], nil
	}
	record := func(tag string) ([]string, error) {
		line, err := next()
		if err != nil {
			return nil, err
		}
		toks, err := splitQuoted(line)
		if err != nil {
			return nil, fmt.Errorf("shard: manifest line %d: %w", pos, err)
		}
		if len(toks) == 0 || toks[0] != tag {
			return nil, fmt.Errorf("shard: manifest line %d: expected %q record, got %q", pos, tag, line)
		}
		return toks[1:], nil
	}
	intList := func(tag string) ([]int, error) {
		toks, err := record(tag)
		if err != nil {
			return nil, err
		}
		vals := make([]int, len(toks))
		for i, t := range toks {
			vals[i], err = strconv.Atoi(t)
			if err != nil {
				return nil, fmt.Errorf("shard: manifest line %d: bad integer %q", pos, t)
			}
		}
		if len(vals) == 0 || vals[0] != len(vals)-1 {
			return nil, fmt.Errorf("shard: manifest line %d: %q list length mismatch", pos, tag)
		}
		if len(vals) == 1 {
			return nil, nil // keep empty == nil so manifests round-trip DeepEqual
		}
		return vals[1:], nil
	}

	m := &Manifest{}
	toks, err := record("generation")
	if err != nil {
		return nil, err
	}
	if len(toks) != 1 {
		return nil, fmt.Errorf("shard: manifest: malformed generation record")
	}
	m.Generation = toks[0]

	toks, err = record("opts")
	if err != nil {
		return nil, err
	}
	for _, kv := range toks {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("shard: manifest: bad option %q", kv)
		}
		switch key {
		case "sigmoidk":
			m.SigmoidK, err = strconv.ParseFloat(val, 64)
		case "kernel":
			m.Kernel = val
		case "prefilter":
			m.Prefilter = val
		case "lshmincont":
			m.LSHMinContainment, err = strconv.ParseFloat(val, 64)
		case "retrieval":
			m.Retrieval = val
		}
		if err != nil {
			return nil, fmt.Errorf("shard: manifest: bad option %q: %w", kv, err)
		}
	}

	toks, err = record("targets")
	if err != nil {
		return nil, err
	}
	m.NumTargets, err = strconv.Atoi(toks[0])
	if err != nil || m.NumTargets < 0 {
		return nil, fmt.Errorf("shard: manifest: bad target count %q", toks[0])
	}
	if m.Counts, err = intList("counts"); err != nil {
		return nil, err
	}

	toks, err = record("shards")
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(toks[0])
	if err != nil || n < 1 {
		return nil, fmt.Errorf("shard: manifest: bad shard count %q", toks[0])
	}
	m.Shards = make([]ShardEntry, n)
	seenTarget := make([]bool, m.NumTargets)
	for id := 0; id < n; id++ {
		toks, err := record("shard")
		if err != nil {
			return nil, err
		}
		if len(toks) != 3 {
			return nil, fmt.Errorf("shard: manifest: malformed shard record")
		}
		if got, _ := strconv.Atoi(toks[0]); got != id {
			return nil, fmt.Errorf("shard: manifest: shard record %s out of order (want %d)", toks[0], id)
		}
		se := &m.Shards[id]
		se.File, se.Checksum = toks[1], toks[2]
		if se.Targets, err = intList("st"); err != nil {
			return nil, err
		}
		if se.Strands, err = intList("ss"); err != nil {
			return nil, err
		}
		for _, ti := range se.Targets {
			if ti < 0 || ti >= m.NumTargets {
				return nil, fmt.Errorf("shard: manifest: shard %d target index %d out of range [0,%d)", id, ti, m.NumTargets)
			}
			if seenTarget[ti] {
				return nil, fmt.Errorf("shard: manifest: target %d assigned to two shards", ti)
			}
			seenTarget[ti] = true
		}
		for _, g := range se.Strands {
			if g < 0 || g >= len(m.Counts) {
				return nil, fmt.Errorf("shard: manifest: shard %d strand index %d out of range [0,%d)", id, g, len(m.Counts))
			}
		}
	}
	for ti, ok := range seenTarget {
		if !ok {
			return nil, fmt.Errorf("shard: manifest: target %d assigned to no shard", ti)
		}
	}
	if pos != len(lines) {
		return nil, fmt.Errorf("shard: manifest: trailing data after final shard")
	}
	return m, nil
}

// splitQuoted tokenizes a manifest line, decoding %q-quoted tokens.
func splitQuoted(line string) ([]string, error) {
	var out []string
	for {
		line = strings.TrimLeft(line, " ")
		if line == "" {
			return out, nil
		}
		if line[0] == '"' {
			q, err := strconv.QuotedPrefix(line)
			if err != nil {
				return nil, fmt.Errorf("bad quoted token: %w", err)
			}
			u, err := strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("bad quoted token %s: %w", q, err)
			}
			out = append(out, u)
			line = line[len(q):]
			continue
		}
		if i := strings.IndexByte(line, ' '); i >= 0 {
			out = append(out, line[:i])
			line = line[i:]
		} else {
			return append(out, line), nil
		}
	}
}

// SaveShards splits the corpus n ways and writes the manifest at path
// with the shard snapshots alongside it (path.0 … path.N-1). Each
// snapshot's checksum lands in the manifest, so loading the manifest is
// enough to verify the fleet a gateway is about to trust.
func SaveShards(path string, ex *core.Export, n int) (*Manifest, error) {
	man, shards, err := Split(ex, n)
	if err != nil {
		return nil, err
	}
	for s, se := range shards {
		file := fmt.Sprintf("%s.%d", filepath.Base(path), s)
		info, err := index.SaveExportFile(filepath.Join(filepath.Dir(path), file), se)
		if err != nil {
			return nil, fmt.Errorf("shard: save shard %d: %w", s, err)
		}
		man.Shards[s].File = file
		man.Shards[s].Checksum = info.Checksum
	}
	if err := SaveManifest(path, man); err != nil {
		return nil, err
	}
	return man, nil
}
