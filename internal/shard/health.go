package shard

import "time"

// Fleet-health wire types: the JSON shapes behind the gateway's
// GET /v1/fleet view. They live here, next to Manifest and Partial,
// because they are fleet vocabulary — a monitoring client should be
// able to consume them without importing the gateway.

// ReplicaHealth is one replica's liveness as the gateway sees it.
type ReplicaHealth struct {
	URL   string `json:"url"`
	Ready bool   `json:"ready"`
}

// ScrapeStatus describes the gateway's last /metrics scrape of a shard:
// which replica it hit, when, how long it took, and what went wrong.
// Series is the number of samples the scrape yielded (0 on failure).
type ScrapeStatus struct {
	Replica string    `json:"replica,omitempty"`
	At      time.Time `json:"at,omitempty"`
	Millis  float64   `json:"millis,omitempty"`
	Series  int       `json:"series,omitempty"`
	Err     string    `json:"error,omitempty"`
}

// ShardHealth is one shard's row in the fleet view.
type ShardHealth struct {
	ID       int             `json:"id"`
	Targets  int             `json:"targets"`
	Replicas []ReplicaHealth `json:"replicas"`
	// P50/P95/P99 are the gateway-observed latency quantiles of this
	// shard's fan-out legs, in milliseconds (zero until traffic).
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// UptimeSeconds is the shard's own uptime taken from its last
	// successful /metrics scrape (0 when never scraped).
	UptimeSeconds float64       `json:"uptime_seconds,omitempty"`
	LastScrape    *ScrapeStatus `json:"last_scrape,omitempty"`
}

// FleetHealth is the gateway's GET /v1/fleet reply.
type FleetHealth struct {
	Generation    string    `json:"generation"`
	StartTime     time.Time `json:"start_time"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	// Ready mirrors /readyz: every shard has at least one ready replica.
	Ready         bool          `json:"ready"`
	Replicas      int           `json:"replicas"`
	ReadyReplicas int           `json:"ready_replicas"`
	Shards        []ShardHealth `json:"shards"`
}
