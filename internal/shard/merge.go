package shard

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/core"
)

// Partial is one shard's contribution to a scattered query, in wire
// form: the serialization of core.QueryPartial plus the shard identity
// the coordinator checks against its manifest. JSON float64 round-trips
// exactly in Go (shortest-representation encoding), so shipping rows as
// JSON loses no bits.
type Partial struct {
	ShardID    int    `json:"shard_id"`
	ShardCount int    `json:"shard_count"`
	Generation string `json:"generation"`

	QueryName  string         `json:"query_name"`
	Source     asm.Provenance `json:"source"`
	NumBlocks  int            `json:"num_blocks"`
	NumStrands int            `json:"num_strands"`
	SigmoidK   float64        `json:"sigmoid_k"`
	// DataGeneration and PendingWrites report live-write drift on the
	// answering shard: a nonzero value means its corpus no longer
	// matches the manifest's counts, and Merge refuses rather than
	// finalize against stale multiplicities.
	DataGeneration uint64 `json:"data_generation,omitempty"`
	PendingWrites  int    `json:"pending_writes,omitempty"`
	// Weights and Rows are indexed by unique query strand, in the
	// decomposition order every shard derives identically from the
	// query text; Rows' second index is the shard-local strand order
	// the manifest's Strands map translates to global.
	Weights []float64       `json:"weights"`
	Rows    [][]float64     `json:"rows"`
	Targets []TargetPartial `json:"targets"`
}

// TargetPartial is one target's shard-exact reductions in wire form.
type TargetPartial struct {
	Name       string         `json:"name"`
	Source     asm.Provenance `json:"source"`
	NumBlocks  int            `json:"num_blocks"`
	NumStrands int            `json:"num_strands"`
	SVCP       float64        `json:"svcp"`
	MaxVCP     []float64      `json:"max_vcp"`
}

// FromQueryPartial converts an engine partial to wire form.
func FromQueryPartial(qp *core.QueryPartial, si core.ShardInfo) *Partial {
	p := &Partial{
		ShardID:        si.ID,
		ShardCount:     si.Count,
		Generation:     si.Generation,
		DataGeneration: qp.DataGeneration,
		PendingWrites:  qp.PendingWrites,
		QueryName:      qp.QueryName,
		Source:         qp.Source,
		NumBlocks:      qp.NumBlocks,
		NumStrands:     qp.NumStrands,
		SigmoidK:       qp.SigmoidK,
		Weights:        qp.Weights,
		Rows:           qp.Rows,
		Targets:        make([]TargetPartial, len(qp.Targets)),
	}
	for i, ps := range qp.Targets {
		p.Targets[i] = TargetPartial{
			Name:       ps.Target.Name,
			Source:     ps.Target.Source,
			NumBlocks:  ps.Target.NumBlocks,
			NumStrands: ps.Target.NumStrands,
			SVCP:       ps.SVCP,
			MaxVCP:     ps.MaxVCP,
		}
	}
	return p
}

// Merge reassembles shard partials into the single-node result. With
// every shard present the output is bit-identical to core.Query on the
// union corpus: the global VCP rows are rebuilt in global strand order
// (each entry computed on some shard, per-pair deterministic), the
// per-target reductions pass through untouched, the targets are laid
// out in global (corpus build) order, and core.QueryPartial.Finalize
// then runs the same H0/GES float sequence and the same stable sort a
// single node runs.
//
// Missing shards degrade gracefully: their targets are absent from the
// report, and strands covered only by missing shards are excluded from
// the H0 estimate by zeroing their counts (an H0Accumulator.Add with
// multiplicity 0 is a no-op), so the surviving targets' scores are the
// best estimate available from the reachable corpus. The returned slice
// lists the missing shard IDs (nil when the fleet was complete).
func Merge(man *Manifest, parts []*Partial) (*core.Report, []int, error) {
	n := len(man.Shards)
	byShard := make([]*Partial, n)
	var first *Partial
	for _, p := range parts {
		if p == nil {
			continue
		}
		if p.ShardID < 0 || p.ShardID >= n {
			return nil, nil, fmt.Errorf("shard: merge: shard id %d out of range [0,%d)", p.ShardID, n)
		}
		if p.ShardCount != n {
			return nil, nil, fmt.Errorf("shard: merge: shard %d reports fleet of %d, manifest has %d", p.ShardID, p.ShardCount, n)
		}
		if p.Generation != man.Generation {
			return nil, nil, fmt.Errorf("shard: merge: shard %d is generation %q, manifest is %q", p.ShardID, p.Generation, man.Generation)
		}
		if byShard[p.ShardID] != nil {
			return nil, nil, fmt.Errorf("shard: merge: two partials for shard %d", p.ShardID)
		}
		byShard[p.ShardID] = p
		if first == nil {
			first = p
		}
	}
	if first == nil {
		return nil, nil, fmt.Errorf("shard: merge: no shard responded")
	}

	var missing []int
	for s, p := range byShard {
		if p == nil {
			missing = append(missing, s)
			continue
		}
		if err := checkPartial(man, first, p); err != nil {
			return nil, nil, err
		}
	}

	// Rebuild the dense global rows. A strand shared by two shards is
	// written twice with bitwise-equal values (same deterministic pair
	// computation), so overwrite order is irrelevant.
	nq := len(first.Weights)
	rows := make([][]float64, nq)
	for i := range rows {
		rows[i] = make([]float64, len(man.Counts))
	}
	covered := make([]bool, len(man.Counts))
	for s, p := range byShard {
		if p == nil {
			continue
		}
		for j, g := range man.Shards[s].Strands {
			covered[g] = true
			for i := range rows {
				rows[i][g] = p.Rows[i][j]
			}
		}
	}
	counts := man.Counts
	if len(missing) > 0 {
		counts = make([]int, len(man.Counts))
		for g, ok := range covered {
			if ok {
				counts[g] = man.Counts[g]
			}
		}
	}

	// Lay the targets out in global corpus order — the single-node
	// pre-sort order, so the stable GES sort breaks ties identically.
	type loc struct{ s, k int }
	at := make(map[int]loc, man.NumTargets)
	for s, p := range byShard {
		if p == nil {
			continue
		}
		for k := range p.Targets {
			at[man.Shards[s].Targets[k]] = loc{s, k}
		}
	}
	order := make([]int, 0, len(at))
	for ti := range at {
		order = append(order, ti)
	}
	sort.Ints(order)
	targets := make([]core.PartialScore, 0, len(order))
	for _, ti := range order {
		l := at[ti]
		tp := byShard[l.s].Targets[l.k]
		targets = append(targets, core.PartialScore{
			Target: &core.Target{
				Name:       tp.Name,
				Source:     tp.Source,
				NumBlocks:  tp.NumBlocks,
				NumStrands: tp.NumStrands,
			},
			SVCP:   tp.SVCP,
			MaxVCP: tp.MaxVCP,
		})
	}

	qp := &core.QueryPartial{
		QueryName:  first.QueryName,
		Source:     first.Source,
		NumBlocks:  first.NumBlocks,
		NumStrands: first.NumStrands,
		SigmoidK:   first.SigmoidK,
		Weights:    first.Weights,
		Rows:       rows,
		Targets:    targets,
	}
	return qp.Finalize(counts), missing, nil
}

// checkPartial validates one shard's partial against the manifest and
// the fleet-wide query view (every shard must derive the identical
// query decomposition, or rows cannot be merged by index).
func checkPartial(man *Manifest, first, p *Partial) error {
	s := p.ShardID
	if p.DataGeneration != 0 || p.PendingWrites != 0 {
		// Live writes mutated the shard since its snapshot was split:
		// the manifest's union counts no longer describe its corpus, so
		// finalizing against them would silently corrupt scores.
		return fmt.Errorf("shard: merge: shard %d has drifted from its snapshot (data generation %d, %d pending writes); re-split the corpus",
			s, p.DataGeneration, p.PendingWrites)
	}
	if p.SigmoidK != man.SigmoidK {
		return fmt.Errorf("shard: merge: shard %d ran sigmoid k=%g, manifest says %g", s, p.SigmoidK, man.SigmoidK)
	}
	if p.QueryName != first.QueryName || p.NumStrands != first.NumStrands || len(p.Weights) != len(first.Weights) {
		return fmt.Errorf("shard: merge: shard %d answered a different query (%q, %d strands) than shard %d (%q, %d strands)",
			s, p.QueryName, len(p.Weights), first.ShardID, first.QueryName, len(first.Weights))
	}
	for i, w := range p.Weights {
		if w != first.Weights[i] {
			return fmt.Errorf("shard: merge: shard %d disagrees on query strand %d weight (%g vs %g)", s, i, w, first.Weights[i])
		}
	}
	if len(p.Rows) != len(p.Weights) {
		return fmt.Errorf("shard: merge: shard %d returned %d rows for %d query strands", s, len(p.Rows), len(p.Weights))
	}
	for i, row := range p.Rows {
		if len(row) != len(man.Shards[s].Strands) {
			return fmt.Errorf("shard: merge: shard %d row %d has %d entries, manifest maps %d strands", s, i, len(row), len(man.Shards[s].Strands))
		}
	}
	if len(p.Targets) != len(man.Shards[s].Targets) {
		return fmt.Errorf("shard: merge: shard %d returned %d targets, manifest assigns %d", s, len(p.Targets), len(man.Shards[s].Targets))
	}
	for k, tp := range p.Targets {
		if len(tp.MaxVCP) != len(p.Weights) {
			return fmt.Errorf("shard: merge: shard %d target %d has %d max-VCP entries for %d query strands", s, k, len(tp.MaxVCP), len(p.Weights))
		}
	}
	return nil
}
