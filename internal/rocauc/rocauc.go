// Package rocauc implements the classifier-evaluation measures of the
// paper's §5.4: ROC AUC over ranked similarity scores, the Concentrated
// ROC (CROC) of Swamidass et al. for early-retrieval settings, and the
// false-positive count a human examiner would wade through before
// confirming every true positive.
package rocauc

import (
	"math"
	"sort"
)

// Sample is one ranked item: a similarity score and its ground truth.
type Sample struct {
	Score    float64
	Positive bool
}

// rankOrder sorts descending by score; ties keep input order (stable), a
// neutral convention as long as callers present ties in a fixed order.
func rankOrder(samples []Sample) []Sample {
	out := make([]Sample, len(samples))
	copy(out, samples)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// ROC returns the area under the ROC curve: the probability that a
// random positive outranks a random negative, with ties counting half
// (the Mann-Whitney formulation the paper's threshold sweep computes).
func ROC(samples []Sample) float64 {
	var nPos, nNeg float64
	for _, s := range samples {
		if s.Positive {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0
	}
	wins := 0.0
	for _, p := range samples {
		if !p.Positive {
			continue
		}
		for _, n := range samples {
			if n.Positive {
				continue
			}
			switch {
			case p.Score > n.Score:
				wins++
			case p.Score == n.Score:
				wins += 0.5
			}
		}
	}
	return wins / (nPos * nNeg)
}

// DefaultAlpha is the CROC exponential magnification factor; Swamidass
// et al. recommend α = 7 (magnifying the first ~14% of the ranking).
const DefaultAlpha = 7.0

// CROC returns the Concentrated ROC AUC with magnifier α: the ROC curve
// is integrated against the transformed false-positive axis
// x' = (1 - exp(-αx)) / (1 - exp(-α)), which rewards classifiers whose
// true positives concentrate at the very top of the ranking.
func CROC(samples []Sample, alpha float64) float64 {
	ranked := rankOrder(samples)
	var nPos, nNeg float64
	for _, s := range ranked {
		if s.Positive {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0
	}
	norm := 1 - math.Exp(-alpha)
	transform := func(x float64) float64 { return (1 - math.Exp(-alpha*x)) / norm }

	// Walk the ranking accumulating the curve; integrate TPR over the
	// transformed FPR axis with the trapezoid rule. Score ties advance
	// as a single diagonal segment.
	auc := 0.0
	tp, fp := 0.0, 0.0
	prevFPR, prevTPR := 0.0, 0.0
	i := 0
	for i < len(ranked) {
		j := i
		dTP, dFP := 0.0, 0.0
		for j < len(ranked) && ranked[j].Score == ranked[i].Score {
			if ranked[j].Positive {
				dTP++
			} else {
				dFP++
			}
			j++
		}
		tp += dTP
		fp += dFP
		fpr := transform(fp / nNeg)
		tpr := tp / nPos
		auc += (fpr - prevFPR) * (prevTPR + tpr) / 2
		prevFPR, prevTPR = fpr, tpr
		i = j
	}
	// Close the curve to (1,1).
	auc += (transform(1) - prevFPR) * (prevTPR + 1) / 2
	return auc
}

// FalsePositives returns the number of negatives ranked above the
// lowest-ranked positive — the paper's count of non-matching procedures a
// human examiner tests before finding all true positives. Negatives tied
// with the last positive count as false positives (the examiner cannot
// distinguish them).
func FalsePositives(samples []Sample) int {
	ranked := rankOrder(samples)
	lastPos := -1
	minPosScore := math.Inf(1)
	for i, s := range ranked {
		if s.Positive {
			lastPos = i
			minPosScore = s.Score
		}
	}
	if lastPos < 0 {
		return 0
	}
	fp := 0
	for i, s := range ranked {
		if s.Positive {
			continue
		}
		if i < lastPos || s.Score == minPosScore {
			fp++
		}
	}
	return fp
}

// Accuracy returns (TP+TN)/(P+N) for a fixed score threshold, counting
// scores >= threshold as classified-positive (the quantity the paper's
// §5.4 sweeps to build the ROC curve).
func Accuracy(samples []Sample, threshold float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if (s.Score >= threshold) == s.Positive {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
