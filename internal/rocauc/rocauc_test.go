package rocauc

import (
	"math"
	"math/rand"
	"testing"
)

func perfect() []Sample {
	return []Sample{
		{10, true}, {9, true}, {8, true},
		{3, false}, {2, false}, {1, false},
	}
}

func inverted() []Sample {
	return []Sample{
		{10, false}, {9, false}, {8, false},
		{3, true}, {2, true}, {1, true},
	}
}

func TestROCPerfect(t *testing.T) {
	if got := ROC(perfect()); got != 1.0 {
		t.Errorf("ROC(perfect) = %v", got)
	}
	if got := ROC(inverted()); got != 0.0 {
		t.Errorf("ROC(inverted) = %v", got)
	}
}

func TestROCTies(t *testing.T) {
	// All scores equal: AUC is 0.5 by the tie convention.
	s := []Sample{{5, true}, {5, false}, {5, true}, {5, false}}
	if got := ROC(s); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ROC(all ties) = %v, want 0.5", got)
	}
}

func TestROCMixed(t *testing.T) {
	// One negative above one of two positives: AUC = 3/4... compute:
	// pairs: (10,5): win, (10,1): win? positives 10 and 2; negatives 5, 1.
	// (10>5), (10>1), (2<5), (2>1) => 3 wins / 4 = 0.75.
	s := []Sample{{10, true}, {5, false}, {2, true}, {1, false}}
	if got := ROC(s); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("ROC = %v, want 0.75", got)
	}
}

func TestROCDegenerate(t *testing.T) {
	if ROC([]Sample{{1, true}}) != 0 || ROC([]Sample{{1, false}}) != 0 || ROC(nil) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestCROCPerfectAndInverted(t *testing.T) {
	if got := CROC(perfect(), DefaultAlpha); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("CROC(perfect) = %v, want 1", got)
	}
	if got := CROC(inverted(), DefaultAlpha); got > 0.05 {
		t.Errorf("CROC(inverted) = %v, want ~0", got)
	}
}

func TestCROCPenalizesEarlyFPMoreThanROC(t *testing.T) {
	// Two rankings with the same ROC-style single swap, at the top vs at
	// the bottom: CROC must penalize the early false positive harder.
	earlyFP := []Sample{
		{11, false}, {10, true}, {9, true}, {8, true},
		{3, false}, {2, false}, {1, false},
	}
	lateFP := []Sample{
		{10, true}, {9, true}, {8, true}, {7, false},
		{3, false}, {2, false}, {1, true},
	}
	_ = lateFP
	rocEarly, crocEarly := ROC(earlyFP), CROC(earlyFP, DefaultAlpha)
	if crocEarly >= rocEarly {
		t.Errorf("CROC (%v) should be below ROC (%v) for an early FP", crocEarly, rocEarly)
	}
}

func TestCROCMonotoneInRankQuality(t *testing.T) {
	// Moving a positive up the ranking never lowers CROC.
	base := []Sample{
		{10, false}, {9, false}, {8, true}, {7, false}, {6, false},
	}
	better := []Sample{
		{10, false}, {9, true}, {8, false}, {7, false}, {6, false},
	}
	if CROC(better, DefaultAlpha) <= CROC(base, DefaultAlpha) {
		t.Error("CROC not monotone in positive rank")
	}
}

// Property: 0 <= CROC <= 1 and 0 <= ROC <= 1 on random rankings, and a
// random classifier's ROC concentrates around 0.5.
func TestQuickBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sumROC := 0.0
	const trials = 200
	for i := 0; i < trials; i++ {
		n := 20 + rng.Intn(30)
		s := make([]Sample, n)
		for j := range s {
			s[j] = Sample{Score: rng.Float64(), Positive: rng.Intn(4) == 0}
		}
		roc, croc := ROC(s), CROC(s, DefaultAlpha)
		if roc < 0 || roc > 1 || croc < 0 || croc > 1+1e-9 {
			t.Fatalf("out of bounds: ROC=%v CROC=%v", roc, croc)
		}
		if roc > 0 { // degenerate draws return 0
			sumROC += roc
		}
	}
	if mean := sumROC / trials; mean < 0.35 || mean > 0.65 {
		t.Errorf("random-classifier mean ROC = %v, want ~0.5", mean)
	}
}

func TestFalsePositives(t *testing.T) {
	if got := FalsePositives(perfect()); got != 0 {
		t.Errorf("FP(perfect) = %d", got)
	}
	if got := FalsePositives(inverted()); got != 3 {
		t.Errorf("FP(inverted) = %d", got)
	}
	mixed := []Sample{{10, true}, {5, false}, {2, true}, {1, false}}
	if got := FalsePositives(mixed); got != 1 {
		t.Errorf("FP(mixed) = %d, want 1", got)
	}
	// Ties with the last positive count as false positives.
	tied := []Sample{{10, true}, {5, true}, {5, false}, {1, false}}
	if got := FalsePositives(tied); got != 1 {
		t.Errorf("FP(tied) = %d, want 1", got)
	}
	if FalsePositives([]Sample{{1, false}}) != 0 {
		t.Error("FP with no positives should be 0")
	}
}

func TestAccuracy(t *testing.T) {
	s := perfect()
	if got := Accuracy(s, 5); got != 1.0 {
		t.Errorf("Accuracy at separating threshold = %v", got)
	}
	if got := Accuracy(s, 100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Accuracy at impossible threshold = %v, want 0.5", got)
	}
	if Accuracy(nil, 0) != 0 {
		t.Error("Accuracy(nil) != 0")
	}
}
