package vcp_test

// Differential guard for γ-batching at the corpus level: the batch
// width G is a dispatch knob, not a semantic one, so every width must
// produce Float64bits-identical VCP values and identical γ counts
// against the scalar reference over real lifted strand pairs — through
// both the one-shot ComputeWithStats path and the persistent Evaluator
// that core's pair loop uses.

import (
	"math"
	"testing"

	"repro/internal/vcp"
)

// TestGammaBatchDifferential pins that G ∈ {1, 2, 8, 16} all agree with
// the scalar interpreter on raw scores (bit-equal) and Correspondences
// over every compatible corpus strand pairing, and that the batch
// accounting is arithmetically consistent (a flush never carries more
// than G rows, and every counted correspondence rode in some flush).
func TestGammaBatchDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential is slow")
	}
	strands := corpusStrands(t)
	if len(strands) > 16 {
		strands = strands[:16]
	}

	scalarCfg := vcp.Config{Kernel: vcp.KernelScalar}
	scalarPrep := make([]*vcp.Prepared, len(strands))
	for i, s := range strands {
		scalarPrep[i] = vcp.Prepare(s, scalarCfg)
		if err := scalarPrep[i].Err(); err != nil {
			t.Fatalf("prepare %d (scalar): %v", i, err)
		}
	}
	// Scalar reference, computed once.
	type ref struct {
		v  float64
		st vcp.Stats
	}
	refs := make([][]ref, len(strands))
	for i := range strands {
		refs[i] = make([]ref, len(strands))
		for j := range strands {
			v, st := vcp.ComputeWithStats(scalarPrep[i], scalarPrep[j], scalarCfg)
			refs[i][j] = ref{v, st}
		}
	}

	for _, g := range []int{1, 2, 8, 16} {
		cfg := vcp.Config{Kernel: vcp.KernelBatch, GammaBatch: g}
		prep := make([]*vcp.Prepared, len(strands))
		for i, s := range strands {
			prep[i] = vcp.Prepare(s, cfg)
			if err := prep[i].Err(); err != nil {
				t.Fatalf("prepare %d (G=%d): %v", i, g, err)
			}
		}
		for i := range strands {
			// The Evaluator persists one kernel across every pairing of
			// this query — exactly core's stage-3 loop shape.
			ev := vcp.NewEvaluator(prep[i], cfg)
			for j := range strands {
				v, st := ev.Compute(prep[j])
				want := refs[i][j]
				if math.Float64bits(v) != math.Float64bits(want.v) {
					t.Fatalf("pair (%d,%d) G=%d: VCP %v != scalar %v", i, j, g, v, want.v)
				}
				if st.Correspondences != want.st.Correspondences {
					t.Fatalf("pair (%d,%d) G=%d: %d γ != scalar %d γ",
						i, j, g, st.Correspondences, want.st.Correspondences)
				}
				if st.BatchRows < int64(st.Correspondences) {
					t.Fatalf("pair (%d,%d) G=%d: %d batch rows < %d counted γ",
						i, j, g, st.BatchRows, st.Correspondences)
				}
				if st.BatchRows > st.Batches*int64(g) {
					t.Fatalf("pair (%d,%d) G=%d: %d rows over %d batches exceeds width",
						i, j, g, st.BatchRows, st.Batches)
				}
			}
			ev.Close()
		}
	}
}
