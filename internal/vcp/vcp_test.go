package vcp

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/ivl"
	"repro/internal/lift"
	"repro/internal/strand"
)

func iv(n string) ivl.Var { return ivl.Var{Name: n, Type: ivl.Int} }

func mkStrand(inputs []string, stmts ...ivl.Stmt) *strand.Strand {
	s := &strand.Strand{Stmts: stmts}
	for _, n := range inputs {
		s.Inputs = append(s.Inputs, iv(n))
	}
	return s
}

// liftFirstStrand lifts an asm snippet and returns the largest strand of
// its first block.
func liftFirstStrand(t *testing.T, src string) *strand.Strand {
	t.Helper()
	p, err := asm.ParseProc(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lift.LiftProc(g)
	if err != nil {
		t.Fatal(err)
	}
	strands := strand.FromBlock(p.Name, lp.Blocks[0])
	if len(strands) == 0 {
		t.Fatal("no strands")
	}
	best := strands[0]
	for _, s := range strands {
		if s.NumVars() > best.NumVars() {
			best = s
		}
	}
	return best
}

func TestComputeIdentical(t *testing.T) {
	q := mkStrand([]string{"x"},
		ivl.Assign(iv("a"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.C(1))),
		ivl.Assign(iv("b"), ivl.Bin(ivl.Mul, ivl.IntVar("a"), ivl.C(2))),
	)
	tt := mkStrand([]string{"y"},
		ivl.Assign(iv("c"), ivl.Bin(ivl.Add, ivl.IntVar("y"), ivl.C(1))),
		ivl.Assign(iv("d"), ivl.Bin(ivl.Mul, ivl.IntVar("c"), ivl.C(2))),
	)
	cfg := Config{MinVars: 1}
	got := Compute(Prepare(q, cfg), Prepare(tt, cfg), cfg)
	if got != 1.0 {
		t.Errorf("VCP = %v, want 1.0", got)
	}
}

func TestComputeAsymmetric(t *testing.T) {
	// Paper Fig. 3: query fully contained in a larger target gives
	// VCP(q,t) = 1 but VCP(t,q) < 1.
	q := mkStrand([]string{"r12"},
		ivl.Assign(iv("v1"), ivl.VarExpr{V: iv("r12")}),
		ivl.Assign(iv("v2"), ivl.Bin(ivl.Add, ivl.C(0x13), ivl.IntVar("v1"))),
		ivl.Assign(iv("r14"), ivl.IntVar("v2")),
		ivl.Assign(iv("v4"), ivl.C(0x18)),
		ivl.Assign(iv("rsi"), ivl.IntVar("v4")),
		ivl.Assign(iv("v5"), ivl.Bin(ivl.Add, ivl.IntVar("v4"), ivl.IntVar("v2"))),
		ivl.Assign(iv("rax"), ivl.IntVar("v5")),
	)
	tgt := mkStrand([]string{"rbx"},
		ivl.Assign(iv("t1"), ivl.C(0x13)),
		ivl.Assign(iv("r9"), ivl.IntVar("t1")),
		ivl.Assign(iv("t2"), ivl.VarExpr{V: iv("rbx")}),
		ivl.Assign(iv("t3"), ivl.Bin(ivl.Add, ivl.IntVar("t2"), ivl.IntVar("t1"))),
		ivl.Assign(iv("r13"), ivl.IntVar("t3")),
		ivl.Assign(iv("t5"), ivl.Bin(ivl.Add, ivl.IntVar("t1"), ivl.C(5))),
		ivl.Assign(iv("rsi2"), ivl.IntVar("t5")),
		ivl.Assign(iv("t6"), ivl.Bin(ivl.Add, ivl.IntVar("t5"), ivl.IntVar("t3"))),
		ivl.Assign(iv("rax2"), ivl.IntVar("t6")),
	)
	cfg := Config{MinVars: 1}
	fwd := Compute(Prepare(q, cfg), Prepare(tgt, cfg), cfg)
	if fwd != 1.0 {
		t.Errorf("VCP(q,t) = %v, want 1.0", fwd)
	}
	rev := Compute(Prepare(tgt, cfg), Prepare(q, cfg), cfg)
	if rev >= 1.0 {
		t.Errorf("VCP(t,q) = %v, want < 1 (r9=0x13 has no counterpart)", rev)
	}
	if rev < 0.5 {
		t.Errorf("VCP(t,q) = %v, unexpectedly low", rev)
	}
}

func TestComputeCommutedInputs(t *testing.T) {
	// q computes a-b; target computes y-x. Correct correspondence is
	// a->y? No: a-b equals y-x only under a=y, b=x. The enumeration must
	// find it even though input orders are swapped.
	q := mkStrand([]string{"a", "b"},
		ivl.Assign(iv("v"), ivl.Bin(ivl.Sub, ivl.IntVar("a"), ivl.IntVar("b"))),
	)
	tgt := mkStrand([]string{"x", "y"},
		ivl.Assign(iv("w"), ivl.Bin(ivl.Sub, ivl.IntVar("y"), ivl.IntVar("x"))),
	)
	cfg := Config{MinVars: 1}
	if got := Compute(Prepare(q, cfg), Prepare(tgt, cfg), cfg); got != 1.0 {
		t.Errorf("VCP = %v, want 1.0 (swap correspondence)", got)
	}
}

func TestComputeInputCountMismatch(t *testing.T) {
	q := mkStrand([]string{"a", "b"},
		ivl.Assign(iv("v"), ivl.Bin(ivl.Add, ivl.IntVar("a"), ivl.IntVar("b"))),
	)
	tgt := mkStrand([]string{"x"},
		ivl.Assign(iv("w"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.C(1))),
	)
	cfg := Config{MinVars: 1}
	if got := Compute(Prepare(q, cfg), Prepare(tgt, cfg), cfg); got != 0 {
		t.Errorf("VCP with more query inputs than target = %v, want 0", got)
	}
}

func TestComputeTypePreserving(t *testing.T) {
	mvar := ivl.Var{Name: "m", Type: ivl.Mem}
	q := &strand.Strand{
		Inputs: []ivl.Var{mvar, iv("p")},
		Stmts: []ivl.Stmt{
			ivl.Assign(iv("v"), ivl.LoadExpr{Mem: ivl.VarExpr{V: mvar}, Addr: ivl.IntVar("p"), W: 8}),
		},
	}
	// Target has two int inputs and no memory: no valid correspondence.
	tgt := mkStrand([]string{"x", "y"},
		ivl.Assign(iv("w"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.IntVar("y"))),
	)
	cfg := Config{MinVars: 1}
	if got := Compute(Prepare(q, cfg), Prepare(tgt, cfg), cfg); got != 0 {
		t.Errorf("VCP across types = %v, want 0", got)
	}
}

func TestComputeDifferent(t *testing.T) {
	q := mkStrand([]string{"x"},
		ivl.Assign(iv("a"), ivl.Bin(ivl.Mul, ivl.IntVar("x"), ivl.C(3))),
		ivl.Assign(iv("b"), ivl.Bin(ivl.Xor, ivl.IntVar("a"), ivl.C(0x55))),
	)
	tgt := mkStrand([]string{"y"},
		ivl.Assign(iv("c"), ivl.Bin(ivl.Add, ivl.IntVar("y"), ivl.C(7))),
		ivl.Assign(iv("d"), ivl.Bin(ivl.LShr, ivl.IntVar("c"), ivl.C(2))),
	)
	cfg := Config{MinVars: 1}
	if got := Compute(Prepare(q, cfg), Prepare(tgt, cfg), cfg); got != 0 {
		t.Errorf("VCP of unrelated strands = %v, want 0", got)
	}
}

func TestComputeCrossCompilerStrengthReduction(t *testing.T) {
	// gcc-style: shl; icc-style: imul; clang-style: lea with scale.
	shl := liftFirstStrand(t, "proc a\n\tmov rax, rdi\n\tshl rax, 3\n\tadd rax, rsi\n\tret\nendp")
	imul := liftFirstStrand(t, "proc b\n\tmov rax, rdi\n\timul rax, 8\n\tadd rax, rsi\n\tret\nendp")
	lea := liftFirstStrand(t, "proc c\n\tlea rax, [rsi+rdi*8]\n\tret\nendp")
	cfg := Config{MinVars: 1, SizeRatio: 0.1}
	if got := Compute(Prepare(shl, cfg), Prepare(imul, cfg), cfg); got != 1.0 {
		t.Errorf("VCP(shl,imul) = %v, want 1.0", got)
	}
	// The lea form computes the same final value; the smaller lea strand
	// must be fully contained in the shl strand.
	if got := Compute(Prepare(lea, cfg), Prepare(shl, cfg), cfg); got < 0.5 {
		t.Errorf("VCP(lea,shl) = %v, want >= 0.5", got)
	}
}

func TestSizeCompatible(t *testing.T) {
	small := mkStrand([]string{"x"}, ivl.Assign(iv("a"), ivl.IntVar("x")))
	big := mkStrand([]string{"x"},
		ivl.Assign(iv("a"), ivl.IntVar("x")),
		ivl.Assign(iv("b"), ivl.IntVar("a")),
		ivl.Assign(iv("c"), ivl.IntVar("b")),
		ivl.Assign(iv("d"), ivl.IntVar("c")),
		ivl.Assign(iv("e"), ivl.IntVar("d")),
	)
	if SizeCompatible(small, big, 0.5) {
		t.Error("1 vs 5 vars accepted at ratio 0.5")
	}
	if !SizeCompatible(big, big, 0.5) {
		t.Error("equal sizes rejected")
	}
	mid := mkStrand([]string{"x"},
		ivl.Assign(iv("a"), ivl.IntVar("x")),
		ivl.Assign(iv("b"), ivl.IntVar("a")),
		ivl.Assign(iv("c"), ivl.IntVar("b")),
	)
	if !SizeCompatible(big, mid, 0.5) {
		t.Error("5 vs 3 rejected at ratio 0.5")
	}
}

func TestDefaultConfig(t *testing.T) {
	d := Default()
	if d.MinVars != 5 || d.SizeRatio != 0.5 {
		t.Errorf("Default() = %+v; paper settings are MinVars=5, SizeRatio=0.5", d)
	}
	var zero Config
	n := zero.normalized()
	if n.Samples != d.Samples || n.MinVars != d.MinVars {
		t.Error("zero Config does not normalize to Default")
	}
}

func TestPrepareErrorPropagates(t *testing.T) {
	// A strand referencing an unbound variable (broken inputs) errors at
	// Prepare and yields VCP 0.
	broken := &strand.Strand{
		Stmts: []ivl.Stmt{ivl.Assign(iv("a"), ivl.IntVar("ghost"))},
	}
	cfg := Config{MinVars: 1}
	p := Prepare(broken, cfg)
	if p.Err() == nil {
		t.Error("broken strand prepared without error")
	}
	q := mkStrand([]string{"x"}, ivl.Assign(iv("a"), ivl.IntVar("x")))
	if got := Compute(Prepare(q, cfg), p, cfg); got != 0 {
		t.Errorf("VCP against broken target = %v, want 0", got)
	}
}
