package vcp

// Edge-case coverage for the batched γ loop: partial final batches,
// a perfect match in the middle of a batch, and the MaxCorrespondences
// cap landing inside a batch. The strands are built so that every input
// has the same role signature (each appears exactly once as the left
// and once as the right operand of a subtraction), which forces the
// candidate order to plain slot order and makes the enumeration
// sequence — all 3! = 6 permutations — fully predictable.

import (
	"math"
	"testing"

	"repro/internal/ivl"
	"repro/internal/strand"
)

// gammaQuery builds q over inputs (x, y, z):
//
//	v1 = x - y; v2 = y - z; v3 = z - x; v4 = v1 * 2
func gammaQuery() *strand.Strand {
	return mkStrand([]string{"x", "y", "z"},
		ivl.Assign(iv("v1"), ivl.Bin(ivl.Sub, ivl.IntVar("x"), ivl.IntVar("y"))),
		ivl.Assign(iv("v2"), ivl.Bin(ivl.Sub, ivl.IntVar("y"), ivl.IntVar("z"))),
		ivl.Assign(iv("v3"), ivl.Bin(ivl.Sub, ivl.IntVar("z"), ivl.IntVar("x"))),
		ivl.Assign(iv("v4"), ivl.Bin(ivl.Mul, ivl.IntVar("v1"), ivl.C(2))),
	)
}

// gammaTarget builds q's image under the correspondence x→b, y→c, z→a
// (assignment [1 2 0], the fourth of the six permutations the search
// tries), with the final multiplier as given: scale 2 makes that
// correspondence perfect, any other scale caps every match at 3/4.
func gammaTarget(scale uint64) *strand.Strand {
	return mkStrand([]string{"a", "b", "c"},
		ivl.Assign(iv("w1"), ivl.Bin(ivl.Sub, ivl.IntVar("b"), ivl.IntVar("c"))),
		ivl.Assign(iv("w2"), ivl.Bin(ivl.Sub, ivl.IntVar("c"), ivl.IntVar("a"))),
		ivl.Assign(iv("w3"), ivl.Bin(ivl.Sub, ivl.IntVar("a"), ivl.IntVar("b"))),
		ivl.Assign(iv("w4"), ivl.Bin(ivl.Mul, ivl.IntVar("w1"), ivl.C(scale))),
	)
}

// gammaRun computes VCP(q, t) under the width, asserting score parity
// with the scalar reference inline.
func gammaRun(t *testing.T, q, tgt *strand.Strand, g int, base Config) (float64, Stats) {
	t.Helper()
	cfg := base
	cfg.Kernel = KernelBatch
	cfg.GammaBatch = g
	v, st := ComputeWithStats(Prepare(q, cfg), Prepare(tgt, cfg), cfg)

	sc := base
	sc.Kernel = KernelScalar
	vs, ss := ComputeWithStats(Prepare(q, sc), Prepare(tgt, sc), sc)
	if math.Float64bits(v) != math.Float64bits(vs) {
		t.Fatalf("G=%d: VCP %v != scalar %v", g, v, vs)
	}
	if st.Correspondences != ss.Correspondences {
		t.Fatalf("G=%d: %d γ != scalar %d γ", g, st.Correspondences, ss.Correspondences)
	}
	return v, st
}

// TestGammaBatchPartialFlush: six candidates and no early exit, so the
// final flush is partial whenever 6 mod G ≠ 0. Every width evaluates
// exactly ceil(6/G) batches carrying exactly the six counted rows.
func TestGammaBatchPartialFlush(t *testing.T) {
	q, tgt := gammaQuery(), gammaTarget(3) // no perfect correspondence
	base := Config{MinVars: 1}
	for _, g := range []int{1, 2, 3, 8, 16} {
		v, st := gammaRun(t, q, tgt, g, base)
		if v != 0.75 {
			t.Errorf("G=%d: VCP = %v, want 0.75", g, v)
		}
		if st.Correspondences != 6 {
			t.Errorf("G=%d: tried %d γ, want all 6", g, st.Correspondences)
		}
		wantBatches := int64((6 + g - 1) / g)
		if st.Batches != wantBatches || st.BatchRows != 6 {
			t.Errorf("G=%d: %d batches / %d rows, want %d / 6",
				g, st.Batches, st.BatchRows, wantBatches)
		}
	}
}

// TestGammaBatchEarlyExit: the perfect correspondence is the fourth
// candidate, so at G ≥ 3 it lands mid-batch and the rows buffered after
// it are flushed but discarded uncounted — Correspondences stays at 4,
// exactly where the scalar loop stops.
func TestGammaBatchEarlyExit(t *testing.T) {
	q, tgt := gammaQuery(), gammaTarget(2) // assignment [1 2 0] is perfect
	base := Config{MinVars: 1}
	wantRows := map[int]int64{1: 4, 2: 4, 3: 6, 8: 6, 16: 6}
	for _, g := range []int{1, 2, 3, 8, 16} {
		v, st := gammaRun(t, q, tgt, g, base)
		if v != 1.0 {
			t.Errorf("G=%d: VCP = %v, want 1.0", g, v)
		}
		if st.Correspondences != 4 {
			t.Errorf("G=%d: tried %d γ, want 4 (early exit)", g, st.Correspondences)
		}
		if st.BatchRows != wantRows[g] {
			t.Errorf("G=%d: %d batch rows, want %d", g, st.BatchRows, wantRows[g])
		}
		if extra := st.BatchRows - int64(st.Correspondences); g >= 3 && extra != 2 {
			t.Errorf("G=%d: %d rows discarded after the perfect match, want 2", g, extra)
		}
	}
}

// TestGammaBatchCapMidBatch: MaxCorrespondences = 3 is not a multiple
// of most widths, so the cap lands inside a batch. The enumeration must
// stop buffering at exactly the cap — never evaluating a correspondence
// the unbatched loop would not have — and charge exactly cap rows.
func TestGammaBatchCapMidBatch(t *testing.T) {
	q, tgt := gammaQuery(), gammaTarget(3)
	base := Config{MinVars: 1, MaxCorrespondences: 3}
	wantBatches := map[int]int64{1: 3, 2: 2, 8: 1, 16: 1}
	for _, g := range []int{1, 2, 8, 16} {
		v, st := gammaRun(t, q, tgt, g, base)
		if v != 0.75 {
			t.Errorf("G=%d: VCP = %v, want 0.75", g, v)
		}
		if st.Correspondences != 3 {
			t.Errorf("G=%d: tried %d γ, want the cap (3)", g, st.Correspondences)
		}
		if st.Batches != wantBatches[g] || st.BatchRows != 3 {
			t.Errorf("G=%d: %d batches / %d rows, want %d / 3 (no work past the cap)",
				g, st.Batches, st.BatchRows, wantBatches[g])
		}
	}
}
