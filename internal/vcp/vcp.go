// Package vcp implements the paper's Algorithm 2: computing the Variable
// Containment Proportion between two strands by enumerating input
// correspondences γ, realizing the input-equality assumptions through
// shared sample slots, and counting query variables that have an
// equivalent counterpart in the target strand.
//
// The §5.5 engineering heuristics are implemented here as well: input
// correspondences are one-to-one, total on the query inputs and
// type-preserving; trivially small strands and grossly size-mismatched
// pairs are rejected before any verifier work; and per-strand evaluation
// vectors are computed once and reused across correspondences (the
// batched-query optimization).
package vcp

import (
	"time"

	"repro/internal/ivl"
	"repro/internal/smt"
	"repro/internal/strand"
)

// Evaluation kernel modes: how the γ loop evaluates compiled strands.
const (
	// KernelBatch is the batched structure-of-arrays kernel (smt.Kernel):
	// one instruction dispatch per lane vector, γ-invariant prefix
	// hoisting, pooled allocation-free buffers. The default.
	KernelBatch = "batch"
	// KernelScalar is the scalar reference interpreter
	// (smt.Program.Fingerprints): one full pass per sample. Kept as the
	// differential oracle and escape hatch.
	KernelScalar = "scalar"
)

// Config tunes the VCP computation. The zero value selects the paper's
// settings via Default.
type Config struct {
	// Samples is the number of evaluation vectors (verifier precision).
	Samples int
	// MinVars rejects query strands with fewer defined variables
	// (paper §5.5 uses 5).
	MinVars int
	// SizeRatio rejects target strands whose variable count is below
	// SizeRatio or above 1/SizeRatio times the query's (paper: 0.5).
	SizeRatio float64
	// MaxCorrespondences caps the γ enumeration per strand pair.
	MaxCorrespondences int
	// Kernel selects the evaluation kernel: KernelBatch ("" or "batch")
	// or KernelScalar. Both produce byte-identical fingerprints; the
	// choice never affects rankings.
	Kernel string
	// GammaBatch is the γ-batch width G: the batched kernel accumulates
	// up to G complete correspondences and evaluates them through one
	// suffix execution over G×Samples lanes. 0 selects
	// DefaultGammaBatch; 1 evaluates per correspondence (the classic
	// path). Any width produces byte-identical scores and identical
	// Correspondences counts — batching changes dispatch, not semantics.
	GammaBatch int
}

// DefaultGammaBatch is the γ-batch width used when Config.GammaBatch is
// zero: wide enough to amortize instruction dispatch and overlap the
// fingerprint fold chains, narrow enough that a typical pair (a handful
// of correspondences) still fills most of its final batch.
const DefaultGammaBatch = 8

// MaxGammaBatch bounds the configurable width; beyond this the lane
// buffers outgrow L1 for typical strands and wider stops paying.
const MaxGammaBatch = 64

// Default returns the configuration used in the paper's experiments.
func Default() Config {
	return Config{
		Samples:            smt.DefaultSamples,
		MinVars:            5,
		SizeRatio:          0.5,
		MaxCorrespondences: 96, // role signatures order the search; see Compute
	}
}

// normalized fills in zero fields.
func (c Config) normalized() Config {
	d := Default()
	if c.Samples <= 0 {
		c.Samples = d.Samples
	}
	if c.MinVars <= 0 {
		c.MinVars = d.MinVars
	}
	if c.SizeRatio <= 0 {
		c.SizeRatio = d.SizeRatio
	}
	if c.MaxCorrespondences <= 0 {
		c.MaxCorrespondences = d.MaxCorrespondences
	}
	if c.Kernel == "" {
		c.Kernel = KernelBatch
	}
	if c.GammaBatch <= 0 {
		c.GammaBatch = DefaultGammaBatch
	}
	if c.GammaBatch > MaxGammaBatch {
		c.GammaBatch = MaxGammaBatch
	}
	return c
}

// Prepared caches a strand's compiled evaluation program and — under the
// identity slot assignment, used when the strand is the target — the set
// of its variables' value-vector fingerprints. Preparation happens once
// per unique strand; VCP computations against many counterparts reuse it.
type Prepared struct {
	S *strand.Strand
	// prog is the strand compiled to flat code (query-side evaluation).
	prog *smt.Program
	// fpSet is the set of variable-vector fingerprints under the
	// identity slot assignment (target-side matching).
	fpSet map[uint64]bool
	// sigs holds one syntactic role signature per input (by input
	// index): a hash of the operator contexts the input appears in.
	// Matching inputs across strands almost always have equal
	// signatures, so the γ search tries equal-signature slots first.
	sigs []uint64
	// key is the strand's canonical structural key (for caching).
	key string
	err error
}

// roleSignatures computes a context hash per strand input. The input
// set is materialized once up front: the expression walk consults it per
// variable reference, and a linear scan there made the walk
// O(refs × inputs) on store-heavy strands.
func roleSignatures(s *strand.Strand) []uint64 {
	inputSet := make(map[string]bool, len(s.Inputs))
	for _, in := range s.Inputs {
		inputSet[in.Name] = true
	}
	sig := make(map[string]uint64, len(s.Inputs))
	for _, st := range s.Stmts {
		var walk func(e ivl.Expr, parentOp string, pos int)
		walk = func(e ivl.Expr, parentOp string, pos int) {
			switch t := e.(type) {
			case ivl.VarExpr:
				if inputSet[t.V.Name] {
					// Order-independent accumulation: sum of mixed
					// context hashes.
					h := hash64(parentOp)*31 + uint64(pos) + 1
					h ^= h >> 27
					h *= 0x94d049bb133111eb
					sig[t.V.Name] += h
				}
			case ivl.UnExpr:
				walk(t.X, "u"+t.Op.String(), 0)
			case ivl.BinExpr:
				op := t.Op.String()
				if t.Op.IsCommutative() {
					walk(t.X, op, 0)
					walk(t.Y, op, 0)
				} else {
					walk(t.X, op, 0)
					walk(t.Y, op, 1)
				}
			case ivl.IteExpr:
				walk(t.Cond, "ite", 0)
				walk(t.Then, "ite", 1)
				walk(t.Else, "ite", 2)
			case ivl.TruncExpr:
				walk(t.X, "trunc", 0)
			case ivl.SextExpr:
				walk(t.X, "sext", 0)
			case ivl.LoadExpr:
				walk(t.Mem, "load", 0)
				walk(t.Addr, "load", 1)
			case ivl.StoreExpr:
				walk(t.Mem, "store", 0)
				walk(t.Addr, "store", 1)
				walk(t.Val, "store", 2)
			case ivl.CallExpr:
				for i, a := range t.Args {
					walk(a, t.Sym, i)
				}
			}
		}
		walk(st.Rhs, "=", 0)
	}
	out := make([]uint64, len(s.Inputs))
	for i, in := range s.Inputs {
		out[i] = sig[in.Name]
	}
	return out
}

func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Prepare compiles the strand and evaluates it under its own slot
// assignment.
func Prepare(s *strand.Strand, cfg Config) *Prepared {
	cfg = cfg.normalized()
	p := &Prepared{S: s, key: s.CanonicalKey()}
	prog, err := smt.CompileStrand(s.Stmts, s.Inputs)
	if err != nil {
		p.err = err
		return p
	}
	p.prog = prog
	identity := make([]int, len(s.Inputs))
	for i := range identity {
		identity[i] = i
	}
	var fps []uint64
	if useBatch(prog, cfg) {
		kern := prog.AcquireKernel(cfg.Samples)
		fps = kern.Fingerprints(identity)
		p.fpSet = make(map[uint64]bool, len(fps))
		for _, h := range fps {
			p.fpSet[h] = true
		}
		prog.ReleaseKernel(kern)
	} else {
		fps = prog.Fingerprints(identity, cfg.Samples)
		p.fpSet = make(map[uint64]bool, len(fps))
		for _, h := range fps {
			p.fpSet[h] = true
		}
	}
	p.sigs = roleSignatures(s)
	return p
}

// useBatch reports whether the batched SoA kernel serves this program
// under the configuration.
func useBatch(prog *smt.Program, cfg Config) bool {
	return cfg.Kernel != KernelScalar && prog.BatchOK()
}

// Key returns the canonical structural key of the underlying strand.
func (p *Prepared) Key() string { return p.key }

// Err returns any evaluation error captured at preparation time.
func (p *Prepared) Err() error { return p.err }

// InstrCounts returns the compiled program's γ-invariant prefix length
// and total instruction count (0, 0 when preparation failed), for the
// engine's hoisting telemetry.
func (p *Prepared) InstrCounts() (prefix, total int) {
	if p.prog == nil {
		return 0, 0
	}
	return p.prog.InstrCounts()
}

// SizeCompatible applies the §5.5 size-ratio window.
func SizeCompatible(q, t *strand.Strand, ratio float64) bool {
	nq, nt := float64(q.NumVars()), float64(t.NumVars())
	if nq == 0 || nt == 0 {
		return false
	}
	return nt >= nq*ratio && nt <= nq/ratio
}

// Stats reports the work one Compute call performed, for telemetry:
// Correspondences is the number of input correspondences γ whose
// evaluation vectors were computed and matched (each one is a
// probabilistic-verifier invocation); KernelNanos is the wall time
// spent strictly inside kernel/interpreter evaluation — batch flushes
// or scalar interpreter passes — excluding candidate ordering, the
// enumeration itself, and fpSet matching, so the metric built on it
// does not overcount. Batches counts kernel flushes and BatchRows the
// correspondences they carried; BatchRows/(GammaBatch·Batches) is the
// mean batch occupancy.
type Stats struct {
	Correspondences int
	KernelNanos     int64
	Batches         int64
	BatchRows       int64
}

// Compute returns VCP(q, t): the maximal fraction of q's variables with
// an input-output-equivalent variable in t over all type-preserving,
// injective, total-on-q input correspondences. It returns 0 when no
// valid correspondence exists.
func Compute(q, t *Prepared, cfg Config) float64 {
	v, _ := ComputeWithStats(q, t, cfg)
	return v
}

// ComputeWithStats is Compute plus a work report, so call sites can
// account verifier effort without a second pass.
func ComputeWithStats(q, t *Prepared, cfg Config) (float64, Stats) {
	ev := NewEvaluator(q, cfg)
	defer ev.Close()
	return ev.Compute(t)
}

// Evaluator computes VCP(q, ·) for one query strand against many
// targets, holding the query's evaluation kernel — and its evaluated
// γ-invariant prefix — across pairs. One acquire per query row instead
// of one per pair; the prefix is re-evaluated only when the pooled
// kernel's shape actually changes. Not safe for concurrent use.
type Evaluator struct {
	q    *Prepared
	cfg  Config
	kern *smt.Kernel
	g    int
}

// NewEvaluator prepares a reusable evaluator for the query strand.
// Callers must Close it to return the kernel to the program pool.
func NewEvaluator(q *Prepared, cfg Config) *Evaluator {
	cfg = cfg.normalized()
	ev := &Evaluator{q: q, cfg: cfg, g: 1}
	if q.err == nil && q.prog != nil && useBatch(q.prog, cfg) {
		ev.g = cfg.GammaBatch
		ev.kern = q.prog.AcquireKernelBatch(cfg.Samples, ev.g)
	}
	return ev
}

// Close releases the held kernel. The evaluator must not be used after.
func (ev *Evaluator) Close() {
	if ev.kern != nil {
		ev.q.prog.ReleaseKernel(ev.kern)
		ev.kern = nil
	}
}

// Compute returns VCP(ev.q, t) plus the work report. Scores, rankings
// and Correspondences counts are Float64bits-identical across every
// GammaBatch width and the scalar interpreter: γ candidates are
// enumerated in the same order, a batch row buffered after a perfect
// match or past the MaxCorrespondences cap is discarded uncounted at
// flush — exactly the candidates the unbatched loop would never have
// evaluated — and fingerprints per row are bit-equal to a lone
// evaluation under that row's assignment.
func (ev *Evaluator) Compute(t *Prepared) (float64, Stats) {
	q, cfg := ev.q, ev.cfg
	if q.err != nil || t.err != nil || q.S.NumVars() == 0 {
		return 0, Stats{}
	}
	if len(q.S.Inputs) > len(t.S.Inputs) {
		return 0, Stats{} // γ must be injective and total on q's inputs
	}

	// Enumerate injective type-preserving assignments of q inputs to
	// target slots.
	qIn := q.S.Inputs
	tIn := t.S.Inputs
	assignment := make([]int, len(qIn)) // q input index -> target slot
	usedSlot := make([]bool, len(tIn))
	best := 0.0
	tried := 0
	var st Stats
	nVars := float64(q.S.NumVars())

	// Candidate slots per query input, equal-role-signature slots first:
	// matching inputs across real compilations almost always play the
	// same syntactic role, so the right correspondence is found within
	// the first few attempts and the cap rarely bites.
	candidates := make([][]int, len(qIn))
	for i := range qIn {
		var same, other []int
		for slot := 0; slot < len(tIn); slot++ {
			if tIn[slot].Type != qIn[i].Type {
				continue
			}
			if q.sigs[i] == t.sigs[slot] {
				same = append(same, slot)
			} else {
				other = append(other, slot)
			}
		}
		candidates[i] = append(same, other...)
	}

	// score matches one correspondence's fingerprints against the
	// target set and advances best. Counting (tried++) happens at the
	// caller so both paths charge correspondences identically.
	score := func(fps []uint64) {
		matched := 0
		for _, h := range fps {
			if t.fpSet[h] {
				matched++
			}
		}
		if v := float64(matched) / nVars; v > best {
			best = v
		}
	}

	if ev.kern == nil {
		// Scalar reference interpreter: one full pass per sample, one
		// evaluation per correspondence. Only the interpreter call is
		// timed (satellite of the overcounting fix: candidate ordering
		// and fpSet matching used to pollute KernelNanos).
		var rec func(i int)
		rec = func(i int) {
			if best >= 1.0 || tried >= cfg.MaxCorrespondences {
				return
			}
			if i == len(qIn) {
				tried++
				t0 := time.Now()
				fps := q.prog.Fingerprints(assignment, cfg.Samples)
				st.KernelNanos += time.Since(t0).Nanoseconds()
				score(fps)
				return
			}
			for _, slot := range candidates[i] {
				if usedSlot[slot] {
					continue
				}
				usedSlot[slot] = true
				assignment[i] = slot
				rec(i + 1)
				usedSlot[slot] = false
			}
		}
		rec(0)
		st.Correspondences = tried
		return best, st
	}

	// The batched γ loop: complete assignments accumulate into kernel
	// rows and flush through ONE suffix execution over buffered·k lanes.
	kern, g := ev.kern, ev.g
	buffered := 0
	flush := func() {
		if buffered == 0 {
			return
		}
		rows := buffered
		buffered = 0
		t0 := time.Now()
		fps := kern.FingerprintsRows(rows)
		st.KernelNanos += time.Since(t0).Nanoseconds()
		st.Batches++
		st.BatchRows += int64(rows)
		nd := len(fps) / rows
		for r := 0; r < rows; r++ {
			// A perfect match or the cap mid-batch discards the
			// remaining rows uncounted: the unbatched loop would have
			// stopped before evaluating them.
			if best >= 1.0 || tried >= cfg.MaxCorrespondences {
				break
			}
			tried++
			score(fps[r*nd : (r+1)*nd])
		}
	}
	var rec func(i int)
	rec = func(i int) {
		// Count buffered rows against the cap so enumeration halts at
		// exactly the candidate where the unbatched loop would.
		if best >= 1.0 || tried+buffered >= cfg.MaxCorrespondences {
			return
		}
		if i == len(qIn) {
			kern.BindRow(buffered, assignment)
			buffered++
			if buffered == g {
				flush()
			}
			return
		}
		for _, slot := range candidates[i] {
			if usedSlot[slot] {
				continue
			}
			usedSlot[slot] = true
			assignment[i] = slot
			rec(i + 1)
			usedSlot[slot] = false
		}
	}
	rec(0)
	flush() // partial final batch
	st.Correspondences = tried
	return best, st
}
