// Package vcp implements the paper's Algorithm 2: computing the Variable
// Containment Proportion between two strands by enumerating input
// correspondences γ, realizing the input-equality assumptions through
// shared sample slots, and counting query variables that have an
// equivalent counterpart in the target strand.
//
// The §5.5 engineering heuristics are implemented here as well: input
// correspondences are one-to-one, total on the query inputs and
// type-preserving; trivially small strands and grossly size-mismatched
// pairs are rejected before any verifier work; and per-strand evaluation
// vectors are computed once and reused across correspondences (the
// batched-query optimization).
package vcp

import (
	"repro/internal/ivl"
	"repro/internal/smt"
	"repro/internal/strand"
)

// Config tunes the VCP computation. The zero value selects the paper's
// settings via Default.
type Config struct {
	// Samples is the number of evaluation vectors (verifier precision).
	Samples int
	// MinVars rejects query strands with fewer defined variables
	// (paper §5.5 uses 5).
	MinVars int
	// SizeRatio rejects target strands whose variable count is below
	// SizeRatio or above 1/SizeRatio times the query's (paper: 0.5).
	SizeRatio float64
	// MaxCorrespondences caps the γ enumeration per strand pair.
	MaxCorrespondences int
}

// Default returns the configuration used in the paper's experiments.
func Default() Config {
	return Config{
		Samples:            smt.DefaultSamples,
		MinVars:            5,
		SizeRatio:          0.5,
		MaxCorrespondences: 96, // role signatures order the search; see Compute
	}
}

// normalized fills in zero fields.
func (c Config) normalized() Config {
	d := Default()
	if c.Samples <= 0 {
		c.Samples = d.Samples
	}
	if c.MinVars <= 0 {
		c.MinVars = d.MinVars
	}
	if c.SizeRatio <= 0 {
		c.SizeRatio = d.SizeRatio
	}
	if c.MaxCorrespondences <= 0 {
		c.MaxCorrespondences = d.MaxCorrespondences
	}
	return c
}

// Prepared caches a strand's compiled evaluation program and — under the
// identity slot assignment, used when the strand is the target — the set
// of its variables' value-vector fingerprints. Preparation happens once
// per unique strand; VCP computations against many counterparts reuse it.
type Prepared struct {
	S *strand.Strand
	// prog is the strand compiled to flat code (query-side evaluation).
	prog *smt.Program
	// fpSet is the set of variable-vector fingerprints under the
	// identity slot assignment (target-side matching).
	fpSet map[uint64]bool
	// sigs holds one syntactic role signature per input (by input
	// index): a hash of the operator contexts the input appears in.
	// Matching inputs across strands almost always have equal
	// signatures, so the γ search tries equal-signature slots first.
	sigs []uint64
	// key is the strand's canonical structural key (for caching).
	key string
	err error
}

// roleSignatures computes a context hash per strand input.
func roleSignatures(s *strand.Strand) []uint64 {
	sig := make(map[string]uint64, len(s.Inputs))
	for _, st := range s.Stmts {
		var walk func(e ivl.Expr, parentOp string, pos int)
		walk = func(e ivl.Expr, parentOp string, pos int) {
			switch t := e.(type) {
			case ivl.VarExpr:
				if isInput(s, t.V.Name) {
					// Order-independent accumulation: sum of mixed
					// context hashes.
					h := hash64(parentOp)*31 + uint64(pos) + 1
					h ^= h >> 27
					h *= 0x94d049bb133111eb
					sig[t.V.Name] += h
				}
			case ivl.UnExpr:
				walk(t.X, "u"+t.Op.String(), 0)
			case ivl.BinExpr:
				op := t.Op.String()
				if t.Op.IsCommutative() {
					walk(t.X, op, 0)
					walk(t.Y, op, 0)
				} else {
					walk(t.X, op, 0)
					walk(t.Y, op, 1)
				}
			case ivl.IteExpr:
				walk(t.Cond, "ite", 0)
				walk(t.Then, "ite", 1)
				walk(t.Else, "ite", 2)
			case ivl.TruncExpr:
				walk(t.X, "trunc", 0)
			case ivl.SextExpr:
				walk(t.X, "sext", 0)
			case ivl.LoadExpr:
				walk(t.Mem, "load", 0)
				walk(t.Addr, "load", 1)
			case ivl.StoreExpr:
				walk(t.Mem, "store", 0)
				walk(t.Addr, "store", 1)
				walk(t.Val, "store", 2)
			case ivl.CallExpr:
				for i, a := range t.Args {
					walk(a, t.Sym, i)
				}
			}
		}
		walk(st.Rhs, "=", 0)
	}
	out := make([]uint64, len(s.Inputs))
	for i, in := range s.Inputs {
		out[i] = sig[in.Name]
	}
	return out
}

func isInput(s *strand.Strand, name string) bool {
	for _, in := range s.Inputs {
		if in.Name == name {
			return true
		}
	}
	return false
}

func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Prepare compiles the strand and evaluates it under its own slot
// assignment.
func Prepare(s *strand.Strand, cfg Config) *Prepared {
	cfg = cfg.normalized()
	p := &Prepared{S: s, key: s.CanonicalKey()}
	prog, err := smt.CompileStrand(s.Stmts, s.Inputs)
	if err != nil {
		p.err = err
		return p
	}
	p.prog = prog
	identity := make([]int, len(s.Inputs))
	for i := range identity {
		identity[i] = i
	}
	fps := prog.Fingerprints(identity, cfg.Samples)
	p.fpSet = make(map[uint64]bool, len(fps))
	for _, h := range fps {
		p.fpSet[h] = true
	}
	p.sigs = roleSignatures(s)
	return p
}

// Key returns the canonical structural key of the underlying strand.
func (p *Prepared) Key() string { return p.key }

// Err returns any evaluation error captured at preparation time.
func (p *Prepared) Err() error { return p.err }

// SizeCompatible applies the §5.5 size-ratio window.
func SizeCompatible(q, t *strand.Strand, ratio float64) bool {
	nq, nt := float64(q.NumVars()), float64(t.NumVars())
	if nq == 0 || nt == 0 {
		return false
	}
	return nt >= nq*ratio && nt <= nq/ratio
}

// Stats reports the work one Compute call performed, for telemetry:
// Correspondences is the number of input correspondences γ whose
// evaluation vectors were computed and matched (each one is a
// probabilistic-verifier invocation).
type Stats struct {
	Correspondences int
}

// Compute returns VCP(q, t): the maximal fraction of q's variables with
// an input-output-equivalent variable in t over all type-preserving,
// injective, total-on-q input correspondences. It returns 0 when no
// valid correspondence exists.
func Compute(q, t *Prepared, cfg Config) float64 {
	v, _ := ComputeWithStats(q, t, cfg)
	return v
}

// ComputeWithStats is Compute plus a work report, so call sites can
// account verifier effort without a second pass.
func ComputeWithStats(q, t *Prepared, cfg Config) (float64, Stats) {
	cfg = cfg.normalized()
	if q.err != nil || t.err != nil || q.S.NumVars() == 0 {
		return 0, Stats{}
	}
	if len(q.S.Inputs) > len(t.S.Inputs) {
		return 0, Stats{} // γ must be injective and total on q's inputs
	}

	// Enumerate injective type-preserving assignments of q inputs to
	// target slots.
	qIn := q.S.Inputs
	tIn := t.S.Inputs
	assignment := make([]int, len(qIn)) // q input index -> target slot
	usedSlot := make([]bool, len(tIn))
	best := 0.0
	tried := 0
	nVars := float64(q.S.NumVars())

	// Candidate slots per query input, equal-role-signature slots first:
	// matching inputs across real compilations almost always play the
	// same syntactic role, so the right correspondence is found within
	// the first few attempts and the cap rarely bites.
	candidates := make([][]int, len(qIn))
	for i := range qIn {
		var same, other []int
		for slot := 0; slot < len(tIn); slot++ {
			if tIn[slot].Type != qIn[i].Type {
				continue
			}
			if q.sigs[i] == t.sigs[slot] {
				same = append(same, slot)
			} else {
				other = append(other, slot)
			}
		}
		candidates[i] = append(same, other...)
	}

	var rec func(i int)
	rec = func(i int) {
		if best >= 1.0 || tried >= cfg.MaxCorrespondences {
			return
		}
		if i == len(qIn) {
			tried++
			fps := q.prog.Fingerprints(assignment, cfg.Samples)
			matched := 0
			for _, h := range fps {
				if t.fpSet[h] {
					matched++
				}
			}
			if v := float64(matched) / nVars; v > best {
				best = v
			}
			return
		}
		for _, slot := range candidates[i] {
			if usedSlot[slot] {
				continue
			}
			usedSlot[slot] = true
			assignment[i] = slot
			rec(i + 1)
			usedSlot[slot] = false
		}
	}
	rec(0)
	return best, Stats{Correspondences: tried}
}
