// Package vcp implements the paper's Algorithm 2: computing the Variable
// Containment Proportion between two strands by enumerating input
// correspondences γ, realizing the input-equality assumptions through
// shared sample slots, and counting query variables that have an
// equivalent counterpart in the target strand.
//
// The §5.5 engineering heuristics are implemented here as well: input
// correspondences are one-to-one, total on the query inputs and
// type-preserving; trivially small strands and grossly size-mismatched
// pairs are rejected before any verifier work; and per-strand evaluation
// vectors are computed once and reused across correspondences (the
// batched-query optimization).
package vcp

import (
	"time"

	"repro/internal/ivl"
	"repro/internal/smt"
	"repro/internal/strand"
)

// Evaluation kernel modes: how the γ loop evaluates compiled strands.
const (
	// KernelBatch is the batched structure-of-arrays kernel (smt.Kernel):
	// one instruction dispatch per lane vector, γ-invariant prefix
	// hoisting, pooled allocation-free buffers. The default.
	KernelBatch = "batch"
	// KernelScalar is the scalar reference interpreter
	// (smt.Program.Fingerprints): one full pass per sample. Kept as the
	// differential oracle and escape hatch.
	KernelScalar = "scalar"
)

// Config tunes the VCP computation. The zero value selects the paper's
// settings via Default.
type Config struct {
	// Samples is the number of evaluation vectors (verifier precision).
	Samples int
	// MinVars rejects query strands with fewer defined variables
	// (paper §5.5 uses 5).
	MinVars int
	// SizeRatio rejects target strands whose variable count is below
	// SizeRatio or above 1/SizeRatio times the query's (paper: 0.5).
	SizeRatio float64
	// MaxCorrespondences caps the γ enumeration per strand pair.
	MaxCorrespondences int
	// Kernel selects the evaluation kernel: KernelBatch ("" or "batch")
	// or KernelScalar. Both produce byte-identical fingerprints; the
	// choice never affects rankings.
	Kernel string
}

// Default returns the configuration used in the paper's experiments.
func Default() Config {
	return Config{
		Samples:            smt.DefaultSamples,
		MinVars:            5,
		SizeRatio:          0.5,
		MaxCorrespondences: 96, // role signatures order the search; see Compute
	}
}

// normalized fills in zero fields.
func (c Config) normalized() Config {
	d := Default()
	if c.Samples <= 0 {
		c.Samples = d.Samples
	}
	if c.MinVars <= 0 {
		c.MinVars = d.MinVars
	}
	if c.SizeRatio <= 0 {
		c.SizeRatio = d.SizeRatio
	}
	if c.MaxCorrespondences <= 0 {
		c.MaxCorrespondences = d.MaxCorrespondences
	}
	if c.Kernel == "" {
		c.Kernel = KernelBatch
	}
	return c
}

// Prepared caches a strand's compiled evaluation program and — under the
// identity slot assignment, used when the strand is the target — the set
// of its variables' value-vector fingerprints. Preparation happens once
// per unique strand; VCP computations against many counterparts reuse it.
type Prepared struct {
	S *strand.Strand
	// prog is the strand compiled to flat code (query-side evaluation).
	prog *smt.Program
	// fpSet is the set of variable-vector fingerprints under the
	// identity slot assignment (target-side matching).
	fpSet map[uint64]bool
	// sigs holds one syntactic role signature per input (by input
	// index): a hash of the operator contexts the input appears in.
	// Matching inputs across strands almost always have equal
	// signatures, so the γ search tries equal-signature slots first.
	sigs []uint64
	// key is the strand's canonical structural key (for caching).
	key string
	err error
}

// roleSignatures computes a context hash per strand input. The input
// set is materialized once up front: the expression walk consults it per
// variable reference, and a linear scan there made the walk
// O(refs × inputs) on store-heavy strands.
func roleSignatures(s *strand.Strand) []uint64 {
	inputSet := make(map[string]bool, len(s.Inputs))
	for _, in := range s.Inputs {
		inputSet[in.Name] = true
	}
	sig := make(map[string]uint64, len(s.Inputs))
	for _, st := range s.Stmts {
		var walk func(e ivl.Expr, parentOp string, pos int)
		walk = func(e ivl.Expr, parentOp string, pos int) {
			switch t := e.(type) {
			case ivl.VarExpr:
				if inputSet[t.V.Name] {
					// Order-independent accumulation: sum of mixed
					// context hashes.
					h := hash64(parentOp)*31 + uint64(pos) + 1
					h ^= h >> 27
					h *= 0x94d049bb133111eb
					sig[t.V.Name] += h
				}
			case ivl.UnExpr:
				walk(t.X, "u"+t.Op.String(), 0)
			case ivl.BinExpr:
				op := t.Op.String()
				if t.Op.IsCommutative() {
					walk(t.X, op, 0)
					walk(t.Y, op, 0)
				} else {
					walk(t.X, op, 0)
					walk(t.Y, op, 1)
				}
			case ivl.IteExpr:
				walk(t.Cond, "ite", 0)
				walk(t.Then, "ite", 1)
				walk(t.Else, "ite", 2)
			case ivl.TruncExpr:
				walk(t.X, "trunc", 0)
			case ivl.SextExpr:
				walk(t.X, "sext", 0)
			case ivl.LoadExpr:
				walk(t.Mem, "load", 0)
				walk(t.Addr, "load", 1)
			case ivl.StoreExpr:
				walk(t.Mem, "store", 0)
				walk(t.Addr, "store", 1)
				walk(t.Val, "store", 2)
			case ivl.CallExpr:
				for i, a := range t.Args {
					walk(a, t.Sym, i)
				}
			}
		}
		walk(st.Rhs, "=", 0)
	}
	out := make([]uint64, len(s.Inputs))
	for i, in := range s.Inputs {
		out[i] = sig[in.Name]
	}
	return out
}

func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Prepare compiles the strand and evaluates it under its own slot
// assignment.
func Prepare(s *strand.Strand, cfg Config) *Prepared {
	cfg = cfg.normalized()
	p := &Prepared{S: s, key: s.CanonicalKey()}
	prog, err := smt.CompileStrand(s.Stmts, s.Inputs)
	if err != nil {
		p.err = err
		return p
	}
	p.prog = prog
	identity := make([]int, len(s.Inputs))
	for i := range identity {
		identity[i] = i
	}
	var fps []uint64
	if useBatch(prog, cfg) {
		kern := prog.AcquireKernel(cfg.Samples)
		fps = kern.Fingerprints(identity)
		p.fpSet = make(map[uint64]bool, len(fps))
		for _, h := range fps {
			p.fpSet[h] = true
		}
		prog.ReleaseKernel(kern)
	} else {
		fps = prog.Fingerprints(identity, cfg.Samples)
		p.fpSet = make(map[uint64]bool, len(fps))
		for _, h := range fps {
			p.fpSet[h] = true
		}
	}
	p.sigs = roleSignatures(s)
	return p
}

// useBatch reports whether the batched SoA kernel serves this program
// under the configuration.
func useBatch(prog *smt.Program, cfg Config) bool {
	return cfg.Kernel != KernelScalar && prog.BatchOK()
}

// Key returns the canonical structural key of the underlying strand.
func (p *Prepared) Key() string { return p.key }

// Err returns any evaluation error captured at preparation time.
func (p *Prepared) Err() error { return p.err }

// InstrCounts returns the compiled program's γ-invariant prefix length
// and total instruction count (0, 0 when preparation failed), for the
// engine's hoisting telemetry.
func (p *Prepared) InstrCounts() (prefix, total int) {
	if p.prog == nil {
		return 0, 0
	}
	return p.prog.InstrCounts()
}

// SizeCompatible applies the §5.5 size-ratio window.
func SizeCompatible(q, t *strand.Strand, ratio float64) bool {
	nq, nt := float64(q.NumVars()), float64(t.NumVars())
	if nq == 0 || nt == 0 {
		return false
	}
	return nt >= nq*ratio && nt <= nq/ratio
}

// Stats reports the work one Compute call performed, for telemetry:
// Correspondences is the number of input correspondences γ whose
// evaluation vectors were computed and matched (each one is a
// probabilistic-verifier invocation); KernelNanos is the wall time the
// γ loop spent inside the evaluation kernel (both kernels are timed, so
// the scalar/batch speedup is directly observable).
type Stats struct {
	Correspondences int
	KernelNanos     int64
}

// Compute returns VCP(q, t): the maximal fraction of q's variables with
// an input-output-equivalent variable in t over all type-preserving,
// injective, total-on-q input correspondences. It returns 0 when no
// valid correspondence exists.
func Compute(q, t *Prepared, cfg Config) float64 {
	v, _ := ComputeWithStats(q, t, cfg)
	return v
}

// ComputeWithStats is Compute plus a work report, so call sites can
// account verifier effort without a second pass.
func ComputeWithStats(q, t *Prepared, cfg Config) (float64, Stats) {
	cfg = cfg.normalized()
	if q.err != nil || t.err != nil || q.S.NumVars() == 0 {
		return 0, Stats{}
	}
	if len(q.S.Inputs) > len(t.S.Inputs) {
		return 0, Stats{} // γ must be injective and total on q's inputs
	}

	// Enumerate injective type-preserving assignments of q inputs to
	// target slots.
	qIn := q.S.Inputs
	tIn := t.S.Inputs
	assignment := make([]int, len(qIn)) // q input index -> target slot
	usedSlot := make([]bool, len(tIn))
	best := 0.0
	tried := 0
	nVars := float64(q.S.NumVars())

	// Candidate slots per query input, equal-role-signature slots first:
	// matching inputs across real compilations almost always play the
	// same syntactic role, so the right correspondence is found within
	// the first few attempts and the cap rarely bites.
	candidates := make([][]int, len(qIn))
	for i := range qIn {
		var same, other []int
		for slot := 0; slot < len(tIn); slot++ {
			if tIn[slot].Type != qIn[i].Type {
				continue
			}
			if q.sigs[i] == t.sigs[slot] {
				same = append(same, slot)
			} else {
				other = append(other, slot)
			}
		}
		candidates[i] = append(same, other...)
	}

	// The γ loop: each complete assignment re-evaluates only the
	// compiled suffix through the pooled batched kernel (kern != nil),
	// allocation-free after warm-up; -kernel=scalar and programs the
	// kernel's static typing rejects take the reference interpreter.
	var kern *smt.Kernel
	if useBatch(q.prog, cfg) {
		kern = q.prog.AcquireKernel(cfg.Samples)
		defer q.prog.ReleaseKernel(kern)
	}
	start := time.Now()

	var rec func(i int)
	rec = func(i int) {
		if best >= 1.0 || tried >= cfg.MaxCorrespondences {
			return
		}
		if i == len(qIn) {
			tried++
			var fps []uint64
			if kern != nil {
				fps = kern.Fingerprints(assignment)
			} else {
				fps = q.prog.Fingerprints(assignment, cfg.Samples)
			}
			matched := 0
			for _, h := range fps {
				if t.fpSet[h] {
					matched++
				}
			}
			if v := float64(matched) / nVars; v > best {
				best = v
			}
			return
		}
		for _, slot := range candidates[i] {
			if usedSlot[slot] {
				continue
			}
			usedSlot[slot] = true
			assignment[i] = slot
			rec(i + 1)
			usedSlot[slot] = false
		}
	}
	rec(0)
	return best, Stats{Correspondences: tried, KernelNanos: time.Since(start).Nanoseconds()}
}
