package vcp

import (
	"math/rand"
	"testing"

	"repro/internal/ivl"
	"repro/internal/strand"
)

// Property tests over generated strands. The generator is seeded, so
// failures reproduce; it covers the shapes the lifter actually emits
// (mixed Int/Mem inputs, nested arithmetic, loads and stores) plus
// degenerate ones (no inputs, single statement). The properties are the
// contracts the rest of the engine builds on — in particular the sound
// LSH prefilter (internal/sketch) skips verifier work exactly when the
// typed-input injection property guarantees a zero.

// genStrand returns a random well-formed SSA strand: every variable
// reference is an input or an earlier definition, and Mem-typed values
// only flow through load/store.
func genStrand(r *rand.Rand) *strand.Strand {
	s := &strand.Strand{ProcName: "gen"}
	nInt := 1 + r.Intn(3)
	for i := 0; i < nInt; i++ {
		s.Inputs = append(s.Inputs, ivl.Var{Name: "x" + string(rune('a'+i)), Type: ivl.Int})
	}
	var mem *ivl.Var
	if r.Intn(2) == 0 {
		m := ivl.Var{Name: "m", Type: ivl.Mem}
		s.Inputs = append(s.Inputs, m)
		mem = &m
	}

	ints := make([]ivl.Var, 0, 8)
	for _, in := range s.Inputs {
		if in.Type == ivl.Int {
			ints = append(ints, in)
		}
	}
	ops := []ivl.BinOp{ivl.Add, ivl.Sub, ivl.Mul, ivl.Xor, ivl.And, ivl.Or, ivl.Shl, ivl.LShr, ivl.ULt}
	var gen func(depth int) ivl.Expr
	gen = func(depth int) ivl.Expr {
		switch {
		case depth <= 0 || r.Intn(4) == 0:
			if r.Intn(3) == 0 {
				return ivl.C(uint64(r.Intn(64)))
			}
			return ivl.V(ints[r.Intn(len(ints))])
		case mem != nil && r.Intn(5) == 0:
			return ivl.LoadExpr{Mem: ivl.V(*mem), Addr: gen(depth - 1), W: 8}
		default:
			op := ops[r.Intn(len(ops))]
			return ivl.Bin(op, gen(depth-1), gen(depth-1))
		}
	}
	nStmts := 1 + r.Intn(5)
	for i := 0; i < nStmts; i++ {
		dst := ivl.Var{Name: "v" + string(rune('0'+i)), Type: ivl.Int}
		s.Stmts = append(s.Stmts, ivl.Assign(dst, gen(2)))
		ints = append(ints, dst)
	}
	return s
}

func typedInputCounts(s *strand.Strand) (nInt, nMem int) {
	for _, v := range s.Inputs {
		if v.Type == ivl.Mem {
			nMem++
		} else {
			nInt++
		}
	}
	return
}

func TestVCPProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cfg := Default()
	const n = 20
	preps := make([]*Prepared, n)
	for i := range preps {
		s := genStrand(r)
		preps[i] = Prepare(s, cfg)
		if err := preps[i].Err(); err != nil {
			t.Fatalf("prepare generated strand %d: %v", i, err)
		}
	}

	// Reflexivity: every strand fully matches itself under the identity
	// correspondence.
	for i, p := range preps {
		if v := Compute(p, p, cfg); v != 1 {
			t.Errorf("strand %d: VCP(s, s) = %v, want 1", i, v)
		}
	}

	for i, q := range preps {
		for j, u := range preps {
			v, st := ComputeWithStats(q, u, cfg)

			// Range: VCP is a fraction of q's variables.
			if v < 0 || v > 1 {
				t.Fatalf("pair (%d,%d): VCP = %v outside [0,1]", i, j, v)
			}

			// Work accounting: the γ enumeration respects its cap, and
			// Compute agrees with ComputeWithStats.
			if st.Correspondences < 0 || st.Correspondences > cfg.MaxCorrespondences {
				t.Fatalf("pair (%d,%d): %d correspondences, cap %d",
					i, j, st.Correspondences, cfg.MaxCorrespondences)
			}
			if v2 := Compute(q, u, cfg); v2 != v {
				t.Fatalf("pair (%d,%d): Compute %v != ComputeWithStats %v", i, j, v2, v)
			}

			// Determinism: bit-identical on repetition. KernelNanos is
			// wall time and is excluded from the comparison.
			if v2, st2 := ComputeWithStats(q, u, cfg); v2 != v || st2.Correspondences != st.Correspondences {
				t.Fatalf("pair (%d,%d): not deterministic: (%v,%+v) then (%v,%+v)",
					i, j, v, st, v2, st2)
			}

			// Typed-input injection — the sound-prefilter contract: when
			// q's typed inputs cannot inject into u's, VCP is exactly 0
			// with no verifier work; when they can, at least one
			// correspondence is always tried.
			qi, qm := typedInputCounts(q.S)
			ui, um := typedInputCounts(u.S)
			if qi > ui || qm > um {
				if v != 0 || st.Correspondences != 0 {
					t.Fatalf("pair (%d,%d): inputs (%d,%d) cannot inject into (%d,%d) but VCP=%v after %d correspondences",
						i, j, qi, qm, ui, um, v, st.Correspondences)
				}
			} else if st.Correspondences == 0 {
				t.Fatalf("pair (%d,%d): injectable inputs but no correspondence tried", i, j)
			}
		}
	}
}

func TestVCPPropertiesNoInputs(t *testing.T) {
	// A strand of pure constants has no inputs; γ is the empty map and
	// the strand must still fully match itself.
	s := &strand.Strand{
		ProcName: "const",
		Stmts: []ivl.Stmt{
			ivl.Assign(ivl.Var{Name: "v0", Type: ivl.Int}, ivl.C(42)),
			ivl.Assign(ivl.Var{Name: "v1", Type: ivl.Int}, ivl.Bin(ivl.Add, ivl.IntVar("v0"), ivl.C(1))),
		},
	}
	p := Prepare(s, Default())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if v := Compute(p, p, Default()); v != 1 {
		t.Fatalf("VCP(const, const) = %v, want 1", v)
	}
}
