package vcp_test

// Differential guard for the batched evaluation kernel at the corpus
// level: over real lifted strands (not just generated programs), the
// batched kernel must produce byte-identical fingerprints to the scalar
// reference under every γ assignment the VCP search would try, and
// ComputeWithStats must return identical values and work counts under
// -kernel=scalar and -kernel=batch.

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/ivl"
	"repro/internal/lift"
	"repro/internal/smt"
	"repro/internal/strand"
	"repro/internal/vcp"
)

// corpusStrands decomposes a two-toolchain corpus into unique strands.
func corpusStrands(t *testing.T) []*strand.Strand {
	t.Helper()
	var tcs []compile.Toolchain
	for _, n := range []string{"gcc-4.9", "clang-3.5"} {
		tc, ok := compile.ByName(n)
		if !ok {
			t.Fatalf("unknown toolchain %q", n)
		}
		tcs = append(tcs, tc)
	}
	procs, err := corpus.Build(corpus.BuildConfig{Toolchains: tcs})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var out []*strand.Strand
	for _, p := range procs {
		g, err := cfg.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := lift.LiftProc(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range strand.FromProc(lp) {
			if s.NumVars() < 5 {
				continue
			}
			key := s.CanonicalKey()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		t.Fatal("corpus produced no strands")
	}
	return out
}

// enumerateAssignments yields up to cap injective type-preserving
// assignments of q's inputs to t's slots, the γ candidates Algorithm 2
// enumerates.
func enumerateAssignments(qIn, tIn []ivl.Var, limit int, yield func([]int)) {
	assignment := make([]int, len(qIn))
	used := make([]bool, len(tIn))
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if count >= limit {
			return
		}
		if i == len(qIn) {
			count++
			yield(assignment)
			return
		}
		for slot := 0; slot < len(tIn); slot++ {
			if used[slot] || tIn[slot].Type != qIn[i].Type {
				continue
			}
			used[slot] = true
			assignment[i] = slot
			rec(i + 1)
			used[slot] = false
		}
	}
	rec(0)
}

// TestKernelDifferentialCorpus compares scalar and batched fingerprints
// for every corpus strand across the γ assignments of real strand
// pairings, and asserts ComputeWithStats parity between the kernels.
func TestKernelDifferentialCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential is slow")
	}
	strands := corpusStrands(t)
	if len(strands) > 24 {
		strands = strands[:24]
	}

	// Per-strand: the compiled program must be kernel-eligible, and the
	// batched fingerprints must match the scalar reference under the γ
	// assignments of every compatible pairing (self-pairings included,
	// covering the identity assignment Prepare uses).
	progs := make([]*smt.Program, len(strands))
	for i, s := range strands {
		prog, err := smt.CompileStrand(s.Stmts, s.Inputs)
		if err != nil {
			t.Fatalf("strand %d: %v", i, err)
		}
		if !prog.BatchOK() {
			t.Fatalf("strand %d (%s): lifted strand rejected by the kernel's static typing",
				i, s.ProcName)
		}
		progs[i] = prog
	}
	const perPairCap = 16
	samples := smt.DefaultSamples
	for i, q := range strands {
		kern := progs[i].AcquireKernel(samples)
		for j, u := range strands {
			if len(q.Inputs) > len(u.Inputs) {
				continue
			}
			enumerateAssignments(q.Inputs, u.Inputs, perPairCap, func(slots []int) {
				want := progs[i].Fingerprints(slots, samples)
				got := kern.Fingerprints(slots)
				for d := range want {
					if got[d] != want[d] {
						t.Fatalf("pair (%d,%d) slots %v def %d: batch %#x scalar %#x",
							i, j, slots, d, got[d], want[d])
					}
				}
			})
		}
		progs[i].ReleaseKernel(kern)
	}

	// End-to-end VCP parity: identical values and γ counts under both
	// kernels, preparations included.
	scalarCfg := vcp.Config{Kernel: vcp.KernelScalar}
	batchCfg := vcp.Config{Kernel: vcp.KernelBatch}
	scalarPrep := make([]*vcp.Prepared, len(strands))
	batchPrep := make([]*vcp.Prepared, len(strands))
	for i, s := range strands {
		scalarPrep[i] = vcp.Prepare(s, scalarCfg)
		batchPrep[i] = vcp.Prepare(s, batchCfg)
		if err := scalarPrep[i].Err(); err != nil {
			t.Fatalf("prepare %d: %v", i, err)
		}
		if err := batchPrep[i].Err(); err != nil {
			t.Fatalf("prepare %d (batch): %v", i, err)
		}
	}
	for i := range strands {
		for j := range strands {
			vs, ss := vcp.ComputeWithStats(scalarPrep[i], scalarPrep[j], scalarCfg)
			vb, sb := vcp.ComputeWithStats(batchPrep[i], batchPrep[j], batchCfg)
			if vs != vb || ss.Correspondences != sb.Correspondences {
				t.Fatalf("pair (%d,%d): scalar (%v, %d γ) vs batch (%v, %d γ)",
					i, j, vs, ss.Correspondences, vb, sb.Correspondences)
			}
		}
	}
}
