package smt

import (
	"fmt"

	"repro/internal/ivl"
)

// specials are adversarial input values: identities, annihilators, sign
// and width boundaries, and values sitting just below the sign boundary
// so that small added constants cross it. They catch disagreements that
// uniform random 64-bit sampling essentially never hits (e.g. behaviour
// at 0, or carries into the sign bit).
var specials = [...]uint64{
	0, 1, ^uint64(0), 2, 3, 8, 16, 0x7F, 0x80, 0xFF, 0x100,
	0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFF, 1 << 32,
	(uint64(1) << 63) - 8, (uint64(1) << 63) - 1, uint64(1) << 63,
	(uint64(1) << 63) + 8, ^uint64(0) - 15, 0xAAAA_AAAA_AAAA_AAAA, 42,
}

const (
	// Every special value gets one sample where all slots share it, so a
	// matched input pair always sees every boundary value.
	allSameSpecials = len(specials)
	rotatedSpecials = 6
	randomSamples   = 12
	sampleSeed      = 0x5e_ed_00_01
)

// DefaultSamples is the number of evaluation vectors used to decide
// variable equivalence: one all-slots-equal sample per special value,
// several staggered-special samples, and independent pseudo-random
// 64-bit vectors.
const DefaultSamples = allSameSpecials + rotatedSpecials + randomSamples

// SlotValue returns the deterministic input value for the given sample
// index and input slot. Two strands whose inputs are matched to the same
// slot see identical values in every sample — this is how the input
// equality assumptions of the verifier query are realized.
func SlotValue(sample, slot int, typ ivl.Type) ivl.Value {
	if typ == ivl.Mem {
		return ivl.MemValue(ivl.NewMem(SlotMemSeed(sample, slot)))
	}
	return ivl.IntValue(SlotBits(sample, slot))
}

// SlotBits is the integer half of SlotValue: the bv64 input value for the
// given sample and slot. The batched kernel fills input lanes from it
// directly, without boxing into ivl.Value.
func SlotBits(sample, slot int) uint64 {
	switch {
	case sample < allSameSpecials:
		// Every slot takes the same special value.
		return specials[sample%len(specials)]
	case sample < allSameSpecials+rotatedSpecials:
		j := sample - allSameSpecials
		return specials[(j*5+slot*7+1)%len(specials)]
	default:
		return mix64(sampleSeed ^ mix64(uint64(sample)) ^ mix64(uint64(slot)*0xABCD))
	}
}

// FillSlotBits fills lane[s] = SlotBits(s, slot) for s in [0, len(lane)),
// with the sample-regime dispatch hoisted out of the per-lane loop: the
// all-same prefix is a bulk copy, and the random tail hoists the
// slot-dependent mix term. This is the kernel's input-refill primitive —
// per γ-batch row it runs once per rebound input, so the k-length loop
// body must stay branch-free.
func FillSlotBits(lane []uint64, slot int) {
	n := copy(lane, specials[:])
	for s := n; s < len(lane) && s < allSameSpecials+rotatedSpecials; s++ {
		j := s - allSameSpecials
		lane[s] = specials[(j*5+slot*7+1)%len(specials)]
	}
	slotMix := mix64(uint64(slot) * 0xABCD)
	for s := allSameSpecials + rotatedSpecials; s < len(lane); s++ {
		lane[s] = mix64(sampleSeed ^ mix64(uint64(s)) ^ slotMix)
	}
}

// SlotMemSeed is the memory half of SlotValue: the deterministic
// background seed per (sample, slot).
func SlotMemSeed(sample, slot int) uint64 {
	return mix64(sampleSeed ^ uint64(sample)*0x9E37_79B9 ^ uint64(slot)<<32)
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// VectorHashes evaluates a straight-line SSA statement list under k
// sample environments (inputVals supplies each input's value per sample)
// and returns, per defined variable, a fingerprint of its value vector.
// Equal fingerprints mean the variables agreed on every sample.
func VectorHashes(stmts []ivl.Stmt, inputs []ivl.Var,
	inputVals func(sample int, v ivl.Var) ivl.Value, k int) (map[string]uint64, error) {

	fp := make(map[string]uint64, len(stmts))
	for s := 0; s < k; s++ {
		env := make(ivl.Env, len(inputs)+len(stmts))
		for _, in := range inputs {
			env[in.Name] = inputVals(s, in)
		}
		for _, st := range stmts {
			if st.Kind != ivl.SAssign {
				return nil, fmt.Errorf("smt: VectorHashes expects pure assignments, got %v", st)
			}
			v, err := ivl.Eval(st.Rhs, env)
			if err != nil {
				return nil, err
			}
			env[st.Dst.Name] = v
			h := v.Hash()
			if v.M != nil {
				// Separate the hash domains of memory and integer values
				// so a memory never spuriously matches an integer.
				h = mix64(h ^ 0xDEAD_BEEF_CAFE_F00D)
			}
			fp[st.Dst.Name] = mix64(fp[st.Dst.Name]*0x100_0000_01b3 ^ h)
		}
	}
	return fp, nil
}
