package smt

// The batched structure-of-arrays evaluation kernel: the hot loop of the
// whole system, rewritten so that each instruction dispatches once and
// runs a tight loop over all k sample values, instead of k full
// interpreter passes over boxed ivl.Value structs.
//
// Layout: every virtual register r owns a lane vector of k values.
// Integer registers live in one flat []uint64 (ints[r*k+s]); memory
// registers hold indices into a per-kernel arena of immutable store
// nodes (a pointer-free re-implementation of ivl.MemVal with identical
// hash and load semantics, so fingerprints stay byte-identical to the
// scalar path). Memory-typedness is static at compile time (Program.
// memReg), so the per-instruction lane loops carry no type tests.
//
// Kernels are pooled per Program and reused across γ correspondences:
// the γ-invariant prefix (Program.prefixLen) is evaluated once per
// kernel lifetime — its lanes depend on neither the slot assignment nor
// the sample index — and each Run resets the arena to the prefix
// watermark, refills the input lanes, and re-executes only the suffix.
// After warm-up the whole γ loop performs zero heap allocations.
//
// γ-batched lanes: a kernel acquired with AcquireKernelBatch(k, g)
// carries g×k lanes per register — g complete γ candidate assignments
// side by side, each owning a contiguous k-lane row. BindRow stages one
// assignment per row; RunRows executes the compiled suffix ONCE over
// all staged rows (one instruction dispatch per g·k lanes instead of
// per k), and FingerprintsRows extracts one fingerprint vector per row,
// folding the per-row hash chains interleaved so their serial
// multiply/mix latencies overlap across rows. A partial batch (rows <
// g) executes only rows·k lanes — the trailing rows cost nothing.
// g = 1 degenerates to the classic Run/Fingerprints path bit for bit.

import "repro/internal/ivl"

// memNode is one node of the kernel's arena-backed memory: either a
// background root (parent < 0) or a store overlay. Semantics and hash
// construction mirror ivl.MemVal exactly. For a root, addr holds the
// background seed (roots have no store range; w stays 0, so the
// overlay containment tests never fire on them) — overlays inherit
// their chain's seed implicitly through their root, which keeps the
// node at 32 bytes, a size the g×k-lane store traffic notices.
type memNode struct {
	hash   uint64
	addr   uint64
	val    uint64
	parent int32
	w      uint8
}

// memHashTag separates the memory hash domain from integers when
// fingerprinting; it must match the constant used by the scalar paths
// (Program.Fingerprints, VectorHashes).
const memHashTag = 0xDEAD_BEEF_CAFE_F00D

// fpPrime is the fingerprint chaining multiplier shared with the scalar
// paths.
const fpPrime = 0x100_0000_01b3

// Kernel is a reusable SoA evaluation state for one Program at a fixed
// sample count and γ-batch width. It is not safe for concurrent use;
// acquire one per goroutine via Program.AcquireKernel (g = 1) or
// Program.AcquireKernelBatch.
type Kernel struct {
	p *Program
	// k is the samples-per-row count; g the γ-batch width (rows); lanes
	// the per-register lane stride g*k. Row r of a register occupies
	// lanes [r*k, (r+1)*k) of its lane vector.
	k, g, lanes int
	// ints holds the integer lanes, lanes per register.
	ints []uint64
	// mems holds the memory lanes as arena indices (allocated only when
	// the program touches memory).
	mems []int32
	// arena is the memory store-node arena. The first persist nodes are
	// permanent — the γ-invariant prefix's nodes plus one interned block
	// of k background roots per input slot seen (rootBase maps slot to
	// the block's first index) — and survive every run; the arena is
	// truncated back to persist at the start of each Run, discarding only
	// the transient store overlays the previous suffix execution built.
	arena       []memNode
	prefixArena int
	persist     int
	rootBase    map[int]int32
	prefixDone  bool
	// fps is the fingerprint scratch returned by Fingerprints and
	// FingerprintsRows (rows*ndefs entries, row-major).
	fps []uint64
	// accs is the interleaved-fold accumulator scratch (g entries).
	accs []uint64
	// argHash is scratch for cCall argument hashing.
	argHash []uint64
	// rowSlots stages the slot assignment per (row, input) between
	// BindRow and RunRows.
	rowSlots []int
	// lastSlot remembers the slot each (row, input) was last bound to.
	// Input registers are never written by exec (every assignment
	// allocates a fresh register), and memory input lanes point at
	// interned roots in the arena's permanent region, so a lane row
	// whose slot is unchanged between runs is still valid and need not
	// be refilled — the delta-refill that makes consecutive γ
	// assignments sharing most bindings nearly free to stage.
	lastSlot []int
	// runs counts suffix executions since the last profile flush; it
	// feeds the opcode-frequency profile on ReleaseKernel.
	runs uint64
}

// AcquireKernel returns a pooled kernel for the program, sized for k
// samples at γ-batch width 1. Callers must ReleaseKernel it when done;
// the kernel keeps its evaluated γ-invariant prefix across
// acquire/release cycles.
func (p *Program) AcquireKernel(k int) *Kernel {
	return p.AcquireKernelBatch(k, 1)
}

// AcquireKernelBatch returns a pooled kernel carrying g×k lanes per
// register: g γ candidate rows of k samples each. g < 1 is treated as 1.
func (p *Program) AcquireKernelBatch(k, g int) *Kernel {
	if g < 1 {
		g = 1
	}
	kn, _ := p.kpool.Get().(*Kernel)
	if kn == nil {
		kn = &Kernel{p: p}
	}
	kn.ensure(k, g)
	return kn
}

// ReleaseKernel returns a kernel to the program's pool, folding the
// kernel's dynamic execution counts into the package opcode profile
// that guides suffix scheduling for later compilations.
func (p *Program) ReleaseKernel(kn *Kernel) {
	if kn.runs > 0 {
		p.flushProfile(kn.runs)
		kn.runs = 0
	}
	p.kpool.Put(kn)
}

// ensure sizes the lane buffers for k samples × g rows, preserving them
// (and the prefix evaluation) when the kernel was last used with the
// same shape.
func (kn *Kernel) ensure(k, g int) {
	if kn.k == k && kn.g == g {
		return
	}
	kn.k, kn.g = k, g
	kn.lanes = g * k
	kn.prefixDone = false
	n := kn.p.nregs * kn.lanes
	if cap(kn.ints) < n {
		kn.ints = make([]uint64, n)
	}
	kn.ints = kn.ints[:n]
	if kn.p.hasMem {
		if cap(kn.mems) < n {
			kn.mems = make([]int32, n)
		}
		kn.mems = kn.mems[:n]
	}
	nfp := len(kn.p.defRegs) * g
	if cap(kn.fps) < nfp {
		kn.fps = make([]uint64, nfp)
	}
	kn.fps = kn.fps[:nfp]
	if cap(kn.accs) < g {
		kn.accs = make([]uint64, g)
	}
	kn.accs = kn.accs[:g]
	ns := len(kn.p.Inputs) * g
	if cap(kn.rowSlots) < ns {
		kn.rowSlots = make([]int, ns)
	}
	kn.rowSlots = kn.rowSlots[:ns]
	if cap(kn.lastSlot) < ns {
		kn.lastSlot = make([]int, ns)
	}
	kn.lastSlot = kn.lastSlot[:ns]
	for i := range kn.lastSlot {
		kn.lastSlot[i] = -1
	}
}

// BatchWidth returns the kernel's γ-batch width g.
func (kn *Kernel) BatchWidth() int { return kn.g }

// BindRow stages the slot assignment for batch row r (0 <= r < g). The
// lanes are not filled until RunRows, which is what lets a partial
// batch skip its unused trailing rows entirely.
func (kn *Kernel) BindRow(r int, slotOf []int) {
	nIn := len(kn.p.Inputs)
	copy(kn.rowSlots[r*nIn:(r+1)*nIn], slotOf)
}

// Run evaluates the program over all k samples with input i bound to
// slot slotOf[i], using batch row 0. The γ-invariant prefix is
// evaluated at most once per kernel; Run re-executes only the suffix.
func (kn *Kernel) Run(slotOf []int) {
	kn.BindRow(0, slotOf)
	kn.RunRows(1)
}

// RunRows evaluates the compiled code over batch rows [0, rows), whose
// assignments must have been staged with BindRow: one suffix execution
// — one instruction dispatch per rows·k lanes — covering every staged γ
// candidate. Integer input rows whose slot binding is unchanged since
// their last run are not refilled.
func (kn *Kernel) RunRows(rows int) {
	if !kn.prefixDone {
		kn.arena = kn.arena[:0]
		// The prefix depends on neither slots nor samples: evaluate it
		// across ALL g rows once, so any later rows count finds it live.
		kn.exec(0, kn.p.prefixLen, kn.lanes)
		kn.prefixArena = len(kn.arena)
		kn.persist = kn.prefixArena
		clear(kn.rootBase)
		kn.prefixDone = true
	}
	kn.arena = kn.arena[:kn.persist]
	k, L := kn.k, kn.lanes
	nIn := len(kn.p.Inputs)
	for r := 0; r < rows; r++ {
		base := r * nIn
		for i, in := range kn.p.Inputs {
			slot := kn.rowSlots[base+i]
			if kn.lastSlot[base+i] == slot {
				continue
			}
			kn.lastSlot[base+i] = slot
			if in.Type == ivl.Mem {
				rb := kn.internRoots(slot)
				lane := kn.mems[i*L+r*k : i*L+r*k+k]
				for s := range lane {
					lane[s] = rb + int32(s)
				}
			} else {
				FillSlotBits(kn.ints[i*L+r*k:i*L+r*k+k], slot)
			}
		}
	}
	kn.exec(kn.p.prefixLen, len(kn.p.code), rows*k)
	kn.runs++
}

// internRoots returns the arena index of slot's block of k background
// roots, appending it to the arena's permanent region on first use. The
// blocks are identical to the roots a per-run rebuild would create —
// node hashes depend only on (sample, slot) — so reusing them across
// runs leaves every fingerprint unchanged while making a repeated mem
// binding as cheap to stage as an unchanged integer one. Interning
// happens during input refill, before the suffix appends any transient
// overlay, so the permanent region stays a prefix of the arena.
func (kn *Kernel) internRoots(slot int) int32 {
	if rb, ok := kn.rootBase[slot]; ok {
		return rb
	}
	if kn.rootBase == nil {
		kn.rootBase = make(map[int]int32)
	}
	rb := int32(len(kn.arena))
	for s := 0; s < kn.k; s++ {
		seed := SlotMemSeed(s, slot)
		kn.arena = append(kn.arena, memNode{addr: seed, hash: mix64(seed), parent: -1})
	}
	kn.persist = len(kn.arena)
	kn.rootBase[slot] = rb
	return rb
}

// Fingerprints runs the program under the slot assignment and returns
// one value-vector fingerprint per original SSA definition, in
// definition order — byte-identical to Program.Fingerprints. The
// returned slice is the kernel's scratch buffer: it is overwritten by
// the next call and must not be retained past ReleaseKernel.
func (kn *Kernel) Fingerprints(slotOf []int) []uint64 {
	kn.Run(slotOf)
	return kn.foldRows(1)
}

// FingerprintsRows executes rows staged γ candidates in one batch and
// returns their fingerprints row-major: entry [r*ndefs + d] is row r's
// fingerprint for the d-th SSA definition, each byte-identical to a
// lone Fingerprints call under that row's assignment. The returned
// slice is kernel scratch, overwritten by the next call.
func (kn *Kernel) FingerprintsRows(rows int) []uint64 {
	kn.RunRows(rows)
	return kn.foldRows(rows)
}

// foldRows reduces each active row's lane vectors to per-definition
// fingerprints. The per-row fold is a serial hash chain (multiply, xor,
// mix per sample); folding rows interleaved — inner loop over rows —
// overlaps those chains' latencies, which is where most of the γ-batch
// amortization comes from.
func (kn *Kernel) foldRows(rows int) []uint64 {
	k, L := kn.k, kn.lanes
	nd := len(kn.p.defRegs)
	fps := kn.fps[:rows*nd]
	accs := kn.accs[:rows]
	for d := range kn.p.defRegs {
		di := &kn.p.defRegs[d]
		base := di.reg * L
		if di.isMem {
			switch rows {
			case 1:
				lane := kn.mems[base : base+k]
				var acc uint64
				for _, m := range lane {
					h := mix64(kn.arena[m].hash ^ memHashTag)
					acc = mix64(acc*fpPrime ^ h)
				}
				fps[d] = acc
			case 8:
				// The default width's chains unrolled into locals: eight
				// accumulators live in registers, so the per-sample step
				// costs no accumulator loads/stores and the eight serial
				// mix chains retire in parallel.
				arena := kn.arena
				l0, l1 := kn.mems[base:base+k], kn.mems[base+k:base+2*k]
				l2, l3 := kn.mems[base+2*k:base+3*k], kn.mems[base+3*k:base+4*k]
				l4, l5 := kn.mems[base+4*k:base+5*k], kn.mems[base+5*k:base+6*k]
				l6, l7 := kn.mems[base+6*k:base+7*k], kn.mems[base+7*k:base+8*k]
				var a0, a1, a2, a3, a4, a5, a6, a7 uint64
				for s := 0; s < k; s++ {
					a0 = mix64(a0*fpPrime ^ mix64(arena[l0[s]].hash^memHashTag))
					a1 = mix64(a1*fpPrime ^ mix64(arena[l1[s]].hash^memHashTag))
					a2 = mix64(a2*fpPrime ^ mix64(arena[l2[s]].hash^memHashTag))
					a3 = mix64(a3*fpPrime ^ mix64(arena[l3[s]].hash^memHashTag))
					a4 = mix64(a4*fpPrime ^ mix64(arena[l4[s]].hash^memHashTag))
					a5 = mix64(a5*fpPrime ^ mix64(arena[l5[s]].hash^memHashTag))
					a6 = mix64(a6*fpPrime ^ mix64(arena[l6[s]].hash^memHashTag))
					a7 = mix64(a7*fpPrime ^ mix64(arena[l7[s]].hash^memHashTag))
				}
				fps[d], fps[nd+d], fps[2*nd+d], fps[3*nd+d] = a0, a1, a2, a3
				fps[4*nd+d], fps[5*nd+d], fps[6*nd+d], fps[7*nd+d] = a4, a5, a6, a7
			default:
				mlane := kn.mems[base : base+rows*k]
				arena := kn.arena
				for r := range accs {
					accs[r] = 0
				}
				for s := 0; s < k; s++ {
					for r := 0; r < rows; r++ {
						h := mix64(arena[mlane[r*k+s]].hash ^ memHashTag)
						accs[r] = mix64(accs[r]*fpPrime ^ h)
					}
				}
				for r := 0; r < rows; r++ {
					fps[r*nd+d] = accs[r]
				}
			}
			continue
		}
		switch rows {
		case 1:
			lane := kn.ints[base : base+k]
			var acc uint64
			for _, v := range lane {
				acc = mix64(acc*fpPrime ^ v)
			}
			fps[d] = acc
		case 8:
			l0, l1 := kn.ints[base:base+k], kn.ints[base+k:base+2*k]
			l2, l3 := kn.ints[base+2*k:base+3*k], kn.ints[base+3*k:base+4*k]
			l4, l5 := kn.ints[base+4*k:base+5*k], kn.ints[base+5*k:base+6*k]
			l6, l7 := kn.ints[base+6*k:base+7*k], kn.ints[base+7*k:base+8*k]
			var a0, a1, a2, a3, a4, a5, a6, a7 uint64
			for s := 0; s < k; s++ {
				a0 = mix64(a0*fpPrime ^ l0[s])
				a1 = mix64(a1*fpPrime ^ l1[s])
				a2 = mix64(a2*fpPrime ^ l2[s])
				a3 = mix64(a3*fpPrime ^ l3[s])
				a4 = mix64(a4*fpPrime ^ l4[s])
				a5 = mix64(a5*fpPrime ^ l5[s])
				a6 = mix64(a6*fpPrime ^ l6[s])
				a7 = mix64(a7*fpPrime ^ l7[s])
			}
			fps[d], fps[nd+d], fps[2*nd+d], fps[3*nd+d] = a0, a1, a2, a3
			fps[4*nd+d], fps[5*nd+d], fps[6*nd+d], fps[7*nd+d] = a4, a5, a6, a7
		default:
			lane := kn.ints[base : base+rows*k]
			for r := range accs {
				accs[r] = 0
			}
			for s := 0; s < k; s++ {
				for r := 0; r < rows; r++ {
					accs[r] = mix64(accs[r]*fpPrime ^ lane[r*k+s])
				}
			}
			for r := 0; r < rows; r++ {
				fps[r*nd+d] = accs[r]
			}
		}
	}
	return fps
}

// DefBits returns the integer lane vector of the d-th SSA definition's
// batch row 0 after a Run. Valid only for integer-typed definitions;
// the slice aliases kernel state and is overwritten by the next Run.
func (kn *Kernel) DefBits(d int) []uint64 {
	r := kn.p.defRegs[d].reg
	return kn.ints[r*kn.lanes : r*kn.lanes+kn.k]
}

// newRoot appends a background memory root and returns its index.
func (kn *Kernel) newRoot(seed uint64) int32 {
	idx := int32(len(kn.arena))
	kn.arena = append(kn.arena, memNode{addr: seed, hash: mix64(seed), parent: -1})
	return idx
}

// load reads w bytes little-endian, newest covering store winning per
// byte and the deterministic background filling the rest — the same
// bytes MemVal.Load's per-byte chain walks produce, but collected in a
// single walk: each overlay node fills whichever of its bytes overlap
// the load window and are not already claimed by a newer node, and the
// walk stops as soon as every byte is filled.
func (kn *Kernel) load(idx int32, addr uint64, w uint) uint64 {
	arena := kn.arena
	var v uint64
	var filled, need uint32
	need = uint32(1)<<w - 1
	n := idx
	for ; arena[n].parent >= 0; n = arena[n].parent {
		nd := &arena[n]
		// A load exactly matching the newest unshadowed store returns
		// its (already width-masked) value outright — the common shape
		// of spill/reload pairs in lifted code. Only valid when the
		// store's range does not wrap the address space: byteAt's
		// unwrapped upper-bound test makes a wrapping store invisible
		// to every byte, so such a store must fall through to the
		// per-byte walk below.
		if filled == 0 && nd.addr == addr && uint(nd.w) == w && addr+uint64(w) > addr {
			return nd.val
		}
		// Per-byte containment test identical to MemVal.byteAt's, so
		// stores whose ranges wrap the address space behave exactly as
		// the per-byte walks did.
		for i := uint(0); i < w; i++ {
			if filled&(1<<i) != 0 {
				continue
			}
			if a := addr + uint64(i); a >= nd.addr && a < nd.addr+uint64(nd.w) {
				filled |= 1 << i
				v |= uint64(byte(nd.val>>(8*(a-nd.addr)))) << (8 * i)
			}
		}
		if filled == need {
			return v
		}
	}
	// n is now the chain's root, whose addr field holds the background
	// seed.
	seed := arena[n].addr
	for i := uint(0); i < w; i++ {
		if filled&(1<<i) == 0 {
			v |= uint64(byte(mix64(seed^mix64(addr+uint64(i))))) << (8 * i)
		}
	}
	return v
}

// exec runs code[lo:hi] over the first nl of each register's lanes: one
// dispatch per instruction, one tight loop per lane vector. The lane
// stride is kn.lanes (g×k); a partial γ batch passes nl = rows·k so the
// unused trailing rows cost nothing. Lanes beyond nl may hold stale
// values (including dangling arena indices from a previous, longer run);
// they are never read, because every consumer — exec itself, foldRows,
// DefBits — bounds its sweeps by the same active lane count.
func (kn *Kernel) exec(lo, hi, nl int) {
	L := kn.lanes
	code := kn.p.code
	memReg := kn.p.memReg
	for idx := lo; idx < hi; idx++ {
		in := &code[idx]
		d := in.dst * L
		switch in.op {
		case cConst:
			lane := kn.ints[d : d+nl]
			v := in.val
			for s := range lane {
				lane[s] = v
			}
		case cBin:
			if memReg[in.a] || memReg[in.b] {
				kn.execBinMem(in, d, nl)
				continue
			}
			evalBinLanes(in.bin, kn.ints[d:d+nl], kn.ints[in.a*L:in.a*L+nl], kn.ints[in.b*L:in.b*L+nl])
		case cUn:
			dst, x := kn.ints[d:d+nl], kn.ints[in.a*L:in.a*L+nl]
			switch in.un {
			case ivl.Not:
				for s := range dst {
					dst[s] = ^x[s]
				}
			case ivl.Neg:
				for s := range dst {
					dst[s] = -x[s]
				}
			default: // BoolNot
				for s := range dst {
					dst[s] = boolBit(x[s] == 0)
				}
			}
		case cIte:
			c := kn.ints[in.c*L : in.c*L+nl]
			if memReg[in.dst] {
				dst := kn.mems[d : d+nl]
				a, b := kn.mems[in.a*L:in.a*L+nl], kn.mems[in.b*L:in.b*L+nl]
				for s := range dst {
					if c[s] != 0 {
						dst[s] = a[s]
					} else {
						dst[s] = b[s]
					}
				}
			} else {
				dst := kn.ints[d : d+nl]
				a, b := kn.ints[in.a*L:in.a*L+nl], kn.ints[in.b*L:in.b*L+nl]
				for s := range dst {
					if c[s] != 0 {
						dst[s] = a[s]
					} else {
						dst[s] = b[s]
					}
				}
			}
		case cTrunc:
			dst, x := kn.ints[d:d+nl], kn.ints[in.a*L:in.a*L+nl]
			if in.bits >= 64 {
				copy(dst, x)
			} else {
				mask := (uint64(1) << in.bits) - 1
				for s := range dst {
					dst[s] = x[s] & mask
				}
			}
		case cSext:
			dst, x := kn.ints[d:d+nl], kn.ints[in.a*L:in.a*L+nl]
			sh := 64 - in.bits
			for s := range dst {
				dst[s] = uint64(int64(x[s]<<sh) >> sh)
			}
		case cLoad:
			dst := kn.ints[d : d+nl]
			m, a := kn.mems[in.a*L:in.a*L+nl], kn.ints[in.b*L:in.b*L+nl]
			w := in.w
			for s := range dst {
				dst[s] = kn.load(m[s], a[s], w)
			}
		case cStore:
			dst := kn.mems[d : d+nl]
			m := kn.mems[in.a*L : in.a*L+nl]
			a, v := kn.ints[in.b*L:in.b*L+nl], kn.ints[in.c*L:in.c*L+nl]
			w := in.w
			// One overlay per lane, appended as a block: grow the arena
			// once and write by index, so the hot store loop carries no
			// per-lane append or capacity checks. Semantics and hash
			// construction mirror ivl.MemVal.Store exactly.
			arena := kn.arena
			base := len(arena)
			if cap(arena) < base+nl {
				na := make([]memNode, base, 2*cap(arena)+nl)
				copy(na, arena)
				arena = na
			}
			arena = arena[:base+nl]
			mask := ^uint64(0)
			if w < 8 {
				mask = (uint64(1) << (8 * w)) - 1
			}
			for s := range dst {
				val := v[s] & mask
				arena[base+s] = memNode{
					addr:   a[s],
					val:    val,
					w:      uint8(w),
					parent: m[s],
					hash:   mix64(arena[m[s]].hash ^ mix64(a[s])*3 ^ mix64(val) ^ uint64(w)),
				}
				dst[s] = int32(base + s)
			}
			kn.arena = arena
		case cCall:
			if cap(kn.argHash) < L {
				kn.argHash = make([]uint64, L)
			}
			h := kn.argHash[:nl]
			sym := in.sym
			for s := range h {
				h[s] = sym
			}
			for _, ar := range in.args {
				if memReg[ar] {
					lane := kn.mems[ar*L : ar*L+nl]
					for s := range h {
						h[s] = mix64(h[s] ^ kn.arena[lane[s]].hash)
					}
				} else {
					lane := kn.ints[ar*L : ar*L+nl]
					for s := range h {
						h[s] = mix64(h[s] ^ lane[s])
					}
				}
			}
			if in.memC {
				dst := kn.mems[d : d+nl]
				for s := range dst {
					dst[s] = kn.newRoot(h[s])
				}
			} else {
				copy(kn.ints[d:d+nl], h)
			}
		}
	}
}

// execBinMem handles the rare cBin whose operands include a memory
// value: only (in)equality is meaningful; everything else yields 0, as
// in the scalar path.
func (kn *Kernel) execBinMem(in *cinstr, d, nl int) {
	L := kn.lanes
	dst := kn.ints[d : d+nl]
	memA, memB := kn.p.memReg[in.a], kn.p.memReg[in.b]
	if in.bin != ivl.Eq && in.bin != ivl.Ne {
		for s := range dst {
			dst[s] = 0
		}
		return
	}
	if memA != memB {
		// Mixed memory/integer comparison: never equal.
		v := boolBit(in.bin == ivl.Ne)
		for s := range dst {
			dst[s] = v
		}
		return
	}
	a, b := kn.mems[in.a*L:in.a*L+nl], kn.mems[in.b*L:in.b*L+nl]
	for s := range dst {
		eq := kn.arena[a[s]].hash == kn.arena[b[s]].hash
		if in.bin == ivl.Ne {
			eq = !eq
		}
		dst[s] = boolBit(eq)
	}
}

// evalBinLanes applies one binary operator across whole lanes: the
// operator dispatch happens once, the loop body is branch-free for the
// common operators. Semantics match ivl.EvalBin element-wise.
func evalBinLanes(op ivl.BinOp, dst, x, y []uint64) {
	switch op {
	case ivl.Add:
		for s := range dst {
			dst[s] = x[s] + y[s]
		}
	case ivl.Sub:
		for s := range dst {
			dst[s] = x[s] - y[s]
		}
	case ivl.Mul:
		for s := range dst {
			dst[s] = x[s] * y[s]
		}
	case ivl.And:
		for s := range dst {
			dst[s] = x[s] & y[s]
		}
	case ivl.Or:
		for s := range dst {
			dst[s] = x[s] | y[s]
		}
	case ivl.Xor:
		for s := range dst {
			dst[s] = x[s] ^ y[s]
		}
	case ivl.Shl:
		for s := range dst {
			dst[s] = x[s] << (y[s] & 63)
		}
	case ivl.LShr:
		for s := range dst {
			dst[s] = x[s] >> (y[s] & 63)
		}
	case ivl.AShr:
		for s := range dst {
			dst[s] = uint64(int64(x[s]) >> (y[s] & 63))
		}
	case ivl.Eq:
		for s := range dst {
			dst[s] = boolBit(x[s] == y[s])
		}
	case ivl.Ne:
		for s := range dst {
			dst[s] = boolBit(x[s] != y[s])
		}
	case ivl.SLt:
		for s := range dst {
			dst[s] = boolBit(int64(x[s]) < int64(y[s]))
		}
	case ivl.SLe:
		for s := range dst {
			dst[s] = boolBit(int64(x[s]) <= int64(y[s]))
		}
	case ivl.SGt:
		for s := range dst {
			dst[s] = boolBit(int64(x[s]) > int64(y[s]))
		}
	case ivl.SGe:
		for s := range dst {
			dst[s] = boolBit(int64(x[s]) >= int64(y[s]))
		}
	case ivl.ULt:
		for s := range dst {
			dst[s] = boolBit(x[s] < y[s])
		}
	case ivl.ULe:
		for s := range dst {
			dst[s] = boolBit(x[s] <= y[s])
		}
	case ivl.UGt:
		for s := range dst {
			dst[s] = boolBit(x[s] > y[s])
		}
	case ivl.UGe:
		for s := range dst {
			dst[s] = boolBit(x[s] >= y[s])
		}
	default:
		// SDiv/SRem carry per-element totalization branches; they are
		// rare enough that the shared scalar helper is fine.
		for s := range dst {
			dst[s] = ivl.EvalBin(op, x[s], y[s])
		}
	}
}
