package smt

// The batched structure-of-arrays evaluation kernel: the hot loop of the
// whole system, rewritten so that each instruction dispatches once and
// runs a tight loop over all k sample values, instead of k full
// interpreter passes over boxed ivl.Value structs.
//
// Layout: every virtual register r owns a lane vector of k values.
// Integer registers live in one flat []uint64 (ints[r*k+s]); memory
// registers hold indices into a per-kernel arena of immutable store
// nodes (a pointer-free re-implementation of ivl.MemVal with identical
// hash and load semantics, so fingerprints stay byte-identical to the
// scalar path). Memory-typedness is static at compile time (Program.
// memReg), so the per-instruction lane loops carry no type tests.
//
// Kernels are pooled per Program and reused across γ correspondences:
// the γ-invariant prefix (Program.prefixLen) is evaluated once per
// kernel lifetime — its lanes depend on neither the slot assignment nor
// the sample index — and each Run resets the arena to the prefix
// watermark, refills the input lanes, and re-executes only the suffix.
// After warm-up the whole γ loop performs zero heap allocations.

import "repro/internal/ivl"

// memNode is one node of the kernel's arena-backed memory: either a
// background root (parent < 0) or a store overlay. Semantics and hash
// construction mirror ivl.MemVal exactly.
type memNode struct {
	hash   uint64
	seed   uint64
	addr   uint64
	val    uint64
	parent int32
	w      uint8
}

// memHashTag separates the memory hash domain from integers when
// fingerprinting; it must match the constant used by the scalar paths
// (Program.Fingerprints, VectorHashes).
const memHashTag = 0xDEAD_BEEF_CAFE_F00D

// fpPrime is the fingerprint chaining multiplier shared with the scalar
// paths.
const fpPrime = 0x100_0000_01b3

// Kernel is a reusable SoA evaluation state for one Program at a fixed
// sample count. It is not safe for concurrent use; acquire one per
// goroutine via Program.AcquireKernel.
type Kernel struct {
	p *Program
	k int
	// ints holds the integer lanes, k per register.
	ints []uint64
	// mems holds the memory lanes as arena indices (allocated only when
	// the program touches memory).
	mems []int32
	// arena is the memory store-node arena; prefixArena is its length
	// after prefix evaluation, restored at the start of every Run.
	arena       []memNode
	prefixArena int
	prefixDone  bool
	// fps is the fingerprint scratch slice returned by Fingerprints.
	fps []uint64
	// argHash is scratch for cCall argument hashing.
	argHash []uint64
	// lastSlot remembers the slot each integer input was last bound to.
	// Input registers are never written by exec (every assignment
	// allocates a fresh register), so an integer lane whose slot is
	// unchanged between Runs is still valid and need not be refilled.
	// Memory lanes hold arena indices invalidated by the per-Run arena
	// reset, so they always rebind (their entries stay -1).
	lastSlot []int
}

// AcquireKernel returns a pooled kernel for the program, sized for k
// samples. Callers must ReleaseKernel it when done; the kernel keeps its
// evaluated γ-invariant prefix across acquire/release cycles.
func (p *Program) AcquireKernel(k int) *Kernel {
	kn, _ := p.kpool.Get().(*Kernel)
	if kn == nil {
		kn = &Kernel{p: p}
	}
	kn.ensure(k)
	return kn
}

// ReleaseKernel returns a kernel to the program's pool.
func (p *Program) ReleaseKernel(kn *Kernel) { p.kpool.Put(kn) }

// ensure sizes the lane buffers for k samples, preserving them (and the
// prefix evaluation) when the kernel was last used with the same k.
func (kn *Kernel) ensure(k int) {
	if kn.k == k {
		return
	}
	kn.k = k
	kn.prefixDone = false
	n := kn.p.nregs * k
	if cap(kn.ints) < n {
		kn.ints = make([]uint64, n)
	}
	kn.ints = kn.ints[:n]
	if kn.p.hasMem {
		if cap(kn.mems) < n {
			kn.mems = make([]int32, n)
		}
		kn.mems = kn.mems[:n]
	}
	if cap(kn.fps) < len(kn.p.defRegs) {
		kn.fps = make([]uint64, len(kn.p.defRegs))
	}
	kn.fps = kn.fps[:len(kn.p.defRegs)]
	if cap(kn.lastSlot) < len(kn.p.Inputs) {
		kn.lastSlot = make([]int, len(kn.p.Inputs))
	}
	kn.lastSlot = kn.lastSlot[:len(kn.p.Inputs)]
	for i := range kn.lastSlot {
		kn.lastSlot[i] = -1
	}
}

// Run evaluates the program over all k samples with input i bound to
// slot slotOf[i]. The γ-invariant prefix is evaluated at most once per
// kernel; Run re-executes only the suffix.
func (kn *Kernel) Run(slotOf []int) {
	if !kn.prefixDone {
		kn.arena = kn.arena[:0]
		kn.exec(0, kn.p.prefixLen)
		kn.prefixArena = len(kn.arena)
		kn.prefixDone = true
	}
	kn.arena = kn.arena[:kn.prefixArena]
	k := kn.k
	for i, in := range kn.p.Inputs {
		slot := slotOf[i]
		if in.Type == ivl.Mem {
			lane := kn.mems[i*k : i*k+k]
			for s := range lane {
				lane[s] = kn.newRoot(SlotMemSeed(s, slot))
			}
		} else if kn.lastSlot[i] != slot {
			kn.lastSlot[i] = slot
			lane := kn.ints[i*k : i*k+k]
			for s := range lane {
				lane[s] = SlotBits(s, slot)
			}
		}
	}
	kn.exec(kn.p.prefixLen, len(kn.p.code))
}

// Fingerprints runs the program under the slot assignment and returns
// one value-vector fingerprint per original SSA definition, in
// definition order — byte-identical to Program.Fingerprints. The
// returned slice is the kernel's scratch buffer: it is overwritten by
// the next call and must not be retained past ReleaseKernel.
func (kn *Kernel) Fingerprints(slotOf []int) []uint64 {
	kn.Run(slotOf)
	k := kn.k
	for d, di := range kn.p.defRegs {
		base := di.reg * k
		var acc uint64
		if di.isMem {
			for s := 0; s < k; s++ {
				h := mix64(kn.arena[kn.mems[base+s]].hash ^ memHashTag)
				acc = mix64(acc*fpPrime ^ h)
			}
		} else {
			for s := 0; s < k; s++ {
				acc = mix64(acc*fpPrime ^ kn.ints[base+s])
			}
		}
		kn.fps[d] = acc
	}
	return kn.fps
}

// DefBits returns the integer lane vector of the d-th SSA definition
// after a Run. Valid only for integer-typed definitions; the slice
// aliases kernel state and is overwritten by the next Run.
func (kn *Kernel) DefBits(d int) []uint64 {
	r := kn.p.defRegs[d].reg
	return kn.ints[r*kn.k : r*kn.k+kn.k]
}

// newRoot appends a background memory root and returns its index.
func (kn *Kernel) newRoot(seed uint64) int32 {
	idx := int32(len(kn.arena))
	kn.arena = append(kn.arena, memNode{seed: seed, hash: mix64(seed), parent: -1})
	return idx
}

// store appends a store overlay; semantics and hash match MemVal.Store.
func (kn *Kernel) store(parent int32, addr uint64, w uint, val uint64) int32 {
	if w < 8 {
		val &= (uint64(1) << (8 * w)) - 1
	}
	p := &kn.arena[parent]
	idx := int32(len(kn.arena))
	kn.arena = append(kn.arena, memNode{
		seed:   p.seed,
		addr:   addr,
		val:    val,
		w:      uint8(w),
		parent: parent,
		hash:   mix64(p.hash ^ mix64(addr)*3 ^ mix64(val) ^ uint64(w)),
	})
	return idx
}

// byteAt reads one byte: newest covering store wins, the deterministic
// background otherwise. Mirrors MemVal.byteAt.
func (kn *Kernel) byteAt(idx int32, addr uint64) byte {
	arena := kn.arena
	for n := idx; arena[n].parent >= 0; n = arena[n].parent {
		nd := &arena[n]
		if addr >= nd.addr && addr < nd.addr+uint64(nd.w) {
			return byte(nd.val >> (8 * (addr - nd.addr)))
		}
	}
	return byte(mix64(arena[idx].seed ^ mix64(addr)))
}

// load reads w bytes little-endian. Mirrors MemVal.Load.
func (kn *Kernel) load(idx int32, addr uint64, w uint) uint64 {
	var v uint64
	for i := uint(0); i < w; i++ {
		v |= uint64(kn.byteAt(idx, addr+uint64(i))) << (8 * i)
	}
	return v
}

// exec runs code[lo:hi] over all lanes: one dispatch per instruction,
// one tight loop per lane vector.
func (kn *Kernel) exec(lo, hi int) {
	k := kn.k
	code := kn.p.code
	memReg := kn.p.memReg
	for idx := lo; idx < hi; idx++ {
		in := &code[idx]
		d := in.dst * k
		switch in.op {
		case cConst:
			lane := kn.ints[d : d+k]
			v := in.val
			for s := range lane {
				lane[s] = v
			}
		case cBin:
			if memReg[in.a] || memReg[in.b] {
				kn.execBinMem(in, d)
				continue
			}
			evalBinLanes(in.bin, kn.ints[d:d+k], kn.ints[in.a*k:in.a*k+k], kn.ints[in.b*k:in.b*k+k])
		case cUn:
			dst, x := kn.ints[d:d+k], kn.ints[in.a*k:in.a*k+k]
			switch in.un {
			case ivl.Not:
				for s := range dst {
					dst[s] = ^x[s]
				}
			case ivl.Neg:
				for s := range dst {
					dst[s] = -x[s]
				}
			default: // BoolNot
				for s := range dst {
					dst[s] = boolBit(x[s] == 0)
				}
			}
		case cIte:
			c := kn.ints[in.c*k : in.c*k+k]
			if memReg[in.dst] {
				dst := kn.mems[d : d+k]
				a, b := kn.mems[in.a*k:in.a*k+k], kn.mems[in.b*k:in.b*k+k]
				for s := range dst {
					if c[s] != 0 {
						dst[s] = a[s]
					} else {
						dst[s] = b[s]
					}
				}
			} else {
				dst := kn.ints[d : d+k]
				a, b := kn.ints[in.a*k:in.a*k+k], kn.ints[in.b*k:in.b*k+k]
				for s := range dst {
					if c[s] != 0 {
						dst[s] = a[s]
					} else {
						dst[s] = b[s]
					}
				}
			}
		case cTrunc:
			dst, x := kn.ints[d:d+k], kn.ints[in.a*k:in.a*k+k]
			if in.bits >= 64 {
				copy(dst, x)
			} else {
				mask := (uint64(1) << in.bits) - 1
				for s := range dst {
					dst[s] = x[s] & mask
				}
			}
		case cSext:
			dst, x := kn.ints[d:d+k], kn.ints[in.a*k:in.a*k+k]
			sh := 64 - in.bits
			for s := range dst {
				dst[s] = uint64(int64(x[s]<<sh) >> sh)
			}
		case cLoad:
			dst := kn.ints[d : d+k]
			m, a := kn.mems[in.a*k:in.a*k+k], kn.ints[in.b*k:in.b*k+k]
			w := in.w
			for s := range dst {
				dst[s] = kn.load(m[s], a[s], w)
			}
		case cStore:
			dst := kn.mems[d : d+k]
			m := kn.mems[in.a*k : in.a*k+k]
			a, v := kn.ints[in.b*k:in.b*k+k], kn.ints[in.c*k:in.c*k+k]
			w := in.w
			for s := range dst {
				dst[s] = kn.store(m[s], a[s], w, v[s])
			}
		case cCall:
			if cap(kn.argHash) < k {
				kn.argHash = make([]uint64, k)
			}
			h := kn.argHash[:k]
			sym := in.sym
			for s := range h {
				h[s] = sym
			}
			for _, ar := range in.args {
				if memReg[ar] {
					lane := kn.mems[ar*k : ar*k+k]
					for s := range h {
						h[s] = mix64(h[s] ^ kn.arena[lane[s]].hash)
					}
				} else {
					lane := kn.ints[ar*k : ar*k+k]
					for s := range h {
						h[s] = mix64(h[s] ^ lane[s])
					}
				}
			}
			if in.memC {
				dst := kn.mems[d : d+k]
				for s := range dst {
					dst[s] = kn.newRoot(h[s])
				}
			} else {
				copy(kn.ints[d:d+k], h)
			}
		}
	}
}

// execBinMem handles the rare cBin whose operands include a memory
// value: only (in)equality is meaningful; everything else yields 0, as
// in the scalar path.
func (kn *Kernel) execBinMem(in *cinstr, d int) {
	k := kn.k
	dst := kn.ints[d : d+k]
	memA, memB := kn.p.memReg[in.a], kn.p.memReg[in.b]
	if in.bin != ivl.Eq && in.bin != ivl.Ne {
		for s := range dst {
			dst[s] = 0
		}
		return
	}
	if memA != memB {
		// Mixed memory/integer comparison: never equal.
		v := boolBit(in.bin == ivl.Ne)
		for s := range dst {
			dst[s] = v
		}
		return
	}
	a, b := kn.mems[in.a*k:in.a*k+k], kn.mems[in.b*k:in.b*k+k]
	for s := range dst {
		eq := kn.arena[a[s]].hash == kn.arena[b[s]].hash
		if in.bin == ivl.Ne {
			eq = !eq
		}
		dst[s] = boolBit(eq)
	}
}

// evalBinLanes applies one binary operator across whole lanes: the
// operator dispatch happens once, the loop body is branch-free for the
// common operators. Semantics match ivl.EvalBin element-wise.
func evalBinLanes(op ivl.BinOp, dst, x, y []uint64) {
	switch op {
	case ivl.Add:
		for s := range dst {
			dst[s] = x[s] + y[s]
		}
	case ivl.Sub:
		for s := range dst {
			dst[s] = x[s] - y[s]
		}
	case ivl.Mul:
		for s := range dst {
			dst[s] = x[s] * y[s]
		}
	case ivl.And:
		for s := range dst {
			dst[s] = x[s] & y[s]
		}
	case ivl.Or:
		for s := range dst {
			dst[s] = x[s] | y[s]
		}
	case ivl.Xor:
		for s := range dst {
			dst[s] = x[s] ^ y[s]
		}
	case ivl.Shl:
		for s := range dst {
			dst[s] = x[s] << (y[s] & 63)
		}
	case ivl.LShr:
		for s := range dst {
			dst[s] = x[s] >> (y[s] & 63)
		}
	case ivl.AShr:
		for s := range dst {
			dst[s] = uint64(int64(x[s]) >> (y[s] & 63))
		}
	case ivl.Eq:
		for s := range dst {
			dst[s] = boolBit(x[s] == y[s])
		}
	case ivl.Ne:
		for s := range dst {
			dst[s] = boolBit(x[s] != y[s])
		}
	case ivl.SLt:
		for s := range dst {
			dst[s] = boolBit(int64(x[s]) < int64(y[s]))
		}
	case ivl.SLe:
		for s := range dst {
			dst[s] = boolBit(int64(x[s]) <= int64(y[s]))
		}
	case ivl.SGt:
		for s := range dst {
			dst[s] = boolBit(int64(x[s]) > int64(y[s]))
		}
	case ivl.SGe:
		for s := range dst {
			dst[s] = boolBit(int64(x[s]) >= int64(y[s]))
		}
	case ivl.ULt:
		for s := range dst {
			dst[s] = boolBit(x[s] < y[s])
		}
	case ivl.ULe:
		for s := range dst {
			dst[s] = boolBit(x[s] <= y[s])
		}
	case ivl.UGt:
		for s := range dst {
			dst[s] = boolBit(x[s] > y[s])
		}
	case ivl.UGe:
		for s := range dst {
			dst[s] = boolBit(x[s] >= y[s])
		}
	default:
		// SDiv/SRem carry per-element totalization branches; they are
		// rare enough that the shared scalar helper is fine.
		for s := range dst {
			dst[s] = ivl.EvalBin(op, x[s], y[s])
		}
	}
}
