package smt

import (
	"math/rand"
	"testing"

	"repro/internal/ivl"
)

func x() ivl.Expr { return ivl.IntVar("x") }
func y() ivl.Expr { return ivl.IntVar("y") }

func TestNormalizeConstFold(t *testing.T) {
	tests := []struct {
		e    ivl.Expr
		want uint64
	}{
		{ivl.Bin(ivl.Add, ivl.C(2), ivl.C(3)), 5},
		{ivl.Bin(ivl.Mul, ivl.C(6), ivl.C(7)), 42},
		{ivl.Bin(ivl.Sub, ivl.C(10), ivl.C(4)), 6},
		{ivl.Bin(ivl.Xor, ivl.C(0xFF), ivl.C(0x0F)), 0xF0},
		{ivl.Un(ivl.Not, ivl.C(0)), ^uint64(0)},
		{ivl.Un(ivl.Neg, ivl.C(1)), ^uint64(0)},
		{ivl.TruncExpr{Bits: 8, X: ivl.C(0x1FF)}, 0xFF},
		{ivl.SextExpr{Bits: 8, X: ivl.C(0x80)}, ^uint64(0x7F)},
		{ivl.Bin(ivl.SLt, ivl.C(1), ivl.C(2)), 1},
		{ivl.IteExpr{Cond: ivl.C(1), Then: ivl.C(5), Else: ivl.C(6)}, 5},
	}
	for _, tt := range tests {
		n := Normalize(tt.e)
		c, ok := n.(ivl.ConstExpr)
		if !ok || c.Val != tt.want {
			t.Errorf("Normalize(%s) = %s, want %#x", tt.e, n, tt.want)
		}
	}
}

func TestNormalizeIdentities(t *testing.T) {
	idCases := []struct {
		name string
		a, b ivl.Expr
	}{
		{"x+0", ivl.Bin(ivl.Add, x(), ivl.C(0)), x()},
		{"x*1", ivl.Bin(ivl.Mul, x(), ivl.C(1)), x()},
		{"x&~0", ivl.Bin(ivl.And, x(), ivl.C(^uint64(0))), x()},
		{"x|0", ivl.Bin(ivl.Or, x(), ivl.C(0)), x()},
		{"x^0", ivl.Bin(ivl.Xor, x(), ivl.C(0)), x()},
		{"x^x", ivl.Bin(ivl.Xor, x(), x()), ivl.C(0)},
		{"x&x", ivl.Bin(ivl.And, x(), x()), x()},
		{"x|x", ivl.Bin(ivl.Or, x(), x()), x()},
		{"x*0", ivl.Bin(ivl.Mul, x(), ivl.C(0)), ivl.C(0)},
		{"x&0", ivl.Bin(ivl.And, x(), ivl.C(0)), ivl.C(0)},
		{"x<<0", ivl.Bin(ivl.Shl, x(), ivl.C(0)), x()},
		{"x>>64", ivl.Bin(ivl.LShr, x(), ivl.C(64)), x()}, // shift counts masked mod 64
		{"not not x", ivl.Un(ivl.Not, ivl.Un(ivl.Not, x())), x()},
		{"x-x", ivl.Bin(ivl.Sub, x(), x()), ivl.C(0)},
		{"x==x", ivl.Bin(ivl.Eq, x(), x()), ivl.C(1)},
		{"x!=x", ivl.Bin(ivl.Ne, x(), x()), ivl.C(0)},
		{"ite(c,x,x)", ivl.IteExpr{Cond: y(), Then: x(), Else: x()}, x()},
		{"trunc64", ivl.TruncExpr{Bits: 64, X: x()}, x()},
		{"trunc8(trunc16)", ivl.TruncExpr{Bits: 16, X: ivl.TruncExpr{Bits: 8, X: x()}},
			ivl.TruncExpr{Bits: 8, X: x()}},
	}
	for _, tt := range idCases {
		got := Normalize(tt.a)
		want := Normalize(tt.b)
		if got.String() != want.String() {
			t.Errorf("%s: Normalize = %s, want %s", tt.name, got, want)
		}
	}
}

func TestNormalizeCommutativity(t *testing.T) {
	pairs := [][2]ivl.Expr{
		{ivl.Bin(ivl.Add, x(), y()), ivl.Bin(ivl.Add, y(), x())},
		{ivl.Bin(ivl.Mul, x(), y()), ivl.Bin(ivl.Mul, y(), x())},
		{ivl.Bin(ivl.And, x(), y()), ivl.Bin(ivl.And, y(), x())},
		{ivl.Bin(ivl.Eq, x(), y()), ivl.Bin(ivl.Eq, y(), x())},
		// associativity: (x+y)+1 == x+(y+1)
		{ivl.Bin(ivl.Add, ivl.Bin(ivl.Add, x(), y()), ivl.C(1)),
			ivl.Bin(ivl.Add, x(), ivl.Bin(ivl.Add, y(), ivl.C(1)))},
		// x - y == x + (-1)*y
		{ivl.Bin(ivl.Sub, x(), y()),
			ivl.Bin(ivl.Add, x(), ivl.Un(ivl.Neg, y()))},
		// lea vs add chain: (x + x) == 2*x? Not implemented (like-term
		// collection); but x+y+3+4 == x+7+y must hold:
		{ivl.Bin(ivl.Add, ivl.Bin(ivl.Add, ivl.Bin(ivl.Add, x(), y()), ivl.C(3)), ivl.C(4)),
			ivl.Bin(ivl.Add, ivl.Bin(ivl.Add, x(), ivl.C(7)), y())},
		// comparison orientation: x > y == y < x
		{ivl.Bin(ivl.SGt, x(), y()), ivl.Bin(ivl.SLt, y(), x())},
		{ivl.Bin(ivl.UGe, x(), y()), ivl.Bin(ivl.ULe, y(), x())},
	}
	for _, p := range pairs {
		if !Equivalent(p[0], p[1]) {
			t.Errorf("not equivalent: %s vs %s\n  -> %s\n  -> %s",
				p[0], p[1], Normalize(p[0]), Normalize(p[1]))
		}
	}
}

func TestNormalizeDistinguishes(t *testing.T) {
	pairs := [][2]ivl.Expr{
		{ivl.Bin(ivl.Add, x(), ivl.C(1)), ivl.Bin(ivl.Add, x(), ivl.C(2))},
		{ivl.Bin(ivl.Add, x(), y()), ivl.Bin(ivl.Sub, x(), y())},
		{ivl.Bin(ivl.SLt, x(), y()), ivl.Bin(ivl.ULt, x(), y())},
		{x(), y()},
	}
	for _, p := range pairs {
		if Equivalent(p[0], p[1]) {
			t.Errorf("wrongly equivalent: %s vs %s", p[0], p[1])
		}
	}
}

func TestNormalizeStoreForwarding(t *testing.T) {
	mem := ivl.VarExpr{V: ivl.Var{Name: "m", Type: ivl.Mem}}
	addr := ivl.Bin(ivl.Add, x(), ivl.C(8))
	st := ivl.StoreExpr{Mem: mem, Addr: addr, Val: y(), W: 8}
	ld := ivl.LoadExpr{Mem: st, Addr: addr, W: 8}
	if got := Normalize(ld); got.String() != y().String() {
		t.Errorf("store-forward failed: %s", got)
	}
	// Disjoint offsets bypass the store.
	ld2 := ivl.LoadExpr{Mem: st, Addr: ivl.Bin(ivl.Add, x(), ivl.C(32)), W: 8}
	n2 := Normalize(ld2)
	if l, ok := n2.(ivl.LoadExpr); !ok || l.Mem.String() != mem.String() {
		t.Errorf("disjoint store not bypassed: %s", n2)
	}
	// Unknown aliasing keeps the store.
	ld3 := ivl.LoadExpr{Mem: st, Addr: y(), W: 8}
	if l, ok := Normalize(ld3).(ivl.LoadExpr); !ok {
		t.Errorf("aliasing load wrongly simplified")
	} else if _, isStore := l.Mem.(ivl.StoreExpr); !isStore {
		t.Errorf("aliasing store wrongly bypassed: %s", l)
	}
	// Narrow load of a wider store reads the value prefix.
	ld4 := ivl.LoadExpr{Mem: st, Addr: addr, W: 4}
	if got := Normalize(ld4); got.String() != Normalize(ivl.TruncExpr{Bits: 32, X: y()}).String() {
		t.Errorf("narrow forward = %s", got)
	}
}

// randomExpr builds a random expression over variables a,b,c.
func randomExpr(rng *rand.Rand, depth int) ivl.Expr {
	vars := []string{"a", "b", "c"}
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(3) == 0 {
			return ivl.C(rng.Uint64() >> uint(rng.Intn(60)))
		}
		return ivl.IntVar(vars[rng.Intn(len(vars))])
	}
	ops := []ivl.BinOp{ivl.Add, ivl.Sub, ivl.Mul, ivl.And, ivl.Or, ivl.Xor,
		ivl.Shl, ivl.LShr, ivl.AShr, ivl.Eq, ivl.Ne, ivl.SLt, ivl.ULe, ivl.SDiv, ivl.SRem}
	switch rng.Intn(7) {
	case 0:
		return ivl.Un([]ivl.UnOp{ivl.Not, ivl.Neg, ivl.BoolNot}[rng.Intn(3)], randomExpr(rng, depth-1))
	case 1:
		return ivl.TruncExpr{Bits: []uint{8, 16, 32}[rng.Intn(3)], X: randomExpr(rng, depth-1)}
	case 2:
		return ivl.SextExpr{Bits: []uint{8, 16, 32}[rng.Intn(3)], X: randomExpr(rng, depth-1)}
	case 3:
		return ivl.IteExpr{Cond: randomExpr(rng, depth-1), Then: randomExpr(rng, depth-1), Else: randomExpr(rng, depth-1)}
	default:
		return ivl.Bin(ops[rng.Intn(len(ops))], randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	}
}

// TestQuickNormalizePreservesSemantics is the core soundness property:
// normalization never changes the value of an expression.
func TestQuickNormalizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		e := randomExpr(rng, 4)
		n := Normalize(e)
		for trial := 0; trial < 8; trial++ {
			env := ivl.Env{
				"a": ivl.IntValue(SlotValue(trial*3+i%7, 0, ivl.Int).Bits),
				"b": ivl.IntValue(rng.Uint64()),
				"c": ivl.IntValue(uint64(rng.Intn(5))),
			}
			want, err1 := ivl.Eval(e, env)
			got, err2 := ivl.Eval(n, env)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch: %v vs %v\n%s\n%s", err1, err2, e, n)
			}
			if err1 == nil && want.Bits != got.Bits {
				t.Fatalf("normalization changed semantics:\n  %s = %#x\n  %s = %#x\n  env=%v",
					e, want.Bits, n, got.Bits, env)
			}
		}
	}
}

// TestQuickNormalizeIdempotent: Normalize(Normalize(e)) == Normalize(e).
func TestQuickNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 1000; i++ {
		e := randomExpr(rng, 4)
		n1 := Normalize(e)
		n2 := Normalize(n1)
		if n1.String() != n2.String() {
			t.Fatalf("not idempotent:\n  e  = %s\n  n1 = %s\n  n2 = %s", e, n1, n2)
		}
	}
}

func TestSlotValueDeterministic(t *testing.T) {
	for s := 0; s < DefaultSamples; s++ {
		for slot := 0; slot < 4; slot++ {
			a := SlotValue(s, slot, ivl.Int)
			b := SlotValue(s, slot, ivl.Int)
			if a.Bits != b.Bits {
				t.Fatal("SlotValue not deterministic")
			}
			m1 := SlotValue(s, slot, ivl.Mem)
			m2 := SlotValue(s, slot, ivl.Mem)
			if !m1.Equal(m2) {
				t.Fatal("mem SlotValue not deterministic")
			}
		}
	}
	// Different slots must differ in the random region.
	if SlotValue(DefaultSamples-1, 0, ivl.Int).Bits == SlotValue(DefaultSamples-1, 1, ivl.Int).Bits {
		t.Error("random region slots collide")
	}
}

func TestSlotValueCoversZeroAndAllSame(t *testing.T) {
	// Sample 0 must give every slot the value 0 (catches x==0 behaviours),
	// and every all-same sample must have slot0 == slot5.
	if SlotValue(0, 0, ivl.Int).Bits != 0 || SlotValue(0, 5, ivl.Int).Bits != 0 {
		t.Error("sample 0 is not the all-zeros vector")
	}
	for s := 0; s < allSameSpecials; s++ {
		if SlotValue(s, 0, ivl.Int).Bits != SlotValue(s, 5, ivl.Int).Bits {
			t.Errorf("sample %d not slot-uniform", s)
		}
	}
}

func TestVectorHashes(t *testing.T) {
	iv := func(n string) ivl.Var { return ivl.Var{Name: n, Type: ivl.Int} }
	// Two ways to compute x*2 and an unrelated x+1.
	stmts := []ivl.Stmt{
		ivl.Assign(iv("d1"), ivl.Bin(ivl.Mul, ivl.IntVar("x"), ivl.C(2))),
		ivl.Assign(iv("d2"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.IntVar("x"))),
		ivl.Assign(iv("d3"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.C(1))),
	}
	inputs := []ivl.Var{iv("x")}
	vals := func(s int, v ivl.Var) ivl.Value { return SlotValue(s, 0, ivl.Int) }
	fp, err := VectorHashes(stmts, inputs, vals, DefaultSamples)
	if err != nil {
		t.Fatal(err)
	}
	if fp["d1"] != fp["d2"] {
		t.Error("x*2 and x+x got different fingerprints")
	}
	if fp["d1"] == fp["d3"] {
		t.Error("x*2 and x+1 collided")
	}
}

func TestVectorHashesCatchesZeroOnlyDifference(t *testing.T) {
	iv := func(n string) ivl.Var { return ivl.Var{Name: n, Type: ivl.Int} }
	// d1 = (x != 0), d2 = 1: differ only at x == 0; the special battery
	// must catch it.
	stmts := []ivl.Stmt{
		ivl.Assign(iv("d1"), ivl.Bin(ivl.Ne, ivl.IntVar("x"), ivl.C(0))),
		ivl.Assign(iv("d2"), ivl.Bin(ivl.Or, ivl.Bin(ivl.Ne, ivl.IntVar("x"), ivl.C(0)), ivl.C(1))),
	}
	vals := func(s int, v ivl.Var) ivl.Value { return SlotValue(s, 0, ivl.Int) }
	fp, err := VectorHashes(stmts, []ivl.Var{iv("x")}, vals, DefaultSamples)
	if err != nil {
		t.Fatal(err)
	}
	if fp["d1"] == fp["d2"] {
		t.Error("x!=0 vs constant-1 not distinguished (battery misses x=0)")
	}
}

func TestVectorHashesMemIntSeparation(t *testing.T) {
	ivn := func(n string, ty ivl.Type) ivl.Var { return ivl.Var{Name: n, Type: ty} }
	stmts := []ivl.Stmt{
		ivl.Assign(ivn("m1", ivl.Mem), ivl.StoreExpr{
			Mem: ivl.VarExpr{V: ivn("mem", ivl.Mem)}, Addr: ivl.IntVar("x"), Val: ivl.C(1), W: 8}),
		ivl.Assign(ivn("d1", ivl.Int), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.C(0))),
	}
	inputs := []ivl.Var{ivn("mem", ivl.Mem), ivn("x", ivl.Int)}
	vals := func(s int, v ivl.Var) ivl.Value {
		if v.Type == ivl.Mem {
			return SlotValue(s, 0, ivl.Mem)
		}
		return SlotValue(s, 1, ivl.Int)
	}
	fp, err := VectorHashes(stmts, inputs, vals, DefaultSamples)
	if err != nil {
		t.Fatal(err)
	}
	if fp["m1"] == fp["d1"] {
		t.Error("memory and integer fingerprints collided")
	}
}
