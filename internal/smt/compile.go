package smt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ivl"
)

// Program is a strand compiled to flat three-address code over a virtual
// register file. Compilation happens once per strand; fingerprints under
// different input-slot assignments (the γ correspondences of Algorithm 2)
// re-run only the flat code, which is the hot loop of the whole system.
//
// Compilation also performs the static analyses the batched kernel
// (kernel.go) relies on: a type per register (memory-typedness is static
// in well-formed IVL), and a reordering of the code into a γ-invariant
// prefix — instructions whose transitive operands touch no input slot,
// so their values cannot depend on the slot assignment — followed by the
// γ-dependent suffix. The prefix is evaluated once per kernel; only the
// suffix re-runs per correspondence.
type Program struct {
	Inputs []ivl.Var // in slot-assignment order
	code   []cinstr
	nregs  int
	// defRegs lists, for each original SSA assignment in order, the
	// register holding its value and whether it is memory-typed.
	defRegs []defInfo
	// memReg is the static type per register (true = memory). Valid for
	// all registers when batchOK; the scalar path never consults it.
	memReg []bool
	// prefixLen splits code: code[:prefixLen] is the γ-invariant prefix.
	prefixLen int
	// hasMem reports whether any register is memory-typed.
	hasMem bool
	// batchOK reports whether the static typing above fully describes
	// the program. Ill-typed programs (e.g. an ite mixing memory and
	// integer branches, or integer operators applied to memories) keep
	// the dynamic scalar semantics and fall back to Fingerprints.
	batchOK bool
	// suffixOps is the static opcode histogram of the γ-dependent
	// suffix; ReleaseKernel multiplies it by the kernel's run count to
	// feed the package-wide dynamic-frequency profile.
	suffixOps [nOpcodes]uint64
	// kpool recycles kernels (lane buffers + memory arena) across
	// fingerprint calls so the γ loop is allocation-free.
	kpool sync.Pool
}

// nOpcodes sizes per-opcode tables; cCall is the last opcode.
const nOpcodes = int(cCall) + 1

// opProfile accumulates the measured dynamic execution frequency per
// opcode across every kernel released in the process: for each released
// kernel, (suffix opcode histogram) × (suffix runs since acquire). It
// guides the profile-driven suffix scheduler for programs compiled
// later — γ-dependent instructions of hot opcodes are issued first so
// their lane sweeps stream back-to-back.
var opProfile [nOpcodes]atomic.Uint64

// flushProfile folds runs suffix executions of this program into the
// package opcode profile.
func (p *Program) flushProfile(runs uint64) {
	for op, c := range p.suffixOps {
		if c != 0 {
			opProfile[op].Add(c * runs)
		}
	}
}

type defInfo struct {
	reg   int
	isMem bool
	name  string
}

type copcode uint8

const (
	cConst copcode = iota
	cBin
	cUn
	cIte
	cTrunc
	cSext
	cLoad
	cStore
	cCall
)

type cinstr struct {
	op      copcode
	dst     int
	a, b, c int
	bin     ivl.BinOp
	un      ivl.UnOp
	bits    uint
	w       uint
	val     uint64
	sym     uint64 // hashed call symbol
	args    []int
	memC    bool // cCall producing memory (callmem)
}

// CompileStrand flattens an SSA assignment list into a Program. Inputs
// occupy registers [0, len(inputs)).
func CompileStrand(stmts []ivl.Stmt, inputs []ivl.Var) (*Program, error) {
	p := &Program{Inputs: inputs}
	regOf := make(map[string]int, len(inputs)+len(stmts))
	for i, in := range inputs {
		regOf[in.Name] = i
	}
	p.nregs = len(inputs)

	var compile func(e ivl.Expr) (int, error)
	alloc := func() int { r := p.nregs; p.nregs++; return r }

	compile = func(e ivl.Expr) (int, error) {
		switch t := e.(type) {
		case ivl.VarExpr:
			r, ok := regOf[t.V.Name]
			if !ok {
				return 0, fmt.Errorf("smt: unbound variable %q", t.V.Name)
			}
			return r, nil
		case ivl.ConstExpr:
			r := alloc()
			p.code = append(p.code, cinstr{op: cConst, dst: r, val: t.Val})
			return r, nil
		case ivl.UnExpr:
			a, err := compile(t.X)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cUn, dst: r, a: a, un: t.Op})
			return r, nil
		case ivl.BinExpr:
			a, err := compile(t.X)
			if err != nil {
				return 0, err
			}
			b, err := compile(t.Y)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cBin, dst: r, a: a, b: b, bin: t.Op})
			return r, nil
		case ivl.IteExpr:
			c, err := compile(t.Cond)
			if err != nil {
				return 0, err
			}
			a, err := compile(t.Then)
			if err != nil {
				return 0, err
			}
			b, err := compile(t.Else)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cIte, dst: r, c: c, a: a, b: b})
			return r, nil
		case ivl.TruncExpr:
			a, err := compile(t.X)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cTrunc, dst: r, a: a, bits: t.Bits})
			return r, nil
		case ivl.SextExpr:
			a, err := compile(t.X)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cSext, dst: r, a: a, bits: t.Bits})
			return r, nil
		case ivl.LoadExpr:
			m, err := compile(t.Mem)
			if err != nil {
				return 0, err
			}
			a, err := compile(t.Addr)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cLoad, dst: r, a: m, b: a, w: t.W})
			return r, nil
		case ivl.StoreExpr:
			m, err := compile(t.Mem)
			if err != nil {
				return 0, err
			}
			a, err := compile(t.Addr)
			if err != nil {
				return 0, err
			}
			v, err := compile(t.Val)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cStore, dst: r, a: m, b: a, c: v, w: t.W})
			return r, nil
		case ivl.CallExpr:
			args := make([]int, len(t.Args))
			for i, arg := range t.Args {
				ar, err := compile(arg)
				if err != nil {
					return 0, err
				}
				args[i] = ar
			}
			r := alloc()
			isMem := len(t.Sym) >= 7 && t.Sym[:7] == "callmem"
			p.code = append(p.code, cinstr{op: cCall, dst: r, args: args,
				sym: mix64(hashString(t.Sym)), memC: isMem})
			return r, nil
		}
		return 0, fmt.Errorf("smt: cannot compile %T", e)
	}

	for _, s := range stmts {
		if s.Kind != ivl.SAssign {
			return nil, fmt.Errorf("smt: CompileStrand expects assignments, got %v", s)
		}
		r, err := compile(s.Rhs)
		if err != nil {
			return nil, err
		}
		regOf[s.Dst.Name] = r
		p.defRegs = append(p.defRegs, defInfo{reg: r, isMem: s.Dst.Type == ivl.Mem, name: s.Dst.Name})
	}
	p.analyze()
	return p, nil
}

// srcs appends the operand registers the instruction actually reads.
// Unused operand fields hold zero, which would alias register 0 (the
// first input), so they must never be consulted.
func (in *cinstr) srcs(buf []int) []int {
	switch in.op {
	case cConst:
	case cBin:
		buf = append(buf, in.a, in.b)
	case cUn, cTrunc, cSext:
		buf = append(buf, in.a)
	case cIte:
		buf = append(buf, in.c, in.a, in.b)
	case cLoad:
		buf = append(buf, in.a, in.b)
	case cStore:
		buf = append(buf, in.a, in.b, in.c)
	case cCall:
		buf = append(buf, in.args...)
	}
	return buf
}

// analyze computes the static register types and the γ-invariant prefix
// split the batched kernel needs. Code is in SSA order (every operand is
// defined before use), so one forward pass suffices for both.
func (p *Program) analyze() {
	memReg := make([]bool, p.nregs)
	for i, in := range p.Inputs {
		memReg[i] = in.Type == ivl.Mem
	}
	ok := true
	for i := range p.code {
		in := &p.code[i]
		switch in.op {
		case cConst, cBin:
			// Integer result. Memory operands of cBin are legal (the
			// scalar path compares them); the result is still integer.
		case cUn, cTrunc, cSext:
			if memReg[in.a] {
				ok = false // scalar reads .Bits (0) of a memory value
			}
		case cIte:
			if memReg[in.c] || memReg[in.a] != memReg[in.b] {
				ok = false
			}
			memReg[in.dst] = memReg[in.a]
		case cLoad:
			if !memReg[in.a] || memReg[in.b] {
				ok = false
			}
		case cStore:
			if !memReg[in.a] || memReg[in.b] || memReg[in.c] {
				ok = false
			}
			memReg[in.dst] = true
		case cCall:
			memReg[in.dst] = in.memC
		}
	}
	for _, di := range p.defRegs {
		if di.isMem != memReg[di.reg] {
			ok = false // declared type disagrees with the computed one
		}
	}
	p.memReg = memReg
	p.batchOK = ok
	for _, m := range memReg {
		if m {
			p.hasMem = true
			break
		}
	}

	// γ-invariant prefix: an instruction is hoistable when no transitive
	// operand reaches an input register, because input registers are the
	// only values that change with the slot assignment (and, per
	// SlotBits/SlotMemSeed, with the sample index). Reordering is sound:
	// every register is written exactly once and operands precede their
	// uses, and an instruction depending only on invariant instructions
	// is itself invariant, so the partition respects all data deps.
	dep := make([]bool, p.nregs)
	for i := range p.Inputs {
		dep[i] = true
	}
	prefix := make([]cinstr, 0, len(p.code))
	var suffix []cinstr
	var sbuf [8]int
	for _, in := range p.code {
		d := false
		for _, s := range in.srcs(sbuf[:0]) {
			if dep[s] {
				d = true
				break
			}
		}
		dep[in.dst] = d
		if d {
			suffix = append(suffix, in)
		} else {
			prefix = append(prefix, in)
		}
	}
	p.prefixLen = len(prefix)
	p.code = append(prefix, suffix...)
	for _, in := range suffix {
		p.suffixOps[in.op]++
	}
	p.scheduleSuffix()
}

// scheduleSuffix reorders the γ-dependent suffix by measured dynamic
// opcode frequency: a greedy list scheduler that repeatedly issues the
// ready instruction (all suffix-internal operands already issued) whose
// opcode has the highest profile weight, breaking ties by original
// position. Reordering preserves all data dependencies — every register
// is written exactly once and operands are only reordered after their
// writers — so values and fingerprints are unchanged. With a cold
// (all-zero) profile every weight ties and the tie-break reproduces the
// original order exactly, making fresh processes deterministic.
func (p *Program) scheduleSuffix() {
	suffix := p.code[p.prefixLen:]
	n := len(suffix)
	if n <= 1 {
		return
	}
	var w [nOpcodes]uint64
	cold := true
	for op := range w {
		if w[op] = opProfile[op].Load(); w[op] != 0 {
			cold = false
		}
	}
	if cold {
		return
	}
	// Suffix-internal dependencies. Operands written by the prefix or
	// bound as inputs are live from the start and impose no ordering.
	writer := make(map[int]int, n)
	for i := range suffix {
		writer[suffix[i].dst] = i
	}
	pending := make([]int, n)
	users := make([][]int, n)
	var sbuf [8]int
	for i := range suffix {
		for _, s := range suffix[i].srcs(sbuf[:0]) {
			if j, ok := writer[s]; ok && j != i {
				pending[i]++
				users[j] = append(users[j], i)
			}
		}
	}
	sched := make([]cinstr, 0, n)
	done := make([]bool, n)
	for len(sched) < n {
		best := -1
		for i := 0; i < n; i++ {
			if done[i] || pending[i] > 0 {
				continue
			}
			if best < 0 || w[suffix[i].op] > w[suffix[best].op] {
				best = i
			}
		}
		done[best] = true
		sched = append(sched, suffix[best])
		for _, u := range users[best] {
			pending[u]--
		}
	}
	copy(suffix, sched)
}

// BatchOK reports whether the batched SoA kernel supports this program.
// The rare ill-typed programs it rejects keep the scalar path.
func (p *Program) BatchOK() bool { return p.batchOK }

// InstrCounts returns how many instructions were hoisted into the
// γ-invariant prefix and the total instruction count, for telemetry.
func (p *Program) InstrCounts() (prefix, total int) {
	return p.prefixLen, len(p.code)
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Fingerprints runs the program over k sample vectors with input i taking
// slot slotOf[i], and returns one value-vector fingerprint per original
// SSA definition, in definition order. Memory fingerprints live in a
// separate hash domain from integers.
//
// This is the scalar reference path: one interpreter pass per sample
// over boxed ivl.Value registers. The batched SoA kernel (kernel.go) is
// the production path; this implementation is kept as the differential
// oracle behind -kernel=scalar and as the fallback for the rare
// programs the kernel's static typing rejects.
func (p *Program) Fingerprints(slotOf []int, k int) []uint64 {
	fps := make([]uint64, len(p.defRegs))
	regs := make([]ivl.Value, p.nregs)
	for s := 0; s < k; s++ {
		for i, in := range p.Inputs {
			regs[i] = SlotValue(s, slotOf[i], in.Type)
		}
		p.run(regs)
		for d, di := range p.defRegs {
			v := regs[di.reg]
			h := v.Hash()
			if v.M != nil {
				h = mix64(h ^ memHashTag)
			}
			fps[d] = mix64(fps[d]*fpPrime ^ h)
		}
	}
	return fps
}

// run executes the flat code against the register file.
func (p *Program) run(regs []ivl.Value) {
	for _, in := range p.code {
		switch in.op {
		case cConst:
			regs[in.dst] = ivl.IntValue(in.val)
		case cBin:
			x, y := regs[in.a], regs[in.b]
			if x.M != nil || y.M != nil {
				eq := x.Equal(y)
				switch in.bin {
				case ivl.Eq:
					regs[in.dst] = ivl.IntValue(boolBit(eq))
				case ivl.Ne:
					regs[in.dst] = ivl.IntValue(boolBit(!eq))
				default:
					regs[in.dst] = ivl.IntValue(0)
				}
				continue
			}
			regs[in.dst] = ivl.IntValue(ivl.EvalBin(in.bin, x.Bits, y.Bits))
		case cUn:
			x := regs[in.a].Bits
			switch in.un {
			case ivl.Not:
				regs[in.dst] = ivl.IntValue(^x)
			case ivl.Neg:
				regs[in.dst] = ivl.IntValue(-x)
			default: // BoolNot
				regs[in.dst] = ivl.IntValue(boolBit(x == 0))
			}
		case cIte:
			if regs[in.c].Bits != 0 {
				regs[in.dst] = regs[in.a]
			} else {
				regs[in.dst] = regs[in.b]
			}
		case cTrunc:
			if in.bits >= 64 {
				regs[in.dst] = regs[in.a]
			} else {
				regs[in.dst] = ivl.IntValue(regs[in.a].Bits & ((1 << in.bits) - 1))
			}
		case cSext:
			sh := 64 - in.bits
			regs[in.dst] = ivl.IntValue(uint64(int64(regs[in.a].Bits<<sh) >> sh))
		case cLoad:
			m := regs[in.a].M
			regs[in.dst] = ivl.IntValue(m.Load(regs[in.b].Bits, in.w))
		case cStore:
			m := regs[in.a].M
			regs[in.dst] = ivl.MemValue(m.Store(regs[in.b].Bits, in.w, regs[in.c].Bits))
		case cCall:
			h := in.sym
			for _, a := range in.args {
				av := regs[a]
				h = mix64(h ^ av.Hash())
			}
			if in.memC {
				regs[in.dst] = ivl.MemValue(ivl.NewMem(h))
			} else {
				regs[in.dst] = ivl.IntValue(h)
			}
		}
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
