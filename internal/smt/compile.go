package smt

import (
	"fmt"

	"repro/internal/ivl"
)

// Program is a strand compiled to flat three-address code over a virtual
// register file. Compilation happens once per strand; fingerprints under
// different input-slot assignments (the γ correspondences of Algorithm 2)
// re-run only the flat code, which is the hot loop of the whole system.
type Program struct {
	Inputs []ivl.Var // in slot-assignment order
	code   []cinstr
	nregs  int
	// defRegs lists, for each original SSA assignment in order, the
	// register holding its value and whether it is memory-typed.
	defRegs []defInfo
}

type defInfo struct {
	reg   int
	isMem bool
	name  string
}

type copcode uint8

const (
	cConst copcode = iota
	cBin
	cUn
	cIte
	cTrunc
	cSext
	cLoad
	cStore
	cCall
)

type cinstr struct {
	op      copcode
	dst     int
	a, b, c int
	bin     ivl.BinOp
	un      ivl.UnOp
	bits    uint
	w       uint
	val     uint64
	sym     uint64 // hashed call symbol
	args    []int
	memC    bool // cCall producing memory (callmem)
}

// CompileStrand flattens an SSA assignment list into a Program. Inputs
// occupy registers [0, len(inputs)).
func CompileStrand(stmts []ivl.Stmt, inputs []ivl.Var) (*Program, error) {
	p := &Program{Inputs: inputs}
	regOf := make(map[string]int, len(inputs)+len(stmts))
	for i, in := range inputs {
		regOf[in.Name] = i
	}
	p.nregs = len(inputs)

	var compile func(e ivl.Expr) (int, error)
	alloc := func() int { r := p.nregs; p.nregs++; return r }

	compile = func(e ivl.Expr) (int, error) {
		switch t := e.(type) {
		case ivl.VarExpr:
			r, ok := regOf[t.V.Name]
			if !ok {
				return 0, fmt.Errorf("smt: unbound variable %q", t.V.Name)
			}
			return r, nil
		case ivl.ConstExpr:
			r := alloc()
			p.code = append(p.code, cinstr{op: cConst, dst: r, val: t.Val})
			return r, nil
		case ivl.UnExpr:
			a, err := compile(t.X)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cUn, dst: r, a: a, un: t.Op})
			return r, nil
		case ivl.BinExpr:
			a, err := compile(t.X)
			if err != nil {
				return 0, err
			}
			b, err := compile(t.Y)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cBin, dst: r, a: a, b: b, bin: t.Op})
			return r, nil
		case ivl.IteExpr:
			c, err := compile(t.Cond)
			if err != nil {
				return 0, err
			}
			a, err := compile(t.Then)
			if err != nil {
				return 0, err
			}
			b, err := compile(t.Else)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cIte, dst: r, c: c, a: a, b: b})
			return r, nil
		case ivl.TruncExpr:
			a, err := compile(t.X)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cTrunc, dst: r, a: a, bits: t.Bits})
			return r, nil
		case ivl.SextExpr:
			a, err := compile(t.X)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cSext, dst: r, a: a, bits: t.Bits})
			return r, nil
		case ivl.LoadExpr:
			m, err := compile(t.Mem)
			if err != nil {
				return 0, err
			}
			a, err := compile(t.Addr)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cLoad, dst: r, a: m, b: a, w: t.W})
			return r, nil
		case ivl.StoreExpr:
			m, err := compile(t.Mem)
			if err != nil {
				return 0, err
			}
			a, err := compile(t.Addr)
			if err != nil {
				return 0, err
			}
			v, err := compile(t.Val)
			if err != nil {
				return 0, err
			}
			r := alloc()
			p.code = append(p.code, cinstr{op: cStore, dst: r, a: m, b: a, c: v, w: t.W})
			return r, nil
		case ivl.CallExpr:
			args := make([]int, len(t.Args))
			for i, arg := range t.Args {
				ar, err := compile(arg)
				if err != nil {
					return 0, err
				}
				args[i] = ar
			}
			r := alloc()
			isMem := len(t.Sym) >= 7 && t.Sym[:7] == "callmem"
			p.code = append(p.code, cinstr{op: cCall, dst: r, args: args,
				sym: mix64(hashString(t.Sym)), memC: isMem})
			return r, nil
		}
		return 0, fmt.Errorf("smt: cannot compile %T", e)
	}

	for _, s := range stmts {
		if s.Kind != ivl.SAssign {
			return nil, fmt.Errorf("smt: CompileStrand expects assignments, got %v", s)
		}
		r, err := compile(s.Rhs)
		if err != nil {
			return nil, err
		}
		regOf[s.Dst.Name] = r
		p.defRegs = append(p.defRegs, defInfo{reg: r, isMem: s.Dst.Type == ivl.Mem, name: s.Dst.Name})
	}
	return p, nil
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Fingerprints runs the program over k sample vectors with input i taking
// slot slotOf[i], and returns one value-vector fingerprint per original
// SSA definition, in definition order. Memory fingerprints live in a
// separate hash domain from integers.
func (p *Program) Fingerprints(slotOf []int, k int) []uint64 {
	fps := make([]uint64, len(p.defRegs))
	regs := make([]ivl.Value, p.nregs)
	for s := 0; s < k; s++ {
		for i, in := range p.Inputs {
			regs[i] = SlotValue(s, slotOf[i], in.Type)
		}
		p.run(regs)
		for d, di := range p.defRegs {
			v := regs[di.reg]
			h := v.Hash()
			if v.M != nil {
				h = mix64(h ^ 0xDEAD_BEEF_CAFE_F00D)
			}
			fps[d] = mix64(fps[d]*0x100_0000_01b3 ^ h)
		}
	}
	return fps
}

// run executes the flat code against the register file.
func (p *Program) run(regs []ivl.Value) {
	for _, in := range p.code {
		switch in.op {
		case cConst:
			regs[in.dst] = ivl.IntValue(in.val)
		case cBin:
			x, y := regs[in.a], regs[in.b]
			if x.M != nil || y.M != nil {
				eq := x.Equal(y)
				switch in.bin {
				case ivl.Eq:
					regs[in.dst] = ivl.IntValue(boolBit(eq))
				case ivl.Ne:
					regs[in.dst] = ivl.IntValue(boolBit(!eq))
				default:
					regs[in.dst] = ivl.IntValue(0)
				}
				continue
			}
			regs[in.dst] = ivl.IntValue(ivl.EvalBin(in.bin, x.Bits, y.Bits))
		case cUn:
			x := regs[in.a].Bits
			switch in.un {
			case ivl.Not:
				regs[in.dst] = ivl.IntValue(^x)
			case ivl.Neg:
				regs[in.dst] = ivl.IntValue(-x)
			default: // BoolNot
				regs[in.dst] = ivl.IntValue(boolBit(x == 0))
			}
		case cIte:
			if regs[in.c].Bits != 0 {
				regs[in.dst] = regs[in.a]
			} else {
				regs[in.dst] = regs[in.b]
			}
		case cTrunc:
			if in.bits >= 64 {
				regs[in.dst] = regs[in.a]
			} else {
				regs[in.dst] = ivl.IntValue(regs[in.a].Bits & ((1 << in.bits) - 1))
			}
		case cSext:
			sh := 64 - in.bits
			regs[in.dst] = ivl.IntValue(uint64(int64(regs[in.a].Bits<<sh) >> sh))
		case cLoad:
			m := regs[in.a].M
			regs[in.dst] = ivl.IntValue(m.Load(regs[in.b].Bits, in.w))
		case cStore:
			m := regs[in.a].M
			regs[in.dst] = ivl.MemValue(m.Store(regs[in.b].Bits, in.w, regs[in.c].Bits))
		case cCall:
			h := in.sym
			for _, a := range in.args {
				av := regs[a]
				h = mix64(h ^ av.Hash())
			}
			if in.memC {
				regs[in.dst] = ivl.MemValue(ivl.NewMem(h))
			} else {
				regs[in.dst] = ivl.IntValue(h)
			}
		}
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
