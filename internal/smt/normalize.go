// Package smt provides the decision machinery that stands in for the
// Boogie/Z3 verifier in the paper's pipeline: a canonicalizing term
// rewriter for the quantifier-free bitvector fragment the lifter emits,
// and a deterministic structured-plus-random input sample battery used
// for randomized refutation of equalities.
//
// Equalities proved by canonicalization are sound. Equalities accepted by
// sampling alone hold on every sample vector; the battery mixes random
// 64-bit vectors with adversarial special values (0, ±1, powers of two,
// INT_MIN, ...) so that disagreements concentrated on degenerate inputs
// are still caught. The residual error probability is documented in
// DESIGN.md and is negligible for the statistics built on top.
package smt

import (
	"sort"

	"repro/internal/ivl"
)

// Normalize rewrites e into a canonical form that is semantically
// equivalent under ivl.Eval: constants folded, associative-commutative
// operator chains flattened and sorted, subtraction and negation
// expressed through addition and multiplication by -1, identities
// removed, comparisons oriented, and store-to-load forwarding applied.
// Two expressions with equal canonical forms are equivalent; the converse
// does not hold.
func Normalize(e ivl.Expr) ivl.Expr {
	switch t := e.(type) {
	case ivl.VarExpr, ivl.ConstExpr:
		return e

	case ivl.UnExpr:
		x := Normalize(t.X)
		switch t.Op {
		case ivl.Neg:
			// neg x == -1 * x; reuse Mul normalization.
			return Normalize(ivl.Bin(ivl.Mul, ivl.C(^uint64(0)), x))
		case ivl.Not:
			if c, ok := x.(ivl.ConstExpr); ok {
				return ivl.C(^c.Val)
			}
			if inner, ok := x.(ivl.UnExpr); ok && inner.Op == ivl.Not {
				return inner.X
			}
			return ivl.UnExpr{Op: ivl.Not, X: x}
		case ivl.BoolNot:
			if c, ok := x.(ivl.ConstExpr); ok {
				if c.Val == 0 {
					return ivl.C(1)
				}
				return ivl.C(0)
			}
			return ivl.UnExpr{Op: ivl.BoolNot, X: x}
		}
		return ivl.UnExpr{Op: t.Op, X: x}

	case ivl.BinExpr:
		return normalizeBin(t)

	case ivl.IteExpr:
		c := Normalize(t.Cond)
		th := Normalize(t.Then)
		el := Normalize(t.Else)
		if cc, ok := c.(ivl.ConstExpr); ok {
			if cc.Val != 0 {
				return th
			}
			return el
		}
		if exprKey(th) == exprKey(el) {
			return th
		}
		return ivl.IteExpr{Cond: c, Then: th, Else: el}

	case ivl.TruncExpr:
		x := Normalize(t.X)
		if t.Bits >= 64 {
			return x
		}
		if c, ok := x.(ivl.ConstExpr); ok {
			return ivl.C(c.Val & ((1 << t.Bits) - 1))
		}
		if inner, ok := x.(ivl.TruncExpr); ok {
			b := t.Bits
			if inner.Bits < b {
				b = inner.Bits
			}
			return Normalize(ivl.TruncExpr{Bits: b, X: inner.X})
		}
		if inner, ok := x.(ivl.SextExpr); ok && inner.Bits >= t.Bits {
			// trunc_k(sext_m(x)) with m >= k only sees bits below k.
			return Normalize(ivl.TruncExpr{Bits: t.Bits, X: inner.X})
		}
		return ivl.TruncExpr{Bits: t.Bits, X: x}

	case ivl.SextExpr:
		x := Normalize(t.X)
		if t.Bits >= 64 {
			return x
		}
		if c, ok := x.(ivl.ConstExpr); ok {
			sh := 64 - t.Bits
			return ivl.C(uint64(int64(c.Val<<sh) >> sh))
		}
		return ivl.SextExpr{Bits: t.Bits, X: x}

	case ivl.LoadExpr:
		m := Normalize(t.Mem)
		a := Normalize(t.Addr)
		// Store-to-load forwarding through a chain of stores.
		cur := m
		for {
			st, ok := cur.(ivl.StoreExpr)
			if !ok {
				break
			}
			switch overlap(st.Addr, st.W, a, t.W) {
			case overlapExact:
				if st.W == t.W {
					return Normalize(st.Val)
				}
				if st.W > t.W {
					// Load reads a prefix of the stored value.
					return Normalize(ivl.TruncExpr{Bits: t.W * 8, X: st.Val})
				}
				return ivl.LoadExpr{Mem: m, Addr: a, W: t.W}
			case overlapNone:
				cur = st.Mem // the store cannot affect this load
				continue
			default:
				return ivl.LoadExpr{Mem: m, Addr: a, W: t.W}
			}
		}
		return ivl.LoadExpr{Mem: cur, Addr: a, W: t.W}

	case ivl.StoreExpr:
		return ivl.StoreExpr{
			Mem:  Normalize(t.Mem),
			Addr: Normalize(t.Addr),
			Val:  Normalize(t.Val),
			W:    t.W,
		}

	case ivl.CallExpr:
		args := make([]ivl.Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = Normalize(a)
		}
		return ivl.CallExpr{Sym: t.Sym, Args: args}
	}
	return e
}

type overlapKind uint8

const (
	overlapUnknown overlapKind = iota
	overlapExact
	overlapNone
)

// overlap decides, syntactically, the relationship between a store at
// (aAddr, aW) and a load at (bAddr, bW): exact same start address, or
// provably disjoint (same symbolic base with non-overlapping constant
// offsets), or unknown.
func overlap(aAddr ivl.Expr, aW uint, bAddr ivl.Expr, bW uint) overlapKind {
	aBase, aOff := splitBase(aAddr)
	bBase, bOff := splitBase(bAddr)
	if exprKey(aBase) != exprKey(bBase) {
		return overlapUnknown
	}
	if aOff == bOff {
		return overlapExact
	}
	// Same base: ranges [aOff, aOff+aW) and [bOff, bOff+bW) over a small
	// constant distance.
	d := int64(bOff - aOff)
	if d > 0 && d >= int64(aW) {
		return overlapNone
	}
	if d < 0 && -d >= int64(bW) {
		return overlapNone
	}
	return overlapUnknown
}

// splitBase splits addr into (symbolic base, constant offset). The
// normalized form of base+const is Add with a trailing constant.
func splitBase(addr ivl.Expr) (ivl.Expr, uint64) {
	if be, ok := addr.(ivl.BinExpr); ok && be.Op == ivl.Add {
		if c, ok := be.Y.(ivl.ConstExpr); ok {
			return be.X, c.Val
		}
	}
	if c, ok := addr.(ivl.ConstExpr); ok {
		return ivl.C(0), c.Val
	}
	return addr, 0
}

// normalizeBin canonicalizes a binary expression.
func normalizeBin(t ivl.BinExpr) ivl.Expr {
	op := t.Op
	x := Normalize(t.X)
	y := Normalize(t.Y)

	// Subtraction is addition of a negation.
	if op == ivl.Sub {
		return Normalize(ivl.Bin(ivl.Add, x,
			ivl.Bin(ivl.Mul, ivl.C(^uint64(0)), y)))
	}

	// Orient strict/non-strict comparisons one way.
	switch op {
	case ivl.SGt:
		return Normalize(ivl.Bin(ivl.SLt, t.Y, t.X))
	case ivl.SGe:
		return Normalize(ivl.Bin(ivl.SLe, t.Y, t.X))
	case ivl.UGt:
		return Normalize(ivl.Bin(ivl.ULt, t.Y, t.X))
	case ivl.UGe:
		return Normalize(ivl.Bin(ivl.ULe, t.Y, t.X))
	}

	// Constant folding for pure bitvector operands.
	if cx, ok := x.(ivl.ConstExpr); ok {
		if cy, ok := y.(ivl.ConstExpr); ok {
			v, err := ivl.Eval(ivl.Bin(op, cx, cy), nil)
			if err == nil {
				return ivl.C(v.Bits)
			}
		}
	}

	switch op {
	case ivl.Add, ivl.Mul, ivl.And, ivl.Or, ivl.Xor:
		return normalizeAC(op, x, y)
	case ivl.Eq, ivl.Ne:
		// Commutative comparison: sort operands.
		if exprKey(y) < exprKey(x) {
			x, y = y, x
		}
		if exprKey(x) == exprKey(y) && !hasMemOrCall(x) {
			if op == ivl.Eq {
				return ivl.C(1)
			}
			return ivl.C(0)
		}
		return ivl.BinExpr{Op: op, X: x, Y: y}
	case ivl.Shl, ivl.LShr, ivl.AShr:
		if cy, ok := y.(ivl.ConstExpr); ok && cy.Val&63 == 0 {
			// Shift counts are masked to 6 bits; a multiple of 64 is a no-op.
			return x
		}
		if cy, ok := y.(ivl.ConstExpr); ok && op == ivl.Shl && cy.Val < 64 {
			// x << c  ==  x * 2^c: unifies shifts, lea scaling and imul
			// strength reduction across compilers.
			return Normalize(ivl.Bin(ivl.Mul, x, ivl.C(uint64(1)<<cy.Val)))
		}
		return ivl.BinExpr{Op: op, X: x, Y: y}
	}
	return ivl.BinExpr{Op: op, X: x, Y: y}
}

// acIdentity returns the identity element of an AC operator.
func acIdentity(op ivl.BinOp) uint64 {
	switch op {
	case ivl.Add, ivl.Or, ivl.Xor:
		return 0
	case ivl.Mul:
		return 1
	case ivl.And:
		return ^uint64(0)
	}
	return 0
}

// normalizeAC flattens an associative-commutative operator chain, folds
// constants, applies identities/annihilators/idempotence, and sorts the
// remaining operands.
func normalizeAC(op ivl.BinOp, x, y ivl.Expr) ivl.Expr {
	var terms []ivl.Expr
	var flatten func(e ivl.Expr)
	flatten = func(e ivl.Expr) {
		if be, ok := e.(ivl.BinExpr); ok && be.Op == op {
			flatten(be.X)
			flatten(be.Y)
			return
		}
		terms = append(terms, e)
	}
	flatten(x)
	flatten(y)

	konst := acIdentity(op)
	var rest []ivl.Expr
	for _, term := range terms {
		if c, ok := term.(ivl.ConstExpr); ok {
			switch op {
			case ivl.Add:
				konst += c.Val
			case ivl.Mul:
				konst *= c.Val
			case ivl.And:
				konst &= c.Val
			case ivl.Or:
				konst |= c.Val
			case ivl.Xor:
				konst ^= c.Val
			}
			continue
		}
		rest = append(rest, term)
	}

	// Annihilators.
	if (op == ivl.Mul || op == ivl.And) && konst == 0 {
		return ivl.C(0)
	}
	if op == ivl.Or && konst == ^uint64(0) {
		return ivl.C(^uint64(0))
	}

	// Distribute a constant multiplier over a sum: k*(a+b) == k*a + k*b.
	// This joins the lea/shl/imul strength-reduction families across
	// compilers. Only constant coefficients distribute, so terms cannot
	// blow up.
	if op == ivl.Mul && konst != 1 && len(rest) == 1 {
		if add, ok := rest[0].(ivl.BinExpr); ok && add.Op == ivl.Add {
			var addends []ivl.Expr
			var flattenAdd func(e ivl.Expr)
			flattenAdd = func(e ivl.Expr) {
				if b, ok := e.(ivl.BinExpr); ok && b.Op == ivl.Add {
					flattenAdd(b.X)
					flattenAdd(b.Y)
					return
				}
				addends = append(addends, e)
			}
			flattenAdd(add)
			out := ivl.Expr(nil)
			for _, a := range addends {
				term := ivl.Bin(ivl.Mul, ivl.C(konst), a)
				if out == nil {
					out = term
				} else {
					out = ivl.Bin(ivl.Add, out, term)
				}
			}
			return Normalize(out)
		}
	}

	// Idempotence and self-inverse after sorting.
	sort.Slice(rest, func(i, j int) bool { return exprKey(rest[i]) < exprKey(rest[j]) })
	switch op {
	case ivl.And, ivl.Or:
		rest = dedupeAdjacent(rest)
	case ivl.Xor:
		rest = cancelPairs(rest)
	case ivl.Add:
		rest = collectLikeTerms(rest)
	}

	if konst != acIdentity(op) || len(rest) == 0 {
		rest = append(rest, ivl.C(konst))
	}
	if len(rest) == 1 {
		return rest[0]
	}
	// Rebuild left-associated with the constant (if any) last; rest is
	// sorted and a constant sorts after most keys only by chance, so put
	// it deterministically at the end.
	out := rest[0]
	for _, term := range rest[1:] {
		out = ivl.BinExpr{Op: op, X: out, Y: term}
	}
	return out
}

func dedupeAdjacent(terms []ivl.Expr) []ivl.Expr {
	if len(terms) < 2 {
		return terms
	}
	out := terms[:1]
	for _, term := range terms[1:] {
		if exprKey(term) == exprKey(out[len(out)-1]) && !hasMemOrCall(term) {
			continue
		}
		out = append(out, term)
	}
	return out
}

// collectLikeTerms groups normalized addends by their non-constant core,
// summing multiplicative coefficients: x + (-1)*x cancels, x + x becomes
// 2*x. Cores containing memory or calls are still deterministic values,
// so grouping them is sound.
func collectLikeTerms(terms []ivl.Expr) []ivl.Expr {
	type group struct {
		coeff uint64
		core  ivl.Expr
	}
	var order []string
	groups := map[string]*group{}
	for _, term := range terms {
		coeff, core := splitCoeff(term)
		key := exprKey(core)
		g, ok := groups[key]
		if !ok {
			g = &group{core: core}
			groups[key] = g
			order = append(order, key)
		}
		g.coeff += coeff
	}
	var out []ivl.Expr
	for _, key := range order {
		g := groups[key]
		switch g.coeff {
		case 0:
			// cancelled
		case 1:
			out = append(out, g.core)
		default:
			out = append(out, normalizeAC(ivl.Mul, g.core, ivl.C(g.coeff)))
		}
	}
	sort.Slice(out, func(i, j int) bool { return exprKey(out[i]) < exprKey(out[j]) })
	return out
}

// splitCoeff decomposes a normalized term into (constant coefficient,
// core). A Mul chain with a constant factor yields that constant and the
// remaining product; anything else has coefficient 1.
func splitCoeff(term ivl.Expr) (uint64, ivl.Expr) {
	be, ok := term.(ivl.BinExpr)
	if !ok || be.Op != ivl.Mul {
		return 1, term
	}
	var factors []ivl.Expr
	var flatten func(e ivl.Expr)
	flatten = func(e ivl.Expr) {
		if b, ok := e.(ivl.BinExpr); ok && b.Op == ivl.Mul {
			flatten(b.X)
			flatten(b.Y)
			return
		}
		factors = append(factors, e)
	}
	flatten(be)
	coeff := uint64(1)
	var rest []ivl.Expr
	for _, f := range factors {
		if c, ok := f.(ivl.ConstExpr); ok {
			coeff *= c.Val
			continue
		}
		rest = append(rest, f)
	}
	if len(rest) == 0 {
		return coeff, ivl.C(1)
	}
	core := rest[0]
	for _, f := range rest[1:] {
		core = ivl.BinExpr{Op: ivl.Mul, X: core, Y: f}
	}
	return coeff, core
}

func cancelPairs(terms []ivl.Expr) []ivl.Expr {
	var out []ivl.Expr
	for i := 0; i < len(terms); {
		if i+1 < len(terms) && exprKey(terms[i]) == exprKey(terms[i+1]) && !hasMemOrCall(terms[i]) {
			i += 2 // x ^ x == 0 contributes nothing
			continue
		}
		out = append(out, terms[i])
		i++
	}
	return out
}

// hasMemOrCall reports whether the expression contains a load, store or
// uninterpreted call. Idempotence/self-inverse rewrites stay valid for
// these (they are deterministic), but keeping them intact preserves the
// paper-visible structure; more importantly, exprKey equality for them is
// still sound, so this is purely conservative.
func hasMemOrCall(e ivl.Expr) bool {
	found := false
	var walk func(ivl.Expr)
	walk = func(e ivl.Expr) {
		if found {
			return
		}
		switch t := e.(type) {
		case ivl.LoadExpr, ivl.StoreExpr, ivl.CallExpr:
			_ = t
			found = true
		case ivl.UnExpr:
			walk(t.X)
		case ivl.BinExpr:
			walk(t.X)
			walk(t.Y)
		case ivl.IteExpr:
			walk(t.Cond)
			walk(t.Then)
			walk(t.Else)
		case ivl.TruncExpr:
			walk(t.X)
		case ivl.SextExpr:
			walk(t.X)
		}
	}
	walk(e)
	return found
}

// exprKey returns a total-order key for canonical comparison and sorting.
func exprKey(e ivl.Expr) string { return e.String() }

// Equivalent reports whether a and b normalize to the same canonical
// form. A true result is a proof of semantic equivalence; false is
// inconclusive.
func Equivalent(a, b ivl.Expr) bool {
	return exprKey(Normalize(a)) == exprKey(Normalize(b))
}
