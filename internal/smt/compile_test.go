package smt

import (
	"math/rand"
	"testing"

	"repro/internal/ivl"
)

// randomStrand builds a random SSA assignment list over nIn inputs,
// optionally with memory operations.
func randomStrand(rng *rand.Rand, nIn, nStmts int, withMem bool) ([]ivl.Stmt, []ivl.Var) {
	var inputs []ivl.Var
	var intVars []string
	for i := 0; i < nIn; i++ {
		v := ivl.Var{Name: "in" + string(rune('a'+i)), Type: ivl.Int}
		inputs = append(inputs, v)
		intVars = append(intVars, v.Name)
	}
	memName := ""
	if withMem {
		inputs = append(inputs, ivl.Var{Name: "mem", Type: ivl.Mem})
		memName = "mem"
	}
	ops := []ivl.BinOp{ivl.Add, ivl.Sub, ivl.Mul, ivl.And, ivl.Or, ivl.Xor,
		ivl.Shl, ivl.LShr, ivl.AShr, ivl.Eq, ivl.SLt, ivl.ULe, ivl.SDiv, ivl.SRem}
	var stmts []ivl.Stmt
	pickInt := func() ivl.Expr {
		if rng.Intn(4) == 0 {
			return ivl.C(rng.Uint64() >> uint(rng.Intn(56)))
		}
		return ivl.IntVar(intVars[rng.Intn(len(intVars))])
	}
	for i := 0; i < nStmts; i++ {
		var rhs ivl.Expr
		switch rng.Intn(8) {
		case 0:
			rhs = ivl.Un([]ivl.UnOp{ivl.Not, ivl.Neg, ivl.BoolNot}[rng.Intn(3)], pickInt())
		case 1:
			rhs = ivl.TruncExpr{Bits: []uint{8, 16, 32}[rng.Intn(3)], X: pickInt()}
		case 2:
			rhs = ivl.SextExpr{Bits: []uint{8, 16, 32}[rng.Intn(3)], X: pickInt()}
		case 3:
			rhs = ivl.IteExpr{Cond: pickInt(), Then: pickInt(), Else: pickInt()}
		case 4:
			if memName != "" {
				rhs = ivl.LoadExpr{Mem: ivl.VarExpr{V: ivl.Var{Name: memName, Type: ivl.Mem}},
					Addr: pickInt(), W: []uint{1, 2, 4, 8}[rng.Intn(4)]}
				break
			}
			fallthrough
		case 5:
			rhs = ivl.CallExpr{Sym: "call/2", Args: []ivl.Expr{pickInt(), pickInt()}}
		default:
			rhs = ivl.Bin(ops[rng.Intn(len(ops))], pickInt(), pickInt())
		}
		dst := ivl.Var{Name: "t" + string(rune('0'+i%10)) + string(rune('a'+i/10)), Type: ivl.Int}
		stmts = append(stmts, ivl.Assign(dst, rhs))
		intVars = append(intVars, dst.Name)
	}
	return stmts, inputs
}

// TestCompiledMatchesInterpreted: Program.Fingerprints must agree with the
// tree-walking VectorHashes on random strands — the compiled evaluator is
// the hot path and must be a faithful drop-in.
func TestCompiledMatchesInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		withMem := trial%3 == 0
		stmts, inputs := randomStrand(rng, 2+rng.Intn(3), 4+rng.Intn(8), withMem)

		slotOf := map[string]int{}
		for i, in := range inputs {
			slotOf[in.Name] = i
		}
		want, err := VectorHashes(stmts, inputs, func(s int, v ivl.Var) ivl.Value {
			return SlotValue(s, slotOf[v.Name], v.Type)
		}, DefaultSamples)
		if err != nil {
			t.Fatal(err)
		}

		prog, err := CompileStrand(stmts, inputs)
		if err != nil {
			t.Fatal(err)
		}
		identity := make([]int, len(inputs))
		for i := range identity {
			identity[i] = i
		}
		got := prog.Fingerprints(identity, DefaultSamples)
		if len(got) != len(stmts) {
			t.Fatalf("fingerprint count %d, want %d", len(got), len(stmts))
		}
		for i, st := range stmts {
			if got[i] != want[st.Dst.Name] {
				t.Fatalf("trial %d stmt %d (%s): compiled %#x, interpreted %#x",
					trial, i, st, got[i], want[st.Dst.Name])
			}
		}
	}
}

// TestCompiledSlotPermutation: permuting input slots must permute values
// consistently — a strand evaluated under swapped slots equals the strand
// with textually swapped inputs.
func TestCompiledSlotPermutation(t *testing.T) {
	iv := func(n string) ivl.Var { return ivl.Var{Name: n, Type: ivl.Int} }
	stmts := []ivl.Stmt{
		ivl.Assign(iv("d"), ivl.Bin(ivl.Sub, ivl.IntVar("a"), ivl.IntVar("b"))),
	}
	swapped := []ivl.Stmt{
		ivl.Assign(iv("d"), ivl.Bin(ivl.Sub, ivl.IntVar("b"), ivl.IntVar("a"))),
	}
	inputs := []ivl.Var{iv("a"), iv("b")}
	p1, err := CompileStrand(stmts, inputs)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileStrand(swapped, inputs)
	if err != nil {
		t.Fatal(err)
	}
	// a-b with slots (1,0) == b-a with slots (0,1).
	got1 := p1.Fingerprints([]int{1, 0}, DefaultSamples)
	got2 := p2.Fingerprints([]int{0, 1}, DefaultSamples)
	if got1[0] != got2[0] {
		t.Error("slot permutation inconsistent with operand swap")
	}
	// And they differ from the identity assignment (a-b is not b-a).
	id := p1.Fingerprints([]int{0, 1}, DefaultSamples)
	if id[0] == got1[0] {
		t.Error("distinct assignments collided")
	}
}

func TestCompileStrandErrors(t *testing.T) {
	iv := func(n string) ivl.Var { return ivl.Var{Name: n, Type: ivl.Int} }
	// Unbound variable.
	if _, err := CompileStrand([]ivl.Stmt{
		ivl.Assign(iv("d"), ivl.IntVar("ghost")),
	}, nil); err == nil {
		t.Error("unbound variable not rejected")
	}
	// Non-assignment statement.
	if _, err := CompileStrand([]ivl.Stmt{
		ivl.Assert(ivl.C(1)),
	}, nil); err == nil {
		t.Error("assert not rejected")
	}
}
