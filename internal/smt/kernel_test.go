package smt

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/ivl"
)

// randomKernelStrand builds a random SSA assignment list exercising the
// whole instruction surface the kernel implements: integer operators,
// constants, ites, truncation/extension, loads, stores (which define new
// memory variables), integer calls and memory-producing calls, and
// memory (in)equality comparisons.
func randomKernelStrand(rng *rand.Rand, nIn, nStmts int) ([]ivl.Stmt, []ivl.Var) {
	var inputs []ivl.Var
	var intVars, memVars []string
	for i := 0; i < nIn; i++ {
		v := ivl.Var{Name: "in" + string(rune('a'+i)), Type: ivl.Int}
		inputs = append(inputs, v)
		intVars = append(intVars, v.Name)
	}
	inputs = append(inputs, ivl.Var{Name: "mem", Type: ivl.Mem})
	memVars = append(memVars, "mem")

	ops := []ivl.BinOp{ivl.Add, ivl.Sub, ivl.Mul, ivl.And, ivl.Or, ivl.Xor,
		ivl.Shl, ivl.LShr, ivl.AShr, ivl.Eq, ivl.Ne, ivl.SLt, ivl.SLe,
		ivl.SGt, ivl.SGe, ivl.ULt, ivl.ULe, ivl.UGt, ivl.UGe, ivl.SDiv, ivl.SRem}
	widths := []uint{1, 2, 4, 8}

	pickInt := func() ivl.Expr {
		if rng.Intn(4) == 0 {
			return ivl.C(rng.Uint64() >> uint(rng.Intn(56)))
		}
		return ivl.IntVar(intVars[rng.Intn(len(intVars))])
	}
	pickMem := func() ivl.Expr {
		return ivl.VarExpr{V: ivl.Var{Name: memVars[rng.Intn(len(memVars))], Type: ivl.Mem}}
	}

	var stmts []ivl.Stmt
	for i := 0; i < nStmts; i++ {
		var rhs ivl.Expr
		dstType := ivl.Int
		switch rng.Intn(12) {
		case 0:
			rhs = ivl.Un([]ivl.UnOp{ivl.Not, ivl.Neg, ivl.BoolNot}[rng.Intn(3)], pickInt())
		case 1:
			rhs = ivl.TruncExpr{Bits: []uint{8, 16, 32}[rng.Intn(3)], X: pickInt()}
		case 2:
			rhs = ivl.SextExpr{Bits: []uint{8, 16, 32}[rng.Intn(3)], X: pickInt()}
		case 3:
			rhs = ivl.IteExpr{Cond: pickInt(), Then: pickInt(), Else: pickInt()}
		case 4:
			rhs = ivl.LoadExpr{Mem: pickMem(), Addr: pickInt(), W: widths[rng.Intn(4)]}
		case 5:
			rhs = ivl.StoreExpr{Mem: pickMem(), Addr: pickInt(), Val: pickInt(), W: widths[rng.Intn(4)]}
			dstType = ivl.Mem
		case 6:
			rhs = ivl.CallExpr{Sym: "call/2", Args: []ivl.Expr{pickInt(), pickInt()}}
		case 7:
			rhs = ivl.CallExpr{Sym: "callmem/2", Args: []ivl.Expr{pickMem(), pickInt()}}
			dstType = ivl.Mem
		case 8:
			// Memory (in)equality: an integer-valued comparison of memories.
			op := ivl.Eq
			if rng.Intn(2) == 0 {
				op = ivl.Ne
			}
			rhs = ivl.Bin(op, pickMem(), pickMem())
		case 9:
			// Memory-valued ite.
			rhs = ivl.IteExpr{Cond: pickInt(), Then: pickMem(), Else: pickMem()}
			dstType = ivl.Mem
		default:
			rhs = ivl.Bin(ops[rng.Intn(len(ops))], pickInt(), pickInt())
		}
		name := "t" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		dst := ivl.Var{Name: name, Type: dstType}
		stmts = append(stmts, ivl.Assign(dst, rhs))
		if dstType == ivl.Mem {
			memVars = append(memVars, name)
		} else {
			intVars = append(intVars, name)
		}
	}
	return stmts, inputs
}

// randomSlots returns a random (not necessarily injective) slot
// assignment, the way γ enumeration rebinds query inputs to target
// slots.
func randomSlots(rng *rand.Rand, n int) []int {
	slots := make([]int, n)
	for i := range slots {
		slots[i] = rng.Intn(n + 3)
	}
	return slots
}

// TestKernelMatchesScalar is the core differential guarantee: the
// batched SoA kernel must produce byte-identical fingerprints to the
// scalar reference interpreter, over random programs and many slot
// assignments per program (exercising the γ-loop reuse of one kernel:
// prefix preservation and arena reset).
func TestKernelMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 200; trial++ {
		stmts, inputs := randomKernelStrand(rng, 2+rng.Intn(4), 5+rng.Intn(12))
		prog, err := CompileStrand(stmts, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if !prog.BatchOK() {
			t.Fatalf("trial %d: well-typed program rejected by the kernel's static typing", trial)
		}
		kern := prog.AcquireKernel(DefaultSamples)
		for g := 0; g < 6; g++ {
			slots := randomSlots(rng, len(inputs))
			want := prog.Fingerprints(slots, DefaultSamples)
			got := kern.Fingerprints(slots)
			for d := range want {
				if got[d] != want[d] {
					t.Fatalf("trial %d γ %d def %d (%s): batch %#x, scalar %#x",
						trial, g, d, stmts[d], got[d], want[d])
				}
			}
		}
		prog.ReleaseKernel(kern)
	}
}

// TestKernelPrefixHoisting: constant-only chains must be hoisted into
// the γ-invariant prefix, and hoisting must not change fingerprints.
func TestKernelPrefixHoisting(t *testing.T) {
	iv := func(n string) ivl.Var { return ivl.Var{Name: n, Type: ivl.Int} }
	stmts := []ivl.Stmt{
		// γ-invariant: constants only.
		ivl.Assign(iv("c1"), ivl.Bin(ivl.Mul, ivl.C(7), ivl.C(9))),
		ivl.Assign(iv("c2"), ivl.Bin(ivl.Add, ivl.IntVar("c1"), ivl.C(1))),
		// γ-dependent: touches an input.
		ivl.Assign(iv("d1"), ivl.Bin(ivl.Add, ivl.IntVar("x"), ivl.IntVar("c2"))),
		// γ-invariant again: depends only on constants.
		ivl.Assign(iv("c3"), ivl.Un(ivl.Not, ivl.IntVar("c1"))),
	}
	inputs := []ivl.Var{iv("x")}
	prog, err := CompileStrand(stmts, inputs)
	if err != nil {
		t.Fatal(err)
	}
	prefix, total := prog.InstrCounts()
	if prefix == 0 || prefix >= total {
		t.Fatalf("prefix/total = %d/%d, want a proper split", prefix, total)
	}
	kern := prog.AcquireKernel(DefaultSamples)
	defer prog.ReleaseKernel(kern)
	for _, slots := range [][]int{{0}, {1}, {2}} {
		want := prog.Fingerprints(slots, DefaultSamples)
		got := kern.Fingerprints(slots)
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("slots %v def %d: batch %#x scalar %#x", slots, d, got[d], want[d])
			}
		}
	}
}

// TestKernelGammaLoopAllocFree: after warm-up, re-running the kernel
// under fresh slot assignments must not allocate — the acceptance bar
// for the γ loop.
func TestKernelGammaLoopAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	stmts, inputs := randomKernelStrand(rng, 3, 14)
	prog, err := CompileStrand(stmts, inputs)
	if err != nil {
		t.Fatal(err)
	}
	kern := prog.AcquireKernel(DefaultSamples)
	defer prog.ReleaseKernel(kern)
	slotSets := [][]int{}
	for i := 0; i < 4; i++ {
		slotSets = append(slotSets, randomSlots(rng, len(inputs)))
	}
	for _, s := range slotSets { // warm up lane buffers and the arena
		kern.Fingerprints(s)
	}
	i := 0
	allocs := testing.AllocsPerRun(50, func() {
		kern.Fingerprints(slotSets[i%len(slotSets)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("γ-loop Fingerprints allocates %.1f objects per run, want 0", allocs)
	}
}

// TestKernelPoolReuse: acquire/release cycles must keep results stable
// (the pooled kernel keeps its prefix evaluation and buffers).
func TestKernelPoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stmts, inputs := randomKernelStrand(rng, 3, 10)
	prog, err := CompileStrand(stmts, inputs)
	if err != nil {
		t.Fatal(err)
	}
	slots := randomSlots(rng, len(inputs))
	want := prog.Fingerprints(slots, DefaultSamples)
	for i := 0; i < 5; i++ {
		kern := prog.AcquireKernel(DefaultSamples)
		got := kern.Fingerprints(slots)
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("cycle %d def %d: batch %#x scalar %#x", i, d, got[d], want[d])
			}
		}
		prog.ReleaseKernel(kern)
	}
}

// TestKernelSampleCountChange: a pooled kernel re-acquired with a
// different sample count must resize correctly.
func TestKernelSampleCountChange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	stmts, inputs := randomKernelStrand(rng, 2, 8)
	prog, err := CompileStrand(stmts, inputs)
	if err != nil {
		t.Fatal(err)
	}
	slots := randomSlots(rng, len(inputs))
	for _, k := range []int{DefaultSamples, 7, DefaultSamples, 3} {
		want := prog.Fingerprints(slots, k)
		kern := prog.AcquireKernel(k)
		got := kern.Fingerprints(slots)
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("k=%d def %d: batch %#x scalar %#x", k, d, got[d], want[d])
			}
		}
		prog.ReleaseKernel(kern)
	}
}

// TestKernelRejectsIllTyped: programs whose static typing cannot
// describe the dynamic scalar semantics must be flagged so callers fall
// back to the scalar path.
func TestKernelRejectsIllTyped(t *testing.T) {
	iv := func(n string) ivl.Var { return ivl.Var{Name: n, Type: ivl.Int} }
	mem := ivl.VarExpr{V: ivl.Var{Name: "m", Type: ivl.Mem}}
	inputs := []ivl.Var{{Name: "m", Type: ivl.Mem}, iv("x")}
	cases := []ivl.Stmt{
		// ite mixing a memory and an integer branch
		ivl.Assign(iv("d"), ivl.IteExpr{Cond: ivl.IntVar("x"), Then: mem, Else: ivl.IntVar("x")}),
		// unary operator over a memory value
		ivl.Assign(iv("d"), ivl.Un(ivl.Not, mem)),
		// load with a memory-typed address
		ivl.Assign(iv("d"), ivl.LoadExpr{Mem: mem, Addr: mem, W: 8}),
	}
	for i, s := range cases {
		prog, err := CompileStrand([]ivl.Stmt{s}, inputs)
		if err != nil {
			continue // rejection at compile time is fine too
		}
		if prog.BatchOK() {
			t.Errorf("case %d (%s): ill-typed program accepted by the batch kernel", i, s)
		}
	}
}

// FuzzKernel cross-checks the batched kernel against the scalar
// reference on fuzzer-chosen programs and slot assignments: the data
// seeds a deterministic random program generator, so every corpus entry
// is a reproducible program.
func FuzzKernel(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(0xDEADBEEF), uint64(42))
	f.Add(uint64(1<<40), uint64(0))
	f.Add(binary.LittleEndian.Uint64([]byte("kernelfz")), uint64(7))
	f.Fuzz(func(t *testing.T, progSeed, slotSeed uint64) {
		rng := rand.New(rand.NewSource(int64(progSeed)))
		stmts, inputs := randomKernelStrand(rng, 1+rng.Intn(5), 1+rng.Intn(20))
		prog, err := CompileStrand(stmts, inputs)
		if err != nil {
			t.Fatalf("generated program failed to compile: %v", err)
		}
		if !prog.BatchOK() {
			t.Fatal("generated well-typed program rejected by static typing")
		}
		srng := rand.New(rand.NewSource(int64(slotSeed)))
		kern := prog.AcquireKernel(DefaultSamples)
		defer prog.ReleaseKernel(kern)
		for g := 0; g < 3; g++ {
			slots := randomSlots(srng, len(inputs))
			want := prog.Fingerprints(slots, DefaultSamples)
			got := kern.Fingerprints(slots)
			for d := range want {
				if got[d] != want[d] {
					t.Fatalf("def %d: batch %#x scalar %#x (progSeed=%d slotSeed=%d γ=%d)",
						d, got[d], want[d], progSeed, slotSeed, g)
				}
			}
		}
		// γ-batched rows: a partial batch through one suffix execution
		// must match the scalar reference per row.
		width := 2 + int(progSeed%7)
		bkern := prog.AcquireKernelBatch(DefaultSamples, width)
		defer prog.ReleaseKernel(bkern)
		rows := 1 + int(slotSeed%uint64(width))
		staged := make([][]int, rows)
		for r := 0; r < rows; r++ {
			staged[r] = randomSlots(srng, len(inputs))
			bkern.BindRow(r, staged[r])
		}
		fps := bkern.FingerprintsRows(rows)
		nd := len(fps) / rows
		for r := 0; r < rows; r++ {
			want := prog.Fingerprints(staged[r], DefaultSamples)
			for d := range want {
				if fps[r*nd+d] != want[d] {
					t.Fatalf("row %d def %d: batch %#x scalar %#x (progSeed=%d slotSeed=%d width=%d)",
						r, d, fps[r*nd+d], want[d], progSeed, slotSeed, width)
				}
			}
		}
	})
}
