package smt

import (
	"math/rand"
	"testing"
)

// TestKernelBatchRowsMatchScalar: FingerprintsRows over every batch
// width and fill level must reproduce the scalar reference per row —
// including partial final batches (rows < g), interleaved with full
// ones, over programs that exercise memory, calls, and every operator.
func TestKernelBatchRowsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(515151))
	for trial := 0; trial < 80; trial++ {
		stmts, inputs := randomKernelStrand(rng, 2+rng.Intn(4), 5+rng.Intn(12))
		prog, err := CompileStrand(stmts, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if !prog.BatchOK() {
			t.Fatalf("trial %d: well-typed program rejected", trial)
		}
		for _, g := range []int{1, 2, 3, 8, 16} {
			kern := prog.AcquireKernelBatch(DefaultSamples, g)
			if kern.BatchWidth() != g {
				t.Fatalf("BatchWidth = %d, want %d", kern.BatchWidth(), g)
			}
			// Several flushes per kernel: full batches, then a partial
			// one, exercising prefix reuse and the delta input refill
			// across flushes.
			for flush := 0; flush < 3; flush++ {
				rows := 1 + rng.Intn(g)
				if flush == 0 {
					rows = g // at least one full batch per width
				}
				staged := make([][]int, rows)
				for r := 0; r < rows; r++ {
					staged[r] = randomSlots(rng, len(inputs))
					kern.BindRow(r, staged[r])
				}
				fps := kern.FingerprintsRows(rows)
				nd := len(fps) / rows
				for r := 0; r < rows; r++ {
					want := prog.Fingerprints(staged[r], DefaultSamples)
					for d := range want {
						if fps[r*nd+d] != want[d] {
							t.Fatalf("trial %d g=%d flush %d row %d def %d: batch %#x scalar %#x",
								trial, g, flush, r, d, fps[r*nd+d], want[d])
						}
					}
				}
			}
			prog.ReleaseKernel(kern)
		}
	}
}

// TestKernelBatchDeltaRefill: consecutive batches whose rows share slot
// bindings with the previous batch at the same row index (the common
// case in DFS γ enumeration) must still evaluate exactly — the
// lastSlot-keyed refill skip must never leave a stale lane visible.
func TestKernelBatchDeltaRefill(t *testing.T) {
	rng := rand.New(rand.NewSource(616161))
	stmts, inputs := randomKernelStrand(rng, 4, 12)
	prog, err := CompileStrand(stmts, inputs)
	if err != nil {
		t.Fatal(err)
	}
	const g = 4
	kern := prog.AcquireKernelBatch(DefaultSamples, g)
	defer prog.ReleaseKernel(kern)
	base := randomSlots(rng, len(inputs))
	for flush := 0; flush < 10; flush++ {
		staged := make([][]int, g)
		for r := 0; r < g; r++ {
			// Mutate at most one position of the shared base assignment,
			// so most (row, input) bindings repeat across flushes.
			row := append([]int(nil), base...)
			if rng.Intn(3) > 0 {
				row[rng.Intn(len(row))] = rng.Intn(len(inputs) + 2)
			}
			staged[r] = row
			kern.BindRow(r, row)
		}
		fps := kern.FingerprintsRows(g)
		nd := len(fps) / g
		for r := 0; r < g; r++ {
			want := prog.Fingerprints(staged[r], DefaultSamples)
			for d := range want {
				if fps[r*nd+d] != want[d] {
					t.Fatalf("flush %d row %d def %d: batch %#x scalar %#x",
						flush, r, d, fps[r*nd+d], want[d])
				}
			}
		}
	}
}

// TestKernelBatchReshape: one pooled kernel re-acquired with different
// (samples, width) shapes must resize and re-evaluate its prefix
// correctly each time.
func TestKernelBatchReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(717171))
	stmts, inputs := randomKernelStrand(rng, 3, 10)
	prog, err := CompileStrand(stmts, inputs)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct{ k, g int }{
		{DefaultSamples, 1}, {DefaultSamples, 8}, {7, 8}, {7, 2},
		{DefaultSamples, 16}, {DefaultSamples, 1},
	}
	for _, sh := range shapes {
		kern := prog.AcquireKernelBatch(sh.k, sh.g)
		rows := 1 + rng.Intn(sh.g)
		staged := make([][]int, rows)
		for r := range staged {
			staged[r] = randomSlots(rng, len(inputs))
			kern.BindRow(r, staged[r])
		}
		fps := kern.FingerprintsRows(rows)
		nd := len(fps) / rows
		for r := 0; r < rows; r++ {
			want := prog.Fingerprints(staged[r], sh.k)
			for d := range want {
				if fps[r*nd+d] != want[d] {
					t.Fatalf("shape k=%d g=%d row %d def %d: batch %#x scalar %#x",
						sh.k, sh.g, r, d, fps[r*nd+d], want[d])
				}
			}
		}
		prog.ReleaseKernel(kern)
	}
}

// TestKernelBatchAllocFree: the steady-state batched γ loop — bind G
// rows, flush, extract fingerprints — must not allocate.
func TestKernelBatchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(818181))
	stmts, inputs := randomKernelStrand(rng, 3, 14)
	prog, err := CompileStrand(stmts, inputs)
	if err != nil {
		t.Fatal(err)
	}
	const g = 8
	kern := prog.AcquireKernelBatch(DefaultSamples, g)
	defer prog.ReleaseKernel(kern)
	slotSets := make([][]int, g)
	for r := range slotSets {
		slotSets[r] = randomSlots(rng, len(inputs))
	}
	run := func() {
		for r := 0; r < g; r++ {
			kern.BindRow(r, slotSets[(r+1)%g])
		}
		kern.FingerprintsRows(g)
	}
	run() // warm up lane buffers and the arena
	run()
	allocs := testing.AllocsPerRun(50, run)
	if allocs != 0 {
		t.Fatalf("batched γ loop allocates %.1f objects per flush, want 0", allocs)
	}
}

// TestScheduleSuffixProfileStable: compiling the same strand with a cold
// and a deliberately hot opcode profile may reorder the suffix, but
// fingerprints must be identical — the scheduler respects all data
// dependencies.
func TestScheduleSuffixProfileStable(t *testing.T) {
	rng := rand.New(rand.NewSource(919191))
	for trial := 0; trial < 40; trial++ {
		stmts, inputs := randomKernelStrand(rng, 3, 12)
		before, err := CompileStrand(stmts, inputs)
		if err != nil {
			t.Fatal(err)
		}
		// Heat the profile: run and release a kernel many times so the
		// dynamic counts dwarf whatever other tests contributed.
		slots := randomSlots(rng, len(inputs))
		for i := 0; i < 8; i++ {
			kern := before.AcquireKernel(DefaultSamples)
			for j := 0; j < 64; j++ {
				kern.Fingerprints(slots)
			}
			before.ReleaseKernel(kern)
		}
		after, err := CompileStrand(stmts, inputs)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < 4; g++ {
			sl := randomSlots(rng, len(inputs))
			want := before.Fingerprints(sl, DefaultSamples)
			got := after.Fingerprints(sl, DefaultSamples)
			kern := after.AcquireKernel(DefaultSamples)
			kfps := kern.Fingerprints(sl)
			for d := range want {
				if got[d] != want[d] || kfps[d] != want[d] {
					t.Fatalf("trial %d γ %d def %d: pre-profile %#x post-profile %#x kernel %#x",
						trial, g, d, want[d], got[d], kfps[d])
				}
			}
			after.ReleaseKernel(kern)
		}
	}
}
