// Package tracy reimplements the tracelet-based code-search baseline the
// paper compares against (David & Yahav, PLDI'14, "Tracelet-based code
// search in executables"). Procedures decompose into k-tracelets —
// partial execution paths of k consecutive basic blocks — which are
// compared by alignment after register-name abstraction; a query tracelet
// counts as matched when the best alignment similarity reaches the ratio
// threshold (the paper's tables use Ratio-70, i.e. 0.70). The procedure
// score is the matched fraction of query tracelets.
//
// TRACY is syntactic: it survives small patches and same-vendor version
// changes (instruction sequences barely move) but degrades sharply across
// compiler vendors — the behaviour Table 2 documents.
package tracy

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/cfg"
)

// Config tunes the baseline.
type Config struct {
	// K is the tracelet length in basic blocks (the PLDI'14 evaluation
	// settled on 3).
	K int
	// Ratio is the alignment-similarity acceptance threshold; the
	// paper's comparison uses TRACY "Ratio-70" = 0.70.
	Ratio float64
}

// Default returns the Ratio-70, k=3 configuration used in the paper.
func Default() Config { return Config{K: 3, Ratio: 0.70} }

// Tracelet is one abstracted k-block instruction sequence.
type Tracelet struct {
	Ops []string // abstracted instructions
}

// Proc is a procedure prepared for tracelet matching.
type Proc struct {
	Name      string
	Source    asm.Provenance
	Tracelets []Tracelet
}

// Prepare decomposes a procedure into k-tracelets.
func Prepare(p *asm.Proc, cfgn Config) (*Proc, error) {
	if cfgn.K <= 0 {
		cfgn = Default()
	}
	g, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	out := &Proc{Name: p.Name, Source: p.Source}

	// Enumerate all paths of exactly K blocks (or shorter paths that
	// dead-end), starting from every block.
	var walk func(path []*cfg.Block)
	walk = func(path []*cfg.Block) {
		last := path[len(path)-1]
		if len(path) == cfgn.K || len(last.Succs) == 0 {
			out.Tracelets = append(out.Tracelets, abstract(path))
			return
		}
		for _, s := range last.Succs {
			ext := make([]*cfg.Block, len(path)+1)
			copy(ext, path)
			ext[len(path)] = g.Blocks[s]
			walk(ext)
		}
	}
	for _, b := range g.Blocks {
		walk([]*cfg.Block{b})
	}
	return out, nil
}

// abstract turns a block path into a canonical instruction string list:
// mnemonics are kept, registers are alpha-renamed in order of first
// appearance (the PLDI'14 "rewrite" normalization), and immediates are
// kept verbatim (they carry the semantics TRACY can see).
func abstract(path []*cfg.Block) Tracelet {
	names := map[asm.Reg]string{}
	regName := func(r asm.Reg) string {
		if n, ok := names[r]; ok {
			return n
		}
		n := fmt.Sprintf("R%d", len(names))
		names[r] = n
		return n
	}
	opnd := func(o asm.Operand) string {
		switch o.Kind {
		case asm.KindReg:
			return regName(o.Reg) + widthTag(o.Width)
		case asm.KindImm:
			return fmt.Sprintf("#%d", o.Imm)
		case asm.KindMem:
			var b strings.Builder
			b.WriteByte('[')
			if o.Base != asm.NoReg {
				b.WriteString(regName(o.Base))
			}
			if o.Index != asm.NoReg {
				fmt.Fprintf(&b, "+%s*%d", regName(o.Index), o.Scale)
			}
			if o.Disp != 0 {
				fmt.Fprintf(&b, "%+d", o.Disp)
			}
			b.WriteByte(']')
			return b.String()
		}
		return ""
	}
	var t Tracelet
	for _, b := range path {
		for _, in := range b.Insts {
			var s string
			switch {
			case in.Op == asm.LABEL:
				continue
			case in.IsBranch() || in.Op == asm.CALL:
				// Targets are addresses in real binaries; abstract away.
				s = in.Mnemonic()
			case in.Src.IsZero() && in.Dst.IsZero():
				s = in.Mnemonic()
			case in.Src.IsZero():
				s = in.Mnemonic() + " " + opnd(in.Dst)
			default:
				s = in.Mnemonic() + " " + opnd(in.Dst) + "," + opnd(in.Src)
			}
			t.Ops = append(t.Ops, s)
		}
	}
	return t
}

func widthTag(w asm.Width) string {
	switch w {
	case asm.Width1:
		return ".b"
	case asm.Width2:
		return ".w"
	case asm.Width4:
		return ".d"
	default:
		return ""
	}
}

// Similarity aligns two tracelets (longest common subsequence over
// abstracted instructions) and returns 2*LCS / (len(a)+len(b)).
func Similarity(a, b Tracelet) float64 {
	n, m := len(a.Ops), len(b.Ops)
	if n == 0 || m == 0 {
		return 0
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if a.Ops[i-1] == b.Ops[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	lcs := prev[m]
	return 2 * float64(lcs) / float64(n+m)
}

// Score returns the TRACY similarity of query q to target t: the
// fraction of q's tracelets whose best alignment within t clears the
// ratio threshold.
func Score(q, t *Proc, cfgn Config) float64 {
	if cfgn.K <= 0 {
		cfgn = Default()
	}
	if len(q.Tracelets) == 0 {
		return 0
	}
	matched := 0
	for _, qt := range q.Tracelets {
		for _, tt := range t.Tracelets {
			if Similarity(qt, tt) >= cfgn.Ratio {
				matched++
				break
			}
		}
	}
	return float64(matched) / float64(len(q.Tracelets))
}
