package tracy

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/minic"
)

func prep(t *testing.T, p *asm.Proc) *Proc {
	t.Helper()
	tp, err := Prepare(p, Default())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func compileWith(t *testing.T, src, fn, tcName string) *asm.Proc {
	t.Helper()
	tc, ok := compile.ByName(tcName)
	if !ok {
		t.Fatalf("no toolchain %s", tcName)
	}
	p, err := compile.Compile(minic.MustParse(src), fn, tc, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const loopSrc = `
func f(buf, len) {
	var s = 0;
	var i = 0;
	while (i < len) {
		s = s + load8(buf + i);
		i = i + 1;
	}
	return s;
}`

func TestSelfSimilarityIsOne(t *testing.T) {
	p := compileWith(t, loopSrc, "f", "gcc-4.9")
	tp := prep(t, p)
	if got := Score(tp, tp, Default()); got != 1.0 {
		t.Errorf("self score = %v, want 1", got)
	}
}

func TestSimilarityBounds(t *testing.T) {
	a := Tracelet{Ops: []string{"mov R0,R1", "add R0,#1"}}
	b := Tracelet{Ops: []string{"mov R0,R1", "add R0,#1"}}
	if Similarity(a, b) != 1.0 {
		t.Error("identical tracelets not 1.0")
	}
	c := Tracelet{Ops: []string{"xor R0,R0"}}
	if s := Similarity(a, c); s != 0 {
		t.Errorf("disjoint tracelets = %v", s)
	}
	if Similarity(Tracelet{}, a) != 0 {
		t.Error("empty tracelet should score 0")
	}
}

func TestRegisterAbstraction(t *testing.T) {
	// Same computation in different registers must abstract identically.
	p1, _ := asm.ParseProc("proc a\n\tmov r10, rdi\n\tadd r10, 1\n\tret\nendp")
	p2, _ := asm.ParseProc("proc b\n\tmov rbx, rsi\n\tadd rbx, 1\n\tret\nendp")
	t1 := prep(t, p1)
	t2 := prep(t, p2)
	if got := Score(t1, t2, Default()); got != 1.0 {
		t.Errorf("alpha-renamed code scores %v, want 1.0", got)
	}
}

func TestVersionRobustPatchRobust(t *testing.T) {
	// TRACY's strength: same vendor, small patch — score stays high.
	v := corpus.Vulns()[0] // Heartbleed
	gcc48 := mustCompileVuln(t, v, "gcc-4.8", false)
	gcc49 := mustCompileVuln(t, v, "gcc-4.9", false)
	gcc49p := mustCompileVuln(t, v, "gcc-4.9", true)

	sameVendor := Score(prep(t, gcc49), prep(t, gcc48), Default())
	if sameVendor < 0.4 {
		t.Errorf("cross-version TRACY score = %v, expected robust (> 0.4)", sameVendor)
	}
	patched := Score(prep(t, gcc49), prep(t, gcc49p), Default())
	if patched < 0.4 {
		t.Errorf("patched TRACY score = %v, expected robust (> 0.4)", patched)
	}
}

func TestCrossVendorDegrades(t *testing.T) {
	// TRACY's weakness (Table 2): cross-vendor scores collapse relative
	// to same-vendor scores.
	v := corpus.Vulns()[0]
	gcc49 := mustCompileVuln(t, v, "gcc-4.9", false)
	gcc48 := mustCompileVuln(t, v, "gcc-4.8", false)
	icc := mustCompileVuln(t, v, "icc-15.0.1", false)

	q := prep(t, gcc49)
	same := Score(q, prep(t, gcc48), Default())
	cross := Score(q, prep(t, icc), Default())
	if cross >= same {
		t.Errorf("cross-vendor (%v) should degrade vs same-vendor (%v)", cross, same)
	}
}

func mustCompileVuln(t *testing.T, v corpus.Vuln, tcName string, patched bool) *asm.Proc {
	t.Helper()
	tc, ok := compile.ByName(tcName)
	if !ok {
		t.Fatalf("no toolchain %s", tcName)
	}
	p, err := corpus.CompileVuln(v, tc, patched)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTraceletCount(t *testing.T) {
	// A diamond CFG (4 blocks) with K=3 must enumerate both paths.
	src := `proc f
	test rdi, rdi
	jne b
	mov rax, 1
	jmp done
b:
	mov rax, 2
done:
	ret
endp`
	p, err := asm.ParseProc(src)
	if err != nil {
		t.Fatal(err)
	}
	tp := prep(t, p)
	// Paths from entry: entry->then->done, entry->else->done; from then:
	// then->done; from else: else->done; from done: done. Total 5.
	if len(tp.Tracelets) != 5 {
		t.Errorf("tracelets = %d, want 5", len(tp.Tracelets))
	}
}

func TestPrepareError(t *testing.T) {
	if _, err := Prepare(&asm.Proc{Name: "empty"}, Default()); err == nil {
		t.Error("empty procedure accepted")
	}
}
