package telemetry

import (
	"math"
	"sort"
	"strconv"
	"sync"
)

// FormatQuantile renders a quantile target as a metric label value
// ("0.5", "0.95", "0.99") — the conventional `quantile` label format.
func FormatQuantile(q float64) string { return strconv.FormatFloat(q, 'g', -1, 64) }

// Quantiles is a streaming quantile estimator: it tracks a fixed set of
// quantiles (p50/p95/p99 for latency gauges) over an unbounded
// observation stream in O(1) memory per quantile, using the P² algorithm
// (Jain & Chlamtac, 1985). Unlike the cumulative histograms, which bucket
// into fixed bounds chosen up front, the markers adapt to the observed
// distribution, so the estimates stay meaningful whether a query takes
// 200µs or 20s. Observe takes a mutex — quantile updates are a few
// dozen float ops per call, far off the per-pair hot path, and the
// estimator is only fed once per completed query.
type Quantiles struct {
	mu   sync.Mutex
	qs   []float64
	est  []p2
	n    uint64
	max  float64
	seen bool
}

// NewQuantiles returns an estimator tracking the given quantiles (each
// in (0, 1), e.g. 0.5, 0.95, 0.99).
func NewQuantiles(qs ...float64) *Quantiles {
	e := &Quantiles{qs: append([]float64(nil), qs...), est: make([]p2, len(qs))}
	for i, p := range qs {
		e.est[i].p = p
	}
	return e
}

// Observe feeds one value to every tracked quantile.
func (e *Quantiles) Observe(v float64) {
	e.mu.Lock()
	e.n++
	if !e.seen || v > e.max {
		e.max, e.seen = v, true
	}
	for i := range e.est {
		e.est[i].observe(v)
	}
	e.mu.Unlock()
}

// Quantile returns the current estimate for q, which must be one of the
// tracked quantiles; it returns NaN for an untracked q or before any
// observation.
func (e *Quantiles) Quantile(q float64) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, p := range e.qs {
		if p == q {
			return e.est[i].quantile()
		}
	}
	return math.NaN()
}

// Count returns the number of observations so far.
func (e *Quantiles) Count() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Max returns the largest observation so far (NaN before any).
func (e *Quantiles) Max() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.seen {
		return math.NaN()
	}
	return e.max
}

// p2 is one P² marker set: five marker heights q whose positions n chase
// the desired positions np; the middle marker's height estimates the
// p-quantile once five observations have arrived.
type p2 struct {
	p   float64
	cnt int
	q   [5]float64 // marker heights
	n   [5]float64 // actual marker positions (1-based)
	np  [5]float64 // desired marker positions
	dn  [5]float64 // desired-position increments per observation
}

func (e *p2) observe(x float64) {
	if e.cnt < 5 {
		e.q[e.cnt] = x
		e.cnt++
		if e.cnt == 5 {
			s := e.q[:]
			sort.Float64s(s)
			e.n = [5]float64{1, 2, 3, 4, 5}
			e.np = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
			e.dn = [5]float64{0, e.p / 2, e.p, (1 + e.p) / 2, 1}
		}
		return
	}
	e.cnt++

	// Locate the cell k holding x, extending the extreme markers if x
	// falls outside the current range.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x < e.q[1]:
		k = 0
	case x < e.q[2]:
		k = 1
	case x < e.q[3]:
		k = 2
	case x <= e.q[4]:
		k = 3
	default:
		e.q[4] = x
		k = 3
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.np {
		e.np[i] += e.dn[i]
	}

	// Nudge the three interior markers toward their desired positions,
	// adjusting heights by the piecewise-parabolic (P²) prediction, with
	// a linear fallback when the parabola would break monotonicity.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

func (e *p2) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+s)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-s)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

func (e *p2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// quantile returns the current estimate: the middle marker height once
// the markers are live, the exact sample quantile while fewer than five
// observations have arrived, NaN before any.
func (e *p2) quantile() float64 {
	if e.cnt == 0 {
		return math.NaN()
	}
	if e.cnt < 5 {
		s := append([]float64(nil), e.q[:e.cnt]...)
		sort.Float64s(s)
		i := int(math.Ceil(e.p*float64(e.cnt))) - 1
		if i < 0 {
			i = 0
		}
		if i >= e.cnt {
			i = e.cnt - 1
		}
		return s[i]
	}
	return e.q[2]
}
